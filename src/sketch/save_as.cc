#include "sketch/save_as.h"

#include <cinttypes>
#include <cstdio>

#include "storage/columnar_file.h"

namespace hillview {

void SaveResult::Serialize(ByteWriter* w) const {
  w->WriteI64(partitions_written);
  w->WriteI64(rows_written);
  w->WriteU32(static_cast<uint32_t>(errors.size()));
  for (const auto& e : errors) w->WriteString(e);
}

Status SaveResult::Deserialize(ByteReader* r, SaveResult* out) {
  HV_RETURN_IF_ERROR(r->ReadI64(&out->partitions_written));
  HV_RETURN_IF_ERROR(r->ReadI64(&out->rows_written));
  uint32_t n = 0;
  // Each error carries at least its length prefix (u32).
  HV_RETURN_IF_ERROR(r->ReadCount(&n, /*min_element_bytes=*/4));
  out->errors.resize(n);
  for (auto& e : out->errors) HV_RETURN_IF_ERROR(r->ReadString(&e));
  return Status::OK();
}

SaveResult SaveAsSketch::Summarize(const Table& table, uint64_t seed) const {
  SaveResult result;
  char name[32];
  std::snprintf(name, sizeof(name), "%016" PRIx64, seed);
  std::string path = directory_ + "/" + prefix_ + "-" + name + ".hvcf";
  Status s = WriteTableFile(table, path);
  if (!s.ok()) {
    result.errors.push_back(s.ToString());
    return result;
  }
  result.partitions_written = 1;
  result.rows_written = table.num_rows();
  return result;
}

SaveResult SaveAsSketch::Merge(const SaveResult& left,
                               const SaveResult& right) const {
  SaveResult out = left;
  out.partitions_written += right.partitions_written;
  out.rows_written += right.rows_written;
  out.errors.insert(out.errors.end(), right.errors.begin(),
                    right.errors.end());
  return out;
}

}  // namespace hillview
