#ifndef HILLVIEW_SKETCH_SAVE_AS_H_
#define HILLVIEW_SKETCH_SAVE_AS_H_

#include <string>
#include <vector>

#include "sketch/sketch.h"
#include "util/serialize.h"

namespace hillview {

/// Result of saving a derived table back to a repository (§5.4: saving "is
/// implemented through a special vizketch with a summarize function that
/// writes a data record to the repository and returns an error indication,
/// while the merge function combines error indications").
struct SaveResult {
  int64_t partitions_written = 0;
  int64_t rows_written = 0;
  std::vector<std::string> errors;

  bool ok() const { return errors.empty(); }
  bool IsZero() const { return partitions_written == 0 && errors.empty(); }

  void Serialize(ByteWriter* w) const;
  static Status Deserialize(ByteReader* r, SaveResult* out);
};

/// Writes each partition to `<directory>/<prefix>-<partition seed>.hvcf`.
/// The engine's per-partition seed doubles as a stable unique partition id,
/// so replayed saves overwrite their own files (idempotent recovery).
class SaveAsSketch final : public Sketch<SaveResult> {
 public:
  SaveAsSketch(std::string directory, std::string prefix)
      : directory_(std::move(directory)), prefix_(std::move(prefix)) {}

  std::string name() const override {
    return "save-as(" + directory_ + "/" + prefix_ + ")";
  }
  SaveResult Zero() const override { return {}; }
  SaveResult Summarize(const Table& table, uint64_t seed) const override;
  SaveResult Merge(const SaveResult& left,
                   const SaveResult& right) const override;

 private:
  std::string directory_;
  std::string prefix_;
};

}  // namespace hillview

#endif  // HILLVIEW_SKETCH_SAVE_AS_H_
