#include "sketch/histogram.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "storage/scan.h"

namespace hillview {

int64_t HistogramResult::TotalCount() const {
  return std::accumulate(counts.begin(), counts.end(), int64_t{0});
}

void HistogramResult::Serialize(ByteWriter* w) const {
  w->WritePodVector(counts);
  w->WriteI64(missing);
  w->WriteI64(out_of_range);
  w->WriteI64(rows_scanned);
  w->WriteDouble(sample_rate);
}

Status HistogramResult::Deserialize(ByteReader* r, HistogramResult* out) {
  HV_RETURN_IF_ERROR(r->ReadPodVector(&out->counts));
  HV_RETURN_IF_ERROR(r->ReadI64(&out->missing));
  HV_RETURN_IF_ERROR(r->ReadI64(&out->out_of_range));
  HV_RETURN_IF_ERROR(r->ReadI64(&out->rows_scanned));
  HV_RETURN_IF_ERROR(r->ReadDouble(&out->sample_rate));
  return Status::OK();
}

HistogramResult MergeHistograms(const HistogramResult& left,
                                const HistogramResult& right) {
  if (left.IsZero()) return right;
  if (right.IsZero()) return left;
  assert(left.counts.size() == right.counts.size());
  HistogramResult out = left;
  for (size_t i = 0; i < out.counts.size(); ++i) {
    out.counts[i] += right.counts[i];
  }
  out.missing += right.missing;
  out.out_of_range += right.out_of_range;
  out.rows_scanned += right.rows_scanned;
  out.sample_rate = std::max(left.sample_rate, right.sample_rate);
  return out;
}

namespace {

// Equi-width tally over native numeric values. The scan layer never forwards
// NaN (it counts as missing), so OnValue only sees orderable doubles; ±inf
// clamps out and lands in the out-of-range slot.
//
// The hot loop is branchless: the value is clamped into [min, max] (minsd /
// maxsd), the bucket index comes from one multiply, and out-of-range rows
// select a trailing overflow slot via cmov, so every row ends as exactly one
// unconditional `++slots[i]`. Missing accumulates in a visitor-local field;
// everything is flushed into the result once after the scan.
//
// All-present runs arrive through OnBlock (scan.h's block protocol) and
// tally via the runtime-dispatched hist_index kernels: the kernel fills a
// small index buffer (count = out-of-range, count + 1 = NaN, mirroring the
// per-row arithmetic bit for bit), and the increment loop stays scalar —
// bucket counts are integers, so the result is identical to the per-row
// path in any order.
struct NumericTally {
  double min;
  double max;
  double scale;  // buckets / width, 0 for degenerate [min, min] ranges
  int count;
  std::vector<int64_t> slots;  // [0, count) buckets, [count] out-of-range,
                               // [count + 1] NaN-missing (block path only)
  int64_t* slot = nullptr;     // cached slots.data(): keeps the loop in registers
  int64_t missing = 0;

  explicit NumericTally(const NumericBuckets& buckets)
      : min(buckets.min()),
        max(buckets.max()),
        scale(buckets.max() > buckets.min()
                  ? buckets.count() / (buckets.max() - buckets.min())
                  : 0.0),
        count(buckets.count()),
        slots(static_cast<size_t>(buckets.count()) + 2, 0),
        slot(slots.data()) {}

  template <typename T>
  void OnValue(uint32_t /*row*/, T value) {
    double v = static_cast<double>(value);
    double clamped = std::min(std::max(v, min), max);
    int idx = static_cast<int>((clamped - min) * scale);
    if (idx >= count) idx = count - 1;  // v == max lands in the top bucket
    bool in_range = (v >= min) & (v <= max);
    ++slot[in_range ? idx : count];
  }

  void OnMissing(uint32_t /*row*/) { ++missing; }

  template <typename T>
  void TallyBlock(const T* values, uint32_t n,
                  void (*kernel)(const T*, uint32_t, double, double, double,
                                 int32_t, uint32_t*)) {
    // Chunked so the index buffer stays in L1 while the kernel streams the
    // values.
    uint32_t idx[512];
    for (uint32_t at = 0; at < n; at += 512) {
      const uint32_t len = n - at < 512 ? n - at : 512;
      kernel(values + at, len, min, max, scale, count, idx);
      for (uint32_t i = 0; i < len; ++i) ++slot[idx[i]];
    }
  }

  void OnBlock(uint32_t /*base*/, const double* values, uint32_t n) {
    TallyBlock(values, n, GetScanKernels().hist_index_f64);
  }

  void OnBlock(uint32_t /*base*/, const int32_t* values, uint32_t n) {
    TallyBlock(values, n, GetScanKernels().hist_index_i32);
  }

  // Every visited row landed in exactly one slot or in `missing`.
  void Flush(HistogramResult* result) const {
    int64_t tallied = 0;
    for (int b = 0; b < count; ++b) {
      result->counts[b] += slots[b];
      tallied += slots[b];
    }
    result->out_of_range += slots[count];
    result->missing += missing + slots[count + 1];
    result->rows_scanned += tallied + slots[count] + missing + slots[count + 1];
  }
};

// Tally over dictionary codes. The code -> slot map is precomputed with
// out-of-range codes pointing at a trailing overflow slot, so the per-row
// work is one load and one unconditional increment.
struct StringTally {
  const uint32_t* code_to_slot;
  int count;
  std::vector<int64_t> slots;  // [0, count) buckets, [count] out-of-range
  int64_t* slot;               // cached slots.data()
  int64_t missing = 0;

  StringTally(const uint32_t* code_to_slot, int count)
      : code_to_slot(code_to_slot),
        count(count),
        slots(static_cast<size_t>(count) + 1, 0),
        slot(slots.data()) {}

  void OnValue(uint32_t /*row*/, uint32_t code) { ++slot[code_to_slot[code]]; }

  void OnMissing(uint32_t /*row*/) { ++missing; }

  void Flush(HistogramResult* result) const {
    int64_t tallied = 0;
    for (int b = 0; b < count; ++b) {
      result->counts[b] += slots[b];
      tallied += slots[b];
    }
    result->out_of_range += slots[count];
    result->missing += missing;
    result->rows_scanned += tallied + slots[count] + missing;
  }
};

}  // namespace

void TallyHistogram(const Table& table, const std::string& column,
                    const Buckets& buckets, double rate, uint64_t seed,
                    HistogramResult* result) {
  result->counts.assign(buckets.count(), 0);
  result->sample_rate = rate < 1.0 ? rate : 1.0;
  ColumnPtr col = table.GetColumnOrNull(column);
  if (col == nullptr) return;  // Unknown column summarizes to zero counts.
  const IMembershipSet& members = *table.members();

  if (buckets.is_numeric()) {
    NumericTally tally(buckets.numeric());
    ScanColumn(*col, members, rate, seed, tally);
    tally.Flush(result);
    return;
  }

  // String buckets: map each dictionary code to its bucket once, then scan
  // the code array.
  if (col->RawCodes() == nullptr) {
    return;  // Numeric column with string buckets: zero.
  }
  std::vector<int> code_to_bucket = buckets.string().MapDictionary(*col);
  std::vector<uint32_t> code_to_slot(code_to_bucket.size());
  for (size_t i = 0; i < code_to_bucket.size(); ++i) {
    code_to_slot[i] = code_to_bucket[i] < 0
                          ? static_cast<uint32_t>(buckets.count())
                          : static_cast<uint32_t>(code_to_bucket[i]);
  }
  StringTally tally(code_to_slot.data(), buckets.count());
  ScanColumn(*col, members, rate, seed, tally);
  tally.Flush(result);
}

std::string StreamingHistogramSketch::name() const {
  return "histogram-streaming(" + column_ + "," +
         std::to_string(buckets_.count()) + ")";
}

HistogramResult StreamingHistogramSketch::Zero() const {
  return HistogramResult{};
}

HistogramResult StreamingHistogramSketch::Summarize(const Table& table,
                                                    uint64_t seed) const {
  (void)seed;
  HistogramResult result;
  TallyHistogram(table, column_, buckets_, 1.0, 0, &result);
  return result;
}

HistogramResult StreamingHistogramSketch::Merge(
    const HistogramResult& left, const HistogramResult& right) const {
  return MergeHistograms(left, right);
}

std::string SampledHistogramSketch::name() const {
  return "histogram-sampled(" + column_ + "," +
         std::to_string(buckets_.count()) + "," + std::to_string(rate_) + ")";
}

HistogramResult SampledHistogramSketch::Zero() const {
  return HistogramResult{};
}

HistogramResult SampledHistogramSketch::Summarize(const Table& table,
                                                  uint64_t seed) const {
  HistogramResult result;
  TallyHistogram(table, column_, buckets_, rate_, seed, &result);
  return result;
}

HistogramResult SampledHistogramSketch::Merge(
    const HistogramResult& left, const HistogramResult& right) const {
  return MergeHistograms(left, right);
}

}  // namespace hillview
