#include "sketch/histogram.h"

#include <cassert>
#include <numeric>

namespace hillview {

int64_t HistogramResult::TotalCount() const {
  return std::accumulate(counts.begin(), counts.end(), int64_t{0});
}

void HistogramResult::Serialize(ByteWriter* w) const {
  w->WritePodVector(counts);
  w->WriteI64(missing);
  w->WriteI64(out_of_range);
  w->WriteI64(rows_scanned);
  w->WriteDouble(sample_rate);
}

Status HistogramResult::Deserialize(ByteReader* r, HistogramResult* out) {
  HV_RETURN_IF_ERROR(r->ReadPodVector(&out->counts));
  HV_RETURN_IF_ERROR(r->ReadI64(&out->missing));
  HV_RETURN_IF_ERROR(r->ReadI64(&out->out_of_range));
  HV_RETURN_IF_ERROR(r->ReadI64(&out->rows_scanned));
  HV_RETURN_IF_ERROR(r->ReadDouble(&out->sample_rate));
  return Status::OK();
}

HistogramResult MergeHistograms(const HistogramResult& left,
                                const HistogramResult& right) {
  if (left.IsZero()) return right;
  if (right.IsZero()) return left;
  assert(left.counts.size() == right.counts.size());
  HistogramResult out = left;
  for (size_t i = 0; i < out.counts.size(); ++i) {
    out.counts[i] += right.counts[i];
  }
  out.missing += right.missing;
  out.out_of_range += right.out_of_range;
  out.rows_scanned += right.rows_scanned;
  out.sample_rate = std::max(left.sample_rate, right.sample_rate);
  return out;
}

namespace {

// Tight tally loop over a raw numeric array with full membership: the fast
// path for the single-thread microbenchmark (§7.2.1).
template <typename T>
void TallyRawFull(const T* data, uint32_t n, const NullMask& nulls,
                  const NumericBuckets& buckets, HistogramResult* result) {
  const double min = buckets.min();
  const double max = buckets.max();
  const int count = buckets.count();
  const double scale = count / (max - min);
  int64_t* counts = result->counts.data();
  if (nulls.empty()) {
    for (uint32_t r = 0; r < n; ++r) {
      double v = static_cast<double>(data[r]);
      if (v < min || v > max) {
        ++result->out_of_range;
        continue;
      }
      int idx = static_cast<int>((v - min) * scale);
      if (idx >= count) idx = count - 1;
      ++counts[idx];
    }
  } else {
    for (uint32_t r = 0; r < n; ++r) {
      if (nulls.IsMissing(r)) {
        ++result->missing;
        continue;
      }
      double v = static_cast<double>(data[r]);
      if (v < min || v > max) {
        ++result->out_of_range;
        continue;
      }
      int idx = static_cast<int>((v - min) * scale);
      if (idx >= count) idx = count - 1;
      ++counts[idx];
    }
  }
  result->rows_scanned += n;
}

// Sampled tally over a raw numeric array with full membership: geometric
// skips straight over the array, no virtual dispatch. This path is what
// makes sampling beat streaming once the rate is low (§7.2.1).
template <typename T>
void TallySampledRawFull(const T* data, uint32_t n, const NullMask& nulls,
                         const NumericBuckets& buckets, double rate,
                         uint64_t seed, HistogramResult* result) {
  const double min = buckets.min();
  const double max = buckets.max();
  const int count = buckets.count();
  const double scale = count / (max - min);
  int64_t* counts = result->counts.data();
  Random rng(seed);
  GeometricSkipper skipper(&rng, rate);
  bool check_nulls = !nulls.empty();

  // Sampling a large column is DRAM-latency-bound: consecutive samples are
  // ~1/rate rows apart, so each touch is a cache miss. Generating a batch of
  // sample positions first and prefetching them overlaps those misses.
  constexpr int kBatch = 32;
  uint32_t pending[kBatch];
  uint64_t r = skipper.Next();
  while (r < n) {
    int filled = 0;
    while (filled < kBatch && r < n) {
      pending[filled++] = static_cast<uint32_t>(r);
      __builtin_prefetch(data + r);
      r += 1 + skipper.Next();
    }
    result->rows_scanned += filled;
    for (int i = 0; i < filled; ++i) {
      uint32_t row = pending[i];
      if (check_nulls && nulls.IsMissing(row)) {
        ++result->missing;
        continue;
      }
      double v = static_cast<double>(data[row]);
      if (v < min || v > max) {
        ++result->out_of_range;
        continue;
      }
      int idx = static_cast<int>((v - min) * scale);
      if (idx >= count) idx = count - 1;
      ++counts[idx];
    }
  }
}

// Generic per-row tally used by both sampled and filtered paths.
struct NumericTally {
  const IColumn* col;
  const NumericBuckets* buckets;
  HistogramResult* result;

  void operator()(uint32_t row) const {
    ++result->rows_scanned;
    if (col->IsMissing(row)) {
      ++result->missing;
      return;
    }
    int idx = buckets->IndexOf(col->GetDouble(row));
    if (idx < 0) {
      ++result->out_of_range;
      return;
    }
    ++result->counts[idx];
  }
};

struct StringTally {
  const uint32_t* codes;
  const std::vector<int>* code_to_bucket;
  HistogramResult* result;

  void operator()(uint32_t row) const {
    ++result->rows_scanned;
    uint32_t code = codes[row];
    if (code == StringColumn::kMissingCode) {
      ++result->missing;
      return;
    }
    int idx = (*code_to_bucket)[code];
    if (idx < 0) {
      ++result->out_of_range;
      return;
    }
    ++result->counts[idx];
  }
};

}  // namespace

void TallyHistogram(const Table& table, const std::string& column,
                    const Buckets& buckets, double rate, uint64_t seed,
                    HistogramResult* result) {
  result->counts.assign(buckets.count(), 0);
  result->sample_rate = rate < 1.0 ? rate : 1.0;
  ColumnPtr col = table.GetColumnOrNull(column);
  if (col == nullptr) return;  // Unknown column summarizes to zero counts.
  const IMembershipSet& members = *table.members();

  if (buckets.is_numeric()) {
    const NumericBuckets& nb = buckets.numeric();
    bool full_scan = rate >= 1.0;
    bool full_membership = members.kind() == IMembershipSet::Kind::kFull;
    if (full_membership) {
      if (const double* raw = col->RawDouble()) {
        if (full_scan) {
          TallyRawFull(raw, members.size(), col->null_mask(), nb, result);
        } else {
          TallySampledRawFull(raw, members.size(), col->null_mask(), nb,
                              rate, seed, result);
        }
        return;
      }
      if (const int32_t* raw = col->RawInt()) {
        if (full_scan) {
          TallyRawFull(raw, members.size(), col->null_mask(), nb, result);
        } else {
          TallySampledRawFull(raw, members.size(), col->null_mask(), nb,
                              rate, seed, result);
        }
        return;
      }
      if (const int64_t* raw = col->RawDate()) {
        if (full_scan) {
          TallyRawFull(raw, members.size(), col->null_mask(), nb, result);
        } else {
          TallySampledRawFull(raw, members.size(), col->null_mask(), nb,
                              rate, seed, result);
        }
        return;
      }
    }
    NumericTally tally{col.get(), &nb, result};
    if (full_scan) {
      ForEachRow(members, tally);
    } else {
      SampleRows(members, rate, seed, tally);
    }
    return;
  }

  // String buckets: map each dictionary code to its bucket once, then scan
  // the code array.
  const StringBuckets& sb = buckets.string();
  const uint32_t* codes = col->RawCodes();
  if (codes == nullptr) return;  // Numeric column with string buckets: zero.
  std::vector<int> code_to_bucket = sb.MapDictionary(*col);
  StringTally tally{codes, &code_to_bucket, result};
  if (rate >= 1.0) {
    ForEachRow(members, tally);
  } else {
    SampleRows(members, rate, seed, tally);
  }
}

std::string StreamingHistogramSketch::name() const {
  return "histogram-streaming(" + column_ + "," +
         std::to_string(buckets_.count()) + ")";
}

HistogramResult StreamingHistogramSketch::Zero() const {
  return HistogramResult{};
}

HistogramResult StreamingHistogramSketch::Summarize(const Table& table,
                                                    uint64_t seed) const {
  (void)seed;
  HistogramResult result;
  TallyHistogram(table, column_, buckets_, 1.0, 0, &result);
  return result;
}

HistogramResult StreamingHistogramSketch::Merge(
    const HistogramResult& left, const HistogramResult& right) const {
  return MergeHistograms(left, right);
}

std::string SampledHistogramSketch::name() const {
  return "histogram-sampled(" + column_ + "," +
         std::to_string(buckets_.count()) + "," + std::to_string(rate_) + ")";
}

HistogramResult SampledHistogramSketch::Zero() const {
  return HistogramResult{};
}

HistogramResult SampledHistogramSketch::Summarize(const Table& table,
                                                  uint64_t seed) const {
  HistogramResult result;
  TallyHistogram(table, column_, buckets_, rate_, seed, &result);
  return result;
}

HistogramResult SampledHistogramSketch::Merge(
    const HistogramResult& left, const HistogramResult& right) const {
  return MergeHistograms(left, right);
}

}  // namespace hillview
