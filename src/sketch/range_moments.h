#ifndef HILLVIEW_SKETCH_RANGE_MOMENTS_H_
#define HILLVIEW_SKETCH_RANGE_MOMENTS_H_

#include <string>
#include <vector>

#include "sketch/sketch.h"
#include "util/serialize.h"

namespace hillview {

/// Column statistics: min/max, counts, and statistical moments (§B.3
/// "Moments"). This is the workhorse of the preparation phase (§5.3): every
/// chart first runs a RangeSketch to determine its input range, and the
/// result is cached because it is deterministic.
struct RangeResult {
  // Numeric range (valid when present_count > 0 and the column is numeric).
  double min = 0;
  double max = 0;
  // String range (valid for string columns).
  std::string min_string;
  std::string max_string;
  bool is_string = false;
  /// True for integer columns: bucket planners clamp the bucket count to the
  /// number of representable integers so bars align with whole values.
  bool is_integral = false;

  int64_t present_count = 0;
  int64_t missing_count = 0;
  /// moments[i] = sum over rows of value^(i+1); mean = moments[0]/count,
  /// variance = moments[1]/count - mean².
  std::vector<double> moments;

  bool IsZero() const { return present_count == 0 && missing_count == 0; }

  int64_t TotalRows() const { return present_count + missing_count; }
  double Mean() const {
    return moments.empty() || present_count == 0
               ? 0.0
               : moments[0] / static_cast<double>(present_count);
  }
  double Variance() const {
    if (moments.size() < 2 || present_count == 0) return 0.0;
    double mean = Mean();
    return moments[1] / static_cast<double>(present_count) - mean * mean;
  }

  void Serialize(ByteWriter* w) const;
  static Status Deserialize(ByteReader* r, RangeResult* out);
};

/// Exact streaming sketch computing RangeResult for one column.
class RangeSketch final : public Sketch<RangeResult> {
 public:
  /// `num_moments` is the paper's K (>= 2 captures mean and variance).
  explicit RangeSketch(std::string column, int num_moments = 2)
      : column_(std::move(column)), num_moments_(num_moments) {}

  std::string name() const override {
    return "range(" + column_ + "," + std::to_string(num_moments_) + ")";
  }
  RangeResult Zero() const override { return {}; }
  RangeResult Summarize(const Table& table, uint64_t seed) const override;
  RangeResult Merge(const RangeResult& left,
                    const RangeResult& right) const override;

 private:
  std::string column_;
  int num_moments_;
};

/// Counts member rows (used by query planners to derive sample rates; a
/// special case of RangeSketch kept separate because it reads no column).
struct CountResult {
  int64_t rows = 0;
  void Serialize(ByteWriter* w) const { w->WriteI64(rows); }
  static Status Deserialize(ByteReader* r, CountResult* out) {
    return r->ReadI64(&out->rows);
  }
};

class CountSketch final : public Sketch<CountResult> {
 public:
  std::string name() const override { return "count"; }
  CountResult Zero() const override { return {}; }
  CountResult Summarize(const Table& table, uint64_t seed) const override {
    (void)seed;
    return CountResult{static_cast<int64_t>(table.num_rows())};
  }
  CountResult Merge(const CountResult& left,
                    const CountResult& right) const override {
    return CountResult{left.rows + right.rows};
  }
};

}  // namespace hillview

#endif  // HILLVIEW_SKETCH_RANGE_MOMENTS_H_
