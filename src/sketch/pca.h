#ifndef HILLVIEW_SKETCH_PCA_H_
#define HILLVIEW_SKETCH_PCA_H_

#include <string>
#include <vector>

#include "sketch/sketch.h"
#include "util/serialize.h"

namespace hillview {

/// Accumulated second-moment statistics for M numeric columns: enough to
/// form the M×M correlation matrix at the root (§B.3 "Principal component
/// analysis": "This matrix can be efficiently computed by a sampling-based
/// sketch"). Summary size is O(M²), independent of the row count.
struct CorrelationResult {
  int m = 0;
  int64_t count = 0;
  std::vector<double> sums;      // m entries
  std::vector<double> products;  // m*m entries, row-major
  int64_t skipped = 0;           // rows with any missing value among the M

  bool IsZero() const { return m == 0; }

  /// The correlation matrix (m*m, row-major); identity diagonals.
  std::vector<double> CorrelationMatrix() const;

  void Serialize(ByteWriter* w) const;
  static Status Deserialize(ByteReader* r, CorrelationResult* out);
};

class CorrelationSketch final : public Sketch<CorrelationResult> {
 public:
  /// Computes over `columns` (all must be numeric); samples at `rate`.
  CorrelationSketch(std::vector<std::string> columns, double rate = 1.0)
      : columns_(std::move(columns)), rate_(rate) {}

  std::string name() const override;
  CorrelationResult Zero() const override { return {}; }
  CorrelationResult Summarize(const Table& table, uint64_t seed) const override;
  CorrelationResult Merge(const CorrelationResult& left,
                          const CorrelationResult& right) const override;

 private:
  std::vector<std::string> columns_;
  double rate_;
};

/// Eigen decomposition of a symmetric matrix by cyclic Jacobi rotations.
/// Returns eigenvalues (descending) and matching unit eigenvectors (each a
/// row of `eigenvectors`). Small matrices only (M <= ~100), which covers PCA
/// over spreadsheet columns.
struct EigenDecomposition {
  std::vector<double> eigenvalues;
  std::vector<std::vector<double>> eigenvectors;
};

EigenDecomposition JacobiEigen(const std::vector<double>& matrix, int m,
                               int max_sweeps = 64);

/// Top-k principal directions of the correlation matrix: the PCA projection
/// basis (k rows of length m).
std::vector<std::vector<double>> PcaBasis(const CorrelationResult& corr,
                                          int k);

}  // namespace hillview

#endif  // HILLVIEW_SKETCH_PCA_H_
