#ifndef HILLVIEW_SKETCH_HYPERLOGLOG_H_
#define HILLVIEW_SKETCH_HYPERLOGLOG_H_

#include <string>
#include <vector>

#include "sketch/sketch.h"
#include "util/serialize.h"

namespace hillview {

/// HyperLogLog registers (§B.3 "Number of distinct elements", [40]). The
/// summary is 2^p bytes regardless of data size; merge is the pointwise max
/// of registers, which makes HLL a textbook mergeable summary.
struct HllResult {
  std::vector<uint8_t> registers;  // 2^p registers, 0 = untouched
  int64_t missing = 0;

  bool IsZero() const { return registers.empty(); }

  /// Cardinality estimate with the standard bias and small/large range
  /// corrections from Flajolet et al.
  double Estimate() const;

  void Serialize(ByteWriter* w) const {
    w->WritePodVector(registers);
    w->WriteI64(missing);
  }
  static Status Deserialize(ByteReader* r, HllResult* out) {
    HV_RETURN_IF_ERROR(r->ReadPodVector(&out->registers));
    return r->ReadI64(&out->missing);
  }
};

/// Approximate distinct-count sketch for one column.
class HyperLogLogSketch final : public Sketch<HllResult> {
 public:
  /// `precision` p selects 2^p registers; 12 gives ~1.6% typical error.
  explicit HyperLogLogSketch(std::string column, int precision = 12,
                             uint64_t hash_seed = 0x484c4c)
      : column_(std::move(column)),
        precision_(precision),
        hash_seed_(hash_seed) {}

  std::string name() const override {
    return "hyperloglog(" + column_ + "," + std::to_string(precision_) + ")";
  }
  HllResult Zero() const override { return {}; }
  HllResult Summarize(const Table& table, uint64_t seed) const override;
  HllResult Merge(const HllResult& left, const HllResult& right) const override;

  /// Registers merge by pointwise max and the hash seed is fixed, so any
  /// row-range decomposition reproduces the whole-partition registers (and
  /// missing counts sum) byte for byte.
  bool MorselMergeExact() const override { return true; }

 private:
  std::string column_;
  int precision_;
  /// Fixed hash seed: all partitions must hash identically for registers to
  /// merge; the per-partition engine seed is deliberately NOT used.
  uint64_t hash_seed_;
};

}  // namespace hillview

#endif  // HILLVIEW_SKETCH_HYPERLOGLOG_H_
