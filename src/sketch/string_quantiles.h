#ifndef HILLVIEW_SKETCH_STRING_QUANTILES_H_
#define HILLVIEW_SKETCH_STRING_QUANTILES_H_

#include <string>
#include <vector>

#include "sketch/buckets.h"
#include "sketch/sketch.h"
#include "util/serialize.h"

namespace hillview {

/// Bottom-k sample over *distinct* strings of a column (§B.1 "Equi-width
/// buckets for string data", using bottom-k sketches [92, 19]): keeps the k
/// distinct values with the smallest hashes. Because the hash is fixed
/// across partitions, merging is a union-and-truncate, and the surviving
/// values are a uniform sample of the distinct values of the whole column —
/// from which approximate quantiles over distinct strings follow.
struct BottomKResult {
  /// (hash, value), sorted ascending by hash, distinct hashes.
  std::vector<std::pair<uint64_t, std::string>> items;
  int k = 0;
  /// True when every distinct value of the scanned partitions fit in k slots
  /// (then the "sample" is exhaustive and quantiles are exact).
  bool complete = true;

  bool IsZero() const { return k == 0; }

  void Serialize(ByteWriter* w) const;
  static Status Deserialize(ByteReader* r, BottomKResult* out);
};

class BottomKStringsSketch final : public Sketch<BottomKResult> {
 public:
  explicit BottomKStringsSketch(std::string column, int k = 4096,
                                uint64_t hash_seed = 0x42544b)
      : column_(std::move(column)), k_(k), hash_seed_(hash_seed) {}

  std::string name() const override {
    return "bottomk(" + column_ + "," + std::to_string(k_) + ")";
  }
  BottomKResult Zero() const override { return {}; }
  BottomKResult Summarize(const Table& table, uint64_t seed) const override;
  BottomKResult Merge(const BottomKResult& left,
                      const BottomKResult& right) const override;

 private:
  std::string column_;
  int k_;
  uint64_t hash_seed_;
};

/// Derives string bucket boundaries from a bottom-k sample: at most
/// `max_buckets` boundaries at the 1/B, 2/B, ... quantiles of the sampled
/// distinct strings, sorted alphabetically. If the sample shows `<=
/// max_buckets` distinct values (and is complete), each value gets its own
/// bucket — the paper's "if there are few distinct values (50 or fewer), we
/// assign a bin for each value".
StringBuckets StringBucketsFromBottomK(const BottomKResult& result,
                                       int max_buckets,
                                       const std::string& max_value);

}  // namespace hillview

#endif  // HILLVIEW_SKETCH_STRING_QUANTILES_H_
