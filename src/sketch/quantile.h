#ifndef HILLVIEW_SKETCH_QUANTILE_H_
#define HILLVIEW_SKETCH_QUANTILE_H_

#include <string>
#include <vector>

#include "sketch/next_items.h"
#include "sketch/sketch.h"
#include "storage/row_order.h"
#include "util/serialize.h"

namespace hillview {

/// A uniform random sample of row keys, kept sorted under the record order.
/// The scroll-bar quantile vizketch (§4.3 "Quantile for scroll bar"): with
/// O(V²) samples the key at relative rank q is within ±1/(2V) of the true
/// q-quantile with high probability (Theorem 2).
struct QuantileResult {
  /// Sampled keys (cells of the order columns), sorted ascending.
  std::vector<std::vector<Value>> keys;
  /// Sampling rate used (same across partitions).
  double rate = 1.0;
  /// Cap on the retained sample size (decimation threshold during merges).
  int max_size = 0;

  bool IsZero() const { return max_size == 0; }

  /// The key closest to quantile q in [0,1]; empty if no samples.
  const std::vector<Value>* KeyAtQuantile(double q) const;

  void Serialize(ByteWriter* w) const;
  static Status Deserialize(ByteReader* r, QuantileResult* out);
};

class QuantileSketch final : public Sketch<QuantileResult> {
 public:
  /// `rate` is typically SampleRateForSize(QuantileSampleSize(V), total).
  /// `max_size` bounds the summary; merges decimate (keep every other
  /// element) beyond it, preserving rank statistics.
  QuantileSketch(RecordOrder order, double rate, int max_size)
      : order_(std::move(order)), rate_(rate), max_size_(max_size) {}

  std::string name() const override;
  QuantileResult Zero() const override { return {}; }
  QuantileResult Summarize(const Table& table, uint64_t seed) const override {
    return Summarize(table, seed, SketchContext{});
  }
  /// Context-aware path: reuses the worker's sort-key cache when one is
  /// provided, so repeated scroll-bar probes of the same sorted view skip
  /// the O(universe) key-extraction pass.
  QuantileResult Summarize(const Table& table, uint64_t seed,
                           const SketchContext& context) const override;
  QuantileResult Merge(const QuantileResult& left,
                       const QuantileResult& right) const override;

 private:
  int CompareKeys(const std::vector<Value>& a,
                  const std::vector<Value>& b) const;

  RecordOrder order_;
  double rate_;
  int max_size_;
};

}  // namespace hillview

#endif  // HILLVIEW_SKETCH_QUANTILE_H_
