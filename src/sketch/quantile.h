#ifndef HILLVIEW_SKETCH_QUANTILE_H_
#define HILLVIEW_SKETCH_QUANTILE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sketch/kll.h"
#include "sketch/next_items.h"
#include "sketch/sketch.h"
#include "storage/row_order.h"
#include "util/serialize.h"

namespace hillview {

/// A weighted KLL summary of row keys, kept sorted under the record order.
/// The scroll-bar quantile vizketch (§4.3 "Quantile for scroll bar"): with
/// O(V²) samples the key at relative rank q is within ±1/(2V) of the true
/// q-quantile with high probability (Theorem 2).
///
/// Each retained key carries a weight — the number of sampled rows it
/// represents. Fresh partition summaries are all unit weight; merging past
/// the size cap compacts via randomized-parity KLL compaction (kll.h),
/// doubling survivor weights instead of the old keep-every-other decimation
/// (which always kept index 0 — a deterministic bias toward the minimum key
/// that compounded with merge-tree depth, while queries kept treating every
/// key as one row). Quantile queries are weight-aware, and RankErrorBound()
/// reports the compaction-induced rank error explicitly.
struct QuantileResult {
  /// Sampled keys (cells of the order columns), sorted ascending under the
  /// sketch's record order.
  std::vector<std::vector<Value>> keys;
  /// Parallel to `keys`: sampled rows each key represents (1 until a
  /// compaction touches it; powers of two for summaries built here).
  std::vector<uint64_t> weights;
  /// Sampling rate; merges of unequal rates subsample the denser side down
  /// to the common (minimum) rate.
  double rate = 1.0;
  /// Cap on the retained item count (the KLL compaction budget).
  int max_size = 0;
  /// Coin seed for compaction parities and rate-reconciling subsamples,
  /// set from the partition seed by Summarize and XOR-combined on merge
  /// (XOR keeps the combined seed independent of the merge-tree shape, so
  /// the redo log replays a healed tree deterministically; no wall-clock).
  uint64_t seed = 0;
  /// Accumulated compaction error (see KllErrorLedger): worst-case and
  /// variance of the rank shift any single query may have suffered.
  KllErrorLedger error;

  bool IsZero() const { return max_size == 0; }

  /// Sum of all weights ≈ rate × rows summarized.
  uint64_t TotalWeight() const;

  /// The key closest to quantile q in [0,1] by weighted rank; empty if no
  /// samples.
  const std::vector<Value>* KeyAtQuantile(double q) const;

  /// Normalized rank error introduced by compactions (0 for an uncompacted
  /// summary); the sampling error of Theorem 2 is on top of this.
  double RankErrorBound() const;

  void Serialize(ByteWriter* w) const;
  /// Accepts both the current weighted format (weights travel as 1-byte
  /// power-of-two exponents) and the legacy unit-weight payload (pre-KLL
  /// workers during a rolling upgrade); rejects hostile scalars
  /// (NaN/out-of-range rate, negative max_size, weight exponents or total
  /// weight over the 2^44 cap — generous against the display-sized totals
  /// real summaries carry, but tight enough that valid payloads cannot
  /// compose into uint64 overflow downstream) with InvalidArgument.
  static Status Deserialize(ByteReader* r, QuantileResult* out);
};

/// Three-way comparison of two materialized keys (cells of the order
/// columns) under `order` — the ordering every QuantileResult's keys are
/// sorted by. Exposed so test oracles (the statistical rank-bound suite)
/// rank by the exact production order instead of a drifting copy.
int CompareQuantileKeys(const RecordOrder& order, const std::vector<Value>& a,
                        const std::vector<Value>& b);

class QuantileSketch final : public Sketch<QuantileResult> {
 public:
  /// `rate` is typically SampleRateForSize(QuantileSampleSize(V), total).
  /// `max_size` bounds the summary; merges compact (weighted KLL with
  /// randomized parity) beyond it, preserving rank statistics.
  QuantileSketch(RecordOrder order, double rate, int max_size)
      : order_(std::move(order)), rate_(rate), max_size_(max_size) {}

  std::string name() const override;
  QuantileResult Zero() const override { return {}; }
  QuantileResult Summarize(const Table& table, uint64_t seed) const override {
    return Summarize(table, seed, SketchContext{});
  }
  /// Context-aware path: reuses the worker's sort-key cache when one is
  /// provided, so repeated scroll-bar probes of the same sorted view skip
  /// the O(universe) key-extraction pass.
  QuantileResult Summarize(const Table& table, uint64_t seed,
                           const SketchContext& context) const override;
  QuantileResult Merge(const QuantileResult& left,
                       const QuantileResult& right) const override;

 private:
  int CompareKeys(const std::vector<Value>& a,
                  const std::vector<Value>& b) const;

  RecordOrder order_;
  double rate_;
  int max_size_;
};

}  // namespace hillview

#endif  // HILLVIEW_SKETCH_QUANTILE_H_
