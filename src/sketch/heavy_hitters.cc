#include "sketch/heavy_hitters.h"

#include <algorithm>
#include <map>

#include "storage/scan.h"

namespace hillview {

namespace {

struct ValueLess {
  bool operator()(const Value& a, const Value& b) const {
    return CompareValues(a, b) < 0;
  }
};

using CountMap = std::map<Value, int64_t, ValueLess>;

// Reduces a count map to at most k items while preserving the Misra-Gries
// undercount guarantee: subtract the (k+1)-st largest count from every item
// and drop non-positive items (Agarwal et al.'s mergeable-summary rule).
std::vector<HeavyHittersResult::Item> ReduceToK(const CountMap& counts,
                                                int k) {
  std::vector<HeavyHittersResult::Item> items;
  items.reserve(counts.size());
  for (const auto& [value, count] : counts) items.push_back({value, count});
  if (static_cast<int>(items.size()) <= k) return items;
  // Select the pivot over plain counts; the items themselves stay in place.
  std::vector<int64_t> by_count;
  by_count.reserve(items.size());
  for (const auto& item : items) by_count.push_back(item.count);
  std::nth_element(by_count.begin(), by_count.begin() + k, by_count.end(),
                   std::greater<int64_t>());
  int64_t pivot = by_count[k];
  std::vector<HeavyHittersResult::Item> kept;
  kept.reserve(k);
  for (auto& item : items) {
    int64_t adjusted = item.count - pivot;
    if (adjusted > 0 && static_cast<int>(kept.size()) < k) {
      kept.push_back({std::move(item.value), adjusted});
    }
  }
  return kept;
}

// Exact per-code counting for dictionary columns; the dictionary already
// materializes the distinct values, so a count is one array slot per code.
struct CodeCountTally {
  int64_t* code_counts;
  int64_t* rows_counted;
  int64_t* missing;

  void OnValue(uint32_t /*row*/, uint32_t code) {
    ++*rows_counted;
    ++code_counts[code];
  }
  void OnMissing(uint32_t /*row*/) {
    ++*rows_counted;
    ++*missing;
  }
};

// Bounded Misra-Gries counting with k counters over native numeric values
// (the scan layer filters NaN into OnMissing).
struct MisraGriesTally {
  CountMap* counts;
  int k;
  int64_t* rows_counted;
  int64_t* missing;

  template <typename T>
  void OnValue(uint32_t /*row*/, T value) {
    ++*rows_counted;
    Value v;
    if constexpr (std::is_same_v<T, double>) {
      v = value;
    } else {
      v = static_cast<int64_t>(value);
    }
    auto it = counts->find(v);
    if (it != counts->end()) {
      ++it->second;
      return;
    }
    if (static_cast<int>(counts->size()) < k) {
      counts->emplace(std::move(v), 1);
      return;
    }
    // Decrement step: all counters drop by one; zeros are evicted.
    for (auto iter = counts->begin(); iter != counts->end();) {
      if (--iter->second == 0) {
        iter = counts->erase(iter);
      } else {
        ++iter;
      }
    }
  }

  void OnMissing(uint32_t /*row*/) {
    ++*rows_counted;
    ++*missing;
  }
};

// Counts values of `column` over the member rows. For string columns the
// count runs over dictionary codes (one array slot per distinct value); for
// numeric columns a bounded Misra-Gries map is used so memory stays O(k).
CountMap CountColumn(const Table& table, const std::string& column, int k,
                     double rate, uint64_t seed, int64_t* rows_counted,
                     int64_t* missing) {
  CountMap counts;
  ColumnPtr col = table.GetColumnOrNull(column);
  if (col == nullptr) return counts;
  const IColumn& c = *col;

  if (c.RawCodes() != nullptr) {
    const auto& dict = c.Dictionary();
    std::vector<int64_t> code_counts(dict.size(), 0);
    CodeCountTally tally{code_counts.data(), rows_counted, missing};
    ScanColumn(c, *table.members(), rate, seed, tally);
    for (size_t code = 0; code < code_counts.size(); ++code) {
      if (code_counts[code] > 0) {
        counts[Value(std::string(dict[static_cast<uint32_t>(code)]))] =
            code_counts[code];
      }
    }
    return counts;
  }

  MisraGriesTally tally{&counts, k, rows_counted, missing};
  ScanColumn(c, *table.members(), rate, seed, tally);
  return counts;
}

}  // namespace

std::vector<HeavyHittersResult::Item> HeavyHittersResult::Select(
    double threshold) const {
  std::vector<Item> selected;
  double floor = threshold * static_cast<double>(rows_counted);
  for (const auto& item : items) {
    if (static_cast<double>(item.count) >= floor) selected.push_back(item);
  }
  std::sort(selected.begin(), selected.end(),
            [](const Item& a, const Item& b) {
              if (a.count != b.count) return a.count > b.count;
              return CompareValues(a.value, b.value) < 0;
            });
  return selected;
}

void HeavyHittersResult::Serialize(ByteWriter* w) const {
  w->WriteU32(static_cast<uint32_t>(items.size()));
  for (const auto& item : items) {
    SerializeValue(item.value, w);
    w->WriteI64(item.count);
  }
  w->WriteI64(rows_counted);
  w->WriteI64(missing);
  w->WriteDouble(sample_rate);
  w->WriteI32(max_size);
}

Status HeavyHittersResult::Deserialize(ByteReader* r,
                                       HeavyHittersResult* out) {
  uint32_t n = 0;
  // Each item is at least a value tag (u8) and a count (i64).
  HV_RETURN_IF_ERROR(r->ReadCount(&n, /*min_element_bytes=*/9));
  out->items.resize(n);
  for (auto& item : out->items) {
    HV_RETURN_IF_ERROR(DeserializeValue(r, &item.value));
    HV_RETURN_IF_ERROR(r->ReadI64(&item.count));
  }
  HV_RETURN_IF_ERROR(r->ReadI64(&out->rows_counted));
  HV_RETURN_IF_ERROR(r->ReadI64(&out->missing));
  HV_RETURN_IF_ERROR(r->ReadDouble(&out->sample_rate));
  HV_RETURN_IF_ERROR(r->ReadI32(&out->max_size));
  return Status::OK();
}

HeavyHittersResult MisraGriesSketch::Summarize(const Table& table,
                                               uint64_t seed) const {
  (void)seed;
  HeavyHittersResult result;
  result.max_size = k_;
  CountMap counts = CountColumn(table, column_, k_, 1.0, 0,
                                &result.rows_counted, &result.missing);
  result.items = ReduceToK(counts, k_);
  return result;
}

HeavyHittersResult MisraGriesSketch::Merge(
    const HeavyHittersResult& left, const HeavyHittersResult& right) const {
  if (left.IsZero()) return right;
  if (right.IsZero()) return left;
  CountMap counts;
  for (const auto& item : left.items) counts[item.value] += item.count;
  for (const auto& item : right.items) counts[item.value] += item.count;
  HeavyHittersResult out;
  out.max_size = std::max(left.max_size, right.max_size);
  out.rows_counted = left.rows_counted + right.rows_counted;
  out.missing = left.missing + right.missing;
  out.items = ReduceToK(counts, out.max_size);
  return out;
}

HeavyHittersResult SampledHeavyHittersSketch::Summarize(const Table& table,
                                                        uint64_t seed) const {
  HeavyHittersResult result;
  result.max_size = k_;
  result.sample_rate = rate_;
  // The sampled variant keeps every sampled value; the summary size is
  // bounded by the global sample size n = K² log(K/δ), independent of the
  // data size. Selection against the 3n/(4K) threshold happens at the root.
  CountMap counts = CountColumn(table, column_, k_, rate_, seed,
                                &result.rows_counted, &result.missing);
  result.items.reserve(counts.size());
  for (auto& [value, count] : counts) result.items.push_back({value, count});
  return result;
}

HeavyHittersResult SampledHeavyHittersSketch::Merge(
    const HeavyHittersResult& left, const HeavyHittersResult& right) const {
  if (left.IsZero()) return right;
  if (right.IsZero()) return left;
  CountMap counts;
  for (const auto& item : left.items) counts[item.value] += item.count;
  for (const auto& item : right.items) counts[item.value] += item.count;
  HeavyHittersResult out;
  out.max_size = std::max(left.max_size, right.max_size);
  out.rows_counted = left.rows_counted + right.rows_counted;
  out.missing = left.missing + right.missing;
  out.sample_rate = std::max(left.sample_rate, right.sample_rate);
  out.items.reserve(counts.size());
  for (auto& [value, count] : counts) out.items.push_back({value, count});
  return out;
}

}  // namespace hillview
