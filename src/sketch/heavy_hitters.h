#ifndef HILLVIEW_SKETCH_HEAVY_HITTERS_H_
#define HILLVIEW_SKETCH_HEAVY_HITTERS_H_

#include <string>
#include <vector>

#include "sketch/next_items.h"
#include "sketch/sketch.h"
#include "util/serialize.h"

namespace hillview {

/// Approximate frequent-elements summary for one column. Used by both the
/// Misra-Gries streaming sketch (§B.2 "Heavy hitters (streaming)", [68]) and
/// the sampling sketch (§4.3 / Theorem 4).
struct HeavyHittersResult {
  struct Item {
    Value value;
    int64_t count = 0;  // approximate (MG: undercount; sampled: sample count)
  };

  std::vector<Item> items;
  /// Rows contributing to counts: all scanned rows for MG, sampled rows for
  /// the sampling sketch.
  int64_t rows_counted = 0;
  int64_t missing = 0;
  double sample_rate = 1.0;
  int max_size = 0;  // K

  bool IsZero() const { return max_size == 0; }

  /// Final selection at the root: items whose estimated relative frequency
  /// is at least `threshold` (e.g. 3/(4K) of samples for the sampling
  /// sketch, Theorem 4). Returns items sorted by descending count.
  std::vector<Item> Select(double threshold) const;

  void Serialize(ByteWriter* w) const;
  static Status Deserialize(ByteReader* r, HeavyHittersResult* out);
};

/// Misra-Gries with K counters. Exact undercount guarantee: true_count -
/// N/K <= count <= true_count. Merge follows Agarwal et al. [2]: add
/// counters pointwise, then subtract the (K+1)-st largest count and drop
/// non-positive counters — preserving the MG error bound.
class MisraGriesSketch final : public Sketch<HeavyHittersResult> {
 public:
  MisraGriesSketch(std::string column, int k)
      : column_(std::move(column)), k_(k) {}

  std::string name() const override {
    return "heavy-hitters-mg(" + column_ + "," + std::to_string(k_) + ")";
  }
  HeavyHittersResult Zero() const override { return {}; }
  HeavyHittersResult Summarize(const Table& table,
                               uint64_t seed) const override;
  HeavyHittersResult Merge(const HeavyHittersResult& left,
                           const HeavyHittersResult& right) const override;

 private:
  std::string column_;
  int k_;
};

/// Sampling-based heavy hitters (§4.3): sample at `rate` (chosen so the
/// global sample has n = K² log(K/δ) rows), count sampled values, and at the
/// root select values with frequency >= 3n/(4K). "This method is
/// particularly efficient if K is small... better than [Misra-Gries] when
/// K >= 100" (§B.2).
class SampledHeavyHittersSketch final : public Sketch<HeavyHittersResult> {
 public:
  SampledHeavyHittersSketch(std::string column, int k, double rate)
      : column_(std::move(column)), k_(k), rate_(rate) {}

  std::string name() const override {
    return "heavy-hitters-sampled(" + column_ + "," + std::to_string(k_) +
           "," + std::to_string(rate_) + ")";
  }
  HeavyHittersResult Zero() const override { return {}; }
  HeavyHittersResult Summarize(const Table& table,
                               uint64_t seed) const override;
  HeavyHittersResult Merge(const HeavyHittersResult& left,
                           const HeavyHittersResult& right) const override;

 private:
  std::string column_;
  int k_;
  double rate_;
};

}  // namespace hillview

#endif  // HILLVIEW_SKETCH_HEAVY_HITTERS_H_
