#ifndef HILLVIEW_SKETCH_NEXT_ITEMS_H_
#define HILLVIEW_SKETCH_NEXT_ITEMS_H_

#include <optional>
#include <string>
#include <vector>

#include "sketch/sketch.h"
#include "storage/row_order.h"
#include "util/serialize.h"

namespace hillview {

/// One distinct row of the tabular view: the cells of the sort-order columns
/// (the comparison key) followed by any extra display columns, plus the
/// number of duplicate rows it represents (§3.3: "Aggregate duplicates and
/// show repetition counts").
///
/// Contract note: the key cells and the count are exact and shard-split
/// invariant; the display cells come from *one representative* of the
/// duplicate group (rows equal under the sort order may differ in display
/// columns), and which representative survives depends on the merge order.
struct RowSnapshot {
  std::vector<Value> values;
  int64_t count = 1;

  void Serialize(ByteWriter* w) const;
  static Status Deserialize(ByteReader* r, RowSnapshot* out);
};

/// Serialization helpers for Value shared by row-shaped summaries.
void SerializeValue(const Value& v, ByteWriter* w);
Status DeserializeValue(ByteReader* r, Value* out);

/// The K distinct rows following the start key in the sort order, each with
/// its duplicate count. Sorted ascending under the order.
struct NextItemsResult {
  std::vector<RowSnapshot> rows;
  /// Number of member rows at or before the start key (exclusive); drives
  /// the scroll-bar position indicator.
  int64_t rows_before = 0;

  bool IsZero() const { return rows.empty() && rows_before == 0; }

  void Serialize(ByteWriter* w) const;
  static Status Deserialize(ByteReader* r, NextItemsResult* out);
};

/// The "Next items" vizketch (§4.3): renders a page of the tabular view.
/// Summarize scans a partition keeping the K smallest distinct rows strictly
/// greater than the start key; Merge merges two such lists keeping the K
/// smallest (the paper's priority-heap description, generalized with
/// duplicate counts like the Java NextKSketch).
class NextItemsSketch final : public Sketch<NextItemsResult> {
 public:
  /// `order` defines the comparison key; `display_columns` are extra columns
  /// materialized into the snapshots (not compared). `start_key` holds cell
  /// values for the order columns; rows <= start_key are skipped (nullopt
  /// starts at the beginning, the paper's R = ⊥).
  NextItemsSketch(RecordOrder order, std::vector<std::string> display_columns,
                  std::optional<std::vector<Value>> start_key, int k)
      : order_(std::move(order)),
        display_columns_(std::move(display_columns)),
        start_key_(std::move(start_key)),
        k_(k) {}

  std::string name() const override;
  NextItemsResult Zero() const override { return {}; }
  NextItemsResult Summarize(const Table& table, uint64_t seed) const override {
    return Summarize(table, seed, SketchContext{});
  }
  /// Context-aware path: reuses the worker's sort-key cache when one is
  /// provided, so repeated scrolls of the same (table, order) view skip the
  /// O(universe) key-extraction pass.
  NextItemsResult Summarize(const Table& table, uint64_t seed,
                            const SketchContext& context) const override;
  NextItemsResult Merge(const NextItemsResult& left,
                        const NextItemsResult& right) const override;

  /// Number of key (sort-order) columns at the front of each snapshot.
  int num_key_columns() const {
    return static_cast<int>(order_.orientations().size());
  }

 private:
  /// Lexicographic comparison of two snapshots on the key prefix, honoring
  /// per-column sort direction.
  int CompareKeys(const std::vector<Value>& a,
                  const std::vector<Value>& b) const;

  RecordOrder order_;
  std::vector<std::string> display_columns_;
  std::optional<std::vector<Value>> start_key_;
  int k_;
};

}  // namespace hillview

#endif  // HILLVIEW_SKETCH_NEXT_ITEMS_H_
