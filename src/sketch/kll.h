#ifndef HILLVIEW_SKETCH_KLL_H_
#define HILLVIEW_SKETCH_KLL_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/random.h"

namespace hillview {

/// Weighted KLL quantile-summary core (Karnin-Lang-Liberty, FOCS'16),
/// adapted to the flattened representation the quantile vizketch ships over
/// the wire: one globally key-sorted item sequence with a parallel weight
/// vector. A "compactor level" is a weight class — all items of weight w —
/// so level h holds the survivors of h pairwise compactions (w = 2^h for
/// summaries we built ourselves; hostile wire input may carry arbitrary
/// weights, which the planner still handles by exact-weight grouping).
///
/// The split below keeps the algorithms generic over the item type without
/// templating the whole sketch: every decision (which level to compact,
/// which item of a pair survives, which items a subsample keeps, where a
/// weighted quantile lands) depends only on the weight vector, so the
/// planners live in kll.cc and return index lists; the one-line templates
/// here apply those indices to whatever the items are (the quantile sketch
/// stores materialized key tuples, `std::vector<Value>`).
///
/// Randomness is an explicit `Random` (xoshiro) seeded by the caller from
/// the sketch seed — never wall-clock — so the redo log replays a crashed
/// merge tree to the identical summary (§5.8).

/// Geometry of the compaction schedule. Level capacities follow
///   k_h = ceil(k * c^(H-1-h)),  h = 0 (weight 1) .. H-1 (top),
/// i.e. the top (heaviest) level keeps k items and each level below decays
/// by c, the KLL shape that concentrates memory where an error hurts most.
/// k is derived from the caller's total item budget so the geometric sum
/// sum_h k_h ~ k/(1-c) stays within it.
struct KllParams {
  /// Decay ratio c. 2/3 is the KLL paper's recommendation.
  static constexpr double kDecay = 2.0 / 3.0;
  /// No level's capacity decays below this (a 1-item level cannot compact).
  static constexpr int kMinLevelCapacity = 2;

  /// Top-level capacity for a total item budget: k = ceil(budget*(1-c)),
  /// clamped to kMinLevelCapacity.
  static int TopCapacityForBudget(int budget);

  /// ceil(k * c^(levels_above_this_one)) clamped to kMinLevelCapacity.
  static int LevelCapacity(int top_capacity, int levels_above);
};

/// Error ledger for one summary: every compaction of a weight-w level
/// perturbs any single rank query by at most w (only the pair straddling
/// the query point can flip), with mean zero and variance w² under the
/// random parity. Accumulated across merges (ledgers add), it yields both a
/// deterministic worst-case bound (Σw) and a concentration bound (Σw²).
struct KllErrorLedger {
  uint64_t worst = 0;     // Σ w over compactions: worst-case rank shift
  double variance = 0.0;  // Σ w² over compactions: rank-shift variance

  void Add(const KllErrorLedger& other) {
    worst += other.worst;
    variance += other.variance;
  }
};

/// Normalized (fraction-of-total-rank) error bound for a summary with the
/// given ledger and total weight: min(worst-case, 3σ concentration). Zero
/// for an uncompacted (all unit weight) summary.
double KllRankErrorBound(const KllErrorLedger& ledger, uint64_t total_weight);

/// Compacts `weights` (parallel to a key-sorted item sequence) until at most
/// `budget` items survive: repeatedly picks the lowest weight class over its
/// schedule capacity (or the lowest compactable class once none is), pairs
/// its items in rank order, and keeps one item per pair — the even or the
/// odd one, a single coin per compaction — at doubled weight, leaving the
/// unpaired tail item untouched so total weight is conserved exactly.
/// Appends the survivors' original indices (ascending, so applying them
/// preserves sort order) to `kept`, rewrites `weights` to the survivors'
/// new weights, and charges each compaction to `ledger`. No-op (identity
/// `kept`) when the sequence already fits.
void KllCompactToBudget(std::vector<uint64_t>* weights, int budget,
                        Random* coin, KllErrorLedger* ledger,
                        std::vector<uint32_t>* kept);

/// Bernoulli-thins `n` items with keep probability `p` (the rate-reconciling
/// subsample of a merge between partitions sampled at different rates):
/// appends kept indices in ascending order. p >= 1 keeps everything.
void KllSubsampleIndices(size_t n, double p, Random* coin,
                         std::vector<uint32_t>* kept);

/// Weighted quantile select over a key-sorted weight vector: the index of
/// the item covering rank position q*(W-1)+1/2 of total weight W (for unit
/// weights this is round(q*(n-1)), the classic midpoint rule). Returns
/// SIZE_MAX when empty. q is clamped to [0,1].
size_t KllSelectIndex(const std::vector<uint64_t>& weights, double q);

/// Applies a planner's kept-index list to the item sequence the weights
/// were parallel to. Indices must be ascending (the planners guarantee it).
template <typename Item>
void KllApplyKept(std::vector<Item>* items,
                  const std::vector<uint32_t>& kept) {
  for (size_t i = 0; i < kept.size(); ++i) {
    if (kept[i] != i) (*items)[i] = std::move((*items)[kept[i]]);
  }
  items->resize(kept.size());
}

/// Merges two key-sorted weighted sequences into one (weights ride along
/// with their items; nothing is compacted here — the caller compacts the
/// result against its budget). `less` is a strict weak order over items,
/// e.g. the sketch's RecordOrder comparator.
template <typename Item, typename Less>
void KllMergeSorted(const std::vector<Item>& a_items,
                    const std::vector<uint64_t>& a_weights,
                    const std::vector<Item>& b_items,
                    const std::vector<uint64_t>& b_weights,
                    std::vector<Item>* out_items,
                    std::vector<uint64_t>* out_weights, Less less) {
  out_items->clear();
  out_weights->clear();
  out_items->reserve(a_items.size() + b_items.size());
  out_weights->reserve(a_items.size() + b_items.size());
  size_t i = 0, j = 0;
  while (i < a_items.size() && j < b_items.size()) {
    if (less(b_items[j], a_items[i])) {
      out_items->push_back(b_items[j]);
      out_weights->push_back(b_weights[j]);
      ++j;
    } else {
      out_items->push_back(a_items[i]);
      out_weights->push_back(a_weights[i]);
      ++i;
    }
  }
  for (; i < a_items.size(); ++i) {
    out_items->push_back(a_items[i]);
    out_weights->push_back(a_weights[i]);
  }
  for (; j < b_items.size(); ++j) {
    out_items->push_back(b_items[j]);
    out_weights->push_back(b_weights[j]);
  }
}

}  // namespace hillview

#endif  // HILLVIEW_SKETCH_KLL_H_
