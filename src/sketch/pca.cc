#include "sketch/pca.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "storage/scan.h"

namespace hillview {

std::vector<double> CorrelationResult::CorrelationMatrix() const {
  std::vector<double> corr(static_cast<size_t>(m) * m, 0.0);
  if (count == 0) return corr;
  double n = static_cast<double>(count);
  std::vector<double> mean(m), stddev(m);
  for (int i = 0; i < m; ++i) {
    mean[i] = sums[i] / n;
    double var = products[i * m + i] / n - mean[i] * mean[i];
    stddev[i] = var > 0 ? std::sqrt(var) : 0.0;
  }
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < m; ++j) {
      if (i == j) {
        corr[i * m + j] = 1.0;
        continue;
      }
      double cov = products[i * m + j] / n - mean[i] * mean[j];
      double denom = stddev[i] * stddev[j];
      corr[i * m + j] = denom > 0 ? cov / denom : 0.0;
    }
  }
  return corr;
}

void CorrelationResult::Serialize(ByteWriter* w) const {
  w->WriteI32(m);
  w->WriteI64(count);
  w->WritePodVector(sums);
  w->WritePodVector(products);
  w->WriteI64(skipped);
}

Status CorrelationResult::Deserialize(ByteReader* r, CorrelationResult* out) {
  HV_RETURN_IF_ERROR(r->ReadI32(&out->m));
  HV_RETURN_IF_ERROR(r->ReadI64(&out->count));
  HV_RETURN_IF_ERROR(r->ReadPodVector(&out->sums));
  HV_RETURN_IF_ERROR(r->ReadPodVector(&out->products));
  HV_RETURN_IF_ERROR(r->ReadI64(&out->skipped));
  return Status::OK();
}

std::string CorrelationSketch::name() const {
  std::string n = "correlation(";
  for (const auto& c : columns_) {
    n += c;
    n += ",";
  }
  n += std::to_string(rate_) + ")";
  return n;
}

CorrelationResult CorrelationSketch::Summarize(const Table& table,
                                               uint64_t seed) const {
  CorrelationResult result;
  result.m = static_cast<int>(columns_.size());
  result.sums.assign(result.m, 0.0);
  result.products.assign(static_cast<size_t>(result.m) * result.m, 0.0);

  std::vector<RawCursor> cols;
  for (const auto& name : columns_) {
    ColumnPtr c = table.GetColumnOrNull(name);
    if (c == nullptr || !IsNumericKind(c->kind())) return result;
    cols.emplace_back(c.get());
  }
  const int m = result.m;
  std::vector<double> row_values(m);

  auto tally = [&](uint32_t row) {
    for (int i = 0; i < m; ++i) {
      if (cols[i].IsMissing(row)) {
        ++result.skipped;
        return;
      }
      row_values[i] = cols[i].AsDouble(row);
    }
    ++result.count;
    for (int i = 0; i < m; ++i) {
      result.sums[i] += row_values[i];
      for (int j = i; j < m; ++j) {
        result.products[i * m + j] += row_values[i] * row_values[j];
      }
    }
  };
  ScanRows(*table.members(), rate_, seed, tally);
  // Mirror the upper triangle.
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < i; ++j) {
      result.products[i * m + j] = result.products[j * m + i];
    }
  }
  return result;
}

CorrelationResult CorrelationSketch::Merge(
    const CorrelationResult& left, const CorrelationResult& right) const {
  if (left.IsZero()) return right;
  if (right.IsZero()) return left;
  CorrelationResult out = left;
  out.count += right.count;
  out.skipped += right.skipped;
  for (size_t i = 0; i < out.sums.size(); ++i) out.sums[i] += right.sums[i];
  for (size_t i = 0; i < out.products.size(); ++i) {
    out.products[i] += right.products[i];
  }
  return out;
}

EigenDecomposition JacobiEigen(const std::vector<double>& matrix, int m,
                               int max_sweeps) {
  std::vector<double> a = matrix;  // Working copy, mutated in place.
  // v starts as identity; accumulates rotations (columns are eigenvectors).
  std::vector<double> v(static_cast<size_t>(m) * m, 0.0);
  for (int i = 0; i < m; ++i) v[i * m + i] = 1.0;

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (int i = 0; i < m; ++i) {
      for (int j = i + 1; j < m; ++j) off += a[i * m + j] * a[i * m + j];
    }
    if (off < 1e-18) break;
    for (int p = 0; p < m; ++p) {
      for (int q = p + 1; q < m; ++q) {
        double apq = a[p * m + q];
        if (std::fabs(apq) < 1e-18) continue;
        double app = a[p * m + p], aqq = a[q * m + q];
        double theta = (aqq - app) / (2.0 * apq);
        double t = (theta >= 0 ? 1.0 : -1.0) /
                   (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        double c = 1.0 / std::sqrt(t * t + 1.0);
        double s = t * c;
        for (int i = 0; i < m; ++i) {
          double aip = a[i * m + p], aiq = a[i * m + q];
          a[i * m + p] = c * aip - s * aiq;
          a[i * m + q] = s * aip + c * aiq;
        }
        for (int i = 0; i < m; ++i) {
          double api = a[p * m + i], aqi = a[q * m + i];
          a[p * m + i] = c * api - s * aqi;
          a[q * m + i] = s * api + c * aqi;
        }
        for (int i = 0; i < m; ++i) {
          double vip = v[i * m + p], viq = v[i * m + q];
          v[i * m + p] = c * vip - s * viq;
          v[i * m + q] = s * vip + c * viq;
        }
      }
    }
  }

  EigenDecomposition out;
  std::vector<int> order(m);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int x, int y) {
    return a[x * m + x] > a[y * m + y];
  });
  out.eigenvalues.reserve(m);
  out.eigenvectors.reserve(m);
  for (int idx : order) {
    out.eigenvalues.push_back(a[idx * m + idx]);
    std::vector<double> vec(m);
    for (int i = 0; i < m; ++i) vec[i] = v[i * m + idx];
    out.eigenvectors.push_back(std::move(vec));
  }
  return out;
}

std::vector<std::vector<double>> PcaBasis(const CorrelationResult& corr,
                                          int k) {
  if (corr.m == 0 || k <= 0) return {};
  EigenDecomposition eigen = JacobiEigen(corr.CorrelationMatrix(), corr.m);
  int take = std::min<int>(k, corr.m);
  eigen.eigenvectors.resize(take);
  return eigen.eigenvectors;
}

}  // namespace hillview
