#ifndef HILLVIEW_SKETCH_BUCKETS_H_
#define HILLVIEW_SKETCH_BUCKETS_H_

#include <algorithm>
#include <cmath>
#include <string>
#include <string_view>
#include <vector>

#include "storage/column.h"
#include "util/serialize.h"

namespace hillview {

/// Equi-width numeric bucketing over [min, max]: B intervals of equal width;
/// values equal to max land in the last bucket (the paper's [x0, x1) range
/// with the conventional closed top bucket). Out-of-range values return -1.
class NumericBuckets {
 public:
  NumericBuckets() = default;
  NumericBuckets(double min, double max, int count)
      : min_(min), max_(max), count_(std::max(1, count)) {
    width_ = (max_ - min_) / count_;
  }

  int IndexOf(double v) const {
    // NaN compares false against both bounds, so without this check it would
    // reach the cast below with an undefined result; the scan layer treats
    // NaN as missing before bucketing, this guards every other caller.
    if (std::isnan(v)) return -1;
    if (v < min_ || v > max_) return -1;
    if (v == max_) return count_ - 1;
    int idx = static_cast<int>((v - min_) / width_);
    // Guard against floating point edge effects at the top boundary.
    return std::min(idx, count_ - 1);
  }

  double LowBoundary(int bucket) const { return min_ + width_ * bucket; }
  double HighBoundary(int bucket) const { return min_ + width_ * (bucket + 1); }

  double min() const { return min_; }
  double max() const { return max_; }
  int count() const { return count_; }

  void Serialize(ByteWriter* w) const {
    w->WriteDouble(min_);
    w->WriteDouble(max_);
    w->WriteI32(count_);
  }
  static Status Deserialize(ByteReader* r, NumericBuckets* out) {
    double min = 0, max = 0;
    int32_t count = 0;
    HV_RETURN_IF_ERROR(r->ReadDouble(&min));
    HV_RETURN_IF_ERROR(r->ReadDouble(&max));
    HV_RETURN_IF_ERROR(r->ReadI32(&count));
    *out = NumericBuckets(min, max, count);
    return Status::OK();
  }

 private:
  double min_ = 0;
  double max_ = 1;
  int count_ = 1;
  double width_ = 1;
};

/// Buckets over strings in alphabetical order (§B.1 "equi-width buckets for
/// string data"). Bucket i covers [boundary[i], boundary[i+1]); the last
/// bucket is unbounded above unless `max_inclusive` is set, in which case it
/// covers [boundary[B-1], max_inclusive]. Strings below boundary[0] return -1.
class StringBuckets {
 public:
  StringBuckets() = default;
  explicit StringBuckets(std::vector<std::string> boundaries,
                         std::string max_inclusive = "",
                         bool has_max = false)
      : boundaries_(std::move(boundaries)),
        max_(std::move(max_inclusive)),
        has_max_(has_max) {}

  int IndexOf(std::string_view s) const {
    if (boundaries_.empty()) return -1;
    if (s < boundaries_[0]) return -1;
    if (has_max_ && s > max_) return -1;
    // Last boundary <= s.
    auto it = std::upper_bound(boundaries_.begin(), boundaries_.end(), s);
    return static_cast<int>(it - boundaries_.begin()) - 1;
  }

  int count() const { return static_cast<int>(boundaries_.size()); }
  const std::vector<std::string>& boundaries() const { return boundaries_; }

  /// Precomputes the bucket of every dictionary code of `col` so scans map
  /// code -> bucket with one array load. The dictionary is partition-local,
  /// which is why the mapping cannot be shipped with the sketch.
  std::vector<int> MapDictionary(const IColumn& col) const {
    const auto& dict = col.Dictionary();
    std::vector<int> map(dict.size());
    for (size_t i = 0; i < dict.size(); ++i) {
      map[i] = IndexOf(dict[i]);
    }
    return map;
  }

  void Serialize(ByteWriter* w) const {
    w->WriteU32(static_cast<uint32_t>(boundaries_.size()));
    for (const auto& b : boundaries_) w->WriteString(b);
    w->WriteString(max_);
    w->WriteBool(has_max_);
  }
  static Status Deserialize(ByteReader* r, StringBuckets* out) {
    uint32_t n = 0;
    // Each boundary carries at least its length prefix; a corrupt count
    // must not drive a giant allocation.
    HV_RETURN_IF_ERROR(r->ReadCount(&n, /*min_element_bytes=*/4));
    std::vector<std::string> boundaries(n);
    for (auto& b : boundaries) HV_RETURN_IF_ERROR(r->ReadString(&b));
    std::string max;
    bool has_max = false;
    HV_RETURN_IF_ERROR(r->ReadString(&max));
    HV_RETURN_IF_ERROR(r->ReadBool(&has_max));
    *out = StringBuckets(std::move(boundaries), std::move(max), has_max);
    return Status::OK();
  }

 private:
  std::vector<std::string> boundaries_;
  std::string max_;
  bool has_max_ = false;
};

/// Either numeric or string bucketing, selected by the column kind.
class Buckets {
 public:
  Buckets() = default;
  Buckets(NumericBuckets b) : numeric_(std::move(b)), is_numeric_(true) {}  // NOLINT
  Buckets(StringBuckets b) : string_(std::move(b)), is_numeric_(false) {}   // NOLINT

  bool is_numeric() const { return is_numeric_; }
  int count() const {
    return is_numeric_ ? numeric_.count() : string_.count();
  }
  const NumericBuckets& numeric() const { return numeric_; }
  const StringBuckets& string() const { return string_; }

  void Serialize(ByteWriter* w) const {
    w->WriteBool(is_numeric_);
    if (is_numeric_) {
      numeric_.Serialize(w);
    } else {
      string_.Serialize(w);
    }
  }
  static Status Deserialize(ByteReader* r, Buckets* out) {
    bool is_numeric = false;
    HV_RETURN_IF_ERROR(r->ReadBool(&is_numeric));
    if (is_numeric) {
      NumericBuckets b;
      HV_RETURN_IF_ERROR(NumericBuckets::Deserialize(r, &b));
      *out = Buckets(std::move(b));
    } else {
      StringBuckets b;
      HV_RETURN_IF_ERROR(StringBuckets::Deserialize(r, &b));
      *out = Buckets(std::move(b));
    }
    return Status::OK();
  }

 private:
  NumericBuckets numeric_;
  StringBuckets string_;
  bool is_numeric_ = true;
};

}  // namespace hillview

#endif  // HILLVIEW_SKETCH_BUCKETS_H_
