#include "sketch/next_items.h"

#include <algorithm>

#include "storage/scan.h"

namespace hillview {

void SerializeValue(const Value& v, ByteWriter* w) {
  if (std::holds_alternative<std::monostate>(v)) {
    w->WriteU8(0);
  } else if (const auto* i = std::get_if<int64_t>(&v)) {
    w->WriteU8(1);
    w->WriteI64(*i);
  } else if (const auto* d = std::get_if<double>(&v)) {
    w->WriteU8(2);
    w->WriteDouble(*d);
  } else {
    w->WriteU8(3);
    w->WriteString(std::get<std::string>(v));
  }
}

Status DeserializeValue(ByteReader* r, Value* out) {
  uint8_t tag = 0;
  HV_RETURN_IF_ERROR(r->ReadU8(&tag));
  switch (tag) {
    case 0:
      *out = std::monostate{};
      return Status::OK();
    case 1: {
      int64_t i = 0;
      HV_RETURN_IF_ERROR(r->ReadI64(&i));
      *out = i;
      return Status::OK();
    }
    case 2: {
      double d = 0;
      HV_RETURN_IF_ERROR(r->ReadDouble(&d));
      *out = d;
      return Status::OK();
    }
    case 3: {
      std::string s;
      HV_RETURN_IF_ERROR(r->ReadString(&s));
      *out = std::move(s);
      return Status::OK();
    }
    default:
      return Status::OutOfRange("bad Value tag");
  }
}

void RowSnapshot::Serialize(ByteWriter* w) const {
  w->WriteU32(static_cast<uint32_t>(values.size()));
  for (const auto& v : values) SerializeValue(v, w);
  w->WriteI64(count);
}

Status RowSnapshot::Deserialize(ByteReader* r, RowSnapshot* out) {
  uint32_t n = 0;
  HV_RETURN_IF_ERROR(r->ReadU32(&n));
  out->values.resize(n);
  for (auto& v : out->values) HV_RETURN_IF_ERROR(DeserializeValue(r, &v));
  return r->ReadI64(&out->count);
}

void NextItemsResult::Serialize(ByteWriter* w) const {
  w->WriteU32(static_cast<uint32_t>(rows.size()));
  for (const auto& row : rows) row.Serialize(w);
  w->WriteI64(rows_before);
}

Status NextItemsResult::Deserialize(ByteReader* r, NextItemsResult* out) {
  uint32_t n = 0;
  HV_RETURN_IF_ERROR(r->ReadU32(&n));
  out->rows.resize(n);
  for (auto& row : out->rows) {
    HV_RETURN_IF_ERROR(RowSnapshot::Deserialize(r, &row));
  }
  return r->ReadI64(&out->rows_before);
}

std::string NextItemsSketch::name() const {
  std::string n = "next-items(";
  for (const auto& o : order_.orientations()) {
    n += o.column;
    n += o.ascending ? "+" : "-";
  }
  n += "," + std::to_string(k_) + ")";
  return n;
}

int NextItemsSketch::CompareKeys(const std::vector<Value>& a,
                                 const std::vector<Value>& b) const {
  const auto& orientations = order_.orientations();
  for (size_t i = 0; i < orientations.size(); ++i) {
    int c = CompareValues(a[i], b[i]);
    if (c != 0) return orientations[i].ascending ? c : -c;
  }
  return 0;
}

NextItemsResult NextItemsSketch::Summarize(const Table& table,
                                           uint64_t seed) const {
  (void)seed;
  NextItemsResult result;
  if (k_ <= 0) return result;
  RowComparator comparator(table, order_);

  // Distinct kept rows, sorted ascending under the order, with counts.
  // Invariant: a row enters only while it is among the K smallest distinct
  // rows seen so far; once evicted it can never re-enter, so the counts of
  // the finally-kept rows are exact.
  std::vector<uint32_t> reps;
  std::vector<int64_t> counts;
  reps.reserve(k_ + 1);
  counts.reserve(k_ + 1);

  ScanRows(*table.members(), 1.0, 0, [&](uint32_t row) {
    if (start_key_.has_value() &&
        CompareRowToKey(table, order_, row, *start_key_) <= 0) {
      ++result.rows_before;
      return;
    }
    // Position of the first rep >= row.
    auto it = std::lower_bound(
        reps.begin(), reps.end(), row,
        [&](uint32_t rep, uint32_t r) { return comparator.Compare(rep, r) < 0; });
    size_t pos = static_cast<size_t>(it - reps.begin());
    if (it != reps.end() && comparator.Compare(*it, row) == 0) {
      ++counts[pos];
      return;
    }
    if (static_cast<int>(reps.size()) < k_) {
      reps.insert(it, row);
      counts.insert(counts.begin() + pos, 1);
      return;
    }
    if (pos < reps.size()) {
      reps.insert(it, row);
      counts.insert(counts.begin() + pos, 1);
      reps.pop_back();
      counts.pop_back();
    }
  });

  // Materialize the kept rows.
  std::vector<std::string> all_columns = order_.ColumnNames();
  all_columns.insert(all_columns.end(), display_columns_.begin(),
                     display_columns_.end());
  result.rows.reserve(reps.size());
  for (size_t i = 0; i < reps.size(); ++i) {
    RowSnapshot snap;
    snap.values = table.GetRow(reps[i], all_columns);
    snap.count = counts[i];
    result.rows.push_back(std::move(snap));
  }
  return result;
}

NextItemsResult NextItemsSketch::Merge(const NextItemsResult& left,
                                       const NextItemsResult& right) const {
  NextItemsResult out;
  out.rows_before = left.rows_before + right.rows_before;
  out.rows.reserve(std::min<size_t>(left.rows.size() + right.rows.size(), k_));
  size_t i = 0, j = 0;
  while (static_cast<int>(out.rows.size()) < k_ &&
         (i < left.rows.size() || j < right.rows.size())) {
    if (i == left.rows.size()) {
      out.rows.push_back(right.rows[j++]);
      continue;
    }
    if (j == right.rows.size()) {
      out.rows.push_back(left.rows[i++]);
      continue;
    }
    int c = CompareKeys(left.rows[i].values, right.rows[j].values);
    if (c < 0) {
      out.rows.push_back(left.rows[i++]);
    } else if (c > 0) {
      out.rows.push_back(right.rows[j++]);
    } else {
      RowSnapshot combined = left.rows[i++];
      combined.count += right.rows[j++].count;
      out.rows.push_back(std::move(combined));
    }
  }
  return out;
}

}  // namespace hillview
