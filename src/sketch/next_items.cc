#include "sketch/next_items.h"

#include <algorithm>

#include "storage/scan.h"
#include "storage/sort_key.h"
#include "storage/sort_key_cache.h"

namespace hillview {

void SerializeValue(const Value& v, ByteWriter* w) {
  if (std::holds_alternative<std::monostate>(v)) {
    w->WriteU8(0);
  } else if (const auto* i = std::get_if<int64_t>(&v)) {
    w->WriteU8(1);
    w->WriteI64(*i);
  } else if (const auto* d = std::get_if<double>(&v)) {
    w->WriteU8(2);
    w->WriteDouble(*d);
  } else {
    w->WriteU8(3);
    w->WriteString(std::get<std::string>(v));
  }
}

Status DeserializeValue(ByteReader* r, Value* out) {
  uint8_t tag = 0;
  HV_RETURN_IF_ERROR(r->ReadU8(&tag));
  switch (tag) {
    case 0:
      *out = std::monostate{};
      return Status::OK();
    case 1: {
      int64_t i = 0;
      HV_RETURN_IF_ERROR(r->ReadI64(&i));
      *out = i;
      return Status::OK();
    }
    case 2: {
      double d = 0;
      HV_RETURN_IF_ERROR(r->ReadDouble(&d));
      *out = d;
      return Status::OK();
    }
    case 3: {
      std::string s;
      HV_RETURN_IF_ERROR(r->ReadString(&s));
      *out = std::move(s);
      return Status::OK();
    }
    default:
      return Status::OutOfRange("bad Value tag");
  }
}

void RowSnapshot::Serialize(ByteWriter* w) const {
  w->WriteU32(static_cast<uint32_t>(values.size()));
  for (const auto& v : values) SerializeValue(v, w);
  w->WriteI64(count);
}

Status RowSnapshot::Deserialize(ByteReader* r, RowSnapshot* out) {
  uint32_t n = 0;
  HV_RETURN_IF_ERROR(r->ReadCount(&n, /*min_element_bytes=*/1));
  out->values.resize(n);
  for (auto& v : out->values) HV_RETURN_IF_ERROR(DeserializeValue(r, &v));
  return r->ReadI64(&out->count);
}

void NextItemsResult::Serialize(ByteWriter* w) const {
  w->WriteU32(static_cast<uint32_t>(rows.size()));
  for (const auto& row : rows) row.Serialize(w);
  w->WriteI64(rows_before);
}

Status NextItemsResult::Deserialize(ByteReader* r, NextItemsResult* out) {
  uint32_t n = 0;
  // Each row carries at least a value count (u32) and a duplicate count
  // (i64) on the wire.
  HV_RETURN_IF_ERROR(r->ReadCount(&n, /*min_element_bytes=*/12));
  out->rows.resize(n);
  for (auto& row : out->rows) {
    HV_RETURN_IF_ERROR(RowSnapshot::Deserialize(r, &row));
  }
  return r->ReadI64(&out->rows_before);
}

std::string NextItemsSketch::name() const {
  std::string n = "next-items(";
  for (const auto& o : order_.orientations()) {
    n += o.column;
    n += o.ascending ? "+" : "-";
  }
  n += ',';
  n += std::to_string(k_);
  n += ')';
  return n;
}

int NextItemsSketch::CompareKeys(const std::vector<Value>& a,
                                 const std::vector<Value>& b) const {
  const auto& orientations = order_.orientations();
  for (size_t i = 0; i < orientations.size(); ++i) {
    int c = CompareValues(a[i], b[i]);
    if (c != 0) return orientations[i].ascending ? c : -c;
  }
  return 0;
}

namespace {

/// Shared top-K state: distinct kept rows, sorted ascending under the order,
/// with counts. Invariant: a row enters only while it is among the K smallest
/// distinct rows seen so far; once evicted it can never re-enter, so the
/// counts of the finally-kept rows are exact.
struct TopKRows {
  std::vector<uint32_t> reps;
  std::vector<int64_t> counts;

  explicit TopKRows(int k) {
    reps.reserve(k + 1);
    counts.reserve(k + 1);
  }
};

/// The virtual-comparator fallback, used when the first order column has no
/// raw layout to extract keys from.
void TopKVirtual(const Table& table, const RecordOrder& order,
                 const std::optional<std::vector<Value>>& start_key, int k,
                 TopKRows* top, NextItemsResult* result) {
  RowComparator comparator(table, order);
  auto& reps = top->reps;
  auto& counts = top->counts;
  ScanRows(*table.members(), 1.0, 0, [&](uint32_t row) {
    if (start_key.has_value() &&
        CompareRowToKey(table, order, row, *start_key) <= 0) {
      ++result->rows_before;
      return;
    }
    // Position of the first rep >= row.
    auto it = std::lower_bound(
        reps.begin(), reps.end(), row,
        [&](uint32_t rep, uint32_t r) { return comparator.Compare(rep, r) < 0; });
    size_t pos = static_cast<size_t>(it - reps.begin());
    if (it != reps.end() && comparator.Compare(*it, row) == 0) {
      ++counts[pos];
      return;
    }
    if (static_cast<int>(reps.size()) < k) {
      reps.insert(it, row);
      counts.insert(counts.begin() + pos, 1);
      return;
    }
    if (pos < reps.size()) {
      reps.insert(it, row);
      counts.insert(counts.begin() + pos, 1);
      reps.pop_back();
      counts.pop_back();
    }
  });
}

/// The devirtualized fast path: rows order by a materialized 64-bit key
/// (single-column or packed two-column) and most rows are rejected with one
/// integer comparison against the largest kept key. Virtual comparisons run
/// only on key ties (deep multi-column orders, inexact encodings) and on
/// start-key boundary rows.
void TopKKeyed(const Table& table, const RecordOrder& order,
               const SortKeyPlan& plan,
               const std::optional<std::vector<Value>>& start_key, int k,
               TopKRows* top, NextItemsResult* result) {
  KeyComparator cmp(table, plan);
  const uint64_t* keys = plan.keys().data();
  auto& reps = top->reps;
  auto& counts = top->counts;
  // Kept keys, parallel to reps, so the common reject/search paths touch a
  // dense array instead of gathering through row ids.
  std::vector<uint64_t> rep_keys;
  rep_keys.reserve(k + 1);

  // Start-key band: rows whose key is below it are before the start key
  // with certainty, rows above it are after with certainty; only rows whose
  // key lands inside the band need the full value comparison. Exact
  // single-column encodings collapse the band to one key.
  const bool have_start = start_key.has_value();
  std::optional<SortKeyPlan::StartKeyBand> band;
  if (have_start) {
    band = plan.EncodeStartKey(*start_key);
  }

  ScanRows(*table.members(), 1.0, 0, [&](uint32_t row) {
    uint64_t key = keys[row];
    if (have_start) {
      if (band.has_value()) {
        if (key < band->below) {
          ++result->rows_before;
          return;
        }
        if (key <= band->above &&
            CompareRowToKey(table, order, row, *start_key) <= 0) {
          ++result->rows_before;
          return;
        }
      } else if (CompareRowToKey(table, order, row, *start_key) <= 0) {
        ++result->rows_before;
        return;
      }
    }
    if (static_cast<int>(reps.size()) == k && key > rep_keys.back()) {
      return;  // beyond the K smallest: the hot reject in a sorted scroll
    }
    // First rep whose key is >= this row's, then walk the (short) equal-key
    // run with the tie comparator to find an exact match or the insert slot.
    size_t pos = static_cast<size_t>(
        std::lower_bound(rep_keys.begin(), rep_keys.end(), key) -
        rep_keys.begin());
    while (pos < reps.size() && rep_keys[pos] == key) {
      int c = cmp.Compare(reps[pos], row);
      if (c == 0) {
        ++counts[pos];
        return;
      }
      if (c > 0) break;
      ++pos;
    }
    if (static_cast<int>(reps.size()) == k && pos == reps.size()) return;
    reps.insert(reps.begin() + pos, row);
    rep_keys.insert(rep_keys.begin() + pos, key);
    counts.insert(counts.begin() + pos, 1);
    if (static_cast<int>(reps.size()) > k) {
      reps.pop_back();
      rep_keys.pop_back();
      counts.pop_back();
    }
  });
}

}  // namespace

NextItemsResult NextItemsSketch::Summarize(const Table& table, uint64_t seed,
                                           const SketchContext& context) const {
  (void)seed;
  NextItemsResult result;
  if (k_ <= 0) return result;

  TopKRows top(k_);
  // The keyed path materializes keys for the whole universe, so a cold build
  // only pays off on dense-enough tables (KeyedScanProfitable). Keys already
  // resident in the worker's sort-key cache are free, so a cache hit takes
  // the keyed path regardless of density. With neither a cache nor a
  // profitable build, skip even planning: its encoding pre-passes read
  // O(universe) on narrow-column orders.
  bool keyed = false;
  SortKeyCache* cache = context.key_cache ? context.key_cache() : nullptr;
  const bool profitable =
      KeyedScanProfitable(table.num_rows(), table.universe_size());
  if (cache != nullptr || profitable) {
    SortKeyPlan plan(table, order_, SortKeyPlan::kDeferKeys);
    SortKeyPlan::KeysPtr keys =
        GetOrBuildKeys(cache, plan, /*build_allowed=*/profitable);
    if (keys != nullptr) {
      plan.AdoptKeys(std::move(keys));
      TopKKeyed(table, order_, plan, start_key_, k_, &top, &result);
      keyed = true;
    }
  }
  if (!keyed) {
    TopKVirtual(table, order_, start_key_, k_, &top, &result);
  }
  auto& reps = top.reps;
  auto& counts = top.counts;

  // Materialize the kept rows.
  std::vector<std::string> all_columns = order_.ColumnNames();
  all_columns.insert(all_columns.end(), display_columns_.begin(),
                     display_columns_.end());
  result.rows.reserve(reps.size());
  for (size_t i = 0; i < reps.size(); ++i) {
    RowSnapshot snap;
    snap.values = table.GetRow(reps[i], all_columns);
    snap.count = counts[i];
    result.rows.push_back(std::move(snap));
  }
  return result;
}

NextItemsResult NextItemsSketch::Merge(const NextItemsResult& left,
                                       const NextItemsResult& right) const {
  NextItemsResult out;
  out.rows_before = left.rows_before + right.rows_before;
  out.rows.reserve(std::min<size_t>(left.rows.size() + right.rows.size(), k_));
  size_t i = 0, j = 0;
  while (static_cast<int>(out.rows.size()) < k_ &&
         (i < left.rows.size() || j < right.rows.size())) {
    if (i == left.rows.size()) {
      out.rows.push_back(right.rows[j++]);
      continue;
    }
    if (j == right.rows.size()) {
      out.rows.push_back(left.rows[i++]);
      continue;
    }
    int c = CompareKeys(left.rows[i].values, right.rows[j].values);
    if (c < 0) {
      out.rows.push_back(left.rows[i++]);
    } else if (c > 0) {
      out.rows.push_back(right.rows[j++]);
    } else {
      RowSnapshot combined = left.rows[i++];
      combined.count += right.rows[j++].count;
      out.rows.push_back(std::move(combined));
    }
  }
  return out;
}

}  // namespace hillview
