#ifndef HILLVIEW_SKETCH_BUCKET_MAPPER_H_
#define HILLVIEW_SKETCH_BUCKET_MAPPER_H_

#include <vector>

#include "sketch/buckets.h"
#include "storage/column.h"

namespace hillview {

/// Binds a column to a bucket set and maps rows to bucket indexes. For
/// string columns the partition-local dictionary is translated once so the
/// per-row work is a single array load.
class BucketMapper {
 public:
  static constexpr int kMissing = -2;
  static constexpr int kOutOfRange = -1;

  BucketMapper(const IColumn* col, const Buckets& buckets)
      : col_(col), buckets_(&buckets) {
    if (col_ == nullptr) return;
    if (!buckets.is_numeric()) {
      codes_ = col_->RawCodes();
      if (codes_ != nullptr) {
        code_to_bucket_ = buckets.string().MapDictionary(*col_);
      }
    }
  }

  bool valid() const {
    if (col_ == nullptr) return false;
    if (!buckets_->is_numeric() && codes_ == nullptr) return false;
    return true;
  }

  /// Bucket index of `row`, kMissing (-2) or kOutOfRange (-1).
  int BucketOf(uint32_t row) const {
    if (buckets_->is_numeric()) {
      if (col_->IsMissing(row)) return kMissing;
      int idx = buckets_->numeric().IndexOf(col_->GetDouble(row));
      return idx < 0 ? kOutOfRange : idx;
    }
    uint32_t code = codes_[row];
    if (code == StringColumn::kMissingCode) return kMissing;
    int idx = code_to_bucket_[code];
    return idx < 0 ? kOutOfRange : idx;
  }

 private:
  const IColumn* col_;
  const Buckets* buckets_;
  const uint32_t* codes_ = nullptr;
  std::vector<int> code_to_bucket_;
};

}  // namespace hillview

#endif  // HILLVIEW_SKETCH_BUCKET_MAPPER_H_
