#ifndef HILLVIEW_SKETCH_BUCKET_MAPPER_H_
#define HILLVIEW_SKETCH_BUCKET_MAPPER_H_

#include <vector>

#include "sketch/buckets.h"
#include "storage/column.h"
#include "storage/scan.h"

namespace hillview {

/// Binds a column to a bucket set and maps rows to bucket indexes. The
/// column's physical layout is bound once into a RawCursor, so the per-row
/// work is an inlined switch plus an array load — no virtual dispatch. For
/// string columns the partition-local dictionary is translated once so the
/// per-row work is a single array load. Missing follows the scan layer's
/// central policy (null-mask bit, NaN, kMissingCode).
class BucketMapper {
 public:
  static constexpr int kMissing = -2;
  static constexpr int kOutOfRange = -1;

  BucketMapper(const IColumn* col, const Buckets& buckets)
      : cursor_(col), buckets_(&buckets) {
    if (col == nullptr) return;
    if (!buckets.is_numeric() && cursor_.is_codes()) {
      code_to_bucket_ = buckets.string().MapDictionary(*col);
    }
  }

  bool valid() const {
    if (!cursor_.valid()) return false;
    if (!buckets_->is_numeric() && !cursor_.is_codes()) return false;
    return true;
  }

  /// Bucket index of `row`, kMissing (-2) or kOutOfRange (-1).
  int BucketOf(uint32_t row) const {
    if (cursor_.IsMissing(row)) return kMissing;
    if (buckets_->is_numeric()) {
      int idx = buckets_->numeric().IndexOf(cursor_.AsDouble(row));
      return idx < 0 ? kOutOfRange : idx;
    }
    int idx = code_to_bucket_[cursor_.Code(row)];
    return idx < 0 ? kOutOfRange : idx;
  }

 private:
  RawCursor cursor_;
  const Buckets* buckets_;
  std::vector<int> code_to_bucket_;
};

}  // namespace hillview

#endif  // HILLVIEW_SKETCH_BUCKET_MAPPER_H_
