#include "sketch/hyperloglog.h"

#include <cmath>

namespace hillview {

double HllResult::Estimate() const {
  if (registers.empty()) return 0.0;
  const size_t m = registers.size();
  double alpha;
  switch (m) {
    case 16:
      alpha = 0.673;
      break;
    case 32:
      alpha = 0.697;
      break;
    case 64:
      alpha = 0.709;
      break;
    default:
      alpha = 0.7213 / (1.0 + 1.079 / static_cast<double>(m));
  }
  double sum = 0.0;
  size_t zeros = 0;
  for (uint8_t reg : registers) {
    sum += std::ldexp(1.0, -reg);
    if (reg == 0) ++zeros;
  }
  double estimate = alpha * m * m / sum;
  // Small-range correction: linear counting.
  if (estimate <= 2.5 * m && zeros > 0) {
    return m * std::log(static_cast<double>(m) / zeros);
  }
  // Large-range correction for 64-bit hashes is negligible; skip it.
  return estimate;
}

HllResult HyperLogLogSketch::Summarize(const Table& table,
                                       uint64_t seed) const {
  (void)seed;  // Deterministic: fixed hash seed shared by all partitions.
  HllResult result;
  const size_t m = size_t{1} << precision_;
  result.registers.assign(m, 0);
  ColumnPtr col = table.GetColumnOrNull(column_);
  if (col == nullptr) return result;
  const IColumn& c = *col;
  const int shift = 64 - precision_;

  ForEachRow(*table.members(), [&](uint32_t row) {
    if (c.IsMissing(row)) {
      ++result.missing;
      return;
    }
    uint64_t h = c.HashRow(row, hash_seed_);
    size_t reg = h >> shift;
    uint64_t rest = (h << precision_) | (uint64_t{1} << (precision_ - 1));
    uint8_t rank = static_cast<uint8_t>(__builtin_clzll(rest) + 1);
    if (rank > result.registers[reg]) result.registers[reg] = rank;
  });
  return result;
}

HllResult HyperLogLogSketch::Merge(const HllResult& left,
                                   const HllResult& right) const {
  if (left.IsZero()) return right;
  if (right.IsZero()) return left;
  HllResult out = left;
  for (size_t i = 0; i < out.registers.size(); ++i) {
    if (right.registers[i] > out.registers[i]) {
      out.registers[i] = right.registers[i];
    }
  }
  out.missing += right.missing;
  return out;
}

}  // namespace hillview
