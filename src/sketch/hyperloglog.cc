#include "sketch/hyperloglog.h"

#include <cmath>
#include <cstring>

#include "storage/scan.h"

namespace hillview {

namespace {

// Shared register-update core: one max per hashed value.
struct HllRegisters {
  uint8_t* registers;
  int precision;
  int shift;

  void Add(uint64_t h) {
    size_t reg = h >> shift;
    uint64_t rest = (h << precision) | (uint64_t{1} << (precision - 1));
    uint8_t rank = static_cast<uint8_t>(__builtin_clzll(rest) + 1);
    if (rank > registers[reg]) registers[reg] = rank;
  }
};

// Hashes native numeric values inline, mirroring IColumn::HashRow (double
// hashes its bit pattern, integers their widened value). NaN arrives via
// OnMissing under the scan layer's central policy.
struct HllNumericTally {
  HllRegisters regs;
  uint64_t hash_seed;
  int64_t* missing;

  void OnValue(uint32_t /*row*/, double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    regs.Add(MixSeed(hash_seed, bits));
  }
  template <typename T>  // int32/int64 layouts; widened like HashRow
  void OnValue(uint32_t /*row*/, T v) {
    regs.Add(MixSeed(hash_seed, static_cast<uint64_t>(v)));
  }
  void OnMissing(uint32_t /*row*/) { ++*missing; }
};

// Dictionary columns hash each distinct string once (per-code table), then
// rows reduce to one array load per row.
struct HllCodesTally {
  HllRegisters regs;
  const uint64_t* code_hashes;
  int64_t* missing;

  void OnValue(uint32_t /*row*/, uint32_t code) { regs.Add(code_hashes[code]); }
  void OnMissing(uint32_t /*row*/) { ++*missing; }
};

}  // namespace

double HllResult::Estimate() const {
  if (registers.empty()) return 0.0;
  const size_t m = registers.size();
  double alpha;
  switch (m) {
    case 16:
      alpha = 0.673;
      break;
    case 32:
      alpha = 0.697;
      break;
    case 64:
      alpha = 0.709;
      break;
    default:
      alpha = 0.7213 / (1.0 + 1.079 / static_cast<double>(m));
  }
  double sum = 0.0;
  size_t zeros = 0;
  for (uint8_t reg : registers) {
    sum += std::ldexp(1.0, -reg);
    if (reg == 0) ++zeros;
  }
  double estimate = alpha * m * m / sum;
  // Small-range correction: linear counting.
  if (estimate <= 2.5 * m && zeros > 0) {
    return m * std::log(static_cast<double>(m) / zeros);
  }
  // Large-range correction for 64-bit hashes is negligible; skip it.
  return estimate;
}

HllResult HyperLogLogSketch::Summarize(const Table& table,
                                       uint64_t seed) const {
  (void)seed;  // Deterministic: fixed hash seed shared by all partitions.
  HllResult result;
  const size_t m = size_t{1} << precision_;
  result.registers.assign(m, 0);
  ColumnPtr col = table.GetColumnOrNull(column_);
  if (col == nullptr) return result;
  const IColumn& c = *col;
  HllRegisters regs{result.registers.data(), precision_, 64 - precision_};

  if (c.RawCodes() != nullptr) {
    const auto& dict = c.Dictionary();
    std::vector<uint64_t> code_hashes(dict.size());
    for (size_t i = 0; i < dict.size(); ++i) {
      code_hashes[i] = HashBytes(dict[i].data(), dict[i].size(), hash_seed_);
    }
    HllCodesTally tally{regs, code_hashes.data(), &result.missing};
    ScanColumn(c, *table.members(), 1.0, 0, tally);
    return result;
  }

  HllNumericTally tally{regs, hash_seed_, &result.missing};
  ScanColumn(c, *table.members(), 1.0, 0, tally);
  return result;
}

HllResult HyperLogLogSketch::Merge(const HllResult& left,
                                   const HllResult& right) const {
  if (left.IsZero()) return right;
  if (right.IsZero()) return left;
  HllResult out = left;
  for (size_t i = 0; i < out.registers.size(); ++i) {
    if (right.registers[i] > out.registers[i]) {
      out.registers[i] = right.registers[i];
    }
  }
  out.missing += right.missing;
  return out;
}

}  // namespace hillview
