#include "sketch/morsel.h"

#include <algorithm>
#include <atomic>
#include <limits>

namespace hillview {

namespace {

std::atomic<uint32_t> g_morsel_min_rows_override{0};

/// Rounds up to the next multiple of 64, saturating at the top.
uint32_t RoundUp64(uint32_t rows) {
  if (rows > std::numeric_limits<uint32_t>::max() - 63) {
    return std::numeric_limits<uint32_t>::max() & ~63u;
  }
  return (rows + 63) & ~63u;
}

}  // namespace

void SetMorselMinRowsForTest(uint32_t rows) {
  g_morsel_min_rows_override.store(rows, std::memory_order_relaxed);
}

uint32_t MorselMinRows() {
  uint32_t rows = g_morsel_min_rows_override.load(std::memory_order_relaxed);
  if (rows == 0) rows = kDefaultMorselRows;
  return std::max(RoundUp64(rows), 64u);
}

bool MorselCancelled(const SketchContext& context) {
  return context.cancellation != nullptr && context.cancellation->IsCancelled();
}

std::vector<std::pair<uint32_t, uint32_t>> PlanMorselRanges(
    uint32_t universe_size, uint32_t morsel_rows) {
  morsel_rows = std::max(RoundUp64(morsel_rows), 64u);
  std::vector<std::pair<uint32_t, uint32_t>> ranges;
  if (universe_size == 0) return ranges;
  ranges.reserve(universe_size / morsel_rows + 1);
  for (uint32_t begin = 0; begin < universe_size; ) {
    uint32_t end = universe_size - begin > morsel_rows ? begin + morsel_rows
                                                       : universe_size;
    ranges.emplace_back(begin, end);
    begin = end;
  }
  return ranges;
}

MembershipPtr SliceMembership(const IMembershipSet& base, uint32_t begin,
                              uint32_t end) {
  const uint32_t universe = base.universe_size();
  end = std::min(end, universe);
  if (begin >= end) {
    return std::make_shared<SparseMembership>(std::vector<uint32_t>{},
                                              universe);
  }
  switch (base.kind()) {
    case IMembershipSet::Kind::kFull: {
      // Ones over [begin, end): zero prefix words, full words, and a masked
      // final word when `end` is unaligned (only the universe tail is).
      const size_t first_word = begin >> 6;
      const size_t last_word = (static_cast<size_t>(end) + 63) >> 6;
      std::vector<uint64_t> words(last_word, 0);
      for (size_t w = first_word; w < last_word; ++w) words[w] = ~0ULL;
      if ((end & 63u) != 0) {
        words[last_word - 1] = (1ULL << (end & 63u)) - 1;
      }
      return std::make_shared<DenseMembership>(std::move(words), universe);
    }
    case IMembershipSet::Kind::kDense: {
      const std::vector<uint64_t>& base_words = base.bitmap_words();
      const size_t first_word = begin >> 6;
      const size_t last_word =
          std::min<size_t>((static_cast<size_t>(end) + 63) >> 6,
                           base_words.size());
      std::vector<uint64_t> words(last_word, 0);
      for (size_t w = first_word; w < last_word; ++w) {
        words[w] = base_words[w];
      }
      if (last_word == ((static_cast<size_t>(end) + 63) >> 6) &&
          (end & 63u) != 0 && last_word > first_word) {
        words[last_word - 1] &= (1ULL << (end & 63u)) - 1;
      }
      return std::make_shared<DenseMembership>(std::move(words), universe);
    }
    case IMembershipSet::Kind::kSparse: {
      const std::vector<uint32_t>& rows = base.sparse_rows();
      auto lo = std::lower_bound(rows.begin(), rows.end(), begin);
      auto hi = std::lower_bound(lo, rows.end(), end);
      return std::make_shared<SparseMembership>(
          std::vector<uint32_t>(lo, hi), universe);
    }
  }
  return std::make_shared<SparseMembership>(std::vector<uint32_t>{}, universe);
}

}  // namespace hillview
