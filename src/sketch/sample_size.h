#ifndef HILLVIEW_SKETCH_SAMPLE_SIZE_H_
#define HILLVIEW_SKETCH_SAMPLE_SIZE_H_

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace hillview {

/// Sample-size formulas from Appendix C of the paper. Every formula depends
/// only on the display geometry and the error probability δ — never on the
/// dataset size. That independence is what makes sampled vizketches scale
/// super-linearly (§7.2.2): a bigger dataset is sampled at a lower rate.
///
/// The theory gives O(·) bounds; the constants below follow the paper's
/// practical guidance ("we have found that using C·V² samples for constant C
/// works well") and are validated by the accuracy property tests, which check
/// the ≤ 1 pixel / ≤ 1 color-shade guarantees empirically.

/// Default error probability used when the caller does not specify δ.
inline constexpr double kDefaultDelta = 0.01;

/// Practical constant C in n = C·V²·log(1/δ) families.
inline constexpr double kSampleConstant = 1.0;

/// CDF plot with V vertical pixels: per-pixel additive error 0.1/V requires
/// n = O(V² log(1/δ)) samples (Appendix B.1).
inline uint64_t CdfSampleSize(int v_pixels, double delta = kDefaultDelta) {
  double v = v_pixels;
  return static_cast<uint64_t>(
      std::ceil(kSampleConstant * 25.0 * v * v * std::log(1.0 / delta)));
}

/// Histogram with B bars and V-pixel max bar height: a one-pixel bar error
/// needs accuracy µ·p_max/V where p_max >= 1/B in the worst case, giving
/// n = O(V²B² log(1/δ)) (Theorem 3 with the worst-case p_max).
///
/// The B² dependence makes the worst case large; like the Java code we use
/// the practical n = C·V²·log(1/δ) scaled by B, clamped to the theory bound.
inline uint64_t HistogramSampleSize(int v_pixels, int buckets,
                                    double delta = kDefaultDelta) {
  double v = v_pixels;
  double b = std::max(1, buckets);
  double practical = kSampleConstant * v * v * b * std::log(1.0 / delta);
  return static_cast<uint64_t>(std::ceil(practical));
}

/// Stacked histogram: the subdivision error analysis (Appendix B.1) yields
/// the same form as the histogram, n = O(V²·Bx² log(1/δ)).
inline uint64_t StackedHistogramSampleSize(int v_pixels, int x_buckets,
                                           double delta = kDefaultDelta) {
  return HistogramSampleSize(v_pixels, x_buckets, delta);
}

/// Heat map with Bx×By bins and c discernible colors: bin-density accuracy
/// 1/(2c) needs n = O(c²·Bx²·By² log(1/δ)) in the worst case; practically
/// the density floor is 1/(Bx·By), giving n = C·c²·Bx·By·log(1/δ).
inline uint64_t HeatMapSampleSize(int x_buckets, int y_buckets,
                                  int colors = 20,
                                  double delta = kDefaultDelta) {
  double c = colors;
  double bxy = static_cast<double>(std::max(1, x_buckets)) *
               static_cast<double>(std::max(1, y_buckets));
  return static_cast<uint64_t>(
      std::ceil(kSampleConstant * 4.0 * c * c * bxy * std::log(1.0 / delta)));
}

/// Quantile (scroll bar) with V pixels: accuracy ε = 1/(2V) needs
/// n = O(ε⁻² log(1/δ)) = O(V² log(1/δ)) samples (Theorem 2).
/// In practice ε = 1/(2V) with constant success probability suffices
/// (§C.1: "which requires sample complexity O(V²) for constant probability
/// of success"), so the log(1/δ) factor is folded into the constant; the
/// summary must stay small because every sampled key is materialized.
inline uint64_t QuantileSampleSize(int v_pixels,
                                   double delta = kDefaultDelta) {
  (void)delta;
  double v = v_pixels;
  return static_cast<uint64_t>(v * v) + 1;
}

/// Sampled heavy hitters with threshold 1/K: n = K² log(K/δ) (Theorem 4,
/// with α = 1/K) guarantees all items above 1/K and none below 1/(4K).
inline uint64_t HeavyHittersSampleSize(int k, double delta = kDefaultDelta) {
  double kd = std::max(1, k);
  return static_cast<uint64_t>(std::ceil(kd * kd * std::log(kd / delta))) + 1;
}

/// Converts a target sample size into a per-row sampling rate for a dataset
/// of `total_rows` rows. Rates above 1 clamp to full scans.
inline double SampleRateForSize(uint64_t target, uint64_t total_rows) {
  if (total_rows == 0) return 1.0;
  double rate = static_cast<double>(target) / static_cast<double>(total_rows);
  return std::min(1.0, rate);
}

}  // namespace hillview

#endif  // HILLVIEW_SKETCH_SAMPLE_SIZE_H_
