#include "sketch/find_text.h"

#include <algorithm>
#include <cctype>
#include <regex>

#include "storage/scan.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace hillview {

std::string StringFilter::ToString() const {
  std::string mode_name;
  switch (mode) {
    case Mode::kSubstring:
      mode_name = "substring";
      break;
    case Mode::kExact:
      mode_name = "exact";
      break;
    case Mode::kRegex:
      mode_name = "regex";
      break;
  }
  return mode_name + (case_sensitive ? "/cs" : "/ci") + ":" + text;
}

namespace {

std::string Lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

}  // namespace

StringMatcher::StringMatcher(const StringFilter& filter) : filter_(filter) {
  if (!filter_.case_sensitive) lowered_text_ = Lower(filter_.text);
  if (filter_.mode == StringFilter::Mode::kRegex) {
    auto flags = std::regex::ECMAScript | std::regex::optimize;
    if (!filter_.case_sensitive) flags |= std::regex::icase;
    // A user-supplied pattern is untrusted input: compile failures become a
    // Status (checked by the API surfaces before scanning), never an
    // exception escaping into sketch execution.
    try {
      regex_ = std::make_shared<std::regex>(filter_.text, flags);
    } catch (const std::regex_error& e) {
      status_ = Status::InvalidArgument("invalid regex '" + filter_.text +
                                        "': " + e.what());
    }
  }
}

Status StringMatcher::Validate(const StringFilter& filter) {
  return StringMatcher(filter).status();
}

bool StringMatcher::Matches(std::string_view s) const {
  switch (filter_.mode) {
    case StringFilter::Mode::kExact:
      if (filter_.case_sensitive) return s == filter_.text;
      return Lower(s) == lowered_text_;
    case StringFilter::Mode::kSubstring:
      if (filter_.case_sensitive) {
        return s.find(filter_.text) != std::string_view::npos;
      }
      return Lower(s).find(lowered_text_) != std::string::npos;
    case StringFilter::Mode::kRegex:
      if (regex_ == nullptr) return false;  // failed compile matches nothing
      // Iterator form: mapped dictionaries hand out views into the string
      // pool, which regex_search can scan in place.
      return std::regex_search(
          s.data(), s.data() + s.size(),
          *static_cast<const std::regex*>(regex_.get()));
  }
  return false;
}

std::vector<uint8_t> MatchDictionary(const StringMatcher& matcher,
                                     const StringDictionary& dict,
                                     ThreadPool* pool) {
  const size_t n = dict.size();
  std::vector<uint8_t> match(n, 0);
  if (pool == nullptr || n < kParallelDictionaryThreshold) {
    for (size_t d = 0; d < n; ++d) {
      match[d] = matcher.Matches(dict[static_cast<uint32_t>(d)]) ? 1 : 0;
    }
    return match;
  }
  // Chunk across the pool with the caller participating (ParallelApply):
  // chunks write disjoint byte ranges of `match`, so no synchronization is
  // needed beyond the apply itself — and caller participation is what makes
  // this safe even when `pool` is the same pool running this summarize.
  // Oversplit relative to the thread count so uneven string lengths (one
  // chunk full of long log lines) still balance.
  const size_t chunks =
      std::min<size_t>(static_cast<size_t>(pool->num_threads()) * 4,
                       (n + 511) / 512);
  const size_t per_chunk = (n + chunks - 1) / chunks;
  ParallelApply(pool, static_cast<int>(chunks), [&](int c) {
    const size_t begin = static_cast<size_t>(c) * per_chunk;
    const size_t end = std::min(n, begin + per_chunk);
    for (size_t d = begin; d < end; ++d) {
      match[d] = matcher.Matches(dict[static_cast<uint32_t>(d)]) ? 1 : 0;
    }
  });
  return match;
}

void FindResult::Serialize(ByteWriter* w) const {
  w->WriteI64(match_count);
  w->WriteI64(matches_before);
  w->WriteBool(first_match.has_value());
  if (first_match.has_value()) {
    w->WriteU32(static_cast<uint32_t>(first_match->size()));
    for (const auto& v : *first_match) SerializeValue(v, w);
  }
}

Status FindResult::Deserialize(ByteReader* r, FindResult* out) {
  HV_RETURN_IF_ERROR(r->ReadI64(&out->match_count));
  HV_RETURN_IF_ERROR(r->ReadI64(&out->matches_before));
  bool has = false;
  HV_RETURN_IF_ERROR(r->ReadBool(&has));
  if (has) {
    uint32_t n = 0;
    HV_RETURN_IF_ERROR(r->ReadCount(&n, /*min_element_bytes=*/1));
    std::vector<Value> key(n);
    for (auto& v : key) HV_RETURN_IF_ERROR(DeserializeValue(r, &v));
    out->first_match = std::move(key);
  }
  return Status::OK();
}

std::string FindTextSketch::name() const {
  return "find-text(" + filter_.ToString() + ")";
}

int FindTextSketch::CompareKeys(const std::vector<Value>& a,
                                const std::vector<Value>& b) const {
  const auto& orientations = order_.orientations();
  for (size_t i = 0; i < orientations.size() && i < a.size() && i < b.size();
       ++i) {
    int c = CompareValues(a[i], b[i]);
    if (c != 0) return orientations[i].ascending ? c : -c;
  }
  return 0;
}

FindResult FindTextSketch::Summarize(const Table& table, uint64_t seed,
                                     const SketchContext& context) const {
  (void)seed;
  FindResult result;
  StringMatcher matcher(filter_);
  // Defense in depth: API surfaces validate the pattern before running the
  // sketch; a matcher that still failed to compile matches nothing.
  if (!matcher.status().ok()) return result;

  // Bind the searched string columns once.
  std::vector<const IColumn*> cols;
  for (const auto& name : columns_) {
    ColumnPtr c = table.GetColumnOrNull(name);
    if (c != nullptr && IsStringKind(c->kind())) cols.push_back(c.get());
  }
  if (cols.empty()) return result;

  // Precompute dictionary match bits per column: each distinct string is
  // tested once — chunked over the worker's auxiliary pool for huge
  // dictionaries — then rows reduce to a code lookup. The code arrays are
  // bound once too, so the row loop performs no virtual calls.
  std::vector<std::vector<uint8_t>> dict_match(cols.size());
  std::vector<const uint32_t*> codes(cols.size());
  for (size_t i = 0; i < cols.size(); ++i) {
    const auto& dict = cols[i]->Dictionary();
    // Only ask the provider for the pool when the dictionary is big enough
    // to chunk: the provider creates the pool's threads on first use.
    ThreadPool* pool = dict.size() >= kParallelDictionaryThreshold &&
                               context.aux_pool
                           ? context.aux_pool()
                           : nullptr;
    dict_match[i] = MatchDictionary(matcher, dict, pool);
    codes[i] = cols[i]->RawCodes();
  }

  std::vector<std::string> names = order_.ColumnNames();
  std::optional<uint32_t> best_row;
  RowComparator comparator(table, order_);

  ScanRows(*table.members(), 1.0, 0, [&](uint32_t row) {
    bool matches = false;
    for (size_t i = 0; i < cols.size(); ++i) {
      uint32_t code = codes[i][row];
      // Any code past the dictionary reads as missing (matches nothing) —
      // same corrupt-tolerant rule the scan layer applies.
      if (code < dict_match[i].size() && dict_match[i][code]) {
        matches = true;
        break;
      }
    }
    if (!matches) return;
    ++result.match_count;
    if (start_key_.has_value() &&
        CompareRowToKey(table, order_, row, *start_key_) <= 0) {
      ++result.matches_before;
      return;
    }
    if (!best_row.has_value() || comparator.Less(row, *best_row)) {
      best_row = row;
    }
  });

  if (best_row.has_value()) {
    result.first_match = table.GetRow(*best_row, names);
  }
  return result;
}

FindResult FindTextSketch::Merge(const FindResult& left,
                                 const FindResult& right) const {
  FindResult out;
  out.match_count = left.match_count + right.match_count;
  out.matches_before = left.matches_before + right.matches_before;
  if (!left.first_match.has_value()) {
    out.first_match = right.first_match;
  } else if (!right.first_match.has_value()) {
    out.first_match = left.first_match;
  } else {
    out.first_match = CompareKeys(*left.first_match, *right.first_match) <= 0
                          ? left.first_match
                          : right.first_match;
  }
  return out;
}

}  // namespace hillview
