#include "sketch/kll.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

namespace hillview {

int KllParams::TopCapacityForBudget(int budget) {
  if (budget <= 0) return kMinLevelCapacity;
  int k = static_cast<int>(std::ceil(budget * (1.0 - kDecay)));
  return std::max(k, kMinLevelCapacity);
}

int KllParams::LevelCapacity(int top_capacity, int levels_above) {
  double cap = top_capacity;
  for (int z = 0; z < levels_above; ++z) cap *= kDecay;
  return std::max(static_cast<int>(std::ceil(cap)), kMinLevelCapacity);
}

double KllRankErrorBound(const KllErrorLedger& ledger, uint64_t total_weight) {
  if (total_weight == 0 || ledger.worst == 0) return 0.0;
  double w = static_cast<double>(total_weight);
  double worst_case = static_cast<double>(ledger.worst) / w;
  // Compaction parities are independent fair coins, so the accumulated rank
  // shift is a zero-mean sum of bounded terms; 3σ covers it with the same
  // "rare failures" grade the paper's constant-probability bounds use.
  double concentration = 3.0 * std::sqrt(ledger.variance) / w;
  return std::min(worst_case, concentration);
}

namespace {

/// One weight class of the alive sequence. `members` are positions into the
/// alive-index vector (not raw item indices), in rank order.
struct WeightClass {
  uint64_t weight = 0;
  std::vector<uint32_t> members;
};

/// Groups the alive items by exact weight, lowest weight first.
std::vector<WeightClass> GroupByWeight(const std::vector<uint64_t>& weights,
                                       const std::vector<uint32_t>& alive) {
  std::map<uint64_t, std::vector<uint32_t>> classes;
  for (uint32_t pos = 0; pos < alive.size(); ++pos) {
    classes[weights[alive[pos]]].push_back(pos);
  }
  std::vector<WeightClass> out;
  out.reserve(classes.size());
  for (auto& [weight, members] : classes) {
    out.push_back(WeightClass{weight, std::move(members)});
  }
  return out;
}

}  // namespace

void KllCompactToBudget(std::vector<uint64_t>* weights, int budget,
                        Random* coin, KllErrorLedger* ledger,
                        std::vector<uint32_t>* kept) {
  std::vector<uint32_t> alive(weights->size());
  std::iota(alive.begin(), alive.end(), 0);
  if (budget < KllParams::kMinLevelCapacity) {
    budget = KllParams::kMinLevelCapacity;
  }

  while (alive.size() > static_cast<size_t>(budget)) {
    std::vector<WeightClass> levels = GroupByWeight(*weights, alive);
    const int top_k = KllParams::TopCapacityForBudget(budget);
    const int num_levels = static_cast<int>(levels.size());

    // The schedule: compact the lowest level over its capacity; when every
    // level fits its k_h but the total is still over budget (possible
    // because hostile weights need not be powers of two, and because the
    // geometric sum is an approximation), fall back to the lowest level
    // that can pair at all.
    int chosen = -1;
    for (int h = 0; h < num_levels; ++h) {
      int cap = KllParams::LevelCapacity(top_k, num_levels - 1 - h);
      if (static_cast<int>(levels[h].members.size()) > cap) {
        chosen = h;
        break;
      }
    }
    if (chosen < 0) {
      for (int h = 0; h < num_levels; ++h) {
        if (levels[h].members.size() >= 2) {
          chosen = h;
          break;
        }
      }
    }
    if (chosen < 0 || levels[chosen].members.size() < 2) break;  // saturated

    // Randomized-parity pairwise compaction: one fair coin decides whether
    // the even- or odd-ranked member of every pair survives (at doubled
    // weight); an unpaired tail member keeps its weight, so total weight is
    // conserved exactly and only the pair straddling a query point can
    // shift its rank — by ±w, the ledger's unit.
    const WeightClass& level = levels[chosen];
    const uint64_t w = level.weight;
    const size_t parity = coin->NextUint64(2);
    const size_t pairs = level.members.size() / 2;
    std::vector<bool> drop(alive.size(), false);
    for (size_t p = 0; p < pairs; ++p) {
      uint32_t survivor_pos = level.members[2 * p + parity];
      uint32_t victim_pos = level.members[2 * p + 1 - parity];
      (*weights)[alive[survivor_pos]] = 2 * w;
      drop[victim_pos] = true;
    }
    std::vector<uint32_t> next;
    next.reserve(alive.size() - pairs);
    for (uint32_t pos = 0; pos < alive.size(); ++pos) {
      if (!drop[pos]) next.push_back(alive[pos]);
    }
    alive = std::move(next);
    ledger->worst += w;
    ledger->variance += static_cast<double>(w) * static_cast<double>(w);
  }

  kept->assign(alive.begin(), alive.end());
  // Rewrite weights to the survivors' (possibly doubled) values, in order.
  for (size_t i = 0; i < alive.size(); ++i) {
    (*weights)[i] = (*weights)[alive[i]];
  }
  weights->resize(alive.size());
}

void KllSubsampleIndices(size_t n, double p, Random* coin,
                         std::vector<uint32_t>* kept) {
  if (p >= 1.0) {
    kept->resize(n);
    std::iota(kept->begin(), kept->end(), 0);
    return;
  }
  kept->clear();
  if (p <= 0.0) return;
  for (size_t i = 0; i < n; ++i) {
    if (coin->NextBernoulli(p)) kept->push_back(static_cast<uint32_t>(i));
  }
}

size_t KllSelectIndex(const std::vector<uint64_t>& weights, double q) {
  if (weights.empty()) return static_cast<size_t>(-1);
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  uint64_t total = 0;
  for (uint64_t w : weights) total += w;
  if (total == 0) return static_cast<size_t>(-1);
  // The item covering rank position q*(W-1)+1/2: for unit weights this is
  // round(q*(n-1)), matching the pre-KLL midpoint rule exactly.
  double target = q * static_cast<double>(total - 1) + 0.5;
  double cumulative = 0;
  for (size_t i = 0; i < weights.size(); ++i) {
    cumulative += static_cast<double>(weights[i]);
    if (cumulative > target) return i;
  }
  return weights.size() - 1;
}

}  // namespace hillview
