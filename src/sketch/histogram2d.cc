#include "sketch/histogram2d.h"

#include <cassert>

#include "sketch/bucket_mapper.h"
#include "storage/scan.h"

namespace hillview {

void Histogram2DResult::Serialize(ByteWriter* w) const {
  w->WriteI32(x_buckets);
  w->WriteI32(y_buckets);
  w->WritePodVector(xy);
  w->WritePodVector(x_counts);
  w->WriteI64(missing_x);
  w->WriteI64(missing_y);
  w->WriteI64(out_of_range);
  w->WriteI64(rows_scanned);
  w->WriteDouble(sample_rate);
}

Status Histogram2DResult::Deserialize(ByteReader* r, Histogram2DResult* out) {
  HV_RETURN_IF_ERROR(r->ReadI32(&out->x_buckets));
  HV_RETURN_IF_ERROR(r->ReadI32(&out->y_buckets));
  HV_RETURN_IF_ERROR(r->ReadPodVector(&out->xy));
  HV_RETURN_IF_ERROR(r->ReadPodVector(&out->x_counts));
  HV_RETURN_IF_ERROR(r->ReadI64(&out->missing_x));
  HV_RETURN_IF_ERROR(r->ReadI64(&out->missing_y));
  HV_RETURN_IF_ERROR(r->ReadI64(&out->out_of_range));
  HV_RETURN_IF_ERROR(r->ReadI64(&out->rows_scanned));
  HV_RETURN_IF_ERROR(r->ReadDouble(&out->sample_rate));
  return Status::OK();
}

Histogram2DResult MergeHistogram2D(const Histogram2DResult& left,
                                   const Histogram2DResult& right) {
  if (left.IsZero()) return right;
  if (right.IsZero()) return left;
  assert(left.x_buckets == right.x_buckets);
  assert(left.y_buckets == right.y_buckets);
  Histogram2DResult out = left;
  for (size_t i = 0; i < out.xy.size(); ++i) out.xy[i] += right.xy[i];
  for (size_t i = 0; i < out.x_counts.size(); ++i) {
    out.x_counts[i] += right.x_counts[i];
  }
  out.missing_x += right.missing_x;
  out.missing_y += right.missing_y;
  out.out_of_range += right.out_of_range;
  out.rows_scanned += right.rows_scanned;
  out.sample_rate = std::max(left.sample_rate, right.sample_rate);
  return out;
}

namespace {

// Initializes the grid shape of a 2D result.
void InitGrid(int bx, int by, double rate, Histogram2DResult* out) {
  out->x_buckets = bx;
  out->y_buckets = by;
  out->xy.assign(static_cast<size_t>(bx) * by, 0);
  out->x_counts.assign(bx, 0);
  out->sample_rate = rate < 1.0 ? rate : 1.0;
}

// Tallies one row into a 2D grid given precomputed bucket indexes.
inline void TallyPair(int ix, int iy, Histogram2DResult* out) {
  if (ix == BucketMapper::kMissing) {
    ++out->missing_x;
    return;
  }
  if (ix == BucketMapper::kOutOfRange) {
    ++out->out_of_range;
    return;
  }
  if (iy == BucketMapper::kMissing) {
    ++out->missing_y;
    ++out->x_counts[ix];
    return;
  }
  if (iy == BucketMapper::kOutOfRange) {
    ++out->out_of_range;
    return;
  }
  ++out->x_counts[ix];
  ++out->xy[static_cast<size_t>(ix) * out->y_buckets + iy];
}

}  // namespace

std::string Histogram2DSketch::name() const {
  return "histogram2d(" + x_column_ + "x" + y_column_ + "," +
         std::to_string(x_buckets_.count()) + "x" +
         std::to_string(y_buckets_.count()) + "," + std::to_string(rate_) +
         ")";
}

Histogram2DResult Histogram2DSketch::Summarize(const Table& table,
                                               uint64_t seed) const {
  Histogram2DResult result;
  InitGrid(x_buckets_.count(), y_buckets_.count(), rate_, &result);
  ColumnPtr xcol = table.GetColumnOrNull(x_column_);
  ColumnPtr ycol = table.GetColumnOrNull(y_column_);
  if (xcol == nullptr || ycol == nullptr) return result;
  BucketMapper x_map(xcol.get(), x_buckets_);
  BucketMapper y_map(ycol.get(), y_buckets_);
  if (!x_map.valid() || !y_map.valid()) return result;

  auto tally = [&](uint32_t row) {
    ++result.rows_scanned;
    TallyPair(x_map.BucketOf(row), y_map.BucketOf(row), &result);
  };
  ScanRows(*table.members(), rate_, seed, tally);
  return result;
}

Histogram2DResult Histogram2DSketch::Merge(
    const Histogram2DResult& left, const Histogram2DResult& right) const {
  return MergeHistogram2D(left, right);
}

void TrellisResult::Serialize(ByteWriter* w) const {
  w->WriteU32(static_cast<uint32_t>(groups.size()));
  for (const auto& g : groups) g.Serialize(w);
  w->WriteI64(missing_w);
  w->WriteI64(out_of_range_w);
}

Status TrellisResult::Deserialize(ByteReader* r, TrellisResult* out) {
  uint32_t n = 0;
  // Each group serializes two bucket counts, two vectors and five scalars —
  // well above 16 bytes even when empty.
  HV_RETURN_IF_ERROR(r->ReadCount(&n, /*min_element_bytes=*/16));
  out->groups.resize(n);
  for (auto& g : out->groups) {
    HV_RETURN_IF_ERROR(Histogram2DResult::Deserialize(r, &g));
  }
  HV_RETURN_IF_ERROR(r->ReadI64(&out->missing_w));
  HV_RETURN_IF_ERROR(r->ReadI64(&out->out_of_range_w));
  return Status::OK();
}

std::string TrellisSketch::name() const {
  return "trellis(" + w_column_ + "," + x_column_ + "x" + y_column_ + "," +
         std::to_string(w_buckets_.count()) + "x" +
         std::to_string(x_buckets_.count()) + "x" +
         std::to_string(y_buckets_.count()) + ")";
}

TrellisResult TrellisSketch::Summarize(const Table& table,
                                       uint64_t seed) const {
  TrellisResult result;
  result.groups.resize(w_buckets_.count());
  for (auto& g : result.groups) {
    InitGrid(x_buckets_.count(), y_buckets_.count(), rate_, &g);
  }
  ColumnPtr wcol = table.GetColumnOrNull(w_column_);
  ColumnPtr xcol = table.GetColumnOrNull(x_column_);
  ColumnPtr ycol = table.GetColumnOrNull(y_column_);
  if (wcol == nullptr || xcol == nullptr || ycol == nullptr) return result;
  BucketMapper w_map(wcol.get(), w_buckets_);
  BucketMapper x_map(xcol.get(), x_buckets_);
  BucketMapper y_map(ycol.get(), y_buckets_);
  if (!w_map.valid() || !x_map.valid() || !y_map.valid()) return result;

  auto tally = [&](uint32_t row) {
    int iw = w_map.BucketOf(row);
    if (iw == BucketMapper::kMissing) {
      ++result.missing_w;
      return;
    }
    if (iw == BucketMapper::kOutOfRange) {
      ++result.out_of_range_w;
      return;
    }
    Histogram2DResult& g = result.groups[iw];
    ++g.rows_scanned;
    TallyPair(x_map.BucketOf(row), y_map.BucketOf(row), &g);
  };
  ScanRows(*table.members(), rate_, seed, tally);
  return result;
}

TrellisResult TrellisSketch::Merge(const TrellisResult& left,
                                   const TrellisResult& right) const {
  if (left.IsZero()) return right;
  if (right.IsZero()) return left;
  assert(left.groups.size() == right.groups.size());
  TrellisResult out = left;
  for (size_t i = 0; i < out.groups.size(); ++i) {
    out.groups[i] = MergeHistogram2D(out.groups[i], right.groups[i]);
  }
  out.missing_w += right.missing_w;
  out.out_of_range_w += right.out_of_range_w;
  return out;
}

}  // namespace hillview
