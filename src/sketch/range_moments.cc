#include "sketch/range_moments.h"

#include <algorithm>

#include "storage/scan.h"

namespace hillview {

namespace {

// Min/max over dictionary codes; code order equals alphabetical order.
struct CodeRangeTally {
  RangeResult* result;
  uint32_t min_code = 0;
  uint32_t max_code = 0;
  bool first = true;

  void OnValue(uint32_t /*row*/, uint32_t code) {
    ++result->present_count;
    if (first) {
      min_code = max_code = code;
      first = false;
    } else {
      min_code = std::min(min_code, code);
      max_code = std::max(max_code, code);
    }
  }
  void OnMissing(uint32_t /*row*/) { ++result->missing_count; }
};

// Min/max plus power sums over native numeric values; NaN never reaches
// OnValue, so the running min/max and moments cannot be poisoned.
struct NumericRangeTally {
  RangeResult* result;
  int num_moments;
  bool first = true;

  template <typename T>
  void OnValue(uint32_t /*row*/, T value) {
    double v = static_cast<double>(value);
    ++result->present_count;
    if (first) {
      result->min = result->max = v;
      first = false;
    } else {
      result->min = std::min(result->min, v);
      result->max = std::max(result->max, v);
    }
    double power = v;
    for (int m = 0; m < num_moments; ++m) {
      result->moments[m] += power;
      power *= v;
    }
  }
  void OnMissing(uint32_t /*row*/) { ++result->missing_count; }
};

}  // namespace

void RangeResult::Serialize(ByteWriter* w) const {
  w->WriteDouble(min);
  w->WriteDouble(max);
  w->WriteString(min_string);
  w->WriteString(max_string);
  w->WriteBool(is_string);
  w->WriteBool(is_integral);
  w->WriteI64(present_count);
  w->WriteI64(missing_count);
  w->WritePodVector(moments);
}

Status RangeResult::Deserialize(ByteReader* r, RangeResult* out) {
  HV_RETURN_IF_ERROR(r->ReadDouble(&out->min));
  HV_RETURN_IF_ERROR(r->ReadDouble(&out->max));
  HV_RETURN_IF_ERROR(r->ReadString(&out->min_string));
  HV_RETURN_IF_ERROR(r->ReadString(&out->max_string));
  HV_RETURN_IF_ERROR(r->ReadBool(&out->is_string));
  HV_RETURN_IF_ERROR(r->ReadBool(&out->is_integral));
  HV_RETURN_IF_ERROR(r->ReadI64(&out->present_count));
  HV_RETURN_IF_ERROR(r->ReadI64(&out->missing_count));
  HV_RETURN_IF_ERROR(r->ReadPodVector(&out->moments));
  return Status::OK();
}

RangeResult RangeSketch::Summarize(const Table& table, uint64_t seed) const {
  (void)seed;
  RangeResult result;
  result.moments.assign(num_moments_, 0.0);
  ColumnPtr col = table.GetColumnOrNull(column_);
  if (col == nullptr) return result;
  const IColumn& c = *col;
  result.is_string = IsStringKind(c.kind());
  result.is_integral = c.kind() == DataKind::kInt;

  if (result.is_string) {
    const auto& dict = c.Dictionary();
    CodeRangeTally tally{&result};
    ScanColumn(c, *table.members(), 1.0, 0, tally);
    if (!tally.first) {
      result.min_string = dict[tally.min_code];
      result.max_string = dict[tally.max_code];
    }
    return result;
  }

  NumericRangeTally tally{&result, num_moments_};
  ScanColumn(c, *table.members(), 1.0, 0, tally);
  return result;
}

RangeResult RangeSketch::Merge(const RangeResult& left,
                               const RangeResult& right) const {
  if (left.IsZero()) return right;
  if (right.IsZero()) return left;
  RangeResult out = left;
  out.missing_count += right.missing_count;
  if (right.present_count > 0) {
    if (out.present_count == 0) {
      out.min = right.min;
      out.max = right.max;
      out.min_string = right.min_string;
      out.max_string = right.max_string;
    } else {
      out.min = std::min(out.min, right.min);
      out.max = std::max(out.max, right.max);
      if (out.is_string) {
        if (right.min_string < out.min_string) out.min_string = right.min_string;
        if (right.max_string > out.max_string) out.max_string = right.max_string;
      }
    }
    out.present_count += right.present_count;
    for (size_t m = 0; m < out.moments.size() && m < right.moments.size();
         ++m) {
      out.moments[m] += right.moments[m];
    }
  }
  return out;
}

}  // namespace hillview
