#ifndef HILLVIEW_SKETCH_FIND_TEXT_H_
#define HILLVIEW_SKETCH_FIND_TEXT_H_

#include <optional>
#include <string>
#include <vector>

#include "sketch/next_items.h"
#include "sketch/sketch.h"
#include "storage/row_order.h"
#include "util/serialize.h"

namespace hillview {

/// Free-form text search criteria (§3.3: "exact match, substring, regular
/// expressions, case sensitivity").
struct StringFilter {
  enum class Mode : uint8_t { kSubstring = 0, kExact = 1, kRegex = 2 };

  std::string text;
  Mode mode = Mode::kSubstring;
  bool case_sensitive = false;

  std::string ToString() const;
};

/// Compiled matcher for a StringFilter (regexes compile once per partition
/// scan, not per row).
class StringMatcher {
 public:
  explicit StringMatcher(const StringFilter& filter);
  bool Matches(const std::string& s) const;

 private:
  StringFilter filter_;
  std::string lowered_text_;
  std::shared_ptr<const void> regex_;  // std::regex behind a type-erased ptr
};

/// The "Find text" vizketch (§B.2): the first row matching the criteria
/// strictly after the start key in the sort order, plus match counts.
struct FindResult {
  /// Total matching rows in the searched data.
  int64_t match_count = 0;
  /// Matching rows at or before the start key (wrap-around support).
  int64_t matches_before = 0;
  /// Key (order-column cells) of the first match after the start key.
  std::optional<std::vector<Value>> first_match;

  bool IsZero() const {
    return match_count == 0 && matches_before == 0 && !first_match;
  }

  void Serialize(ByteWriter* w) const;
  static Status Deserialize(ByteReader* r, FindResult* out);
};

class FindTextSketch final : public Sketch<FindResult> {
 public:
  /// Searches `columns` (string columns; a row matches if any searched cell
  /// matches), ordered by `order` for "next" semantics.
  FindTextSketch(RecordOrder order, std::vector<std::string> columns,
                 StringFilter filter,
                 std::optional<std::vector<Value>> start_key)
      : order_(std::move(order)),
        columns_(std::move(columns)),
        filter_(std::move(filter)),
        start_key_(std::move(start_key)) {}

  std::string name() const override;
  FindResult Zero() const override { return {}; }
  FindResult Summarize(const Table& table, uint64_t seed) const override;
  FindResult Merge(const FindResult& left,
                   const FindResult& right) const override;

 private:
  int CompareKeys(const std::vector<Value>& a,
                  const std::vector<Value>& b) const;

  RecordOrder order_;
  std::vector<std::string> columns_;
  StringFilter filter_;
  std::optional<std::vector<Value>> start_key_;
};

}  // namespace hillview

#endif  // HILLVIEW_SKETCH_FIND_TEXT_H_
