#ifndef HILLVIEW_SKETCH_FIND_TEXT_H_
#define HILLVIEW_SKETCH_FIND_TEXT_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sketch/next_items.h"
#include "sketch/sketch.h"
#include "storage/column_storage.h"
#include "storage/row_order.h"
#include "util/serialize.h"

namespace hillview {

/// Free-form text search criteria (§3.3: "exact match, substring, regular
/// expressions, case sensitivity").
struct StringFilter {
  enum class Mode : uint8_t { kSubstring = 0, kExact = 1, kRegex = 2 };

  std::string text;
  Mode mode = Mode::kSubstring;
  bool case_sensitive = false;

  std::string ToString() const;
};

/// Compiled matcher for a StringFilter (regexes compile once per partition
/// scan, not per row). An invalid user-supplied regex never throws out of
/// the constructor: it surfaces as a non-OK status() — check it (or call
/// Validate first) before trusting Matches, which reports false for every
/// string under a failed compile.
class StringMatcher {
 public:
  explicit StringMatcher(const StringFilter& filter);
  bool Matches(std::string_view s) const;

  /// OK, or InvalidArgument describing the rejected pattern.
  const Status& status() const { return status_; }

  /// Validates a filter without keeping the compiled matcher: the up-front
  /// check API surfaces (FindText, FilterMatches) run before scanning.
  static Status Validate(const StringFilter& filter);

 private:
  StringFilter filter_;
  std::string lowered_text_;
  std::shared_ptr<const void> regex_;  // std::regex behind a type-erased ptr
  Status status_;
};

/// Below this dictionary size the chunking overhead (task allocation, latch
/// wakeups) exceeds the matching work; measured crossover is far lower, the
/// margin keeps small partitions strictly on the fast inline path. Callers
/// holding a lazy pool provider should consult this before asking for the
/// pool at all, so small dictionaries never spawn its threads.
inline constexpr size_t kParallelDictionaryThreshold = 4096;

/// The memoized per-code verdict table: Matches() evaluated once per
/// distinct dictionary entry. For large dictionaries (>=
/// kParallelDictionaryThreshold) the work is chunked across `pool` (when
/// non-null); entries are independent, so chunks write disjoint slots. This
/// is what makes regex search O(distinct strings), not O(rows), and
/// parallel on big dictionaries.
std::vector<uint8_t> MatchDictionary(const StringMatcher& matcher,
                                     const StringDictionary& dict,
                                     ThreadPool* pool = nullptr);

/// The "Find text" vizketch (§B.2): the first row matching the criteria
/// strictly after the start key in the sort order, plus match counts.
struct FindResult {
  /// Total matching rows in the searched data.
  int64_t match_count = 0;
  /// Matching rows at or before the start key (wrap-around support).
  int64_t matches_before = 0;
  /// Key (order-column cells) of the first match after the start key.
  std::optional<std::vector<Value>> first_match;

  bool IsZero() const {
    return match_count == 0 && matches_before == 0 && !first_match;
  }

  void Serialize(ByteWriter* w) const;
  static Status Deserialize(ByteReader* r, FindResult* out);
};

class FindTextSketch final : public Sketch<FindResult> {
 public:
  /// Searches `columns` (string columns; a row matches if any searched cell
  /// matches), ordered by `order` for "next" semantics.
  FindTextSketch(RecordOrder order, std::vector<std::string> columns,
                 StringFilter filter,
                 std::optional<std::vector<Value>> start_key)
      : order_(std::move(order)),
        columns_(std::move(columns)),
        filter_(std::move(filter)),
        start_key_(std::move(start_key)) {}

  std::string name() const override;
  FindResult Zero() const override { return {}; }
  FindResult Summarize(const Table& table, uint64_t seed) const override {
    return Summarize(table, seed, SketchContext{});
  }
  FindResult Summarize(const Table& table, uint64_t seed,
                       const SketchContext& context) const override;
  FindResult Merge(const FindResult& left,
                   const FindResult& right) const override;

 private:
  int CompareKeys(const std::vector<Value>& a,
                  const std::vector<Value>& b) const;

  RecordOrder order_;
  std::vector<std::string> columns_;
  StringFilter filter_;
  std::optional<std::vector<Value>> start_key_;
};

}  // namespace hillview

#endif  // HILLVIEW_SKETCH_FIND_TEXT_H_
