#include "sketch/string_quantiles.h"

#include <algorithm>

#include "storage/scan.h"

namespace hillview {

namespace {

// Marks which dictionary codes are referenced by member rows.
struct UsedCodesTally {
  uint8_t* used;
  void OnValue(uint32_t /*row*/, uint32_t code) { used[code] = 1; }
  void OnMissing(uint32_t /*row*/) {}
};

}  // namespace

void BottomKResult::Serialize(ByteWriter* w) const {
  w->WriteU32(static_cast<uint32_t>(items.size()));
  for (const auto& [hash, value] : items) {
    w->WriteU64(hash);
    w->WriteString(value);
  }
  w->WriteI32(k);
  w->WriteBool(complete);
}

Status BottomKResult::Deserialize(ByteReader* r, BottomKResult* out) {
  uint32_t n = 0;
  // Each item is at least a hash (u64) and a string length (u32).
  HV_RETURN_IF_ERROR(r->ReadCount(&n, /*min_element_bytes=*/12));
  out->items.resize(n);
  for (auto& [hash, value] : out->items) {
    HV_RETURN_IF_ERROR(r->ReadU64(&hash));
    HV_RETURN_IF_ERROR(r->ReadString(&value));
  }
  HV_RETURN_IF_ERROR(r->ReadI32(&out->k));
  HV_RETURN_IF_ERROR(r->ReadBool(&out->complete));
  return Status::OK();
}

BottomKResult BottomKStringsSketch::Summarize(const Table& table,
                                              uint64_t seed) const {
  (void)seed;  // Fixed hash seed: partitions must agree on hashes to merge.
  BottomKResult result;
  result.k = k_;
  ColumnPtr col = table.GetColumnOrNull(column_);
  if (col == nullptr) return result;
  const uint32_t* codes = col->RawCodes();
  if (codes == nullptr) return result;  // Not a string column.
  const auto& dict = col->Dictionary();

  // The dictionary already holds the distinct values of this partition, so
  // bottom-k runs over the dictionary, not the rows. Only codes referenced
  // by member rows count as present (a filtered partition may not use all
  // dictionary entries).
  std::vector<uint8_t> used(dict.size(), 0);
  if (table.members()->kind() == IMembershipSet::Kind::kFull &&
      table.num_rows() > 0) {
    // Loaders only create dictionary entries for present values.
    std::fill(used.begin(), used.end(), 1);
  } else {
    UsedCodesTally tally{used.data()};
    ScanColumn(*col, *table.members(), 1.0, 0, tally);
  }

  for (size_t c = 0; c < dict.size(); ++c) {
    if (!used[c]) continue;
    uint64_t h = HashBytes(dict[c].data(), dict[c].size(), hash_seed_);
    result.items.emplace_back(h, dict[c]);
  }
  std::sort(result.items.begin(), result.items.end());
  result.items.erase(std::unique(result.items.begin(), result.items.end(),
                                 [](const auto& a, const auto& b) {
                                   return a.first == b.first;
                                 }),
                     result.items.end());
  if (static_cast<int>(result.items.size()) > k_) {
    result.items.resize(k_);
    result.complete = false;
  }
  return result;
}

BottomKResult BottomKStringsSketch::Merge(const BottomKResult& left,
                                          const BottomKResult& right) const {
  if (left.IsZero()) return right;
  if (right.IsZero()) return left;
  BottomKResult out;
  out.k = std::max(left.k, right.k);
  out.items.reserve(left.items.size() + right.items.size());
  std::merge(left.items.begin(), left.items.end(), right.items.begin(),
             right.items.end(), std::back_inserter(out.items));
  out.items.erase(std::unique(out.items.begin(), out.items.end(),
                              [](const auto& a, const auto& b) {
                                return a.first == b.first;
                              }),
                  out.items.end());
  out.complete = left.complete && right.complete;
  if (static_cast<int>(out.items.size()) > out.k) {
    out.items.resize(out.k);
    out.complete = false;
  }
  return out;
}

StringBuckets StringBucketsFromBottomK(const BottomKResult& result,
                                       int max_buckets,
                                       const std::string& max_value) {
  std::vector<std::string> values;
  values.reserve(result.items.size());
  for (const auto& [hash, value] : result.items) values.push_back(value);
  std::sort(values.begin(), values.end());

  std::vector<std::string> boundaries;
  int distinct = static_cast<int>(values.size());
  if (distinct == 0) return StringBuckets(std::vector<std::string>{});
  if (distinct <= max_buckets && result.complete) {
    // One bucket per distinct value.
    boundaries = values;
  } else {
    // Quantile boundaries over the (sampled) distinct values.
    boundaries.reserve(max_buckets);
    for (int b = 0; b < max_buckets; ++b) {
      size_t idx = static_cast<size_t>(
          static_cast<double>(b) * distinct / max_buckets);
      if (boundaries.empty() || values[idx] != boundaries.back()) {
        boundaries.push_back(values[idx]);
      }
    }
  }
  return StringBuckets(std::move(boundaries), max_value, !max_value.empty());
}

}  // namespace hillview
