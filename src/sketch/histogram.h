#ifndef HILLVIEW_SKETCH_HISTOGRAM_H_
#define HILLVIEW_SKETCH_HISTOGRAM_H_

#include <string>
#include <vector>

#include "sketch/buckets.h"
#include "sketch/sketch.h"
#include "util/serialize.h"

namespace hillview {

/// Summary produced by the histogram vizketches: one count per bucket, plus
/// missing-value and out-of-range tallies (§4.3: "The summarize function
/// outputs a vector of B bin counts, and the merge function adds two
/// vectors"). Size is O(B) — independent of the dataset.
struct HistogramResult {
  std::vector<int64_t> counts;
  int64_t missing = 0;
  int64_t out_of_range = 0;
  /// Rows inspected to build this summary (sampled rows for sampled
  /// sketches). Drives confidence reporting in the renderer.
  int64_t rows_scanned = 0;
  /// Effective sampling rate; 1.0 for streaming sketches. All partitions of
  /// one query share the same rate (it is computed from the global row count
  /// during the preparation phase), so merging keeps the larger rate of the
  /// two operands only to absorb Zero() elements.
  double sample_rate = 1.0;

  bool IsZero() const { return counts.empty(); }

  /// Unbiased estimate of the true count in bucket `b`.
  double EstimatedCount(int b) const {
    return static_cast<double>(counts[b]) / sample_rate;
  }

  /// Sum of all bucket counts (not scaled by the sample rate).
  int64_t TotalCount() const;

  void Serialize(ByteWriter* w) const;
  static Status Deserialize(ByteReader* r, HistogramResult* out);
};

/// Exact histogram: scans every member row ("Histogram (streaming)" in §B.1,
/// for "users [who] want to get the results precise to the last digit").
class StreamingHistogramSketch final : public Sketch<HistogramResult> {
 public:
  StreamingHistogramSketch(std::string column, Buckets buckets)
      : column_(std::move(column)), buckets_(std::move(buckets)) {}

  std::string name() const override;
  HistogramResult Zero() const override;
  HistogramResult Summarize(const Table& table, uint64_t seed) const override;
  HistogramResult Merge(const HistogramResult& left,
                        const HistogramResult& right) const override;

  /// Integer bucket counts merged by pointwise addition: splitting the scan
  /// into row ranges reorders only integer increments.
  bool MorselMergeExact() const override { return true; }

  const Buckets& buckets() const { return buckets_; }

 private:
  std::string column_;
  Buckets buckets_;
};

/// Approximate histogram: samples member rows at a fixed global rate chosen
/// from the display resolution (§4.3). The seed makes sampling deterministic
/// for replay.
class SampledHistogramSketch final : public Sketch<HistogramResult> {
 public:
  /// `rate` is the per-row sampling probability, typically
  /// SampleRateForSize(HistogramSampleSize(V, B), total_rows).
  SampledHistogramSketch(std::string column, Buckets buckets, double rate)
      : column_(std::move(column)),
        buckets_(std::move(buckets)),
        rate_(rate) {}

  std::string name() const override;
  HistogramResult Zero() const override;
  HistogramResult Summarize(const Table& table, uint64_t seed) const override;
  HistogramResult Merge(const HistogramResult& left,
                        const HistogramResult& right) const override;

  /// At rate >= 1 this degenerates to the streaming scan (exact integer
  /// tallies); below 1 the geometric skip sequence restarts per morsel, so
  /// the sampled row set — and thus the counts — would change.
  bool MorselMergeExact() const override { return rate_ >= 1.0; }

  double rate() const { return rate_; }
  const Buckets& buckets() const { return buckets_; }

 private:
  std::string column_;
  Buckets buckets_;
  double rate_;
};

/// Internal helper shared by the histogram-family sketches: tallies one
/// table's rows into `result`, either fully (rate >= 1) or by sampling.
/// Exposed for reuse by the CDF and stacked-histogram implementations.
void TallyHistogram(const Table& table, const std::string& column,
                    const Buckets& buckets, double rate, uint64_t seed,
                    HistogramResult* result);

/// Merges two histogram summaries by pointwise addition; Zero elements
/// (empty counts) act as identities. Shared by both sketches.
HistogramResult MergeHistograms(const HistogramResult& left,
                                const HistogramResult& right);

}  // namespace hillview

#endif  // HILLVIEW_SKETCH_HISTOGRAM_H_
