#ifndef HILLVIEW_SKETCH_SKETCH_H_
#define HILLVIEW_SKETCH_SKETCH_H_

#include <functional>
#include <memory>
#include <string>

#include "storage/table.h"
#include "util/cancellation.h"

namespace hillview {

class ThreadPool;
class SortKeyCache;

/// Optional worker-local resources handed to a sketch execution by the
/// engine. `aux_pool` provides an auxiliary helper pool for intra-partition
/// parallelism (e.g. find-text matching a huge dictionary); it is distinct
/// from the pool that runs Summarize itself, so blocking on submitted chunks
/// cannot deadlock the partition scheduler. `key_cache` provides the
/// worker-resident sort-key cache so order-based sketches reuse materialized
/// key columns across repeated scrolls of the same view. Both are
/// *providers*, not pointers, so the resource is only touched when a sketch
/// actually asks for it. Either may be empty (single-threaded callers:
/// tests, benches, standalone examples); sketches then work inline /
/// rebuild keys per scan.
///
/// `cancellation` carries the render's cancellation token down to the morsel
/// fan-out (sketch/morsel.h): a superseded render stops scheduling new
/// morsels at the next boundary. A summarize that observed the token flipped
/// may return an INCOMPLETE summary — the engine layer that noticed the
/// cancellation discards it (the leaf completes Cancelled instead of
/// emitting). May be null.
struct SketchContext {
  std::function<ThreadPool*()> aux_pool;
  std::function<SortKeyCache*()> key_cache;
  CancellationTokenPtr cancellation;
};

/// A mergeable summarization method (§4.1): `Summarize` maps a dataset
/// partition to a small summary; `Merge` combines two summaries such that
///
///   Summarize(D1 ⊎ D2) == Merge(Summarize(D1), Summarize(D2))
///
/// exactly for streaming sketches and in distribution for sampled ones.
/// Vizketches are sketches whose parameters (bucket counts, sample sizes)
/// are derived from a display resolution; that derivation lives in
/// `render/` — the sketch itself is pure data summarization.
///
/// Implementations must be deterministic functions of (table, seed): the
/// engine replays (sketch, seed) pairs from the redo log after failures
/// (§5.8), so a restarted worker must reproduce identical summaries.
///
/// The summary type R must be default-constructible (== the zero summary),
/// copyable, and define
///   void Serialize(ByteWriter*) const;
///   static Status Deserialize(ByteReader*, R*);
/// which the simulated cluster uses to move summaries between machines and
/// to charge network bytes.
template <typename R>
class Sketch {
 public:
  using ResultType = R;

  virtual ~Sketch() = default;

  /// Stable name recorded in the redo log and the computation-cache key.
  virtual std::string name() const = 0;

  /// The identity element of Merge: the summary of an empty dataset.
  virtual R Zero() const = 0;

  /// Computes the summary of one partition. `seed` is the partition-specific
  /// deterministic seed (already mixed from the root seed by the engine);
  /// non-randomized sketches ignore it. Must be side-effect free and must
  /// not spawn its own threads — the engine owns all concurrency (§5.5),
  /// except through the context's auxiliary pool below.
  virtual R Summarize(const Table& table, uint64_t seed) const = 0;

  /// Context-aware variant invoked by the engine; the default ignores the
  /// context. Sketches that can exploit worker-local resources (the
  /// auxiliary pool) override this one and route the plain overload here.
  virtual R Summarize(const Table& table, uint64_t seed,
                      const SketchContext& context) const {
    (void)context;
    return Summarize(table, seed);
  }

  /// Combines two summaries. Must be associative with Zero() as identity,
  /// and commutative for all sketches in this library (partial results can
  /// arrive in any order).
  virtual R Merge(const R& left, const R& right) const = 0;

  /// Whether this sketch's summaries are BYTE-IDENTICAL under partition
  /// splitting: for every decomposition of a table's member rows into
  /// 64-row-aligned ranges r1 < r2 < ... < rk,
  ///
  ///   Merge(...Merge(Summarize(r1), Summarize(r2))..., Summarize(rk))
  ///     == Summarize(whole table)   byte for byte,
  ///
  /// with every piece summarized under the SAME seed. This is a much
  /// stronger property than mergeability: it is what lets the engine fan a
  /// single partition's summarize across morsels (sketch/morsel.h) without
  /// perturbing ComputationCache keys or redo-log replay. It typically
  /// holds for integer-count tallies (histograms at rate >= 1) and
  /// order-insensitive maxima (HyperLogLog registers), and typically FAILS
  /// for: sampled scans (the skip sequence restarts per range), floating-
  /// point accumulations (reassociated sums), lossy merges (Misra-Gries
  /// decrements), and anything that recomputes over merged state. Default
  /// is the safe answer.
  virtual bool MorselMergeExact() const { return false; }
};

template <typename R>
using SketchPtr = std::shared_ptr<const Sketch<R>>;

}  // namespace hillview

#endif  // HILLVIEW_SKETCH_SKETCH_H_
