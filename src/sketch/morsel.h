#ifndef HILLVIEW_SKETCH_MORSEL_H_
#define HILLVIEW_SKETCH_MORSEL_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "sketch/sketch.h"
#include "storage/membership.h"
#include "storage/table.h"
#include "util/thread_pool.h"

namespace hillview {

/// Morsel-driven intra-worker parallelism: a single partition's summarize is
/// split into cache-sized row ranges ("morsels") fanned across the worker's
/// pool and merged back with the sketch's own Merge. The engine only engages
/// it for sketches that declare Sketch::MorselMergeExact() — the fold over
/// morsel summaries is then BYTE-IDENTICAL to the single-thread scan, so
/// ComputationCache keys and redo-log replay never observe whether a result
/// was computed on one thread or eight.
///
/// Determinism comes from three choices: morsel boundaries are 64-row-
/// aligned (so null/membership words are never split mid-word and the scan
/// layer's word-at-a-time loops see the same blocks), every morsel
/// summarizes under the SAME seed as the whole partition would, and the
/// merge is a left fold in ascending row order over a pre-sized slot array —
/// completion order never matters.

/// Default minimum rows per morsel: 2^18 rows keeps one double column's
/// morsel around 2 MB — roughly an L2 slice — so a morsel's scan stays
/// cache-resident while still amortizing the fan-out overhead. Ranges are
/// always multiples of 64 rows.
inline constexpr uint32_t kDefaultMorselRows = 1u << 18;

/// Test hook: overrides the minimum morsel size (rounded up to a multiple of
/// 64) so small property-test tables still fan out; 0 restores the default.
/// Atomic — safe to flip between (not during) summarize calls.
void SetMorselMinRowsForTest(uint32_t rows);

/// The active minimum rows per morsel (the override, or kDefaultMorselRows).
uint32_t MorselMinRows();

/// Splits the universe [0, universe_size) into consecutive [begin, end)
/// ranges of `morsel_rows` rows (rounded up to a multiple of 64; the last
/// range takes the remainder).
std::vector<std::pair<uint32_t, uint32_t>> PlanMorselRanges(
    uint32_t universe_size, uint32_t morsel_rows);

/// The member rows of `base` restricted to universe rows [begin, end), over
/// the SAME universe (morsel tables must keep the partition's row ids —
/// columns are shared, not sliced). `begin` must be 64-aligned.
MembershipPtr SliceMembership(const IMembershipSet& base, uint32_t begin,
                              uint32_t end);

/// True when the context carries a flipped cancellation token: the render
/// this scan serves has been superseded. The single polling predicate for
/// every morsel boundary, so "checked at morsel boundaries" means exactly
/// one thing tree-wide.
bool MorselCancelled(const SketchContext& context);

/// Summarizes `table` for `sketch`, fanning across morsels when the sketch
/// declares exact morsel merging, the context provides an auxiliary pool,
/// and the table is big enough to pay for the fan-out; otherwise falls back
/// to the plain single-thread summarize. This is the engine's single choke
/// point (core/any_sketch.h routes every leaf summarize here).
template <typename R>
R SummarizeWithMorsels(const Sketch<R>& sketch, const Table& table,
                       uint64_t seed, const SketchContext& context) {
  ThreadPool* pool = nullptr;
  if (sketch.MorselMergeExact() && context.aux_pool) pool = context.aux_pool();
  const IMembershipSet& members = *table.members();
  const uint32_t morsel_rows = MorselMinRows();
  if (pool == nullptr || pool->num_threads() < 1 ||
      members.size() < 2 * morsel_rows) {
    return sketch.Summarize(table, seed, context);
  }
  const auto ranges = PlanMorselRanges(members.universe_size(), morsel_rows);
  if (ranges.size() < 2) return sketch.Summarize(table, seed, context);

  // Morsels run with the aux pool stripped from their context: the fan-out
  // already owns the pool's parallelism, and a nested fan-out would only
  // re-split the same rows. The key cache stays available, and so is the
  // cancellation token — each morsel is a poll point.
  SketchContext inner;
  inner.key_cache = context.key_cache;
  inner.cancellation = context.cancellation;

  std::vector<R> parts(ranges.size());
  ParallelApply(pool, static_cast<int>(ranges.size()), [&](int i) {
    // Cancellation is checked at the morsel boundary: a morsel already
    // running finishes (§5.3's "do not stop ongoing computations"), but no
    // further morsel starts once the render is superseded. Skipped slots
    // stay zero summaries, so the fold below produces an INCOMPLETE result —
    // the leaf that polled the token discards it instead of emitting.
    if (MorselCancelled(inner)) return;
    TablePtr morsel = table.WithMembership(
        SliceMembership(members, ranges[i].first, ranges[i].second));
    parts[i] = sketch.Summarize(*morsel, seed, inner);
  });

  // Ascending left fold from the first morsel (not from Zero(): the
  // contract in Sketch::MorselMergeExact is defined over the parts alone,
  // and Merge's Zero-identity handling may short-circuit rather than add).
  R acc = std::move(parts[0]);
  for (size_t i = 1; i < parts.size(); ++i) {
    acc = sketch.Merge(acc, parts[i]);
  }
  return acc;
}

}  // namespace hillview

#endif  // HILLVIEW_SKETCH_MORSEL_H_
