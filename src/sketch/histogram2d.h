#ifndef HILLVIEW_SKETCH_HISTOGRAM2D_H_
#define HILLVIEW_SKETCH_HISTOGRAM2D_H_

#include <string>
#include <vector>

#include "sketch/buckets.h"
#include "sketch/sketch.h"
#include "util/serialize.h"

namespace hillview {

/// Two-dimensional bucket counts: the shared summary behind stacked
/// histograms (§B.1), normalized stacked histograms, and heat maps. Matches
/// the paper's summary shape — "a small vector S of Bx + Bx×By bin counts"
/// for stacked histograms and "a matrix of Bx×By bin counts" for heat maps.
struct Histogram2DResult {
  int x_buckets = 0;
  int y_buckets = 0;
  /// Joint counts, row-major: xy[x * y_buckets + y].
  std::vector<int64_t> xy;
  /// Per-X totals including rows whose Y is missing (this is the stacked
  /// histogram's bar height).
  std::vector<int64_t> x_counts;
  int64_t missing_x = 0;       // X missing (Y ignored)
  int64_t missing_y = 0;       // X present, Y missing
  int64_t out_of_range = 0;
  int64_t rows_scanned = 0;
  double sample_rate = 1.0;

  bool IsZero() const { return xy.empty(); }

  int64_t Count(int x, int y) const { return xy[x * y_buckets + y]; }
  double EstimatedCount(int x, int y) const {
    return static_cast<double>(Count(x, y)) / sample_rate;
  }

  void Serialize(ByteWriter* w) const;
  static Status Deserialize(ByteReader* r, Histogram2DResult* out);
};

/// Counts pairs of columns into a 2D grid. With rate == 1.0 this is the
/// exact streaming variant (required by the normalized stacked histogram and
/// by log-scale heat maps, §B.1); with rate < 1.0 it samples, which is valid
/// whenever the count-to-pixel/color map is linear.
class Histogram2DSketch final : public Sketch<Histogram2DResult> {
 public:
  Histogram2DSketch(std::string x_column, Buckets x_buckets,
                    std::string y_column, Buckets y_buckets,
                    double rate = 1.0)
      : x_column_(std::move(x_column)),
        y_column_(std::move(y_column)),
        x_buckets_(std::move(x_buckets)),
        y_buckets_(std::move(y_buckets)),
        rate_(rate) {}

  std::string name() const override;
  Histogram2DResult Zero() const override { return {}; }
  Histogram2DResult Summarize(const Table& table, uint64_t seed) const override;
  Histogram2DResult Merge(const Histogram2DResult& left,
                          const Histogram2DResult& right) const override;

  /// Pointwise integer adds; exact under splitting only when streaming
  /// (sampling skips restart per morsel).
  bool MorselMergeExact() const override { return rate_ >= 1.0; }

  double rate() const { return rate_; }

 private:
  std::string x_column_;
  std::string y_column_;
  Buckets x_buckets_;
  Buckets y_buckets_;
  double rate_;
};

/// Merge by pointwise addition with Zero-identity handling; shared with the
/// trellis sketch.
Histogram2DResult MergeHistogram2D(const Histogram2DResult& left,
                                   const Histogram2DResult& right);

/// Trellis plot summary: an array of 2D grids, one per bucket of the
/// grouping column W (§B.1 "Trellis plots"). The summary size equals that of
/// a single heat map with the same total pixel area, since each sub-plot is
/// proportionally smaller.
struct TrellisResult {
  std::vector<Histogram2DResult> groups;
  int64_t missing_w = 0;
  int64_t out_of_range_w = 0;

  bool IsZero() const { return groups.empty(); }

  void Serialize(ByteWriter* w) const;
  static Status Deserialize(ByteReader* r, TrellisResult* out);
};

/// Computes a 2D grid for every bucket of the grouping column W.
class TrellisSketch final : public Sketch<TrellisResult> {
 public:
  TrellisSketch(std::string w_column, Buckets w_buckets, std::string x_column,
                Buckets x_buckets, std::string y_column, Buckets y_buckets,
                double rate = 1.0)
      : w_column_(std::move(w_column)),
        x_column_(std::move(x_column)),
        y_column_(std::move(y_column)),
        w_buckets_(std::move(w_buckets)),
        x_buckets_(std::move(x_buckets)),
        y_buckets_(std::move(y_buckets)),
        rate_(rate) {}

  std::string name() const override;
  TrellisResult Zero() const override { return {}; }
  TrellisResult Summarize(const Table& table, uint64_t seed) const override;
  TrellisResult Merge(const TrellisResult& left,
                      const TrellisResult& right) const override;

  /// Same rule as Histogram2DSketch: per-group integer adds.
  bool MorselMergeExact() const override { return rate_ >= 1.0; }

 private:
  std::string w_column_;
  std::string x_column_;
  std::string y_column_;
  Buckets w_buckets_;
  Buckets x_buckets_;
  Buckets y_buckets_;
  double rate_;
};

}  // namespace hillview

#endif  // HILLVIEW_SKETCH_HISTOGRAM2D_H_
