#include "sketch/quantile.h"

#include <algorithm>

#include "storage/scan.h"
#include "storage/sort_key.h"
#include "storage/sort_key_cache.h"

namespace hillview {

const std::vector<Value>* QuantileResult::KeyAtQuantile(double q) const {
  if (keys.empty()) return nullptr;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  size_t idx = static_cast<size_t>(q * (keys.size() - 1) + 0.5);
  return &keys[idx];
}

void QuantileResult::Serialize(ByteWriter* w) const {
  w->WriteU32(static_cast<uint32_t>(keys.size()));
  for (const auto& key : keys) {
    w->WriteU32(static_cast<uint32_t>(key.size()));
    for (const auto& v : key) SerializeValue(v, w);
  }
  w->WriteDouble(rate);
  w->WriteI32(max_size);
}

Status QuantileResult::Deserialize(ByteReader* r, QuantileResult* out) {
  uint32_t n = 0;
  HV_RETURN_IF_ERROR(r->ReadCount(&n, /*min_element_bytes=*/4));
  out->keys.resize(n);
  for (auto& key : out->keys) {
    uint32_t m = 0;
    HV_RETURN_IF_ERROR(r->ReadCount(&m, /*min_element_bytes=*/1));
    key.resize(m);
    for (auto& v : key) HV_RETURN_IF_ERROR(DeserializeValue(r, &v));
  }
  HV_RETURN_IF_ERROR(r->ReadDouble(&out->rate));
  HV_RETURN_IF_ERROR(r->ReadI32(&out->max_size));
  return Status::OK();
}

std::string QuantileSketch::name() const {
  std::string n = "quantile(";
  for (const auto& o : order_.orientations()) {
    n += o.column;
    n += o.ascending ? "+" : "-";
  }
  n += ',';
  n += std::to_string(rate_);
  n += ')';
  return n;
}

int QuantileSketch::CompareKeys(const std::vector<Value>& a,
                                const std::vector<Value>& b) const {
  const auto& orientations = order_.orientations();
  for (size_t i = 0; i < orientations.size() && i < a.size() && i < b.size();
       ++i) {
    int c = CompareValues(a[i], b[i]);
    if (c != 0) return orientations[i].ascending ? c : -c;
  }
  return 0;
}

QuantileResult QuantileSketch::Summarize(const Table& table, uint64_t seed,
                                         const SketchContext& context) const {
  QuantileResult result;
  result.rate = rate_;
  result.max_size = max_size_;
  std::vector<std::string> names = order_.ColumnNames();

  std::vector<uint32_t> sampled;
  ScanRows(*table.members(), rate_, seed,
           [&](uint32_t row) { sampled.push_back(row); });

  // The keyed sort pays an O(universe) key-materialization pass up front, so
  // a cold build only wins when the sample is a sizable fraction of the
  // universe (KeyedScanProfitable); a low-rate scroll-bar sample of a huge
  // partition sorts faster through the virtual comparator than it could
  // ever amortize full key extraction. Keys already resident in the
  // worker's sort-key cache are free, so a cache hit always sorts keyed.
  // With neither a cache nor a profitable build, skip even planning: its
  // encoding pre-passes read O(universe) on narrow-column orders.
  SortKeyCache* cache = context.key_cache ? context.key_cache() : nullptr;
  const bool profitable =
      KeyedScanProfitable(sampled.size(), table.universe_size());
  if (cache != nullptr || profitable) {
    SortKeyPlan plan(table, order_, SortKeyPlan::kDeferKeys);
    SortKeyPlan::KeysPtr keys =
        GetOrBuildKeys(cache, plan, /*build_allowed=*/profitable);
    if (keys != nullptr) {
      plan.AdoptKeys(std::move(keys));
      // Devirtualized path: sort (normalized key, row) pairs — a plain
      // integer sort when the key order is total; ties (multi-column
      // orders, inexact packed components) fall back to the virtual
      // comparator within equal-key runs.
      KeyComparator cmp(table, plan);
      std::vector<std::pair<uint64_t, uint32_t>> keyed;
      keyed.reserve(sampled.size());
      for (uint32_t row : sampled) keyed.emplace_back(cmp.Key(row), row);
      if (plan.TotalOrder()) {
        std::sort(keyed.begin(), keyed.end());
      } else {
        std::sort(keyed.begin(), keyed.end(),
                  [&](const std::pair<uint64_t, uint32_t>& a,
                      const std::pair<uint64_t, uint32_t>& b) {
                    if (a.first != b.first) return a.first < b.first;
                    return cmp.Less(a.second, b.second);
                  });
      }
      result.keys.reserve(keyed.size());
      for (const auto& kr : keyed) {
        result.keys.push_back(table.GetRow(kr.second, names));
      }
      return result;
    }
  }

  RowComparator comparator(table, order_);
  std::sort(sampled.begin(), sampled.end(),
            [&](uint32_t a, uint32_t b) { return comparator.Less(a, b); });
  result.keys.reserve(sampled.size());
  for (uint32_t row : sampled) result.keys.push_back(table.GetRow(row, names));
  return result;
}

QuantileResult QuantileSketch::Merge(const QuantileResult& left,
                                     const QuantileResult& right) const {
  if (left.IsZero()) return right;
  if (right.IsZero()) return left;
  QuantileResult out;
  out.rate = std::max(left.rate, right.rate);
  out.max_size = std::max(left.max_size, right.max_size);
  out.keys.reserve(left.keys.size() + right.keys.size());
  std::merge(left.keys.begin(), left.keys.end(), right.keys.begin(),
             right.keys.end(), std::back_inserter(out.keys),
             [this](const std::vector<Value>& a, const std::vector<Value>& b) {
               return CompareKeys(a, b) < 0;
             });
  // Decimation: drop every other element once past the cap. Ranks are
  // preserved to within the quantile accuracy budget because decimation is
  // rank-uniform.
  while (out.max_size > 0 &&
         static_cast<int>(out.keys.size()) > out.max_size) {
    std::vector<std::vector<Value>> kept;
    kept.reserve(out.keys.size() / 2 + 1);
    for (size_t i = 0; i < out.keys.size(); i += 2) {
      kept.push_back(std::move(out.keys[i]));
    }
    out.keys = std::move(kept);
  }
  return out;
}

}  // namespace hillview
