#include "sketch/quantile.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>

#include "storage/scan.h"
#include "storage/sort_key.h"
#include "storage/sort_key_cache.h"

namespace hillview {

namespace {

/// First word of the weighted wire format. A legacy (pre-KLL) payload starts
/// with its key count instead; the magic is ~1.26 billion, far beyond any
/// count the legacy size guard would accept, so the two cannot collide.
constexpr uint32_t kQuantileWireMagic = 0x4B4C4C31;  // "1LLK" little-endian

/// Seed streams (MixSeed) for the deterministic coins: compaction parity
/// and the rate-reconciling subsample of a merge.
constexpr uint64_t kCompactStream = 0xC09AC7;
constexpr uint64_t kSubsampleStream = 0x5AB5A9;
constexpr uint64_t kSummarySeedStream = 0x9B1E55ED;

/// Largest weight exponent (and log₂ of the largest per-payload total
/// weight) the wire accepts. Real totals are display-sized (≈ V² sampled
/// rows), so 2^44 is astronomically generous, while the cap keeps any
/// realistic number of individually-valid hostile payloads from composing
/// into uint64 overflow in TotalWeight/weighted selection downstream.
constexpr unsigned kMaxWeightExponent = 44;

/// Coin seed for a summary's compaction / thinning randomness. Mixing the
/// summary's content (total weight, item count) into the seed decorrelates
/// parities across merge-tree nodes even when the XOR-combined seeds
/// collapse — legacy payloads deserialize with seed 0, and two equal seeds
/// cancel — while staying a pure function of the merge inputs (replay- and
/// wire-stable) and invariant under operand swap (commutativity).
uint64_t CoinSeed(const QuantileResult& r, uint64_t stream) {
  uint64_t content =
      r.TotalWeight() ^ (static_cast<uint64_t>(r.keys.size()) << 32);
  return MixSeed(MixSeed(r.seed, content), stream);
}

Status InvalidQuantile(const char* what) {
  return Status::InvalidArgument(std::string("QuantileResult: ") + what);
}

/// Shared scalar guards for both wire formats (satellite of the KLL change:
/// a byzantine worker must not smuggle NaN/out-of-range scalars into the
/// root's merge state, where they would poison every later query).
Status ValidateScalars(const QuantileResult& q) {
  if (std::isnan(q.rate) || q.rate <= 0.0 || q.rate > 1.0) {
    return InvalidQuantile("rate out of (0, 1]");
  }
  if (q.max_size < 0) return InvalidQuantile("negative max_size");
  // Same cap rationale as the weights: a legitimate ledger sums compacted
  // level weights, orders of magnitude below 2^44, while uncapped hostile
  // values would wrap KllErrorLedger::Add at a later merge hop and zero
  // the reported error bound.
  if (q.error.worst > (uint64_t{1} << kMaxWeightExponent)) {
    return InvalidQuantile("error ledger over cap");
  }
  if (std::isnan(q.error.variance) || std::isinf(q.error.variance) ||
      q.error.variance < 0.0) {
    return InvalidQuantile("error variance out of range");
  }
  return Status::OK();
}

}  // namespace

uint64_t QuantileResult::TotalWeight() const {
  uint64_t total = 0;
  for (uint64_t w : weights) total += w;
  return total;
}

const std::vector<Value>* QuantileResult::KeyAtQuantile(double q) const {
  size_t idx = KllSelectIndex(weights, q);
  if (idx == static_cast<size_t>(-1)) return nullptr;
  return &keys[idx];
}

double QuantileResult::RankErrorBound() const {
  return KllRankErrorBound(error, TotalWeight());
}

void QuantileResult::Serialize(ByteWriter* w) const {
  w->WriteU32(kQuantileWireMagic);
  w->WriteU32(static_cast<uint32_t>(keys.size()));
  // Fresh partition summaries are all unit weight; eliding the weight array
  // then keeps the per-partial wire cost identical to the pre-KLL format
  // (the simulated cluster charges these bytes as root bandwidth).
  bool unit = true;
  for (uint64_t weight : weights) {
    if (weight != 1) {
      unit = false;
      break;
    }
  }
  w->WriteBool(!unit);
  for (const auto& key : keys) {
    w->WriteU32(static_cast<uint32_t>(key.size()));
    for (const auto& v : key) SerializeValue(v, w);
  }
  if (!unit) {
    // Weights are powers of two by construction (unit at birth, doubled by
    // compaction, unchanged by rate thinning), so one exponent byte per
    // item suffices — the weighted summary costs ~1 byte/item more on the
    // wire than the legacy unit-weight format did.
    for (uint64_t weight : weights) {
      w->WriteU8(static_cast<uint8_t>(std::bit_width(weight) - 1));
    }
  }
  w->WriteDouble(rate);
  w->WriteI32(max_size);
  w->WriteU64(seed);
  w->WriteU64(error.worst);
  w->WriteDouble(error.variance);
}

Status QuantileResult::Deserialize(ByteReader* r, QuantileResult* out) {
  uint32_t first = 0;
  HV_RETURN_IF_ERROR(r->ReadU32(&first));

  if (first != kQuantileWireMagic) {
    // Legacy unit-weight payload: `first` is the key count, followed by the
    // keys, rate and max_size. Apply the same count-vs-remaining guard
    // ReadCount would have.
    uint32_t n = first;
    if (n > r->Remaining() / 4) {
      return Status::OutOfRange("truncated serialized message");
    }
    out->keys.resize(n);
    for (auto& key : out->keys) {
      uint32_t m = 0;
      HV_RETURN_IF_ERROR(r->ReadCount(&m, /*min_element_bytes=*/1));
      key.resize(m);
      for (auto& v : key) HV_RETURN_IF_ERROR(DeserializeValue(r, &v));
    }
    HV_RETURN_IF_ERROR(r->ReadDouble(&out->rate));
    HV_RETURN_IF_ERROR(r->ReadI32(&out->max_size));
    out->weights.assign(n, 1);
    out->seed = 0;
    out->error = KllErrorLedger{};
    return ValidateScalars(*out);
  }

  uint32_t n = 0;
  HV_RETURN_IF_ERROR(r->ReadCount(&n, /*min_element_bytes=*/4));
  bool has_weights = false;
  HV_RETURN_IF_ERROR(r->ReadBool(&has_weights));
  out->keys.resize(n);
  for (auto& key : out->keys) {
    uint32_t m = 0;
    HV_RETURN_IF_ERROR(r->ReadCount(&m, /*min_element_bytes=*/1));
    key.resize(m);
    for (auto& v : key) HV_RETURN_IF_ERROR(DeserializeValue(r, &v));
  }
  if (has_weights) {
    if (r->Remaining() < n) {
      return Status::OutOfRange("truncated serialized message");
    }
    out->weights.resize(n);
    uint64_t total = 0;
    for (auto& weight : out->weights) {
      uint8_t exponent = 0;
      HV_RETURN_IF_ERROR(r->ReadU8(&exponent));
      if (exponent > kMaxWeightExponent) {
        return InvalidQuantile("weight exponent over cap");
      }
      weight = uint64_t{1} << exponent;
      total += weight;
      if (total > (uint64_t{1} << kMaxWeightExponent)) {
        return InvalidQuantile("total weight over cap");
      }
    }
  } else {
    out->weights.assign(n, 1);
  }
  HV_RETURN_IF_ERROR(r->ReadDouble(&out->rate));
  HV_RETURN_IF_ERROR(r->ReadI32(&out->max_size));
  HV_RETURN_IF_ERROR(r->ReadU64(&out->seed));
  HV_RETURN_IF_ERROR(r->ReadU64(&out->error.worst));
  HV_RETURN_IF_ERROR(r->ReadDouble(&out->error.variance));
  return ValidateScalars(*out);
}

std::string QuantileSketch::name() const {
  std::string n = "quantile(";
  for (const auto& o : order_.orientations()) {
    n += o.column;
    n += o.ascending ? "+" : "-";
  }
  n += ',';
  n += std::to_string(rate_);
  // The budget shapes the summary (Summarize compacts past it), so it must
  // disambiguate the computation-cache / redo-log key.
  n += ',';
  n += std::to_string(max_size_);
  n += ')';
  return n;
}

int CompareQuantileKeys(const RecordOrder& order, const std::vector<Value>& a,
                        const std::vector<Value>& b) {
  const auto& orientations = order.orientations();
  for (size_t i = 0; i < orientations.size() && i < a.size() && i < b.size();
       ++i) {
    int c = CompareValues(a[i], b[i]);
    if (c != 0) return orientations[i].ascending ? c : -c;
  }
  return 0;
}

int QuantileSketch::CompareKeys(const std::vector<Value>& a,
                                const std::vector<Value>& b) const {
  return CompareQuantileKeys(order_, a, b);
}

QuantileResult QuantileSketch::Summarize(const Table& table, uint64_t seed,
                                         const SketchContext& context) const {
  QuantileResult result;
  result.rate = rate_;
  result.max_size = max_size_;
  result.seed = MixSeed(seed, kSummarySeedStream);
  std::vector<std::string> names = order_.ColumnNames();

  std::vector<uint32_t> sampled;
  ScanRows(*table.members(), rate_, seed,
           [&](uint32_t row) { sampled.push_back(row); });

  // The keyed sort pays an O(universe) key-materialization pass up front, so
  // a cold build only wins when the sample is a sizable fraction of the
  // universe (KeyedScanProfitable); a low-rate scroll-bar sample of a huge
  // partition sorts faster through the virtual comparator than it could
  // ever amortize full key extraction. Keys already resident in the
  // worker's sort-key cache are free, so a cache hit always sorts keyed.
  // With neither a cache nor a profitable build, skip even planning: its
  // encoding pre-passes read O(universe) on narrow-column orders.
  bool sorted_keyed = false;
  SortKeyCache* cache = context.key_cache ? context.key_cache() : nullptr;
  const bool profitable =
      KeyedScanProfitable(sampled.size(), table.universe_size());
  if (cache != nullptr || profitable) {
    SortKeyPlan plan(table, order_, SortKeyPlan::kDeferKeys);
    SortKeyPlan::KeysPtr keys =
        GetOrBuildKeys(cache, plan, /*build_allowed=*/profitable);
    if (keys != nullptr) {
      plan.AdoptKeys(std::move(keys));
      // Devirtualized path: sort (normalized key, row) pairs — a plain
      // integer sort when the key order is total; ties (multi-column
      // orders, inexact packed components) fall back to the virtual
      // comparator within equal-key runs.
      KeyComparator cmp(table, plan);
      std::vector<std::pair<uint64_t, uint32_t>> keyed;
      keyed.reserve(sampled.size());
      for (uint32_t row : sampled) keyed.emplace_back(cmp.Key(row), row);
      if (plan.TotalOrder()) {
        std::sort(keyed.begin(), keyed.end());
      } else {
        std::sort(keyed.begin(), keyed.end(),
                  [&](const std::pair<uint64_t, uint32_t>& a,
                      const std::pair<uint64_t, uint32_t>& b) {
                    if (a.first != b.first) return a.first < b.first;
                    return cmp.Less(a.second, b.second);
                  });
      }
      result.keys.reserve(keyed.size());
      for (const auto& kr : keyed) {
        result.keys.push_back(table.GetRow(kr.second, names));
      }
      sorted_keyed = true;
    }
  }

  if (!sorted_keyed) {
    RowComparator comparator(table, order_);
    std::sort(sampled.begin(), sampled.end(),
              [&](uint32_t a, uint32_t b) { return comparator.Less(a, b); });
    result.keys.reserve(sampled.size());
    for (uint32_t row : sampled) {
      result.keys.push_back(table.GetRow(row, names));
    }
  }

  result.weights.assign(result.keys.size(), 1);
  // A single oversized partition compacts the same way a merge would (the
  // old code let Summarize exceed the cap and only decimated on merge).
  if (max_size_ > 0 && static_cast<int>(result.keys.size()) > max_size_) {
    Random coin(CoinSeed(result, kCompactStream));
    std::vector<uint32_t> kept;
    KllCompactToBudget(&result.weights, max_size_, &coin, &result.error,
                       &kept);
    KllApplyKept(&result.keys, kept);
  }
  return result;
}

QuantileResult QuantileSketch::Merge(const QuantileResult& left,
                                     const QuantileResult& right) const {
  if (left.IsZero()) return right;
  if (right.IsZero()) return left;
  QuantileResult out;
  out.max_size = std::max(left.max_size, right.max_size);
  out.seed = left.seed ^ right.seed;
  out.error = left.error;
  out.error.Add(right.error);
  // Partitions sampled at unequal rates cannot be concatenated as-is: every
  // retained key of the denser side represents fewer underlying rows, so
  // the old `rate = max(...)` over-represented that side and biased every
  // quantile toward it. Reconcile on the *common* (minimum) rate instead,
  // Bernoulli-thinning the denser side's items down to it — for unit-weight
  // items this is exactly a sample at the common rate. The coin is seeded
  // from the thinned side's own seed, so Merge stays commutative.
  out.rate = std::min(left.rate, right.rate);
  QuantileResult thin_store;
  auto thinned = [&](const QuantileResult& side) -> const QuantileResult& {
    if (side.rate <= out.rate) return side;  // already at the common rate
    Random coin(CoinSeed(side, kSubsampleStream));
    std::vector<uint32_t> kept;
    KllSubsampleIndices(side.keys.size(), out.rate / side.rate, &coin, &kept);
    thin_store.keys.reserve(kept.size());
    thin_store.weights.reserve(kept.size());
    for (uint32_t i : kept) {
      thin_store.keys.push_back(side.keys[i]);
      thin_store.weights.push_back(side.weights[i]);
    }
    return thin_store;
  };
  // At most one side is denser than the common (minimum) rate, so a single
  // backing store suffices.
  const QuantileResult& a = thinned(left);
  const QuantileResult& b = thinned(right);

  KllMergeSorted(a.keys, a.weights, b.keys, b.weights, &out.keys,
                 &out.weights,
                 [this](const std::vector<Value>& x,
                        const std::vector<Value>& y) {
                   return CompareKeys(x, y) < 0;
                 });

  if (out.max_size > 0 &&
      static_cast<int>(out.keys.size()) > out.max_size) {
    Random coin(CoinSeed(out, kCompactStream));
    std::vector<uint32_t> kept;
    KllCompactToBudget(&out.weights, out.max_size, &coin, &out.error, &kept);
    KllApplyKept(&out.keys, kept);
  }
  return out;
}

}  // namespace hillview
