#ifndef HILLVIEW_SPREADSHEET_SPREADSHEET_H_
#define HILLVIEW_SPREADSHEET_SPREADSHEET_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "cluster/root.h"
#include "render/chart.h"
#include "render/plan.h"
#include "render/screen.h"
#include "sketch/find_text.h"
#include "sketch/heavy_hitters.h"
#include "sketch/histogram.h"
#include "sketch/histogram2d.h"
#include "sketch/hyperloglog.h"
#include "sketch/next_items.h"
#include "sketch/pca.h"
#include "sketch/quantile.h"
#include "sketch/range_moments.h"
#include "sketch/save_as.h"
#include "sketch/string_quantiles.h"

namespace hillview {

/// The spreadsheet facade: the C++ analogue of Hillview's web-server root
/// logic. One Spreadsheet wraps one (possibly derived) dataset and a display
/// resolution; every chart runs the paper's two-phase plan — a cached
/// preparation sketch (range / distinct strings / row count) followed by the
/// vizketch with display-derived parameters (§5.3).
///
/// Derived views (Filter*, WithColumn) return new Spreadsheet objects whose
/// data is lazy soft state on the workers, reconstructible via the redo log.
class Spreadsheet {
 public:
  Spreadsheet(cluster::RootSession* session, std::string dataset_id,
              ScreenResolution screen)
      : session_(session),
        dataset_id_(std::move(dataset_id)),
        screen_(screen) {}

  const std::string& dataset_id() const { return dataset_id_; }
  const ScreenResolution& screen() const { return screen_; }
  cluster::RootSession* session() const { return session_; }

  // -- Preparation-phase queries (deterministic; served from the
  //    computation cache after the first run, §5.4). ---------------------

  /// Column statistics: range, counts, mean/variance moments.
  Result<RangeResult> ColumnRange(const std::string& column);

  /// Total member rows of this view.
  Result<int64_t> RowCount();

  /// Bottom-k distinct-string sample (string bucket preparation).
  Result<BottomKResult> DistinctStrings(const std::string& column);

  // -- Charts (two-phase; rendering-ready summaries). --------------------

  /// Histogram of any column (numeric buckets from the range, string
  /// buckets from the distinct sample). `exact` forces the streaming
  /// (unsampled) vizketch.
  Result<HistogramResult> Histogram(const std::string& column,
                                    bool exact = false);

  /// Histogram with serving metadata: the result plus the coverage the view
  /// actually achieved, folded over BOTH phases (range/bucket preparation
  /// and the vizketch). On a healthy cluster coverage is 1.0; with workers
  /// down and degraded mode on, the chart still renders but is marked
  /// `partial` so the UI can flag it.
  Result<Rendered<HistogramResult>> HistogramView(const std::string& column,
                                                  bool exact = false);

  /// CDF (one bucket per horizontal pixel; numeric or string column).
  Result<HistogramResult> Cdf(const std::string& column, bool exact = false);

  /// Histogram and CDF of the same column, as a single user action (O5's
  /// "histogram & cdf" concurrent pair).
  Result<std::pair<HistogramResult, HistogramResult>> HistogramAndCdf(
      const std::string& column, bool exact = false);

  /// Stacked histogram of X subdivided by Y colors. Normalized rendering
  /// requires exact = true (§B.1).
  Result<Histogram2DResult> StackedHistogram(const std::string& x_column,
                                             const std::string& y_column,
                                             bool exact = false);

  /// Heat map of two columns. Sampled unless `exact` (log-scale color maps
  /// need exact = true).
  Result<Histogram2DResult> HeatMap(const std::string& x_column,
                                    const std::string& y_column,
                                    bool exact = false);

  /// Trellis of heat maps grouped by W.
  Result<TrellisResult> TrellisHeatMaps(const std::string& w_column,
                                        const std::string& x_column,
                                        const std::string& y_column,
                                        int groups = 4);

  // -- Tabular view (§3.3). ----------------------------------------------

  /// The page of `k` distinct rows after `start_key` under `order`.
  Result<NextItemsResult> TableView(
      const RecordOrder& order, std::vector<std::string> display_columns,
      std::optional<std::vector<Value>> start_key, int k);

  /// Scroll-bar jump: quantile `q` of the sort order, then the page there.
  Result<NextItemsResult> ScrollTo(const RecordOrder& order,
                                   std::vector<std::string> display_columns,
                                   double q, int k);

  /// Next row matching a text filter after `start_key`.
  Result<FindResult> FindText(const RecordOrder& order,
                              std::vector<std::string> search_columns,
                              const StringFilter& filter,
                              std::optional<std::vector<Value>> start_key);

  // -- Feature extraction (§3.3). ----------------------------------------

  /// Heavy hitters above frequency 1/k. `sampled` selects the sampling
  /// sketch (preferred for k >= 100, §B.2) over Misra-Gries.
  Result<std::vector<HeavyHittersResult::Item>> HeavyHitters(
      const std::string& column, int k, bool sampled = false);

  /// Approximate number of distinct values (HyperLogLog).
  Result<double> DistinctCount(const std::string& column);

  /// Correlation matrix over numeric columns; pair with PcaBasis().
  Result<CorrelationResult> Correlation(std::vector<std::string> columns,
                                        bool sampled = true);

  // -- Derived views (§5.6). ---------------------------------------------

  /// Rows whose numeric/date column lies in [lo, hi] — the zoom-in gesture.
  Result<Spreadsheet> FilterRange(const std::string& column, double lo,
                                  double hi);

  /// Rows whose string column equals `value`.
  Result<Spreadsheet> FilterEquals(const std::string& column,
                                   const std::string& value);

  /// Rows matching a text filter in `column`.
  Result<Spreadsheet> FilterMatches(const std::string& column,
                                    const StringFilter& filter);

  /// Adds a derived column computed per row by a user-defined map (§3.5).
  /// `inputs` name the source columns handed to `fn` as materialized cells.
  Result<Spreadsheet> WithColumn(
      const std::string& new_column, DataKind kind,
      std::vector<std::string> inputs,
      std::function<Value(const std::vector<Value>&)> fn);

  /// Saves this view's partitions to a directory as HVCF files (§5.4).
  Result<SaveResult> SaveAs(const std::string& directory,
                            const std::string& prefix);

  /// Runs a histogram progressively, returning the partial-result stream
  /// (for progressive-visualization demos and tests).
  Result<StreamPtr<PartialResult<HistogramResult>>> HistogramStream(
      const std::string& column, CancellationTokenPtr token = {});

  // -- Serving observability. --------------------------------------------

  /// Stats of the most recent query this spreadsheet ran (coverage, cache
  /// hit, heals). Like NextSeed(), per-view state: a Spreadsheet is one
  /// user's view object and is not meant to be shared across threads.
  const cluster::RootSession::QueryStats& last_query_stats() const {
    return last_stats_;
  }

  /// Minimum coverage over every query since the last TakeViewCoverage():
  /// the honest coverage of a multi-query view (e.g. a two-phase chart whose
  /// preparation ran healthy but whose vizketch ran degraded).
  double view_coverage() const { return view_coverage_; }

  /// Returns view_coverage() and resets the fold to 1.0 — called at the
  /// start of a user action so the fold spans exactly that action's queries.
  double TakeViewCoverage() {
    double coverage = view_coverage_;
    view_coverage_ = 1.0;
    return coverage;
  }

 private:
  /// Bucket geometry for a column: numeric from range, string from the
  /// distinct sample (both cached preparation results).
  Result<Buckets> PlanBucketsFor(const std::string& column, int bucket_count);

  /// Deterministic per-operation seed: mixes a session counter so repeated
  /// operations differ but replays (same log) agree.
  uint64_t NextSeed();

  /// All spreadsheet queries funnel through here so every result's coverage
  /// lands in last_stats_ and folds into view_coverage_.
  template <typename R>
  Result<R> Run(SketchPtr<R> sketch, uint64_t seed = 0,
                bool cacheable = false) {
    Result<R> result = session_->RunSketch<R>(dataset_id_, std::move(sketch),
                                              seed, cacheable, &last_stats_);
    if (result.ok()) {
      view_coverage_ = std::min(view_coverage_, last_stats_.coverage);
    }
    return result;
  }

  cluster::RootSession* session_;
  std::string dataset_id_;
  ScreenResolution screen_;
  uint64_t seed_counter_ = 0;
  cluster::RootSession::QueryStats last_stats_;
  double view_coverage_ = 1.0;
};

}  // namespace hillview

#endif  // HILLVIEW_SPREADSHEET_SPREADSHEET_H_
