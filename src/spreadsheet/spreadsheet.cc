#include "spreadsheet/spreadsheet.h"

#include <algorithm>
#include <cstdio>

#include "storage/scan.h"

namespace hillview {

namespace {

/// Stable operation names for derived datasets; they appear in dataset ids,
/// the redo log, and computation-cache keys.
std::string RangeOpName(const std::string& column, double lo, double hi) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "[%.6g,%.6g]", lo, hi);
  return "filter-range(" + column + buf + ")";
}

}  // namespace

uint64_t Spreadsheet::NextSeed() {
  return MixSeed(HashBytes(dataset_id_.data(), dataset_id_.size()),
                 ++seed_counter_);
}

Result<RangeResult> Spreadsheet::ColumnRange(const std::string& column) {
  return Run<RangeResult>(std::make_shared<RangeSketch>(column), /*seed=*/0,
                          /*cacheable=*/true);
}

Result<int64_t> Spreadsheet::RowCount() {
  HV_ASSIGN_OR_RETURN(
      CountResult count,
      Run<CountResult>(std::make_shared<CountSketch>(), /*seed=*/0,
                       /*cacheable=*/true));
  return count.rows;
}

Result<BottomKResult> Spreadsheet::DistinctStrings(const std::string& column) {
  return Run<BottomKResult>(std::make_shared<BottomKStringsSketch>(column),
                            /*seed=*/0, /*cacheable=*/true);
}

Result<Buckets> Spreadsheet::PlanBucketsFor(const std::string& column,
                                            int bucket_count) {
  HV_ASSIGN_OR_RETURN(RangeResult range, ColumnRange(column));
  if (!range.is_string) {
    return Buckets(PlanNumericBuckets(range, bucket_count));
  }
  HV_ASSIGN_OR_RETURN(BottomKResult bottomk, DistinctStrings(column));
  return Buckets(PlanStringBuckets(bottomk, range, bucket_count));
}

Result<HistogramResult> Spreadsheet::Histogram(const std::string& column,
                                               bool exact) {
  HV_ASSIGN_OR_RETURN(RangeResult range, ColumnRange(column));
  int bucket_count = HistogramBucketCount(screen_);
  HV_ASSIGN_OR_RETURN(Buckets buckets, PlanBucketsFor(column, bucket_count));
  if (exact) {
    return Run<HistogramResult>(
        std::make_shared<StreamingHistogramSketch>(column, std::move(buckets)),
        /*seed=*/0, /*cacheable=*/true);
  }
  double rate = SampleRateForSize(
      HistogramSampleSize(screen_.height, buckets.count()),
      static_cast<uint64_t>(range.TotalRows()));
  return Run<HistogramResult>(
      std::make_shared<SampledHistogramSketch>(column, std::move(buckets),
                                               rate),
      NextSeed());
}

Result<Rendered<HistogramResult>> Spreadsheet::HistogramView(
    const std::string& column, bool exact) {
  // Reset the fold so the reported coverage spans exactly this action's
  // queries (range + bucket preparation + the vizketch).
  (void)TakeViewCoverage();
  HV_ASSIGN_OR_RETURN(HistogramResult histogram, Histogram(column, exact));
  Rendered<HistogramResult> view;
  view.value = std::move(histogram);
  view.coverage = TakeViewCoverage();
  view.partial = view.coverage < 1.0;
  return view;
}

Result<HistogramResult> Spreadsheet::Cdf(const std::string& column,
                                         bool exact) {
  HV_ASSIGN_OR_RETURN(RangeResult range, ColumnRange(column));
  HV_ASSIGN_OR_RETURN(Buckets buckets,
                      PlanBucketsFor(column, std::max(1, screen_.width)));
  if (exact) {
    return Run<HistogramResult>(
        std::make_shared<StreamingHistogramSketch>(column, std::move(buckets)),
        /*seed=*/0, /*cacheable=*/true);
  }
  double rate =
      SampleRateForSize(CdfSampleSize(screen_.height),
                        static_cast<uint64_t>(range.TotalRows()));
  return Run<HistogramResult>(
      std::make_shared<SampledHistogramSketch>(column, std::move(buckets),
                                               rate),
      NextSeed());
}

Result<std::pair<HistogramResult, HistogramResult>>
Spreadsheet::HistogramAndCdf(const std::string& column, bool exact) {
  HV_ASSIGN_OR_RETURN(HistogramResult histogram, Histogram(column, exact));
  HV_ASSIGN_OR_RETURN(HistogramResult cdf, Cdf(column, exact));
  return std::make_pair(std::move(histogram), std::move(cdf));
}

Result<Histogram2DResult> Spreadsheet::StackedHistogram(
    const std::string& x_column, const std::string& y_column, bool exact) {
  HV_ASSIGN_OR_RETURN(RangeResult x_range, ColumnRange(x_column));
  int x_count = HistogramBucketCount(screen_);
  HV_ASSIGN_OR_RETURN(Buckets x_buckets, PlanBucketsFor(x_column, x_count));
  HV_ASSIGN_OR_RETURN(Buckets y_buckets,
                      PlanBucketsFor(y_column,
                                     ChartDefaults::kMaxStackColors));
  double rate = 1.0;
  if (!exact) {
    rate = SampleRateForSize(
        StackedHistogramSampleSize(screen_.height, x_buckets.count()),
        static_cast<uint64_t>(x_range.TotalRows()));
  }
  return Run<Histogram2DResult>(
      std::make_shared<Histogram2DSketch>(x_column, std::move(x_buckets),
                                          y_column, std::move(y_buckets),
                                          rate),
      exact ? 0 : NextSeed(), /*cacheable=*/exact);
}

Result<Histogram2DResult> Spreadsheet::HeatMap(const std::string& x_column,
                                               const std::string& y_column,
                                               bool exact) {
  HV_ASSIGN_OR_RETURN(RangeResult x_range, ColumnRange(x_column));
  HeatMapPlan plan = PlanHeatMap(static_cast<uint64_t>(x_range.TotalRows()),
                                 screen_, exact);
  HV_ASSIGN_OR_RETURN(Buckets x_buckets,
                      PlanBucketsFor(x_column, plan.x_bins));
  HV_ASSIGN_OR_RETURN(Buckets y_buckets,
                      PlanBucketsFor(y_column, plan.y_bins));
  return Run<Histogram2DResult>(
      std::make_shared<Histogram2DSketch>(x_column, std::move(x_buckets),
                                          y_column, std::move(y_buckets),
                                          plan.sample_rate),
      exact ? 0 : NextSeed(), /*cacheable=*/exact);
}

Result<TrellisResult> Spreadsheet::TrellisHeatMaps(
    const std::string& w_column, const std::string& x_column,
    const std::string& y_column, int groups) {
  // Each sub-plot is proportionally smaller (§B.1), so per-plot bin counts
  // shrink with the group count; total summary size matches one heat map.
  ScreenResolution sub_screen{screen_.width / 2,
                              std::max(1, 2 * screen_.height / groups)};
  HV_ASSIGN_OR_RETURN(Buckets w_buckets, PlanBucketsFor(w_column, groups));
  HV_ASSIGN_OR_RETURN(Buckets x_buckets,
                      PlanBucketsFor(x_column, HeatMapBucketsX(sub_screen)));
  HV_ASSIGN_OR_RETURN(Buckets y_buckets,
                      PlanBucketsFor(y_column, HeatMapBucketsY(sub_screen)));
  return Run<TrellisResult>(
      std::make_shared<TrellisSketch>(w_column, std::move(w_buckets),
                                      x_column, std::move(x_buckets),
                                      y_column, std::move(y_buckets)),
      /*seed=*/0);
}

Result<NextItemsResult> Spreadsheet::TableView(
    const RecordOrder& order, std::vector<std::string> display_columns,
    std::optional<std::vector<Value>> start_key, int k) {
  return Run<NextItemsResult>(
      std::make_shared<NextItemsSketch>(order, std::move(display_columns),
                                        std::move(start_key), k),
      /*seed=*/0);
}

Result<NextItemsResult> Spreadsheet::ScrollTo(
    const RecordOrder& order, std::vector<std::string> display_columns,
    double q, int k) {
  HV_ASSIGN_OR_RETURN(int64_t rows, RowCount());
  // A scroll bar distinguishes on the order of 100 positions regardless of
  // pixel height; the quantile summary materializes O(V²) keys, so V is
  // clamped to keep it display-sized. The KLL budget of 2× the target
  // sample size leaves skewed partition splits headroom to merge without
  // compacting; when a deep merge tree does compact, the weighted summary
  // keeps ranks unbiased (see QuantileResult::RankErrorBound).
  int scroll_positions = std::min(screen_.height, 100);
  uint64_t sample_size = QuantileSampleSize(scroll_positions);
  double rate = SampleRateForSize(sample_size, static_cast<uint64_t>(rows));
  HV_ASSIGN_OR_RETURN(
      QuantileResult quantile,
      Run<QuantileResult>(
          std::make_shared<QuantileSketch>(
              order, rate, static_cast<int>(2 * sample_size)),
          NextSeed()));
  const std::vector<Value>* key = quantile.KeyAtQuantile(q);
  std::optional<std::vector<Value>> start;
  if (key != nullptr) start = *key;
  return TableView(order, std::move(display_columns), std::move(start), k);
}

Result<FindResult> Spreadsheet::FindText(
    const RecordOrder& order, std::vector<std::string> search_columns,
    const StringFilter& filter,
    std::optional<std::vector<Value>> start_key) {
  // An invalid user-supplied regex is a request error, not a scan error:
  // reject it here instead of letting every partition match nothing.
  HV_RETURN_IF_ERROR(StringMatcher::Validate(filter));
  return Run<FindResult>(
      std::make_shared<FindTextSketch>(order, std::move(search_columns),
                                       filter, std::move(start_key)),
      /*seed=*/0);
}

Result<std::vector<HeavyHittersResult::Item>> Spreadsheet::HeavyHitters(
    const std::string& column, int k, bool sampled) {
  if (sampled) {
    HV_ASSIGN_OR_RETURN(int64_t rows, RowCount());
    double rate = SampleRateForSize(HeavyHittersSampleSize(k),
                                    static_cast<uint64_t>(rows));
    HV_ASSIGN_OR_RETURN(
        HeavyHittersResult result,
        Run<HeavyHittersResult>(
            std::make_shared<SampledHeavyHittersSketch>(column, k, rate),
            NextSeed()));
    // Theorem 4: select items above 3n/(4K) of the sampled rows.
    return result.Select(3.0 / (4.0 * k));
  }
  HV_ASSIGN_OR_RETURN(HeavyHittersResult result,
                      Run<HeavyHittersResult>(
                          std::make_shared<MisraGriesSketch>(column, k),
                          /*seed=*/0, /*cacheable=*/true));
  // Misra-Gries counts are undercounts by at most N/K; accept anything
  // above half the target frequency.
  return result.Select(1.0 / (2.0 * k));
}

Result<double> Spreadsheet::DistinctCount(const std::string& column) {
  HV_ASSIGN_OR_RETURN(
      HllResult hll,
      Run<HllResult>(std::make_shared<HyperLogLogSketch>(column),
                     /*seed=*/0, /*cacheable=*/true));
  return hll.Estimate();
}

Result<CorrelationResult> Spreadsheet::Correlation(
    std::vector<std::string> columns, bool sampled) {
  double rate = 1.0;
  if (sampled) {
    HV_ASSIGN_OR_RETURN(int64_t rows, RowCount());
    rate = SampleRateForSize(1 << 17, static_cast<uint64_t>(rows));
  }
  return Run<CorrelationResult>(
      std::make_shared<CorrelationSketch>(std::move(columns), rate),
      sampled ? NextSeed() : 0, /*cacheable=*/!sampled);
}

Result<Spreadsheet> Spreadsheet::FilterRange(const std::string& column,
                                             double lo, double hi) {
  TableMap map = [column, lo, hi](const TablePtr& table) -> Result<TablePtr> {
    ColumnPtr col = table->GetColumnOrNull(column);
    if (col == nullptr) {
      return Status::NotFound("no column named '" + column + "'");
    }
    // Typed predicate loop: one scan-layer dispatch, word-at-a-time over
    // dense membership, instead of a per-row virtual IsMissing/GetDouble.
    return table->WithMembership(
        FilterRangeMembership(*col, *table->members(), lo, hi));
  };
  HV_ASSIGN_OR_RETURN(std::string new_id,
                      session_->MapDataSet(dataset_id_, std::move(map),
                                           RangeOpName(column, lo, hi)));
  return Spreadsheet(session_, new_id, screen_);
}

Result<Spreadsheet> Spreadsheet::FilterEquals(const std::string& column,
                                              const std::string& value) {
  TableMap map = [column, value](const TablePtr& table) -> Result<TablePtr> {
    ColumnPtr col = table->GetColumnOrNull(column);
    if (col == nullptr) {
      return Status::NotFound("no column named '" + column + "'");
    }
    const uint32_t* codes = col->RawCodes();
    if (codes == nullptr) {
      return Status::InvalidArgument("'" + column + "' is not a string column");
    }
    // One dictionary lookup, then the row test is a typed code compare in
    // the scan layer's dispatch-once loop.
    const StringDictionary& dict = col->Dictionary();
    uint32_t code = dict.LowerBound(value);
    if (code >= dict.size() || dict[code] != value) {
      return table->WithMembership(std::make_shared<SparseMembership>(
          std::vector<uint32_t>{}, table->universe_size()));
    }
    return table->WithMembership(
        FilterEqualsCodeMembership(*col, *table->members(), code));
  };
  HV_ASSIGN_OR_RETURN(
      std::string new_id,
      session_->MapDataSet(dataset_id_, std::move(map),
                           "filter-eq(" + column + "=" + value + ")"));
  return Spreadsheet(session_, new_id, screen_);
}

Result<Spreadsheet> Spreadsheet::FilterMatches(const std::string& column,
                                               const StringFilter& filter) {
  // Invalid patterns are request errors; reject before touching data.
  HV_RETURN_IF_ERROR(StringMatcher::Validate(filter));
  TableMap map = [column, filter](const TablePtr& table) -> Result<TablePtr> {
    ColumnPtr col = table->GetColumnOrNull(column);
    if (col == nullptr) {
      return Status::NotFound("no column named '" + column + "'");
    }
    if (col->RawCodes() == nullptr) {
      return Status::InvalidArgument("'" + column + "' is not a string column");
    }
    StringMatcher matcher(filter);
    HV_RETURN_IF_ERROR(matcher.status());
    // Memoized per-code verdicts, then a typed code-lookup loop in the scan
    // layer — the row test never re-runs the matcher.
    std::vector<uint8_t> match = MatchDictionary(matcher, col->Dictionary());
    return table->WithMembership(
        FilterMatchedCodesMembership(*col, *table->members(), match));
  };
  HV_ASSIGN_OR_RETURN(
      std::string new_id,
      session_->MapDataSet(dataset_id_, std::move(map),
                           "filter-match(" + column + "~" +
                               filter.ToString() + ")"));
  return Spreadsheet(session_, new_id, screen_);
}

Result<Spreadsheet> Spreadsheet::WithColumn(
    const std::string& new_column, DataKind kind,
    std::vector<std::string> inputs,
    std::function<Value(const std::vector<Value>&)> fn) {
  TableMap map = [new_column, kind, inputs,
                  fn](const TablePtr& table) -> Result<TablePtr> {
    ColumnBuilder builder(kind);
    uint32_t universe = table->universe_size();
    std::vector<const IColumn*> cols;
    for (const auto& name : inputs) {
      ColumnPtr c = table->GetColumnOrNull(name);
      if (c == nullptr) {
        return Status::NotFound("no column named '" + name + "'");
      }
      cols.push_back(c.get());
    }
    std::vector<Value> cells(cols.size());
    for (uint32_t row = 0; row < universe; ++row) {
      // Derived columns cover the whole universe so further filtering and
      // membership sharing keep working; non-member rows still compute.
      for (size_t i = 0; i < cols.size(); ++i) {
        cells[i] = cols[i]->GetValue(row);
      }
      builder.AppendValue(fn(cells));
    }
    return table->WithColumn({new_column, kind}, builder.Finish());
  };
  HV_ASSIGN_OR_RETURN(std::string new_id,
                      session_->MapDataSet(dataset_id_, std::move(map),
                                           "with-column(" + new_column + ")"));
  return Spreadsheet(session_, new_id, screen_);
}

Result<SaveResult> Spreadsheet::SaveAs(const std::string& directory,
                                       const std::string& prefix) {
  return Run<SaveResult>(std::make_shared<SaveAsSketch>(directory, prefix),
                         NextSeed());
}

Result<StreamPtr<PartialResult<HistogramResult>>> Spreadsheet::HistogramStream(
    const std::string& column, CancellationTokenPtr token) {
  HV_ASSIGN_OR_RETURN(RangeResult range, ColumnRange(column));
  int bucket_count = HistogramBucketCount(screen_);
  HV_ASSIGN_OR_RETURN(Buckets buckets, PlanBucketsFor(column, bucket_count));
  double rate = SampleRateForSize(
      HistogramSampleSize(screen_.height, bucket_count),
      static_cast<uint64_t>(range.TotalRows()));
  return session_->RunSketchStream<HistogramResult>(
      dataset_id_,
      std::make_shared<SampledHistogramSketch>(column, std::move(buckets),
                                               rate),
      NextSeed(), std::move(token));
}

}  // namespace hillview
