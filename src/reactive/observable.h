#ifndef HILLVIEW_REACTIVE_OBSERVABLE_H_
#define HILLVIEW_REACTIVE_OBSERVABLE_H_

#include <atomic>
#include <chrono>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "util/status.h"
#include "util/thread_annotations.h"

namespace hillview {

/// Cooperative cancellation token shared between a client and an execution
/// tree. The original system uses RxJava unsubscription (§6); here a token is
/// polled by leaf nodes between micropartitions — matching the paper's
/// semantics that already-started micropartition work is not interrupted
/// (§5.3: "We currently do not stop ongoing computations on a micropartition").
class CancellationToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool IsCancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

using CancellationTokenPtr = std::shared_ptr<CancellationToken>;

/// A partial result flowing up the execution tree: a summary over the
/// fraction `progress` of leaves completed so far. The stream of partial
/// results is monotone in `progress` and converges to the final summary.
///
/// `coverage` is the fault-tolerance dual of progress (§5.7's "results
/// obtained from the remaining machines"): the weighted fraction of leaf
/// partitions that are (still) contributing to this summary. It stays 1.0 on
/// the healthy path; an aggregation node running in degraded mode lowers it
/// when a child is lost for good, and the final value then reports exactly
/// which share of the data the summary covers. Unlike progress it is not
/// monotone — it only ever drops when a child is declared dead.
template <typename T>
struct PartialResult {
  double progress = 0.0;  // in [0, 1]; 1.0 accompanies the final value
  T value{};
  double coverage = 1.0;  // partitions merged / total partitions
};

/// Single-producer push stream with buffering: events pushed before a
/// subscriber attaches are replayed in order. This is the minimal slice of
/// Rx used by Hillview: OnNext* (partial results), then exactly one
/// OnComplete carrying a Status.
///
/// Thread-safe; exactly one subscriber is supported (the web-server root in
/// the real system). One capability-annotated mutex guards the buffer, the
/// callbacks and the completion state — partial results stream across worker
/// threads, and they must stay race-free for progressive rendering to be
/// trustworthy. Blocking helpers are provided for tests and benchmarks.
template <typename T>
class Stream {
 public:
  using NextFn = std::function<void(const T&)>;
  using DoneFn = std::function<void(const Status&)>;

  /// Producer side: push one event. The subscriber callback (if attached)
  /// runs synchronously under the stream lock, which guarantees events are
  /// observed in exactly the order they were produced. Callbacks must not
  /// re-enter the same stream (downstream streams are fine — lock order
  /// follows the dataflow and is acyclic).
  void OnNext(T value) EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    if (done_) return;  // Events after completion are dropped.
    last_ = value;
    if (next_) {
      next_(value);
      ++delivered_;
    } else {
      buffer_.push_back(std::move(value));
    }
    cv_.NotifyAll();
  }

  /// Producer side: complete the stream (exactly once).
  void OnComplete(Status status) EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    if (done_) return;
    done_ = true;
    final_status_ = status;
    if (done_fn_) done_fn_(status);
    cv_.NotifyAll();
  }

  /// Consumer side. Replays buffered events in order, then receives live
  /// events from producer threads; the shared lock makes the hand-off from
  /// replay to live delivery seamless.
  void Subscribe(NextFn next, DoneFn done = nullptr) EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    next_ = std::move(next);
    done_fn_ = std::move(done);
    while (!buffer_.empty()) {
      if (next_) {
        next_(buffer_.front());
        ++delivered_;
      }
      buffer_.pop_front();
    }
    if (done_ && done_fn_) done_fn_(final_status_);
  }

  /// Blocks until the producer completes; returns the last event seen (or
  /// nullopt if the stream completed empty).
  std::optional<T> BlockingLast() EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    while (!done_) cv_.Wait(mutex_);
    return last_;
  }

  /// Deadline-aware variant: waits at most `timeout_ms` for completion. On
  /// timeout sets *timed_out and returns whatever was last seen — the stream
  /// itself is left incomplete (the producer may still be running); callers
  /// that give up on it simply drop their reference and late events go to the
  /// buffer of a stream nobody reads. This is the root's backstop against an
  /// RPC that never completes at all (a truly hung worker), distinct from the
  /// per-RPC deadline the remote edge enforces on late responses.
  std::optional<T> BlockingLastFor(double timeout_ms, bool* timed_out)
      EXCLUDES(mutex_) {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(timeout_ms));
    MutexLock lock(mutex_);
    while (!done_) {
      const double remaining_ms =
          std::chrono::duration<double, std::milli>(
              deadline - std::chrono::steady_clock::now())
              .count();
      if (remaining_ms <= 0) {
        if (timed_out != nullptr) *timed_out = true;
        return last_;
      }
      cv_.WaitFor(mutex_, remaining_ms);
    }
    if (timed_out != nullptr) *timed_out = false;
    return last_;
  }

  /// Blocks until completion and returns every buffered event (only valid if
  /// no Subscribe callback consumed them first).
  std::vector<T> BlockingCollect() EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    while (!done_) cv_.Wait(mutex_);
    std::vector<T> out(buffer_.begin(), buffer_.end());
    buffer_.clear();
    return out;
  }

  /// Final status; valid after completion.
  Status final_status() const EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return final_status_;
  }

  bool IsDone() const EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return done_;
  }

 private:
  mutable Mutex mutex_;
  CondVar cv_;
  std::deque<T> buffer_ GUARDED_BY(mutex_);
  std::optional<T> last_ GUARDED_BY(mutex_);
  NextFn next_ GUARDED_BY(mutex_);
  DoneFn done_fn_ GUARDED_BY(mutex_);
  Status final_status_ GUARDED_BY(mutex_);
  int delivered_ GUARDED_BY(mutex_) = 0;
  bool done_ GUARDED_BY(mutex_) = false;
};

template <typename T>
using StreamPtr = std::shared_ptr<Stream<T>>;

}  // namespace hillview

#endif  // HILLVIEW_REACTIVE_OBSERVABLE_H_
