#ifndef HILLVIEW_REACTIVE_OBSERVABLE_H_
#define HILLVIEW_REACTIVE_OBSERVABLE_H_

#include <algorithm>
#include <chrono>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "util/cancellation.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace hillview {

/// A partial result flowing up the execution tree: a summary over the
/// fraction `progress` of leaves completed so far. The stream of partial
/// results is monotone in `progress` and converges to the final summary.
///
/// `coverage` is the fault-tolerance dual of progress (§5.7's "results
/// obtained from the remaining machines"): the weighted fraction of leaf
/// partitions that are (still) contributing to this summary. It stays 1.0 on
/// the healthy path; an aggregation node running in degraded mode lowers it
/// when a child is lost for good, and the final value then reports exactly
/// which share of the data the summary covers. Unlike progress it is not
/// monotone — it only ever drops when a child is declared dead.
template <typename T>
struct PartialResult {
  double progress = 0.0;  // in [0, 1]; 1.0 accompanies the final value
  T value{};
  double coverage = 1.0;  // partitions merged / total partitions
};

/// Single-producer push stream with buffering: events pushed before a
/// subscriber attaches are replayed in order. This is the minimal slice of
/// Rx used by Hillview: OnNext* (partial results), then exactly one
/// OnComplete carrying a Status.
///
/// Thread-safe; exactly one subscriber is supported (the web-server root in
/// the real system). One capability-annotated mutex guards the buffer, the
/// callbacks and the completion state — partial results stream across worker
/// threads, and they must stay race-free for progressive rendering to be
/// trustworthy. Blocking helpers are provided for tests and benchmarks.
template <typename T>
class Stream {
 public:
  using NextFn = std::function<void(const T&)>;
  using DoneFn = std::function<void(const Status&)>;

  /// Producer side: push one event. The subscriber callback (if attached)
  /// runs synchronously under the stream lock, which guarantees events are
  /// observed in exactly the order they were produced. Callbacks must not
  /// re-enter the same stream (downstream streams are fine — lock order
  /// follows the dataflow and is acyclic).
  void OnNext(T value) EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    if (done_) return;  // Events after completion are dropped.
    last_ = value;
    if (next_) {
      next_(value);
      ++delivered_;
    } else {
      buffer_.push_back(std::move(value));
    }
    cv_.NotifyAll();
  }

  /// Producer side: complete the stream (exactly once).
  void OnComplete(Status status) EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    if (done_) return;
    done_ = true;
    final_status_ = status;
    if (done_fn_) done_fn_(status);
    cv_.NotifyAll();
  }

  /// Consumer side. Replays buffered events in order, then receives live
  /// events from producer threads; the shared lock makes the hand-off from
  /// replay to live delivery seamless.
  void Subscribe(NextFn next, DoneFn done = nullptr) EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    next_ = std::move(next);
    done_fn_ = std::move(done);
    while (!buffer_.empty()) {
      if (next_) {
        next_(buffer_.front());
        ++delivered_;
      }
      buffer_.pop_front();
    }
    if (done_ && done_fn_) done_fn_(final_status_);
  }

  /// Blocks until the producer completes; returns the last event seen (or
  /// nullopt if the stream completed empty).
  std::optional<T> BlockingLast() EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    while (!done_) cv_.Wait(mutex_);
    return last_;
  }

  /// Deadline-aware variant: waits at most `timeout_ms` for completion. On
  /// timeout sets *timed_out and returns whatever was last seen — the stream
  /// itself is left incomplete (the producer may still be running); callers
  /// that give up on it simply drop their reference and late events go to the
  /// buffer of a stream nobody reads. This is the root's backstop against an
  /// RPC that never completes at all (a truly hung worker), distinct from the
  /// per-RPC deadline the remote edge enforces on late responses.
  ///
  /// Also cancellation-aware: with a non-null `cancel` token the wait polls it
  /// and returns as soon as it flips, setting *cancelled — a superseded render
  /// settles immediately instead of waiting out the backstop timeout. The poll
  /// is bounded (kCancelPollMs) because nobody notifies this stream's condvar
  /// when the token flips: cancellation can originate in a different session.
  /// `timeout_ms <= 0` means no deadline (wait for completion or cancellation
  /// only); *timed_out is then never set.
  std::optional<T> BlockingLastFor(double timeout_ms, bool* timed_out,
                                   const CancellationTokenPtr& cancel = nullptr,
                                   bool* cancelled = nullptr)
      EXCLUDES(mutex_) {
    constexpr double kCancelPollMs = 2.0;
    const bool has_deadline = timeout_ms > 0;
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(
                has_deadline ? timeout_ms : 0.0));
    MutexLock lock(mutex_);
    if (timed_out != nullptr) *timed_out = false;
    if (cancelled != nullptr) *cancelled = false;
    while (!done_) {
      if (cancel != nullptr && cancel->IsCancelled()) {
        if (cancelled != nullptr) *cancelled = true;
        return last_;
      }
      double wait_ms = kCancelPollMs;
      if (has_deadline) {
        const double remaining_ms =
            std::chrono::duration<double, std::milli>(
                deadline - std::chrono::steady_clock::now())
                .count();
        if (remaining_ms <= 0) {
          if (timed_out != nullptr) *timed_out = true;
          return last_;
        }
        wait_ms = cancel != nullptr ? std::min(remaining_ms, kCancelPollMs)
                                    : remaining_ms;
      } else if (cancel == nullptr) {
        // No deadline and no token: plain completion wait.
        cv_.Wait(mutex_);
        continue;
      }
      cv_.WaitFor(mutex_, wait_ms);
    }
    return last_;
  }

  /// Blocks until completion and returns every buffered event (only valid if
  /// no Subscribe callback consumed them first).
  std::vector<T> BlockingCollect() EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    while (!done_) cv_.Wait(mutex_);
    std::vector<T> out(buffer_.begin(), buffer_.end());
    buffer_.clear();
    return out;
  }

  /// Final status; valid after completion.
  Status final_status() const EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return final_status_;
  }

  bool IsDone() const EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return done_;
  }

 private:
  mutable Mutex mutex_;
  CondVar cv_;
  std::deque<T> buffer_ GUARDED_BY(mutex_);
  std::optional<T> last_ GUARDED_BY(mutex_);
  NextFn next_ GUARDED_BY(mutex_);
  DoneFn done_fn_ GUARDED_BY(mutex_);
  Status final_status_ GUARDED_BY(mutex_);
  int delivered_ GUARDED_BY(mutex_) = 0;
  bool done_ GUARDED_BY(mutex_) = false;
};

template <typename T>
using StreamPtr = std::shared_ptr<Stream<T>>;

}  // namespace hillview

#endif  // HILLVIEW_REACTIVE_OBSERVABLE_H_
