#ifndef HILLVIEW_REACTIVE_OBSERVABLE_H_
#define HILLVIEW_REACTIVE_OBSERVABLE_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "util/status.h"

namespace hillview {

/// Cooperative cancellation token shared between a client and an execution
/// tree. The original system uses RxJava unsubscription (§6); here a token is
/// polled by leaf nodes between micropartitions — matching the paper's
/// semantics that already-started micropartition work is not interrupted
/// (§5.3: "We currently do not stop ongoing computations on a micropartition").
class CancellationToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool IsCancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

using CancellationTokenPtr = std::shared_ptr<CancellationToken>;

/// A partial result flowing up the execution tree: a summary over the
/// fraction `progress` of leaves completed so far. The stream of partial
/// results is monotone in `progress` and converges to the final summary.
template <typename T>
struct PartialResult {
  double progress = 0.0;  // in [0, 1]; 1.0 accompanies the final value
  T value{};
};

/// Single-producer push stream with buffering: events pushed before a
/// subscriber attaches are replayed in order. This is the minimal slice of
/// Rx used by Hillview: OnNext* (partial results), then exactly one
/// OnComplete carrying a Status.
///
/// Thread-safe; exactly one subscriber is supported (the web-server root in
/// the real system). Blocking helpers are provided for tests and benchmarks.
template <typename T>
class Stream {
 public:
  using NextFn = std::function<void(const T&)>;
  using DoneFn = std::function<void(const Status&)>;

  /// Producer side: push one event. The subscriber callback (if attached)
  /// runs synchronously under the stream lock, which guarantees events are
  /// observed in exactly the order they were produced. Callbacks must not
  /// re-enter the same stream (downstream streams are fine — lock order
  /// follows the dataflow and is acyclic).
  void OnNext(T value) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (done_) return;  // Events after completion are dropped.
    last_ = value;
    if (next_) {
      next_(value);
      ++delivered_;
    } else {
      buffer_.push_back(std::move(value));
    }
    cv_.notify_all();
  }

  /// Producer side: complete the stream (exactly once).
  void OnComplete(Status status) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (done_) return;
    done_ = true;
    final_status_ = status;
    if (done_fn_) done_fn_(status);
    cv_.notify_all();
  }

  /// Consumer side. Replays buffered events in order, then receives live
  /// events from producer threads; the shared lock makes the hand-off from
  /// replay to live delivery seamless.
  void Subscribe(NextFn next, DoneFn done = nullptr) {
    std::lock_guard<std::mutex> lock(mutex_);
    next_ = std::move(next);
    done_fn_ = std::move(done);
    while (!buffer_.empty()) {
      if (next_) {
        next_(buffer_.front());
        ++delivered_;
      }
      buffer_.pop_front();
    }
    if (done_ && done_fn_) done_fn_(final_status_);
  }

  /// Blocks until the producer completes; returns the last event seen (or
  /// nullopt if the stream completed empty).
  std::optional<T> BlockingLast() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return done_; });
    return last_;
  }

  /// Blocks until completion and returns every buffered event (only valid if
  /// no Subscribe callback consumed them first).
  std::vector<T> BlockingCollect() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return done_; });
    std::vector<T> out(buffer_.begin(), buffer_.end());
    buffer_.clear();
    return out;
  }

  /// Final status; valid after completion.
  Status final_status() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return final_status_;
  }

  bool IsDone() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return done_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<T> buffer_;
  std::optional<T> last_;
  NextFn next_;
  DoneFn done_fn_;
  Status final_status_;
  int delivered_ = 0;
  bool done_ = false;
};

template <typename T>
using StreamPtr = std::shared_ptr<Stream<T>>;

}  // namespace hillview

#endif  // HILLVIEW_REACTIVE_OBSERVABLE_H_
