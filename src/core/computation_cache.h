#ifndef HILLVIEW_CORE_COMPUTATION_CACHE_H_
#define HILLVIEW_CORE_COMPUTATION_CACHE_H_

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>

#include "core/any_sketch.h"
#include "util/thread_annotations.h"

namespace hillview {

/// Cache of sketch results, "indexed by what mergeable summary was used and
/// what dataset was operated on" (§5.4). Summaries are tiny by construction,
/// so a large number can be cached; eviction is LRU. Only deterministic
/// sketches should be cached (randomized ones are keyed with their seed via
/// the sketch name, so caching them is safe but rarely useful).
///
/// Thread-safe: one capability-annotated mutex guards the map, the LRU list
/// and every counter; stats are only exposed as a single locked Snapshot()
/// so multi-counter reads can never tear against a concurrent scan.
class ComputationCache {
 public:
  /// One consistent observability snapshot, taken under the lock.
  struct Stats {
    size_t entries = 0;
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
  };

  explicit ComputationCache(size_t max_entries = 4096)
      : max_entries_(max_entries) {}

  /// Cache key for one seeded run. Sketch names do not always encode the
  /// seed (e.g. SampledHistogramSketch), so the seed must be part of the key
  /// or a cached randomized summary could be served for a different seed.
  static std::string Key(const std::string& dataset_id,
                         const std::string& sketch_name, uint64_t seed) {
    return dataset_id + "#" + sketch_name + "@" + std::to_string(seed);
  }

  std::optional<AnySummary> Get(const std::string& key) EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      ++misses_;
      return std::nullopt;
    }
    // Move to front of the LRU list.
    lru_.splice(lru_.begin(), lru_, it->second.lru_position);
    ++hits_;
    return it->second.summary;
  }

  void Put(const std::string& key, AnySummary summary) EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      it->second.summary = std::move(summary);
      lru_.splice(lru_.begin(), lru_, it->second.lru_position);
      return;
    }
    lru_.push_front(key);
    entries_[key] = Entry{std::move(summary), lru_.begin()};
    if (entries_.size() > max_entries_) {
      entries_.erase(lru_.back());
      lru_.pop_back();
      ++evictions_;
    }
  }

  void Clear() EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    entries_.clear();
    lru_.clear();
  }

  /// All counters and the entry count, read atomically under the lock.
  Stats Snapshot() const EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return Stats{entries_.size(), hits_, misses_, evictions_};
  }

 private:
  struct Entry {
    AnySummary summary;
    std::list<std::string>::iterator lru_position;
  };

  mutable Mutex mutex_;
  size_t max_entries_;
  std::unordered_map<std::string, Entry> entries_ GUARDED_BY(mutex_);
  std::list<std::string> lru_ GUARDED_BY(mutex_);  // front = most recent
  int64_t hits_ GUARDED_BY(mutex_) = 0;
  int64_t misses_ GUARDED_BY(mutex_) = 0;
  int64_t evictions_ GUARDED_BY(mutex_) = 0;
};

}  // namespace hillview

#endif  // HILLVIEW_CORE_COMPUTATION_CACHE_H_
