#ifndef HILLVIEW_CORE_COMPUTATION_CACHE_H_
#define HILLVIEW_CORE_COMPUTATION_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

#include "core/any_sketch.h"
#include "util/thread_annotations.h"

namespace hillview {

/// Cache of sketch results, "indexed by what mergeable summary was used and
/// what dataset was operated on" (§5.4). Summaries are tiny by construction,
/// so a large number can be cached; eviction is LRU. Only deterministic
/// sketches should be cached (randomized ones are keyed with their seed via
/// the sketch name, so caching them is safe but rarely useful).
///
/// Multi-tenant sharing happens through the single-flight protocol
/// (GetOrBeginCompute / FinishCompute, the same shape as
/// SortKeyCache::GetOrBuild): when N sessions race the same key, exactly one
/// becomes the flight owner and computes; the others park and adopt its
/// result (`coalesced_hits`). An owner that finishes WITHOUT a publishable
/// value — degraded coverage, cancellation, an error — releases the flight
/// empty and the waiters re-elect a new owner, so a partial result is never
/// served across sessions and a cancelled winner never starves the losers.
///
/// Thread-safe: one capability-annotated mutex guards the map, the LRU list,
/// the in-flight table and every counter; stats are only exposed as a single
/// locked Snapshot() so multi-counter reads can never tear against a
/// concurrent scan.
class ComputationCache {
 public:
  /// One consistent observability snapshot, taken under the lock.
  struct Stats {
    size_t entries = 0;
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
    /// Waiters that adopted another caller's in-flight result instead of
    /// recomputing (cross-session single-flight sharing).
    int64_t coalesced_hits = 0;
  };

  explicit ComputationCache(size_t max_entries = 4096)
      : max_entries_(max_entries) {}

  /// Cache key for one seeded run. Sketch names do not always encode the
  /// seed (e.g. SampledHistogramSketch), so the seed must be part of the key
  /// or a cached randomized summary could be served for a different seed.
  static std::string Key(const std::string& dataset_id,
                         const std::string& sketch_name, uint64_t seed) {
    return dataset_id + "#" + sketch_name + "@" + std::to_string(seed);
  }

  std::optional<AnySummary> Get(const std::string& key) EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      ++misses_;
      return std::nullopt;
    }
    // Move to front of the LRU list.
    lru_.splice(lru_.begin(), lru_, it->second.lru_position);
    ++hits_;
    return it->second.summary;
  }

  void Put(const std::string& key, AnySummary summary) EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    PutLocked(key, std::move(summary));
  }

  /// Single-flight lookup. Outcomes:
  ///   - cached value present: returns it (*owner = false; a hit).
  ///   - miss, no flight for this key: the caller is elected owner
  ///     (*owner = true, returns nullopt) and MUST later call FinishCompute
  ///     exactly once, on every path (success, degraded, cancelled, error).
  ///   - miss, flight in progress: parks until the owner finishes; a
  ///     published value is adopted (*owner = false, *coalesced = true), an
  ///     empty finish loops to re-elect — possibly making this caller the
  ///     new owner.
  std::optional<AnySummary> GetOrBeginCompute(const std::string& key,
                                              bool* owner,
                                              bool* coalesced = nullptr)
      EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    if (coalesced != nullptr) *coalesced = false;
    for (;;) {
      auto it = entries_.find(key);
      if (it != entries_.end()) {
        lru_.splice(lru_.begin(), lru_, it->second.lru_position);
        ++hits_;
        *owner = false;
        return it->second.summary;
      }
      auto flight_it = flights_.find(key);
      if (flight_it == flights_.end()) {
        ++misses_;
        flights_[key] = std::make_shared<Flight>();
        *owner = true;
        return std::nullopt;
      }
      std::shared_ptr<Flight> flight = flight_it->second;
      while (!flight->done) flight_cv_.Wait(mutex_);
      if (flight->result.has_value()) {
        ++coalesced_hits_;
        *owner = false;
        if (coalesced != nullptr) *coalesced = true;
        return flight->result;
      }
      // The owner finished empty (degraded / cancelled / failed): loop and
      // try again — this waiter may become the next owner.
    }
  }

  /// Completes a flight begun by GetOrBeginCompute. A value publishes the
  /// result to the cache AND to every parked waiter; nullopt releases the
  /// flight empty (degraded results are never cached, and never served to
  /// another session). Tolerates a missing flight so defensive
  /// double-finishes are harmless.
  void FinishCompute(const std::string& key, std::optional<AnySummary> value)
      EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    auto it = flights_.find(key);
    if (it == flights_.end()) return;
    std::shared_ptr<Flight> flight = it->second;
    flights_.erase(it);
    flight->done = true;
    flight->result = value;  // waiters adopt from the flight, not the LRU
    if (value.has_value()) PutLocked(key, std::move(*value));
    flight_cv_.NotifyAll();
  }

  void Clear() EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    entries_.clear();
    lru_.clear();
  }

  /// All counters and the entry count, read atomically under the lock.
  Stats Snapshot() const EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return Stats{entries_.size(), hits_, misses_, evictions_,
                 coalesced_hits_};
  }

 private:
  struct Entry {
    AnySummary summary;
    std::list<std::string>::iterator lru_position;
  };

  /// One in-flight computation; waiters park on flight_cv_ and hold the
  /// shared_ptr so the owner can drop the map entry while they drain.
  struct Flight {
    bool done = false;
    std::optional<AnySummary> result;
  };

  void PutLocked(const std::string& key, AnySummary summary) REQUIRES(mutex_) {
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      it->second.summary = std::move(summary);
      lru_.splice(lru_.begin(), lru_, it->second.lru_position);
      return;
    }
    lru_.push_front(key);
    entries_[key] = Entry{std::move(summary), lru_.begin()};
    if (entries_.size() > max_entries_) {
      entries_.erase(lru_.back());
      lru_.pop_back();
      ++evictions_;
    }
  }

  mutable Mutex mutex_;
  CondVar flight_cv_;
  size_t max_entries_;
  std::unordered_map<std::string, Entry> entries_ GUARDED_BY(mutex_);
  std::unordered_map<std::string, std::shared_ptr<Flight>> flights_
      GUARDED_BY(mutex_);
  std::list<std::string> lru_ GUARDED_BY(mutex_);  // front = most recent
  int64_t hits_ GUARDED_BY(mutex_) = 0;
  int64_t misses_ GUARDED_BY(mutex_) = 0;
  int64_t evictions_ GUARDED_BY(mutex_) = 0;
  int64_t coalesced_hits_ GUARDED_BY(mutex_) = 0;
};

}  // namespace hillview

#endif  // HILLVIEW_CORE_COMPUTATION_CACHE_H_
