#ifndef HILLVIEW_CORE_ANY_SKETCH_H_
#define HILLVIEW_CORE_ANY_SKETCH_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sketch/morsel.h"
#include "sketch/sketch.h"
#include "util/serialize.h"
#include "util/status.h"

namespace hillview {

/// A type-erased sketch summary. The execution tree and the simulated
/// cluster move summaries around without knowing their concrete type; typed
/// access happens only at the root (see TypedSummary below).
class AnySummary {
 public:
  AnySummary() = default;

  template <typename R>
  static AnySummary Wrap(R value) {
    AnySummary s;
    s.data_ = std::make_shared<R>(std::move(value));
    return s;
  }

  bool empty() const { return data_ == nullptr; }

  template <typename R>
  const R& As() const {
    return *static_cast<const R*>(data_.get());
  }

  template <typename R>
  const R* TryAs() const {
    return static_cast<const R*>(data_.get());
  }

 private:
  std::shared_ptr<const void> data_;
};

/// Type-erased view of a Sketch<R>: the uniform interface the engine and the
/// simulated cluster program against. Carries the summary vtable (merge,
/// serialize, deserialize) alongside the summarize function.
class AnySketch {
 public:
  AnySketch() = default;

  /// Erases a typed sketch. R must satisfy the Sketch summary contract
  /// (default-constructible, Serialize/Deserialize).
  template <typename R>
  static AnySketch Wrap(SketchPtr<R> sketch) {
    AnySketch s;
    s.impl_ = std::make_shared<Impl<R>>(std::move(sketch));
    return s;
  }

  bool valid() const { return impl_ != nullptr; }

  const std::string& name() const { return impl_->name; }

  AnySummary Zero() const { return impl_->zero(); }
  AnySummary Summarize(const Table& table, uint64_t seed,
                       const SketchContext& context = {}) const {
    return impl_->summarize(table, seed, context);
  }
  AnySummary Merge(const AnySummary& a, const AnySummary& b) const {
    return impl_->merge(a, b);
  }
  std::vector<uint8_t> Serialize(const AnySummary& s) const {
    return impl_->serialize(s);
  }
  Result<AnySummary> Deserialize(const std::vector<uint8_t>& bytes) const {
    return impl_->deserialize(bytes);
  }

 private:
  struct ImplBase {
    std::string name;
    virtual ~ImplBase() = default;
    virtual AnySummary zero() const = 0;
    virtual AnySummary summarize(const Table& t, uint64_t seed,
                                 const SketchContext& context) const = 0;
    virtual AnySummary merge(const AnySummary& a,
                             const AnySummary& b) const = 0;
    virtual std::vector<uint8_t> serialize(const AnySummary& s) const = 0;
    virtual Result<AnySummary> deserialize(
        const std::vector<uint8_t>& bytes) const = 0;
  };

  template <typename R>
  struct Impl final : ImplBase {
    explicit Impl(SketchPtr<R> s) : sketch(std::move(s)) {
      this->name = sketch->name();
    }
    AnySummary zero() const override {
      return AnySummary::Wrap<R>(sketch->Zero());
    }
    AnySummary summarize(const Table& t, uint64_t seed,
                         const SketchContext& context) const override {
      // The morsel engine decides per (sketch, table, context) whether to
      // fan this partition across the worker's pool; sketches without exact
      // morsel merging fall straight through to the plain summarize.
      return AnySummary::Wrap<R>(SummarizeWithMorsels(*sketch, t, seed,
                                                      context));
    }
    AnySummary merge(const AnySummary& a,
                     const AnySummary& b) const override {
      return AnySummary::Wrap<R>(sketch->Merge(a.As<R>(), b.As<R>()));
    }
    std::vector<uint8_t> serialize(const AnySummary& s) const override {
      ByteWriter w;
      s.As<R>().Serialize(&w);
      return w.Take();
    }
    Result<AnySummary> deserialize(
        const std::vector<uint8_t>& bytes) const override {
      ByteReader r(bytes);
      R value;
      HV_RETURN_IF_ERROR(R::Deserialize(&r, &value));
      return AnySummary::Wrap<R>(std::move(value));
    }

    SketchPtr<R> sketch;
  };

  std::shared_ptr<const ImplBase> impl_;
};

}  // namespace hillview

#endif  // HILLVIEW_CORE_ANY_SKETCH_H_
