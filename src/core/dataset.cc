#include "core/dataset.h"

#include <algorithm>

#include "util/stopwatch.h"

namespace hillview {

std::shared_ptr<LocalDataSet> LocalDataSet::FromLoader(std::string id,
                                                       Loader loader) {
  return std::shared_ptr<LocalDataSet>(
      new LocalDataSet(std::move(id), std::move(loader)));
}

std::shared_ptr<LocalDataSet> LocalDataSet::FromTable(std::string id,
                                                      TablePtr table) {
  return FromLoader(std::move(id),
                    [table]() -> Result<TablePtr> { return table; });
}

std::shared_ptr<LocalDataSet> LocalDataSet::FromColumnarFile(
    std::string id, std::string path, StorageBackend backend,
    ReadOptions options) {
  return FromLoader(
      std::move(id),
      [path = std::move(path), backend,
       options = std::move(options)]() -> Result<TablePtr> {
        return OpenTableFile(path, backend, options);
      });
}

Result<TablePtr> LocalDataSet::GetTable() {
  MutexLock lock(mutex_);
  if (cached_ != nullptr) return cached_;
  ++load_count_;
  auto result = loader_();
  if (result.ok()) cached_ = result.value();
  return result;
}

bool LocalDataSet::IsMaterialized() const {
  MutexLock lock(mutex_);
  return cached_ != nullptr;
}

int LocalDataSet::load_count() const {
  MutexLock lock(mutex_);
  return load_count_;
}

void LocalDataSet::Evict() {
  MutexLock lock(mutex_);
  cached_ = nullptr;
}

StreamPtr<PartialResult<AnySummary>> LocalDataSet::RunSketch(
    const AnySketch& sketch, const SketchOptions& options) {
  auto stream = std::make_shared<Stream<PartialResult<AnySummary>>>();
  if (options.cancellation != nullptr && options.cancellation->IsCancelled()) {
    stream->OnComplete(Status::Cancelled("cancelled before start"));
    return stream;
  }
  auto table = GetTable();
  if (!table.ok()) {
    stream->OnComplete(table.status());
    return stream;
  }
  AnySummary summary =
      sketch.Summarize(*table.value(), options.seed,
                       SketchContext{/*aux_pool=*/options.aux_pool,
                                     /*key_cache=*/options.key_cache,
                                     /*cancellation=*/options.cancellation});
  if (options.cancellation != nullptr && options.cancellation->IsCancelled()) {
    // The render was superseded mid-scan: the morsel fan-out may have
    // abandoned ranges, so the summary can be incomplete and must not be
    // emitted where a merger would take it for the partition's total.
    stream->OnComplete(Status::Cancelled("cancelled during summarize"));
    return stream;
  }
  stream->OnNext(PartialResult<AnySummary>{1.0, std::move(summary)});
  stream->OnComplete(Status::OK());
  return stream;
}

DataSetPtr LocalDataSet::Map(TableMap map, const std::string& op_name) {
  auto parent = shared_from_this();
  return FromLoader(id_ + "/" + op_name, [parent, map]() -> Result<TablePtr> {
    HV_ASSIGN_OR_RETURN(TablePtr table, parent->GetTable());
    return map(table);
  });
}

ParallelDataSet::ParallelDataSet(std::string id,
                                 std::vector<DataSetPtr> children,
                                 ThreadPool* pool, Options options)
    : id_(std::move(id)),
      children_(std::move(children)),
      pool_(pool),
      options_(options) {}

int ParallelDataSet::NumPartitions() const {
  int n = 0;
  for (const auto& child : children_) n += child->NumPartitions();
  return n;
}

void ParallelDataSet::Evict() {
  for (auto& child : children_) child->Evict();
}

DataSetPtr ParallelDataSet::Map(TableMap map, const std::string& op_name) {
  std::vector<DataSetPtr> mapped;
  mapped.reserve(children_.size());
  for (auto& child : children_) mapped.push_back(child->Map(map, op_name));
  return std::make_shared<ParallelDataSet>(id_ + "/" + op_name,
                                           std::move(mapped), pool_, options_);
}

namespace {

/// Shared state of one in-flight tree aggregation: latest summary and
/// progress per child, merged and emitted under the aggregation window.
struct Merger {
  Merger(AnySketch sketch, int num_children, std::vector<double> weights,
         ParallelDataSet::Options options, CancellationTokenPtr cancel,
         StreamPtr<PartialResult<AnySummary>> out)
      : sketch(std::move(sketch)),
        latest(num_children),
        progress(num_children, 0.0),
        failed(num_children, false),
        child_coverage(num_children, 1.0),
        weights(std::move(weights)),
        options(options),
        cancel(std::move(cancel)),
        out(std::move(out)) {
    total_weight = 0;
    for (double w : this->weights) total_weight += w;
    if (total_weight <= 0) total_weight = 1;
  }

  /// Faults degraded mode may absorb: soft-state loss (heals via replay)
  /// and transport/deadline misses (heal via retry). Anything else —
  /// Cancelled, InvalidArgument, Internal — still fails the query strictly.
  static bool Tolerable(const Status& s) {
    return s.code() == StatusCode::kUnavailable ||
           s.code() == StatusCode::kDeadlineExceeded;
  }

  AnySummary MergeAllLocked() REQUIRES(mutex) {
    AnySummary merged;
    for (const auto& s : latest) {
      if (s.empty()) continue;
      merged = merged.empty() ? s : sketch.Merge(merged, s);
    }
    return merged.empty() ? sketch.Zero() : merged;
  }

  double ProgressLocked() const REQUIRES(mutex) {
    double p = 0;
    for (size_t i = 0; i < progress.size(); ++i) p += progress[i] * weights[i];
    return p / total_weight;
  }

  /// Weighted fraction of leaf partitions still contributing: a lost child
  /// contributes zero, a live one forwards whatever coverage its own subtree
  /// reported. Ratios of small integer weights stay exact in floating point
  /// (e.g. 6/8), so tests can assert coverage with plain equality.
  double CoverageLocked() const REQUIRES(mutex) {
    double c = 0;
    for (size_t i = 0; i < failed.size(); ++i) {
      if (!failed[i]) c += child_coverage[i] * weights[i];
    }
    return c / total_weight;
  }

  // Emissions happen under the merger lock: partial results must reach the
  // stream in monotone progress order, and OnNext itself is cheap (the
  // stream buffers or invokes the subscriber synchronously).
  void Update(int child, const PartialResult<AnySummary>& partial)
      EXCLUDES(mutex) {
    MutexLock lock(mutex);
    if (cancel != nullptr && cancel->IsCancelled()) {
      // Partial-result emission is a cancellation point: a superseded render
      // settles Cancelled on the spot instead of streaming stale partials
      // while its remaining children finish. Late child events after this
      // are dropped by the completed stream.
      out->OnComplete(Status::Cancelled("render superseded"));
      return;
    }
    if (failed[child]) return;  // a dead child's late partials are discarded
    latest[child] = partial.value;
    progress[child] = partial.progress;
    child_coverage[child] = partial.coverage;
    if (options.progressive &&
        (!emitted_any ||
         since_emit.ElapsedMillis() >= options.aggregation_window_ms)) {
      PartialResult<AnySummary> emit;
      emit.progress = ProgressLocked();
      emit.value = MergeAllLocked();
      emit.coverage = CoverageLocked();
      emitted_any = true;
      since_emit.Restart();
      out->OnNext(std::move(emit));
    }
  }

  void Complete(int child, const Status& status) EXCLUDES(mutex) {
    MutexLock lock(mutex);
    if (cancel != nullptr && cancel->IsCancelled()) {
      // Settle immediately; per-child bookkeeping still runs below so the
      // merger's counters stay consistent for any straggling children (their
      // emissions are no-ops on the completed stream).
      out->OnComplete(Status::Cancelled("render superseded"));
    }
    ++completed;
    if (!status.ok()) {
      if (options.tolerate_child_failures && Tolerable(status)) {
        // Degraded mode: the child is lost, not the query. Exclude whatever
        // it already contributed — a partial summary from a dead machine
        // must not be mistaken for its full partition.
        failed[child] = true;
        latest[child] = AnySummary{};
        progress[child] = 1.0;  // "done": nothing further will arrive
        if (first_tolerated_error.ok()) first_tolerated_error = status;
      } else if (first_error.ok()) {
        first_error = status;
      }
    }
    if (completed != static_cast<int>(latest.size())) return;
    if (!first_error.ok()) {
      out->OnComplete(first_error);
      return;
    }
    const double coverage = CoverageLocked();
    if (coverage <= 0) {
      // Nothing survived; a degraded result over zero partitions is not a
      // result. Surface the first fault so the caller can heal or give up.
      out->OnComplete(first_tolerated_error.ok()
                          ? Status::Unavailable("no partition survived")
                          : first_tolerated_error);
      return;
    }
    PartialResult<AnySummary> final_emit;
    final_emit.progress = 1.0;
    final_emit.value = MergeAllLocked();
    final_emit.coverage = coverage;
    out->OnNext(std::move(final_emit));
    out->OnComplete(Status::OK());
  }

  AnySketch sketch;
  Mutex mutex;
  std::vector<AnySummary> latest GUARDED_BY(mutex);
  std::vector<double> progress GUARDED_BY(mutex);
  // Degraded-mode bookkeeping: which children were declared lost, and the
  // coverage each live child's subtree last reported.
  std::vector<bool> failed GUARDED_BY(mutex);
  std::vector<double> child_coverage GUARDED_BY(mutex);
  Status first_tolerated_error GUARDED_BY(mutex);
  const std::vector<double> weights;
  double total_weight;
  const ParallelDataSet::Options options;
  const CancellationTokenPtr cancel;  // immutable after construction
  const StreamPtr<PartialResult<AnySummary>> out;
  Stopwatch since_emit GUARDED_BY(mutex);
  bool emitted_any GUARDED_BY(mutex) = false;
  int completed GUARDED_BY(mutex) = 0;
  Status first_error GUARDED_BY(mutex);
};

}  // namespace

StreamPtr<PartialResult<AnySummary>> ParallelDataSet::RunSketch(
    const AnySketch& sketch, const SketchOptions& options) {
  auto stream = std::make_shared<Stream<PartialResult<AnySummary>>>();
  if (children_.empty()) {
    stream->OnNext(PartialResult<AnySummary>{1.0, sketch.Zero()});
    stream->OnComplete(Status::OK());
    return stream;
  }
  std::vector<double> weights;
  weights.reserve(children_.size());
  for (const auto& child : children_) {
    weights.push_back(std::max(1, child->NumPartitions()));
  }
  auto merger =
      std::make_shared<Merger>(sketch, children_.size(), std::move(weights),
                               options_, options.cancellation, stream);

  for (size_t i = 0; i < children_.size(); ++i) {
    SketchOptions child_options = options;
    child_options.seed = MixSeed(options.seed, i);
    auto leaf = std::dynamic_pointer_cast<LocalDataSet>(children_[i]);
    if (leaf != nullptr && pool_ != nullptr) {
      // Leaf partitions run on the worker's thread pool (§5.3). The token is
      // checked when the task is dequeued: cancellation "removes" work that
      // has not started, while started work runs to completion.
      int child_index = static_cast<int>(i);
      bool submitted =
          pool_->Submit([merger, leaf, sketch, child_options, child_index] {
            if (child_options.cancellation != nullptr &&
                child_options.cancellation->IsCancelled()) {
              merger->Complete(child_index,
                               Status::Cancelled("cancelled in queue"));
              return;
            }
            auto table = leaf->GetTable();
            if (!table.ok()) {
              merger->Complete(child_index, table.status());
              return;
            }
            AnySummary summary = sketch.Summarize(
                *table.value(), child_options.seed,
                SketchContext{/*aux_pool=*/child_options.aux_pool,
                              /*key_cache=*/child_options.key_cache,
                              /*cancellation=*/child_options.cancellation});
            if (child_options.cancellation != nullptr &&
                child_options.cancellation->IsCancelled()) {
              // Superseded mid-scan: the morsel fan-out may have skipped
              // ranges, so the summary is untrustworthy — complete Cancelled
              // instead of merging it.
              merger->Complete(child_index,
                               Status::Cancelled("cancelled during summarize"));
              return;
            }
            merger->Update(child_index,
                           PartialResult<AnySummary>{1.0, std::move(summary)});
            merger->Complete(child_index, Status::OK());
          });
      if (!submitted) {
        // A shut-down pool drops the task; completing the child here keeps
        // the stream from hanging forever (the worker is going away, so
        // Unavailable tells the root to replay elsewhere).
        merger->Complete(child_index,
                         Status::Unavailable("worker pool shut down"));
      }
      continue;
    }
    // Inner node (or no pool): recurse; the child stream is asynchronous.
    auto child_stream = children_[i]->RunSketch(sketch, child_options);
    int child_index = static_cast<int>(i);
    child_stream->Subscribe(
        [merger, child_index](const PartialResult<AnySummary>& p) {
          merger->Update(child_index, p);
        },
        [merger, child_index](const Status& s) {
          merger->Complete(child_index, s);
        });
  }
  return stream;
}

}  // namespace hillview
