#ifndef HILLVIEW_CORE_DATASET_H_
#define HILLVIEW_CORE_DATASET_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/any_sketch.h"
#include "reactive/observable.h"
#include "storage/columnar_file.h"
#include "storage/table.h"
#include "util/random.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace hillview {

class IDataSet;
using DataSetPtr = std::shared_ptr<IDataSet>;

/// A partition-to-partition transformation (filtering, derived columns —
/// §5.6). Must be deterministic: derived partitions are soft state and are
/// recomputed by re-running the map after eviction or worker restarts.
using TableMap = std::function<Result<TablePtr>(const TablePtr&)>;

/// Options controlling one sketch execution.
struct SketchOptions {
  /// Root seed; each partition gets MixSeed(seed, partition position). The
  /// seed is recorded in the redo log so replays are deterministic (§5.8).
  uint64_t seed = 0;
  /// Cooperative cancellation (§5.3). May be null. Checked when a queued
  /// leaf task is dequeued, at every morsel boundary inside a summarize
  /// (sketch/morsel.h), and before each partial-result emission in the
  /// ParallelDataSet merger; a flipped token settles the stream with
  /// Status::Cancelled and no further summaries are emitted.
  CancellationTokenPtr cancellation;
  /// Owning session, threaded down to the simulated network so per-session
  /// byte counters make bandwidth fairness observable across tenants
  /// (cluster::RootSession fills it in; -1 = untagged single-session use).
  int session_id = -1;
  /// Worker-local auxiliary pool provider forwarded to sketches via
  /// SketchContext (cluster::RemoteDataSet injects the receiving worker's
  /// provider). A provider rather than a pointer, so the pool is created
  /// only when a sketch asks for it. May be empty; sketches then run their
  /// helper work inline.
  std::function<ThreadPool*()> aux_pool;
  /// Worker-resident sort-key cache provider, forwarded the same way
  /// (cluster::RemoteDataSet injects the receiving worker's cache). May be
  /// empty; order-based sketches then rebuild keys per scan.
  std::function<SortKeyCache*()> key_cache;
  /// Deadline/retry policy applied at machine-boundary edges of the
  /// execution tree (cluster::RemoteDataSet; in-process nodes ignore it).
  /// Plain data here so core stays cluster-agnostic. Retrying is safe
  /// because sketches are pure functions of (data, seed): re-running one is
  /// idempotent, and merging a duplicate summary is harmless.
  struct RpcPolicy {
    /// Per-attempt deadline: a leaf that produced no final summary within
    /// this window completes kDeadlineExceeded. 0 disables deadlines.
    double deadline_ms = 0.0;
    /// Retries per RPC after the first attempt (kDeadlineExceeded only).
    int max_retries = 0;
    /// Capped exponential backoff between attempts: attempt n sleeps
    /// min(cap, base * 2^(n-1)), scaled by deterministic seeded jitter.
    double backoff_base_ms = 1.0;
    double backoff_cap_ms = 50.0;
  };
  RpcPolicy rpc;
};

/// A distributed dataset: the Partitioned Data Set abstraction from Sketch
/// [14] that Hillview builds on (§5.7). Concrete shapes: a single partition
/// (LocalDataSet), a fan-out over children (ParallelDataSet), or a proxy to
/// another machine (cluster::RemoteDataSet).
///
/// All data reachable from a dataset is soft state: partitions may be
/// evicted at any time and are reconstructed on demand from their loaders
/// (reload from a repository) or by re-running maps (§5.7).
class IDataSet {
 public:
  virtual ~IDataSet() = default;

  /// Stable identity used in computation-cache keys and the redo log.
  virtual const std::string& id() const = 0;

  /// Runs a sketch over every partition, merging summaries toward this node
  /// and streaming monotone partial results (§5.3). The returned stream
  /// completes with the final summary at progress 1.0, or with an error /
  /// cancelled status.
  virtual StreamPtr<PartialResult<AnySummary>> RunSketch(
      const AnySketch& sketch, const SketchOptions& options) = 0;

  /// Derives a new dataset by applying `map` to every partition, lazily:
  /// partitions materialize on first access and may be evicted (§5.6).
  virtual DataSetPtr Map(TableMap map, const std::string& op_name) = 0;

  /// Number of leaf partitions below this node.
  virtual int NumPartitions() const = 0;

  /// Drops all cached/materialized soft state below this node (memory
  /// manager + fault injection). Data reloads on next access.
  virtual void Evict() = 0;
};

/// Runs a typed sketch and exposes a typed partial-result stream.
/// Convenience wrapper used by the spreadsheet layer, examples and tests.
template <typename R>
StreamPtr<PartialResult<R>> RunTypedSketch(IDataSet& dataset,
                                           SketchPtr<R> sketch,
                                           const SketchOptions& options = {}) {
  auto typed = std::make_shared<Stream<PartialResult<R>>>();
  auto erased = dataset.RunSketch(AnySketch::Wrap<R>(std::move(sketch)),
                                  options);
  // Progress-only partials (empty summary) must still reach subscribers:
  // progress bars advance on every tick, not only on ticks that happen to
  // carry a merged summary. An empty tick re-emits the last summary seen
  // (or the zero summary R{} before any arrives).
  auto last_value = std::make_shared<R>();
  erased->Subscribe(
      [typed, last_value](const PartialResult<AnySummary>& p) {
        if (!p.value.empty()) *last_value = p.value.As<R>();
        typed->OnNext(PartialResult<R>{p.progress, *last_value});
      },
      [typed](const Status& s) { typed->OnComplete(s); });
  return typed;
}

/// Blocks for a sketch's final result; the common path for tests, examples
/// and benchmarks that do not care about progressive updates.
template <typename R>
Result<R> SketchAndWait(IDataSet& dataset, SketchPtr<R> sketch,
                        const SketchOptions& options = {}) {
  auto erased = dataset.RunSketch(AnySketch::Wrap<R>(std::move(sketch)),
                                  options);
  // Track the last real summary ourselves (not via RunTypedSketch, which
  // substitutes R{} on progress-only ticks): a stream that completes OK
  // without ever carrying a summary must stay distinguishable from one
  // whose final summary happens to equal R{}.
  auto last_summary = std::make_shared<std::optional<R>>();
  erased->Subscribe([last_summary](const PartialResult<AnySummary>& p) {
    if (!p.value.empty()) *last_summary = p.value.As<R>();
  });
  (void)erased->BlockingLast();
  Status status = erased->final_status();
  if (!status.ok()) return status;
  if (!last_summary->has_value()) {
    return Status::Internal("sketch produced no result");
  }
  return **last_summary;
}

/// A single partition with reconstructible contents. The loader runs on
/// first access (or after eviction) and its result is cached; this is the
/// leaf of every execution tree and the data cache of §5.4.
class LocalDataSet final : public IDataSet,
                           public std::enable_shared_from_this<LocalDataSet> {
 public:
  using Loader = std::function<Result<TablePtr>()>;

  /// Dataset backed by a loader (e.g. read a file); contents are soft.
  static std::shared_ptr<LocalDataSet> FromLoader(std::string id,
                                                  Loader loader);

  /// Dataset pinned to an in-memory table (tests, generators). Eviction is a
  /// no-op since the loader just returns the same table.
  static std::shared_ptr<LocalDataSet> FromTable(std::string id,
                                                 TablePtr table);

  /// Dataset whose partition lives in an HVCF columnar file, opened through
  /// the chosen storage backend (§5.4's repository path). With the mmap
  /// backend, eviction drops only the column views — the kernel's page cache
  /// keeps whatever stays hot, so a reload after Evict() costs no read at
  /// all for resident pages. `options` (column subset, heap-read throttling)
  /// is forwarded to the open.
  static std::shared_ptr<LocalDataSet> FromColumnarFile(
      std::string id, std::string path, StorageBackend backend,
      ReadOptions options = {});

  const std::string& id() const override { return id_; }

  StreamPtr<PartialResult<AnySummary>> RunSketch(
      const AnySketch& sketch, const SketchOptions& options) override;

  DataSetPtr Map(TableMap map, const std::string& op_name) override;

  int NumPartitions() const override { return 1; }

  void Evict() override;

  /// Materializes (or returns the cached) partition table.
  Result<TablePtr> GetTable() EXCLUDES(mutex_);

  /// True if the partition is currently materialized in memory.
  bool IsMaterialized() const EXCLUDES(mutex_);

  /// Number of times the loader ran (observability for cache tests).
  int load_count() const EXCLUDES(mutex_);

 private:
  LocalDataSet(std::string id, Loader loader)
      : id_(std::move(id)), loader_(std::move(loader)) {}

  std::string id_;
  Loader loader_;
  mutable Mutex mutex_;
  TablePtr cached_ GUARDED_BY(mutex_);
  int load_count_ GUARDED_BY(mutex_) = 0;
};

/// Aggregation over children (§5.3's execution tree): distributes sketches
/// to children, merges their summaries, and emits partial results batched in
/// an aggregation window. Leaf children execute on the shared thread pool —
/// one leaf per micropartition, "a thread pool that serves leafs with work
/// to do".
class ParallelDataSet final : public IDataSet {
 public:
  struct Options {
    /// Partial results arriving within this window are merged before being
    /// propagated (§5.3: "aggregation nodes wait for 0.1 seconds").
    double aggregation_window_ms = 100.0;
    /// Emit a partial result after every child completion when true; the
    /// window still rate-limits. False emits only the final result.
    bool progressive = true;
    /// Degraded-mode aggregation (§5.7: "the root returns the results
    /// obtained from the remaining machines"): when true, a child completing
    /// with a tolerable fault (Unavailable, DeadlineExceeded) is marked lost
    /// instead of failing the whole query — its summaries are excluded, the
    /// merge completes over the survivors, and the emitted coverage drops
    /// accordingly. Any other error, and every error when false, still fails
    /// the aggregation strictly.
    bool tolerate_child_failures = false;
  };

  ParallelDataSet(std::string id, std::vector<DataSetPtr> children,
                  ThreadPool* pool)
      : ParallelDataSet(std::move(id), std::move(children), pool, Options{}) {}

  ParallelDataSet(std::string id, std::vector<DataSetPtr> children,
                  ThreadPool* pool, Options options);

  const std::string& id() const override { return id_; }

  StreamPtr<PartialResult<AnySummary>> RunSketch(
      const AnySketch& sketch, const SketchOptions& options) override;

  DataSetPtr Map(TableMap map, const std::string& op_name) override;

  int NumPartitions() const override;

  void Evict() override;

  const std::vector<DataSetPtr>& children() const { return children_; }

 private:
  std::string id_;
  std::vector<DataSetPtr> children_;
  ThreadPool* pool_;
  Options options_;
};

}  // namespace hillview

#endif  // HILLVIEW_CORE_DATASET_H_
