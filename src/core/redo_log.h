#ifndef HILLVIEW_CORE_REDO_LOG_H_
#define HILLVIEW_CORE_REDO_LOG_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"
#include "util/thread_annotations.h"

namespace hillview {

/// One logged root operation: enough to re-execute the query that produced a
/// dataset or summary after a failure (§5.7–5.8). The seed makes randomized
/// vizketches replay deterministically.
struct RedoLogEntry {
  int64_t index = 0;
  std::string kind;         // "load", "map", "filter", "sketch", ...
  std::string description;  // operation parameters, human readable
  uint64_t seed = 0;
};

/// The root node's redo log — "the only persistent data structure maintained
/// by Hillview" (§5.7). Entries carry a replay closure used for lazy replay:
/// when a soft-state object turns out to be gone, the root re-executes the
/// operations that produced it, recursing until data is re-read from the
/// repository.
///
/// Thread-safe: the entry and replayer vectors are guarded by one annotated
/// mutex; Replay copies the closures out and runs them unlocked (replayers
/// re-enter the root, which appends to this same log).
class RedoLog {
 public:
  using Replayer = std::function<Status()>;

  /// Replay observability, read atomically under the lock (like the caches'
  /// Snapshot): how often lazy healing ran, how much it re-executed, and how
  /// often a replay itself failed mid-heal (e.g. a worker that died again
  /// while being rebuilt — the root counts that against its retry budget and
  /// loops instead of giving up).
  struct Stats {
    int64_t entries = 0;
    int64_t replays_started = 0;
    int64_t replays_failed = 0;
    int64_t entries_replayed = 0;
  };

  /// Appends an entry; returns its index.
  int64_t Append(std::string kind, std::string description, uint64_t seed,
                 Replayer replayer = nullptr) EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    RedoLogEntry entry;
    entry.index = static_cast<int64_t>(entries_.size());
    entry.kind = std::move(kind);
    entry.description = std::move(description);
    entry.seed = seed;
    entries_.push_back(entry);
    replayers_.push_back(std::move(replayer));
    return entry.index;
  }

  /// Lazily replays entries [first, last] in order, skipping entries without
  /// replayers. Stops at the first failure.
  Status Replay(int64_t first, int64_t last) EXCLUDES(mutex_) {
    std::vector<Replayer> to_run;
    {
      MutexLock lock(mutex_);
      ++replays_started_;
      for (int64_t i = first; i <= last &&
                              i < static_cast<int64_t>(replayers_.size());
           ++i) {
        if (i < 0) continue;
        if (replayers_[i]) to_run.push_back(replayers_[i]);
      }
    }
    // Closures run unlocked: replayers re-enter the root, which appends to
    // this same log. Tallies are folded back in under the lock at the end.
    int64_t executed = 0;
    Status failure = Status::OK();
    for (auto& r : to_run) {
      Status s = r();
      if (!s.ok()) {
        failure = std::move(s);
        break;
      }
      ++executed;
    }
    {
      MutexLock lock(mutex_);
      entries_replayed_ += executed;
      if (!failure.ok()) ++replays_failed_;
    }
    return failure;
  }

  Status ReplayAll() { return Replay(0, Size() - 1); }

  int64_t Size() const EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return static_cast<int64_t>(entries_.size());
  }

  std::vector<RedoLogEntry> Entries() const EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return entries_;
  }

  /// Renders the log as text ("<index> <kind> seed=<seed> <description>"),
  /// the persisted form.
  std::string ToText() const EXCLUDES(mutex_);

  /// All replay counters plus the entry count, read atomically.
  Stats Snapshot() const EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return Stats{static_cast<int64_t>(entries_.size()), replays_started_,
                 replays_failed_, entries_replayed_};
  }

 private:
  mutable Mutex mutex_;
  std::vector<RedoLogEntry> entries_ GUARDED_BY(mutex_);
  std::vector<Replayer> replayers_ GUARDED_BY(mutex_);
  int64_t replays_started_ GUARDED_BY(mutex_) = 0;
  int64_t replays_failed_ GUARDED_BY(mutex_) = 0;
  int64_t entries_replayed_ GUARDED_BY(mutex_) = 0;
};

}  // namespace hillview

#endif  // HILLVIEW_CORE_REDO_LOG_H_
