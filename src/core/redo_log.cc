#include "core/redo_log.h"

#include <sstream>

namespace hillview {

std::string RedoLog::ToText() const {
  MutexLock lock(mutex_);
  std::ostringstream out;
  for (const auto& e : entries_) {
    out << e.index << " " << e.kind << " seed=" << e.seed << " "
        << e.description << "\n";
  }
  return out.str();
}

}  // namespace hillview
