#ifndef HILLVIEW_UTIL_CANCELLATION_H_
#define HILLVIEW_UTIL_CANCELLATION_H_

#include <atomic>
#include <memory>

namespace hillview {

/// Cooperative cancellation token shared between a client and an execution
/// tree. The original system uses RxJava unsubscription (§6); here a token is
/// polled by leaf nodes between micropartitions — matching the paper's
/// semantics that already-started micropartition work is not interrupted
/// (§5.3: "We currently do not stop ongoing computations on a micropartition").
///
/// Lives in util (not reactive) because polling sites span every layer: the
/// morsel fan-out in sketch/, the merger in core/, the stream waits in
/// reactive/, and the session scheduler in cluster/ all check the same token.
class CancellationToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool IsCancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

using CancellationTokenPtr = std::shared_ptr<CancellationToken>;

}  // namespace hillview

#endif  // HILLVIEW_UTIL_CANCELLATION_H_
