#ifndef HILLVIEW_UTIL_THREAD_ANNOTATIONS_H_
#define HILLVIEW_UTIL_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

// Portable Clang thread-safety capability annotations plus the annotated
// synchronization primitives the whole tree uses. Under Clang the macros
// expand to the attributes consumed by -Wthread-safety (enabled with -Werror
// for src/ in cmake/HillviewWarnings.cmake), turning the repo's locking
// conventions into compiler-checked invariants; under GCC/MSVC they expand to
// nothing and the wrappers cost exactly one inlined call over std::mutex.
//
// Policy (see README "Static analysis & sanitizers"): every new mutex must be
// a hillview::Mutex, every datum it protects must be GUARDED_BY it, and every
// helper that expects the lock held must be REQUIRES-annotated. Lock handoffs
// the analysis cannot express are restructured, never suppressed:
// NO_THREAD_SAFETY_ANALYSIS is reserved for the primitive wrappers below.

#if defined(__clang__)
#define HV_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define HV_THREAD_ANNOTATION__(x)
#endif

/// Declares a type to be a capability (e.g. a mutex class).
#define CAPABILITY(x) HV_THREAD_ANNOTATION__(capability(x))

/// Declares an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define SCOPED_CAPABILITY HV_THREAD_ANNOTATION__(scoped_lockable)

/// The data member is protected by the given capability.
#define GUARDED_BY(x) HV_THREAD_ANNOTATION__(guarded_by(x))

/// The pointed-to data (not the pointer itself) is protected by the capability.
#define PT_GUARDED_BY(x) HV_THREAD_ANNOTATION__(pt_guarded_by(x))

/// The function may only be called while holding the capability exclusively.
#define REQUIRES(...) \
  HV_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/// The function may only be called while holding the capability shared.
#define REQUIRES_SHARED(...) \
  HV_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capability and holds it on return.
#define ACQUIRE(...) HV_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/// The function releases the capability.
#define RELEASE(...) HV_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns the given value.
#define TRY_ACQUIRE(...) \
  HV_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/// The function must not be called while holding the capability (deadlock
/// prevention for functions that acquire it themselves).
#define EXCLUDES(...) HV_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Asserts the calling thread already holds the capability.
#define ASSERT_CAPABILITY(x) HV_THREAD_ANNOTATION__(assert_capability(x))

/// The function returns a reference to the given capability.
#define RETURN_CAPABILITY(x) HV_THREAD_ANNOTATION__(lock_returned(x))

/// Opts a function out of analysis. Reserved for the primitive wrappers in
/// this header; src/ code must restructure instead (zero suppressions).
#define NO_THREAD_SAFETY_ANALYSIS \
  HV_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace hillview {

/// std::mutex with a capability annotation, so -Wthread-safety can see lock
/// scopes. Lock/Unlock are exposed for the rare explicit handoff; prefer
/// MutexLock.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock over Mutex, the std::lock_guard equivalent the analysis
/// understands (scoped capability).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with Mutex. Wait atomically releases the mutex
/// while parked and reacquires it before returning, which the analysis models
/// as "held across the call" (REQUIRES) — the same contract as
/// absl::CondVar::Wait. There is deliberately no predicate overload: a
/// predicate lambda is analyzed as a separate function without the caller's
/// lock set, so guarded reads inside it would (correctly) warn. Write the
/// loop at the call site instead, where the analysis can see the lock:
///
///   MutexLock lock(mutex_);
///   while (!guarded_condition_) cv_.Wait(mutex_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Caller must hold `mu`; holds it again on return.
  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's scope
  }

  /// Timed variant: parks for at most `timeout_ms`. Returns false on timeout,
  /// true when notified (possibly spuriously — callers re-check their
  /// predicate in the surrounding while-loop either way). Same lock contract
  /// as Wait.
  bool WaitFor(Mutex& mu, double timeout_ms) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    auto outcome =
        cv_.wait_for(lock, std::chrono::duration<double, std::milli>(
                               timeout_ms > 0 ? timeout_ms : 0));
    lock.release();  // ownership stays with the caller's scope
    return outcome == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace hillview

#endif  // HILLVIEW_UTIL_THREAD_ANNOTATIONS_H_
