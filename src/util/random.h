#ifndef HILLVIEW_UTIL_RANDOM_H_
#define HILLVIEW_UTIL_RANDOM_H_

#include <cstdint>
#include <cmath>

namespace hillview {

/// Deterministic 64-bit PRNG (xoshiro256**). Hillview requires determinism for
/// fault-tolerant replay (§5.8): all randomized vizketches receive their seed
/// from the redo log, so a restarted worker recomputes identical summaries.
///
/// This class is intentionally minimal and header-only: it is used on the hot
/// sampling path of every sampled vizketch.
class Random {
 public:
  /// Seeds the four lanes of xoshiro256** from a single 64-bit seed using
  /// splitmix64, per the reference implementation's recommendation.
  explicit Random(uint64_t seed) {
    uint64_t x = seed;
    for (auto& lane : s_) {
      // splitmix64 step.
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      lane = z ^ (z >> 31);
    }
  }

  /// Uniform in [0, 2^64).
  uint64_t NextUint64() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0. Uses Lemire's multiply-shift
  /// rejection method (unbiased, one multiply in the common case).
  uint64_t NextUint64(uint64_t bound) {
    uint64_t x = NextUint64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t low = static_cast<uint64_t>(m);
    if (low < bound) {
      uint64_t threshold = -bound % bound;
      while (low < threshold) {
        x = NextUint64();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Geometric skip distance for Bernoulli(p) sampling: the number of items to
  /// skip before the next sampled item. Lets sampled sketches walk a column
  /// without a per-row coin flip (the paper's "sampling is efficient"
  /// requirement in §5.6).
  uint64_t NextGeometricSkip(double p) {
    if (p >= 1.0) return 0;
    if (p <= 0.0) return ~0ULL;
    double u = NextDouble();
    // Smallest k >= 0 with 1-(1-p)^(k+1) >= u.
    return static_cast<uint64_t>(std::floor(std::log1p(-u) / std::log1p(-p)));
  }

  /// Gaussian via Box-Muller (used only by data generators, not hot paths).
  double NextGaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t s_[4];
};

/// Geometric skip generator for Bernoulli(p) sampling with the log of the
/// failure probability precomputed: one NextDouble + one log per sample
/// instead of three logs. This is the hot path of every sampled vizketch.
class GeometricSkipper {
 public:
  GeometricSkipper(Random* rng, double p)
      : rng_(rng), always_(p >= 1.0), never_(p <= 0.0) {
    if (!always_ && !never_) inv_log_q_ = 1.0 / std::log1p(-p);
  }

  /// Rows to skip before the next sampled row.
  uint64_t Next() {
    if (always_) return 0;
    if (never_) return ~0ULL;
    double u = rng_->NextDouble();
    if (u <= 0.0) u = 0x1.0p-53;
    double skip = std::floor(std::log(u) * inv_log_q_);
    // log(u) <= 0 and inv_log_q_ < 0, so skip >= 0; cap absurd skips.
    if (skip >= 9e18) return ~0ULL;
    return static_cast<uint64_t>(skip);
  }

 private:
  Random* rng_;
  double inv_log_q_ = 0;
  bool always_;
  bool never_;
};

/// Stateless 64-bit mixer; used to derive per-partition seeds from a root seed
/// so that replay on a restarted worker is deterministic regardless of which
/// worker hosts the partition.
inline uint64_t MixSeed(uint64_t seed, uint64_t stream) {
  uint64_t z = seed ^ (stream * 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// 64-bit hash for strings/bytes (FNV-1a); used by sparse membership sets and
/// bottom-k sampling over distinct strings.
inline uint64_t HashBytes(const void* data, size_t len, uint64_t seed = 0) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 1469598103934665603ULL ^ seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  // Final avalanche so low bits are usable for bucketing.
  return MixSeed(h, 0x5bd1e995);
}

}  // namespace hillview

#endif  // HILLVIEW_UTIL_RANDOM_H_
