#ifndef HILLVIEW_UTIL_STATUS_H_
#define HILLVIEW_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

namespace hillview {

/// Error categories used across the library. Kept deliberately coarse: callers
/// mostly branch on ok()/!ok(); the code is for diagnostics and tests.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kOutOfRange,
  kCancelled,
  kFailedPrecondition,
  kUnavailable,   // soft state evicted / worker dead; caller should replay
  kDeadlineExceeded,  // RPC produced no (complete) response in time; the
                      // operation is idempotent, so the caller may retry
  kInternal,
};

/// Returns a short human-readable name ("OK", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// Arrow-style status object: cheap to return, carries a code and a message.
/// Functions that cannot fail return void; functions that can fail return
/// Status or Result<T>. Exceptions are not used for control flow.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value or an error Status. Modeled after arrow::Result.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or a (non-OK) Status keeps call sites
  /// terse: `return value;` / `return Status::IoError(...)`.
  Result(T value) : rep_(std::move(value)) {}                    // NOLINT
  Result(Status status) : rep_(std::move(status)) {}             // NOLINT

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(rep_);
  }

  /// Precondition: ok(). (Checked in tests via value_or-style accessors.)
  T& value() { return std::get<T>(rep_); }
  const T& value() const { return std::get<T>(rep_); }

  T value_or(T fallback) const {
    if (ok()) return std::get<T>(rep_);
    return fallback;
  }

  /// Moves the value out. Precondition: ok().
  T Take() { return std::move(std::get<T>(rep_)); }

 private:
  std::variant<T, Status> rep_;
};

/// Propagates a non-OK Status from an expression returning Status.
#define HV_RETURN_IF_ERROR(expr)                  \
  do {                                            \
    ::hillview::Status _hv_status = (expr);       \
    if (!_hv_status.ok()) return _hv_status;      \
  } while (false)

/// Evaluates an expression returning Result<T>; on error propagates the
/// Status, otherwise assigns the value to `lhs`.
#define HV_ASSIGN_OR_RETURN(lhs, expr)            \
  auto HV_CONCAT_(_hv_result, __LINE__) = (expr); \
  if (!HV_CONCAT_(_hv_result, __LINE__).ok())     \
    return HV_CONCAT_(_hv_result, __LINE__).status(); \
  lhs = HV_CONCAT_(_hv_result, __LINE__).Take()

#define HV_CONCAT_INNER_(a, b) a##b
#define HV_CONCAT_(a, b) HV_CONCAT_INNER_(a, b)

}  // namespace hillview

#endif  // HILLVIEW_UTIL_STATUS_H_
