#ifndef HILLVIEW_UTIL_THREAD_POOL_H_
#define HILLVIEW_UTIL_THREAD_POOL_H_

#include <algorithm>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace hillview {

/// Fixed-size worker pool. Hillview runs one leaf dataset per micropartition
/// and schedules their summarize() calls on a shared pool (§5.3: "there is a
/// thread pool that serves leafs with work to do").
///
/// Supports a high-priority lane used by cancellation messages, which must
/// bypass queued work (§5.3: cancellation "bypasses the queuing mechanisms").
///
/// Locking discipline (checked by -Wthread-safety): `mutex_` guards the
/// queue, the active-task count and the shutdown flag; both condition
/// variables are signalled against it, and every predicate over guarded
/// state is evaluated with the lock held.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads) {
    if (num_threads < 1) num_threads = 1;
    threads_.reserve(num_threads);
    for (int i = 0; i < num_threads; ++i) {
      threads_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() { Shutdown(); }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task at normal priority. Tasks run FIFO. Returns false when
  /// the pool is shut down and the task was dropped — callers coordinating
  /// through completion latches must then run the task themselves.
  bool Submit(std::function<void()> task) EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      if (shutdown_) return false;
      queue_.push_back(std::move(task));
    }
    cv_.NotifyOne();
    return true;
  }

  /// Enqueues a task ahead of all normal-priority work.
  void SubmitHighPriority(std::function<void()> task) EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      if (shutdown_) return;
      queue_.push_front(std::move(task));
    }
    cv_.NotifyOne();
  }

  /// Blocks until every task submitted so far has finished.
  void Wait() EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    while (!(queue_.empty() && active_ == 0)) idle_cv_.Wait(mutex_);
  }

  /// Stops accepting work, drains in-flight tasks, joins threads. Idempotent.
  void Shutdown() EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      if (shutdown_) return;
      shutdown_ = true;
    }
    cv_.NotifyAll();
    for (auto& t : threads_) {
      if (t.joinable()) t.join();
    }
  }

  int num_threads() const { return static_cast<int>(threads_.size()); }

 private:
  /// Blocks until a task is available (fills `*task`, increments `active_`,
  /// returns true) or the pool is shut down with an empty queue (returns
  /// false). Shutdown with queued work still hands out tasks: the pool
  /// drains. The predicate over `queue_`/`shutdown_` is evaluated under the
  /// lock the annotation requires.
  bool PopTask(std::function<void()>* task) REQUIRES(mutex_) {
    while (queue_.empty() && !shutdown_) cv_.Wait(mutex_);
    if (queue_.empty()) return false;
    *task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    return true;
  }

  void WorkerLoop() EXCLUDES(mutex_) {
    for (;;) {
      std::function<void()> task;
      {
        MutexLock lock(mutex_);
        if (!PopTask(&task)) return;
      }
      task();
      // Destroy the closure BEFORE reporting idle: task closures own shared
      // state (streams, merge trees, worker references), and a Wait()er must
      // be able to assume all of it is released — not merely finished — or a
      // closure holding the last reference to an object gets destroyed on
      // this pool thread after Wait() returned, racing teardown (worst case:
      // destroying this pool's own Worker here, a self-join).
      task = nullptr;
      {
        MutexLock lock(mutex_);
        --active_;
        if (queue_.empty() && active_ == 0) idle_cv_.NotifyAll();
      }
    }
  }

  Mutex mutex_;
  CondVar cv_;
  CondVar idle_cv_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mutex_);
  std::vector<std::thread> threads_;
  int active_ GUARDED_BY(mutex_) = 0;
  bool shutdown_ GUARDED_BY(mutex_) = false;
};

/// Runs `fn(0) .. fn(num_items - 1)` with the pool's threads *and the calling
/// thread working together*, returning once every item has finished. Items
/// are claimed from a shared counter, so uneven item costs still balance.
///
/// The caller participates, which is what makes this safe to run on the SAME
/// pool the caller occupies: the caller never parks waiting for queue
/// capacity, only for items that some thread is actively executing — so even
/// when every pool thread is blocked inside its own ParallelApply (nested
/// fan-out on a saturated pool), each caller drains its own items and
/// terminates. Helper tasks that wake up after all items are claimed exit
/// immediately. `fn` must not block on work queued behind it on the same
/// pool.
///
/// Item index order across threads is unspecified; callers needing a
/// deterministic result must combine per-item outputs by item index (write
/// into a pre-sized slot array), never by completion order.
inline void ParallelApply(ThreadPool* pool, int num_items,
                          const std::function<void(int)>& fn) {
  if (num_items <= 0) return;
  if (pool == nullptr || num_items == 1 || pool->num_threads() < 1) {
    for (int i = 0; i < num_items; ++i) fn(i);
    return;
  }
  // Heap-shared state: helper tasks can outlive this call (they may be
  // dequeued after every item is claimed and finished), so the latch cannot
  // live on the caller's stack. `fn` itself is only dereferenced for claimed
  // items, all of which complete before the caller returns.
  struct State {
    Mutex mu;
    CondVar done_cv;
    int next GUARDED_BY(mu) = 0;
    int done GUARDED_BY(mu) = 0;
    int total = 0;
    const std::function<void(int)>* fn = nullptr;
  };
  auto state = std::make_shared<State>();
  state->total = num_items;
  state->fn = &fn;
  auto run_items = [state] {
    for (;;) {
      int item;
      {
        MutexLock lock(state->mu);
        if (state->next >= state->total) return;
        item = state->next++;
      }
      (*state->fn)(item);
      MutexLock lock(state->mu);
      if (++state->done == state->total) state->done_cv.NotifyAll();
    }
  };
  // The caller is one worker already; extra helpers beyond num_items - 1
  // would only wake up to find nothing left. A shut-down pool drops the
  // submission and the caller simply runs everything itself.
  const int helpers = std::min(pool->num_threads(), num_items - 1);
  for (int h = 0; h < helpers; ++h) {
    if (!pool->Submit(run_items)) break;
  }
  run_items();
  MutexLock lock(state->mu);
  while (state->done < state->total) state->done_cv.Wait(state->mu);
}

}  // namespace hillview

#endif  // HILLVIEW_UTIL_THREAD_POOL_H_
