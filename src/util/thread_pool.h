#ifndef HILLVIEW_UTIL_THREAD_POOL_H_
#define HILLVIEW_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hillview {

/// Fixed-size worker pool. Hillview runs one leaf dataset per micropartition
/// and schedules their summarize() calls on a shared pool (§5.3: "there is a
/// thread pool that serves leafs with work to do").
///
/// Supports a high-priority lane used by cancellation messages, which must
/// bypass queued work (§5.3: cancellation "bypasses the queuing mechanisms").
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads) {
    if (num_threads < 1) num_threads = 1;
    threads_.reserve(num_threads);
    for (int i = 0; i < num_threads; ++i) {
      threads_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() { Shutdown(); }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task at normal priority. Tasks run FIFO. Returns false when
  /// the pool is shut down and the task was dropped — callers coordinating
  /// through completion latches must then run the task themselves.
  bool Submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (shutdown_) return false;
      queue_.push_back(std::move(task));
    }
    cv_.notify_one();
    return true;
  }

  /// Enqueues a task ahead of all normal-priority work.
  void SubmitHighPriority(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (shutdown_) return;
      queue_.push_front(std::move(task));
    }
    cv_.notify_one();
  }

  /// Blocks until every task submitted so far has finished.
  void Wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  }

  /// Stops accepting work, drains in-flight tasks, joins threads. Idempotent.
  void Shutdown() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (shutdown_) return;
      shutdown_ = true;
    }
    cv_.notify_all();
    for (auto& t : threads_) {
      if (t.joinable()) t.join();
    }
  }

  int num_threads() const { return static_cast<int>(threads_.size()); }

 private:
  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
        if (queue_.empty()) {
          if (shutdown_) return;
          continue;
        }
        task = std::move(queue_.front());
        queue_.pop_front();
        ++active_;
      }
      task();
      {
        std::lock_guard<std::mutex> lock(mutex_);
        --active_;
        if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
      }
    }
  }

  std::mutex mutex_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  int active_ = 0;
  bool shutdown_ = false;
};

}  // namespace hillview

#endif  // HILLVIEW_UTIL_THREAD_POOL_H_
