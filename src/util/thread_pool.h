#ifndef HILLVIEW_UTIL_THREAD_POOL_H_
#define HILLVIEW_UTIL_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace hillview {

/// Fixed-size worker pool. Hillview runs one leaf dataset per micropartition
/// and schedules their summarize() calls on a shared pool (§5.3: "there is a
/// thread pool that serves leafs with work to do").
///
/// Supports a high-priority lane used by cancellation messages, which must
/// bypass queued work (§5.3: cancellation "bypasses the queuing mechanisms").
///
/// Locking discipline (checked by -Wthread-safety): `mutex_` guards the
/// queue, the active-task count and the shutdown flag; both condition
/// variables are signalled against it, and every predicate over guarded
/// state is evaluated with the lock held.
class ThreadPool {
 public:
  explicit ThreadPool(int num_threads) {
    if (num_threads < 1) num_threads = 1;
    threads_.reserve(num_threads);
    for (int i = 0; i < num_threads; ++i) {
      threads_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() { Shutdown(); }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task at normal priority. Tasks run FIFO. Returns false when
  /// the pool is shut down and the task was dropped — callers coordinating
  /// through completion latches must then run the task themselves.
  bool Submit(std::function<void()> task) EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      if (shutdown_) return false;
      queue_.push_back(std::move(task));
    }
    cv_.NotifyOne();
    return true;
  }

  /// Enqueues a task ahead of all normal-priority work.
  void SubmitHighPriority(std::function<void()> task) EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      if (shutdown_) return;
      queue_.push_front(std::move(task));
    }
    cv_.NotifyOne();
  }

  /// Blocks until every task submitted so far has finished.
  void Wait() EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    while (!(queue_.empty() && active_ == 0)) idle_cv_.Wait(mutex_);
  }

  /// Stops accepting work, drains in-flight tasks, joins threads. Idempotent.
  void Shutdown() EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      if (shutdown_) return;
      shutdown_ = true;
    }
    cv_.NotifyAll();
    for (auto& t : threads_) {
      if (t.joinable()) t.join();
    }
  }

  int num_threads() const { return static_cast<int>(threads_.size()); }

 private:
  /// Blocks until a task is available (fills `*task`, increments `active_`,
  /// returns true) or the pool is shut down with an empty queue (returns
  /// false). Shutdown with queued work still hands out tasks: the pool
  /// drains. The predicate over `queue_`/`shutdown_` is evaluated under the
  /// lock the annotation requires.
  bool PopTask(std::function<void()>* task) REQUIRES(mutex_) {
    while (queue_.empty() && !shutdown_) cv_.Wait(mutex_);
    if (queue_.empty()) return false;
    *task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    return true;
  }

  void WorkerLoop() EXCLUDES(mutex_) {
    for (;;) {
      std::function<void()> task;
      {
        MutexLock lock(mutex_);
        if (!PopTask(&task)) return;
      }
      task();
      {
        MutexLock lock(mutex_);
        --active_;
        if (queue_.empty() && active_ == 0) idle_cv_.NotifyAll();
      }
    }
  }

  Mutex mutex_;
  CondVar cv_;
  CondVar idle_cv_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mutex_);
  std::vector<std::thread> threads_;
  int active_ GUARDED_BY(mutex_) = 0;
  bool shutdown_ GUARDED_BY(mutex_) = false;
};

}  // namespace hillview

#endif  // HILLVIEW_UTIL_THREAD_POOL_H_
