#ifndef HILLVIEW_UTIL_SERIALIZE_H_
#define HILLVIEW_UTIL_SERIALIZE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/status.h"

namespace hillview {

/// Growable byte sink used to serialize vizketch summaries for transport
/// across (simulated) machine boundaries. The simulated cluster counts these
/// bytes to reproduce the paper's root-bandwidth measurements (Fig 5 bottom).
///
/// The format is little-endian, unaligned, with no framing: each summary type
/// defines its own layout via Serialize/Deserialize.
class ByteWriter {
 public:
  void WriteU8(uint8_t v) { Append(&v, 1); }
  void WriteU32(uint32_t v) { Append(&v, sizeof(v)); }
  void WriteU64(uint64_t v) { Append(&v, sizeof(v)); }
  void WriteI32(int32_t v) { Append(&v, sizeof(v)); }
  void WriteI64(int64_t v) { Append(&v, sizeof(v)); }
  void WriteDouble(double v) { Append(&v, sizeof(v)); }
  void WriteBool(bool v) { WriteU8(v ? 1 : 0); }

  void WriteString(const std::string& s) {
    WriteU32(static_cast<uint32_t>(s.size()));
    Append(s.data(), s.size());
  }

  template <typename T>
  void WritePodVector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    WriteU32(static_cast<uint32_t>(v.size()));
    Append(v.data(), v.size() * sizeof(T));
  }

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  size_t size() const { return bytes_.size(); }

  std::vector<uint8_t> Take() { return std::move(bytes_); }

 private:
  void Append(const void* data, size_t len) {
    if (len == 0) return;  // an empty vector's data() may be null
    const auto* p = static_cast<const uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + len);
  }

  std::vector<uint8_t> bytes_;
};

/// Bounds-checked reader over a serialized buffer. All accessors return
/// Status so that corrupted or truncated messages surface as errors rather
/// than undefined behavior (the simulated network can inject truncation in
/// fault-injection tests).
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<uint8_t>& bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  Status ReadU8(uint8_t* out) { return Copy(out, 1); }
  Status ReadU32(uint32_t* out) { return Copy(out, sizeof(*out)); }
  Status ReadU64(uint64_t* out) { return Copy(out, sizeof(*out)); }
  Status ReadI32(int32_t* out) { return Copy(out, sizeof(*out)); }
  Status ReadI64(int64_t* out) { return Copy(out, sizeof(*out)); }
  Status ReadDouble(double* out) { return Copy(out, sizeof(*out)); }

  Status ReadBool(bool* out) {
    uint8_t v = 0;
    HV_RETURN_IF_ERROR(ReadU8(&v));
    *out = (v != 0);
    return Status::OK();
  }

  Status ReadString(std::string* out) {
    uint32_t len = 0;
    HV_RETURN_IF_ERROR(ReadU32(&len));
    if (len > Remaining()) return Truncated();
    out->assign(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return Status::OK();
  }

  /// Reads an element count (written via WriteU32) and rejects counts that
  /// cannot fit in the remaining bytes, assuming each element occupies at
  /// least `min_element_bytes` on the wire. This keeps a corrupted or
  /// bit-flipped count from driving a huge allocation before the per-element
  /// reads would fail anyway.
  Status ReadCount(uint32_t* out, size_t min_element_bytes = 1) {
    HV_RETURN_IF_ERROR(ReadU32(out));
    if (min_element_bytes == 0) min_element_bytes = 1;
    if (*out > Remaining() / min_element_bytes) return Truncated();
    return Status::OK();
  }

  template <typename T>
  Status ReadPodVector(std::vector<T>* out) {
    static_assert(std::is_trivially_copyable_v<T>);
    uint32_t n = 0;
    HV_RETURN_IF_ERROR(ReadU32(&n));
    size_t bytes = static_cast<size_t>(n) * sizeof(T);
    if (bytes > Remaining()) return Truncated();
    out->resize(n);
    // n == 0 leaves out->data() null; memcpy with a null operand is UB even
    // for zero lengths.
    if (bytes > 0) std::memcpy(out->data(), data_ + pos_, bytes);
    pos_ += bytes;
    return Status::OK();
  }

  size_t Remaining() const { return size_ - pos_; }
  bool AtEnd() const { return pos_ == size_; }

 private:
  Status Copy(void* out, size_t len) {
    if (len > Remaining()) return Truncated();
    std::memcpy(out, data_ + pos_, len);
    pos_ += len;
    return Status::OK();
  }

  static Status Truncated() {
    return Status::OutOfRange("truncated serialized message");
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace hillview

#endif  // HILLVIEW_UTIL_SERIALIZE_H_
