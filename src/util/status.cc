#include "util/status.h"

namespace hillview {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result = StatusCodeName(code_);
  result += ": ";
  result += message_;
  return result;
}

}  // namespace hillview
