#ifndef HILLVIEW_UTIL_STOPWATCH_H_
#define HILLVIEW_UTIL_STOPWATCH_H_

#include <chrono>

namespace hillview {

/// Wall-clock stopwatch used by benchmarks and progressive-result timing.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace hillview

#endif  // HILLVIEW_UTIL_STOPWATCH_H_
