#include "workload/questions.h"

#include <algorithm>
#include <cmath>

namespace hillview {
namespace workload {

namespace {

/// Sorted distinct values of a small categorical column — the labels of its
/// one-bucket-per-value histogram buckets.
Result<std::vector<std::string>> BucketLabels(Spreadsheet* sheet,
                                              const std::string& column) {
  HV_ASSIGN_OR_RETURN(BottomKResult bottomk, sheet->DistinctStrings(column));
  std::vector<std::string> labels;
  labels.reserve(bottomk.items.size());
  for (const auto& [hash, value] : bottomk.items) labels.push_back(value);
  std::sort(labels.begin(), labels.end());
  return labels;
}

/// Mean Y-bucket index of column X's bucket `x` — a monotone proxy for the
/// mean of Y within that group (what an operator reads off a stacked
/// histogram by eye).
double MeanBucketIndex(const Histogram2DResult& r, int x) {
  double weighted = 0, total = 0;
  for (int y = 0; y < r.y_buckets; ++y) {
    weighted += static_cast<double>(r.Count(x, y)) * y;
    total += static_cast<double>(r.Count(x, y));
  }
  return total > 0 ? weighted / total : std::nan("");
}

/// Index of the group with the smallest/largest mean Y bucket (among groups
/// with enough data to judge).
int ArgExtremeMeanBucket(const Histogram2DResult& r, bool smallest,
                         int64_t min_rows = 10) {
  int best = -1;
  double best_mean = 0;
  for (int x = 0; x < r.x_buckets; ++x) {
    if (r.x_counts[x] < min_rows) continue;
    double mean = MeanBucketIndex(r, x);
    if (std::isnan(mean)) continue;
    if (best < 0 || (smallest ? mean < best_mean : mean > best_mean)) {
      best = x;
      best_mean = mean;
    }
  }
  return best;
}

/// The most frequent value of a categorical column (one heavy-hitters
/// action).
Result<std::string> TopValue(Spreadsheet* sheet, const std::string& column,
                             int rank = 0) {
  HV_ASSIGN_OR_RETURN(auto items, sheet->HeavyHitters(column, 20));
  if (static_cast<int>(items.size()) <= rank) {
    return Status::NotFound("not enough heavy hitters in " + column);
  }
  return std::get<std::string>(items[rank].value);
}

/// Count of rows in a view (one action).
struct Script {
  Spreadsheet* sheet;
  QuestionOutcome out;

  /// Records `n` operator actions (menu choice / click / drag).
  void Actions(int n) { out.actions += n; }

  void Answer(std::string text) {
    out.answer = std::move(text);
    out.answered = true;
    out.ok = true;
  }

  void NotAnswerable(std::string why) {
    out.answer = std::move(why);
    out.answered = false;
    out.ok = true;
  }

  void Fail(const Status& s) {
    out.ok = false;
    out.error = s.ToString();
  }
};

#define Q_ASSIGN(lhs, expr)           \
  auto lhs##_result = (expr);         \
  if (!lhs##_result.ok()) {           \
    script.Fail(lhs##_result.status()); \
    return script.out;                \
  }                                   \
  auto lhs = lhs##_result.Take()

QuestionOutcome RunQ1(Spreadsheet* sheet) {
  // Late = departure delay > 15 min; compare UA and AA.
  Script script{sheet, {}};
  int64_t late[2];
  const char* airlines[2] = {"UA", "AA"};
  for (int i = 0; i < 2; ++i) {
    Q_ASSIGN(view, sheet->FilterEquals("Airline", airlines[i]));
    script.Actions(1);
    Q_ASSIGN(late_view, view.FilterRange("DepDelay", 15, 1e9));
    script.Actions(1);
    Q_ASSIGN(count, late_view.RowCount());
    script.Actions(1);
    late[i] = count;
  }
  script.Answer(late[0] > late[1] ? "UA has more late flights"
                                  : "AA has more late flights");
  return script.out;
}

QuestionOutcome RunQ2(Spreadsheet* sheet) {
  Script script{sheet, {}};
  Q_ASSIGN(labels, BucketLabels(sheet, "Airline"));
  Q_ASSIGN(stacked, sheet->StackedHistogram("Airline", "DepDelay", true));
  script.Actions(2);
  int best = ArgExtremeMeanBucket(stacked, /*smallest=*/true);
  if (best < 0 || best >= static_cast<int>(labels.size())) {
    script.NotAnswerable("no airline with enough data");
    return script.out;
  }
  script.Answer("least departure delay: " + labels[best]);
  return script.out;
}

QuestionOutcome RunQ3(Spreadsheet* sheet) {
  Script script{sheet, {}};
  Q_ASSIGN(aa, sheet->FilterEquals("Airline", "AA"));
  script.Actions(1);
  Q_ASSIGN(flight, aa.FilterRange("FlightNumber", 11, 11));
  script.Actions(1);
  Q_ASSIGN(range, flight.ColumnRange("DepDelay"));
  script.Actions(2);  // histogram + hover for the typical value
  if (range.present_count == 0) {
    script.NotAnswerable("AA flight 11 does not occur in this dataset");
    return script.out;
  }
  script.Answer("typical delay of AA 11: " +
                std::to_string(range.Mean()) + " min over " +
                std::to_string(range.present_count) + " flights");
  return script.out;
}

QuestionOutcome RunQ4(Spreadsheet* sheet) {
  Script script{sheet, {}};
  Q_ASSIGN(ny, sheet->FilterEquals("OriginState", "NY"));
  script.Actions(1);
  Q_ASSIGN(count, ny.RowCount());
  Q_ASSIGN(date_range, ny.ColumnRange("FlightDate"));
  script.Actions(2);
  double days = (date_range.max - date_range.min) / 86400000.0 + 1;
  // Partial (like the paper): the spreadsheet cannot cleanly separate dates,
  // so the answer is an average, not a per-day table.
  script.Answer("NY departures: ~" + std::to_string(count / days) +
                " flights/day on average (per-day split not expressible)");
  return script.out;
}

QuestionOutcome RunQ5(Spreadsheet* sheet) {
  Script script{sheet, {}};
  Q_ASSIGN(origin, TopValue(sheet, "Origin"));
  Q_ASSIGN(dest_a, TopValue(sheet, "Dest", 0));
  Q_ASSIGN(dest_b, TopValue(sheet, "Dest", 1));
  script.Actions(2);  // two heavy-hitter views
  double mean[2];
  const std::string dests[2] = {dest_a, dest_b};
  for (int i = 0; i < 2; ++i) {
    Q_ASSIGN(from, sheet->FilterEquals("Origin", origin));
    Q_ASSIGN(pair, from.FilterEquals("Dest", dests[i]));
    Q_ASSIGN(range, pair.ColumnRange("ArrDelay"));
    script.Actions(2);
    mean[i] = range.present_count > 0 ? range.Mean() : std::nan("");
  }
  script.Answer("from " + origin + ": " +
                (mean[0] <= mean[1] ? dests[0] : dests[1]) +
                " has the lower mean arrival delay");
  return script.out;
}

QuestionOutcome RunQ6(Spreadsheet* sheet) {
  Script script{sheet, {}};
  Q_ASSIGN(a, TopValue(sheet, "Origin", 0));
  Q_ASSIGN(b, TopValue(sheet, "Origin", 1));
  script.Actions(1);
  double distinct[2];
  const std::string origins[2] = {a, b};
  for (int i = 0; i < 2; ++i) {
    Q_ASSIGN(from, sheet->FilterEquals("Origin", origins[i]));
    Q_ASSIGN(d, from.DistinctCount("Dest"));
    script.Actions(2);
    distinct[i] = d;
  }
  // Partial, as in the paper: the spreadsheet does not merge/deduplicate the
  // two destination sets, so only a bound is visible.
  script.Answer("destinations from both " + a + " and " + b + ": at most " +
                std::to_string(static_cast<int>(
                    std::min(distinct[0], distinct[1]))) +
                " (set intersection not expressible)");
  return script.out;
}

QuestionOutcome RunQ7(Spreadsheet* sheet) {
  Script script{sheet, {}};
  Q_ASSIGN(derived, sheet->WithColumn(
      "DepHour", DataKind::kInt, {"CrsDepTime"},
      [](const std::vector<Value>& in) -> Value {
        const auto* t = std::get_if<int64_t>(&in[0]);
        if (t == nullptr) return std::monostate{};
        return *t / 100;
      }));
  script.Actions(1);
  Q_ASSIGN(stacked, derived.StackedHistogram("DepHour", "DepDelay", true));
  script.Actions(1);
  int best = ArgExtremeMeanBucket(stacked, /*smallest=*/true, 100);
  script.Answer("best hour to fly: ~" + std::to_string(best) + ":00");
  return script.out;
}

QuestionOutcome RunQ8(Spreadsheet* sheet) {
  Script script{sheet, {}};
  Q_ASSIGN(labels, BucketLabels(sheet, "OriginState"));
  Q_ASSIGN(stacked, sheet->StackedHistogram("OriginState", "DepDelay", true));
  script.Actions(2);
  int worst = ArgExtremeMeanBucket(stacked, /*smallest=*/false, 50);
  if (worst < 0 || worst >= static_cast<int>(labels.size())) {
    script.NotAnswerable("no state with enough data");
    return script.out;
  }
  script.Answer("worst departure delay: " + labels[worst]);
  return script.out;
}

QuestionOutcome RunQ9(Spreadsheet* sheet) {
  Script script{sheet, {}};
  Q_ASSIGN(cancelled, sheet->FilterRange("Cancelled", 1, 1));
  Q_ASSIGN(items, cancelled.HeavyHitters("Airline", 10));
  script.Actions(1);  // the paper answered this with one action
  if (items.empty()) {
    script.NotAnswerable("no cancellations found");
    return script.out;
  }
  script.Answer("most cancellations: " +
                std::get<std::string>(items[0].value));
  return script.out;
}

QuestionOutcome RunQ10(Spreadsheet* sheet) {
  Script script{sheet, {}};
  Q_ASSIGN(hist, sheet->Histogram("FlightDate", true));
  script.Actions(1);
  int best = 0;
  for (size_t b = 0; b < hist.counts.size(); ++b) {
    if (hist.counts[b] > hist.counts[best]) best = static_cast<int>(b);
  }
  // Partial, like the paper: a bucket spans multiple days.
  script.Answer("busiest date bucket: #" + std::to_string(best) + " of " +
                std::to_string(hist.counts.size()) +
                " (single-day resolution not reachable in one chart)");
  return script.out;
}

QuestionOutcome RunQ11(Spreadsheet* sheet) {
  Script script{sheet, {}};
  Q_ASSIGN(page, sheet->TableView(RecordOrder({{"Distance", false}}),
                                  {"Origin", "Dest"}, std::nullopt, 1));
  script.Actions(1);
  if (page.rows.empty()) {
    script.NotAnswerable("empty table");
    return script.out;
  }
  script.Answer("longest flight: " +
                ValueToString(page.rows[0].values[0]) + " miles, " +
                ValueToString(page.rows[0].values[1]) + " -> " +
                ValueToString(page.rows[0].values[2]));
  return script.out;
}

QuestionOutcome RunQ12(Spreadsheet* sheet) {
  Script script{sheet, {}};
  Q_ASSIGN(airport, TopValue(sheet, "Origin"));
  script.Actions(1);
  double mean[2];
  const char* airlines[2] = {"UA", "AA"};
  for (int i = 0; i < 2; ++i) {
    Q_ASSIGN(at, sheet->FilterEquals("Origin", airport));
    Q_ASSIGN(airline, at.FilterEquals("Airline", airlines[i]));
    Q_ASSIGN(range, airline.ColumnRange("TaxiOut"));
    script.Actions(2);
    mean[i] = range.present_count > 0 ? range.Mean() : std::nan("");
  }
  double diff = std::fabs(mean[0] - mean[1]);
  script.Answer("taxi-out at " + airport + ": UA " + std::to_string(mean[0]) +
                " vs AA " + std::to_string(mean[1]) + " min; difference " +
                (diff > 2.0 ? "looks significant" : "is not significant"));
  return script.out;
}

QuestionOutcome RunQ13(Spreadsheet* sheet) {
  Script script{sheet, {}};
  Q_ASSIGN(labels, BucketLabels(sheet, "DestState"));
  Q_ASSIGN(withweather, sheet->FilterRange("WeatherDelay", 0.01, 1e9));
  script.Actions(1);
  Q_ASSIGN(stacked,
           withweather.StackedHistogram("DestState", "WeatherDelay", true));
  script.Actions(1);
  int best = ArgExtremeMeanBucket(stacked, true, 20);
  int worst = ArgExtremeMeanBucket(stacked, false, 20);
  if (best < 0 || worst < 0) {
    script.NotAnswerable("not enough weather-delayed flights");
    return script.out;
  }
  script.Answer("weather delays: best " + labels[best] + ", worst " +
                labels[worst]);
  return script.out;
}

QuestionOutcome RunQ14(Spreadsheet* sheet) {
  Script script{sheet, {}};
  Q_ASSIGN(hawaii, sheet->FilterEquals("DestState", "HI"));
  script.Actions(1);
  Q_ASSIGN(hist, hawaii.Histogram("Airline", true));
  script.Actions(1);
  Q_ASSIGN(labels, BucketLabels(sheet, "Airline"));
  int flying = 0;
  std::string names;
  for (size_t b = 0; b < hist.counts.size() && b < labels.size(); ++b) {
    if (hist.counts[b] > 0) {
      ++flying;
      if (!names.empty()) names += ",";
      names += labels[b];
    }
  }
  script.Answer(std::to_string(flying) + " airlines fly to HI: " + names);
  return script.out;
}

QuestionOutcome RunQ15(Spreadsheet* sheet) {
  Script script{sheet, {}};
  Q_ASSIGN(hawaii, sheet->FilterEquals("OriginState", "HI"));
  script.Actions(1);
  Q_ASSIGN(labels, BucketLabels(&hawaii, "Origin"));
  Q_ASSIGN(stacked, hawaii.StackedHistogram("Origin", "DepDelay", true));
  script.Actions(2);
  int best = ArgExtremeMeanBucket(stacked, true, 20);
  if (best < 0 || best >= static_cast<int>(labels.size())) {
    script.NotAnswerable("not enough HI departures");
    return script.out;
  }
  script.Answer("best HI departure delays: " + labels[best]);
  return script.out;
}

QuestionOutcome RunQ16(Spreadsheet* sheet) {
  Script script{sheet, {}};
  Q_ASSIGN(a, TopValue(sheet, "Origin", 0));
  Q_ASSIGN(b, TopValue(sheet, "Origin", 1));
  script.Actions(1);
  Q_ASSIGN(from, sheet->FilterEquals("Origin", a));
  Q_ASSIGN(pair, from.FilterEquals("Dest", b));
  script.Actions(2);
  Q_ASSIGN(count, pair.RowCount());
  Q_ASSIGN(dates, pair.ColumnRange("FlightDate"));
  script.Actions(1);
  double days = (dates.max - dates.min) / 86400000.0 + 1;
  script.Answer(a + " -> " + b + ": ~" +
                std::to_string(count / std::max(1.0, days)) + " flights/day");
  return script.out;
}

QuestionOutcome RunQ17(Spreadsheet* sheet) {
  Script script{sheet, {}};
  Q_ASSIGN(a, TopValue(sheet, "Origin", 0));
  Q_ASSIGN(b, TopValue(sheet, "Origin", 1));
  script.Actions(1);
  Q_ASSIGN(from, sheet->FilterEquals("Origin", a));
  Q_ASSIGN(pair, from.FilterEquals("Dest", b));
  script.Actions(2);
  Q_ASSIGN(stacked, pair.StackedHistogram("DayOfWeek", "DepDelay", true));
  script.Actions(1);
  int best = ArgExtremeMeanBucket(stacked, true, 5);
  if (best < 0) {
    script.NotAnswerable("route too thin to judge weekdays");
    return script.out;
  }
  script.Answer("least delay " + a + " -> " + b + " on weekday " +
                std::to_string(best + 1));
  return script.out;
}

QuestionOutcome RunQ18(Spreadsheet* sheet) {
  Script script{sheet, {}};
  Q_ASSIGN(december, sheet->FilterRange("Month", 12, 12));
  script.Actions(1);
  Q_ASSIGN(hist, december.Histogram("DayOfMonth", true));
  script.Actions(1);
  int most = 0, least = 0;
  for (size_t b = 0; b < hist.counts.size(); ++b) {
    if (hist.counts[b] > hist.counts[most]) most = static_cast<int>(b);
    if (hist.counts[b] < hist.counts[least]) least = static_cast<int>(b);
  }
  script.Answer("December: most flights day " + std::to_string(most + 1) +
                ", least day " + std::to_string(least + 1));
  return script.out;
}

QuestionOutcome RunQ19(Spreadsheet* sheet) {
  Script script{sheet, {}};
  Q_ASSIGN(labels, BucketLabels(sheet, "Airline"));
  Q_ASSIGN(stacked, sheet->StackedHistogram("Airline", "FlightDate", true));
  script.Actions(2);
  int stopped = 0;
  for (int x = 0;
       x < stacked.x_buckets && x < static_cast<int>(labels.size()); ++x) {
    // An airline "stopped flying" if its last active date bucket is before
    // the dataset's final bucket.
    int last = -1;
    for (int y = 0; y < stacked.y_buckets; ++y) {
      if (stacked.Count(x, y) > 0) last = y;
    }
    if (last >= 0 && last < stacked.y_buckets - 1) ++stopped;
  }
  script.Answer(std::to_string(stopped) +
                " airlines stopped flying within the dataset period");
  return script.out;
}

QuestionOutcome RunQ20(Spreadsheet* sheet) {
  Script script{sheet, {}};
  // The operator looks for a way to identify flights that departed but never
  // arrived; the schema has no arrival-time/diverted column, so after
  // inspecting the available columns the question is unanswerable — exactly
  // the paper's outcome (the dataset "lacks the downed flights on 9/11").
  auto arr = sheet->ColumnRange("ArrTime");
  script.Actions(1);
  auto diverted = sheet->ColumnRange("Diverted");
  script.Actions(1);
  bool arr_present = arr.ok() && arr.value().TotalRows() > 0;
  bool div_present = diverted.ok() && diverted.value().TotalRows() > 0;
  if (!arr_present && !div_present) {
    script.NotAnswerable(
        "dataset has no arrival-event column; took-off-never-landed flights "
        "are not recorded");
    return script.out;
  }
  script.Answer("would compare DepTime-present vs ArrTime-missing rows");
  return script.out;
}

}  // namespace

const char* QuestionText(int q) {
  static const char* kQuestions[] = {
      "Who has more late flights, UA or AA?",
      "Which airline has the least departure time delay?",
      "What is the typical delay of AA flight 11?",
      "How many flights leave NY each day?",
      "Is it better to fly from SFO to JFK or EWR?",
      "How many destinations have direct flights from both SFO and SJC?",
      "What is the best hour of the day to fly?",
      "Which state has the worst departure delay?",
      "Which airline has the most flight cancellations?",
      "Which date had the most flights?",
      "What is the longest flight in distance?",
      "Is there a significant difference between taxi times of UA or AA on "
      "the same airport?",
      "Which city has the best and worst weather delays?",
      "Which airlines fly to Hawaii?",
      "Which Hawaii airport has the best departure delays?",
      "How many flights per day are there between LAX and SFO?",
      "Which weekday has the least delay flying from ORD to EWR?",
      "Which day in December has the most and least flights?",
      "How many airlines stopped flying within the dataset period?",
      "How many flights took off but never landed?"};
  return (q >= 1 && q <= kNumQuestions) ? kQuestions[q - 1] : "?";
}

QuestionOutcome AnswerQuestion(Spreadsheet* sheet, int q) {
  switch (q) {
    case 1: return RunQ1(sheet);
    case 2: return RunQ2(sheet);
    case 3: return RunQ3(sheet);
    case 4: return RunQ4(sheet);
    case 5: return RunQ5(sheet);
    case 6: return RunQ6(sheet);
    case 7: return RunQ7(sheet);
    case 8: return RunQ8(sheet);
    case 9: return RunQ9(sheet);
    case 10: return RunQ10(sheet);
    case 11: return RunQ11(sheet);
    case 12: return RunQ12(sheet);
    case 13: return RunQ13(sheet);
    case 14: return RunQ14(sheet);
    case 15: return RunQ15(sheet);
    case 16: return RunQ16(sheet);
    case 17: return RunQ17(sheet);
    case 18: return RunQ18(sheet);
    case 19: return RunQ19(sheet);
    case 20: return RunQ20(sheet);
    default: {
      QuestionOutcome out;
      out.error = "unknown question";
      return out;
    }
  }
}

}  // namespace workload
}  // namespace hillview
