#ifndef HILLVIEW_WORKLOAD_FLIGHTS_H_
#define HILLVIEW_WORKLOAD_FLIGHTS_H_

#include <cstdint>
#include <vector>

#include "core/dataset.h"
#include "storage/table.h"

namespace hillview {
namespace workload {

/// Synthetic stand-in for the US DoT on-time flight performance dataset the
/// paper evaluates on ([71]: 130M rows, 110 columns, 20 years; numerical,
/// categorical, text, and undefined values).
///
/// The generator reproduces the statistical features the evaluation depends
/// on, not the true values:
///  - skewed categorical columns (airlines ~ Zipf over 18 carriers,
///    airports ~ Zipf over ~350 codes, states over 53);
///  - heavy-tailed delay columns with negative values and missing entries
///    (cancelled flights have no departure/arrival data);
///  - dates spanning 20 years; flight numbers as free-ish text/ints;
///  - optional filler metric columns to reach a target column count, so
///    cell-count scaling (rows × columns) matches the paper's arithmetic.
///
/// Generation is deterministic in (seed, partition): the same partition can
/// be regenerated after eviction or worker restarts, standing in for an
/// immutable storage snapshot (§5.4).
struct FlightsOptions {
  /// Extra filler numeric columns ("metric_00"...) beyond the ~20 core
  /// columns. The paper's table has 110 columns; the default keeps memory
  /// laptop-friendly while staying schema-faithful. Set to 90 to match.
  int filler_columns = 0;
};

/// Column names of the core schema (used by operations and examples).
/// Year, Month, DayOfMonth, DayOfWeek, FlightDate, Airline, FlightNumber,
/// Origin, OriginState, Dest, DestState, CrsDepTime, DepTime, DepDelay,
/// ArrDelay, TaxiIn, TaxiOut, Cancelled, Distance, AirTime, WeatherDelay.
Schema FlightsSchema(const FlightsOptions& options = {});

/// Generates one micropartition of `rows` flights deterministically.
TablePtr GenerateFlights(uint32_t rows, uint64_t seed,
                         const FlightsOptions& options = {});

/// Partition loaders for a dataset of `total_rows`, `rows_per_partition`
/// each, for RootSession::LoadDataSet. Loader i regenerates partition i on
/// demand (the "re-read from the repository" path of §5.7).
std::vector<LocalDataSet::Loader> FlightsLoaders(
    uint64_t total_rows, uint32_t rows_per_partition, uint64_t seed,
    const FlightsOptions& options = {});

/// File-backed variant: spills each partition to `dir/flights_NNNN.hvcf`
/// (skipping files that already exist — the spill is deterministic in
/// (seed, partition), so an existing file is the same bytes) and returns
/// loaders that reopen the files through `backend`. This is the full
/// repository path of §5.4: with StorageBackend::kMmap the partitions are
/// served zero-copy out of the page cache and eviction costs nothing for
/// resident pages; with kHeap plus `read_options.bytes_per_second` the
/// loaders model a cold medium. Returns an error status if any spill fails.
Result<std::vector<LocalDataSet::Loader>> FlightsFileLoaders(
    const std::string& dir, uint64_t total_rows, uint32_t rows_per_partition,
    uint64_t seed, StorageBackend backend, ReadOptions read_options = {},
    const FlightsOptions& options = {});

}  // namespace workload
}  // namespace hillview

#endif  // HILLVIEW_WORKLOAD_FLIGHTS_H_
