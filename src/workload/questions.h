#ifndef HILLVIEW_WORKLOAD_QUESTIONS_H_
#define HILLVIEW_WORKLOAD_QUESTIONS_H_

#include <string>
#include <vector>

#include "spreadsheet/spreadsheet.h"

namespace hillview {
namespace workload {

/// The case-study questions of §7.5 (Fig 10), answered by scripted operator
/// sessions against the public Spreadsheet API. Each script performs the
/// spreadsheet actions an analyst would (filter, chart, heavy hitters, sort)
/// and extracts a short textual answer; the number of actions is counted the
/// way the paper counts them (menu choice / click / selection = 1 action).
inline constexpr int kNumQuestions = 20;

/// The question text, "Q1".."Q20" (Fig 10).
const char* QuestionText(int q);

struct QuestionOutcome {
  int actions = 0;
  std::string answer;
  bool answered = false;
  bool ok = false;  // script executed without errors
  std::string error;
};

/// Runs the scripted session for question `q` (1-based) on a flights
/// spreadsheet. Q20 is expected to report "not answerable from this data",
/// like the paper's operator concluded.
QuestionOutcome AnswerQuestion(Spreadsheet* sheet, int q);

}  // namespace workload
}  // namespace hillview

#endif  // HILLVIEW_WORKLOAD_QUESTIONS_H_
