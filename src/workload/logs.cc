#include "workload/logs.h"

#include <cmath>
#include <cstdio>

#include "util/random.h"

namespace hillview {
namespace workload {

namespace {

const char* kServerNames[] = {"Gandalf",  "Frodo",   "Samwise", "Aragorn",
                              "Legolas",  "Gimli",   "Boromir", "Merry",
                              "Pippin",   "Elrond",  "Galadriel", "Saruman",
                              "Denethor", "Faramir", "Eowyn",   "Theoden"};
constexpr int kNumServerNames = 16;

const char* kLevels[] = {"DEBUG", "INFO", "WARN", "ERROR", "FATAL"};
const double kLevelWeights[] = {0.30, 0.55, 0.10, 0.045, 0.005};

const char* kComponents[] = {"scheduler", "storage", "network", "auth",
                             "frontend", "compactor", "replicator", "gc"};
constexpr int kNumComponents = 8;

const char* kMessageTemplates[] = {
    "request completed", "request failed", "retrying operation",
    "connection reset by peer", "slow query detected",
    "checkpoint written", "lease expired", "quota exceeded",
    "election started", "snapshot installed"};
constexpr int kNumTemplates = 10;

constexpr int64_t kMillisPerMonth = 30LL * 86400000LL;
constexpr int64_t kLogEpoch = 1546300800000LL;  // 2019-01-01

std::string ServerName(int i) {
  std::string base = kServerNames[i % kNumServerNames];
  if (i >= kNumServerNames) {
    // Appended piecewise: gcc 12's -Wrestrict misfires on the
    // `"-" + std::to_string(...)` temporary once surrounding code inlines.
    base += '-';
    base += std::to_string(i / kNumServerNames);
  }
  return base;
}

}  // namespace

Schema LogsSchema(const LogsOptions& options) {
  std::vector<ColumnDescription> cols = {
      {"Timestamp", DataKind::kDate},    {"Server", DataKind::kCategory},
      {"Level", DataKind::kCategory},    {"Component", DataKind::kCategory},
      {"Message", DataKind::kString},    {"LatencyMs", DataKind::kDouble},
      {"CpuPercent", DataKind::kDouble}, {"MemoryMb", DataKind::kDouble},
  };
  for (int f = 0; f < options.filler_columns; ++f) {
    char name[24];
    std::snprintf(name, sizeof(name), "counter_%02d", f);
    cols.push_back({name, DataKind::kDouble});
  }
  return Schema(std::move(cols));
}

TablePtr GenerateLogs(uint32_t rows, uint64_t seed,
                      const LogsOptions& options) {
  Random rng(seed);
  Schema schema = LogsSchema(options);
  std::vector<ColumnBuilder> builders;
  for (const auto& d : schema.columns()) builders.emplace_back(d.kind);

  for (uint32_t r = 0; r < rows; ++r) {
    int64_t ts = kLogEpoch + static_cast<int64_t>(rng.NextUint64(kMillisPerMonth));
    int server = static_cast<int>(rng.NextUint64(options.num_servers));
    double u = rng.NextDouble();
    int level = 0;
    double acc = 0;
    for (int l = 0; l < 5; ++l) {
      acc += kLevelWeights[l];
      if (u < acc) {
        level = l;
        break;
      }
    }
    int component = static_cast<int>(rng.NextUint64(kNumComponents));
    int tmpl = static_cast<int>(rng.NextUint64(kNumTemplates));
    std::string message = std::string(kMessageTemplates[tmpl]) + " op=" +
                          std::to_string(rng.NextUint64(512));
    double latency = std::exp(rng.NextGaussian() * 1.1 + 2.0);
    double cpu = std::fmin(100.0, std::fabs(rng.NextGaussian()) * 25.0);
    double memory = 512.0 + std::fabs(rng.NextGaussian()) * 2048.0;

    int c = 0;
    builders[c++].AppendDate(ts);
    builders[c++].AppendString(ServerName(server));
    builders[c++].AppendString(kLevels[level]);
    builders[c++].AppendString(kComponents[component]);
    builders[c++].AppendString(message);
    builders[c++].AppendDouble(latency);
    builders[c++].AppendDouble(cpu);
    builders[c++].AppendDouble(memory);
    for (int f = 0; f < options.filler_columns; ++f) {
      builders[c++].AppendDouble(rng.NextDouble() * 1000.0);
    }
  }

  std::vector<ColumnPtr> columns;
  for (auto& b : builders) columns.push_back(b.Finish());
  return Table::Create(std::move(schema), std::move(columns));
}

std::vector<LocalDataSet::Loader> LogsLoaders(uint64_t total_rows,
                                              uint32_t rows_per_partition,
                                              uint64_t seed,
                                              const LogsOptions& options) {
  std::vector<uint32_t> counts =
      PartitionRowCounts(total_rows, rows_per_partition);
  std::vector<LocalDataSet::Loader> loaders;
  loaders.reserve(counts.size());
  for (size_t p = 0; p < counts.size(); ++p) {
    uint32_t rows = counts[p];
    uint64_t partition_seed = MixSeed(seed, p);
    loaders.push_back([rows, partition_seed, options]() -> Result<TablePtr> {
      return GenerateLogs(rows, partition_seed, options);
    });
  }
  return loaders;
}

}  // namespace workload
}  // namespace hillview
