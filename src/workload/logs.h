#ifndef HILLVIEW_WORKLOAD_LOGS_H_
#define HILLVIEW_WORKLOAD_LOGS_H_

#include <cstdint>
#include <vector>

#include "core/dataset.h"
#include "storage/table.h"

namespace hillview {
namespace workload {

/// Synthetic datacenter log/metric dataset motivating the trillion-cell
/// scenario of §3.1: "50 servers logging 100 columns at a rate of 100 rows
/// per minute generate in a month 21.6B cells". Columns: Timestamp (date),
/// Server (category, e.g. "Gandalf" and friends), Level (category),
/// Component (category), Message (text with templated patterns), Latency,
/// CpuPercent, MemoryMb (doubles), plus filler metrics.
struct LogsOptions {
  int num_servers = 50;
  int filler_columns = 0;
};

Schema LogsSchema(const LogsOptions& options = {});

/// One micropartition of `rows` log records, deterministic in seed.
TablePtr GenerateLogs(uint32_t rows, uint64_t seed,
                      const LogsOptions& options = {});

std::vector<LocalDataSet::Loader> LogsLoaders(uint64_t total_rows,
                                              uint32_t rows_per_partition,
                                              uint64_t seed,
                                              const LogsOptions& options = {});

}  // namespace workload
}  // namespace hillview

#endif  // HILLVIEW_WORKLOAD_LOGS_H_
