#include "workload/flights.h"

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "storage/columnar_file.h"
#include "util/random.h"

namespace hillview {
namespace workload {

namespace {

const char* kAirlines[] = {"AA", "AS", "B6", "DL", "EV", "F9",
                           "FL", "HA", "MQ", "NK", "OO", "UA",
                           "US", "VX", "WN", "YV", "YX", "9E"};
constexpr int kNumAirlines = 18;

const char* kStates[] = {
    "AL", "AK", "AZ", "AR", "CA", "CO", "CT", "DE", "FL", "GA", "HI",
    "ID", "IL", "IN", "IA", "KS", "KY", "LA", "ME", "MD", "MA", "MI",
    "MN", "MS", "MO", "MT", "NE", "NV", "NH", "NJ", "NM", "NY", "NC",
    "ND", "OH", "OK", "OR", "PA", "RI", "SC", "SD", "TN", "TX", "UT",
    "VT", "VA", "WA", "WV", "WI", "WY", "DC", "PR", "VI"};
constexpr int kNumStates = 53;

constexpr int kNumAirports = 347;

// Deterministic synthetic airport code for index i ("AAA".."ZZZ" space).
// The multiplier is coprime to 26^3, so the map is injective: every index
// gets a distinct code (kNumAirports distinct airports, like the real data).
std::string AirportCode(int i) {
  int j = static_cast<int>((static_cast<int64_t>(i) * 5003) % 17576);
  char code[4];
  code[0] = static_cast<char>('A' + j / 676);
  code[1] = static_cast<char>('A' + (j / 26) % 26);
  code[2] = static_cast<char>('A' + j % 26);
  code[3] = '\0';
  return code;
}

int AirportState(int airport) { return (airport * 17 + 5) % kNumStates; }

// Zipf-like skew: rank r gets weight ~ 1/(r+1). Sampled by inverse CDF over
// precomputed cumulative weights.
class ZipfSampler {
 public:
  ZipfSampler(int n, double exponent) : cumulative_(n) {
    double total = 0;
    for (int r = 0; r < n; ++r) {
      total += 1.0 / std::pow(r + 1.0, exponent);
      cumulative_[r] = total;
    }
    for (double& c : cumulative_) c /= total;
  }

  int Sample(Random* rng) const {
    double u = rng->NextDouble();
    int lo = 0, hi = static_cast<int>(cumulative_.size()) - 1;
    while (lo < hi) {
      int mid = (lo + hi) / 2;
      if (cumulative_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

 private:
  std::vector<double> cumulative_;
};

constexpr int64_t kMillisPerDay = 86400000LL;
// 1999-01-01 UTC in epoch millis; the dataset spans the next 20 years.
constexpr int64_t kEpochStart = 915148800000LL;
constexpr int kDaysSpanned = 20 * 365;

}  // namespace

Schema FlightsSchema(const FlightsOptions& options) {
  std::vector<ColumnDescription> cols = {
      {"Year", DataKind::kInt},
      {"Month", DataKind::kInt},
      {"DayOfMonth", DataKind::kInt},
      {"DayOfWeek", DataKind::kInt},
      {"FlightDate", DataKind::kDate},
      {"Airline", DataKind::kCategory},
      {"FlightNumber", DataKind::kInt},
      {"Origin", DataKind::kCategory},
      {"OriginState", DataKind::kCategory},
      {"Dest", DataKind::kCategory},
      {"DestState", DataKind::kCategory},
      {"CrsDepTime", DataKind::kInt},
      {"DepTime", DataKind::kInt},
      {"DepDelay", DataKind::kDouble},
      {"ArrDelay", DataKind::kDouble},
      {"TaxiIn", DataKind::kDouble},
      {"TaxiOut", DataKind::kDouble},
      {"Cancelled", DataKind::kInt},
      {"Distance", DataKind::kDouble},
      {"AirTime", DataKind::kDouble},
      {"WeatherDelay", DataKind::kDouble},
  };
  for (int f = 0; f < options.filler_columns; ++f) {
    char name[24];
    std::snprintf(name, sizeof(name), "metric_%02d", f);
    cols.push_back({name, DataKind::kDouble});
  }
  return Schema(std::move(cols));
}

TablePtr GenerateFlights(uint32_t rows, uint64_t seed,
                         const FlightsOptions& options) {
  Random rng(seed);
  static const ZipfSampler kAirlineSampler(kNumAirlines, 0.8);
  static const ZipfSampler kAirportSampler(kNumAirports, 1.05);

  Schema schema = FlightsSchema(options);
  std::vector<ColumnBuilder> builders;
  builders.reserve(schema.num_columns());
  for (const auto& d : schema.columns()) builders.emplace_back(d.kind);

  for (uint32_t r = 0; r < rows; ++r) {
    int day = static_cast<int>(rng.NextUint64(kDaysSpanned));
    int64_t date = kEpochStart + day * kMillisPerDay;
    int year = 1999 + day / 365;
    int month = 1 + (day % 365) / 31;
    int day_of_month = 1 + (day % 365) % 31;
    int day_of_week = 1 + day % 7;

    int airline = kAirlineSampler.Sample(&rng);
    int origin = kAirportSampler.Sample(&rng);
    int dest = kAirportSampler.Sample(&rng);
    if (dest == origin) dest = (dest + 1) % kNumAirports;

    // Departure times cluster in daytime hours.
    int hour = static_cast<int>(
        std::fmod(std::fabs(12.0 + 5.0 * rng.NextGaussian()), 24.0));
    int minute = static_cast<int>(rng.NextUint64(60));
    int crs_dep = hour * 100 + minute;

    bool cancelled = rng.NextBernoulli(0.018);

    // Heavy-tailed delay: mostly small/negative, occasionally hours.
    double dep_delay = -5.0 + std::exp(rng.NextGaussian() * 1.3 + 1.7) - 5.0;
    double arr_delay = dep_delay + rng.NextGaussian() * 12.0;
    double taxi_out = 10.0 + std::fabs(rng.NextGaussian()) * 8.0;
    double taxi_in = 5.0 + std::fabs(rng.NextGaussian()) * 4.0;
    double distance = 150.0 + std::exp(rng.NextGaussian() * 0.9 + 6.0);
    if (distance > 5000) distance = 5000;
    double air_time = distance / 7.5 + rng.NextGaussian() * 10.0;
    bool weather = rng.NextBernoulli(0.04);
    double weather_delay = weather ? std::fabs(rng.NextGaussian()) * 40.0 : 0;

    int c = 0;
    builders[c++].AppendInt(year);
    builders[c++].AppendInt(month);
    builders[c++].AppendInt(day_of_month);
    builders[c++].AppendInt(day_of_week);
    builders[c++].AppendDate(date);
    builders[c++].AppendString(kAirlines[airline]);
    builders[c++].AppendInt(static_cast<int32_t>(1 + rng.NextUint64(7000)));
    builders[c++].AppendString(AirportCode(origin));
    builders[c++].AppendString(kStates[AirportState(origin)]);
    builders[c++].AppendString(AirportCode(dest));
    builders[c++].AppendString(kStates[AirportState(dest)]);
    builders[c++].AppendInt(crs_dep);
    if (cancelled) {
      // Cancelled flights never departed: undefined values, like the real
      // dataset ("real dataset with ... undefined values").
      builders[c++].AppendMissing();  // DepTime
      builders[c++].AppendMissing();  // DepDelay
      builders[c++].AppendMissing();  // ArrDelay
      builders[c++].AppendMissing();  // TaxiIn
      builders[c++].AppendMissing();  // TaxiOut
    } else {
      int dep_time = crs_dep + static_cast<int>(dep_delay);
      builders[c++].AppendInt(((dep_time % 2400) + 2400) % 2400);
      builders[c++].AppendDouble(dep_delay);
      builders[c++].AppendDouble(arr_delay);
      builders[c++].AppendDouble(taxi_in);
      builders[c++].AppendDouble(taxi_out);
    }
    builders[c++].AppendInt(cancelled ? 1 : 0);
    builders[c++].AppendDouble(distance);
    if (cancelled) {
      builders[c++].AppendMissing();  // AirTime
    } else {
      builders[c++].AppendDouble(air_time);
    }
    builders[c++].AppendDouble(weather_delay);
    for (int f = 0; f < options.filler_columns; ++f) {
      builders[c++].AppendDouble(rng.NextGaussian() * (f + 1));
    }
  }

  std::vector<ColumnPtr> columns;
  columns.reserve(builders.size());
  for (auto& b : builders) columns.push_back(b.Finish());
  return Table::Create(std::move(schema), std::move(columns));
}

std::vector<LocalDataSet::Loader> FlightsLoaders(
    uint64_t total_rows, uint32_t rows_per_partition, uint64_t seed,
    const FlightsOptions& options) {
  std::vector<uint32_t> counts =
      PartitionRowCounts(total_rows, rows_per_partition);
  std::vector<LocalDataSet::Loader> loaders;
  loaders.reserve(counts.size());
  for (size_t p = 0; p < counts.size(); ++p) {
    uint32_t rows = counts[p];
    uint64_t partition_seed = MixSeed(seed, p);
    loaders.push_back([rows, partition_seed, options]() -> Result<TablePtr> {
      return GenerateFlights(rows, partition_seed, options);
    });
  }
  return loaders;
}

Result<std::vector<LocalDataSet::Loader>> FlightsFileLoaders(
    const std::string& dir, uint64_t total_rows, uint32_t rows_per_partition,
    uint64_t seed, StorageBackend backend, ReadOptions read_options,
    const FlightsOptions& options) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return Status::IoError("cannot create '" + dir + "': " + ec.message());
  }
  std::vector<uint32_t> counts =
      PartitionRowCounts(total_rows, rows_per_partition);
  std::vector<LocalDataSet::Loader> loaders;
  loaders.reserve(counts.size());
  for (size_t p = 0; p < counts.size(); ++p) {
    char name[40];
    std::snprintf(name, sizeof(name), "flights_%04u.hvcf",
                  static_cast<unsigned>(p));
    std::string path = dir + "/" + name;
    if (!std::filesystem::exists(path)) {
      TablePtr t = GenerateFlights(counts[p], MixSeed(seed, p), options);
      HV_RETURN_IF_ERROR(WriteTableFile(*t, path));
    }
    loaders.push_back(
        [path = std::move(path), backend, read_options]() -> Result<TablePtr> {
          return OpenTableFile(path, backend, read_options);
        });
  }
  return loaders;
}

}  // namespace workload
}  // namespace hillview
