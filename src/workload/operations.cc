#include "workload/operations.h"

#include "util/stopwatch.h"
#include "util/thread_annotations.h"

namespace hillview {
namespace workload {

namespace {

const RecordOrder& SortOrder1() {
  static const RecordOrder kOrder({{"DepDelay", true}});
  return kOrder;
}

const RecordOrder& SortOrder5() {
  static const RecordOrder kOrder({{"Year", true},
                                   {"Month", true},
                                   {"DayOfMonth", true},
                                   {"DepDelay", true},
                                   {"Distance", true}});
  return kOrder;
}

const RecordOrder& SortOrderString() {
  static const RecordOrder kOrder({{"Origin", true}});
  return kOrder;
}

constexpr int kPageRows = 20;

/// Runs the chart-with-progressive-updates pattern: a histogram stream whose
/// first emission stamps the first-partial time.
Status RunHistogramWithFirstPartial(Spreadsheet* sheet,
                                    const std::string& column,
                                    const Stopwatch& watch,
                                    OpMeasurement* m) {
  auto stream = sheet->HistogramStream(column);
  HV_RETURN_IF_ERROR(stream.status());
  Mutex mu;
  double first = 0;
  stream.value()->Subscribe([&](const PartialResult<HistogramResult>&) {
    MutexLock lock(mu);
    if (first == 0) first = watch.ElapsedSeconds();
  });
  stream.value()->BlockingLast();
  HV_RETURN_IF_ERROR(stream.value()->final_status());
  MutexLock lock(mu);
  m->first_partial_seconds = first;
  return Status::OK();
}

Status RunHillviewOp(Spreadsheet* sheet, int op, const Stopwatch& watch,
                     OpMeasurement* m) {
  switch (op) {
    case 1:
      return sheet->TableView(SortOrder1(), {}, std::nullopt, kPageRows)
          .status();
    case 2:
      return sheet->TableView(SortOrder5(), {}, std::nullopt, kPageRows)
          .status();
    case 3:
      return sheet->TableView(SortOrderString(), {}, std::nullopt, kPageRows)
          .status();
    case 4:
      return sheet->ScrollTo(SortOrder5(), {}, 0.5, kPageRows).status();
    case 5: {
      HV_RETURN_IF_ERROR(
          RunHistogramWithFirstPartial(sheet, "DepDelay", watch, m));
      return sheet->Cdf("DepDelay").status();
    }
    case 6: {
      auto filtered = sheet->FilterRange("DepDelay", 0, 60);
      HV_RETURN_IF_ERROR(filtered.status());
      Spreadsheet view = filtered.Take();
      HV_RETURN_IF_ERROR(
          RunHistogramWithFirstPartial(&view, "ArrDelay", watch, m));
      return view.Cdf("ArrDelay").status();
    }
    case 7:
      return sheet->Histogram("Origin").status();
    case 8:
      return sheet->HeavyHitters("Origin", 100, /*sampled=*/true).status();
    case 9:
      return sheet->DistinctCount("FlightNumber").status();
    case 10: {
      HV_RETURN_IF_ERROR(
          sheet->StackedHistogram("CrsDepTime", "Airline").status());
      return sheet->Cdf("CrsDepTime").status();
    }
    case 11:
      return sheet->HeatMap("DepDelay", "ArrDelay").status();
    default:
      return Status::InvalidArgument("unknown operation");
  }
}

}  // namespace

const char* OperationName(int op) {
  static const char* kNames[] = {"O1", "O2", "O3", "O4",  "O5", "O6",
                                 "O7", "O8", "O9", "O10", "O11"};
  return (op >= 1 && op <= kNumOperations) ? kNames[op - 1] : "?";
}

const char* OperationDescription(int op) {
  static const char* kDescriptions[] = {
      "Sort, numerical data",
      "Sort 5 columns, numerical data",
      "Sort, string data",
      "Quantile + sort, 5 columns, numerical data",
      "Range + (histogram & cdf), numerical data",
      "Filter + range + (histogram & cdf), numerical data",
      "Distinct + range + histogram, string data",
      "Heavy hitters sampling, string data",
      "Distinct count, numerical data",
      "Range + (stacked histogram & cdf), numerical data",
      "Heatmap, numerical data"};
  return (op >= 1 && op <= kNumOperations) ? kDescriptions[op - 1] : "?";
}

OpMeasurement RunHillviewOperation(Spreadsheet* sheet, int op) {
  OpMeasurement m;
  uint64_t bytes_before =
      sheet->session()->network()->bytes_received_by_root();
  Stopwatch watch;
  Status s = RunHillviewOp(sheet, op, watch, &m);
  m.seconds = watch.ElapsedSeconds();
  if (m.first_partial_seconds == 0) m.first_partial_seconds = m.seconds;
  m.root_bytes =
      sheet->session()->network()->bytes_received_by_root() - bytes_before;
  m.ok = s.ok();
  if (!s.ok()) m.error = s.ToString();
  return m;
}

OpMeasurement RunBaselineOperation(baseline::RowEngine* engine, int op) {
  OpMeasurement m;
  uint64_t bytes = 0;
  Stopwatch watch;
  switch (op) {
    case 1:
      engine->SortTopK(SortOrder1(), 20, &bytes);
      break;
    case 2:
      engine->SortTopK(SortOrder5(), 20, &bytes);
      break;
    case 3:
      engine->SortTopK(SortOrderString(), 20, &bytes);
      break;
    case 4:
      engine->Quantile(SortOrder5(), 0.5, &bytes);
      engine->SortTopK(SortOrder5(), 20, &bytes);
      break;
    case 5:
      // The engine does not know the display geometry, so the front-end
      // requests fine-grained bins (0.1 min) and re-bins client-side.
      engine->MinMax("DepDelay", &bytes);
      engine->GroupByCount("DepDelay", &bytes, 0.1);
      break;
    case 6: {
      int idx = engine->ColumnIndex("DepDelay");
      auto filtered = engine->Filter([idx](const std::vector<Value>& row) {
        const auto* d = std::get_if<double>(&row[idx]);
        return d != nullptr && *d >= 0 && *d <= 60;
      });
      filtered->MinMax("ArrDelay", &bytes);
      filtered->GroupByCount("ArrDelay", &bytes, 0.1);
      break;
    }
    case 7:
      engine->DistinctCount("Origin", &bytes);
      engine->GroupByCount("Origin", &bytes);
      break;
    case 8:
      engine->GroupByCount("Origin", &bytes);
      break;
    case 9:
      engine->DistinctCount("FlightNumber", &bytes);
      break;
    case 10:
      engine->MinMax("CrsDepTime", &bytes);
      engine->GroupByCount2D("CrsDepTime", "Airline", &bytes, 10.0, 0);
      break;
    case 11:
      engine->GroupByCount2D("DepDelay", "ArrDelay", &bytes, 1.0, 1.0);
      break;
    default:
      m.error = "unknown operation";
      return m;
  }
  m.seconds = watch.ElapsedSeconds();
  m.first_partial_seconds = m.seconds;  // no progressive results
  m.root_bytes = bytes;
  m.ok = true;
  return m;
}

}  // namespace workload
}  // namespace hillview
