#ifndef HILLVIEW_WORKLOAD_OPERATIONS_H_
#define HILLVIEW_WORKLOAD_OPERATIONS_H_

#include <string>
#include <vector>

#include "baseline/row_engine.h"
#include "spreadsheet/spreadsheet.h"

namespace hillview {
namespace workload {

/// The spreadsheet operations of the end-to-end evaluation (Fig 4):
///   O1  Sort, numerical data
///   O2  Sort 5 columns, numerical data
///   O3  Sort, string data
///   O4  Quantile + sort, 5 columns, numerical data
///   O5  Range + (histogram & cdf), numerical data
///   O6  Filter + range + (histogram & cdf), numerical data
///   O7  Distinct + range + histogram, string data
///   O8  Heavy hitters sampling, string data
///   O9  Distinct count, numerical data
///   O10 Range + (stacked histogram & cdf), numerical data
///   O11 Heatmap, numerical data
/// Each runs against the flights schema, on Hillview (via the Spreadsheet
/// facade) or on the general-purpose baseline (RowEngine).
inline constexpr int kNumOperations = 11;

/// "O1".."O11".
const char* OperationName(int op);

/// Short description matching Fig 4.
const char* OperationDescription(int op);

/// Measurements of one operation run.
struct OpMeasurement {
  double seconds = 0;
  /// Seconds to the first partial visualization (Hillview only; equals
  /// `seconds` for the baseline, which has no progressive results).
  double first_partial_seconds = 0;
  /// Bytes received by the root/master node for this operation.
  uint64_t root_bytes = 0;
  bool ok = false;
  std::string error;
};

/// Runs operation `op` (1-based) on a Hillview spreadsheet. Bytes are read
/// from the session's simulated network (delta across the call).
OpMeasurement RunHillviewOperation(Spreadsheet* sheet, int op);

/// Runs the equivalent general-purpose query plan on the RowEngine baseline.
OpMeasurement RunBaselineOperation(baseline::RowEngine* engine, int op);

}  // namespace workload
}  // namespace hillview

#endif  // HILLVIEW_WORKLOAD_OPERATIONS_H_
