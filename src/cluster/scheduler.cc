#include "cluster/scheduler.h"

#include <algorithm>

namespace hillview {
namespace cluster {

namespace {

/// Cost estimates are clamped to [1, 64 quanta]: the floor keeps an
/// all-cached session from a free-for-all (a zero estimate would grant it
/// every slot), and the ceiling bounds how many rotation passes a grant can
/// take, so PickSessionLocked always terminates in at most kMaxPasses.
constexpr int64_t kMinEstimateBytes = 1;
constexpr int64_t kEstimateQuantaCap = 64;

/// How often a queued waiter re-polls its cancellation token. Nobody
/// notifies the scheduler condvar when a token flips (cancellation can
/// originate anywhere), so the wait is sliced.
constexpr double kCancelPollMs = 2.0;

}  // namespace

Status QueryScheduler::Execute(int session_id,
                               const CancellationTokenPtr& cancel,
                               const std::function<Status()>& query,
                               bool* ran) {
  if (ran != nullptr) *ran = false;
  {
    MutexLock lock(mutex_);
    ++stats_.submitted;
    if (cancel != nullptr && cancel->IsCancelled()) {
      ++stats_.cancelled_in_queue;
      return Status::Cancelled("render superseded before dispatch");
    }
    // Admission control, cheapest signal first. Shedding happens before the
    // query consumes a queue slot: under overload the tenant gets an
    // immediate Unavailable to back off on, not unbounded latency.
    if (options_.shed_when_all_breakers_open && health_ != nullptr &&
        health_->num_workers() > 0 &&
        health_->num_open() >= health_->num_workers()) {
      ++stats_.shed_unhealthy;
      return Status::Unavailable(
          "admission control: every worker circuit breaker is open");
    }
    auto [session_it, inserted] = sessions_.try_emplace(session_id);
    SessionState& s = session_it->second;
    if (inserted) s.cost_estimate = options_.quantum_bytes;
    if (s.in_flight >= options_.max_in_flight_per_session) {
      ++stats_.shed_session_budget;
      return Status::Unavailable(
          "admission control: session exceeded its in-flight budget");
    }
    if (running_ >= options_.dispatch_concurrency &&
        queued_total_ >= options_.max_queued_total) {
      ++stats_.shed_queue_full;
      return Status::Unavailable(
          "admission control: cluster saturated and queue full");
    }

    auto ticket = std::make_shared<Ticket>();
    ticket->session = session_id;
    ticket->cancel = cancel;
    s.queue.push_back(ticket);
    ++s.in_flight;
    ++queued_total_;
    GrantLocked();
    while (!ticket->granted) {
      if (cancel != nullptr && cancel->IsCancelled()) {
        // Leave the queue without running: a superseded render settles
        // Cancelled immediately. Erase the ticket eagerly so queue-depth
        // admission never counts dead waiters.
        ticket->abandoned = true;
        for (auto it = s.queue.begin(); it != s.queue.end(); ++it) {
          if (*it == ticket) {
            s.queue.erase(it);
            --queued_total_;
            break;
          }
        }
        --s.in_flight;
        ++stats_.cancelled_in_queue;
        return Status::Cancelled("render superseded while queued");
      }
      if (cancel != nullptr) {
        cv_.WaitFor(mutex_, kCancelPollMs);
      } else {
        cv_.Wait(mutex_);
      }
    }
  }

  // Granted: run on the caller's thread, outside the lock.
  Status status = query();
  if (ran != nullptr) *ran = true;

  {
    MutexLock lock(mutex_);
    auto it = sessions_.find(session_id);
    if (it != sessions_.end()) --it->second.in_flight;
    --running_;
    ++stats_.completed;
    GrantLocked();
  }
  return status;
}

void QueryScheduler::ChargeCost(int session_id, int64_t cost_bytes) {
  MutexLock lock(mutex_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return;
  SessionState& s = it->second;
  // Grants deduct the estimate, not the (then-unknown) actual, so fairness
  // tracks the estimate's convergence: a 3/4 EWMA follows a session's
  // workload shift within a few queries without thrashing on one outlier.
  const int64_t next =
      (3 * s.cost_estimate + std::max<int64_t>(0, cost_bytes)) / 4;
  s.cost_estimate =
      std::min(kEstimateQuantaCap * options_.quantum_bytes,
               std::max(kMinEstimateBytes, next));
}

QueryScheduler::Stats QueryScheduler::Snapshot() const {
  MutexLock lock(mutex_);
  return stats_;
}

int64_t QueryScheduler::CostEstimate(int session_id) const {
  MutexLock lock(mutex_);
  auto it = sessions_.find(session_id);
  return it == sessions_.end() ? options_.quantum_bytes
                               : it->second.cost_estimate;
}

void QueryScheduler::GrantLocked() {
  bool granted_any = false;
  while (running_ < options_.dispatch_concurrency) {
    auto session_it = PickSessionLocked();
    if (session_it == sessions_.end()) break;
    SessionState& s = session_it->second;
    TicketPtr ticket;
    while (!s.queue.empty()) {
      TicketPtr t = s.queue.front();
      s.queue.pop_front();
      --queued_total_;
      if (t->abandoned) continue;  // defensive: abandoners erase eagerly
      ticket = std::move(t);
      break;
    }
    if (ticket == nullptr) {
      if (s.queue.empty()) s.deficit = 0;
      continue;
    }
    ticket->granted = true;
    granted_any = true;
    // Pay for the grant with the current estimate; an emptied queue forfeits
    // leftover credit (classic DRR: no banking while idle, so a returning
    // session cannot burst past the others on saved-up deficit).
    s.deficit -= s.cost_estimate;
    if (s.queue.empty()) s.deficit = 0;
    ++running_;
    stats_.max_running =
        std::max(stats_.max_running, static_cast<int64_t>(running_));
  }
  if (granted_any) cv_.NotifyAll();
}

std::map<int, QueryScheduler::SessionState>::iterator
QueryScheduler::PickSessionLocked() {
  bool any_waiting = false;
  for (auto& [id, s] : sessions_) {
    if (!s.queue.empty()) {
      any_waiting = true;
      break;
    }
  }
  if (!any_waiting) return sessions_.end();
  // Rotate over non-empty queues starting strictly after the cursor, adding
  // one quantum of credit per visit; serve the first session whose deficit
  // covers its estimate. Estimates are clamped to kEstimateQuantaCap quanta,
  // so some session must qualify within that many full rotations.
  for (int64_t pass = 0; pass <= kEstimateQuantaCap; ++pass) {
    auto it = sessions_.upper_bound(rr_cursor_);
    for (size_t visited = 0; visited < sessions_.size(); ++visited) {
      if (it == sessions_.end()) it = sessions_.begin();
      auto current = it++;
      SessionState& s = current->second;
      if (s.queue.empty()) continue;
      s.deficit += options_.quantum_bytes;
      if (s.deficit >= s.cost_estimate) {
        rr_cursor_ = current->first;
        return current;
      }
    }
  }
  return sessions_.end();  // unreachable: estimates are capped
}

}  // namespace cluster
}  // namespace hillview
