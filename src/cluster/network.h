#ifndef HILLVIEW_CLUSTER_NETWORK_H_
#define HILLVIEW_CLUSTER_NETWORK_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <thread>
#include <utility>

#include "cluster/fault_injection.h"
#include "util/thread_annotations.h"

namespace hillview {
namespace cluster {

/// Byte-level model of the cluster interconnect. Every message crossing a
/// simulated machine boundary is serialized and counted here; the
/// root-received byte counter reproduces the paper's bandwidth measurement
/// (Fig 5 bottom: "how many bytes the root node received").
///
/// Optionally applies a latency + bandwidth delay per message so end-to-end
/// benchmarks can model a 10 Gbps / sub-millisecond datacenter network.
///
/// Thread-safe: counters are relaxed atomics (independent monotone tallies);
/// the delay model is guarded by a mutex so set_model() can retune a live
/// deployment without racing in-flight Delay() reads; the per-session
/// traffic map has its own mutex (sends from different sessions contend only
/// on a map update, never on the delay sleep).
class SimulatedNetwork {
 public:
  struct Model {
    double latency_ms = 0.0;            // per message
    double bandwidth_bytes_per_sec = 0; // 0 = infinite
  };

  /// Per-session traffic tally: what one tenant's queries moved over the
  /// interconnect. The max/min ratio of `bytes_up` across sessions running
  /// identical workloads is the scheduler's bandwidth-fairness measure.
  struct SessionTraffic {
    uint64_t bytes_up = 0;
    uint64_t bytes_down = 0;
    uint64_t messages_up = 0;
    uint64_t messages_down = 0;
  };

  SimulatedNetwork() = default;
  explicit SimulatedNetwork(Model model) : model_(model) {}

  /// Replaces the delay model (counters are preserved). The class is
  /// neither copyable nor movable (atomic counters), so deployments that
  /// construct the network before choosing a model configure it here.
  void set_model(Model model) EXCLUDES(model_mutex_) {
    MutexLock lock(model_mutex_);
    model_ = model;
  }

  /// Installs (or, with nullptr, removes) a fault injector. Subsequent sends
  /// that identify their worker endpoint are judged against its FaultPlan;
  /// sends with worker == -1 (untracked callers) always deliver.
  void InstallFaultInjector(FaultInjectorPtr injector)
      EXCLUDES(model_mutex_) {
    MutexLock lock(model_mutex_);
    injector_ = std::move(injector);
  }

  FaultInjectorPtr fault_injector() const EXCLUDES(model_mutex_) {
    MutexLock lock(model_mutex_);
    return injector_;
  }

  /// Records a request flowing root -> worker and returns the fault verdict
  /// for it. Byte/message counters tally on send — before faults — because
  /// the sender paid the bandwidth regardless of what happens in transit
  /// (duplicates are charged once: the copy is a delivery-side event).
  /// `session` >= 0 additionally charges that tenant's traffic tally.
  FaultVerdict SendDown(uint64_t bytes, int worker = -1, int session = -1)
      EXCLUDES(model_mutex_, traffic_mutex_) {
    messages_down_.fetch_add(1, std::memory_order_relaxed);
    bytes_down_.fetch_add(bytes, std::memory_order_relaxed);
    if (session >= 0) {
      MutexLock lock(traffic_mutex_);
      SessionTraffic& t = session_traffic_[session];
      ++t.messages_down;
      t.bytes_down += bytes;
    }
    const FaultVerdict verdict = JudgeSend(worker, Direction::kDown);
    Delay(bytes, verdict.extra_latency_ms);
    return verdict;
  }

  /// Records a (partial) summary flowing worker -> root; same contract as
  /// SendDown.
  FaultVerdict SendUp(uint64_t bytes, int worker = -1, int session = -1)
      EXCLUDES(model_mutex_, traffic_mutex_) {
    messages_up_.fetch_add(1, std::memory_order_relaxed);
    bytes_up_.fetch_add(bytes, std::memory_order_relaxed);
    if (session >= 0) {
      MutexLock lock(traffic_mutex_);
      SessionTraffic& t = session_traffic_[session];
      ++t.messages_up;
      t.bytes_up += bytes;
    }
    const FaultVerdict verdict = JudgeSend(worker, Direction::kUp);
    Delay(bytes, verdict.extra_latency_ms);
    return verdict;
  }

  uint64_t bytes_received_by_root() const { return bytes_up_.load(); }
  uint64_t bytes_sent_by_root() const { return bytes_down_.load(); }
  uint64_t messages_up() const { return messages_up_.load(); }
  uint64_t messages_down() const { return messages_down_.load(); }

  /// One session's traffic tally (zeros for a session never seen), read
  /// atomically under the traffic lock.
  SessionTraffic SessionSnapshot(int session) const EXCLUDES(traffic_mutex_) {
    MutexLock lock(traffic_mutex_);
    auto it = session_traffic_.find(session);
    return it == session_traffic_.end() ? SessionTraffic{} : it->second;
  }

  /// Every tagged session's tally, for fairness sweeps across tenants.
  std::map<int, SessionTraffic> AllSessionTraffic() const
      EXCLUDES(traffic_mutex_) {
    MutexLock lock(traffic_mutex_);
    return session_traffic_;
  }

  void Reset() EXCLUDES(traffic_mutex_) {
    bytes_up_ = 0;
    bytes_down_ = 0;
    messages_up_ = 0;
    messages_down_ = 0;
    MutexLock lock(traffic_mutex_);
    session_traffic_.clear();
  }

 private:
  FaultVerdict JudgeSend(int worker, Direction direction)
      EXCLUDES(model_mutex_) {
    if (worker < 0) return FaultVerdict{};  // untracked endpoint: no faults
    FaultInjectorPtr injector;
    {
      MutexLock lock(model_mutex_);
      injector = injector_;
    }
    if (!injector) return FaultVerdict{};
    return injector->Judge(worker, direction);
  }

  void Delay(uint64_t bytes, double extra_latency_ms = 0.0)
      EXCLUDES(model_mutex_) {
    Model model;
    {
      // Copy under the lock; the sleep itself must not serialize senders.
      MutexLock lock(model_mutex_);
      model = model_;
    }
    double seconds = model.latency_ms / 1e3 + extra_latency_ms / 1e3;
    if (model.bandwidth_bytes_per_sec > 0) {
      seconds += static_cast<double>(bytes) / model.bandwidth_bytes_per_sec;
    }
    if (seconds > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    }
  }

  mutable Mutex model_mutex_;
  Model model_ GUARDED_BY(model_mutex_);
  FaultInjectorPtr injector_ GUARDED_BY(model_mutex_);
  mutable Mutex traffic_mutex_;
  std::map<int, SessionTraffic> session_traffic_ GUARDED_BY(traffic_mutex_);
  std::atomic<uint64_t> bytes_up_{0};
  std::atomic<uint64_t> bytes_down_{0};
  std::atomic<uint64_t> messages_up_{0};
  std::atomic<uint64_t> messages_down_{0};
};

}  // namespace cluster
}  // namespace hillview

#endif  // HILLVIEW_CLUSTER_NETWORK_H_
