#ifndef HILLVIEW_CLUSTER_WORKER_H_
#define HILLVIEW_CLUSTER_WORKER_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "util/thread_pool.h"

namespace hillview {
namespace cluster {

/// One simulated worker server: hosts micropartition leaf datasets behind a
/// private thread pool (its "cores"). Workers are stateless in the paper's
/// sense (§5.8): everything they hold is soft state reconstructible from the
/// root's redo log, and Restart() models a crash-restart by dropping all of
/// it.
class Worker {
 public:
  Worker(std::string name, int num_threads)
      : name_(std::move(name)), pool_(num_threads) {}

  const std::string& name() const { return name_; }
  ThreadPool* pool() { return &pool_; }

  /// Registers the worker's share of a base (repository-backed) dataset.
  /// Partitions are micropartitions (§5.3); each becomes a leaf on this
  /// worker's pool. Re-registering after a restart recreates the entry; the
  /// underlying data reloads lazily from its loaders.
  Status RegisterBase(const std::string& dataset_id,
                      std::vector<std::shared_ptr<LocalDataSet>> partitions);

  /// Derives `new_id` from `parent_id` by a per-partition map (§5.6). The
  /// result is lazy soft state. Fails with Unavailable if the parent is gone
  /// (e.g. after a restart) — the caller replays the redo log.
  Status ApplyMap(const std::string& parent_id, const std::string& new_id,
                  TableMap map, const std::string& op_name);

  /// The worker-local dataset tree for `dataset_id`, or Unavailable.
  Result<DataSetPtr> GetDataSet(const std::string& dataset_id);

  /// Crash-restart: drops every dataset (base and derived) and all cached
  /// tables. "Restarting the node after a failure is equivalent to deleting
  /// all cached datasets" (§5.8).
  void Restart();

  /// Drops only materialized tables, keeping the dataset structure: the
  /// memory-manager eviction path (§5.7), distinct from a crash.
  void EvictCaches();

  int64_t restart_count() const;

 private:
  std::string name_;
  ThreadPool pool_;
  mutable std::mutex mutex_;
  std::map<std::string, DataSetPtr> datasets_;
  int64_t restart_count_ = 0;
};

using WorkerPtr = std::shared_ptr<Worker>;

}  // namespace cluster
}  // namespace hillview

#endif  // HILLVIEW_CLUSTER_WORKER_H_
