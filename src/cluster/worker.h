#ifndef HILLVIEW_CLUSTER_WORKER_H_
#define HILLVIEW_CLUSTER_WORKER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/dataset.h"
#include "storage/sort_key_cache.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace hillview {
namespace cluster {

/// One simulated worker server: hosts micropartition leaf datasets behind a
/// private thread pool (its "cores"). Workers are stateless in the paper's
/// sense (§5.8): everything they hold is soft state reconstructible from the
/// root's redo log, and Restart() models a crash-restart by dropping all of
/// it.
class Worker {
 public:
  /// `aggregation` configures the worker's internal ParallelDataSet fan-out
  /// over its micropartitions. Chaos tests set progressive=false so exactly
  /// one summary crosses the wire per query attempt — which makes the
  /// per-channel message counts (and hence the seeded fault schedule)
  /// deterministic.
  Worker(std::string name, int num_threads,
         ParallelDataSet::Options aggregation = {})
      : name_(std::move(name)),
        pool_(num_threads),
        aggregation_(aggregation) {}

  const std::string& name() const { return name_; }
  ThreadPool* pool() { return &pool_; }

  /// Pool for intra-sketch helper work (morsel fan-out, find-text dictionary
  /// matching): the SAME pool that runs partition summaries, so a worker
  /// under full morsel fan-out still runs exactly its configured threads —
  /// its "cores" — instead of oversubscribing 2× (the old separate aux pool).
  /// Sharing is deadlock-free because all intra-sketch fan-out goes through
  /// ParallelApply, where the calling thread participates: a summarize
  /// blocked on its helper chunks is itself draining those chunks, even when
  /// every pool thread is inside its own fan-out.
  ThreadPool* aux_pool() { return &pool_; }

  /// Worker-resident sort-key cache (see storage/sort_key_cache.h): reused
  /// across scrolls of the same sorted view, handed to sketches via
  /// SketchContext at the machine boundary. Soft state — Restart() and
  /// EvictCaches() both drop it.
  SortKeyCache* key_cache() { return &key_cache_; }

  /// Blocks until every queued/running pool task has finished: quiesces the
  /// worker. Cluster teardown calls this for the whole deployment so
  /// straggler tasks from abandoned attempts (deadline misses, superseded
  /// renders, degraded completions) cannot outlive what they touch.
  void Drain() { pool_.Wait(); }

  /// Registers the worker's share of a base (repository-backed) dataset.
  /// Partitions are micropartitions (§5.3); each becomes a leaf on this
  /// worker's pool. Re-registering after a restart recreates the entry; the
  /// underlying data reloads lazily from its loaders.
  Status RegisterBase(const std::string& dataset_id,
                      std::vector<std::shared_ptr<LocalDataSet>> partitions)
      EXCLUDES(mutex_);

  /// Derives `new_id` from `parent_id` by a per-partition map (§5.6). The
  /// result is lazy soft state. Fails with Unavailable if the parent is gone
  /// (e.g. after a restart) — the caller replays the redo log.
  Status ApplyMap(const std::string& parent_id, const std::string& new_id,
                  TableMap map, const std::string& op_name) EXCLUDES(mutex_);

  /// The worker-local dataset tree for `dataset_id`, or Unavailable.
  Result<DataSetPtr> GetDataSet(const std::string& dataset_id)
      EXCLUDES(mutex_);

  /// Crash-restart: drops every dataset (base and derived) and all cached
  /// tables. "Restarting the node after a failure is equivalent to deleting
  /// all cached datasets" (§5.8).
  void Restart() EXCLUDES(mutex_);

  /// Drops only materialized tables, keeping the dataset structure: the
  /// memory-manager eviction path (§5.7), distinct from a crash.
  void EvictCaches() EXCLUDES(mutex_);

  int64_t restart_count() const EXCLUDES(mutex_);

  /// Records a map request whose failure status the caller had to drop
  /// (fire-and-forget remote maps): the error is expected to resurface as
  /// Unavailable on first use and heal via redo-log replay, and this counter
  /// lets fault-injection tests assert that path actually fired.
  void RecordDroppedMapFailure(const Status& status) EXCLUDES(mutex_);
  int64_t dropped_map_failures() const EXCLUDES(mutex_);
  std::string last_dropped_map_error() const EXCLUDES(mutex_);

  /// Records a summary frame that failed its checksum or did not deserialize
  /// at the machine boundary and was silently dropped there (the retry layer
  /// turns the resulting silence into kDeadlineExceeded). Surfaced alongside
  /// dropped_map_failures so corrupt messages are observable, not just
  /// absorbed.
  void RecordCorruptMessageDropped() EXCLUDES(mutex_);
  int64_t corrupt_messages_dropped() const EXCLUDES(mutex_);

 private:
  std::string name_;
  SortKeyCache key_cache_;
  ThreadPool pool_;
  ParallelDataSet::Options aggregation_;
  mutable Mutex mutex_;
  std::map<std::string, DataSetPtr> datasets_ GUARDED_BY(mutex_);
  int64_t restart_count_ GUARDED_BY(mutex_) = 0;
  int64_t dropped_map_failures_ GUARDED_BY(mutex_) = 0;
  std::string last_dropped_map_error_ GUARDED_BY(mutex_);
  int64_t corrupt_messages_dropped_ GUARDED_BY(mutex_) = 0;
};

using WorkerPtr = std::shared_ptr<Worker>;

}  // namespace cluster
}  // namespace hillview

#endif  // HILLVIEW_CLUSTER_WORKER_H_
