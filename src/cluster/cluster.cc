#include "cluster/cluster.h"

#include "cluster/root.h"

namespace hillview {
namespace cluster {

Cluster::Cluster(std::vector<WorkerPtr> workers, SimulatedNetwork* network,
                 Options options)
    : workers_(std::move(workers)),
      network_(network),
      options_(options),
      health_(static_cast<int>(workers_.size()), options.health),
      scheduler_(options.scheduler, &health_) {}

Cluster::~Cluster() {
  // Abandoned attempts (deadline misses, degraded completions, superseded
  // renders) leave worker pool tasks running after their query returned;
  // those tasks reach back into the health tracker and the network. Drain
  // every pool before any member dies so stragglers cannot dangle.
  for (auto& worker : workers_) worker->Drain();
}

std::shared_ptr<RootSession> Cluster::OpenSession() {
  const int id = next_session_id_.fetch_add(1, std::memory_order_relaxed);
  // Not make_shared: the session constructor is private to keep Cluster the
  // only issuer of session ids.
  return std::shared_ptr<RootSession>(new RootSession(this, id));
}

}  // namespace cluster
}  // namespace hillview
