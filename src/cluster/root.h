#ifndef HILLVIEW_CLUSTER_ROOT_H_
#define HILLVIEW_CLUSTER_ROOT_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/remote_dataset.h"
#include "core/redo_log.h"

namespace hillview {
namespace cluster {

/// One tenant's handle on a shared Cluster (obtained via
/// Cluster::OpenSession): the per-user slice of the root node. The session
/// owns only genuinely per-user state — its redo log (the record of ITS
/// exploration, replayed to heal soft-state loss, §5.7–5.8), its render
/// generations, and its session id (threaded through SketchOptions into the
/// SimulatedNetwork for per-tenant byte accounting). Workers, the health
/// tracker, the shared ComputationCache and the fair scheduler live on the
/// Cluster and are shared by all sessions.
///
/// Fault handling is layered by failure class (the three-tier contract):
/// soft-state loss (kUnavailable) heals by redo-log replay; transport faults
/// (kDeadlineExceeded, after the remote edge's own per-RPC retries) get
/// bounded query-level retries with capped, seeded backoff; a worker that
/// keeps failing trips its circuit breaker, after which queries degrade
/// gracefully — the merge completes over the survivors and the result
/// carries a coverage fraction instead of an error. Degraded results are
/// never stored in the shared cache (and never served to another session).
///
/// Queries additionally pass through the cluster's QueryScheduler: admission
/// control may shed them with Unavailable before they run, and deficit-
/// round-robin fair scheduling orders them against other sessions' queries.
///
/// Cancellation contract: BeginRender(view) starts a new render generation
/// for a view and supersedes the previous one — the old generation's token
/// flips, its queries settle Status::Cancelled (checked at morsel
/// boundaries, at partial-result emission in the merger, and while queued in
/// the scheduler), and cancelled queries never poison the shared cache or
/// the health stats.
///
/// The Cluster must outlive the session and every query it runs.
class RootSession {
 public:
  /// Deployment-wide tuning now lives on the Cluster; the alias keeps the
  /// pre-split spelling (`RootSession::Options`) working at call sites.
  using Options = Cluster::Options;

  /// Per-query fault-handling + serving observability, filled in by
  /// RunSketch / RunErased when the caller passes a stats out-param.
  struct QueryStats {
    double coverage = 1.0;     // partitions merged / total partitions
    int replay_heals = 0;      // redo-log replays this query triggered
    int transport_retries = 0; // query-level deadline retries
    bool degraded = false;     // coverage < 1.0
    bool from_cache = false;   // served from the shared computation cache
    bool coalesced = false;    // adopted another caller's in-flight result
  };

  /// Registers a base dataset: `partition_loaders[i]` produces micropartition
  /// i, assigned to worker i % num_workers. Logged: replay re-registers the
  /// same loaders ("the recursion ends when data is read from disk").
  /// Dataset ids are cluster-global: sessions loading the same id share the
  /// worker-side data and the shared cache's keyspace (by design — that is
  /// what makes cross-session cache hits possible).
  Status LoadDataSet(const std::string& dataset_id,
                     std::vector<LocalDataSet::Loader> partition_loaders);

  /// Derives `<parent>/<op_name>` on every worker by a deterministic
  /// per-partition map (filtering / new columns, §5.6). Returns the derived
  /// dataset id. Logged for replay.
  Result<std::string> MapDataSet(const std::string& parent_id, TableMap map,
                                 const std::string& op_name);

  /// The root execution tree for a dataset: a ParallelDataSet over one
  /// RemoteDataSet per worker.
  DataSetPtr GetRootDataSet(const std::string& dataset_id);

  /// Runs a sketch to completion through the fair scheduler, with
  /// shared-cache lookup (when `cacheable`; identical concurrent queries are
  /// single-flighted across sessions), Unavailable-healing replay, deadline
  /// retries and — as a last resort — coverage-marked degradation. The seed
  /// is logged. `stats` (optional) receives what the fault machinery did.
  /// `token` (optional, typically from BeginRender) cancels the query when
  /// its render is superseded; it then returns Status::Cancelled.
  template <typename R>
  Result<R> RunSketch(const std::string& dataset_id, SketchPtr<R> sketch,
                      uint64_t seed = 0, bool cacheable = false,
                      QueryStats* stats = nullptr,
                      CancellationTokenPtr token = {}) {
    AnySketch erased = AnySketch::Wrap<R>(std::move(sketch));
    HV_ASSIGN_OR_RETURN(AnySummary summary,
                        RunErased(dataset_id, erased, seed, cacheable,
                                  std::move(token), stats));
    return summary.As<R>();
  }

  /// Streaming variant (no replay healing — callers wanting progressive
  /// updates resubscribe on failure). Streams bypass the scheduler's
  /// admission/fairness queue: they are the interactive progressive path,
  /// and their cost lands on the per-session byte counters regardless.
  template <typename R>
  StreamPtr<PartialResult<R>> RunSketchStream(const std::string& dataset_id,
                                              SketchPtr<R> sketch,
                                              uint64_t seed = 0,
                                              CancellationTokenPtr token = {}) {
    DataSetPtr root = GetRootDataSet(dataset_id);
    SketchOptions options;
    options.seed = seed;
    options.cancellation = std::move(token);
    options.session_id = session_id_;
    redo_log_.Append("sketch", dataset_id + "#" + sketch->name(), seed);
    return RunTypedSketch<R>(*root, std::move(sketch), options);
  }

  /// Starts a new render generation for `view_id` and returns its
  /// cancellation token. The previous generation's token (if any) is
  /// cancelled: a scroll that arrives before the last render finished
  /// supersedes it, and the superseded query settles Status::Cancelled. Pass
  /// the token to RunSketch / RunSketchStream.
  CancellationTokenPtr BeginRender(const std::string& view_id)
      EXCLUDES(render_mutex_);

  /// The current render generation of a view (0 before the first
  /// BeginRender); observability for tests.
  int render_generation(const std::string& view_id) const
      EXCLUDES(render_mutex_);

  /// Simulates a crash of worker `index` (drops all its soft state).
  void RestartWorker(int index) { cluster_->workers()[index]->Restart(); }

  /// Hook fired just before each query retry (after the heal/backoff step),
  /// with the 0-based attempt number that failed and its status. Tests use
  /// it to crash workers *between* the retry attempts of one query.
  void set_retry_hook(std::function<void(int, const Status&)> hook) {
    retry_hook_ = std::move(hook);
  }

  int session_id() const { return session_id_; }
  Cluster* cluster() { return cluster_; }
  int num_workers() const { return cluster_->num_workers(); }
  const std::vector<WorkerPtr>& workers() const { return cluster_->workers(); }
  RedoLog& redo_log() { return redo_log_; }
  /// The CLUSTER's shared cache (kept under the pre-split name so existing
  /// call sites read naturally).
  ComputationCache& cache() { return cluster_->shared_cache(); }
  SimulatedNetwork* network() { return cluster_->network(); }
  WorkerHealth& health() { return cluster_->health(); }

 private:
  friend class Cluster;  // sole issuer of sessions (OpenSession)

  RootSession(Cluster* cluster, int session_id)
      : cluster_(cluster), session_id_(session_id) {}

  Result<AnySummary> RunErased(const std::string& dataset_id,
                               const AnySketch& sketch, uint64_t seed,
                               bool cacheable, CancellationTokenPtr token,
                               QueryStats* stats = nullptr);

  /// The healing attempt loop (replay / backoff-retry / degraded pass), run
  /// inside a scheduler grant.
  Result<AnySummary> RunAttempts(const std::string& dataset_id,
                                 const AnySketch& sketch, uint64_t seed,
                                 const CancellationTokenPtr& token,
                                 QueryStats* q);

  /// Execution tree with explicit degraded-mode choice; the public
  /// GetRootDataSet builds the strict (configured) variant.
  DataSetPtr BuildRootDataSet(const std::string& dataset_id, bool tolerant);

  struct RenderState {
    int generation = 0;
    CancellationTokenPtr token;
  };

  Cluster* const cluster_;
  const int session_id_;
  RedoLog redo_log_;
  std::function<void(int, const Status&)> retry_hook_;
  mutable Mutex render_mutex_;
  std::unordered_map<std::string, RenderState> renders_
      GUARDED_BY(render_mutex_);
};

}  // namespace cluster
}  // namespace hillview

#endif  // HILLVIEW_CLUSTER_ROOT_H_
