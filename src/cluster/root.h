#ifndef HILLVIEW_CLUSTER_ROOT_H_
#define HILLVIEW_CLUSTER_ROOT_H_

#include <memory>
#include <string>
#include <vector>

#include <functional>

#include "cluster/network.h"
#include "cluster/remote_dataset.h"
#include "cluster/worker.h"
#include "cluster/worker_health.h"
#include "core/computation_cache.h"
#include "core/dataset.h"
#include "core/redo_log.h"

namespace hillview {
namespace cluster {

/// The root node (web-server side of Fig 1): tracks workers, builds
/// execution trees over remote datasets, owns the redo log and the
/// computation cache, and heals soft-state loss by lazy replay (§5.7–5.8).
///
/// Fault handling is layered by failure class (the ISSUE's three-tier
/// contract): soft-state loss (kUnavailable) heals by redo-log replay;
/// transport faults (kDeadlineExceeded, after the remote edge's own per-RPC
/// retries) get bounded query-level retries with capped, seeded backoff; a
/// worker that keeps failing trips its circuit breaker, after which queries
/// degrade gracefully — the merge completes over the survivors and the
/// result carries a coverage fraction instead of an error. Degraded results
/// are never stored in the computation cache.
class RootSession {
 public:
  struct Options {
    ParallelDataSet::Options aggregation;
    /// Attempts after an Unavailable failure (each preceded by a full
    /// redo-log replay).
    int max_replay_retries = 2;
    /// Query-level retries after a kDeadlineExceeded failure (on top of the
    /// per-RPC retries the remote edge already performed).
    int max_transport_retries = 3;
    /// Per-RPC deadline/retry policy handed to every machine-boundary edge.
    SketchOptions::RpcPolicy rpc{/*deadline_ms=*/0.0, /*max_retries=*/2,
                                 /*backoff_base_ms=*/1.0,
                                 /*backoff_cap_ms=*/50.0};
    /// Once every healing budget is exhausted (or a breaker is open), run
    /// one final pass that tolerates lost workers and returns a
    /// coverage-marked partial result instead of an error (§5.7). False
    /// restores strict all-or-nothing semantics.
    bool allow_degraded = true;
    /// Circuit-breaker tuning for the per-worker health tracker.
    WorkerHealth::Options health;
  };

  /// Per-query fault-handling observability, filled in by RunSketch /
  /// RunErased when the caller passes a stats out-param.
  struct QueryStats {
    double coverage = 1.0;     // partitions merged / total partitions
    int replay_heals = 0;      // redo-log replays this query triggered
    int transport_retries = 0; // query-level deadline retries
    bool degraded = false;     // coverage < 1.0
    bool from_cache = false;   // served from the computation cache
  };

  RootSession(std::vector<WorkerPtr> workers, SimulatedNetwork* network)
      : RootSession(std::move(workers), network, Options{}) {}
  RootSession(std::vector<WorkerPtr> workers, SimulatedNetwork* network,
              Options options);

  /// Quiesces the deployment: drains every worker pool so no in-flight RPC
  /// machinery (retry drivers, health reports) can outlive the session's
  /// members. Abandoned degraded/timed-out attempts make such stragglers
  /// normal, not exceptional.
  ~RootSession();

  /// Registers a base dataset: `partition_loaders[i]` produces micropartition
  /// i, assigned to worker i % num_workers. Logged: replay re-registers the
  /// same loaders ("the recursion ends when data is read from disk").
  Status LoadDataSet(const std::string& dataset_id,
                     std::vector<LocalDataSet::Loader> partition_loaders);

  /// Derives `<parent>/<op_name>` on every worker by a deterministic
  /// per-partition map (filtering / new columns, §5.6). Returns the derived
  /// dataset id. Logged for replay.
  Result<std::string> MapDataSet(const std::string& parent_id, TableMap map,
                                 const std::string& op_name);

  /// The root execution tree for a dataset: a ParallelDataSet over one
  /// RemoteDataSet per worker.
  DataSetPtr GetRootDataSet(const std::string& dataset_id);

  /// Runs a sketch to completion with computation-cache lookup (when
  /// `cacheable`), Unavailable-healing replay, deadline retries and — as a
  /// last resort — coverage-marked degradation. The seed is logged. `stats`
  /// (optional) receives what the fault machinery did for this query.
  template <typename R>
  Result<R> RunSketch(const std::string& dataset_id, SketchPtr<R> sketch,
                      uint64_t seed = 0, bool cacheable = false,
                      QueryStats* stats = nullptr) {
    AnySketch erased = AnySketch::Wrap<R>(std::move(sketch));
    HV_ASSIGN_OR_RETURN(AnySummary summary,
                        RunErased(dataset_id, erased, seed, cacheable, stats));
    return summary.As<R>();
  }

  /// Streaming variant (no replay healing — callers wanting progressive
  /// updates resubscribe on failure).
  template <typename R>
  StreamPtr<PartialResult<R>> RunSketchStream(const std::string& dataset_id,
                                              SketchPtr<R> sketch,
                                              uint64_t seed = 0,
                                              CancellationTokenPtr token = {}) {
    DataSetPtr root = GetRootDataSet(dataset_id);
    SketchOptions options;
    options.seed = seed;
    options.cancellation = std::move(token);
    redo_log_.Append("sketch", dataset_id + "#" + sketch->name(), seed);
    return RunTypedSketch<R>(*root, std::move(sketch), options);
  }

  /// Simulates a crash of worker `index` (drops all its soft state).
  void RestartWorker(int index) { workers_[index]->Restart(); }

  /// Hook fired just before each query retry (after the heal/backoff step),
  /// with the 0-based attempt number that failed and its status. Tests use
  /// it to crash workers *between* the retry attempts of one query.
  void set_retry_hook(std::function<void(int, const Status&)> hook) {
    retry_hook_ = std::move(hook);
  }

  int num_workers() const { return static_cast<int>(workers_.size()); }
  const std::vector<WorkerPtr>& workers() const { return workers_; }
  RedoLog& redo_log() { return redo_log_; }
  ComputationCache& cache() { return cache_; }
  SimulatedNetwork* network() { return network_; }
  WorkerHealth& health() { return health_; }

 private:
  Result<AnySummary> RunErased(const std::string& dataset_id,
                               const AnySketch& sketch, uint64_t seed,
                               bool cacheable, QueryStats* stats = nullptr);

  /// Execution tree with explicit degraded-mode choice; the public
  /// GetRootDataSet builds the strict (configured) variant.
  DataSetPtr BuildRootDataSet(const std::string& dataset_id, bool tolerant);

  std::vector<WorkerPtr> workers_;
  SimulatedNetwork* network_;
  Options options_;
  RedoLog redo_log_;
  ComputationCache cache_;
  WorkerHealth health_;
  std::function<void(int, const Status&)> retry_hook_;
};

}  // namespace cluster
}  // namespace hillview

#endif  // HILLVIEW_CLUSTER_ROOT_H_
