#ifndef HILLVIEW_CLUSTER_ROOT_H_
#define HILLVIEW_CLUSTER_ROOT_H_

#include <memory>
#include <string>
#include <vector>

#include "cluster/network.h"
#include "cluster/remote_dataset.h"
#include "cluster/worker.h"
#include "core/computation_cache.h"
#include "core/dataset.h"
#include "core/redo_log.h"

namespace hillview {
namespace cluster {

/// The root node (web-server side of Fig 1): tracks workers, builds
/// execution trees over remote datasets, owns the redo log and the
/// computation cache, and heals soft-state loss by lazy replay (§5.7–5.8).
class RootSession {
 public:
  struct Options {
    ParallelDataSet::Options aggregation;
    /// Attempts after an Unavailable failure (each preceded by a full
    /// redo-log replay).
    int max_replay_retries = 2;
  };

  RootSession(std::vector<WorkerPtr> workers, SimulatedNetwork* network)
      : RootSession(std::move(workers), network, Options{}) {}
  RootSession(std::vector<WorkerPtr> workers, SimulatedNetwork* network,
              Options options);

  /// Registers a base dataset: `partition_loaders[i]` produces micropartition
  /// i, assigned to worker i % num_workers. Logged: replay re-registers the
  /// same loaders ("the recursion ends when data is read from disk").
  Status LoadDataSet(const std::string& dataset_id,
                     std::vector<LocalDataSet::Loader> partition_loaders);

  /// Derives `<parent>/<op_name>` on every worker by a deterministic
  /// per-partition map (filtering / new columns, §5.6). Returns the derived
  /// dataset id. Logged for replay.
  Result<std::string> MapDataSet(const std::string& parent_id, TableMap map,
                                 const std::string& op_name);

  /// The root execution tree for a dataset: a ParallelDataSet over one
  /// RemoteDataSet per worker.
  DataSetPtr GetRootDataSet(const std::string& dataset_id);

  /// Runs a sketch to completion with computation-cache lookup (when
  /// `cacheable`) and Unavailable-healing replay. The seed is logged.
  template <typename R>
  Result<R> RunSketch(const std::string& dataset_id, SketchPtr<R> sketch,
                      uint64_t seed = 0, bool cacheable = false) {
    AnySketch erased = AnySketch::Wrap<R>(std::move(sketch));
    HV_ASSIGN_OR_RETURN(AnySummary summary,
                        RunErased(dataset_id, erased, seed, cacheable));
    return summary.As<R>();
  }

  /// Streaming variant (no replay healing — callers wanting progressive
  /// updates resubscribe on failure).
  template <typename R>
  StreamPtr<PartialResult<R>> RunSketchStream(const std::string& dataset_id,
                                              SketchPtr<R> sketch,
                                              uint64_t seed = 0,
                                              CancellationTokenPtr token = {}) {
    DataSetPtr root = GetRootDataSet(dataset_id);
    SketchOptions options;
    options.seed = seed;
    options.cancellation = std::move(token);
    redo_log_.Append("sketch", dataset_id + "#" + sketch->name(), seed);
    return RunTypedSketch<R>(*root, std::move(sketch), options);
  }

  /// Simulates a crash of worker `index` (drops all its soft state).
  void RestartWorker(int index) { workers_[index]->Restart(); }

  int num_workers() const { return static_cast<int>(workers_.size()); }
  const std::vector<WorkerPtr>& workers() const { return workers_; }
  RedoLog& redo_log() { return redo_log_; }
  ComputationCache& cache() { return cache_; }
  SimulatedNetwork* network() { return network_; }

 private:
  Result<AnySummary> RunErased(const std::string& dataset_id,
                               const AnySketch& sketch, uint64_t seed,
                               bool cacheable);

  std::vector<WorkerPtr> workers_;
  SimulatedNetwork* network_;
  Options options_;
  RedoLog redo_log_;
  ComputationCache cache_;
};

}  // namespace cluster
}  // namespace hillview

#endif  // HILLVIEW_CLUSTER_ROOT_H_
