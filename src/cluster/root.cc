#include "cluster/root.h"

#include <algorithm>
#include <thread>

#include "util/random.h"

namespace hillview {
namespace cluster {

namespace {

/// Retriable at the query level: soft-state loss (heals via replay) and
/// transport/deadline faults (heal via re-running the pure sketch). Anything
/// else is a real error and fails the query immediately.
bool Retriable(const Status& s) {
  return s.code() == StatusCode::kUnavailable ||
         s.code() == StatusCode::kDeadlineExceeded;
}

/// Query-level backoff before transport retry `retry` (1-based): capped
/// exponential scaled by deterministic seeded jitter in [0.5, 1.0)x — the
/// same shape as the per-RPC backoff, one level up.
double QueryBackoffMs(const SketchOptions::RpcPolicy& rpc, uint64_t seed,
                      int retry) {
  double ms = rpc.backoff_base_ms;
  for (int i = 1; i < retry; ++i) ms *= 2.0;
  ms = std::min(ms, rpc.backoff_cap_ms);
  Random rng(MixSeed(MixSeed(seed, 0x9e3779b97f4a7c15ULL),
                     static_cast<uint64_t>(retry)));
  return ms * (0.5 + 0.5 * rng.NextDouble());
}

}  // namespace

RootSession::RootSession(std::vector<WorkerPtr> workers,
                         SimulatedNetwork* network, Options options)
    : workers_(std::move(workers)),
      network_(network),
      options_(options),
      health_(static_cast<int>(workers_.size()), options.health) {}

RootSession::~RootSession() {
  // Abandoned attempts (deadline misses, degraded completions) leave worker
  // pool tasks running after their query returned; those tasks reach back
  // into this session (health reports) and the network. Drain every pool
  // before any member dies so stragglers cannot dangle — and so the last
  // reference to a Worker is never dropped on that worker's own pool thread
  // (a self-join in its destructor).
  for (auto& worker : workers_) worker->pool()->Wait();
}

Status RootSession::LoadDataSet(
    const std::string& dataset_id,
    std::vector<LocalDataSet::Loader> partition_loaders) {
  auto do_register = [this, dataset_id, partition_loaders]() -> Status {
    // Round-robin partition assignment: the paper allows arbitrary
    // horizontal partitioning (§2), so placement needs no keying.
    std::vector<std::vector<std::shared_ptr<LocalDataSet>>> per_worker(
        workers_.size());
    for (size_t p = 0; p < partition_loaders.size(); ++p) {
      size_t w = p % workers_.size();
      per_worker[w].push_back(LocalDataSet::FromLoader(
          dataset_id + "[" + std::to_string(p) + "]", partition_loaders[p]));
    }
    for (size_t w = 0; w < workers_.size(); ++w) {
      HV_RETURN_IF_ERROR(
          workers_[w]->RegisterBase(dataset_id, std::move(per_worker[w])));
    }
    return Status::OK();
  };
  HV_RETURN_IF_ERROR(do_register());
  redo_log_.Append("load",
                   dataset_id + " (" +
                       std::to_string(partition_loaders.size()) +
                       " partitions)",
                   0, do_register);
  return Status::OK();
}

Result<std::string> RootSession::MapDataSet(const std::string& parent_id,
                                            TableMap map,
                                            const std::string& op_name) {
  std::string new_id = parent_id + "/" + op_name;
  auto do_map = [this, parent_id, new_id, map, op_name]() -> Status {
    for (auto& worker : workers_) {
      HV_RETURN_IF_ERROR(worker->ApplyMap(parent_id, new_id, map, op_name));
    }
    return Status::OK();
  };
  HV_RETURN_IF_ERROR(do_map());
  redo_log_.Append("map", parent_id + " -> " + new_id, 0, do_map);
  return new_id;
}

DataSetPtr RootSession::GetRootDataSet(const std::string& dataset_id) {
  return BuildRootDataSet(dataset_id,
                          options_.aggregation.tolerate_child_failures);
}

DataSetPtr RootSession::BuildRootDataSet(const std::string& dataset_id,
                                         bool tolerant) {
  std::vector<DataSetPtr> children;
  children.reserve(workers_.size());
  for (size_t w = 0; w < workers_.size(); ++w) {
    // Every machine-boundary edge knows its worker index (the fault-injection
    // channel id) and reports RPC outcomes to the shared health tracker, so
    // the breaker learns from all traffic regardless of degraded mode.
    children.push_back(std::make_shared<RemoteDataSet>(
        workers_[w], dataset_id, network_, static_cast<int>(w), &health_));
  }
  ParallelDataSet::Options aggregation = options_.aggregation;
  aggregation.tolerate_child_failures =
      aggregation.tolerate_child_failures || tolerant;
  // The root aggregation node; children recurse into the workers' own
  // parallel trees (nullptr pool: remote children schedule on worker pools).
  return std::make_shared<ParallelDataSet>(
      "root/" + dataset_id, std::move(children), nullptr, aggregation);
}

Result<AnySummary> RootSession::RunErased(const std::string& dataset_id,
                                          const AnySketch& sketch,
                                          uint64_t seed, bool cacheable,
                                          QueryStats* stats) {
  QueryStats local_stats;
  QueryStats& q = stats != nullptr ? *stats : local_stats;
  q = QueryStats{};
  std::string cache_key = ComputationCache::Key(dataset_id, sketch.name(), seed);
  if (cacheable) {
    if (auto hit = cache_.Get(cache_key)) {
      // The cache only ever holds full-coverage results (degraded summaries
      // are never stored), so a hit is always complete.
      q.from_cache = true;
      return *hit;
    }
  }
  redo_log_.Append("sketch", dataset_id + "#" + sketch.name(), seed);

  Status last_error = Status::OK();
  int replay_attempts = 0;
  int transport_retries = 0;
  bool degraded_pass = false;
  // Total attempts: the first run, every healing retry, plus the one final
  // degraded pass.
  const int max_attempts =
      1 + options_.max_replay_retries + options_.max_transport_retries + 1;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    // Degrade as soon as a breaker is open: the breaker's verdict is the
    // signal that retrying into that worker is pointless, so the merge
    // should complete over the survivors (§5.7). The final degraded pass
    // also tolerates losses regardless of breaker state.
    const bool tolerant =
        degraded_pass || (options_.allow_degraded && health_.AnyOpen());
    DataSetPtr root = BuildRootDataSet(dataset_id, tolerant);
    SketchOptions options;
    options.seed = seed;
    options.rpc = options_.rpc;
    auto stream = root->RunSketch(sketch, options);

    std::optional<PartialResult<AnySummary>> last;
    bool backstop_fired = false;
    if (options_.rpc.deadline_ms > 0) {
      // Backstop against a truly hung worker whose stream never completes
      // at all — distinct from (and far above) the per-RPC deadline, which
      // handles merely late or lost responses.
      const double backstop_ms =
          (options_.rpc.deadline_ms * (options_.rpc.max_retries + 1) +
           options_.rpc.backoff_cap_ms * options_.rpc.max_retries) *
              10.0 +
          1000.0;
      last = stream->BlockingLastFor(backstop_ms, &backstop_fired);
    } else {
      last = stream->BlockingLast();
    }
    Status status = backstop_fired
                        ? Status::DeadlineExceeded(
                              "query exceeded its completion backstop")
                        : stream->final_status();

    if (status.ok()) {
      if (!last.has_value()) {
        return Status::Internal("sketch completed without a result");
      }
      q.coverage = last->coverage;
      q.degraded = last->coverage < 1.0;
      q.replay_heals = replay_attempts;
      q.transport_retries = transport_retries;
      // Degraded results are never cached: after the cluster heals, the
      // same query must recompute at full coverage, not serve the partial
      // view forever.
      if (cacheable && !q.degraded) cache_.Put(cache_key, last->value);
      return last->value;
    }
    last_error = status;
    if (!Retriable(status)) break;

    if (status.code() == StatusCode::kUnavailable &&
        replay_attempts < options_.max_replay_retries) {
      // Lazy replay (§5.7): re-execute the logged operations to rebuild the
      // missing soft state, then retry the query.
      ++replay_attempts;
      Status replayed = redo_log_.ReplayAll();
      if (!replayed.ok()) {
        if (!Retriable(replayed)) {
          q.replay_heals = replay_attempts;
          q.transport_retries = transport_retries;
          return replayed;
        }
        // The replay itself hit soft-state loss or a transport fault (e.g.
        // a worker died again mid-heal): that is just another failure of
        // this attempt. It already consumed a slot in the replay budget;
        // loop and heal again rather than giving up.
        last_error = replayed;
      }
      if (retry_hook_) retry_hook_(attempt, status);
      continue;
    }
    if (status.code() == StatusCode::kDeadlineExceeded &&
        transport_retries < options_.max_transport_retries) {
      // Transport-level failure: the sketch is pure and seeded, so simply
      // re-running it is safe. Back off (capped, seeded jitter) first.
      ++transport_retries;
      const double backoff =
          QueryBackoffMs(options_.rpc, seed, transport_retries);
      if (backoff > 0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(backoff));
      }
      if (retry_hook_) retry_hook_(attempt, status);
      continue;
    }
    if (!degraded_pass && options_.allow_degraded) {
      // Every healing budget is spent. Last resort: accept losing the dead
      // workers and complete over the survivors, marking the coverage.
      degraded_pass = true;
      if (retry_hook_) retry_hook_(attempt, status);
      continue;
    }
    break;
  }
  q.replay_heals = replay_attempts;
  q.transport_retries = transport_retries;
  return last_error;
}

}  // namespace cluster
}  // namespace hillview
