#include "cluster/root.h"

#include <algorithm>
#include <optional>
#include <thread>

#include "util/random.h"

namespace hillview {
namespace cluster {

namespace {

/// Retriable at the query level: soft-state loss (heals via replay) and
/// transport/deadline faults (heal via re-running the pure sketch). Anything
/// else — including Cancelled — is final and fails the query immediately.
bool Retriable(const Status& s) {
  return s.code() == StatusCode::kUnavailable ||
         s.code() == StatusCode::kDeadlineExceeded;
}

/// Query-level backoff before transport retry `retry` (1-based): capped
/// exponential scaled by deterministic seeded jitter in [0.5, 1.0)x — the
/// same shape as the per-RPC backoff, one level up.
double QueryBackoffMs(const SketchOptions::RpcPolicy& rpc, uint64_t seed,
                      int retry) {
  double ms = rpc.backoff_base_ms;
  for (int i = 1; i < retry; ++i) ms *= 2.0;
  ms = std::min(ms, rpc.backoff_cap_ms);
  Random rng(MixSeed(MixSeed(seed, 0x9e3779b97f4a7c15ULL),
                     static_cast<uint64_t>(retry)));
  return ms * (0.5 + 0.5 * rng.NextDouble());
}

/// Settles a single-flight cache flight on every exit path. The owner
/// publishes a value only for full-coverage successes; everything else
/// (degraded, cancelled, shed, failed) releases the flight empty so a
/// waiting session recomputes instead of adopting a partial result.
class FlightGuard {
 public:
  FlightGuard(ComputationCache* cache, std::string key, bool active)
      : cache_(cache), key_(std::move(key)), active_(active) {}
  ~FlightGuard() {
    if (active_) cache_->FinishCompute(key_, std::move(value_));
  }
  void Publish(AnySummary value) { value_ = std::move(value); }

  FlightGuard(const FlightGuard&) = delete;
  FlightGuard& operator=(const FlightGuard&) = delete;

 private:
  ComputationCache* cache_;
  std::string key_;
  bool active_;
  std::optional<AnySummary> value_;
};

}  // namespace

Status RootSession::LoadDataSet(
    const std::string& dataset_id,
    std::vector<LocalDataSet::Loader> partition_loaders) {
  auto do_register = [this, dataset_id, partition_loaders]() -> Status {
    const std::vector<WorkerPtr>& ws = cluster_->workers();
    // Round-robin partition assignment: the paper allows arbitrary
    // horizontal partitioning (§2), so placement needs no keying.
    std::vector<std::vector<std::shared_ptr<LocalDataSet>>> per_worker(
        ws.size());
    for (size_t p = 0; p < partition_loaders.size(); ++p) {
      size_t w = p % ws.size();
      per_worker[w].push_back(LocalDataSet::FromLoader(
          dataset_id + "[" + std::to_string(p) + "]", partition_loaders[p]));
    }
    for (size_t w = 0; w < ws.size(); ++w) {
      HV_RETURN_IF_ERROR(
          ws[w]->RegisterBase(dataset_id, std::move(per_worker[w])));
    }
    return Status::OK();
  };
  HV_RETURN_IF_ERROR(do_register());
  redo_log_.Append("load",
                   dataset_id + " (" +
                       std::to_string(partition_loaders.size()) +
                       " partitions)",
                   0, do_register);
  return Status::OK();
}

Result<std::string> RootSession::MapDataSet(const std::string& parent_id,
                                            TableMap map,
                                            const std::string& op_name) {
  std::string new_id = parent_id + "/" + op_name;
  auto do_map = [this, parent_id, new_id, map, op_name]() -> Status {
    for (const auto& worker : cluster_->workers()) {
      HV_RETURN_IF_ERROR(worker->ApplyMap(parent_id, new_id, map, op_name));
    }
    return Status::OK();
  };
  HV_RETURN_IF_ERROR(do_map());
  redo_log_.Append("map", parent_id + " -> " + new_id, 0, do_map);
  return new_id;
}

DataSetPtr RootSession::GetRootDataSet(const std::string& dataset_id) {
  return BuildRootDataSet(
      dataset_id, cluster_->options().aggregation.tolerate_child_failures);
}

DataSetPtr RootSession::BuildRootDataSet(const std::string& dataset_id,
                                         bool tolerant) {
  const std::vector<WorkerPtr>& workers = cluster_->workers();
  std::vector<DataSetPtr> children;
  children.reserve(workers.size());
  for (size_t w = 0; w < workers.size(); ++w) {
    // Every machine-boundary edge knows its worker index (the fault-injection
    // channel id) and reports RPC outcomes to the shared health tracker, so
    // the breaker learns from all sessions' traffic regardless of degraded
    // mode.
    children.push_back(std::make_shared<RemoteDataSet>(
        workers[w], dataset_id, cluster_->network(), static_cast<int>(w),
        &cluster_->health()));
  }
  ParallelDataSet::Options aggregation = cluster_->options().aggregation;
  aggregation.tolerate_child_failures =
      aggregation.tolerate_child_failures || tolerant;
  // The root aggregation node; children recurse into the workers' own
  // parallel trees (nullptr pool: remote children schedule on worker pools).
  return std::make_shared<ParallelDataSet>(
      "root/" + dataset_id, std::move(children), nullptr, aggregation);
}

CancellationTokenPtr RootSession::BeginRender(const std::string& view_id) {
  MutexLock lock(render_mutex_);
  RenderState& render = renders_[view_id];
  // Supersede the previous generation: its in-flight query (if any) observes
  // the flip at its next poll point and settles Status::Cancelled.
  if (render.token != nullptr) render.token->Cancel();
  ++render.generation;
  render.token = std::make_shared<CancellationToken>();
  return render.token;
}

int RootSession::render_generation(const std::string& view_id) const {
  MutexLock lock(render_mutex_);
  auto it = renders_.find(view_id);
  return it == renders_.end() ? 0 : it->second.generation;
}

Result<AnySummary> RootSession::RunErased(const std::string& dataset_id,
                                          const AnySketch& sketch,
                                          uint64_t seed, bool cacheable,
                                          CancellationTokenPtr token,
                                          QueryStats* stats) {
  QueryStats local_stats;
  QueryStats& q = stats != nullptr ? *stats : local_stats;
  q = QueryStats{};
  ComputationCache& cache = cluster_->shared_cache();
  const std::string cache_key =
      ComputationCache::Key(dataset_id, sketch.name(), seed);

  bool flight_owner = false;
  if (cacheable) {
    if (token != nullptr && token->IsCancelled()) {
      return Status::Cancelled("render superseded before start");
    }
    // Single-flight across sessions: a hit (cached, or adopted from another
    // session's concurrent identical query) returns without computing; a
    // miss elects this query the flight owner. The cache only ever holds
    // full-coverage results, so a hit is always complete.
    bool coalesced = false;
    auto hit = cache.GetOrBeginCompute(cache_key, &flight_owner, &coalesced);
    if (hit.has_value()) {
      q.from_cache = true;
      q.coalesced = coalesced;
      return *hit;
    }
  }
  FlightGuard flight(&cache, cache_key, flight_owner);

  redo_log_.Append("sketch", dataset_id + "#" + sketch.name(), seed);

  // The attempt loop runs inside a scheduler grant: admission control may
  // shed it (Unavailable) or the render may be superseded while queued
  // (Cancelled) — in both cases the query never executes.
  const SimulatedNetwork::SessionTraffic before =
      cluster_->network()->SessionSnapshot(session_id_);
  Result<AnySummary> outcome = Status::Internal("query did not run");
  bool ran = false;
  Status scheduled = cluster_->scheduler().Execute(
      session_id_, token,
      [&]() -> Status {
        outcome = RunAttempts(dataset_id, sketch, seed, token, &q);
        return outcome.status();
      },
      &ran);
  if (!ran) return scheduled;

  // Charge the root-received bytes this query moved to the session's DRR
  // account (approximate when one session overlaps its own queries — the
  // fairness target is the per-session trend, not exact attribution).
  const SimulatedNetwork::SessionTraffic after =
      cluster_->network()->SessionSnapshot(session_id_);
  cluster_->scheduler().ChargeCost(
      session_id_, static_cast<int64_t>(after.bytes_up - before.bytes_up));

  if (outcome.ok() && !q.degraded && flight_owner) {
    // Publish to the shared cache and to any waiting session. Degraded
    // results are NEVER published: after the cluster heals, the same query
    // must recompute at full coverage, not serve the partial view forever —
    // and another session must never adopt this tenant's partial result.
    flight.Publish(outcome.value());
  }
  return outcome;
}

Result<AnySummary> RootSession::RunAttempts(const std::string& dataset_id,
                                            const AnySketch& sketch,
                                            uint64_t seed,
                                            const CancellationTokenPtr& token,
                                            QueryStats* stats) {
  QueryStats& q = *stats;
  const Cluster::Options& opts = cluster_->options();
  WorkerHealth& health = cluster_->health();

  Status last_error = Status::OK();
  int replay_attempts = 0;
  int transport_retries = 0;
  bool degraded_pass = false;
  // Total attempts: the first run, every healing retry, plus the one final
  // degraded pass.
  const int max_attempts =
      1 + opts.max_replay_retries + opts.max_transport_retries + 1;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (token != nullptr && token->IsCancelled()) {
      q.replay_heals = replay_attempts;
      q.transport_retries = transport_retries;
      return Status::Cancelled("render superseded");
    }
    // Degrade as soon as a breaker is open: the breaker's verdict is the
    // signal that retrying into that worker is pointless, so the merge
    // should complete over the survivors (§5.7). The final degraded pass
    // also tolerates losses regardless of breaker state.
    const bool tolerant =
        degraded_pass || (opts.allow_degraded && health.AnyOpen());
    DataSetPtr root = BuildRootDataSet(dataset_id, tolerant);
    SketchOptions options;
    options.seed = seed;
    options.rpc = opts.rpc;
    options.cancellation = token;
    options.session_id = session_id_;
    auto stream = root->RunSketch(sketch, options);

    std::optional<PartialResult<AnySummary>> last;
    bool backstop_fired = false;
    bool cancelled_wait = false;
    if (opts.rpc.deadline_ms > 0 || token != nullptr) {
      // Backstop against a truly hung worker whose stream never completes
      // at all — distinct from (and far above) the per-RPC deadline, which
      // handles merely late or lost responses. 0 = no backstop (then the
      // wait is purely cancellation-aware).
      const double backstop_ms =
          opts.rpc.deadline_ms > 0
              ? (opts.rpc.deadline_ms * (opts.rpc.max_retries + 1) +
                 opts.rpc.backoff_cap_ms * opts.rpc.max_retries) *
                        10.0 +
                    1000.0
              : 0.0;
      last = stream->BlockingLastFor(backstop_ms, &backstop_fired, token,
                                     &cancelled_wait);
    } else {
      last = stream->BlockingLast();
    }
    if (cancelled_wait) {
      // Superseded mid-flight: abandon the stream (stragglers complete into
      // a stream nobody reads) and settle immediately — the whole point of
      // generation-tagged cancellation is not waiting out slow renders.
      q.replay_heals = replay_attempts;
      q.transport_retries = transport_retries;
      return Status::Cancelled("render superseded");
    }
    Status status = backstop_fired
                        ? Status::DeadlineExceeded(
                              "query exceeded its completion backstop")
                        : stream->final_status();

    if (status.ok()) {
      if (!last.has_value()) {
        return Status::Internal("sketch completed without a result");
      }
      q.coverage = last->coverage;
      q.degraded = last->coverage < 1.0;
      q.replay_heals = replay_attempts;
      q.transport_retries = transport_retries;
      return last->value;
    }
    last_error = status;
    if (!Retriable(status)) break;

    if (status.code() == StatusCode::kUnavailable &&
        replay_attempts < opts.max_replay_retries) {
      // Lazy replay (§5.7): re-execute the logged operations to rebuild the
      // missing soft state, then retry the query.
      ++replay_attempts;
      Status replayed = redo_log_.ReplayAll();
      if (!replayed.ok()) {
        if (!Retriable(replayed)) {
          q.replay_heals = replay_attempts;
          q.transport_retries = transport_retries;
          return replayed;
        }
        // The replay itself hit soft-state loss or a transport fault (e.g.
        // a worker died again mid-heal): that is just another failure of
        // this attempt. It already consumed a slot in the replay budget;
        // loop and heal again rather than giving up.
        last_error = replayed;
      }
      if (retry_hook_) retry_hook_(attempt, status);
      continue;
    }
    if (status.code() == StatusCode::kDeadlineExceeded &&
        transport_retries < opts.max_transport_retries) {
      // Transport-level failure: the sketch is pure and seeded, so simply
      // re-running it is safe. Back off (capped, seeded jitter) first.
      ++transport_retries;
      const double backoff = QueryBackoffMs(opts.rpc, seed, transport_retries);
      if (backoff > 0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(backoff));
      }
      if (retry_hook_) retry_hook_(attempt, status);
      continue;
    }
    if (!degraded_pass && opts.allow_degraded) {
      // Every healing budget is spent. Last resort: accept losing the dead
      // workers and complete over the survivors, marking the coverage.
      degraded_pass = true;
      if (retry_hook_) retry_hook_(attempt, status);
      continue;
    }
    break;
  }
  q.replay_heals = replay_attempts;
  q.transport_retries = transport_retries;
  return last_error;
}

}  // namespace cluster
}  // namespace hillview
