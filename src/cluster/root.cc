#include "cluster/root.h"

namespace hillview {
namespace cluster {

RootSession::RootSession(std::vector<WorkerPtr> workers,
                         SimulatedNetwork* network, Options options)
    : workers_(std::move(workers)), network_(network), options_(options) {}

Status RootSession::LoadDataSet(
    const std::string& dataset_id,
    std::vector<LocalDataSet::Loader> partition_loaders) {
  auto do_register = [this, dataset_id, partition_loaders]() -> Status {
    // Round-robin partition assignment: the paper allows arbitrary
    // horizontal partitioning (§2), so placement needs no keying.
    std::vector<std::vector<std::shared_ptr<LocalDataSet>>> per_worker(
        workers_.size());
    for (size_t p = 0; p < partition_loaders.size(); ++p) {
      size_t w = p % workers_.size();
      per_worker[w].push_back(LocalDataSet::FromLoader(
          dataset_id + "[" + std::to_string(p) + "]", partition_loaders[p]));
    }
    for (size_t w = 0; w < workers_.size(); ++w) {
      HV_RETURN_IF_ERROR(
          workers_[w]->RegisterBase(dataset_id, std::move(per_worker[w])));
    }
    return Status::OK();
  };
  HV_RETURN_IF_ERROR(do_register());
  redo_log_.Append("load",
                   dataset_id + " (" +
                       std::to_string(partition_loaders.size()) +
                       " partitions)",
                   0, do_register);
  return Status::OK();
}

Result<std::string> RootSession::MapDataSet(const std::string& parent_id,
                                            TableMap map,
                                            const std::string& op_name) {
  std::string new_id = parent_id + "/" + op_name;
  auto do_map = [this, parent_id, new_id, map, op_name]() -> Status {
    for (auto& worker : workers_) {
      HV_RETURN_IF_ERROR(worker->ApplyMap(parent_id, new_id, map, op_name));
    }
    return Status::OK();
  };
  HV_RETURN_IF_ERROR(do_map());
  redo_log_.Append("map", parent_id + " -> " + new_id, 0, do_map);
  return new_id;
}

DataSetPtr RootSession::GetRootDataSet(const std::string& dataset_id) {
  std::vector<DataSetPtr> children;
  children.reserve(workers_.size());
  for (auto& worker : workers_) {
    children.push_back(
        std::make_shared<RemoteDataSet>(worker, dataset_id, network_));
  }
  // The root aggregation node; children recurse into the workers' own
  // parallel trees (nullptr pool: remote children schedule on worker pools).
  return std::make_shared<ParallelDataSet>("root/" + dataset_id,
                                           std::move(children), nullptr,
                                           options_.aggregation);
}

Result<AnySummary> RootSession::RunErased(const std::string& dataset_id,
                                          const AnySketch& sketch,
                                          uint64_t seed, bool cacheable) {
  std::string cache_key = ComputationCache::Key(dataset_id, sketch.name(), seed);
  if (cacheable) {
    if (auto hit = cache_.Get(cache_key)) return *hit;
  }
  redo_log_.Append("sketch", dataset_id + "#" + sketch.name(), seed);

  Status last_error = Status::OK();
  for (int attempt = 0; attempt <= options_.max_replay_retries; ++attempt) {
    if (attempt > 0) {
      // Lazy replay (§5.7): re-execute the logged operations to rebuild the
      // missing soft state, then retry the query.
      HV_RETURN_IF_ERROR(redo_log_.ReplayAll());
    }
    DataSetPtr root = GetRootDataSet(dataset_id);
    SketchOptions options;
    options.seed = seed;
    auto stream = root->RunSketch(sketch, options);
    auto last = stream->BlockingLast();
    Status status = stream->final_status();
    if (status.ok()) {
      if (!last.has_value()) {
        return Status::Internal("sketch completed without a result");
      }
      if (cacheable) cache_.Put(cache_key, last->value);
      return last->value;
    }
    if (status.code() != StatusCode::kUnavailable) return status;
    last_error = status;
  }
  return last_error;
}

}  // namespace cluster
}  // namespace hillview
