#ifndef HILLVIEW_CLUSTER_WORKER_HEALTH_H_
#define HILLVIEW_CLUSTER_WORKER_HEALTH_H_

#include <vector>

#include "util/thread_annotations.h"

namespace hillview {
namespace cluster {

/// Per-worker health tracker at the root: a consecutive-failure circuit
/// breaker with half-open probing. "Failure" here means unresponsiveness
/// (a deadline despite the per-RPC retry budget) — an error *response* such
/// as Unavailable proves the worker is alive and records success, since
/// soft-state loss heals by replay and must not trip the circuit.
/// While a worker's breaker is open the root
/// fast-fails RPCs to it inside the execution tree, so a degraded merger can
/// complete over the survivors instead of burning its whole deadline+retry
/// budget on a machine that is known-dead (§5.7: "the root returns the
/// results obtained from the remaining machines").
///
/// Probing is count-based, not wall-clock-based: after `open_uses_before_probe`
/// fast-failed uses the breaker goes half-open and lets exactly one probe RPC
/// through. Success closes the breaker; failure re-opens it. Counting uses
/// instead of elapsed time keeps recovery behavior deterministic under the
/// seeded fault plans (no wall clock anywhere in the fault path).
///
/// Thread-safe: one annotated mutex guards all per-worker state; stats are
/// exposed only through a locked Snapshot() like the caches.
class WorkerHealth {
 public:
  struct Options {
    int failure_threshold = 3;       // consecutive failures that trip a breaker
    int open_uses_before_probe = 2;  // fast-fails before a half-open probe
  };

  enum class State {
    kClosed,    // healthy: requests flow
    kOpen,      // tripped: requests fast-fail
    kHalfOpen,  // one probe in flight; its outcome decides
  };

  /// One consistent observability snapshot, taken under the lock.
  struct Stats {
    int64_t successes = 0;
    int64_t failures = 0;
    int64_t trips = 0;       // closed -> open transitions
    int64_t probes = 0;      // half-open probe RPCs admitted
    int64_t fast_fails = 0;  // requests rejected while open
  };

  explicit WorkerHealth(int num_workers)
      : WorkerHealth(num_workers, Options()) {}
  WorkerHealth(int num_workers, Options options)
      : options_(options), workers_(static_cast<size_t>(num_workers)) {}

  /// Gate called before each RPC to `worker`. Returns true to let the request
  /// through (closed, or admitted as the half-open probe), false to fast-fail
  /// it with Unavailable.
  bool AllowRequest(int worker) EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    PerWorker& w = workers_[static_cast<size_t>(worker)];
    switch (w.state) {
      case State::kClosed:
        return true;
      case State::kHalfOpen:
        // A probe is already in flight; everyone else keeps fast-failing
        // until its outcome is recorded.
        ++stats_.fast_fails;
        return false;
      case State::kOpen:
        ++w.open_uses;
        if (w.open_uses >= options_.open_uses_before_probe) {
          w.state = State::kHalfOpen;
          ++stats_.probes;
          return true;
        }
        ++stats_.fast_fails;
        return false;
    }
    return true;  // unreachable
  }

  /// Records the outcome of an admitted request. Success closes the breaker
  /// and resets the failure run; a tolerable failure extends the run and may
  /// trip the breaker (or re-open a half-open one).
  void RecordSuccess(int worker) EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    PerWorker& w = workers_[static_cast<size_t>(worker)];
    ++stats_.successes;
    w.consecutive_failures = 0;
    w.open_uses = 0;
    w.state = State::kClosed;
  }

  void RecordFailure(int worker) EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    PerWorker& w = workers_[static_cast<size_t>(worker)];
    ++stats_.failures;
    ++w.consecutive_failures;
    if (w.state == State::kHalfOpen) {
      // The probe failed: straight back to open, wait out another use window.
      w.state = State::kOpen;
      w.open_uses = 0;
    } else if (w.state == State::kClosed &&
               w.consecutive_failures >= options_.failure_threshold) {
      w.state = State::kOpen;
      w.open_uses = 0;
      ++stats_.trips;
    }
  }

  State state(int worker) const EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return workers_[static_cast<size_t>(worker)].state;
  }

  bool AnyOpen() const EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    for (const PerWorker& w : workers_) {
      if (w.state != State::kClosed) return true;
    }
    return false;
  }

  int num_open() const EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    int open = 0;
    for (const PerWorker& w : workers_) {
      if (w.state != State::kClosed) ++open;
    }
    return open;
  }

  Stats Snapshot() const EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return stats_;
  }

  /// Forgets all history (stats included); used between test scenarios.
  void Reset() EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    for (PerWorker& w : workers_) w = PerWorker{};
    stats_ = Stats{};
  }

  int num_workers() const { return static_cast<int>(workers_.size()); }

 private:
  struct PerWorker {
    State state = State::kClosed;
    int consecutive_failures = 0;
    int open_uses = 0;  // fast-fail count since the breaker opened
  };

  const Options options_;
  mutable Mutex mutex_;
  std::vector<PerWorker> workers_ GUARDED_BY(mutex_);
  Stats stats_ GUARDED_BY(mutex_);
};

}  // namespace cluster
}  // namespace hillview

#endif  // HILLVIEW_CLUSTER_WORKER_HEALTH_H_
