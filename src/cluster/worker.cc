#include "cluster/worker.h"

namespace hillview {
namespace cluster {

Status Worker::RegisterBase(
    const std::string& dataset_id,
    std::vector<std::shared_ptr<LocalDataSet>> partitions) {
  std::vector<DataSetPtr> children(partitions.begin(), partitions.end());
  auto dataset = std::make_shared<ParallelDataSet>(
      name_ + "/" + dataset_id, std::move(children), &pool_, aggregation_);
  MutexLock lock(mutex_);
  datasets_[dataset_id] = std::move(dataset);
  return Status::OK();
}

Status Worker::ApplyMap(const std::string& parent_id,
                        const std::string& new_id, TableMap map,
                        const std::string& op_name) {
  DataSetPtr parent;
  {
    MutexLock lock(mutex_);
    auto it = datasets_.find(parent_id);
    if (it == datasets_.end()) {
      return Status::Unavailable("worker " + name_ + ": no dataset '" +
                                 parent_id + "'");
    }
    parent = it->second;
  }
  DataSetPtr derived = parent->Map(std::move(map), op_name);
  MutexLock lock(mutex_);
  datasets_[new_id] = std::move(derived);
  return Status::OK();
}

Result<DataSetPtr> Worker::GetDataSet(const std::string& dataset_id) {
  MutexLock lock(mutex_);
  auto it = datasets_.find(dataset_id);
  if (it == datasets_.end()) {
    return Status::Unavailable("worker " + name_ + ": no dataset '" +
                               dataset_id + "'");
  }
  return it->second;
}

void Worker::Restart() {
  // "Restarting the node after a failure is equivalent to deleting all
  // cached datasets" (§5.8) — and all derived auxiliary structures with
  // them: the sort-key cache is soft state too.
  key_cache_.Clear();
  MutexLock lock(mutex_);
  datasets_.clear();
  ++restart_count_;
}

void Worker::EvictCaches() {
  // The memory-manager eviction path drops every reconstructible byte the
  // worker holds: materialized tables and the sort-key columns derived from
  // them (which would otherwise pin freed tables' key vectors uselessly).
  key_cache_.Clear();
  MutexLock lock(mutex_);
  for (auto& [id, dataset] : datasets_) dataset->Evict();
}

int64_t Worker::restart_count() const {
  MutexLock lock(mutex_);
  return restart_count_;
}

void Worker::RecordDroppedMapFailure(const Status& status) {
  MutexLock lock(mutex_);
  ++dropped_map_failures_;
  last_dropped_map_error_ = status.ToString();
}

int64_t Worker::dropped_map_failures() const {
  MutexLock lock(mutex_);
  return dropped_map_failures_;
}

std::string Worker::last_dropped_map_error() const {
  MutexLock lock(mutex_);
  return last_dropped_map_error_;
}

void Worker::RecordCorruptMessageDropped() {
  MutexLock lock(mutex_);
  ++corrupt_messages_dropped_;
}

int64_t Worker::corrupt_messages_dropped() const {
  MutexLock lock(mutex_);
  return corrupt_messages_dropped_;
}

}  // namespace cluster
}  // namespace hillview
