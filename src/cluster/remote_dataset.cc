#include "cluster/remote_dataset.h"

#include <algorithm>
#include <cstring>
#include <thread>
#include <vector>

#include "util/random.h"
#include "util/stopwatch.h"

namespace hillview {
namespace cluster {

namespace {

/// Nominal wire size of a request descriptor (operation id, dataset id,
/// seed, framing). Requests are tiny compared to summaries; this constant
/// only keeps the downstream counters non-zero and honest.
constexpr uint64_t kRequestOverheadBytes = 64;

/// Per-summary frame overhead: the progress field plus the 64-bit payload
/// checksum. The checksum matters for fault injection: a bit-flipped payload
/// can still deserialize into a plausible summary, so corruption detection
/// cannot rely on the decoder alone.
constexpr uint64_t kFrameOverheadBytes = sizeof(double) + sizeof(uint64_t);

/// Deterministically flips one payload bit chosen by the verdict's corrupt
/// seed — the simulated in-transit corruption.
void CorruptBytes(std::vector<uint8_t>* bytes, uint64_t corrupt_seed) {
  if (bytes->empty()) return;
  Random rng(corrupt_seed);
  const uint64_t bit = rng.NextUint64(bytes->size() * 8);
  (*bytes)[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
}

/// Capped exponential backoff with deterministic seeded jitter in
/// [0.5, 1.0)x. Pure in (seed, worker, attempt): replays of the same seeded
/// schedule back off identically.
double BackoffMs(const SketchOptions::RpcPolicy& rpc, uint64_t seed,
                 int worker, int attempt) {
  double ms = rpc.backoff_base_ms;
  for (int i = 1; i < attempt; ++i) ms *= 2.0;
  ms = std::min(ms, rpc.backoff_cap_ms);
  Random rng(MixSeed(MixSeed(seed, static_cast<uint64_t>(worker) + 1),
                     static_cast<uint64_t>(attempt)));
  return ms * (0.5 + 0.5 * rng.NextDouble());
}

/// True for statuses the retry layer may act on by re-running the sketch.
/// Only deadline misses retry *here*; Unavailable means soft state is gone
/// and must heal via the root's redo-log replay instead.
bool IsDeadline(const Status& s) {
  return s.code() == StatusCode::kDeadlineExceeded;
}

/// One remote sketch RPC with deadline + bounded retry. Each attempt gets an
/// epoch number; events from a superseded attempt (late partials of a timed-
/// out run) are rejected by epoch so the output stream only ever sees one
/// coherent attempt. Retrying a sketch is safe: sketches are pure functions
/// of (data, seed), so a re-run returns byte-identical summaries.
///
/// Lifetime: shared_from_this keeps the driver alive inside the worker
/// stream's callbacks; when the last attempt settles, the callbacks' copies
/// are the only remaining owners and the driver dies with its worker stream.
class RpcDriver : public std::enable_shared_from_this<RpcDriver> {
 public:
  RpcDriver(WorkerPtr worker, std::string dataset_id,
            SimulatedNetwork* network, int worker_index, WorkerHealth* health,
            AnySketch sketch, SketchOptions options,
            StreamPtr<PartialResult<AnySummary>> out)
      : worker_(std::move(worker)),
        dataset_id_(std::move(dataset_id)),
        network_(network),
        worker_index_(worker_index),
        health_(health),
        sketch_(std::move(sketch)),
        options_(std::move(options)),
        out_(std::move(out)) {}

  void Start() EXCLUDES(mutex_) {
    int epoch;
    {
      MutexLock lock(mutex_);
      epoch = attempt_;
      attempt_watch_.Restart();
    }
    RunAttempt(epoch);
  }

 private:
  void RunAttempt(int epoch) EXCLUDES(mutex_) {
    const FaultVerdict down =
        network_->SendDown(kRequestOverheadBytes + sketch_.name().size(),
                           worker_index_, options_.session_id);
    if (down.action == FaultAction::kDrop ||
        down.action == FaultAction::kCorrupt) {
      // The request never arrives intact: the worker stays silent and the
      // attempt's deadline (eventually) fires. The simulation settles the
      // miss immediately instead of wall-clock-waiting for it. A corrupted
      // request is a dropped one the worker could at least count.
      if (down.action == FaultAction::kCorrupt) {
        worker_->RecordCorruptMessageDropped();
      }
      SettleAttempt(epoch,
                    Status::DeadlineExceeded("request lost in transit"));
      return;
    }
    // kDuplicate on a request is coalesced: running the same pure sketch
    // twice on the worker would double simulated work but return identical
    // bytes, so the model delivers it once.

    auto dataset = worker_->GetDataSet(dataset_id_);
    if (!dataset.ok()) {
      // Soft state is gone (worker restarted): not retriable here — only
      // redo-log replay at the root can rebuild the dataset.
      SettleAttempt(epoch, dataset.status());
      return;
    }
    // This is the machine boundary: from here on the sketch runs on the
    // worker, so hand it the worker's auxiliary pool for intra-partition
    // helper work (find-text dictionary matching). Deliberately a provider:
    // the aux pool's threads spawn only if a sketch actually asks. The
    // capture is a raw pointer on purpose — the provider only runs inside
    // Summarize on the worker's own pool, which the worker drains before
    // dying, and a shared_ptr here could make a task closure the last owner
    // and destroy the Worker from its own pool thread (a self-join).
    SketchOptions worker_options = options_;
    worker_options.aux_pool = [w = worker_.get()] { return w->aux_pool(); };
    worker_options.key_cache = [w = worker_.get()] { return w->key_cache(); };
    auto worker_stream = dataset.value()->RunSketch(sketch_, worker_options);
    auto self = shared_from_this();
    worker_stream->Subscribe(
        [self, epoch](const PartialResult<AnySummary>& p) {
          self->OnPartial(epoch, p);
        },
        [self, epoch](const Status& s) { self->OnWorkerComplete(epoch, s); });
  }

  void OnPartial(int epoch, const PartialResult<AnySummary>& p)
      EXCLUDES(mutex_) {
    {
      MutexLock lock(mutex_);
      if (epoch != attempt_ || settled_) return;  // stale attempt's event
    }
    // Cross the machine boundary: serialize, checksum, charge, deserialize.
    std::vector<uint8_t> bytes = sketch_.Serialize(p.value);
    const uint64_t checksum = HashBytes(bytes.data(), bytes.size());
    const FaultVerdict up =
        network_->SendUp(bytes.size() + kFrameOverheadBytes, worker_index_,
                         options_.session_id);
    if (up.action == FaultAction::kDrop) {
      // The summary vanishes; the attempt's silence becomes a deadline miss
      // when the worker stream completes without a final summary delivered.
      return;
    }
    if (up.action == FaultAction::kCorrupt) {
      CorruptBytes(&bytes, up.corrupt_seed);
    }
    if (HashBytes(bytes.data(), bytes.size()) != checksum) {
      // Checksum catches the in-transit corruption even when the payload
      // would still deserialize. Corrupt messages are dropped, counted, and
      // healed by the retry layer (the silence turns into a deadline miss).
      worker_->RecordCorruptMessageDropped();
      return;
    }
    auto decoded = sketch_.Deserialize(bytes);
    if (!decoded.ok()) {
      worker_->RecordCorruptMessageDropped();
      return;
    }
    const double deadline_ms = options_.rpc.deadline_ms;
    bool late = false;
    {
      MutexLock lock(mutex_);
      if (epoch != attempt_ || settled_) return;
      if (deadline_ms > 0 && attempt_watch_.ElapsedMillis() > deadline_ms) {
        // The summary arrived, but late: the deadline already passed. Treat
        // the attempt as missed and discard the late message (the retry —
        // pure and seeded — will reproduce it).
        late = true;
      } else if (p.progress >= 1.0) {
        saw_final_ = true;
      }
    }
    if (late) {
      SettleAttempt(epoch, Status::DeadlineExceeded(
                               "summary arrived after the deadline"));
      return;
    }
    PartialResult<AnySummary> delivered{p.progress, decoded.Take(),
                                        p.coverage};
    out_->OnNext(delivered);
    if (up.action == FaultAction::kDuplicate) {
      // Idempotent delivery: merging the same summary twice is harmless
      // because the merger's per-child update is replacement, not addition.
      out_->OnNext(delivered);
    }
  }

  void OnWorkerComplete(int epoch, const Status& s) EXCLUDES(mutex_) {
    bool missing_final;
    {
      MutexLock lock(mutex_);
      if (epoch != attempt_ || settled_) return;
      missing_final = s.ok() && !saw_final_;
    }
    if (missing_final) {
      // The worker finished but its final summary never made it across
      // (dropped or corrupted in transit): from the root's side this is
      // indistinguishable from a slow worker, and it heals the same way.
      SettleAttempt(epoch,
                    Status::DeadlineExceeded("final summary lost in transit"));
      return;
    }
    SettleAttempt(epoch, s);
  }

  void SettleAttempt(int epoch, const Status& status) EXCLUDES(mutex_) {
    int next_epoch = -1;
    {
      MutexLock lock(mutex_);
      if (epoch != attempt_ || settled_) return;
      if (IsDeadline(status) && attempt_ < options_.rpc.max_retries) {
        ++attempt_;
        saw_final_ = false;
        attempt_watch_.Restart();
        next_epoch = attempt_;
      } else {
        settled_ = true;
      }
    }
    if (next_epoch > 0) {
      const double backoff = BackoffMs(options_.rpc, options_.seed,
                                       worker_index_, next_epoch);
      if (backoff > 0) {
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(backoff));
      }
      RunAttempt(next_epoch);
      return;
    }
    FinishRpc(status);
  }

  void FinishRpc(const Status& status) {
    if (health_ != nullptr && worker_index_ >= 0) {
      if (status.code() == StatusCode::kDeadlineExceeded) {
        // Only unresponsiveness feeds the breaker: a deadline means the
        // worker never answered despite the per-RPC retry budget.
        health_->RecordFailure(worker_index_);
      } else if (status.code() == StatusCode::kCancelled) {
        // A superseded render says nothing about the worker either way:
        // recording success would let a flood of cancelled scrolls hold a
        // genuinely dead worker's breaker closed, and recording failure
        // would poison health with client-side churn. Cancellation is
        // health-neutral.
      } else {
        // Any response — including Unavailable (soft state lost after a
        // crash, healable by replay) or an application error — proves the
        // worker is alive. Counting healable Unavailable as breaker failure
        // would trip the circuit on a worker that replay is about to fix,
        // and a half-open probe answered with Unavailable must still close
        // the breaker or every later request fast-fails forever.
        health_->RecordSuccess(worker_index_);
      }
    }
    out_->OnComplete(status);
  }

  WorkerPtr worker_;
  const std::string dataset_id_;
  SimulatedNetwork* network_;
  const int worker_index_;
  WorkerHealth* health_;
  const AnySketch sketch_;
  const SketchOptions options_;
  StreamPtr<PartialResult<AnySummary>> out_;

  Mutex mutex_;
  int attempt_ GUARDED_BY(mutex_) = 0;   // current attempt epoch
  bool settled_ GUARDED_BY(mutex_) = false;
  bool saw_final_ GUARDED_BY(mutex_) = false;  // final summary delivered
  Stopwatch attempt_watch_ GUARDED_BY(mutex_);
};

}  // namespace

StreamPtr<PartialResult<AnySummary>> RemoteDataSet::RunSketch(
    const AnySketch& sketch, const SketchOptions& options) {
  auto out = std::make_shared<Stream<PartialResult<AnySummary>>>();
  if (options.cancellation != nullptr && options.cancellation->IsCancelled()) {
    // Already superseded: don't spend network bytes or a breaker probe on a
    // render nobody will look at.
    out->OnComplete(Status::Cancelled("cancelled before dispatch"));
    return out;
  }
  if (health_ != nullptr && worker_index_ >= 0 &&
      !health_->AllowRequest(worker_index_)) {
    // Circuit open: fast-fail without burning the deadline+retry budget on a
    // known-dead worker. Unavailable keeps the healing semantics — replay
    // can still resurrect it, and a degraded merger counts it as lost.
    out->OnComplete(Status::Unavailable(
        "worker " + worker_->name() + ": circuit breaker open"));
    return out;
  }
  auto driver = std::make_shared<RpcDriver>(worker_, dataset_id_, network_,
                                            worker_index_, health_, sketch,
                                            options, out);
  driver->Start();
  return out;
}

DataSetPtr RemoteDataSet::Map(TableMap map, const std::string& op_name) {
  network_->SendDown(kRequestOverheadBytes + op_name.size(), worker_index_);
  std::string new_id = dataset_id_ + "/" + op_name;
  Status s = worker_->ApplyMap(dataset_id_, new_id, std::move(map), op_name);
  // A failed remote map still returns a proxy; the error surfaces as
  // Unavailable on first use and is healed by redo-log replay. The worker
  // records the dropped status so fault-injection tests can assert this
  // path fired instead of silently losing the failure.
  if (!s.ok()) worker_->RecordDroppedMapFailure(s);
  return std::make_shared<RemoteDataSet>(worker_, new_id, network_,
                                         worker_index_, health_);
}

int RemoteDataSet::NumPartitions() const {
  auto dataset = worker_->GetDataSet(dataset_id_);
  if (!dataset.ok()) return 1;
  return dataset.value()->NumPartitions();
}

}  // namespace cluster
}  // namespace hillview
