#include "cluster/remote_dataset.h"

namespace hillview {
namespace cluster {

namespace {

/// Nominal wire size of a request descriptor (operation id, dataset id,
/// seed, framing). Requests are tiny compared to summaries; this constant
/// only keeps the downstream counters non-zero and honest.
constexpr uint64_t kRequestOverheadBytes = 64;

}  // namespace

StreamPtr<PartialResult<AnySummary>> RemoteDataSet::RunSketch(
    const AnySketch& sketch, const SketchOptions& options) {
  auto out = std::make_shared<Stream<PartialResult<AnySummary>>>();
  network_->SendDown(kRequestOverheadBytes + sketch.name().size());

  auto dataset = worker_->GetDataSet(dataset_id_);
  if (!dataset.ok()) {
    out->OnComplete(dataset.status());
    return out;
  }
  // This is the machine boundary: from here on the sketch runs on the
  // worker, so hand it the worker's auxiliary pool for intra-partition
  // helper work (find-text dictionary matching). Deliberately a provider:
  // the aux pool's threads spawn only if a sketch actually asks. The
  // capture is a raw pointer on purpose — the provider only runs inside
  // Summarize on the worker's own pool, which the worker drains before
  // dying, and a shared_ptr here could make a task closure the last owner
  // and destroy the Worker from its own pool thread (a self-join).
  SketchOptions worker_options = options;
  worker_options.aux_pool = [w = worker_.get()] { return w->aux_pool(); };
  worker_options.key_cache = [w = worker_.get()] { return w->key_cache(); };
  auto worker_stream = dataset.value()->RunSketch(sketch, worker_options);
  SimulatedNetwork* network = network_;
  AnySketch sketch_copy = sketch;
  worker_stream->Subscribe(
      [out, network, sketch_copy](const PartialResult<AnySummary>& p) {
        // Cross the machine boundary: serialize, charge, deserialize.
        std::vector<uint8_t> bytes = sketch_copy.Serialize(p.value);
        network->SendUp(bytes.size() + sizeof(double));  // + progress field
        auto decoded = sketch_copy.Deserialize(bytes);
        if (!decoded.ok()) return;  // Corrupt message: dropped (tested path).
        out->OnNext(PartialResult<AnySummary>{p.progress, decoded.Take()});
      },
      [out](const Status& s) { out->OnComplete(s); });
  return out;
}

DataSetPtr RemoteDataSet::Map(TableMap map, const std::string& op_name) {
  network_->SendDown(kRequestOverheadBytes + op_name.size());
  std::string new_id = dataset_id_ + "/" + op_name;
  Status s = worker_->ApplyMap(dataset_id_, new_id, std::move(map), op_name);
  // A failed remote map still returns a proxy; the error surfaces as
  // Unavailable on first use and is healed by redo-log replay. The worker
  // records the dropped status so fault-injection tests can assert this
  // path fired instead of silently losing the failure.
  if (!s.ok()) worker_->RecordDroppedMapFailure(s);
  return std::make_shared<RemoteDataSet>(worker_, new_id, network_);
}

int RemoteDataSet::NumPartitions() const {
  auto dataset = worker_->GetDataSet(dataset_id_);
  if (!dataset.ok()) return 1;
  return dataset.value()->NumPartitions();
}

}  // namespace cluster
}  // namespace hillview
