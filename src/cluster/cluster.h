#ifndef HILLVIEW_CLUSTER_CLUSTER_H_
#define HILLVIEW_CLUSTER_CLUSTER_H_

#include <atomic>
#include <memory>
#include <vector>

#include "cluster/network.h"
#include "cluster/scheduler.h"
#include "cluster/worker.h"
#include "cluster/worker_health.h"
#include "core/computation_cache.h"
#include "core/dataset.h"

namespace hillview {
namespace cluster {

class RootSession;

/// The shared serving substrate of the multi-tenant root (Fig 1's web
/// server, split from the per-user state): one Cluster owns the workers, the
/// simulated interconnect, the per-worker health tracker, the root-resident
/// shared ComputationCache, and the fair query scheduler. Tenants attach via
/// OpenSession(), which hands out thin per-session handles (RootSession)
/// carrying only what is genuinely per-user: a redo log of that user's
/// exploration, render generations, and a session id for per-tenant byte
/// accounting.
///
/// What is shared and why:
///  - **Workers + network + health**: physical resources; the paper's
///    economic claim (§7) is precisely that many users multiplex them.
///  - **ComputationCache**: keyed by (dataset id, sketch name, seed), so two
///    sessions rendering the same view are served one computation —
///    single-flighted, and never populated with degraded (coverage < 1)
///    results (see ComputationCache::GetOrBeginCompute).
///  - **QueryScheduler**: deficit-round-robin fairness and admission control
///    across the sessions' queries.
///
/// Sessions share the worker-side dataset namespace: LoadDataSet under the
/// same id from two sessions registers the same (deterministic) loaders, and
/// cross-session cache keys only collide — by design — when dataset id,
/// sketch and seed all match.
///
/// Lifetime: the Cluster must outlive every RootSession it opened and every
/// query they run. Its destructor quiesces the deployment by draining all
/// worker pools, so in-flight RPC machinery (retry drivers, health reports)
/// from abandoned attempts cannot outlive the members it touches.
class Cluster {
 public:
  struct Options {
    ParallelDataSet::Options aggregation;
    /// Attempts after an Unavailable failure (each preceded by a full
    /// redo-log replay).
    int max_replay_retries = 2;
    /// Query-level retries after a kDeadlineExceeded failure (on top of the
    /// per-RPC retries the remote edge already performed).
    int max_transport_retries = 3;
    /// Per-RPC deadline/retry policy handed to every machine-boundary edge.
    SketchOptions::RpcPolicy rpc{/*deadline_ms=*/0.0, /*max_retries=*/2,
                                 /*backoff_base_ms=*/1.0,
                                 /*backoff_cap_ms=*/50.0};
    /// Once every healing budget is exhausted (or a breaker is open), run
    /// one final pass that tolerates lost workers and returns a
    /// coverage-marked partial result instead of an error (§5.7). False
    /// restores strict all-or-nothing semantics.
    bool allow_degraded = true;
    /// Circuit-breaker tuning for the per-worker health tracker.
    WorkerHealth::Options health;
    /// Fair-scheduling and admission-control tuning.
    QueryScheduler::Options scheduler;
  };

  Cluster(std::vector<WorkerPtr> workers, SimulatedNetwork* network)
      : Cluster(std::move(workers), network, Options{}) {}
  Cluster(std::vector<WorkerPtr> workers, SimulatedNetwork* network,
          Options options);

  /// Quiesces the deployment: drains every worker pool so no straggler task
  /// can dangle — and so the last reference to a Worker is never dropped on
  /// that worker's own pool thread (a self-join in its destructor).
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Opens a new tenant session with a fresh session id. Sessions are cheap:
  /// a redo log, render generations, and forwarding pointers.
  std::shared_ptr<RootSession> OpenSession();

  int num_workers() const { return static_cast<int>(workers_.size()); }
  const std::vector<WorkerPtr>& workers() const { return workers_; }
  SimulatedNetwork* network() { return network_; }
  WorkerHealth& health() { return health_; }
  ComputationCache& shared_cache() { return shared_cache_; }
  QueryScheduler& scheduler() { return scheduler_; }
  const Options& options() const { return options_; }
  /// Sessions opened so far (session ids are 0..n-1).
  int sessions_opened() const { return next_session_id_.load(); }

 private:
  std::vector<WorkerPtr> workers_;
  SimulatedNetwork* network_;
  Options options_;
  WorkerHealth health_;
  ComputationCache shared_cache_;
  QueryScheduler scheduler_;
  std::atomic<int> next_session_id_{0};
};

}  // namespace cluster
}  // namespace hillview

#endif  // HILLVIEW_CLUSTER_CLUSTER_H_
