#ifndef HILLVIEW_CLUSTER_FAULT_INJECTION_H_
#define HILLVIEW_CLUSTER_FAULT_INJECTION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/thread_annotations.h"

namespace hillview {
namespace cluster {

/// Which way a message crosses the simulated interconnect.
enum class Direction {
  kDown = 0,  // root -> worker (requests)
  kUp = 1,    // worker -> root (partial summaries)
};

/// What the network decided to do with one message.
enum class FaultAction {
  kDeliver,    // pass through untouched
  kDrop,       // the message vanishes
  kCorrupt,    // bit-flip the payload in transit (checksums catch it)
  kDuplicate,  // deliver twice (RPCs are idempotent by construction)
};

/// The verdict for one message. `corrupt_seed` drives the deterministic
/// bit-flip when action == kCorrupt; `extra_latency_ms` is a latency spike
/// applied on top of the bandwidth/latency model.
struct FaultVerdict {
  FaultAction action = FaultAction::kDeliver;
  double extra_latency_ms = 0.0;
  uint64_t corrupt_seed = 0;
};

/// One scripted fault: applies `action` to every message whose per-channel
/// index falls in [begin, end) on channel (worker, direction). Channel
/// indices count messages from plan installation, so "drop the 3rd summary
/// coming up from worker 1" is `DropNth(1, Direction::kUp, 2)` and "mute
/// worker 2's responses forever" is `Mute(2, Direction::kUp, 0, kForever)`.
/// Scripted faults take precedence over the probabilistic faults below.
struct ScriptedFault {
  static constexpr uint64_t kForever = ~0ULL;

  int worker = -1;  // -1 matches every worker
  Direction direction = Direction::kUp;
  uint64_t begin = 0;
  uint64_t end = 0;  // half-open
  FaultAction action = FaultAction::kDrop;

  static ScriptedFault DropNth(int worker, Direction direction, uint64_t n) {
    return ScriptedFault{worker, direction, n, n + 1, FaultAction::kDrop};
  }
  static ScriptedFault Mute(int worker, Direction direction, uint64_t begin,
                            uint64_t end) {
    return ScriptedFault{worker, direction, begin, end, FaultAction::kDrop};
  }
  static ScriptedFault CorruptNth(int worker, Direction direction,
                                  uint64_t n) {
    return ScriptedFault{worker, direction, n, n + 1, FaultAction::kCorrupt};
  }
};

/// A deterministic fault schedule for the whole cluster: per-direction
/// probabilities plus scripted windows, all derived from one seed.
///
/// Determinism contract: the verdict for a message is a pure function of
/// (plan seed, worker, direction, per-channel message index). No wall clock,
/// no shared PRNG stream — each message gets its own counter-indexed PRNG —
/// so two runs that send the same message sequence per channel see the very
/// same faults, regardless of thread interleaving across channels. (Message
/// *counts* per channel are deterministic whenever aggregation runs with
/// progressive=false, the chaos-test configuration: exactly one summary
/// crosses up per worker per attempt.)
struct FaultPlan {
  struct Probabilities {
    double drop = 0.0;
    double corrupt = 0.0;
    double duplicate = 0.0;
    double latency_spike = 0.0;
    double latency_spike_ms = 0.0;
  };

  uint64_t seed = 0;
  Probabilities down;  // root -> worker requests
  Probabilities up;    // worker -> root summaries
  std::vector<ScriptedFault> schedule;
};

/// Applies a FaultPlan to the message flow of a SimulatedNetwork: every
/// message is judged (scripted faults first, then the per-direction
/// probability draws in a fixed order) and the injected-fault counters are
/// tallied under a lock, exposed only as a consistent Snapshot() like the
/// caches.
class FaultInjector {
 public:
  /// One consistent observability snapshot, taken under the lock.
  struct Stats {
    uint64_t judged = 0;
    uint64_t delivered = 0;
    uint64_t dropped = 0;
    uint64_t corrupted = 0;
    uint64_t duplicated = 0;
    uint64_t latency_spikes = 0;
    uint64_t scripted_hits = 0;
  };

  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {}

  /// Judges the next message on channel (worker, direction) and advances the
  /// channel counter. Pure in the plan seed and the counter value (see the
  /// determinism contract on FaultPlan).
  FaultVerdict Judge(int worker, Direction direction) EXCLUDES(mutex_);

  /// The number of messages judged so far on one channel.
  uint64_t ChannelCount(int worker, Direction direction) const
      EXCLUDES(mutex_);

  Stats Snapshot() const EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return stats_;
  }

  const FaultPlan& plan() const { return plan_; }

 private:
  const FaultPlan plan_;
  mutable Mutex mutex_;
  std::map<std::pair<int, int>, uint64_t> counters_ GUARDED_BY(mutex_);
  Stats stats_ GUARDED_BY(mutex_);
};

using FaultInjectorPtr = std::shared_ptr<FaultInjector>;

}  // namespace cluster
}  // namespace hillview

#endif  // HILLVIEW_CLUSTER_FAULT_INJECTION_H_
