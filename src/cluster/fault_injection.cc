#include "cluster/fault_injection.h"

#include "util/random.h"

namespace hillview {
namespace cluster {
namespace {

/// Maps a channel to a PRNG stream id: workers get two streams each (down and
/// up); worker -1 ("broadcast"/untracked) is folded onto a reserved pair so
/// the arithmetic below never collides with a real worker's streams.
uint64_t ChannelStream(int worker, Direction direction) {
  const uint64_t w =
      worker < 0 ? 0x7fffffffULL : static_cast<uint64_t>(worker);
  return w * 2 + static_cast<uint64_t>(direction);
}

}  // namespace

FaultVerdict FaultInjector::Judge(int worker, Direction direction) {
  MutexLock lock(mutex_);
  const uint64_t idx = counters_[{worker, static_cast<int>(direction)}]++;
  ++stats_.judged;

  FaultVerdict verdict;

  // Scripted faults take priority, first match wins. They are exact — no
  // randomness — so tests can say "drop the Nth summary from worker w".
  for (const ScriptedFault& fault : plan_.schedule) {
    if (fault.worker != -1 && fault.worker != worker) continue;
    if (fault.direction != direction) continue;
    if (idx < fault.begin || idx >= fault.end) continue;
    verdict.action = fault.action;
    ++stats_.scripted_hits;
    break;
  }

  // The message's own PRNG, indexed by (seed, channel, message counter): the
  // verdict is a pure function of those three, independent of thread timing
  // on other channels. Draws happen in a fixed order (drop, corrupt,
  // duplicate, latency) so a plan change to one probability never perturbs
  // the draws of the others.
  Random rng(MixSeed(MixSeed(plan_.seed, ChannelStream(worker, direction)),
                     idx));
  const FaultPlan::Probabilities& p =
      direction == Direction::kDown ? plan_.down : plan_.up;
  const double draw_drop = rng.NextDouble();
  const double draw_corrupt = rng.NextDouble();
  const double draw_duplicate = rng.NextDouble();
  const double draw_latency = rng.NextDouble();
  const uint64_t corrupt_seed = rng.NextUint64();

  if (verdict.action == FaultAction::kDeliver) {
    if (draw_drop < p.drop) {
      verdict.action = FaultAction::kDrop;
    } else if (draw_corrupt < p.corrupt) {
      verdict.action = FaultAction::kCorrupt;
    } else if (draw_duplicate < p.duplicate) {
      verdict.action = FaultAction::kDuplicate;
    }
  }
  if (draw_latency < p.latency_spike) {
    verdict.extra_latency_ms = p.latency_spike_ms;
    ++stats_.latency_spikes;
  }
  if (verdict.action == FaultAction::kCorrupt) {
    verdict.corrupt_seed = corrupt_seed;
  }

  switch (verdict.action) {
    case FaultAction::kDeliver:
      ++stats_.delivered;
      break;
    case FaultAction::kDrop:
      ++stats_.dropped;
      break;
    case FaultAction::kCorrupt:
      ++stats_.corrupted;
      break;
    case FaultAction::kDuplicate:
      ++stats_.duplicated;
      break;
  }
  return verdict;
}

uint64_t FaultInjector::ChannelCount(int worker, Direction direction) const {
  MutexLock lock(mutex_);
  auto it = counters_.find({worker, static_cast<int>(direction)});
  return it == counters_.end() ? 0 : it->second;
}

}  // namespace cluster
}  // namespace hillview
