#ifndef HILLVIEW_CLUSTER_SCHEDULER_H_
#define HILLVIEW_CLUSTER_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>

#include "cluster/worker_health.h"
#include "util/cancellation.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace hillview {
namespace cluster {

/// Fair query scheduler for the multi-tenant serving layer: every session's
/// blocking queries pass through Execute(), which admits, queues and grants
/// them so that N concurrent sessions share the workers predictably instead
/// of racing unthrottled into the same pools.
///
/// Design:
///
///  - **Per-session FIFO queues.** A session's own queries run in submission
///    order; ordering across sessions is the scheduler's to choose.
///  - **Deficit round-robin grants.** Dispatch slots (at most
///    `dispatch_concurrency` queries running at once) are granted by DRR over
///    the non-empty session queues: each visit adds `quantum_bytes` to a
///    session's deficit, and the session at the head of the rotation is
///    served when its deficit covers its byte-cost estimate. Costs are the
///    root-received bytes a session's queries actually moved (charged after
///    the fact via ChargeCost, smoothed into a per-session EWMA estimate), so
///    a tenant issuing heavy scans is visited just as often but granted
///    proportionally fewer slots — bandwidth fairness, not slot fairness.
///  - **Admission control.** A query is shed with Status::Unavailable —
///    before consuming a queue slot — when its session already has
///    `max_in_flight_per_session` queries queued+running, when the dispatch
///    pool is saturated and the global queue has `max_queued_total` waiters,
///    or when every worker's circuit breaker is open (the cluster cannot
///    answer, so queueing would only convert overload into latency).
///  - **Cancellation while queued.** A waiter whose render token flips leaves
///    the queue immediately and returns Status::Cancelled without ever
///    running; a granted query handles the token itself downstream.
///
/// Caller-threaded by design: Execute runs `query` on the submitting thread
/// once granted, so the scheduler owns no threads, inherits the session's
/// stack/locale context for free, and shuts down trivially (no pool to
/// drain; callers are inside their own query when the Cluster dies only if
/// they outlive it, which the Cluster/Session ownership contract forbids).
///
/// Thread-safe: one capability-annotated mutex guards every queue, counter
/// and DRR account; stats are exposed only through a locked Snapshot().
class QueryScheduler {
 public:
  struct Options {
    /// Queries running concurrently across all sessions. Bounds the fan-in
    /// pressure on the worker pools: each granted query fans out to every
    /// worker, so this is the multiprogramming level of the cluster.
    int dispatch_concurrency = 4;
    /// Per-session budget of queued+running queries; one tenant's burst
    /// sheds before it can occupy every slot (admission, not queueing).
    int max_in_flight_per_session = 8;
    /// Global bound on waiters once the dispatch pool is saturated; beyond
    /// it new queries shed instead of growing the queue without bound.
    int max_queued_total = 64;
    /// DRR quantum: deficit credit per rotation visit. Smaller quanta
    /// interleave sessions more finely; larger ones amortize heavy queries.
    int64_t quantum_bytes = 64 * 1024;
    /// Shed on arrival when every worker breaker is open (needs a non-null
    /// WorkerHealth).
    bool shed_when_all_breakers_open = true;
  };

  /// One consistent observability snapshot, taken under the lock.
  struct Stats {
    int64_t submitted = 0;
    int64_t completed = 0;
    int64_t shed_session_budget = 0;  // session over its in-flight budget
    int64_t shed_queue_full = 0;      // saturated pool + full global queue
    int64_t shed_unhealthy = 0;       // every breaker open on arrival
    int64_t cancelled_in_queue = 0;   // token flipped before the grant
    int64_t max_running = 0;          // peak concurrent grants observed
  };

  /// `health` may be null (no breaker-informed admission).
  QueryScheduler(Options options, WorkerHealth* health)
      : options_(options), health_(health) {}

  QueryScheduler(const QueryScheduler&) = delete;
  QueryScheduler& operator=(const QueryScheduler&) = delete;

  /// Admits, queues and — once granted a dispatch slot — runs `query` on the
  /// calling thread. Returns the query's own status; or Unavailable when
  /// admission shed it; or Cancelled when `cancel` flipped while queued (the
  /// query then never ran). `*ran` (optional) reports whether `query`
  /// executed, so callers can distinguish "query failed" from "never ran".
  Status Execute(int session_id, const CancellationTokenPtr& cancel,
                 const std::function<Status()>& query, bool* ran = nullptr)
      EXCLUDES(mutex_);

  /// Charges the bytes a completed query actually moved to its session's
  /// DRR account by folding them into the session's EWMA cost estimate,
  /// which prices that session's FUTURE grants (estimates-only accounting:
  /// the deficit already paid at grant time is not retro-settled — simpler,
  /// and the estimate converges within a few queries). Safe to call with 0
  /// (keeps the estimate decaying toward cheap).
  void ChargeCost(int session_id, int64_t cost_bytes) EXCLUDES(mutex_);

  Stats Snapshot() const EXCLUDES(mutex_);

  /// The DRR cost estimate currently used for a session's grants
  /// (observability; `quantum_bytes` for a session never charged).
  int64_t CostEstimate(int session_id) const EXCLUDES(mutex_);

 private:
  /// One queued query. Heap-allocated and shared between the waiting thread
  /// and the queue so either side can outlive the other's view of it.
  struct Ticket {
    int session = 0;
    CancellationTokenPtr cancel;
    bool granted = false;
    bool abandoned = false;  // waiter left (cancelled); skip when draining
  };
  using TicketPtr = std::shared_ptr<Ticket>;

  struct SessionState {
    std::deque<TicketPtr> queue;
    int in_flight = 0;        // queued + running, for the admission budget
    int64_t deficit = 0;      // DRR credit toward the next grant
    int64_t cost_estimate;    // EWMA of charged byte costs
  };

  /// Grants dispatch slots to queued tickets while capacity allows, in DRR
  /// order. Called whenever capacity or queues change; notifies waiters.
  void GrantLocked() REQUIRES(mutex_);

  /// The next session to serve per DRR, or sessions_.end() when every queue
  /// is empty or no queue's deficit can cover its estimate within one full
  /// rotation of credit top-ups.
  std::map<int, SessionState>::iterator PickSessionLocked() REQUIRES(mutex_);

  const Options options_;
  WorkerHealth* const health_;

  mutable Mutex mutex_;
  CondVar cv_;
  std::map<int, SessionState> sessions_ GUARDED_BY(mutex_);
  /// DRR rotation cursor: the session id served most recently; the rotation
  /// resumes strictly after it (map order, wrapping).
  int rr_cursor_ GUARDED_BY(mutex_) = -1;
  int running_ GUARDED_BY(mutex_) = 0;
  int queued_total_ GUARDED_BY(mutex_) = 0;
  Stats stats_ GUARDED_BY(mutex_);
};

}  // namespace cluster
}  // namespace hillview

#endif  // HILLVIEW_CLUSTER_SCHEDULER_H_
