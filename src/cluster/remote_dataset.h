#ifndef HILLVIEW_CLUSTER_REMOTE_DATASET_H_
#define HILLVIEW_CLUSTER_REMOTE_DATASET_H_

#include <memory>
#include <string>

#include "cluster/network.h"
#include "cluster/worker.h"
#include "cluster/worker_health.h"
#include "core/dataset.h"

namespace hillview {
namespace cluster {

/// Root-side proxy for a dataset hosted on one worker: the machine-boundary
/// edge of the execution tree (Fig 1). Every partial summary crossing this
/// edge is serialized with the sketch's wire format, checksummed, charged to
/// the SimulatedNetwork, and deserialized on the other side — so byte
/// accounting and wire-format round-trips are faithful even though both
/// "machines" share a process.
///
/// The reference is soft (§5.7): if the worker restarted and no longer has
/// the dataset, RunSketch completes with Unavailable and the root session
/// replays the redo log.
///
/// Fault handling (options.rpc): each attempt is bounded by a deadline — a
/// leaf that produced no final summary in time completes kDeadlineExceeded —
/// and deadline misses are retried here with capped exponential backoff and
/// deterministic seeded jitter, which is safe because sketches are pure
/// functions of (data, seed). Transport losses (dropped requests, dropped or
/// corrupted summaries) surface as deadline misses and heal the same way.
/// Unavailable is NOT retried here: it means soft state is gone and only the
/// root's redo-log replay can heal it.
///
/// When constructed with a WorkerHealth tracker and worker index, the proxy
/// consults the circuit breaker before each RPC (fast-failing Unavailable
/// while the breaker is open) and reports each RPC's terminal outcome back.
class RemoteDataSet final : public IDataSet {
 public:
  RemoteDataSet(WorkerPtr worker, std::string dataset_id,
                SimulatedNetwork* network, int worker_index = -1,
                WorkerHealth* health = nullptr)
      : worker_(std::move(worker)),
        dataset_id_(std::move(dataset_id)),
        id_("remote:" + worker_->name() + "/" + dataset_id_),
        network_(network),
        worker_index_(worker_index),
        health_(health) {}

  const std::string& id() const override { return id_; }

  StreamPtr<PartialResult<AnySummary>> RunSketch(
      const AnySketch& sketch, const SketchOptions& options) override;

  /// Remote map: instructs the worker to derive a new dataset; returns a
  /// proxy to it. The map closure crossing the boundary is charged a nominal
  /// request size (closures are code, not data).
  DataSetPtr Map(TableMap map, const std::string& op_name) override;

  int NumPartitions() const override;

  void Evict() override { worker_->EvictCaches(); }

  const std::string& dataset_id() const { return dataset_id_; }
  const WorkerPtr& worker() const { return worker_; }

 private:
  WorkerPtr worker_;
  std::string dataset_id_;
  std::string id_;
  SimulatedNetwork* network_;
  int worker_index_;       // channel id for fault injection; -1 = untracked
  WorkerHealth* health_;   // root's breaker; may be null (no gating)
};

}  // namespace cluster
}  // namespace hillview

#endif  // HILLVIEW_CLUSTER_REMOTE_DATASET_H_
