#ifndef HILLVIEW_STORAGE_SORT_KEY_CACHE_H_
#define HILLVIEW_STORAGE_SORT_KEY_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/sort_key.h"
#include "util/thread_annotations.h"

namespace hillview {

/// Worker-resident cache of materialized sort-key columns, the auxiliary
/// structure behind repeated scrolls and zooms of the same sorted view: the
/// first order-based sketch over a (table, order) pair pays the O(universe)
/// key-extraction pass, every later one reuses the vector (§5.4's
/// memoization argument applied below the summary level). Because keys cover
/// the whole universe independent of membership, filter-derived tables that
/// share their parent's columns hit the same entry — a zoom-in scroll reuses
/// the pre-zoom keys.
///
/// This is soft state in the §5.8 sense: Worker::Restart() (crash) and
/// Worker::EvictCaches() (memory manager) both Clear() it, and everything it
/// held is reconstructible by re-running SortKeyPlan::BuildKeys. Memory is
/// bounded by a byte budget (keys are 8 bytes × universe rows — entry counts
/// would be meaningless), evicting least-recently-used entries.
///
/// Entries are keyed by SortKeyPlan::CacheKey() — column object identity
/// plus direction and shape — and additionally hold weak references to the
/// key columns: an entry whose columns have been destroyed is dropped on
/// lookup, so a recycled allocation can never be served stale keys.
///
/// Thread-safe: worker pools summarize partitions concurrently; one mutex
/// guards every map, counter and the in-flight table (capability-annotated —
/// -Wthread-safety rejects unguarded access). Concurrent misses on the same
/// plan are *single-flight* through GetOrBuild(): the first thread builds,
/// later threads park on a condition variable and adopt the builder's vector
/// instead of re-running the O(n) key pass (the `coalesced_builds` counter
/// observes this). Raw Get/Put remain available and may still race benignly;
/// the second Put replaces the first with an identical vector.
class SortKeyCache {
 public:
  using KeysPtr = SortKeyPlan::KeysPtr;

  /// Default byte budget: 128 MB ≈ keys for 16M rows × 8 hot views.
  static constexpr size_t kDefaultMaxBytes = 128u << 20;

  /// One consistent observability snapshot, taken under the lock: reading
  /// counters through individual getters could interleave with a concurrent
  /// scan and report e.g. a hit total from before an eviction next to an
  /// eviction total from after it.
  struct Stats {
    size_t entries = 0;
    size_t bytes_used = 0;
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
    /// Misses served by another thread's in-flight build instead of a second
    /// O(n) key pass.
    int64_t coalesced_builds = 0;
    /// Threads currently parked on an in-flight build (test observability).
    int64_t waiters = 0;
    /// Key misses that still skipped the O(n) encoding pre-passes (packed
    /// min/max scans) by adopting a snapshot from the encoding side-cache —
    /// the saving for views whose key vectors are too large to cache.
    int64_t encoding_hits = 0;
  };

  explicit SortKeyCache(size_t max_bytes = kDefaultMaxBytes)
      : max_bytes_(max_bytes) {}

  /// Cached keys for `plan`, or nullptr. Validates that the plan's key
  /// columns are the live objects the entry was built from. On a hit the
  /// plan adopts the entry's encoding snapshot, so the caller skips both
  /// the key build *and* the O(n) encoding pre-passes.
  KeysPtr Get(SortKeyPlan& plan) EXCLUDES(mutex_);

  /// Inserts (or replaces) the keys for `plan` (whose encodings must be
  /// finalized), evicting LRU entries beyond the byte budget. Vectors
  /// larger than the whole budget are not cached. `generation` is the value
  /// of generation() read before the key build: a Clear() in between (crash
  /// / memory-manager eviction racing an in-flight Summarize) invalidates
  /// the insert, so evicted state cannot sneak back into the budget.
  void Put(const SortKeyPlan& plan, KeysPtr keys, uint64_t generation)
      EXCLUDES(mutex_);
  void Put(const SortKeyPlan& plan, KeysPtr keys) EXCLUDES(mutex_);

  /// The single-flight consult path: cached keys if present; otherwise the
  /// first caller builds (when `build_allowed`) while concurrent callers
  /// for the same plan that would also have built wait and adopt the
  /// builder's result. Returns nullptr when nothing is cached and building
  /// is not allowed — without waiting on an in-flight build, because such
  /// callers (low-density scans) finish faster on the virtual comparator
  /// path than any O(universe) key pass they could wait for. A Clear()
  /// racing the build discards the insert as usual; waiters are still
  /// served from the in-flight slot and later callers rebuild.
  KeysPtr GetOrBuild(SortKeyPlan& plan, bool build_allowed) EXCLUDES(mutex_);

  /// Drops everything (crash-restart / cache eviction, §5.8) and bumps the
  /// generation so racing Puts are discarded.
  void Clear() EXCLUDES(mutex_);

  /// Monotone counter incremented by Clear(); read it before building keys
  /// and pass it to Put.
  uint64_t generation() const EXCLUDES(mutex_);

  /// All counters and sizes, read atomically under the lock. Soft-state
  /// regression tests assert a repeat scroll hits and an eviction resets to
  /// a miss.
  Stats Snapshot() const EXCLUDES(mutex_);

  size_t max_bytes() const { return max_bytes_; }

  /// Test hook: invoked by the building thread (unlocked) after it has
  /// registered as the in-flight builder and before it starts the key pass,
  /// so a threaded test can hold the build open until waiters have parked.
  void SetInFlightHookForTest(std::function<void()> hook) EXCLUDES(mutex_);

 private:
  struct Entry {
    KeysPtr keys;
    SortKeyPlan::EncodingSnapshot encodings;
    /// Liveness guards for the columns the keys were derived from.
    std::vector<std::weak_ptr<const IColumn>> columns;
    size_t bytes = 0;
    std::list<std::string>::iterator lru_position;
  };

  /// Encoding snapshots are O(components) — a few dozen bytes — so they get
  /// their own side-cache outside the byte budget: even when a key vector is
  /// too large to cache (or was evicted), a rescan of the same very wide
  /// table skips the packed-transform min/max pre-passes. Capped by entry
  /// count; dead entries are swept on insert like the main map.
  struct EncodingEntry {
    SortKeyPlan::EncodingSnapshot encodings;
    std::vector<std::weak_ptr<const IColumn>> columns;
  };
  static constexpr size_t kMaxEncodingEntries = 256;

  void EvictOverBudgetLocked() REQUIRES(mutex_);
  void DropDeadEntriesLocked() REQUIRES(mutex_);

  /// Saves `plan`'s finalized encodings in the side-cache.
  void RecordEncodingsLocked(const std::string& key, const SortKeyPlan& plan)
      REQUIRES(mutex_);
  /// Adopts a live side-cached snapshot into `plan`; false on miss/dead.
  bool AdoptEncodingsLocked(const std::string& key, SortKeyPlan& plan)
      REQUIRES(mutex_);

  /// Serves a cache hit for `key` against `plan` under the lock, erasing the
  /// entry (and reporting a miss, unless `count_miss` is false — GetOrBuild
  /// retry rounds are one logical call) when its source columns died.
  /// Returns nullptr on miss.
  KeysPtr LookupLocked(const std::string& key, SortKeyPlan& plan,
                       bool count_miss = true) REQUIRES(mutex_);

  /// One in-flight build. Waiters hold the shared_ptr and adopt `keys` +
  /// `encodings` straight from it once `done`, so they are served even when
  /// the vector was too large for Put to cache (the pre-single-flight code
  /// would have built in parallel; serializing N full builds behind a
  /// never-cacheable entry would be strictly worse). `keys == nullptr`
  /// after `done` means the build failed (unwound); waiters then retry and
  /// may become the next builder. All fields are guarded by the owning
  /// cache's mutex_ (the analysis cannot express a guard across objects, so
  /// the discipline is documented here and enforced by the access sites all
  /// living in GetOrBuild's locked scopes).
  struct InFlightBuild {
    bool done = false;
    KeysPtr keys;
    SortKeyPlan::EncodingSnapshot encodings;
  };

  mutable Mutex mutex_;
  CondVar build_done_;
  size_t max_bytes_;
  size_t bytes_used_ GUARDED_BY(mutex_) = 0;
  uint64_t generation_ GUARDED_BY(mutex_) = 0;
  std::unordered_map<std::string, Entry> entries_ GUARDED_BY(mutex_);
  std::list<std::string> lru_ GUARDED_BY(mutex_);  // front = most recent
  /// CacheKeys with a build in flight; waiters park on build_done_.
  std::unordered_map<std::string, std::shared_ptr<InFlightBuild>> in_flight_
      GUARDED_BY(mutex_);
  std::function<void()> in_flight_hook_ GUARDED_BY(mutex_);
  std::unordered_map<std::string, EncodingEntry> encoding_entries_
      GUARDED_BY(mutex_);
  int64_t encoding_hits_ GUARDED_BY(mutex_) = 0;
  int64_t hits_ GUARDED_BY(mutex_) = 0;
  int64_t misses_ GUARDED_BY(mutex_) = 0;
  int64_t evictions_ GUARDED_BY(mutex_) = 0;
  int64_t coalesced_builds_ GUARDED_BY(mutex_) = 0;
  int64_t waiters_ GUARDED_BY(mutex_) = 0;
};

/// The one cache-consult sequence shared by every keyed sketch path:
/// cached keys if present (free regardless of density), else a
/// single-flight build when `build_allowed` (the caller's density gate) —
/// concurrent misses on the same plan coalesce on one builder instead of
/// each running the O(n) key pass. `cache` may be null (tests, benches,
/// standalone callers); the plan is then built directly when allowed.
inline SortKeyPlan::KeysPtr GetOrBuildKeys(SortKeyCache* cache,
                                           SortKeyPlan& plan,
                                           bool build_allowed) {
  if (!plan.valid()) return nullptr;
  if (cache == nullptr) {
    return build_allowed ? plan.BuildKeys() : nullptr;
  }
  return cache->GetOrBuild(plan, build_allowed);
}

}  // namespace hillview

#endif  // HILLVIEW_STORAGE_SORT_KEY_CACHE_H_
