#ifndef HILLVIEW_STORAGE_SIMD_DISPATCH_H_
#define HILLVIEW_STORAGE_SIMD_DISPATCH_H_

#include <cstdint>

namespace hillview {

/// Runtime-dispatched SIMD kernels for the scan layer's hot inner loops.
///
/// The existing BMI2 choice in bit_gather.h is compile-time (it only pays off
/// when the whole binary targets the ISA); these kernels instead instantiate
/// ONE loop body per ISA level from storage/scan_kernels.inc — the scalar
/// body is the specification, the AVX2 body is the same arithmetic in vector
/// registers — and pick a level once per process. Every kernel is
/// bit-deterministic across levels: no FMA contraction, no reassociated
/// float sums, truncating casts only (cvttpd == the C cast for the in-range
/// values these loops produce). That is what lets the forced-scalar CI lane
/// assert byte-identical summaries against the AVX2 path.
///
/// Adding a new ISA level (see README "SIMD dispatch policy"):
///   1. add a `#elif defined(HV_SIMD_<LEVEL>)` branch per kernel in
///      scan_kernels.inc (scalar tail stays shared),
///   2. instantiate a new namespace for it in simd_kernels.cc and extend
///      DetectLevel() + the kernel tables,
///   3. extend SimdLevel below and the scalar-equivalence tests in
///      tests/storage_scan_test.cc (they compare every level against
///      kScalar on random inputs),
///   4. record the bench evidence (bench_scale_threads / bench_single_thread
///      METRIC deltas) in the PR.
enum class SimdLevel {
  kScalar,
  kAvx2,
};

/// One function pointer per hot loop. All kernels are total functions over
/// raw arrays with NO null-mask handling: callers apply the membership/null
/// policy word-at-a-time around them (scan.h) or overwrite missing rows
/// afterwards (sort_key.cc).
struct ScanKernels {
  // --- Predicate word assembly (FilterColumnMembership fast path). --------
  // Each returns a 64-bit membership word for rows [0, 64) of `block`, bit i
  // set when row i matches. Bounds for the integer kernels are CLOSED
  // integer ranges; an empty range (lo > hi) yields 0. NaN never matches
  // the double kernel (ordered compares on both sides).
  uint64_t (*range_word_f64)(const double* block, double lo, double hi);
  uint64_t (*range_word_i32)(const int32_t* block, int64_t lo, int64_t hi);
  uint64_t (*range_word_i64)(const int64_t* block, int64_t lo, int64_t hi);
  uint64_t (*range_word_u32)(const uint32_t* block, uint32_t lo, uint32_t hi);

  // --- Histogram bucket indices (NumericTally block path). ----------------
  // out[i] in [0, count + 1]: [0, count) = bucket, count = out-of-range,
  // count + 1 = missing (NaN; only the f64 kernel produces it). Same
  // clamp-multiply-truncate arithmetic as NumericTally::OnValue.
  void (*hist_index_f64)(const double* data, uint32_t n, double min,
                         double max, double scale, int32_t count,
                         uint32_t* out);
  void (*hist_index_i32)(const int32_t* data, uint32_t n, double min,
                         double max, double scale, int32_t count,
                         uint32_t* out);

  // --- Min/max range pre-passes (sort_key.cc packed transforms). ----------
  // Reduce over all n values; n must be >= 1. No null handling: only called
  // for columns with an empty null mask.
  void (*minmax_i32)(const int32_t* data, uint32_t n, int64_t* lo,
                     int64_t* hi);
  void (*minmax_i64)(const int64_t* data, uint32_t n, int64_t* lo,
                     int64_t* hi);

  // --- Order-preserving sort-key encoding (sort_key.cc). ------------------
  // keys[i] = the ascending uint64 encoding of data[i] (sort_key.cc's
  // EncodeF64 / EncodeI32 / EncodeI64). The f64 kernel maps NaN to the
  // missing key (UINT64_MAX) and collapses -0.0 onto +0.0. The i64 kernel
  // saturates INT64_MAX one below the missing key and returns whether any
  // row saturated — callers with a null mask must re-verify against it
  // (missing rows are encoded too and may carry INT64_MAX garbage).
  void (*encode_keys_f64)(const double* data, uint32_t n, uint64_t* keys);
  void (*encode_keys_i32)(const int32_t* data, uint32_t n, uint64_t* keys);
  bool (*encode_keys_i64)(const int64_t* data, uint32_t n, uint64_t* keys);

  const char* name;
};

/// The level the dispatcher selected for this process: the best the CPU
/// supports, unless HILLVIEW_FORCE_SCALAR is set (non-empty, not "0") in the
/// environment — the CI lane that proves both paths agree. Decided once, at
/// first use.
SimdLevel ActiveSimdLevel();

/// Kernel table for the active level. Grab once per scan, not per row.
const ScanKernels& GetScanKernels();

/// Kernel table for an explicit level; levels the build or CPU cannot run
/// fall back to kScalar. Tests use this to diff levels against each other.
const ScanKernels& GetScanKernelsFor(SimdLevel level);

const char* SimdLevelName(SimdLevel level);

}  // namespace hillview

#endif  // HILLVIEW_STORAGE_SIMD_DISPATCH_H_
