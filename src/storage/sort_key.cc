#include "storage/sort_key.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

namespace hillview {

namespace {

constexpr uint64_t kMissingKey = std::numeric_limits<uint64_t>::max();
constexpr uint64_t kSignBit = 1ULL << 63;

/// Order-preserving bias for 32-bit integers, widened so present keys never
/// reach kMissingKey.
inline uint64_t EncodeI32(int32_t v) {
  return static_cast<uint64_t>(static_cast<uint32_t>(v) ^ 0x80000000u) << 32;
}

/// Sign-bias for 64-bit integers. INT64_MAX maps to kMissingKey, which is
/// reserved; callers saturate it to kMissingKey - 1 and record inexactness.
inline uint64_t EncodeI64(int64_t v) {
  return static_cast<uint64_t>(v) ^ kSignBit;
}

/// IEEE-754 total-order transform: monotone over all non-NaN doubles
/// (including ±inf). -0.0 canonicalizes to +0.0 first, because CompareRows
/// treats them as equal (operator==) and keys must not order equal values.
/// NaN never reaches this (it is missing under the central scan policy).
inline uint64_t EncodeF64(double d) {
  if (d == 0.0) d = 0.0;  // collapse -0.0 onto +0.0
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  return (bits & kSignBit) ? ~bits : (bits | kSignBit);
}

}  // namespace

SortKeyPlan::SortKeyPlan(const Table& table, const RecordOrder& order) {
  // Bind the first order column that exists, mirroring RowComparator's
  // skip-unknown policy; everything after it is the virtual tie-break tail.
  const auto& orientations = order.orientations();
  size_t i = 0;
  ColumnPtr first;
  for (; i < orientations.size(); ++i) {
    first = table.GetColumnOrNull(orientations[i].column);
    if (first != nullptr) break;
  }
  if (first == nullptr) return;
  first_index_ = i;
  ascending_ = orientations[i].ascending;
  kind_ = first->kind();
  column_ = first.get();
  for (size_t j = i + 1; j < orientations.size(); ++j) {
    if (table.GetColumnOrNull(orientations[j].column) != nullptr) {
      tail_.push_back(orientations[j]);
    }
  }

  const uint32_t n = first->size();
  keys_.resize(n);
  const NullMask& nulls = first->null_mask();
  const bool check_nulls = !nulls.empty();

  if (const double* raw = first->RawDouble()) {
    for (uint32_t r = 0; r < n; ++r) {
      double d = raw[r];
      keys_[r] = (check_nulls && nulls.IsMissing(r)) || std::isnan(d)
                     ? kMissingKey
                     : EncodeF64(d);
    }
  } else if (const int32_t* raw32 = first->RawInt()) {
    for (uint32_t r = 0; r < n; ++r) {
      keys_[r] = (check_nulls && nulls.IsMissing(r)) ? kMissingKey
                                                     : EncodeI32(raw32[r]);
    }
  } else if (const int64_t* raw64 = first->RawDate()) {
    for (uint32_t r = 0; r < n; ++r) {
      if (check_nulls && nulls.IsMissing(r)) {
        keys_[r] = kMissingKey;
        continue;
      }
      uint64_t k = EncodeI64(raw64[r]);
      if (k == kMissingKey) {
        // INT64_MAX collides with the missing key: saturate and let key ties
        // re-compare the first column through the virtual path.
        k = kMissingKey - 1;
        exact_ = false;
      }
      keys_[r] = k;
    }
  } else if (const uint32_t* codes = first->RawCodes()) {
    // Dictionary codes: missing is in the code stream (kMissingCode is the
    // max uint32, strictly below kMissingKey after widening — but missing
    // must map to the missing key explicitly so descending complements
    // place it first).
    for (uint32_t r = 0; r < n; ++r) {
      uint32_t c = codes[r];
      keys_[r] = c == StringColumn::kMissingCode
                     ? kMissingKey
                     : static_cast<uint64_t>(c);
    }
  } else {
    // Generic layout: no raw array to encode from.
    keys_.clear();
    keys_.shrink_to_fit();
    return;
  }

  if (!ascending_) {
    // Complementing reverses the key order and sends the missing key to 0,
    // exactly reproducing `ascending ? c : -c` over missing-last CompareRows.
    for (auto& k : keys_) k = ~k;
  }

  if (exact_) {
    tie_order_ = tail_;
  } else {
    tie_order_.reserve(tail_.size() + 1);
    tie_order_.push_back(orientations[i]);
    tie_order_.insert(tie_order_.end(), tail_.begin(), tail_.end());
  }
  valid_ = true;
}

std::optional<uint64_t> SortKeyPlan::EncodeStartCell(const Value& v) const {
  if (!valid_) return std::nullopt;
  uint64_t enc = 0;
  if (std::holds_alternative<std::monostate>(v)) {
    enc = kMissingKey;
  } else if (IsStringKind(kind_)) {
    const auto* s = std::get_if<std::string>(&v);
    if (s == nullptr) return std::nullopt;
    // The dictionary is sorted, so the insertion point partitions the codes:
    // codes below it are lexicographically smaller than *s, codes at or
    // above are >= — and the `==` case falls back to a full compare anyway.
    const auto& dict = column_->Dictionary();
    auto it = std::lower_bound(dict.begin(), dict.end(), *s);
    enc = static_cast<uint64_t>(it - dict.begin());
  } else {
    // Numeric layouts: accept only values that embed exactly in the column's
    // key space; anything else falls back to per-row virtual compares.
    const auto* pi = std::get_if<int64_t>(&v);
    const auto* pd = std::get_if<double>(&v);
    if (pi == nullptr && pd == nullptr) return std::nullopt;
    if (pd != nullptr && std::isnan(*pd)) return std::nullopt;
    // The integer view of the value, when it has one that is exact.
    std::optional<int64_t> i;
    if (pi != nullptr) {
      i = *pi;
    } else if (*pd >= -9.2e18 && *pd <= 9.2e18 &&
               static_cast<double>(static_cast<int64_t>(*pd)) == *pd) {
      i = static_cast<int64_t>(*pd);
    }
    switch (kind_) {
      case DataKind::kDouble: {
        if (pi != nullptr && (*pi > (1LL << 53) || *pi < -(1LL << 53))) {
          return std::nullopt;  // int64 that may not round-trip via double
        }
        enc = EncodeF64(pd != nullptr ? *pd : static_cast<double>(*pi));
        break;
      }
      case DataKind::kInt:
        if (!i.has_value()) return std::nullopt;
        if (*i < std::numeric_limits<int32_t>::min() ||
            *i > std::numeric_limits<int32_t>::max()) {
          return std::nullopt;
        }
        enc = EncodeI32(static_cast<int32_t>(*i));
        break;
      case DataKind::kDate:
        if (!i.has_value()) return std::nullopt;
        // A double-derived view beyond 2^53 is lossy against int64 rows:
        // CompareValues would compare as doubles, so the exact integer
        // threshold could disagree with the fallback comparison.
        if (pi == nullptr && (*i > (1LL << 53) || *i < -(1LL << 53))) {
          return std::nullopt;
        }
        enc = EncodeI64(*i);
        if (enc == kMissingKey) return std::nullopt;  // INT64_MAX saturates
        break;
      default:
        return std::nullopt;
    }
  }
  return ascending_ ? enc : ~enc;
}

}  // namespace hillview
