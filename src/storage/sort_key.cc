#include "storage/sort_key.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <utility>

#include "storage/simd_dispatch.h"

namespace hillview {

namespace {

constexpr uint64_t kMissingKey = std::numeric_limits<uint64_t>::max();
constexpr uint64_t kSignBit = 1ULL << 63;

/// Packed-component sentinels: the all-ones 32-bit component is reserved for
/// missing, so present encodings saturate one below it.
constexpr uint32_t kMissingComponent = std::numeric_limits<uint32_t>::max();
constexpr uint32_t kMaxComponent = kMissingComponent - 1;

/// Order-preserving bias for 32-bit integers, widened so present keys never
/// reach kMissingKey.
inline uint64_t EncodeI32(int32_t v) {
  return static_cast<uint64_t>(static_cast<uint32_t>(v) ^ 0x80000000u) << 32;
}

/// Sign-bias for 64-bit integers. INT64_MAX maps to kMissingKey, which is
/// reserved; callers saturate it to kMissingKey - 1 and record inexactness.
inline uint64_t EncodeI64(int64_t v) {
  return static_cast<uint64_t>(v) ^ kSignBit;
}

/// IEEE-754 total-order transform: monotone over all non-NaN doubles
/// (including ±inf). -0.0 canonicalizes to +0.0 first, because CompareRows
/// treats them as equal (operator==) and keys must not order equal values.
/// NaN never reaches this (it is missing under the central scan policy).
inline uint64_t EncodeF64(double d) {
  if (d == 0.0) d = 0.0;  // collapse -0.0 onto +0.0
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  return (bits & kSignBit) ? ~bits : (bits | kSignBit);
}

/// The layouts a column can contribute to a packed 32+32 key.
enum class NarrowLayout { kNone, kI32, kI64, kCodes };

NarrowLayout NarrowLayoutOf(const IColumn& col) {
  if (col.RawInt() != nullptr) return NarrowLayout::kI32;
  if (col.RawDate() != nullptr) return NarrowLayout::kI64;
  if (col.RawCodes() != nullptr) return NarrowLayout::kCodes;
  return NarrowLayout::kNone;
}

}  // namespace

SortKeyPlan::SortKeyPlan(const Table& table, const RecordOrder& order) {
  Plan(table, order);
  if (valid_) keys_ = BuildKeys();  // finalizes encodings on the way
}

SortKeyPlan::SortKeyPlan(const Table& table, const RecordOrder& order,
                         DeferKeysTag) {
  Plan(table, order);
}

/// Derives the packed transform for one component: `enc = (v - min) >> shift`
/// over the column's present-value range, monotone by construction and
/// injective (exact) when shift == 0. Dictionary codes are already 32-bit
/// ordinals and need no transform.
static void ComputePackTransformImpl(const IColumn& col, int64_t* min,
                                     uint32_t* shift, bool* exact) {
  *min = 0;
  *shift = 0;
  *exact = true;
  if (col.RawCodes() != nullptr) return;  // codes are the component already
  const NullMask& nulls = col.null_mask();
  const bool check_nulls = !nulls.empty();
  const uint32_t n = col.size();
  bool any = false;
  int64_t lo = 0, hi = 0;
  auto reduce = [&](const auto* raw) {
    for (uint32_t r = 0; r < n; ++r) {
      if (check_nulls && nulls.IsMissing(r)) continue;
      int64_t v = raw[r];
      if (!any) {
        lo = hi = v;
        any = true;
      } else {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    }
  };
  // No-null columns reduce through the runtime-dispatched min/max kernels;
  // integer min/max is order-insensitive, so the result is exact either way.
  if (const int32_t* raw = col.RawInt()) {
    if (!check_nulls && n > 0) {
      GetScanKernels().minmax_i32(raw, n, &lo, &hi);
      any = true;
    } else {
      reduce(raw);
    }
  } else if (const int64_t* raw64 = col.RawDate()) {
    if (!check_nulls && n > 0) {
      GetScanKernels().minmax_i64(raw64, n, &lo, &hi);
      any = true;
    } else {
      reduce(raw64);
    }
  }
  if (!any) return;  // all missing: encode is never consulted
  *min = lo;
  uint64_t range =
      static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo);  // two's complement
  while ((range >> *shift) > kMaxComponent) ++*shift;
  *exact = (*shift == 0);
}

void SortKeyPlan::Plan(const Table& table, const RecordOrder& order) {
  // Stage 1, deliberately O(columns) not O(rows): bind the first order
  // column that exists (mirroring RowComparator's skip-unknown policy), the
  // candidate second column, and the tie tail. Everything data-derived
  // (min/shift transforms, exactness, final shape) waits for
  // FinalizeEncodings(), so a cache lookup costs no column scan.
  const auto& orientations = order.orientations();
  size_t i = 0;
  ColumnPtr first;
  for (; i < orientations.size(); ++i) {
    first = table.GetColumnOrNull(orientations[i].column);
    if (first != nullptr) break;
  }
  if (first == nullptr) return;
  first_index_ = i;
  universe_ = first->size();
  first_.column = first;
  first_.kind = first->kind();
  first_.ascending = orientations[i].ascending;
  first_.orientation_index = i;
  first_orient_ = orientations[i];

  ColumnPtr second;
  size_t second_orientation = 0;
  for (size_t j = i + 1; j < orientations.size(); ++j) {
    ColumnPtr c = table.GetColumnOrNull(orientations[j].column);
    if (c == nullptr) continue;
    if (second == nullptr) {
      second = c;
      second_orientation = j;
    }
    rest_.push_back(orientations[j]);
  }

  // Candidate packed 32+32 shape: both leading columns narrow. Whether
  // packing actually engages depends on the first column's value range
  // (FinalizeEncodings); the candidacy alone fixes the cache identity.
  if (second != nullptr &&
      NarrowLayoutOf(*first) != NarrowLayout::kNone &&
      NarrowLayoutOf(*second) != NarrowLayout::kNone) {
    candidate_packed_ = true;
    second_.column = second;
    second_.kind = second->kind();
    second_.ascending = orientations[second_orientation].ascending;
    second_.orientation_index = second_orientation;
    second_orient_ = orientations[second_orientation];
  } else if (first->RawDouble() == nullptr && first->RawInt() == nullptr &&
             first->RawDate() == nullptr && first->RawCodes() == nullptr) {
    return;  // generic layout: no raw array to encode from
  }

  key_columns_ = candidate_packed_ ? std::vector<ColumnPtr>{first, second}
                                   : std::vector<ColumnPtr>{first};
  valid_ = true;
}

void SortKeyPlan::FinalizeShape() {
  // Packed 32+32 shape requires the first column's transform exact — a lossy
  // high half would let the low half override the true first-column order,
  // so inexact first columns fall back to the single shape.
  if (candidate_packed_) {
    ComputePackTransformImpl(*first_.column, &first_.min, &first_.shift,
                             &first_.exact);
    if (first_.exact) {
      ComputePackTransformImpl(*second_.column, &second_.min, &second_.shift,
                               &second_.exact);
      packed_ = true;
    } else {
      // Reset: the single shape has its own exactness rules.
      first_.min = 0;
      first_.shift = 0;
      first_.exact = true;
    }
  }
}

void SortKeyPlan::FinalizeEncodings() {
  if (encodings_ready_ || !valid_) return;
  FinalizeShape();
  if (!packed_) {
    if (const int64_t* raw64 = first_.column->RawDate()) {
      // INT64_MAX collides with the reserved missing key; if present, the
      // encoding saturates and key ties must re-compare the first column.
      // (BuildKeys detects this inside the key pass instead — this scan is
      // only for callers that want the shape without materializing keys.)
      const NullMask& nulls = first_.column->null_mask();
      const bool check_nulls = !nulls.empty();
      for (uint32_t r = 0; r < universe_; ++r) {
        if (raw64[r] == std::numeric_limits<int64_t>::max() &&
            !(check_nulls && nulls.IsMissing(r))) {
          first_.exact = false;
          break;
        }
      }
    }
  }
  DeriveTieOrder();
  encodings_ready_ = true;
}

void SortKeyPlan::DeriveTieOrder() {
  tie_order_.clear();
  if (packed_) {
    exact_ = second_.exact;  // the first component is exact by construction
    if (!second_.exact) tie_order_.push_back(second_orient_);
    tie_order_.insert(tie_order_.end(), rest_.begin() + 1, rest_.end());
  } else {
    exact_ = first_.exact;
    if (!exact_) tie_order_.push_back(first_orient_);
    tie_order_.insert(tie_order_.end(), rest_.begin(), rest_.end());
  }
}

SortKeyPlan::EncodingSnapshot SortKeyPlan::encodings() const {
  EncodingSnapshot s;
  s.packed = packed_;
  s.first_min = first_.min;
  s.first_shift = first_.shift;
  s.first_exact = first_.exact;
  s.second_min = second_.min;
  s.second_shift = second_.shift;
  s.second_exact = second_.exact;
  return s;
}

void SortKeyPlan::AdoptEncodings(const EncodingSnapshot& snapshot) {
  if (!valid_ || encodings_ready_) return;
  packed_ = snapshot.packed && candidate_packed_;
  first_.min = snapshot.first_min;
  first_.shift = snapshot.first_shift;
  first_.exact = snapshot.first_exact;
  second_.min = snapshot.second_min;
  second_.shift = snapshot.second_shift;
  second_.exact = snapshot.second_exact;
  DeriveTieOrder();
  encodings_ready_ = true;
}

bool SortKeyPlan::BuildSingleKeys(std::vector<uint64_t>& keys) const {
  const IColumn& col = *first_.column;
  const uint32_t n = universe_;
  const NullMask& nulls = col.null_mask();
  const bool check_nulls = !nulls.empty();
  bool saturated = false;

  // The numeric layouts encode through the runtime-dispatched kernels
  // (simd_dispatch.h), which produce exactly EncodeF64/EncodeI32/EncodeI64
  // over every row; missing rows are then stamped with the missing key, one
  // ctz per set null bit.
  const ScanKernels& kern = GetScanKernels();
  auto stamp_missing = [&keys, &nulls, n] {
    const uint64_t* words = nulls.word_data();
    const size_t num_words = nulls.num_words();
    for (size_t w = 0; w < num_words; ++w) {
      uint64_t m = words[w];
      const uint32_t base = static_cast<uint32_t>(w << 6);
      while (m != 0) {
        const uint32_t r = base + static_cast<uint32_t>(__builtin_ctzll(m));
        if (r < n) keys[r] = kMissingKey;
        m &= m - 1;
      }
    }
  };

  if (const double* raw = col.RawDouble()) {
    if (n > 0) kern.encode_keys_f64(raw, n, keys.data());  // NaN -> missing
    if (check_nulls) stamp_missing();
  } else if (const int32_t* raw32 = col.RawInt()) {
    if (n > 0) kern.encode_keys_i32(raw32, n, keys.data());
    if (check_nulls) stamp_missing();
  } else if (const int64_t* raw64 = col.RawDate()) {
    // INT64_MAX collides with the missing key: the kernel saturates it to
    // kMissingKey - 1 and reports it, so key ties re-compare the first
    // column.
    if (n > 0) saturated = kern.encode_keys_i64(raw64, n, keys.data());
    if (check_nulls) {
      stamp_missing();
      if (saturated) {
        // The bulk pass encodes missing slots too, so their garbage can
        // raise the flag; re-verify against the null mask before giving up
        // key exactness.
        saturated = false;
        for (uint32_t r = 0; r < n; ++r) {
          if (raw64[r] == std::numeric_limits<int64_t>::max() &&
              !nulls.IsMissing(r)) {
            saturated = true;
            break;
          }
        }
      }
    }
  } else if (const uint32_t* codes = col.RawCodes()) {
    // Dictionary codes: missing is in the code stream (kMissingCode is the
    // max uint32, strictly below kMissingKey after widening — but missing
    // must map to the missing key explicitly so descending complements
    // place it first).
    for (uint32_t r = 0; r < n; ++r) {
      uint32_t c = codes[r];
      keys[r] = c == StringColumn::kMissingCode
                    ? kMissingKey
                    : static_cast<uint64_t>(c);
    }
  }

  if (!first_.ascending) {
    // Complementing reverses the key order and sends the missing key to 0,
    // exactly reproducing `ascending ? c : -c` over missing-last CompareRows.
    for (auto& k : keys) k = ~k;
  }
  return saturated;
}

namespace {

/// Writes one packed component into its 32-bit half of every key. The first
/// component initializes the key, the second ORs into it.
void EncodePackedComponentInto(const SortKeyPlan::Component& c, uint32_t n,
                               int half_shift, bool init,
                               std::vector<uint64_t>& keys) {
  const IColumn& col = *c.column;
  auto put = [&](uint32_t r, uint32_t e) {
    if (!c.ascending) e = ~e;  // per-column direction (missing moves first)
    uint64_t part = static_cast<uint64_t>(e) << half_shift;
    if (init) {
      keys[r] = part;
    } else {
      keys[r] |= part;
    }
  };
  if (const uint32_t* codes = col.RawCodes()) {
    for (uint32_t r = 0; r < n; ++r) {
      uint32_t code = codes[r];
      put(r, code == StringColumn::kMissingCode ? kMissingComponent : code);
    }
    return;
  }
  const NullMask& nulls = col.null_mask();
  const bool check_nulls = !nulls.empty();
  const uint64_t min = static_cast<uint64_t>(c.min);
  if (const int32_t* raw = col.RawInt()) {
    for (uint32_t r = 0; r < n; ++r) {
      if (check_nulls && nulls.IsMissing(r)) {
        put(r, kMissingComponent);
        continue;
      }
      uint64_t diff =
          static_cast<uint64_t>(static_cast<int64_t>(raw[r])) - min;
      put(r, static_cast<uint32_t>(diff >> c.shift));
    }
    return;
  }
  if (const int64_t* raw64 = col.RawDate()) {
    for (uint32_t r = 0; r < n; ++r) {
      if (check_nulls && nulls.IsMissing(r)) {
        put(r, kMissingComponent);
        continue;
      }
      uint64_t diff = static_cast<uint64_t>(raw64[r]) - min;
      put(r, static_cast<uint32_t>(diff >> c.shift));
    }
    return;
  }
}

}  // namespace

void SortKeyPlan::BuildPackedKeys(std::vector<uint64_t>& keys) const {
  EncodePackedComponentInto(first_, universe_, 32, /*init=*/true, keys);
  EncodePackedComponentInto(second_, universe_, 0, /*init=*/false, keys);
}

SortKeyPlan::KeysPtr SortKeyPlan::BuildKeys() {
  auto keys = std::make_shared<std::vector<uint64_t>>(universe_, 0);
  if (encodings_ready_) {
    if (packed_) {
      BuildPackedKeys(*keys);
    } else {
      BuildSingleKeys(*keys);
    }
    return keys;
  }
  // Cold build: fix the encodings on the way. The packed transforms need
  // their min/max pre-pass before any key can be encoded, but the single
  // shape's only data-derived decision (INT64_MAX saturation) is detected
  // inside the key pass itself — one fused scan, not two.
  FinalizeShape();
  if (packed_) {
    BuildPackedKeys(*keys);
  } else if (BuildSingleKeys(*keys)) {
    first_.exact = false;
  }
  DeriveTieOrder();
  encodings_ready_ = true;
  return keys;
}

std::optional<std::pair<uint32_t, bool>> SortKeyPlan::EncodePackedCell(
    const Component& c, const Value& v) const {
  uint32_t enc = 0;
  bool value_exact = true;
  if (std::holds_alternative<std::monostate>(v)) {
    // Missing is its own component value: rows match it exactly.
    enc = kMissingComponent;
  } else if (IsStringKind(c.kind)) {
    const auto* s = std::get_if<std::string>(&v);
    if (s == nullptr) return std::nullopt;
    // The dictionary is sorted, so the insertion point partitions the codes;
    // exact only when the value is itself a dictionary entry.
    const StringDictionary& dict = c.column->Dictionary();
    uint64_t idx = dict.LowerBound(*s);
    value_exact = idx < dict.size() && dict[static_cast<uint32_t>(idx)] == *s;
    if (idx > kMaxComponent) {
      idx = kMaxComponent;
      value_exact = false;
    }
    enc = static_cast<uint32_t>(idx);
  } else {
    // Narrow numeric component: accept only values with an exact integer
    // view (mirroring EncodeStartCell's conservatism about lossy doubles).
    const auto* pi = std::get_if<int64_t>(&v);
    const auto* pd = std::get_if<double>(&v);
    if (pi == nullptr && pd == nullptr) return std::nullopt;
    if (pd != nullptr && std::isnan(*pd)) return std::nullopt;
    std::optional<int64_t> i;
    if (pi != nullptr) {
      i = *pi;
    } else if (*pd >= -9.2e18 && *pd <= 9.2e18 &&
               static_cast<double>(static_cast<int64_t>(*pd)) == *pd) {
      i = static_cast<int64_t>(*pd);
    }
    if (!i.has_value()) return std::nullopt;
    if (c.kind == DataKind::kDate && pi == nullptr &&
        (*i > (1LL << 53) || *i < -(1LL << 53))) {
      // A double-derived view beyond 2^53 is lossy against int64 rows: the
      // virtual fallback would compare as doubles and could disagree.
      return std::nullopt;
    }
    if (*i < c.min) {
      enc = 0;  // below every present row: only the bottom bucket re-compares
      value_exact = false;
    } else {
      uint64_t diff = static_cast<uint64_t>(*i) - static_cast<uint64_t>(c.min);
      uint64_t e = diff >> c.shift;
      if (e > kMaxComponent) {
        enc = kMaxComponent;  // above every present row
        value_exact = false;
      } else {
        enc = static_cast<uint32_t>(e);
        value_exact = (c.shift == 0);
      }
    }
  }
  if (!c.ascending) enc = ~enc;
  return std::make_pair(enc, value_exact);
}

std::optional<SortKeyPlan::StartKeyBand> SortKeyPlan::EncodeStartKey(
    const std::vector<Value>& cells) const {
  if (!valid_ || !encodings_ready_) return std::nullopt;
  if (!packed_) {
    if (first_index_ >= cells.size()) return std::nullopt;
    auto enc = EncodeStartCell(cells[first_index_]);
    if (!enc.has_value()) return std::nullopt;
    return StartKeyBand{*enc, *enc};
  }
  if (first_.orientation_index >= cells.size()) return std::nullopt;
  auto e0 = EncodePackedCell(first_, cells[first_.orientation_index]);
  if (!e0.has_value()) return std::nullopt;
  uint64_t hi = static_cast<uint64_t>(e0->first) << 32;
  if (!e0->second || second_.orientation_index >= cells.size()) {
    // First component ambiguous (or no second cell): keys within the whole
    // low half of this high component need the full comparison. Strictly
    // outside it the first column alone decides.
    return StartKeyBand{hi, hi | 0xFFFFFFFFull};
  }
  auto e1 = EncodePackedCell(second_, cells[second_.orientation_index]);
  if (!e1.has_value()) return StartKeyBand{hi, hi | 0xFFFFFFFFull};
  // First component exact: equal high halves mean equal first-column values,
  // so the second component's monotone order applies and the band collapses
  // to a point (an inexact second component just re-compares on key
  // equality, which the point band already requires).
  uint64_t key = hi | e1->first;
  return StartKeyBand{key, key};
}

std::optional<uint64_t> SortKeyPlan::EncodeStartCell(const Value& v) const {
  if (!valid_ || !encodings_ready_ || packed_) return std::nullopt;
  uint64_t enc = 0;
  if (std::holds_alternative<std::monostate>(v)) {
    enc = kMissingKey;
  } else if (IsStringKind(first_.kind)) {
    const auto* s = std::get_if<std::string>(&v);
    if (s == nullptr) return std::nullopt;
    // The dictionary is sorted, so the insertion point partitions the codes:
    // codes below it are lexicographically smaller than *s, codes at or
    // above are >= — and the `==` case falls back to a full compare anyway.
    const StringDictionary& dict = first_.column->Dictionary();
    enc = dict.LowerBound(*s);
  } else {
    // Numeric layouts: accept only values that embed exactly in the column's
    // key space; anything else falls back to per-row virtual compares.
    const auto* pi = std::get_if<int64_t>(&v);
    const auto* pd = std::get_if<double>(&v);
    if (pi == nullptr && pd == nullptr) return std::nullopt;
    if (pd != nullptr && std::isnan(*pd)) return std::nullopt;
    // The integer view of the value, when it has one that is exact.
    std::optional<int64_t> i;
    if (pi != nullptr) {
      i = *pi;
    } else if (*pd >= -9.2e18 && *pd <= 9.2e18 &&
               static_cast<double>(static_cast<int64_t>(*pd)) == *pd) {
      i = static_cast<int64_t>(*pd);
    }
    switch (first_.kind) {
      case DataKind::kDouble: {
        if (pi != nullptr && (*pi > (1LL << 53) || *pi < -(1LL << 53))) {
          return std::nullopt;  // int64 that may not round-trip via double
        }
        enc = EncodeF64(pd != nullptr ? *pd : static_cast<double>(*pi));
        break;
      }
      case DataKind::kInt:
        if (!i.has_value()) return std::nullopt;
        if (*i < std::numeric_limits<int32_t>::min() ||
            *i > std::numeric_limits<int32_t>::max()) {
          return std::nullopt;
        }
        enc = EncodeI32(static_cast<int32_t>(*i));
        break;
      case DataKind::kDate:
        if (!i.has_value()) return std::nullopt;
        // A double-derived view beyond 2^53 is lossy against int64 rows:
        // CompareValues would compare as doubles, so the exact integer
        // threshold could disagree with the fallback comparison.
        if (pi == nullptr && (*i > (1LL << 53) || *i < -(1LL << 53))) {
          return std::nullopt;
        }
        enc = EncodeI64(*i);
        if (enc == kMissingKey) return std::nullopt;  // INT64_MAX saturates
        break;
      default:
        return std::nullopt;
    }
  }
  return first_.ascending ? enc : ~enc;
}

std::string SortKeyPlan::CacheKey() const {
  // Candidate-shape tag + per-component column object identity and
  // direction, all stage-1 facts, so a lookup needs no column scan. Column
  // data is immutable, so the object pointer is the layout fingerprint
  // (final shape and transforms are deterministic per column data — one
  // candidate key maps to exactly one snapshot), and the cache re-validates
  // liveness through key_columns() before serving, which rules out recycled
  // allocations. Tail columns are deliberately excluded: they do not
  // influence the key vector, so orders differing only in their tie tail
  // share one entry.
  std::string key = candidate_packed_ ? "c2" : "s1";
  auto append_component = [&key](const Component& c) {
    key += '|';
    key += std::to_string(
        reinterpret_cast<uintptr_t>(static_cast<const void*>(c.column.get())));
    key += c.ascending ? '+' : '-';
  };
  append_component(first_);
  if (candidate_packed_) append_component(second_);
  return key;
}

}  // namespace hillview
