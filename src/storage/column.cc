#include "storage/column.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <unordered_map>

namespace hillview {

struct ColumnBuilder::DictIndex {
  std::unordered_map<std::string, uint32_t> map;
};

void ColumnBuilder::AppendInt(int32_t v) {
  assert(kind_ == DataKind::kInt);
  ints_.push_back(v);
  ++count_;
}

void ColumnBuilder::AppendDouble(double v) {
  assert(kind_ == DataKind::kDouble);
  doubles_.push_back(v);
  ++count_;
}

void ColumnBuilder::AppendDate(int64_t millis) {
  assert(kind_ == DataKind::kDate);
  dates_.push_back(millis);
  ++count_;
}

void ColumnBuilder::AppendString(std::string_view v) {
  assert(IsStringKind(kind_));
  if (dict_index_ == nullptr) dict_index_ = std::make_shared<DictIndex>();
  auto [it, inserted] =
      dict_index_->map.try_emplace(std::string(v),
                                   static_cast<uint32_t>(dict_.size()));
  if (inserted) dict_.push_back(std::string(v));
  codes_.push_back(it->second);
  ++count_;
}

void ColumnBuilder::AppendMissing() {
  switch (kind_) {
    case DataKind::kInt:
      nulls_.SetMissing(count_);
      ints_.push_back(0);
      break;
    case DataKind::kDouble:
      nulls_.SetMissing(count_);
      doubles_.push_back(0.0);
      break;
    case DataKind::kDate:
      nulls_.SetMissing(count_);
      dates_.push_back(0);
      break;
    case DataKind::kString:
    case DataKind::kCategory:
      codes_.push_back(StringColumn::kMissingCode);
      break;
  }
  ++count_;
}

void ColumnBuilder::AppendValue(const Value& v) {
  if (std::holds_alternative<std::monostate>(v)) {
    AppendMissing();
    return;
  }
  switch (kind_) {
    case DataKind::kInt:
      AppendInt(static_cast<int32_t>(std::get<int64_t>(v)));
      break;
    case DataKind::kDouble:
      if (const auto* i = std::get_if<int64_t>(&v)) {
        AppendDouble(static_cast<double>(*i));
      } else {
        AppendDouble(std::get<double>(v));
      }
      break;
    case DataKind::kDate:
      AppendDate(std::get<int64_t>(v));
      break;
    case DataKind::kString:
    case DataKind::kCategory:
      AppendString(std::get<std::string>(v));
      break;
  }
}

ColumnPtr ColumnBuilder::Finish() {
  switch (kind_) {
    case DataKind::kInt:
      return std::make_shared<Int32Column>(std::move(ints_),
                                           std::move(nulls_));
    case DataKind::kDouble:
      return std::make_shared<DoubleColumn>(std::move(doubles_),
                                            std::move(nulls_));
    case DataKind::kDate:
      return std::make_shared<DateColumn>(std::move(dates_),
                                          std::move(nulls_));
    case DataKind::kString:
    case DataKind::kCategory:
      break;
  }
  // Sort the dictionary and remap codes so code order == alphabetical order.
  std::vector<uint32_t> order(dict_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [this](uint32_t a, uint32_t b) {
    return dict_[a] < dict_[b];
  });
  std::vector<uint32_t> remap(dict_.size());
  std::vector<std::string> sorted_dict(dict_.size());
  for (uint32_t new_code = 0; new_code < order.size(); ++new_code) {
    remap[order[new_code]] = new_code;
    sorted_dict[new_code] = std::move(dict_[order[new_code]]);
  }
  for (auto& code : codes_) {
    if (code != StringColumn::kMissingCode) code = remap[code];
  }
  return std::make_shared<StringColumn>(kind_, std::move(codes_),
                                        std::move(sorted_dict));
}

}  // namespace hillview
