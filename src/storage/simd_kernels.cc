#include "storage/simd_dispatch.h"

#include <cmath>
#include <cstdlib>
#include <limits>

// Runtime dispatch only makes sense where more than one level can exist:
// x86-64 with a compiler that supports per-function target attributes (so
// the AVX2 translation unit body can use intrinsics without the whole build
// being compiled -mavx2). Everywhere else the table degenerates to scalar.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define HV_SIMD_X86 1
#include <immintrin.h>
#endif

namespace hillview {
namespace {

namespace scalar_kernels {
#define HV_KERNEL_TARGET
#include "storage/scan_kernels.inc"
#undef HV_KERNEL_TARGET
}  // namespace scalar_kernels

#ifdef HV_SIMD_X86
namespace avx2_kernels {
#define HV_SIMD_AVX2 1
#define HV_KERNEL_TARGET __attribute__((target("avx2")))
#include "storage/scan_kernels.inc"
#undef HV_KERNEL_TARGET
#undef HV_SIMD_AVX2
}  // namespace avx2_kernels
#endif  // HV_SIMD_X86

constexpr ScanKernels kScalarKernels = {
    &scalar_kernels::RangeWordF64,  &scalar_kernels::RangeWordI32,
    &scalar_kernels::RangeWordI64,  &scalar_kernels::RangeWordU32,
    &scalar_kernels::HistIndexF64,  &scalar_kernels::HistIndexI32,
    &scalar_kernels::MinMaxI32,     &scalar_kernels::MinMaxI64,
    &scalar_kernels::EncodeKeysF64, &scalar_kernels::EncodeKeysI32,
    &scalar_kernels::EncodeKeysI64, "scalar",
};

#ifdef HV_SIMD_X86
constexpr ScanKernels kAvx2Kernels = {
    &avx2_kernels::RangeWordF64,  &avx2_kernels::RangeWordI32,
    &avx2_kernels::RangeWordI64,  &avx2_kernels::RangeWordU32,
    &avx2_kernels::HistIndexF64,  &avx2_kernels::HistIndexI32,
    &avx2_kernels::MinMaxI32,     &avx2_kernels::MinMaxI64,
    &avx2_kernels::EncodeKeysF64, &avx2_kernels::EncodeKeysI32,
    &avx2_kernels::EncodeKeysI64, "avx2",
};
#endif  // HV_SIMD_X86

SimdLevel DetectLevel() {
  // The forced-scalar CI lane: any non-empty value other than "0" pins the
  // dispatcher to the specification path.
  const char* force = std::getenv("HILLVIEW_FORCE_SCALAR");
  if (force != nullptr && force[0] != '\0' &&
      !(force[0] == '0' && force[1] == '\0')) {
    return SimdLevel::kScalar;
  }
#ifdef HV_SIMD_X86
  if (__builtin_cpu_supports("avx2")) return SimdLevel::kAvx2;
#endif
  return SimdLevel::kScalar;
}

}  // namespace

SimdLevel ActiveSimdLevel() {
  static const SimdLevel level = DetectLevel();
  return level;
}

const ScanKernels& GetScanKernelsFor(SimdLevel level) {
#ifdef HV_SIMD_X86
  if (level == SimdLevel::kAvx2 && __builtin_cpu_supports("avx2")) {
    return kAvx2Kernels;
  }
#else
  (void)level;
#endif
  return kScalarKernels;
}

const ScanKernels& GetScanKernels() {
  static const ScanKernels& kernels = GetScanKernelsFor(ActiveSimdLevel());
  return kernels;
}

const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kScalar:
      break;
  }
  return "scalar";
}

}  // namespace hillview
