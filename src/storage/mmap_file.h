#ifndef HILLVIEW_STORAGE_MMAP_FILE_H_
#define HILLVIEW_STORAGE_MMAP_FILE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "util/status.h"
#include "util/thread_annotations.h"

namespace hillview {

class IMembershipSet;

/// A read-only memory-mapped file: the single owner of one mmap region that
/// every mapped column / null-mask / dictionary view of a columnar file
/// shares. Views hold a shared_ptr back to it (via MappedSegment), so the
/// mapping outlives any Table built over it and is unmapped exactly once.
///
/// This is the out-of-core half of the storage-backend seam: column bytes
/// stay on disk, the kernel pages them in on demand, and scans run zero-copy
/// over the mapped region — the §5.4 "fast sequential and columnar access"
/// story extended to tables bigger than RAM (the LSST-class regime).
class MappedFile {
 public:
  /// Maps `path` read-only in its entirety. Fails on platforms without mmap.
  static Result<std::shared_ptr<MappedFile>> Open(const std::string& path);

  ~MappedFile();
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const uint8_t* data() const { return data_; }
  uint64_t size() const { return size_; }
  const std::string& path() const { return path_; }

  enum class Advice { kNormal, kSequential, kRandom, kWillNeed, kDontNeed };

  /// Forwards [offset, offset+bytes) to madvise, rounded outward to page
  /// boundaries. Advisory: failures are counted, never fatal.
  void Advise(uint64_t offset, uint64_t bytes, Advice advice) const;

  /// Point-in-time view of the mapping's paging behavior. `resident_bytes`
  /// is measured with mincore at snapshot time — the "how much of this file
  /// does RAM hold right now" gauge the cold-data bench reports; the advise
  /// counters record what prefetch the scan layer requested.
  struct Stats {
    uint64_t mapped_bytes = 0;       ///< size of the mapping
    uint64_t resident_bytes = 0;     ///< bytes resident per mincore
    int64_t sequential_advises = 0;  ///< MADV_SEQUENTIAL calls issued
    int64_t willneed_advises = 0;    ///< MADV_WILLNEED ranges issued
    uint64_t willneed_bytes = 0;     ///< bytes covered by those ranges
    int64_t advise_failures = 0;     ///< madvise calls that errored
  };
  Stats Snapshot() const;

 private:
  MappedFile(std::string path, const uint8_t* data, uint64_t size)
      : path_(std::move(path)), data_(data), size_(size) {}

  std::string path_;
  const uint8_t* data_ = nullptr;
  uint64_t size_ = 0;

  mutable Mutex mutex_;
  mutable int64_t sequential_advises_ GUARDED_BY(mutex_) = 0;
  mutable int64_t willneed_advises_ GUARDED_BY(mutex_) = 0;
  mutable uint64_t willneed_bytes_ GUARDED_BY(mutex_) = 0;
  mutable int64_t advise_failures_ GUARDED_BY(mutex_) = 0;
};

/// A byte range of a MappedFile: the keeper a mapped column storage, null
/// mask or dictionary holds. Copying a segment only bumps the refcount.
struct MappedSegment {
  std::shared_ptr<const MappedFile> file;
  uint64_t offset = 0;
  uint64_t bytes = 0;

  bool valid() const { return file != nullptr; }
  const uint8_t* data() const { return file->data() + offset; }
};

/// Translates a scan's membership shape into prefetch advice for one mapped
/// segment of `element_bytes`-wide values (the madvise half of the seam):
///
///   - full / dense membership touches (nearly) every page in order →
///     MADV_SEQUENTIAL over the whole segment, so the kernel reads ahead
///     aggressively and recycles pages behind the scan;
///   - sparse membership touches isolated rows → the member rows are
///     coalesced into page ranges and issued as batched MADV_WILLNEED, so
///     the faults the scan would take serially are started asynchronously.
///
/// Sparse row lists that would need more than kMaxSparseAdviseRanges madvise
/// calls fall back to one WILLNEED spanning the touched range.
void AdviseForScan(const MappedSegment& segment, const IMembershipSet& members,
                   size_t element_bytes);

/// Upper bound on per-scan madvise calls for sparse memberships.
inline constexpr size_t kMaxSparseAdviseRanges = 512;

}  // namespace hillview

#endif  // HILLVIEW_STORAGE_MMAP_FILE_H_
