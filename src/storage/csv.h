#ifndef HILLVIEW_STORAGE_CSV_H_
#define HILLVIEW_STORAGE_CSV_H_

#include <string>

#include "storage/table.h"
#include "util/status.h"

namespace hillview {

/// CSV loading options.
struct CsvOptions {
  /// If set, parse using this schema; the header must match by position.
  /// If unset, kinds are inferred (int -> double -> string, per column).
  const Schema* schema = nullptr;
  /// Whether the first line is a header. Without a header, columns are named
  /// "col0", "col1", ...
  bool has_header = true;
  char delimiter = ',';
};

/// Reads a CSV file into a single in-memory table. Hillview reads raw data
/// with no ingestion step (§5.4); this is the plain-text repository reader.
/// Handles quoted fields (RFC 4180 quoting, embedded delimiters/quotes).
/// Empty fields become missing values.
Result<TablePtr> ReadCsv(const std::string& path, const CsvOptions& options = {});

/// Parses CSV text from a string (used by tests).
Result<TablePtr> ReadCsvText(const std::string& text,
                             const CsvOptions& options = {});

/// Writes the member rows of a table as CSV with a header line.
Status WriteCsv(const Table& table, const std::string& path);

}  // namespace hillview

#endif  // HILLVIEW_STORAGE_CSV_H_
