#include "storage/jsonl.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>

namespace hillview {

namespace {

/// Minimal JSON scanner for flat objects. Values are captured as tagged
/// strings; full JSON (nesting, arrays) is rejected with a parse error.
struct JsonValue {
  enum class Tag { kNull, kNumber, kString, kBool } tag = Tag::kNull;
  std::string text;  // raw number text or decoded string
  bool boolean = false;
};

class LineParser {
 public:
  explicit LineParser(const std::string& line) : s_(line) {}

  Result<std::map<std::string, JsonValue>> Parse() {
    std::map<std::string, JsonValue> fields;
    SkipSpace();
    if (!Consume('{')) return Error("expected '{'");
    SkipSpace();
    if (Consume('}')) return fields;
    for (;;) {
      SkipSpace();
      std::string key;
      HV_RETURN_IF_ERROR(ParseString(&key));
      SkipSpace();
      if (!Consume(':')) return Error("expected ':'");
      SkipSpace();
      JsonValue value;
      HV_RETURN_IF_ERROR(ParseValue(&value));
      fields[key] = std::move(value);
      SkipSpace();
      if (Consume(',')) continue;
      if (Consume('}')) break;
      return Error("expected ',' or '}'");
    }
    return fields;
  }

 private:
  Status Error(const std::string& what) {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipSpace() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  // Appends the UTF-8 encoding of `code` (any Unicode scalar value).
  static void AppendUtf8(std::string* out, uint32_t code) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  // Reads the four hex digits of a \uXXXX escape; pos_ is already past the
  // 'u'. Fails on truncation or non-hex characters.
  Status ParseHex4(uint32_t* out) {
    if (pos_ + 4 > s_.size()) return Error("bad \\u escape");
    uint32_t code = 0;
    for (int i = 0; i < 4; ++i) {
      char c = s_[pos_ + i];
      code <<= 4;
      if (c >= '0' && c <= '9') code |= c - '0';
      else if (c >= 'a' && c <= 'f') code |= c - 'a' + 10;
      else if (c >= 'A' && c <= 'F') code |= c - 'A' + 10;
      else return Error("bad \\u escape");
    }
    pos_ += 4;
    *out = code;
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Error("expected '\"'");
    out->clear();
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return Status::OK();
      if (c == '\\') {
        if (pos_ >= s_.size()) break;
        char esc = s_[pos_++];
        switch (esc) {
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case '/': out->push_back('/'); break;
          case '\\': out->push_back('\\'); break;
          case '"': out->push_back('"'); break;
          case 'u': {
            uint32_t code = 0;
            HV_RETURN_IF_ERROR(ParseHex4(&code));
            if (code >= 0xD800 && code <= 0xDBFF) {
              // High surrogate: a low surrogate escape must follow to form
              // one non-BMP code point (RFC 8259 §7).
              if (pos_ + 6 > s_.size() || s_[pos_] != '\\' ||
                  s_[pos_ + 1] != 'u') {
                return Error("unpaired high surrogate in \\u escape");
              }
              pos_ += 2;
              uint32_t low = 0;
              HV_RETURN_IF_ERROR(ParseHex4(&low));
              if (low < 0xDC00 || low > 0xDFFF) {
                return Error("invalid low surrogate in \\u escape");
              }
              code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            } else if (code >= 0xDC00 && code <= 0xDFFF) {
              return Error("unpaired low surrogate in \\u escape");
            }
            AppendUtf8(out, code);
            break;
          }
          default:
            return Error("bad escape");
        }
      } else {
        out->push_back(c);
      }
    }
    return Error("unterminated string");
  }

  Status ParseValue(JsonValue* out) {
    if (pos_ >= s_.size()) return Error("unexpected end");
    char c = s_[pos_];
    if (c == '"') {
      out->tag = JsonValue::Tag::kString;
      return ParseString(&out->text);
    }
    if (c == 't' || c == 'f') {
      bool is_true = s_.compare(pos_, 4, "true") == 0;
      bool is_false = s_.compare(pos_, 5, "false") == 0;
      if (!is_true && !is_false) return Error("bad literal");
      out->tag = JsonValue::Tag::kBool;
      out->boolean = is_true;
      pos_ += is_true ? 4 : 5;
      return Status::OK();
    }
    if (c == 'n') {
      if (s_.compare(pos_, 4, "null") != 0) return Error("bad literal");
      out->tag = JsonValue::Tag::kNull;
      pos_ += 4;
      return Status::OK();
    }
    if (c == '{' || c == '[') {
      return Error("nested objects/arrays are not supported");
    }
    // Number.
    size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return Error("bad value");
    out->tag = JsonValue::Tag::kNumber;
    out->text = s_.substr(start, pos_ - start);
    return Status::OK();
  }

  const std::string& s_;
  size_t pos_ = 0;
};

DataKind InferJsonKind(
    const std::vector<std::map<std::string, JsonValue>>& rows,
    const std::string& key) {
  bool all_int = true, any = false;
  for (const auto& row : rows) {
    auto it = row.find(key);
    if (it == row.end() || it->second.tag == JsonValue::Tag::kNull) continue;
    any = true;
    switch (it->second.tag) {
      case JsonValue::Tag::kString:
        return DataKind::kString;
      case JsonValue::Tag::kBool:
        break;  // int-compatible
      case JsonValue::Tag::kNumber: {
        double d = std::atof(it->second.text.c_str());
        if (d != std::floor(d) || std::fabs(d) > INT32_MAX) all_int = false;
        break;
      }
      case JsonValue::Tag::kNull:
        break;
    }
  }
  if (!any) return DataKind::kString;
  return all_int ? DataKind::kInt : DataKind::kDouble;
}

Result<TablePtr> BuildTable(
    const std::vector<std::map<std::string, JsonValue>>& rows,
    const JsonlOptions& options) {
  std::vector<ColumnDescription> descs;
  if (options.schema != nullptr) {
    descs = options.schema->columns();
  } else {
    // Union of keys, in first-seen order across rows.
    std::vector<std::string> keys;
    std::map<std::string, bool> seen;
    for (const auto& row : rows) {
      for (const auto& [key, value] : row) {
        if (!seen[key]) {
          seen[key] = true;
          keys.push_back(key);
        }
      }
    }
    std::sort(keys.begin(), keys.end());
    for (const auto& key : keys) {
      descs.push_back({key, InferJsonKind(rows, key)});
    }
  }
  if (descs.empty()) {
    return Status::InvalidArgument("JSONL input has no fields");
  }

  std::vector<ColumnBuilder> builders;
  for (const auto& d : descs) builders.emplace_back(d.kind);
  for (const auto& row : rows) {
    for (size_t c = 0; c < descs.size(); ++c) {
      auto it = row.find(descs[c].name);
      if (it == row.end() || it->second.tag == JsonValue::Tag::kNull) {
        builders[c].AppendMissing();
        continue;
      }
      const JsonValue& v = it->second;
      switch (descs[c].kind) {
        case DataKind::kInt:
          if (v.tag == JsonValue::Tag::kBool) {
            builders[c].AppendInt(v.boolean ? 1 : 0);
          } else if (v.tag == JsonValue::Tag::kNumber) {
            builders[c].AppendInt(
                static_cast<int32_t>(std::atof(v.text.c_str())));
          } else {
            builders[c].AppendMissing();
          }
          break;
        case DataKind::kDouble:
          if (v.tag == JsonValue::Tag::kNumber) {
            builders[c].AppendDouble(std::atof(v.text.c_str()));
          } else if (v.tag == JsonValue::Tag::kBool) {
            builders[c].AppendDouble(v.boolean ? 1 : 0);
          } else {
            builders[c].AppendMissing();
          }
          break;
        case DataKind::kDate:
          if (v.tag == JsonValue::Tag::kNumber) {
            builders[c].AppendDate(std::atoll(v.text.c_str()));
          } else {
            builders[c].AppendMissing();
          }
          break;
        case DataKind::kString:
        case DataKind::kCategory:
          if (v.tag == JsonValue::Tag::kString) {
            builders[c].AppendString(v.text);
          } else if (v.tag == JsonValue::Tag::kNumber) {
            builders[c].AppendString(v.text);
          } else if (v.tag == JsonValue::Tag::kBool) {
            builders[c].AppendString(v.boolean ? "true" : "false");
          } else {
            builders[c].AppendMissing();
          }
          break;
      }
    }
  }
  std::vector<ColumnPtr> columns;
  for (auto& b : builders) columns.push_back(b.Finish());
  return Table::Create(Schema(std::move(descs)), std::move(columns));
}

Result<TablePtr> ParseStream(std::istream& in, const JsonlOptions& options) {
  std::vector<std::map<std::string, JsonValue>> rows;
  std::string line;
  int line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    LineParser parser(line);
    auto fields = parser.Parse();
    if (!fields.ok()) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_number) + ": " +
          fields.status().message());
    }
    rows.push_back(fields.Take());
  }
  return BuildTable(rows, options);
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

}  // namespace

Result<TablePtr> ReadJsonl(const std::string& path,
                           const JsonlOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  return ParseStream(in, options);
}

Result<TablePtr> ReadJsonlText(const std::string& text,
                               const JsonlOptions& options) {
  std::istringstream in(text);
  return ParseStream(in, options);
}

Status WriteJsonl(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot create '" + path + "'");
  const Schema& schema = table.schema();
  ForEachRow(*table.members(), [&](uint32_t row) {
    out << '{';
    bool first = true;
    for (int c = 0; c < schema.num_columns(); ++c) {
      const IColumn& col = *table.column(c);
      if (col.IsMissing(row)) continue;
      if (!first) out << ',';
      first = false;
      out << '"' << EscapeJson(schema.column(c).name) << "\":";
      if (IsStringKind(col.kind())) {
        out << '"' << EscapeJson(col.GetString(row)) << '"';
      } else {
        out << col.GetString(row);
      }
    }
    out << "}\n";
  });
  out.flush();
  if (!out) return Status::IoError("write failed for '" + path + "'");
  return Status::OK();
}

}  // namespace hillview
