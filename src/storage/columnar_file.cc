#include "storage/columnar_file.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>

#include "util/serialize.h"

namespace hillview {

namespace {

constexpr uint32_t kMagic = 0x46435648;  // "HVCF"
constexpr uint32_t kVersion = 1;

// Serializes one column's payload (compacted to member rows).
void WriteColumnPayload(const Table& table, int col_index, ByteWriter* w) {
  const IColumn& col = *table.column(col_index);
  const IMembershipSet& members = *table.members();
  bool full = members.kind() == IMembershipSet::Kind::kFull;

  switch (col.kind()) {
    case DataKind::kInt: {
      std::vector<int32_t> data;
      std::vector<uint8_t> missing;
      data.reserve(members.size());
      missing.reserve(members.size());
      ForEachRow(members, [&](uint32_t row) {
        data.push_back(col.RawInt()[row]);
        missing.push_back(col.IsMissing(row) ? 1 : 0);
      });
      w->WritePodVector(missing);
      w->WritePodVector(data);
      return;
    }
    case DataKind::kDouble: {
      std::vector<double> data;
      std::vector<uint8_t> missing;
      ForEachRow(members, [&](uint32_t row) {
        data.push_back(col.RawDouble()[row]);
        missing.push_back(col.IsMissing(row) ? 1 : 0);
      });
      w->WritePodVector(missing);
      w->WritePodVector(data);
      return;
    }
    case DataKind::kDate: {
      std::vector<int64_t> data;
      std::vector<uint8_t> missing;
      ForEachRow(members, [&](uint32_t row) {
        data.push_back(col.RawDate()[row]);
        missing.push_back(col.IsMissing(row) ? 1 : 0);
      });
      w->WritePodVector(missing);
      w->WritePodVector(data);
      return;
    }
    case DataKind::kString:
    case DataKind::kCategory: {
      const auto& dict = col.Dictionary();
      w->WriteU32(static_cast<uint32_t>(dict.size()));
      for (const auto& s : dict) w->WriteString(s);
      std::vector<uint32_t> codes;
      codes.reserve(members.size());
      const uint32_t* raw = col.RawCodes();
      ForEachRow(members, [&](uint32_t row) { codes.push_back(raw[row]); });
      w->WritePodVector(codes);
      (void)full;
      return;
    }
  }
}

Result<ColumnPtr> ReadColumnPayload(DataKind kind, ByteReader* r) {
  switch (kind) {
    case DataKind::kInt: {
      std::vector<uint8_t> missing;
      std::vector<int32_t> data;
      HV_RETURN_IF_ERROR(r->ReadPodVector(&missing));
      HV_RETURN_IF_ERROR(r->ReadPodVector(&data));
      NullMask nulls;
      for (uint32_t i = 0; i < missing.size(); ++i) {
        if (missing[i]) nulls.SetMissing(i);
      }
      return ColumnPtr(
          std::make_shared<Int32Column>(std::move(data), std::move(nulls)));
    }
    case DataKind::kDouble: {
      std::vector<uint8_t> missing;
      std::vector<double> data;
      HV_RETURN_IF_ERROR(r->ReadPodVector(&missing));
      HV_RETURN_IF_ERROR(r->ReadPodVector(&data));
      NullMask nulls;
      for (uint32_t i = 0; i < missing.size(); ++i) {
        if (missing[i]) nulls.SetMissing(i);
      }
      return ColumnPtr(
          std::make_shared<DoubleColumn>(std::move(data), std::move(nulls)));
    }
    case DataKind::kDate: {
      std::vector<uint8_t> missing;
      std::vector<int64_t> data;
      HV_RETURN_IF_ERROR(r->ReadPodVector(&missing));
      HV_RETURN_IF_ERROR(r->ReadPodVector(&data));
      NullMask nulls;
      for (uint32_t i = 0; i < missing.size(); ++i) {
        if (missing[i]) nulls.SetMissing(i);
      }
      return ColumnPtr(
          std::make_shared<DateColumn>(std::move(data), std::move(nulls)));
    }
    case DataKind::kString:
    case DataKind::kCategory: {
      uint32_t dict_size = 0;
      // Each dictionary entry carries at least its length prefix; a corrupt
      // count must not drive a giant allocation.
      HV_RETURN_IF_ERROR(r->ReadCount(&dict_size, /*min_element_bytes=*/4));
      std::vector<std::string> dict(dict_size);
      for (auto& s : dict) HV_RETURN_IF_ERROR(r->ReadString(&s));
      std::vector<uint32_t> codes;
      HV_RETURN_IF_ERROR(r->ReadPodVector(&codes));
      return ColumnPtr(std::make_shared<StringColumn>(kind, std::move(codes),
                                                      std::move(dict)));
    }
  }
  return Status::Internal("unknown column kind");
}

// Sleeps long enough that reading `bytes` at `bytes_per_second` takes the
// modeled time.
void Throttle(uint64_t bytes, double bytes_per_second) {
  if (bytes_per_second <= 0) return;
  double seconds = static_cast<double>(bytes) / bytes_per_second;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

struct ColumnEntry {
  std::string name;
  DataKind kind;
  uint64_t payload_size;
  uint64_t payload_offset;
};

struct FileHeader {
  uint32_t num_rows = 0;
  std::vector<ColumnEntry> entries;
};

Result<FileHeader> ReadHeader(std::FILE* f, const std::string& path) {
  auto read_bytes = [&](void* out, size_t n) -> Status {
    if (std::fread(out, 1, n, f) != n) {
      return Status::IoError("short read in '" + path + "'");
    }
    return Status::OK();
  };
  uint32_t magic = 0, version = 0, num_cols = 0;
  FileHeader header;
  HV_RETURN_IF_ERROR(read_bytes(&magic, 4));
  HV_RETURN_IF_ERROR(read_bytes(&version, 4));
  HV_RETURN_IF_ERROR(read_bytes(&num_cols, 4));
  HV_RETURN_IF_ERROR(read_bytes(&header.num_rows, 4));
  if (magic != kMagic) return Status::IoError("'" + path + "' is not HVCF");
  if (version != kVersion) {
    return Status::IoError("unsupported HVCF version in '" + path + "'");
  }
  for (uint32_t c = 0; c < num_cols; ++c) {
    ColumnEntry entry;
    uint32_t name_len = 0;
    HV_RETURN_IF_ERROR(read_bytes(&name_len, 4));
    entry.name.resize(name_len);
    if (name_len > 0) HV_RETURN_IF_ERROR(read_bytes(entry.name.data(), name_len));
    uint8_t kind = 0;
    HV_RETURN_IF_ERROR(read_bytes(&kind, 1));
    entry.kind = static_cast<DataKind>(kind);
    HV_RETURN_IF_ERROR(read_bytes(&entry.payload_size, 8));
    entry.payload_offset = static_cast<uint64_t>(std::ftell(f));
    if (std::fseek(f, static_cast<long>(entry.payload_size), SEEK_CUR) != 0) {
      return Status::IoError("seek failed in '" + path + "'");
    }
    header.entries.push_back(std::move(entry));
  }
  return header;
}

}  // namespace

Status WriteTableFile(const Table& table, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot create '" + path + "'");
  auto write_bytes = [&](const void* data, size_t n) -> Status {
    if (std::fwrite(data, 1, n, f) != n) {
      return Status::IoError("write failed for '" + path + "'");
    }
    return Status::OK();
  };
  auto cleanup_and = [&](Status s) {
    std::fclose(f);
    return s;
  };

  uint32_t num_cols = table.num_columns();
  uint32_t num_rows = table.num_rows();
  Status s;
  if (!(s = write_bytes(&kMagic, 4)).ok()) return cleanup_and(s);
  if (!(s = write_bytes(&kVersion, 4)).ok()) return cleanup_and(s);
  if (!(s = write_bytes(&num_cols, 4)).ok()) return cleanup_and(s);
  if (!(s = write_bytes(&num_rows, 4)).ok()) return cleanup_and(s);

  for (int c = 0; c < table.num_columns(); ++c) {
    const std::string& name = table.schema().column(c).name;
    uint32_t name_len = static_cast<uint32_t>(name.size());
    uint8_t kind = static_cast<uint8_t>(table.schema().column(c).kind);
    ByteWriter payload;
    WriteColumnPayload(table, c, &payload);
    uint64_t payload_size = payload.size();
    if (!(s = write_bytes(&name_len, 4)).ok()) return cleanup_and(s);
    if (!(s = write_bytes(name.data(), name_len)).ok()) return cleanup_and(s);
    if (!(s = write_bytes(&kind, 1)).ok()) return cleanup_and(s);
    if (!(s = write_bytes(&payload_size, 8)).ok()) return cleanup_and(s);
    if (!(s = write_bytes(payload.bytes().data(), payload.size())).ok()) {
      return cleanup_and(s);
    }
  }
  return cleanup_and(Status::OK());
}

Result<TablePtr> ReadTableFile(const std::string& path,
                               const ReadOptions& options) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open '" + path + "'");
  auto header_result = ReadHeader(f, path);
  if (!header_result.ok()) {
    std::fclose(f);
    return header_result.status();
  }
  FileHeader header = header_result.Take();

  auto wanted = [&](const std::string& name) {
    if (options.columns.empty()) return true;
    return std::find(options.columns.begin(), options.columns.end(), name) !=
           options.columns.end();
  };

  std::vector<ColumnDescription> descs;
  std::vector<ColumnPtr> columns;
  for (const auto& entry : header.entries) {
    if (!wanted(entry.name)) continue;
    if (std::fseek(f, static_cast<long>(entry.payload_offset), SEEK_SET) != 0) {
      std::fclose(f);
      return Status::IoError("seek failed in '" + path + "'");
    }
    std::vector<uint8_t> payload(entry.payload_size);
    // Read in chunks so throttling produces a smooth bandwidth model.
    constexpr size_t kChunk = 1 << 22;  // 4 MiB
    size_t off = 0;
    while (off < payload.size()) {
      size_t n = std::min(kChunk, payload.size() - off);
      if (std::fread(payload.data() + off, 1, n, f) != n) {
        std::fclose(f);
        return Status::IoError("short read in '" + path + "'");
      }
      Throttle(n, options.bytes_per_second);
      off += n;
    }
    ByteReader reader(payload.data(), payload.size());
    auto col = ReadColumnPayload(entry.kind, &reader);
    if (!col.ok()) {
      std::fclose(f);
      return col.status();
    }
    descs.push_back({entry.name, entry.kind});
    columns.push_back(col.Take());
  }
  std::fclose(f);
  if (columns.empty()) {
    return Status::NotFound("no requested columns found in '" + path + "'");
  }
  return Table::Create(Schema(std::move(descs)), std::move(columns));
}

Result<uint64_t> TableFileBytes(const std::string& path,
                                const std::vector<std::string>& columns) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open '" + path + "'");
  auto header_result = ReadHeader(f, path);
  std::fclose(f);
  if (!header_result.ok()) return header_result.status();
  uint64_t bytes = 0;
  for (const auto& entry : header_result.value().entries) {
    if (!columns.empty() &&
        std::find(columns.begin(), columns.end(), entry.name) ==
            columns.end()) {
      continue;
    }
    bytes += entry.payload_size;
  }
  return bytes;
}

}  // namespace hillview
