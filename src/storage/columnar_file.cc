#include "storage/columnar_file.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <limits>
#include <thread>

#include "util/serialize.h"

namespace hillview {

namespace {

constexpr uint32_t kMagic = 0x46435648;  // "HVCF"
constexpr uint32_t kVersion = 2;
constexpr uint64_t kAlign = 64;        // segment alignment (cacheline; > any element)
constexpr uint64_t kHeaderBytes = 32;

uint64_t AlignUp(uint64_t v) { return (v + kAlign - 1) & ~(kAlign - 1); }

size_t ElementBytes(DataKind kind) {
  switch (kind) {
    case DataKind::kInt:
      return sizeof(int32_t);
    case DataKind::kDouble:
      return sizeof(double);
    case DataKind::kDate:
      return sizeof(int64_t);
    case DataKind::kString:
    case DataKind::kCategory:
      return sizeof(uint32_t);
  }
  return 0;
}

/// Fixed-size portion of the file header, as laid out on disk.
struct RawHeader {
  uint32_t magic = 0;
  uint32_t version = 0;
  uint32_t num_cols = 0;
  uint32_t num_rows = 0;
  uint64_t dir_offset = 0;
  uint64_t file_bytes = 0;
};
static_assert(sizeof(RawHeader) == kHeaderBytes);

struct ColumnEntry {
  std::string name;
  DataKind kind = DataKind::kInt;
  uint64_t data_offset = 0;
  uint64_t data_bytes = 0;
  uint64_t null_offset = 0;
  uint64_t null_words = 0;  // u64 word count; 0 = no row is missing
  uint64_t null_count = 0;
  uint64_t dict_count = 0;
  uint64_t dict_offsets_offset = 0;
  uint64_t dict_pool_offset = 0;
  uint64_t dict_pool_bytes = 0;
};

struct FileHeader {
  uint32_t num_rows = 0;
  std::vector<ColumnEntry> entries;
};

Status Corrupt(const std::string& path, const std::string& what) {
  return Status::IoError("corrupt HVCF '" + path + "': " + what);
}

Status ValidateEntry(const ColumnEntry& e, uint64_t file_size,
                     uint32_t num_rows, const std::string& path) {
  auto bad = [&](const char* what) {
    return Corrupt(path, std::string(what) + " (column '" + e.name + "')");
  };
  size_t elt = ElementBytes(e.kind);
  if (elt == 0) return bad("unknown column kind");
  auto segment_ok = [&](uint64_t offset, uint64_t bytes) {
    return offset % kAlign == 0 && offset >= kHeaderBytes &&
           offset <= file_size && bytes <= file_size - offset;
  };
  if (e.data_bytes != static_cast<uint64_t>(num_rows) * elt) {
    return bad("data segment size does not match row count");
  }
  if (!segment_ok(e.data_offset, e.data_bytes)) {
    return bad("data segment out of bounds or misaligned");
  }
  if (e.null_words == 0) {
    if (e.null_count != 0) return bad("null count without null words");
  } else {
    if (e.null_words != (static_cast<uint64_t>(num_rows) + 63) / 64) {
      return bad("null segment size does not match row count");
    }
    if (e.null_count > num_rows) return bad("null count exceeds row count");
    if (!segment_ok(e.null_offset, e.null_words * sizeof(uint64_t))) {
      return bad("null segment out of bounds or misaligned");
    }
  }
  if (IsStringKind(e.kind)) {
    // Codes >= dict_count read as missing, so the count must stay below the
    // sentinel; offsets are u32, bounding the pool at 4 GiB.
    if (e.dict_count >= StringColumn::kMissingCode) {
      return bad("dictionary too large");
    }
    if (e.dict_pool_bytes > std::numeric_limits<uint32_t>::max()) {
      return bad("dictionary pool too large");
    }
    if (!segment_ok(e.dict_offsets_offset,
                    (e.dict_count + 1) * sizeof(uint32_t))) {
      return bad("dictionary offsets out of bounds or misaligned");
    }
    if (!segment_ok(e.dict_pool_offset, e.dict_pool_bytes)) {
      return bad("dictionary pool out of bounds or misaligned");
    }
  } else if (e.dict_count != 0 || e.dict_pool_bytes != 0) {
    return bad("numeric column carries dictionary segments");
  }
  return Status::OK();
}

/// Checks offset monotonicity, pool coverage and sort order of a dictionary
/// (shared by the streaming and mapped open paths; for mapped files this is
/// the only part of the open that touches dictionary pages).
Status ValidateDictionary(const uint32_t* offsets, uint64_t count,
                          uint64_t pool_bytes, const char* pool,
                          const std::string& path, const std::string& col) {
  auto bad = [&](const char* what) {
    return Corrupt(path, std::string(what) + " (column '" + col + "')");
  };
  if (offsets[0] != 0) return bad("dictionary offsets do not start at 0");
  for (uint64_t i = 0; i < count; ++i) {
    if (offsets[i + 1] < offsets[i] || offsets[i + 1] > pool_bytes) {
      return bad("dictionary offsets not monotone");
    }
  }
  if (offsets[count] != pool_bytes) {
    return bad("dictionary pool size mismatch");
  }
  for (uint64_t i = 1; i < count; ++i) {
    std::string_view prev(pool + offsets[i - 1], offsets[i] - offsets[i - 1]);
    std::string_view cur(pool + offsets[i], offsets[i + 1] - offsets[i]);
    if (cur < prev) return bad("dictionary not sorted");
  }
  return Status::OK();
}

Status ValidateNullWords(const uint64_t* words, uint64_t num_words,
                         uint64_t null_count, const std::string& path,
                         const std::string& col) {
  uint64_t bits = 0;
  for (uint64_t w = 0; w < num_words; ++w) {
    bits += static_cast<uint64_t>(__builtin_popcountll(words[w]));
  }
  if (bits != null_count) {
    return Corrupt(path, "null-word popcount does not match null count "
                         "(column '" + col + "')");
  }
  return Status::OK();
}

Result<FileHeader> BuildHeader(const RawHeader& raw, const uint8_t* dir_bytes,
                               size_t dir_size, uint64_t file_size,
                               const std::string& path) {
  if (raw.magic != kMagic) {
    return Status::IoError("'" + path + "' is not HVCF");
  }
  if (raw.version != kVersion) {
    return Status::IoError("unsupported HVCF version in '" + path + "'");
  }
  if (raw.file_bytes != file_size) {
    return Corrupt(path, "file size mismatch (truncated?)");
  }
  // Each directory entry is at least name-length + kind + nine u64 fields.
  constexpr size_t kMinEntryBytes = 4 + 1 + 9 * 8;
  if (raw.num_cols > dir_size / kMinEntryBytes) {
    return Corrupt(path, "column count exceeds directory size");
  }
  FileHeader header;
  header.num_rows = raw.num_rows;
  ByteReader r(dir_bytes, dir_size);
  for (uint32_t c = 0; c < raw.num_cols; ++c) {
    ColumnEntry e;
    uint8_t kind = 0;
    if (!r.ReadString(&e.name).ok() || !r.ReadU8(&kind).ok() ||
        !r.ReadU64(&e.data_offset).ok() || !r.ReadU64(&e.data_bytes).ok() ||
        !r.ReadU64(&e.null_offset).ok() || !r.ReadU64(&e.null_words).ok() ||
        !r.ReadU64(&e.null_count).ok() || !r.ReadU64(&e.dict_count).ok() ||
        !r.ReadU64(&e.dict_offsets_offset).ok() ||
        !r.ReadU64(&e.dict_pool_offset).ok() ||
        !r.ReadU64(&e.dict_pool_bytes).ok()) {
      return Corrupt(path, "truncated directory");
    }
    if (kind > static_cast<uint8_t>(DataKind::kCategory)) {
      return Corrupt(path, "unknown column kind");
    }
    e.kind = static_cast<DataKind>(kind);
    HV_RETURN_IF_ERROR(ValidateEntry(e, file_size, header.num_rows, path));
    header.entries.push_back(std::move(e));
  }
  if (!r.AtEnd()) return Corrupt(path, "trailing bytes after directory");
  return header;
}

/// Closes the FILE* on scope exit so error paths can return directly.
struct FileCloser {
  std::FILE* f;
  ~FileCloser() {
    if (f != nullptr) std::fclose(f);
  }
};

Result<uint64_t> FileSize(std::FILE* f, const std::string& path) {
  if (std::fseek(f, 0, SEEK_END) != 0) {
    return Status::IoError("seek failed in '" + path + "'");
  }
  long size = std::ftell(f);
  if (size < 0) return Status::IoError("ftell failed in '" + path + "'");
  return static_cast<uint64_t>(size);
}

/// Reads the fixed header plus the directory — no column data.
Result<FileHeader> ReadFileHeader(std::FILE* f, const std::string& path) {
  HV_ASSIGN_OR_RETURN(uint64_t file_size, FileSize(f, path));
  if (file_size < kHeaderBytes) {
    return Status::IoError("'" + path + "' is not HVCF (too small)");
  }
  RawHeader raw;
  if (std::fseek(f, 0, SEEK_SET) != 0 ||
      std::fread(&raw, 1, sizeof(raw), f) != sizeof(raw)) {
    return Status::IoError("short read in '" + path + "'");
  }
  if (raw.dir_offset < kHeaderBytes || raw.dir_offset > file_size) {
    return Corrupt(path, "directory offset out of bounds");
  }
  std::vector<uint8_t> dir(file_size - raw.dir_offset);
  if (std::fseek(f, static_cast<long>(raw.dir_offset), SEEK_SET) != 0 ||
      (!dir.empty() && std::fread(dir.data(), 1, dir.size(), f) != dir.size())) {
    return Status::IoError("short read in '" + path + "'");
  }
  return BuildHeader(raw, dir.data(), dir.size(), file_size, path);
}

// Sleeps long enough that reading `bytes` at `bytes_per_second` takes the
// modeled time.
void Throttle(uint64_t bytes, double bytes_per_second) {
  if (bytes_per_second <= 0) return;
  double seconds = static_cast<double>(bytes) / bytes_per_second;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

bool WantedColumn(const std::vector<std::string>& wanted,
                  const std::string& name) {
  if (wanted.empty()) return true;
  return std::find(wanted.begin(), wanted.end(), name) != wanted.end();
}

// --- Writer -----------------------------------------------------------------

/// One column's segments, compacted to member rows, ready to write.
struct ColumnSegments {
  std::vector<uint8_t> values;
  std::vector<uint64_t> null_words;
  uint64_t null_count = 0;
  std::vector<uint32_t> dict_offsets;
  std::string dict_pool;
};

template <typename T>
void AppendPod(std::vector<uint8_t>* out, const std::vector<T>& v) {
  if (v.empty()) return;
  const auto* p = reinterpret_cast<const uint8_t*>(v.data());
  out->insert(out->end(), p, p + v.size() * sizeof(T));
}

Result<ColumnSegments> BuildSegments(const Table& table, int col_index) {
  const IColumn& col = *table.column(col_index);
  const IMembershipSet& members = *table.members();
  const uint32_t n = members.size();
  ColumnSegments seg;
  seg.null_words.assign((static_cast<uint64_t>(n) + 63) / 64, 0);
  uint32_t out = 0;
  auto mark_null = [&seg](uint32_t row) {
    seg.null_words[row >> 6] |= 1ULL << (row & 63);
    ++seg.null_count;
  };
  auto compact_numeric = [&](const auto* raw) {
    using T = std::remove_cv_t<std::remove_pointer_t<decltype(raw)>>;
    std::vector<T> values;
    values.reserve(n);
    ForEachRow(members, [&](uint32_t row) {
      values.push_back(raw[row]);
      if (col.IsMissing(row)) mark_null(out);
      ++out;
    });
    AppendPod(&seg.values, values);
  };
  switch (col.kind()) {
    case DataKind::kInt:
      compact_numeric(col.RawInt());
      break;
    case DataKind::kDouble:
      compact_numeric(col.RawDouble());
      break;
    case DataKind::kDate:
      compact_numeric(col.RawDate());
      break;
    case DataKind::kString:
    case DataKind::kCategory: {
      const uint32_t* raw = col.RawCodes();
      const StringDictionary& dict = col.Dictionary();
      const uint32_t limit = dict.size();
      std::vector<uint32_t> codes;
      codes.reserve(n);
      ForEachRow(members, [&](uint32_t row) {
        uint32_t code = raw[row];
        if (code >= limit) {
          // Normalize out-of-range codes to the canonical missing sentinel
          // and mirror them in the null words, so a mapped reopen can serve
          // the mask without scanning the code stream.
          code = StringColumn::kMissingCode;
          mark_null(out);
        }
        codes.push_back(code);
        ++out;
      });
      AppendPod(&seg.values, codes);
      seg.dict_offsets.reserve(limit + 1);
      seg.dict_offsets.push_back(0);
      for (uint32_t i = 0; i < limit; ++i) {
        std::string_view s = dict[i];
        if (seg.dict_pool.size() + s.size() >
            std::numeric_limits<uint32_t>::max()) {
          return Status::IoError(
              "dictionary pool exceeds the 4 GiB HVCF limit");
        }
        seg.dict_pool.append(s.data(), s.size());
        seg.dict_offsets.push_back(
            static_cast<uint32_t>(seg.dict_pool.size()));
      }
      break;
    }
  }
  if (seg.null_count == 0) seg.null_words.clear();
  return seg;
}

Status WriteTableFileImpl(const Table& table, std::FILE* f,
                          const std::string& path) {
  auto write_bytes = [&](const void* data, size_t bytes) -> Status {
    if (bytes == 0) return Status::OK();
    if (std::fwrite(data, 1, bytes, f) != bytes) {
      return Status::IoError("write failed for '" + path + "'");
    }
    return Status::OK();
  };

  RawHeader raw;
  raw.magic = kMagic;
  raw.version = kVersion;
  raw.num_cols = static_cast<uint32_t>(table.num_columns());
  raw.num_rows = table.num_rows();
  // dir_offset / file_bytes are patched in after the segments are written.
  HV_RETURN_IF_ERROR(write_bytes(&raw, sizeof(raw)));
  uint64_t pos = kHeaderBytes;

  static constexpr uint8_t kZeros[kAlign] = {};
  auto write_segment = [&](const void* data, uint64_t bytes,
                           uint64_t* offset_out) -> Status {
    uint64_t aligned = AlignUp(pos);
    HV_RETURN_IF_ERROR(
        write_bytes(kZeros, static_cast<size_t>(aligned - pos)));
    *offset_out = aligned;
    HV_RETURN_IF_ERROR(write_bytes(data, static_cast<size_t>(bytes)));
    pos = aligned + bytes;
    return Status::OK();
  };

  std::vector<ColumnEntry> entries;
  for (int c = 0; c < table.num_columns(); ++c) {
    HV_ASSIGN_OR_RETURN(ColumnSegments seg, BuildSegments(table, c));
    ColumnEntry e;
    e.name = table.schema().column(c).name;
    e.kind = table.schema().column(c).kind;
    e.data_bytes = seg.values.size();
    HV_RETURN_IF_ERROR(
        write_segment(seg.values.data(), e.data_bytes, &e.data_offset));
    if (!seg.null_words.empty()) {
      e.null_words = seg.null_words.size();
      e.null_count = seg.null_count;
      HV_RETURN_IF_ERROR(write_segment(seg.null_words.data(),
                                       e.null_words * sizeof(uint64_t),
                                       &e.null_offset));
    }
    if (IsStringKind(e.kind)) {
      e.dict_count = seg.dict_offsets.size() - 1;
      e.dict_pool_bytes = seg.dict_pool.size();
      HV_RETURN_IF_ERROR(write_segment(
          seg.dict_offsets.data(), seg.dict_offsets.size() * sizeof(uint32_t),
          &e.dict_offsets_offset));
      HV_RETURN_IF_ERROR(write_segment(seg.dict_pool.data(),
                                       e.dict_pool_bytes,
                                       &e.dict_pool_offset));
    }
    entries.push_back(std::move(e));
  }

  raw.dir_offset = pos;
  ByteWriter dir;
  for (const ColumnEntry& e : entries) {
    dir.WriteString(e.name);
    dir.WriteU8(static_cast<uint8_t>(e.kind));
    dir.WriteU64(e.data_offset);
    dir.WriteU64(e.data_bytes);
    dir.WriteU64(e.null_offset);
    dir.WriteU64(e.null_words);
    dir.WriteU64(e.null_count);
    dir.WriteU64(e.dict_count);
    dir.WriteU64(e.dict_offsets_offset);
    dir.WriteU64(e.dict_pool_offset);
    dir.WriteU64(e.dict_pool_bytes);
  }
  HV_RETURN_IF_ERROR(write_bytes(dir.bytes().data(), dir.size()));
  raw.file_bytes = pos + dir.size();
  if (std::fseek(f, 0, SEEK_SET) != 0) {
    return Status::IoError("seek failed in '" + path + "'");
  }
  return write_bytes(&raw, sizeof(raw));
}

}  // namespace

Status WriteTableFile(const Table& table, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot create '" + path + "'");
  FileCloser closer{f};
  return WriteTableFileImpl(table, f, path);
}

Result<TablePtr> ReadTableFile(const std::string& path,
                               const ReadOptions& options) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open '" + path + "'");
  FileCloser closer{f};
  HV_ASSIGN_OR_RETURN(FileHeader header, ReadFileHeader(f, path));
  const uint32_t n = header.num_rows;

  // Reads one segment in chunks so throttling produces a smooth bandwidth
  // model (the cold-storage SSD simulation).
  auto read_segment = [&](uint64_t offset, uint64_t bytes,
                          void* out) -> Status {
    if (std::fseek(f, static_cast<long>(offset), SEEK_SET) != 0) {
      return Status::IoError("seek failed in '" + path + "'");
    }
    constexpr uint64_t kChunk = 1 << 22;  // 4 MiB
    uint64_t off = 0;
    auto* dst = static_cast<uint8_t*>(out);
    while (off < bytes) {
      size_t chunk = static_cast<size_t>(std::min(kChunk, bytes - off));
      if (std::fread(dst + off, 1, chunk, f) != chunk) {
        return Status::IoError("short read in '" + path + "'");
      }
      Throttle(chunk, options.bytes_per_second);
      off += chunk;
    }
    return Status::OK();
  };

  std::vector<ColumnDescription> descs;
  std::vector<ColumnPtr> columns;
  for (const ColumnEntry& e : header.entries) {
    if (!WantedColumn(options.columns, e.name)) continue;

    NullMask nulls;
    if (e.null_words != 0) {
      std::vector<uint64_t> words(e.null_words);
      HV_RETURN_IF_ERROR(read_segment(e.null_offset,
                                      e.null_words * sizeof(uint64_t),
                                      words.data()));
      HV_RETURN_IF_ERROR(ValidateNullWords(words.data(), e.null_words,
                                           e.null_count, path, e.name));
      nulls = NullMask(std::move(words), e.null_count);
    }

    ColumnPtr col;
    switch (e.kind) {
      case DataKind::kInt: {
        std::vector<int32_t> values(n);
        HV_RETURN_IF_ERROR(
            read_segment(e.data_offset, e.data_bytes, values.data()));
        col = std::make_shared<Int32Column>(std::move(values),
                                            std::move(nulls));
        break;
      }
      case DataKind::kDouble: {
        std::vector<double> values(n);
        HV_RETURN_IF_ERROR(
            read_segment(e.data_offset, e.data_bytes, values.data()));
        col = std::make_shared<DoubleColumn>(std::move(values),
                                             std::move(nulls));
        break;
      }
      case DataKind::kDate: {
        std::vector<int64_t> values(n);
        HV_RETURN_IF_ERROR(
            read_segment(e.data_offset, e.data_bytes, values.data()));
        col = std::make_shared<DateColumn>(std::move(values),
                                           std::move(nulls));
        break;
      }
      case DataKind::kString:
      case DataKind::kCategory: {
        std::vector<uint32_t> codes(n);
        HV_RETURN_IF_ERROR(
            read_segment(e.data_offset, e.data_bytes, codes.data()));
        std::vector<uint32_t> offsets(e.dict_count + 1);
        HV_RETURN_IF_ERROR(read_segment(e.dict_offsets_offset,
                                        offsets.size() * sizeof(uint32_t),
                                        offsets.data()));
        std::string pool(e.dict_pool_bytes, '\0');
        HV_RETURN_IF_ERROR(
            read_segment(e.dict_pool_offset, e.dict_pool_bytes, pool.data()));
        HV_RETURN_IF_ERROR(ValidateDictionary(offsets.data(), e.dict_count,
                                              e.dict_pool_bytes, pool.data(),
                                              path, e.name));
        std::vector<std::string> dict;
        dict.reserve(e.dict_count);
        for (uint64_t i = 0; i < e.dict_count; ++i) {
          dict.emplace_back(pool.data() + offsets[i],
                            offsets[i + 1] - offsets[i]);
        }
        col = std::make_shared<StringColumn>(
            e.kind, ColumnStorage<uint32_t>(std::move(codes)),
            StringDictionary(std::move(dict)), std::move(nulls));
        break;
      }
    }
    descs.push_back({e.name, e.kind});
    columns.push_back(std::move(col));
  }
  if (columns.empty()) {
    return Status::NotFound("no requested columns found in '" + path + "'");
  }
  return Table::Create(Schema(std::move(descs)), std::move(columns));
}

Result<MappedTable> MapTableFile(const std::string& path,
                                 const MapOptions& options) {
  HV_ASSIGN_OR_RETURN(std::shared_ptr<MappedFile> file,
                      MappedFile::Open(path));
  const uint8_t* base = file->data();
  const uint64_t size = file->size();
  if (size < kHeaderBytes) {
    return Status::IoError("'" + path + "' is not HVCF (too small)");
  }
  RawHeader raw;
  std::memcpy(&raw, base, sizeof(raw));
  if (raw.dir_offset < kHeaderBytes || raw.dir_offset > size) {
    return Corrupt(path, "directory offset out of bounds");
  }
  HV_ASSIGN_OR_RETURN(
      FileHeader header,
      BuildHeader(raw, base + raw.dir_offset,
                  static_cast<size_t>(size - raw.dir_offset), size, path));
  const uint32_t n = header.num_rows;
  std::shared_ptr<const MappedFile> mapping = file;

  std::vector<ColumnDescription> descs;
  std::vector<ColumnPtr> columns;
  for (const ColumnEntry& e : header.entries) {
    if (!WantedColumn(options.columns, e.name)) continue;

    NullMask nulls;
    if (e.null_words != 0) {
      const auto* words =
          reinterpret_cast<const uint64_t*>(base + e.null_offset);
      HV_RETURN_IF_ERROR(
          ValidateNullWords(words, e.null_words, e.null_count, path, e.name));
      nulls = NullMask(words, static_cast<size_t>(e.null_words), e.null_count,
                       mapping);
    }
    MappedSegment data_seg{mapping, e.data_offset, e.data_bytes};

    ColumnPtr col;
    switch (e.kind) {
      case DataKind::kInt:
        col = std::make_shared<Int32Column>(
            ColumnStorage<int32_t>(
                reinterpret_cast<const int32_t*>(base + e.data_offset), n,
                std::move(data_seg)),
            std::move(nulls));
        break;
      case DataKind::kDouble:
        col = std::make_shared<DoubleColumn>(
            ColumnStorage<double>(
                reinterpret_cast<const double*>(base + e.data_offset), n,
                std::move(data_seg)),
            std::move(nulls));
        break;
      case DataKind::kDate:
        col = std::make_shared<DateColumn>(
            ColumnStorage<int64_t>(
                reinterpret_cast<const int64_t*>(base + e.data_offset), n,
                std::move(data_seg)),
            std::move(nulls));
        break;
      case DataKind::kString:
      case DataKind::kCategory: {
        const auto* offsets =
            reinterpret_cast<const uint32_t*>(base + e.dict_offsets_offset);
        const auto* pool =
            reinterpret_cast<const char*>(base + e.dict_pool_offset);
        HV_RETURN_IF_ERROR(ValidateDictionary(offsets, e.dict_count,
                                              e.dict_pool_bytes, pool, path,
                                              e.name));
        MappedSegment dict_seg{
            mapping, e.dict_offsets_offset,
            e.dict_pool_offset + e.dict_pool_bytes - e.dict_offsets_offset};
        col = std::make_shared<StringColumn>(
            e.kind,
            ColumnStorage<uint32_t>(
                reinterpret_cast<const uint32_t*>(base + e.data_offset), n,
                std::move(data_seg)),
            StringDictionary(pool, offsets,
                             static_cast<uint32_t>(e.dict_count),
                             std::move(dict_seg)),
            std::move(nulls));
        break;
      }
    }
    descs.push_back({e.name, e.kind});
    columns.push_back(std::move(col));
  }
  if (columns.empty()) {
    return Status::NotFound("no requested columns found in '" + path + "'");
  }
  HV_ASSIGN_OR_RETURN(
      TablePtr table,
      Result<TablePtr>(Table::Create(Schema(std::move(descs)),
                                     std::move(columns))));
  return MappedTable{std::move(table), std::move(mapping)};
}

Result<TablePtr> OpenTableFile(const std::string& path, StorageBackend backend,
                               const ReadOptions& options) {
  if (backend == StorageBackend::kHeap) return ReadTableFile(path, options);
  MapOptions map_options;
  map_options.columns = options.columns;
  HV_ASSIGN_OR_RETURN(MappedTable mapped, MapTableFile(path, map_options));
  // The column views keep the mapping alive; the handle is only needed by
  // callers who want residency stats.
  return mapped.table;
}

Result<uint64_t> TableFileBytes(const std::string& path,
                                const std::vector<std::string>& columns) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open '" + path + "'");
  FileCloser closer{f};
  HV_ASSIGN_OR_RETURN(FileHeader header, ReadFileHeader(f, path));
  uint64_t bytes = 0;
  for (const ColumnEntry& e : header.entries) {
    if (!WantedColumn(columns, e.name)) continue;
    bytes += e.data_bytes + e.null_words * sizeof(uint64_t) +
             (IsStringKind(e.kind)
                  ? (e.dict_count + 1) * sizeof(uint32_t) + e.dict_pool_bytes
                  : 0);
  }
  return bytes;
}

}  // namespace hillview
