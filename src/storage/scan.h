#ifndef HILLVIEW_STORAGE_SCAN_H_
#define HILLVIEW_STORAGE_SCAN_H_

#include <cmath>
#include <cstdint>
#include <limits>
#include <type_traits>
#include <vector>

#include "storage/bit_gather.h"
#include "storage/column.h"
#include "storage/membership.h"
#include "storage/simd_dispatch.h"
#include "util/random.h"

namespace hillview {

/// Unified vectorized scan layer: the single entry point every vizketch
/// summarize loop uses to walk a column (§6: scans over plain columnar
/// arrays at hardware speed).
///
/// `ScanColumn` dispatches ONCE per scan on the full cross product
///
///   physical layout  (int32 | double | int64 | dictionary codes | generic)
/// × membership kind  (full | dense bitmap | sparse row list)
/// × null mask        (absent | present)
/// × sampling rate    (streaming | geometric-skip sampling)
///
/// and then runs a tight template loop with no virtual calls. The visitor is
/// a small struct the compiler inlines:
///
///   struct V {
///     void OnValue(uint32_t row, T v);   // T is the column's native type
///     void OnMissing(uint32_t row);
///   };
///
/// Native types are int32_t / double / int64_t for numeric layouts and
/// uint32_t (the dictionary code) for string layouts; a templated OnValue
/// serves them all. Missing-value policy is defined centrally here:
///
///   - a set bit in the column's null mask is missing,
///   - NaN in a double column is missing (never forwarded to OnValue, which
///     is what makes unchecked bucket arithmetic downstream safe),
///   - StringColumn::kMissingCode is missing.
///
/// Dense-bitmap iteration is word-at-a-time: each 64-row membership word is
/// AND-ed with the corresponding null-mask word, so the null check costs one
/// instruction per 64 rows instead of one per row. Fully-set words run as
/// linear blocks; partially-set words (strided filters) are compressed into
/// dense index batches first (storage/bit_gather.h: pext where BMI2 is
/// targeted, a byte-position table otherwise), so the value loop carries no
/// serial ctz dependency. Sampling generalizes the batch-prefetch trick
/// (§7.2.1): sampled positions are generated in batches of 32 and prefetched
/// before the values are touched, overlapping the DRAM misses that dominate
/// low-rate scans.

namespace scan_internal {

/// Forwards one present row to the visitor, applying the central NaN policy
/// for floating-point layouts.
template <typename T, typename Visitor>
inline void Emit(Visitor& vis, uint32_t row, T value) {
  if constexpr (std::is_floating_point_v<T>) {
    if (std::isnan(value)) {
      vis.OnMissing(row);
      return;
    }
  }
  vis.OnValue(row, value);
}

/// Null-mask word `w`, or 0 when the mask does not extend that far.
inline uint64_t NullWord(const NullMask& nulls, size_t w) {
  return w < nulls.num_words() ? nulls.word_data()[w] : 0;
}

/// Visitors may additionally expose
///
///   void OnBlock(uint32_t base, const T* values, uint32_t n);
///
/// for the layouts they care about. The streaming loops hand such visitors
/// whole runs of rows whose null-mask words are empty — `values` points at
/// the column array for rows [base, base + n) — instead of one OnValue per
/// row, which is what lets a visitor tally through the runtime-dispatched
/// SIMD kernels (simd_dispatch.h). The NaN-is-missing policy moves INTO the
/// block handler for double layouts: blocks are only pre-filtered against
/// the null mask, so OnBlock must treat NaN exactly as OnMissing would.
/// Overload only for the exact pointer types handled (e.g. const double*):
/// layouts without a matching overload keep the per-row path.
template <typename Visitor, typename T>
concept HasOnBlock = requires(Visitor& v, const T* values) {
  v.OnBlock(uint32_t{0}, values, uint32_t{0});
};

// --- Streaming loops: one instantiation per membership representation. ---

template <typename T, typename Visitor>
void ScanFull(const T* data, uint32_t n, const NullMask& nulls, Visitor& vis) {
  if (nulls.empty()) {
    if constexpr (HasOnBlock<Visitor, T>) {
      vis.OnBlock(0, data, n);
    } else {
      for (uint32_t r = 0; r < n; ++r) Emit(vis, r, data[r]);
    }
    return;
  }
  // Word-at-a-time: load each 64-row null word once; all-present blocks run
  // a branchless inner loop.
  uint32_t full_words = n >> 6;
  for (uint32_t w = 0; w < full_words; ++w) {
    uint64_t null_word = NullWord(nulls, w);
    uint32_t base = w << 6;
    if (null_word == 0) {
      if constexpr (HasOnBlock<Visitor, T>) {
        // Coalesce the run of all-present words into one block call.
        uint32_t end = w + 1;
        while (end < full_words && NullWord(nulls, end) == 0) ++end;
        vis.OnBlock(base, data + base, (end - w) << 6);
        w = end - 1;
      } else {
        for (uint32_t i = 0; i < 64; ++i) Emit(vis, base + i, data[base + i]);
      }
      continue;
    }
    uint64_t missing = null_word;
    while (missing != 0) {
      int bit = __builtin_ctzll(missing);
      vis.OnMissing(base + bit);
      missing &= missing - 1;
    }
    uint64_t present = ~null_word;
    while (present != 0) {
      int bit = __builtin_ctzll(present);
      Emit(vis, base + bit, data[base + bit]);
      present &= present - 1;
    }
  }
  for (uint32_t r = full_words << 6; r < n; ++r) {
    if (nulls.IsMissing(r)) {
      vis.OnMissing(r);
    } else {
      Emit(vis, r, data[r]);
    }
  }
}

template <typename T, typename Visitor>
void ScanDense(const T* data, const std::vector<uint64_t>& member_words,
               const NullMask& nulls, Visitor& vis) {
  const bool check_nulls = !nulls.empty();
  for (size_t w = 0; w < member_words.size(); ++w) {
    uint64_t members = member_words[w];
    if (members == 0) continue;
    uint32_t base = static_cast<uint32_t>(w << 6);
    // One AND per 64 rows splits the word into missing and present lanes.
    uint64_t null_word = check_nulls ? NullWord(nulls, w) : 0;
    if (members == ~0ULL && null_word == 0) {
      // Fully-set word (common for run-structured filters like range
      // zoom-ins): linear block, no bit juggling.
      if constexpr (HasOnBlock<Visitor, T>) {
        // Coalesce the run of fully-present words into one block call.
        size_t end = w + 1;
        while (end < member_words.size() && member_words[end] == ~0ULL &&
               (!check_nulls || NullWord(nulls, end) == 0)) {
          ++end;
        }
        vis.OnBlock(base, data + base,
                    static_cast<uint32_t>((end - w) << 6));
        w = end - 1;
      } else {
        for (uint32_t i = 0; i < 64; ++i) Emit(vis, base + i, data[base + i]);
      }
      continue;
    }
    uint64_t missing = members & null_word;
    uint64_t present = members & ~null_word;
    while (missing != 0) {
      int bit = __builtin_ctzll(missing);
      vis.OnMissing(base + bit);
      missing &= missing - 1;
    }
    // Partially-set word (strided filters): the gather expansion keeps the
    // value loop free of the serial ctz dependency.
    ForEachSetBit(present, base,
                  [&](uint32_t row) { Emit(vis, row, data[row]); });
  }
}

template <typename T, typename Visitor>
void ScanSparse(const T* data, const std::vector<uint32_t>& rows,
                const NullMask& nulls, Visitor& vis) {
  // Sparse member rows are far apart, so each value load is a likely cache
  // miss; prefetching a fixed distance ahead overlaps them.
  constexpr size_t kAhead = 16;
  const size_t n = rows.size();
  if (nulls.empty()) {
    for (size_t i = 0; i < n; ++i) {
      if (i + kAhead < n) __builtin_prefetch(data + rows[i + kAhead]);
      Emit(vis, rows[i], data[rows[i]]);
    }
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    if (i + kAhead < n) __builtin_prefetch(data + rows[i + kAhead]);
    uint32_t r = rows[i];
    if (nulls.IsMissing(r)) {
      vis.OnMissing(r);
    } else {
      Emit(vis, r, data[r]);
    }
  }
}

// --- Sampled loops: geometric skips with batched prefetch. ---

/// Drains a batch of sampled row positions through the visitor.
template <typename T, typename Visitor>
inline void DrainBatch(const T* data, const uint32_t* pending, int filled,
                       const NullMask& nulls, bool check_nulls, Visitor& vis) {
  for (int i = 0; i < filled; ++i) {
    uint32_t row = pending[i];
    if (check_nulls && nulls.IsMissing(row)) {
      vis.OnMissing(row);
      continue;
    }
    Emit(vis, row, data[row]);
  }
}

inline constexpr int kSampleBatch = 32;

template <typename T, typename Visitor>
void ScanSampledFull(const T* data, uint32_t n, const NullMask& nulls,
                     double rate, uint64_t seed, Visitor& vis) {
  Random rng(seed);
  GeometricSkipper skipper(&rng, rate);
  const bool check_nulls = !nulls.empty();
  uint32_t pending[kSampleBatch];
  uint64_t r = skipper.Next();
  while (r < n) {
    int filled = 0;
    while (filled < kSampleBatch && r < n) {
      pending[filled++] = static_cast<uint32_t>(r);
      __builtin_prefetch(data + r);
      r += 1 + skipper.Next();
    }
    DrainBatch(data, pending, filled, nulls, check_nulls, vis);
  }
}

template <typename T, typename Visitor>
void ScanSampledDense(const T* data, const std::vector<uint64_t>& member_words,
                      uint32_t universe, const NullMask& nulls, double rate,
                      uint64_t seed, Visitor& vis) {
  Random rng(seed);
  GeometricSkipper skipper(&rng, rate);
  const bool check_nulls = !nulls.empty();
  uint32_t pending[kSampleBatch];
  // Walk the universe with geometric skips and keep the rows that are
  // members, so members are sampled at exactly `rate` (§5.6).
  uint64_t r = skipper.Next();
  while (r < universe) {
    int filled = 0;
    while (filled < kSampleBatch && r < universe) {
      size_t w = r >> 6;
      // Like DenseMembership::Contains, tolerate word vectors shorter than
      // the universe (trailing non-member rows).
      if (w < member_words.size() && ((member_words[w] >> (r & 63)) & 1)) {
        pending[filled++] = static_cast<uint32_t>(r);
        __builtin_prefetch(data + r);
      }
      r += 1 + skipper.Next();
    }
    DrainBatch(data, pending, filled, nulls, check_nulls, vis);
  }
}

template <typename T, typename Visitor>
void ScanSampledSparse(const T* data, const std::vector<uint32_t>& rows,
                       const NullMask& nulls, double rate, uint64_t seed,
                       Visitor& vis) {
  Random rng(seed);
  GeometricSkipper skipper(&rng, rate);
  const bool check_nulls = !nulls.empty();
  const uint64_t n = rows.size();
  uint32_t pending[kSampleBatch];
  uint64_t i = skipper.Next();
  while (i < n) {
    int filled = 0;
    while (filled < kSampleBatch && i < n) {
      uint32_t row = rows[i];
      pending[filled++] = row;
      __builtin_prefetch(data + row);
      i += 1 + skipper.Next();
    }
    DrainBatch(data, pending, filled, nulls, check_nulls, vis);
  }
}

/// Membership × nulls × sampling dispatch for one physical layout. This is
/// the "dispatch once" point: everything below it is a tight template loop.
template <typename T, typename Visitor>
void ScanTyped(const T* data, const IMembershipSet& members,
               const NullMask& nulls, double rate, uint64_t seed,
               Visitor& vis) {
  if (rate < 1.0) {
    if (rate <= 0.0) return;
    switch (members.kind()) {
      case IMembershipSet::Kind::kFull:
        ScanSampledFull(data, members.size(), nulls, rate, seed, vis);
        return;
      case IMembershipSet::Kind::kDense:
        ScanSampledDense(data, members.bitmap_words(),
                         members.universe_size(), nulls, rate, seed, vis);
        return;
      case IMembershipSet::Kind::kSparse:
        ScanSampledSparse(data, members.sparse_rows(), nulls, rate, seed,
                          vis);
        return;
    }
    return;
  }
  switch (members.kind()) {
    case IMembershipSet::Kind::kFull:
      ScanFull(data, members.size(), nulls, vis);
      return;
    case IMembershipSet::Kind::kDense:
      ScanDense(data, members.bitmap_words(), nulls, vis);
      return;
    case IMembershipSet::Kind::kSparse:
      ScanSparse(data, members.sparse_rows(), nulls, vis);
      return;
  }
}

/// Visitor adapter for dictionary-code layouts: missing is encoded in the
/// code stream itself, not the null mask, so codes scan as a no-null layout
/// and missing is peeled off here. Any code at or beyond the dictionary is
/// missing (kMissingCode is the canonical case; the same compare also makes
/// corrupt codes from a damaged mapped file degrade to missing instead of
/// out-of-bounds dictionary reads downstream).
template <typename Visitor>
struct CodeFilter {
  Visitor& vis;
  uint32_t dict_limit;
  void OnValue(uint32_t row, uint32_t code) {
    if (code >= dict_limit) {
      vis.OnMissing(row);
    } else {
      vis.OnValue(row, code);
    }
  }
  void OnMissing(uint32_t row) { vis.OnMissing(row); }
};

}  // namespace scan_internal

/// Calls `fn(row)` for each member row, sampled at `rate` (>= 1.0 streams
/// every row). The membership × sampling dispatch happens once. Multi-column
/// sketches use this together with RawCursor; single-column sketches should
/// prefer ScanColumn, which also devirtualizes the value loads.
template <typename Fn>
void ScanRows(const IMembershipSet& members, double rate, uint64_t seed,
              Fn&& fn) {
  if (rate >= 1.0) {
    ForEachRow(members, fn);
  } else {
    SampleRows(members, rate, seed, fn);
  }
}

/// Scans `col` over `members` at `rate`, delivering native typed values (and
/// the central missing policy) to `vis`. Dispatches once on layout ×
/// membership × nulls × sampling; the selected loop has no virtual calls.
template <typename Visitor>
void ScanColumn(const IColumn& col, const IMembershipSet& members, double rate,
                uint64_t seed, Visitor&& vis) {
  using scan_internal::ScanTyped;
  static const NullMask kNoNulls;
  // Storage-backend hook: mmap-backed columns turn the membership shape into
  // madvise prefetch before the loop starts faulting pages in.
  col.PrepareScan(members);
  if (const double* raw = col.RawDouble()) {
    ScanTyped(raw, members, col.null_mask(), rate, seed, vis);
    return;
  }
  if (const int32_t* raw = col.RawInt()) {
    ScanTyped(raw, members, col.null_mask(), rate, seed, vis);
    return;
  }
  if (const int64_t* raw = col.RawDate()) {
    ScanTyped(raw, members, col.null_mask(), rate, seed, vis);
    return;
  }
  if (const uint32_t* raw = col.RawCodes()) {
    scan_internal::CodeFilter<std::remove_reference_t<Visitor>> filter{
        vis, col.Dictionary().size()};
    ScanTyped(raw, members, kNoNulls, rate, seed, filter);
    return;
  }
  // Generic fallback for layouts without a raw array (none in-tree today):
  // per-row virtual accessors, same missing policy.
  ScanRows(members, rate, seed, [&](uint32_t row) {
    if (col.IsMissing(row)) {
      vis.OnMissing(row);
      return;
    }
    double v = col.GetDouble(row);
    if (std::isnan(v)) {
      vis.OnMissing(row);
      return;
    }
    vis.OnValue(row, v);
  });
}

namespace scan_internal {

// --- Typed predicate-to-bitmap loops (the filter fast path). ---------------
//
// Each loop evaluates the predicate over raw values and assembles one 64-bit
// membership word per 64-row block in a register: branchless on the
// predicate outcome (the inner block loop vectorizes), with the null mask
// applied word-at-a-time. Missing rows never match — NaN and kMissingCode
// are folded into the null mask at column construction, so `bits & ~nulls`
// is the complete missing policy here.

template <typename T, typename Pred>
inline uint64_t PredicateWord(const T* block, Pred& pred) {
  uint64_t bits = 0;
  for (uint32_t i = 0; i < 64; ++i) {
    bits |= static_cast<uint64_t>(pred(block[i]) ? 1 : 0) << i;
  }
  return bits;
}

/// The zoom-in range predicate [lo, hi] over a column's numeric view. For
/// integer layouts the double bounds are converted ONCE to the closed
/// integer range [ceil(lo), floor(hi)] (saturated at the int64 domain), so
/// both the per-row calls and the word kernels compare in integer space —
/// exact even beyond 2^53, where the old cast-to-double compare misrounded
/// int64 dates. The invariant `ilo > ihi` encodes an empty intersection
/// (including NaN bounds), which the kernels answer with an all-zero word.
struct RangePredicate {
  double lo;
  double hi;
  int64_t ilo;
  int64_t ihi;
  const ScanKernels* kernels;

  RangePredicate(double lo_in, double hi_in)
      : lo(lo_in), hi(hi_in), kernels(&GetScanKernels()) {
    constexpr double kTwo63 = 9223372036854775808.0;  // 2^63, exact
    const double cl = std::ceil(lo_in);
    const double fh = std::floor(hi_in);
    if (!(cl <= fh) || cl >= kTwo63 || fh < -kTwo63) {
      ilo = 1;
      ihi = 0;
      return;
    }
    ilo = cl <= -kTwo63 ? std::numeric_limits<int64_t>::min()
                        : static_cast<int64_t>(cl);
    ihi = fh >= kTwo63 ? std::numeric_limits<int64_t>::max()
                       : static_cast<int64_t>(fh);
  }

  bool operator()(double v) const { return v >= lo && v <= hi; }
  bool operator()(int32_t v) const { return v >= ilo && v <= ihi; }
  bool operator()(int64_t v) const { return v >= ilo && v <= ihi; }
  bool operator()(uint32_t v) const {
    return static_cast<int64_t>(v) >= ilo && static_cast<int64_t>(v) <= ihi;
  }
};

/// Dictionary-code equality; non-code layouts never match.
struct EqualsCodePredicate {
  uint32_t code;
  const ScanKernels* kernels;

  explicit EqualsCodePredicate(uint32_t c)
      : code(c), kernels(&GetScanKernels()) {}

  bool operator()(uint32_t v) const { return v == code; }
  bool operator()(double) const { return false; }
  bool operator()(int32_t) const { return false; }
  bool operator()(int64_t) const { return false; }
};

// Word-at-a-time overloads routing the known predicates through the
// runtime-dispatched kernels. They take the predicate by NON-const reference
// so they are exact matches that beat the generic template above (a const
// overload would lose the reference-binding tiebreaker).

inline uint64_t PredicateWord(const double* block, RangePredicate& pred) {
  return pred.kernels->range_word_f64(block, pred.lo, pred.hi);
}

inline uint64_t PredicateWord(const int32_t* block, RangePredicate& pred) {
  return pred.kernels->range_word_i32(block, pred.ilo, pred.ihi);
}

inline uint64_t PredicateWord(const int64_t* block, RangePredicate& pred) {
  return pred.kernels->range_word_i64(block, pred.ilo, pred.ihi);
}

inline uint64_t PredicateWord(const uint32_t* block, RangePredicate& pred) {
  constexpr int64_t kU32Max = std::numeric_limits<uint32_t>::max();
  if (pred.ilo > pred.ihi || pred.ihi < 0 || pred.ilo > kU32Max) return 0;
  const uint32_t l =
      pred.ilo < 0 ? 0u : static_cast<uint32_t>(pred.ilo);
  const uint32_t h = pred.ihi > kU32Max
                         ? std::numeric_limits<uint32_t>::max()
                         : static_cast<uint32_t>(pred.ihi);
  return pred.kernels->range_word_u32(block, l, h);
}

inline uint64_t PredicateWord(const uint32_t* block,
                              EqualsCodePredicate& pred) {
  return pred.kernels->range_word_u32(block, pred.code, pred.code);
}

template <typename T, typename Pred>
void FilterFullTyped(const T* data, uint32_t n, const NullMask& nulls,
                     Pred& pred, std::vector<uint64_t>& words) {
  const bool check_nulls = !nulls.empty();
  const uint32_t full_words = n >> 6;
  for (uint32_t w = 0; w < full_words; ++w) {
    uint64_t bits = PredicateWord(data + (static_cast<size_t>(w) << 6), pred);
    if (check_nulls) bits &= ~NullWord(nulls, w);
    words[w] = bits;
  }
  for (uint32_t r = full_words << 6; r < n; ++r) {
    if (!nulls.IsMissing(r) && pred(data[r])) {
      words[r >> 6] |= 1ULL << (r & 63);
    }
  }
}

template <typename T, typename Pred>
void FilterDenseTyped(const T* data, const std::vector<uint64_t>& member_words,
                      uint32_t universe, const NullMask& nulls, Pred& pred,
                      std::vector<uint64_t>& words) {
  const bool check_nulls = !nulls.empty();
  for (size_t w = 0; w < member_words.size(); ++w) {
    uint64_t members = member_words[w];
    if (members == 0) continue;
    uint32_t base = static_cast<uint32_t>(w << 6);
    if (members == ~0ULL && base + 64 <= universe) {
      // Fully-set word (run-structured zoom-in filters): same branchless
      // block as the full scan.
      uint64_t bits = PredicateWord(data + base, pred);
      if (check_nulls) bits &= ~NullWord(nulls, w);
      words[w] = bits;
      continue;
    }
    uint64_t present =
        check_nulls ? members & ~NullWord(nulls, w) : members;
    uint64_t bits = 0;
    // Partially-set word: the gather expansion evaluates the predicate over
    // the member positions without a serial ctz chain.
    ForEachSetBit(present, 0, [&](uint32_t bit) {
      bits |= static_cast<uint64_t>(pred(data[base + bit]) ? 1 : 0) << bit;
    });
    words[w] = bits;
  }
}

template <typename T, typename Pred>
void FilterSparseTyped(const T* data, const std::vector<uint32_t>& rows,
                       const NullMask& nulls, Pred& pred,
                       std::vector<uint64_t>& words) {
  const bool check_nulls = !nulls.empty();
  for (uint32_t r : rows) {
    if (check_nulls && nulls.IsMissing(r)) continue;
    if (pred(data[r])) words[r >> 6] |= 1ULL << (r & 63);
  }
}

template <typename T, typename Pred>
void FilterTyped(const T* data, const IMembershipSet& base,
                 const NullMask& nulls, Pred& pred,
                 std::vector<uint64_t>& words) {
  switch (base.kind()) {
    case IMembershipSet::Kind::kFull:
      FilterFullTyped(data, base.size(), nulls, pred, words);
      return;
    case IMembershipSet::Kind::kDense:
      FilterDenseTyped(data, base.bitmap_words(), base.universe_size(), nulls,
                       pred, words);
      return;
    case IMembershipSet::Kind::kSparse:
      FilterSparseTyped(data, base.sparse_rows(), nulls, pred, words);
      return;
  }
}

}  // namespace scan_internal

/// Builds the membership set of `base` rows where `col` is present and
/// `pred(native value)` holds: the typed filter path behind the
/// spreadsheet's zoom-in / equality / regex gestures (§5.6). One dispatch on
/// layout × membership selects a loop that assembles membership words 64
/// rows at a time (branchless predicate, null mask ANDed per word) — no
/// per-row std::function or virtual accessor calls — and the result picks
/// the dense or sparse representation by the same density cutoff as
/// FilterMembership.
///
/// `pred` must be callable with every native value type (int32_t, double,
/// int64_t, uint32_t dictionary code); use a generic lambda, with
/// `if constexpr` dispatch when only one layout is meaningful. It may be
/// *evaluated* on missing cells (NaN, kMissingCode) inside a 64-row block —
/// the result for those rows is discarded via the null-mask AND — so it must
/// be a pure function that tolerates any representable input.
template <typename Pred>
MembershipPtr FilterColumnMembership(const IColumn& col,
                                     const IMembershipSet& base, Pred&& pred) {
  const uint32_t universe = base.universe_size();
  col.PrepareScan(base);
  std::vector<uint64_t> words((universe + 63) / 64, 0);
  if (const double* raw = col.RawDouble()) {
    scan_internal::FilterTyped(raw, base, col.null_mask(), pred, words);
  } else if (const int32_t* raw32 = col.RawInt()) {
    scan_internal::FilterTyped(raw32, base, col.null_mask(), pred, words);
  } else if (const int64_t* raw64 = col.RawDate()) {
    scan_internal::FilterTyped(raw64, base, col.null_mask(), pred, words);
  } else if (const uint32_t* codes = col.RawCodes()) {
    scan_internal::FilterTyped(codes, base, col.null_mask(), pred, words);
  } else {
    // Generic fallback for layouts without a raw array: per-row virtual
    // accessors, same missing policy.
    ScanRows(base, /*rate=*/1.0, /*seed=*/0, [&](uint32_t row) {
      if (col.IsMissing(row)) return;
      double v = col.GetDouble(row);
      if (std::isnan(v)) return;
      if (pred(v)) words[row >> 6] |= 1ULL << (row & 63);
    });
  }
  uint64_t hits = 0;
  for (uint64_t w : words) hits += static_cast<uint64_t>(__builtin_popcountll(w));
  double density =
      universe == 0 ? 0.0 : static_cast<double>(hits) / universe;
  if (density < kSparseDensityCutoff) {
    std::vector<uint32_t> rows;
    rows.reserve(hits);
    for (size_t w = 0; w < words.size(); ++w) {
      uint64_t bits = words[w];
      while (bits != 0) {
        int bit = __builtin_ctzll(bits);
        rows.push_back(static_cast<uint32_t>((w << 6) + bit));
        bits &= bits - 1;
      }
    }
    return std::make_shared<SparseMembership>(std::move(rows), universe);
  }
  return std::make_shared<DenseMembership>(std::move(words), universe);
}

/// Rows whose numeric view (GetDouble semantics: native value, or the
/// dictionary code for string layouts) lies in [lo, hi]. Full 64-row blocks
/// evaluate through the runtime-dispatched SIMD word kernels; integer
/// layouts compare in integer space (exact beyond 2^53 — see
/// scan_internal::RangePredicate).
inline MembershipPtr FilterRangeMembership(const IColumn& col,
                                           const IMembershipSet& base,
                                           double lo, double hi) {
  scan_internal::RangePredicate pred(lo, hi);
  return FilterColumnMembership(col, base, pred);
}

/// Rows of a dictionary-code column whose code equals `code`.
inline MembershipPtr FilterEqualsCodeMembership(const IColumn& col,
                                                const IMembershipSet& base,
                                                uint32_t code) {
  scan_internal::EqualsCodePredicate pred(code);
  return FilterColumnMembership(col, base, pred);
}

/// Rows of a dictionary-code column whose code is marked in `match` (one
/// byte per dictionary entry — the memoized per-code verdict table).
inline MembershipPtr FilterMatchedCodesMembership(
    const IColumn& col, const IMembershipSet& base,
    const std::vector<uint8_t>& match) {
  return FilterColumnMembership(col, base, [&match](auto v) {
    if constexpr (std::is_same_v<decltype(v), uint32_t>) {
      return v < match.size() && match[v] != 0;
    } else {
      (void)v;
      return false;
    }
  });
}

/// Devirtualized per-row accessor for multi-column scans (2D histograms,
/// trellis, correlation): binds the column's raw layout once, then answers
/// per-row queries with an inlined switch on a small enum — predictable
/// branches, no virtual dispatch. Shares the scan layer's missing policy
/// (null-mask bit, NaN, kMissingCode).
class RawCursor {
 public:
  explicit RawCursor(const IColumn* col) {
    if (col == nullptr) return;
    nulls_ = &col->null_mask();
    if ((f64_ = col->RawDouble()) != nullptr) {
      layout_ = Layout::kF64;
    } else if ((i32_ = col->RawInt()) != nullptr) {
      layout_ = Layout::kI32;
    } else if ((i64_ = col->RawDate()) != nullptr) {
      layout_ = Layout::kI64;
    } else if ((codes_ = col->RawCodes()) != nullptr) {
      layout_ = Layout::kCodes;
      dict_limit_ = col->Dictionary().size();
    } else {
      col_ = col;
      layout_ = Layout::kGeneric;
    }
  }

  bool valid() const { return layout_ != Layout::kNone; }
  bool is_codes() const { return layout_ == Layout::kCodes; }

  /// True when the row is missing under the central policy (including NaN
  /// in double columns).
  bool IsMissing(uint32_t row) const {
    switch (layout_) {
      case Layout::kF64:
        return nulls_->IsMissing(row) || std::isnan(f64_[row]);
      case Layout::kI32:
      case Layout::kI64:
        return nulls_->IsMissing(row);
      case Layout::kCodes:
        // Out-of-range codes (kMissingCode, or corrupt mapped data) are
        // missing — same policy as StringColumn::IsMissing and CodeFilter.
        return codes_[row] >= dict_limit_;
      case Layout::kGeneric:
        return col_->IsMissing(row);
      case Layout::kNone:
        return true;
    }
    return true;
  }

  /// Numeric view of a present row (dictionary code for string layouts,
  /// mirroring IColumn::GetDouble). Only valid when !IsMissing(row).
  double AsDouble(uint32_t row) const {
    switch (layout_) {
      case Layout::kF64:
        return f64_[row];
      case Layout::kI32:
        return static_cast<double>(i32_[row]);
      case Layout::kI64:
        return static_cast<double>(i64_[row]);
      case Layout::kCodes:
        return static_cast<double>(codes_[row]);
      case Layout::kGeneric:
        return col_->GetDouble(row);
      case Layout::kNone:
        return 0.0;
    }
    return 0.0;
  }

  /// Dictionary code of a row; only valid for code layouts.
  uint32_t Code(uint32_t row) const { return codes_[row]; }

 private:
  enum class Layout { kNone, kF64, kI32, kI64, kCodes, kGeneric };

  Layout layout_ = Layout::kNone;
  const double* f64_ = nullptr;
  const int32_t* i32_ = nullptr;
  const int64_t* i64_ = nullptr;
  const uint32_t* codes_ = nullptr;
  uint32_t dict_limit_ = 0;
  const NullMask* nulls_ = nullptr;
  const IColumn* col_ = nullptr;
};

}  // namespace hillview

#endif  // HILLVIEW_STORAGE_SCAN_H_
