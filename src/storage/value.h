#ifndef HILLVIEW_STORAGE_VALUE_H_
#define HILLVIEW_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace hillview {

/// Column data kinds supported by the spreadsheet (§3.5): integers, floating
/// point, dates, free-form text, and categorical strings. Dates are stored as
/// milliseconds since the Unix epoch, exactly like the Java implementation.
enum class DataKind : uint8_t {
  kInt = 0,       // 32-bit signed integer
  kDouble = 1,    // 64-bit IEEE double
  kDate = 2,      // int64 milliseconds since epoch
  kString = 3,    // free-form text, dictionary-encoded
  kCategory = 4,  // categorical string, dictionary-encoded, small cardinality
};

const char* DataKindName(DataKind kind);

/// Returns true for kinds whose values convert to a real number "readily"
/// (§4.3): ints, doubles and dates. String kinds are not numeric.
inline bool IsNumericKind(DataKind kind) {
  return kind == DataKind::kInt || kind == DataKind::kDouble ||
         kind == DataKind::kDate;
}

inline bool IsStringKind(DataKind kind) {
  return kind == DataKind::kString || kind == DataKind::kCategory;
}

/// A single materialized cell. Only tiny summaries (next-items rows, heavy
/// hitter keys) ever materialize Values; scans work on raw column arrays.
/// monostate represents a missing value, which sorts after all present values
/// (matching the Java implementation's null ordering).
using Value = std::variant<std::monostate, int64_t, double, std::string>;

/// Three-way comparison with missing-last semantics. Values of different
/// numeric representations (int64 vs double) compare numerically.
int CompareValues(const Value& a, const Value& b);

/// Renders a value for table views and CSV output; missing renders as "".
std::string ValueToString(const Value& v);

}  // namespace hillview

#endif  // HILLVIEW_STORAGE_VALUE_H_
