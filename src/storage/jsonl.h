#ifndef HILLVIEW_STORAGE_JSONL_H_
#define HILLVIEW_STORAGE_JSONL_H_

#include <string>

#include "storage/table.h"
#include "util/status.h"

namespace hillview {

/// JSON-lines repository reader (§2: Hillview "can operate directly on data
/// stored in ... JSON files ... without any data transformation overheads").
/// One JSON object per line; flat objects only (no nesting — nested values
/// would be columns of their own in a real repository). Supported value
/// shapes: numbers (int32 when integral and in range, double otherwise),
/// strings, booleans (mapped to int 0/1), and null (missing).
///
/// The schema is the union of keys across rows when not given; kinds are
/// inferred like the CSV reader (int -> double -> string per column).
struct JsonlOptions {
  const Schema* schema = nullptr;
};

Result<TablePtr> ReadJsonl(const std::string& path,
                           const JsonlOptions& options = {});

/// Parses JSON-lines text from a string (used by tests).
Result<TablePtr> ReadJsonlText(const std::string& text,
                               const JsonlOptions& options = {});

/// Writes the member rows of a table as JSON lines (missing cells are
/// omitted from the object, matching common log formats).
Status WriteJsonl(const Table& table, const std::string& path);

}  // namespace hillview

#endif  // HILLVIEW_STORAGE_JSONL_H_
