#ifndef HILLVIEW_STORAGE_TABLE_H_
#define HILLVIEW_STORAGE_TABLE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "storage/column.h"
#include "storage/membership.h"
#include "storage/schema.h"
#include "util/status.h"

namespace hillview {

class Table;
using TablePtr = std::shared_ptr<const Table>;

/// An immutable columnar table fragment: the unit of data a leaf node
/// operates on (one micropartition, §5.3). A Table is a set of shared columns
/// plus a membership set; derived tables (filtering, zoom-in §5.6) share the
/// same columns and replace only the membership set, so filtering costs no
/// data copies.
class Table {
 public:
  /// Full table over all rows of the given columns.
  static TablePtr Create(Schema schema, std::vector<ColumnPtr> columns);

  /// Table with an explicit membership set (used by Filter and tests).
  static TablePtr Create(Schema schema, std::vector<ColumnPtr> columns,
                         MembershipPtr members);

  const Schema& schema() const { return schema_; }
  const MembershipPtr& members() const { return members_; }

  /// Number of member rows (after filtering).
  uint32_t num_rows() const { return members_->size(); }
  /// Number of physical rows in the columns.
  uint32_t universe_size() const { return members_->universe_size(); }
  int num_columns() const { return static_cast<int>(columns_.size()); }

  const ColumnPtr& column(int i) const { return columns_[i]; }

  /// Column by name; error status if absent.
  Result<ColumnPtr> GetColumn(const std::string& name) const;
  /// Column by name; nullptr if absent (for hot paths that pre-validate).
  ColumnPtr GetColumnOrNull(const std::string& name) const;

  /// A derived table keeping only rows where `pred(row)` holds (§5.6).
  TablePtr Filter(const std::function<bool(uint32_t)>& pred) const;

  /// A derived table sharing this table's columns with an explicitly
  /// computed membership set (the typed filter path: see
  /// FilterColumnMembership in storage/scan.h). `members` must cover the
  /// same universe as this table.
  TablePtr WithMembership(MembershipPtr members) const;

  /// A derived table with one extra column appended. The new column must
  /// cover the full universe (it is defined for non-member rows too).
  TablePtr WithColumn(const ColumnDescription& desc, ColumnPtr column) const;

  /// A derived table restricted to the named columns (same membership).
  TablePtr Project(const std::vector<std::string>& names) const;

  /// Materializes one row's cells for the named columns.
  std::vector<Value> GetRow(uint32_t row,
                            const std::vector<std::string>& names) const;

  /// Total heap bytes of column data plus membership overhead. Mapped
  /// columns contribute only their (heap) null/bookkeeping bytes here.
  size_t MemoryBytes() const;

  /// Total file bytes served by mapped column views (0 for heap tables).
  /// MemoryBytes + MappedBytes is the table's full working-set bound.
  size_t MappedBytes() const;

  /// Total cell count as the paper counts it: rows x columns.
  uint64_t CellCount() const {
    return static_cast<uint64_t>(num_rows()) * num_columns();
  }

 private:
  Table(Schema schema, std::vector<ColumnPtr> columns, MembershipPtr members)
      : schema_(std::move(schema)),
        columns_(std::move(columns)),
        members_(std::move(members)) {}

  Schema schema_;
  std::vector<ColumnPtr> columns_;
  MembershipPtr members_;
};

/// Splits `rows` into micropartition-sized tables built by `make_partition`.
/// Used by loaders/generators; partitions are the units assigned to leaves.
std::vector<uint32_t> PartitionRowCounts(uint64_t total_rows,
                                         uint32_t rows_per_partition);

}  // namespace hillview

#endif  // HILLVIEW_STORAGE_TABLE_H_
