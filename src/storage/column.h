#ifndef HILLVIEW_STORAGE_COLUMN_H_
#define HILLVIEW_STORAGE_COLUMN_H_

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "storage/column_storage.h"
#include "storage/value.h"
#include "util/random.h"
#include "util/status.h"

namespace hillview {

class IMembershipSet;

/// Bitmap of missing values. Empty mask means "no value is missing", which is
/// the common case and costs nothing.
///
/// Like column payloads, the bitmap sits behind the storage-backend seam:
/// either an owned word vector (builders, streaming reads) or a zero-copy
/// view over the null-words segment of a mapped columnar file. Views are
/// immutable — SetMissing is only legal on owned masks.
class NullMask {
 public:
  NullMask() = default;

  /// Owned mask from prebuilt words (file readers). `count` must equal the
  /// number of set bits.
  NullMask(std::vector<uint64_t> words, uint64_t count)
      : words_(std::move(words)), count_(count) {}

  /// Zero-copy view over mapped null words; `keeper` keeps the mapping (or
  /// other backing storage) alive for the lifetime of the mask.
  NullMask(const uint64_t* words, size_t num_words, uint64_t count,
           std::shared_ptr<const void> keeper)
      : view_(words),
        view_words_(num_words),
        keeper_(std::move(keeper)),
        count_(count) {}

  /// Marks `row` missing, growing the bitmap as needed. Idempotent: marking
  /// an already-missing row leaves count() unchanged. Owned masks only.
  void SetMissing(uint32_t row) {
    size_t word = row >> 6;
    if (word >= words_.size()) words_.resize(word + 1, 0);
    uint64_t bit = 1ULL << (row & 63);
    if ((words_[word] & bit) == 0) {
      words_[word] |= bit;
      ++count_;
    }
  }

  bool IsMissing(uint32_t row) const {
    size_t word = row >> 6;
    if (word >= num_words()) return false;
    return (word_data()[word] >> (row & 63)) & 1;
  }

  bool empty() const { return count_ == 0; }
  uint64_t count() const { return count_; }
  bool is_view() const { return view_ != nullptr; }

  /// Heap bytes (views report 0; their words live in the mapped file).
  size_t MemoryBytes() const { return words_.size() * sizeof(uint64_t); }
  size_t MappedBytes() const { return view_words_ * sizeof(uint64_t); }

  const uint64_t* word_data() const {
    return view_ != nullptr ? view_ : words_.data();
  }
  size_t num_words() const {
    return view_ != nullptr ? view_words_ : words_.size();
  }

 private:
  std::vector<uint64_t> words_;
  const uint64_t* view_ = nullptr;
  size_t view_words_ = 0;
  std::shared_ptr<const void> keeper_;
  uint64_t count_ = 0;
};

/// Read-only columnar data. The in-memory representation follows §6: plain
/// arrays of base types to minimize allocator pressure; string columns use
/// dictionary encoding for compression. Payloads sit behind ColumnStorage,
/// so the arrays are either heap-resident or mapped from a columnar file —
/// interchangeable under the scan layer.
///
/// Scans (vizketch summarize functions) should prefer the Raw* fast paths and
/// fall back to the virtual per-row accessors only for generic code paths
/// (row materialization, sorting comparisons, CSV output).
class IColumn {
 public:
  virtual ~IColumn() = default;

  virtual DataKind kind() const = 0;
  virtual uint32_t size() const = 0;
  virtual bool IsMissing(uint32_t row) const = 0;

  /// Numeric conversion used by charts (§4.3: "a value that can be readily
  /// converted to a real number"). For string kinds this is the dictionary
  /// code, which respects alphabetical order (dictionaries are sorted).
  virtual double GetDouble(uint32_t row) const = 0;

  /// Materializes a cell; used only for small outputs (next-items, render).
  virtual Value GetValue(uint32_t row) const = 0;

  /// Renders a cell as text (dates render as their millisecond count; the
  /// render layer owns pretty date formatting).
  virtual std::string GetString(uint32_t row) const = 0;

  /// Three-way row comparison with missing-last ordering.
  virtual int CompareRows(uint32_t a, uint32_t b) const = 0;

  /// Hash of the cell value, stable across partitions (used by heavy hitters
  /// and distinct-count sketches). Missing hashes to a fixed sentinel.
  virtual uint64_t HashRow(uint32_t row, uint64_t seed) const = 0;

  /// Heap-resident bytes (soft-state accounting; mapped payloads report 0).
  virtual size_t MemoryBytes() const = 0;

  /// File bytes served via mmap (0 for heap-resident columns).
  virtual size_t MappedBytes() const { return 0; }

  virtual const NullMask& null_mask() const = 0;

  /// Storage-backend hook the scan layer calls once per scan, before walking
  /// rows: mapped columns translate the membership shape into madvise
  /// prefetch (MADV_SEQUENTIAL for full/dense scans, batched MADV_WILLNEED
  /// page ranges for sparse row lists). Heap columns do nothing.
  virtual void PrepareScan(const IMembershipSet& members) const {
    (void)members;
  }

  // Fast-path raw accessors; each returns nullptr unless the column has that
  // physical representation.
  virtual const int32_t* RawInt() const { return nullptr; }
  virtual const double* RawDouble() const { return nullptr; }
  virtual const int64_t* RawDate() const { return nullptr; }
  virtual const uint32_t* RawCodes() const { return nullptr; }

  /// For dictionary-encoded columns: the sorted dictionary; empty otherwise.
  virtual const StringDictionary& Dictionary() const {
    static const StringDictionary kEmpty;
    return kEmpty;
  }
};

using ColumnPtr = std::shared_ptr<const IColumn>;

namespace internal_column {

/// Shared implementation for the three numeric physical layouts.
template <typename T, DataKind KIND>
class NumericColumn final : public IColumn {
 public:
  NumericColumn(std::vector<T> data, NullMask nulls)
      : data_(std::move(data)), nulls_(std::move(nulls)) {
    // The central missing policy (storage/scan.h) treats NaN as missing.
    // Folding NaN into the null mask at construction makes every consumer —
    // scans, sort comparisons, Value materialization, file writers — agree,
    // instead of each virtual accessor re-deciding; it also keeps
    // CompareRows a strict weak ordering (raw NaN comparisons are not).
    if constexpr (std::is_same_v<T, double>) {
      const T* raw = data_.data();
      for (uint32_t row = 0; row < data_.size(); ++row) {
        if (std::isnan(raw[row])) nulls_.SetMissing(row);
      }
    }
  }

  /// Mapped-backend constructor. No NaN folding pass: touching every value
  /// here would fault the whole file in and defeat the lazy mapping. The
  /// columnar writer serialized the source column's already-folded mask, so
  /// the invariant holds for well-formed files; scan.h's Emit still routes
  /// any stray NaN in a corrupt file to OnMissing.
  NumericColumn(ColumnStorage<T> data, NullMask nulls)
      : data_(std::move(data)), nulls_(std::move(nulls)) {}

  DataKind kind() const override { return KIND; }
  uint32_t size() const override { return static_cast<uint32_t>(data_.size()); }
  bool IsMissing(uint32_t row) const override { return nulls_.IsMissing(row); }

  double GetDouble(uint32_t row) const override {
    return static_cast<double>(data_[row]);
  }

  Value GetValue(uint32_t row) const override {
    if (IsMissing(row)) return std::monostate{};
    if constexpr (std::is_same_v<T, double>) {
      return data_[row];
    } else {
      return static_cast<int64_t>(data_[row]);
    }
  }

  std::string GetString(uint32_t row) const override {
    return ValueToString(GetValue(row));
  }

  int CompareRows(uint32_t a, uint32_t b) const override {
    bool ma = IsMissing(a), mb = IsMissing(b);
    if (ma || mb) return ma == mb ? 0 : (ma ? 1 : -1);
    if (data_[a] != data_[b]) return data_[a] < data_[b] ? -1 : 1;
    return 0;
  }

  uint64_t HashRow(uint32_t row, uint64_t seed) const override {
    if (IsMissing(row)) return MixSeed(seed, 0x6d697373);  // "miss"
    if constexpr (std::is_same_v<T, double>) {
      double d = data_[row];
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      return MixSeed(seed, bits);
    } else {
      return MixSeed(seed, static_cast<uint64_t>(data_[row]));
    }
  }

  size_t MemoryBytes() const override {
    return data_.HeapBytes() + nulls_.MemoryBytes();
  }

  size_t MappedBytes() const override {
    return data_.MappedBytes() + nulls_.MappedBytes();
  }

  const NullMask& null_mask() const override { return nulls_; }

  void PrepareScan(const IMembershipSet& members) const override {
    if (data_.mapped()) AdviseForScan(data_.segment(), members, sizeof(T));
  }

  const int32_t* RawInt() const override {
    if constexpr (std::is_same_v<T, int32_t>) return data_.data();
    return nullptr;
  }
  const double* RawDouble() const override {
    if constexpr (std::is_same_v<T, double>) return data_.data();
    return nullptr;
  }
  const int64_t* RawDate() const override {
    if constexpr (std::is_same_v<T, int64_t>) return data_.data();
    return nullptr;
  }

 private:
  ColumnStorage<T> data_;
  NullMask nulls_;
};

}  // namespace internal_column

using Int32Column = internal_column::NumericColumn<int32_t, DataKind::kInt>;
using DoubleColumn = internal_column::NumericColumn<double, DataKind::kDouble>;
using DateColumn = internal_column::NumericColumn<int64_t, DataKind::kDate>;

/// Dictionary-encoded string column (kString or kCategory). The dictionary is
/// sorted, so code order equals alphabetical order and GetDouble (the code)
/// can drive equi-width string bucketing directly.
class StringColumn final : public IColumn {
 public:
  static constexpr uint32_t kMissingCode = std::numeric_limits<uint32_t>::max();

  StringColumn(DataKind kind, std::vector<uint32_t> codes,
               std::vector<std::string> dictionary)
      : kind_(kind),
        codes_(std::move(codes)),
        dict_(std::move(dictionary)) {
    // Missing rows are encoded in the code stream (kMissingCode); derive the
    // bitmap once so generic null-mask consumers see the same missing rows
    // as IsMissing().
    const uint32_t* raw = codes_.data();
    uint32_t limit = dict_.size();
    for (uint32_t row = 0; row < codes_.size(); ++row) {
      if (raw[row] >= limit) nulls_.SetMissing(row);
    }
  }

  /// Storage-backend constructor (mapped or pre-decoded): codes, dictionary
  /// and null mask arrive ready-made. `nulls` must mark exactly the rows
  /// whose code is out of dictionary range (the writer guarantees this for
  /// well-formed files; every accessor also clamps, so a corrupt file
  /// degrades to extra missing values, never out-of-bounds reads).
  StringColumn(DataKind kind, ColumnStorage<uint32_t> codes,
               StringDictionary dict, NullMask nulls)
      : kind_(kind),
        codes_(std::move(codes)),
        dict_(std::move(dict)),
        nulls_(std::move(nulls)) {}

  DataKind kind() const override { return kind_; }
  uint32_t size() const override {
    return static_cast<uint32_t>(codes_.size());
  }

  /// Central corrupt-tolerant policy: any code at or beyond the dictionary
  /// is missing. kMissingCode (max uint32) is simply the canonical such code.
  bool IsMissing(uint32_t row) const override {
    return codes_[row] >= dict_.size();
  }

  double GetDouble(uint32_t row) const override {
    return static_cast<double>(codes_[row]);
  }

  Value GetValue(uint32_t row) const override {
    if (IsMissing(row)) return std::monostate{};
    return std::string(dict_[codes_[row]]);
  }

  std::string GetString(uint32_t row) const override {
    if (IsMissing(row)) return "";
    return std::string(dict_[codes_[row]]);
  }

  std::string_view GetStringView(uint32_t row) const {
    if (IsMissing(row)) return {};
    return dict_[codes_[row]];
  }

  int CompareRows(uint32_t a, uint32_t b) const override {
    uint32_t ca = codes_[a], cb = codes_[b];
    // Clamp out-of-range codes to the missing sentinel so all missing rows
    // compare equal (and last) even in a corrupt file.
    uint32_t limit = dict_.size();
    if (ca >= limit) ca = kMissingCode;
    if (cb >= limit) cb = kMissingCode;
    if (ca != cb) return ca < cb ? -1 : 1;
    return 0;
  }

  uint64_t HashRow(uint32_t row, uint64_t seed) const override {
    if (IsMissing(row)) return MixSeed(seed, 0x6d697373);
    std::string_view s = dict_[codes_[row]];
    return HashBytes(s.data(), s.size(), seed);
  }

  size_t MemoryBytes() const override {
    return codes_.HeapBytes() + nulls_.MemoryBytes() + dict_.MemoryBytes();
  }

  size_t MappedBytes() const override {
    return codes_.MappedBytes() + nulls_.MappedBytes() + dict_.MappedBytes();
  }

  const NullMask& null_mask() const override { return nulls_; }

  void PrepareScan(const IMembershipSet& members) const override {
    if (codes_.mapped()) {
      AdviseForScan(codes_.segment(), members, sizeof(uint32_t));
    }
  }

  const uint32_t* RawCodes() const override { return codes_.data(); }
  const StringDictionary& Dictionary() const override { return dict_; }

  uint32_t dictionary_size() const { return dict_.size(); }

 private:
  DataKind kind_;
  ColumnStorage<uint32_t> codes_;
  StringDictionary dict_;
  NullMask nulls_;
};

/// Appends values of any kind and produces an immutable column. Builders are
/// how every loader (CSV, generators, derived-column maps) creates data.
class ColumnBuilder {
 public:
  explicit ColumnBuilder(DataKind kind) : kind_(kind) {}

  DataKind kind() const { return kind_; }
  uint32_t size() const { return count_; }

  void AppendInt(int32_t v);
  void AppendDouble(double v);
  void AppendDate(int64_t millis);
  void AppendString(std::string_view v);
  void AppendMissing();
  /// Appends a materialized value; its alternative must match the kind.
  void AppendValue(const Value& v);

  /// Builds the immutable column. For string kinds this sorts the dictionary
  /// and remaps codes so that code order equals alphabetical order.
  ColumnPtr Finish();

 private:
  DataKind kind_;
  uint32_t count_ = 0;
  NullMask nulls_;
  std::vector<int32_t> ints_;
  std::vector<double> doubles_;
  std::vector<int64_t> dates_;
  std::vector<uint32_t> codes_;
  std::vector<std::string> dict_;
  // Dictionary lookup during building (string -> provisional code).
  struct DictIndex;
  std::shared_ptr<DictIndex> dict_index_;
};

}  // namespace hillview

#endif  // HILLVIEW_STORAGE_COLUMN_H_
