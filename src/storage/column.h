#ifndef HILLVIEW_STORAGE_COLUMN_H_
#define HILLVIEW_STORAGE_COLUMN_H_

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "storage/value.h"
#include "util/random.h"
#include "util/status.h"

namespace hillview {

/// Bitmap of missing values. Empty mask means "no value is missing", which is
/// the common case and costs nothing.
class NullMask {
 public:
  NullMask() = default;

  /// Marks `row` missing, growing the bitmap as needed. Idempotent: marking
  /// an already-missing row leaves count() unchanged.
  void SetMissing(uint32_t row) {
    size_t word = row >> 6;
    if (word >= words_.size()) words_.resize(word + 1, 0);
    uint64_t bit = 1ULL << (row & 63);
    if ((words_[word] & bit) == 0) {
      words_[word] |= bit;
      ++count_;
    }
  }

  bool IsMissing(uint32_t row) const {
    size_t word = row >> 6;
    if (word >= words_.size()) return false;
    return (words_[word] >> (row & 63)) & 1;
  }

  bool empty() const { return count_ == 0; }
  uint64_t count() const { return count_; }
  size_t MemoryBytes() const { return words_.size() * sizeof(uint64_t); }

  const std::vector<uint64_t>& words() const { return words_; }

 private:
  std::vector<uint64_t> words_;
  uint64_t count_ = 0;
};

/// Read-only columnar data. The in-memory representation follows §6: plain
/// arrays of base types to minimize allocator pressure; string columns use
/// dictionary encoding for compression.
///
/// Scans (vizketch summarize functions) should prefer the Raw* fast paths and
/// fall back to the virtual per-row accessors only for generic code paths
/// (row materialization, sorting comparisons, CSV output).
class IColumn {
 public:
  virtual ~IColumn() = default;

  virtual DataKind kind() const = 0;
  virtual uint32_t size() const = 0;
  virtual bool IsMissing(uint32_t row) const = 0;

  /// Numeric conversion used by charts (§4.3: "a value that can be readily
  /// converted to a real number"). For string kinds this is the dictionary
  /// code, which respects alphabetical order (dictionaries are sorted).
  virtual double GetDouble(uint32_t row) const = 0;

  /// Materializes a cell; used only for small outputs (next-items, render).
  virtual Value GetValue(uint32_t row) const = 0;

  /// Renders a cell as text (dates render as their millisecond count; the
  /// render layer owns pretty date formatting).
  virtual std::string GetString(uint32_t row) const = 0;

  /// Three-way row comparison with missing-last ordering.
  virtual int CompareRows(uint32_t a, uint32_t b) const = 0;

  /// Hash of the cell value, stable across partitions (used by heavy hitters
  /// and distinct-count sketches). Missing hashes to a fixed sentinel.
  virtual uint64_t HashRow(uint32_t row, uint64_t seed) const = 0;

  virtual size_t MemoryBytes() const = 0;

  virtual const NullMask& null_mask() const = 0;

  // Fast-path raw accessors; each returns nullptr unless the column has that
  // physical representation.
  virtual const int32_t* RawInt() const { return nullptr; }
  virtual const double* RawDouble() const { return nullptr; }
  virtual const int64_t* RawDate() const { return nullptr; }
  virtual const uint32_t* RawCodes() const { return nullptr; }

  /// For dictionary-encoded columns: the sorted dictionary; empty otherwise.
  virtual const std::vector<std::string>& Dictionary() const {
    static const std::vector<std::string> kEmpty;
    return kEmpty;
  }
};

using ColumnPtr = std::shared_ptr<const IColumn>;

namespace internal_column {

/// Shared implementation for the three numeric physical layouts.
template <typename T, DataKind KIND>
class NumericColumn final : public IColumn {
 public:
  NumericColumn(std::vector<T> data, NullMask nulls)
      : data_(std::move(data)), nulls_(std::move(nulls)) {
    // The central missing policy (storage/scan.h) treats NaN as missing.
    // Folding NaN into the null mask at construction makes every consumer —
    // scans, sort comparisons, Value materialization, file writers — agree,
    // instead of each virtual accessor re-deciding; it also keeps
    // CompareRows a strict weak ordering (raw NaN comparisons are not).
    if constexpr (std::is_same_v<T, double>) {
      for (uint32_t row = 0; row < data_.size(); ++row) {
        if (std::isnan(data_[row])) nulls_.SetMissing(row);
      }
    }
  }

  DataKind kind() const override { return KIND; }
  uint32_t size() const override { return static_cast<uint32_t>(data_.size()); }
  bool IsMissing(uint32_t row) const override { return nulls_.IsMissing(row); }

  double GetDouble(uint32_t row) const override {
    return static_cast<double>(data_[row]);
  }

  Value GetValue(uint32_t row) const override {
    if (IsMissing(row)) return std::monostate{};
    if constexpr (std::is_same_v<T, double>) {
      return data_[row];
    } else {
      return static_cast<int64_t>(data_[row]);
    }
  }

  std::string GetString(uint32_t row) const override {
    return ValueToString(GetValue(row));
  }

  int CompareRows(uint32_t a, uint32_t b) const override {
    bool ma = IsMissing(a), mb = IsMissing(b);
    if (ma || mb) return ma == mb ? 0 : (ma ? 1 : -1);
    if (data_[a] != data_[b]) return data_[a] < data_[b] ? -1 : 1;
    return 0;
  }

  uint64_t HashRow(uint32_t row, uint64_t seed) const override {
    if (IsMissing(row)) return MixSeed(seed, 0x6d697373);  // "miss"
    if constexpr (std::is_same_v<T, double>) {
      double d = data_[row];
      uint64_t bits;
      static_assert(sizeof(bits) == sizeof(d));
      __builtin_memcpy(&bits, &d, sizeof(bits));
      return MixSeed(seed, bits);
    } else {
      return MixSeed(seed, static_cast<uint64_t>(data_[row]));
    }
  }

  size_t MemoryBytes() const override {
    return data_.size() * sizeof(T) + nulls_.MemoryBytes();
  }

  const NullMask& null_mask() const override { return nulls_; }

  const int32_t* RawInt() const override {
    if constexpr (std::is_same_v<T, int32_t>) return data_.data();
    return nullptr;
  }
  const double* RawDouble() const override {
    if constexpr (std::is_same_v<T, double>) return data_.data();
    return nullptr;
  }
  const int64_t* RawDate() const override {
    if constexpr (std::is_same_v<T, int64_t>) return data_.data();
    return nullptr;
  }

  const std::vector<T>& data() const { return data_; }

 private:
  std::vector<T> data_;
  NullMask nulls_;
};

}  // namespace internal_column

using Int32Column = internal_column::NumericColumn<int32_t, DataKind::kInt>;
using DoubleColumn = internal_column::NumericColumn<double, DataKind::kDouble>;
using DateColumn = internal_column::NumericColumn<int64_t, DataKind::kDate>;

/// Dictionary-encoded string column (kString or kCategory). The dictionary is
/// sorted, so code order equals alphabetical order and GetDouble (the code)
/// can drive equi-width string bucketing directly.
class StringColumn final : public IColumn {
 public:
  static constexpr uint32_t kMissingCode = std::numeric_limits<uint32_t>::max();

  StringColumn(DataKind kind, std::vector<uint32_t> codes,
               std::vector<std::string> dictionary)
      : kind_(kind), codes_(std::move(codes)), dict_(std::move(dictionary)) {
    // Missing rows are encoded in the code stream (kMissingCode); derive the
    // bitmap once so generic null-mask consumers see the same missing rows
    // as IsMissing().
    for (uint32_t row = 0; row < codes_.size(); ++row) {
      if (codes_[row] == kMissingCode) nulls_.SetMissing(row);
    }
  }

  DataKind kind() const override { return kind_; }
  uint32_t size() const override {
    return static_cast<uint32_t>(codes_.size());
  }
  bool IsMissing(uint32_t row) const override {
    return codes_[row] == kMissingCode;
  }

  double GetDouble(uint32_t row) const override {
    return static_cast<double>(codes_[row]);
  }

  Value GetValue(uint32_t row) const override {
    if (IsMissing(row)) return std::monostate{};
    return dict_[codes_[row]];
  }

  std::string GetString(uint32_t row) const override {
    if (IsMissing(row)) return "";
    return dict_[codes_[row]];
  }

  std::string_view GetStringView(uint32_t row) const {
    if (IsMissing(row)) return {};
    return dict_[codes_[row]];
  }

  int CompareRows(uint32_t a, uint32_t b) const override {
    uint32_t ca = codes_[a], cb = codes_[b];
    // kMissingCode is the max uint32, so missing naturally sorts last.
    if (ca != cb) return ca < cb ? -1 : 1;
    return 0;
  }

  uint64_t HashRow(uint32_t row, uint64_t seed) const override {
    if (IsMissing(row)) return MixSeed(seed, 0x6d697373);
    const std::string& s = dict_[codes_[row]];
    return HashBytes(s.data(), s.size(), seed);
  }

  size_t MemoryBytes() const override {
    size_t bytes = codes_.size() * sizeof(uint32_t) + nulls_.MemoryBytes();
    for (const auto& s : dict_) bytes += s.size() + sizeof(std::string);
    return bytes;
  }

  const NullMask& null_mask() const override { return nulls_; }

  const uint32_t* RawCodes() const override { return codes_.data(); }
  const std::vector<std::string>& Dictionary() const override { return dict_; }

  uint32_t dictionary_size() const { return static_cast<uint32_t>(dict_.size()); }

 private:
  DataKind kind_;
  std::vector<uint32_t> codes_;
  std::vector<std::string> dict_;
  NullMask nulls_;
};

/// Appends values of any kind and produces an immutable column. Builders are
/// how every loader (CSV, generators, derived-column maps) creates data.
class ColumnBuilder {
 public:
  explicit ColumnBuilder(DataKind kind) : kind_(kind) {}

  DataKind kind() const { return kind_; }
  uint32_t size() const { return count_; }

  void AppendInt(int32_t v);
  void AppendDouble(double v);
  void AppendDate(int64_t millis);
  void AppendString(std::string_view v);
  void AppendMissing();
  /// Appends a materialized value; its alternative must match the kind.
  void AppendValue(const Value& v);

  /// Builds the immutable column. For string kinds this sorts the dictionary
  /// and remaps codes so that code order equals alphabetical order.
  ColumnPtr Finish();

 private:
  DataKind kind_;
  uint32_t count_ = 0;
  NullMask nulls_;
  std::vector<int32_t> ints_;
  std::vector<double> doubles_;
  std::vector<int64_t> dates_;
  std::vector<uint32_t> codes_;
  std::vector<std::string> dict_;
  // Dictionary lookup during building (string -> provisional code).
  struct DictIndex;
  std::shared_ptr<DictIndex> dict_index_;
};

}  // namespace hillview

#endif  // HILLVIEW_STORAGE_COLUMN_H_
