#include "storage/csv.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace hillview {

namespace {

// Splits one CSV record into fields, honoring RFC 4180 quoting.
std::vector<std::string> SplitRecord(const std::string& line, char delim) {
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
    } else if (c == '"' && field.empty()) {
      in_quotes = true;
    } else if (c == delim) {
      fields.push_back(std::move(field));
      field.clear();
    } else {
      field.push_back(c);
    }
  }
  fields.push_back(std::move(field));
  return fields;
}

bool ParseInt32(const std::string& s, int32_t* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  if (v < INT32_MIN || v > INT32_MAX) return false;
  *out = static_cast<int32_t>(v);
  return true;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

DataKind InferKind(const std::vector<std::vector<std::string>>& records,
                   size_t col) {
  bool all_int = true, all_double = true, any_value = false;
  for (const auto& rec : records) {
    if (col >= rec.size() || rec[col].empty()) continue;
    any_value = true;
    int32_t i;
    double d;
    if (!ParseInt32(rec[col], &i)) all_int = false;
    if (!ParseDouble(rec[col], &d)) all_double = false;
    if (!all_int && !all_double) break;
  }
  if (!any_value) return DataKind::kString;
  if (all_int) return DataKind::kInt;
  if (all_double) return DataKind::kDouble;
  return DataKind::kString;
}

Result<TablePtr> ParseRecords(std::vector<std::vector<std::string>> records,
                              const CsvOptions& options) {
  if (records.empty() && options.schema == nullptr) {
    return Status::InvalidArgument("empty CSV input with no schema");
  }
  std::vector<std::string> names;
  if (options.has_header) {
    if (records.empty()) {
      return Status::InvalidArgument("CSV input missing header line");
    }
    names = records.front();
    records.erase(records.begin());
  }

  size_t num_cols = 0;
  if (options.schema != nullptr) {
    num_cols = options.schema->num_columns();
  } else if (!names.empty()) {
    num_cols = names.size();
  } else if (!records.empty()) {
    num_cols = records[0].size();
  }
  if (num_cols == 0) return Status::InvalidArgument("CSV input has no columns");

  std::vector<ColumnDescription> descs(num_cols);
  for (size_t c = 0; c < num_cols; ++c) {
    if (options.schema != nullptr) {
      descs[c] = options.schema->column(static_cast<int>(c));
    } else {
      descs[c].name = c < names.size() ? names[c] : "col" + std::to_string(c);
      descs[c].kind = InferKind(records, c);
    }
  }

  std::vector<ColumnBuilder> builders;
  builders.reserve(num_cols);
  for (const auto& d : descs) builders.emplace_back(d.kind);

  for (const auto& rec : records) {
    for (size_t c = 0; c < num_cols; ++c) {
      const std::string* cell = c < rec.size() ? &rec[c] : nullptr;
      if (cell == nullptr || cell->empty()) {
        builders[c].AppendMissing();
        continue;
      }
      switch (descs[c].kind) {
        case DataKind::kInt: {
          int32_t v;
          if (ParseInt32(*cell, &v)) {
            builders[c].AppendInt(v);
          } else {
            builders[c].AppendMissing();
          }
          break;
        }
        case DataKind::kDouble: {
          double v;
          if (ParseDouble(*cell, &v)) {
            builders[c].AppendDouble(v);
          } else {
            builders[c].AppendMissing();
          }
          break;
        }
        case DataKind::kDate: {
          // Dates in CSV are millisecond counts (pretty parsing is out of
          // scope; the generators produce milliseconds).
          int32_t unused;
          (void)unused;
          errno = 0;
          char* end = nullptr;
          long long v = std::strtoll(cell->c_str(), &end, 10);
          if (errno == 0 && end == cell->c_str() + cell->size()) {
            builders[c].AppendDate(v);
          } else {
            builders[c].AppendMissing();
          }
          break;
        }
        case DataKind::kString:
        case DataKind::kCategory:
          builders[c].AppendString(*cell);
          break;
      }
    }
  }

  std::vector<ColumnPtr> columns;
  columns.reserve(num_cols);
  for (auto& b : builders) columns.push_back(b.Finish());
  return Table::Create(Schema(std::move(descs)), std::move(columns));
}

std::vector<std::vector<std::string>> ReadRecords(std::istream& in,
                                                  char delim) {
  std::vector<std::vector<std::string>> records;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    records.push_back(SplitRecord(line, delim));
  }
  return records;
}

// Quotes a field if it contains the delimiter, a quote, or a newline.
std::string QuoteField(const std::string& s, char delim) {
  bool needs_quote = false;
  for (char c : s) {
    if (c == delim || c == '"' || c == '\n') {
      needs_quote = true;
      break;
    }
  }
  if (!needs_quote) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += '"';
  return out;
}

}  // namespace

Result<TablePtr> ReadCsv(const std::string& path, const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open '" + path + "'");
  return ParseRecords(ReadRecords(in, options.delimiter), options);
}

Result<TablePtr> ReadCsvText(const std::string& text,
                             const CsvOptions& options) {
  std::istringstream in(text);
  return ParseRecords(ReadRecords(in, options.delimiter), options);
}

Status WriteCsv(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot create '" + path + "'");
  const Schema& schema = table.schema();
  for (int c = 0; c < schema.num_columns(); ++c) {
    if (c > 0) out << ',';
    out << QuoteField(schema.column(c).name, ',');
  }
  out << '\n';
  ForEachRow(*table.members(), [&](uint32_t row) {
    for (int c = 0; c < schema.num_columns(); ++c) {
      if (c > 0) out << ',';
      out << QuoteField(table.column(c)->GetString(row), ',');
    }
    out << '\n';
  });
  out.flush();
  if (!out) return Status::IoError("write failed for '" + path + "'");
  return Status::OK();
}

}  // namespace hillview
