#include "storage/row_order.h"

namespace hillview {

RowComparator::RowComparator(const Table& table, const RecordOrder& order) {
  for (const auto& o : order.orientations()) {
    ColumnPtr col = table.GetColumnOrNull(o.column);
    if (col == nullptr) continue;  // Unknown columns are ignored.
    columns_.push_back(col.get());
    ascending_.push_back(o.ascending);
  }
}

int RowComparator::Compare(uint32_t a, uint32_t b) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    int c = columns_[i]->CompareRows(a, b);
    if (c != 0) return ascending_[i] ? c : -c;
  }
  return 0;
}

int CompareRowToKey(const Table& table, const RecordOrder& order, uint32_t row,
                    const std::vector<Value>& key) {
  const auto& orientations = order.orientations();
  for (size_t i = 0; i < orientations.size() && i < key.size(); ++i) {
    ColumnPtr col = table.GetColumnOrNull(orientations[i].column);
    if (col == nullptr) continue;
    int c = CompareValues(col->GetValue(row), key[i]);
    if (c != 0) return orientations[i].ascending ? c : -c;
  }
  return 0;
}

}  // namespace hillview
