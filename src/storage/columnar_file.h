#ifndef HILLVIEW_STORAGE_COLUMNAR_FILE_H_
#define HILLVIEW_STORAGE_COLUMNAR_FILE_H_

#include <memory>
#include <string>
#include <vector>

#include "storage/mmap_file.h"
#include "storage/table.h"
#include "util/status.h"

namespace hillview {

/// Binary columnar file format ("HVCF", version 2): the repository format
/// standing in for ORC/Parquet. One file holds one table partition; member
/// rows are compacted on write. Every segment is 64-byte aligned, so a
/// reader can either stream the file into heap columns or mmap it and serve
/// scans zero-copy straight from the page cache (§5.4 "fast sequential
/// access and columnar access"). Dictionaries are stored as one contiguous
/// string pool plus an offset table, so mapped string columns copy no string
/// bytes at all.
///
/// Layout (little endian):
///   header (32 bytes):
///     magic "HVCF" u32 | version u32 | num_cols u32 | num_rows u32
///     | dir_offset u64 | file_bytes u64
///   per column, 64-byte-aligned zero-padded segments:
///     values        num_rows × element bytes (u32 codes for string kinds)
///     null words    ceil(num_rows/64) × u64, present only if any row missing
///     dict offsets  (dict_count + 1) × u32 byte offsets into the pool
///     dict pool     concatenated entry bytes
///   directory (at dir_offset): per column
///     name | kind u8 | data/null/dictionary segment offsets and sizes
Status WriteTableFile(const Table& table, const std::string& path);

/// Which backend a columnar-file load should produce — the switch on the
/// storage seam. kHeap copies the bytes into vectors; kMmap maps the file
/// and serves scans zero-copy with madvise-driven prefetch.
enum class StorageBackend { kHeap, kMmap };

/// Read throttling to model cold-storage bandwidth (Fig 6's SSD runs).
/// bytes_per_second <= 0 means unthrottled.
struct ReadOptions {
  double bytes_per_second = 0;
  /// Read only these columns (empty = all). Columnar formats allow reading
  /// a column subset, which the data cache exploits (§5.4).
  std::vector<std::string> columns;
};

/// Streams the file into heap-resident columns (copies the bytes).
Result<TablePtr> ReadTableFile(const std::string& path,
                               const ReadOptions& options = {});

struct MapOptions {
  /// Build columns only for these names (empty = all). The whole file is
  /// mapped either way; pages of unrequested columns are never touched.
  std::vector<std::string> columns;
};

/// A table served zero-copy off a mapped columnar file. `mapping` is the
/// shared region every column view holds a reference to; keep it around to
/// read residency / prefetch counters via MappedFile::Snapshot().
struct MappedTable {
  TablePtr table;
  std::shared_ptr<const MappedFile> mapping;
};

/// Maps the file and builds columns whose payloads, null masks and
/// dictionaries are views into the mapping. File structure — header, segment
/// offsets/sizes/alignment, null-count consistency, dictionary offset
/// monotonicity and sort order — is validated up front (touching only the
/// small null/dictionary segments); the column values themselves are paged
/// in lazily as scans fault them.
Result<MappedTable> MapTableFile(const std::string& path,
                                 const MapOptions& options = {});

/// Opens an HVCF file through the chosen backend and returns just the table.
/// The mmap backend's table keeps its mapping alive through the column
/// views; bytes_per_second throttling applies to the heap backend only.
Result<TablePtr> OpenTableFile(const std::string& path, StorageBackend backend,
                               const ReadOptions& options = {});

/// Size in bytes the named columns occupy in the file (for bandwidth math in
/// cold-read benchmarks). Empty = all columns.
Result<uint64_t> TableFileBytes(const std::string& path,
                                const std::vector<std::string>& columns = {});

}  // namespace hillview

#endif  // HILLVIEW_STORAGE_COLUMNAR_FILE_H_
