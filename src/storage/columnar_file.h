#ifndef HILLVIEW_STORAGE_COLUMNAR_FILE_H_
#define HILLVIEW_STORAGE_COLUMNAR_FILE_H_

#include <string>

#include "storage/table.h"
#include "util/status.h"

namespace hillview {

/// Binary columnar file format ("HVCF"): the repository format standing in
/// for ORC/Parquet. One file holds one table partition; columns are stored
/// contiguously so a reader enjoys "fast sequential access and columnar
/// access" (§5.4). Member rows are compacted on write.
///
/// Layout (little endian):
///   magic "HVCF" | version u32 | num_cols u32 | num_rows u32
///   per column: name | kind u8 | null-words vec | payload
///     numeric payload: raw values vec
///     string payload:  dictionary (u32 count + strings) | codes vec
Status WriteTableFile(const Table& table, const std::string& path);

/// Read throttling to model cold-storage bandwidth (Fig 6's SSD runs).
/// bytes_per_second <= 0 means unthrottled.
struct ReadOptions {
  double bytes_per_second = 0;
  /// Read only these columns (empty = all). Columnar formats allow reading
  /// a column subset, which the data cache exploits (§5.4).
  std::vector<std::string> columns;
};

Result<TablePtr> ReadTableFile(const std::string& path,
                               const ReadOptions& options = {});

/// Size in bytes the named columns occupy in the file (for bandwidth math in
/// cold-read benchmarks). Empty = all columns.
Result<uint64_t> TableFileBytes(const std::string& path,
                                const std::vector<std::string>& columns = {});

}  // namespace hillview

#endif  // HILLVIEW_STORAGE_COLUMNAR_FILE_H_
