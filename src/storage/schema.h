#ifndef HILLVIEW_STORAGE_SCHEMA_H_
#define HILLVIEW_STORAGE_SCHEMA_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/value.h"

namespace hillview {

/// Name and kind of one column.
struct ColumnDescription {
  std::string name;
  DataKind kind = DataKind::kString;

  bool operator==(const ColumnDescription& other) const {
    return name == other.name && kind == other.kind;
  }
};

/// Ordered list of column descriptions with name lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDescription> columns)
      : columns_(std::move(columns)) {
    for (size_t i = 0; i < columns_.size(); ++i) {
      index_[columns_[i].name] = static_cast<int>(i);
    }
  }

  int num_columns() const { return static_cast<int>(columns_.size()); }
  const ColumnDescription& column(int i) const { return columns_[i]; }
  const std::vector<ColumnDescription>& columns() const { return columns_; }

  /// Index of the named column, or -1.
  int IndexOf(const std::string& name) const {
    auto it = index_.find(name);
    return it == index_.end() ? -1 : it->second;
  }

  std::optional<ColumnDescription> Find(const std::string& name) const {
    int i = IndexOf(name);
    if (i < 0) return std::nullopt;
    return columns_[i];
  }

  /// Returns a new schema with `desc` appended.
  Schema Append(const ColumnDescription& desc) const {
    std::vector<ColumnDescription> cols = columns_;
    cols.push_back(desc);
    return Schema(std::move(cols));
  }

  /// Returns the schema restricted to `names`, in the given order. Unknown
  /// names are skipped.
  Schema Project(const std::vector<std::string>& names) const {
    std::vector<ColumnDescription> cols;
    for (const auto& n : names) {
      int i = IndexOf(n);
      if (i >= 0) cols.push_back(columns_[i]);
    }
    return Schema(std::move(cols));
  }

  bool operator==(const Schema& other) const {
    return columns_ == other.columns_;
  }

 private:
  std::vector<ColumnDescription> columns_;
  std::unordered_map<std::string, int> index_;
};

}  // namespace hillview

#endif  // HILLVIEW_STORAGE_SCHEMA_H_
