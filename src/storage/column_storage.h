#ifndef HILLVIEW_STORAGE_COLUMN_STORAGE_H_
#define HILLVIEW_STORAGE_COLUMN_STORAGE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "storage/mmap_file.h"

namespace hillview {

/// Storage-backend seam for a column's typed payload: either a heap-resident
/// vector (what builders and streaming file reads produce) or a zero-copy
/// span over a mapped columnar-file segment. Scans consume only
/// data()/size() — the RawData() contract scan.h's devirtualized loops are
/// built on — so the two backends are interchangeable without touching any
/// sketch, and a later compressed-on-disk backend only has to produce the
/// same span.
template <typename T>
class ColumnStorage {
 public:
  ColumnStorage() = default;

  /// Heap backend: the storage owns the vector.
  explicit ColumnStorage(std::vector<T> owned) : owned_(std::move(owned)) {}

  /// Mapped backend: a view over `segment` (which keeps the mapping alive).
  /// `data` must point into the segment and stay valid as long as the file
  /// mapping does; the bytes are served straight from the page cache.
  ColumnStorage(const T* data, size_t size, MappedSegment segment)
      : view_(data), view_size_(size), segment_(std::move(segment)) {}

  const T* data() const { return view_ != nullptr ? view_ : owned_.data(); }
  size_t size() const { return view_ != nullptr ? view_size_ : owned_.size(); }
  T operator[](size_t i) const { return data()[i]; }

  bool mapped() const { return segment_.valid(); }
  const MappedSegment& segment() const { return segment_; }

  /// Heap bytes owned by this storage (0 for the mapped backend).
  size_t HeapBytes() const { return owned_.capacity() * sizeof(T); }
  /// File bytes this storage maps (0 for the heap backend).
  size_t MappedBytes() const { return mapped() ? segment_.bytes : 0; }

 private:
  std::vector<T> owned_;
  const T* view_ = nullptr;
  size_t view_size_ = 0;
  MappedSegment segment_;
};

/// Sorted string dictionary behind the same seam: entries either live in an
/// owned vector of strings, or are offset/length views into one contiguous
/// string pool inside a mapped file (the disk_vector/string_pool idiom), so
/// reopening a columnar file copies no string bytes at all.
///
/// Codes at or beyond size() are treated as missing by every consumer (the
/// central corrupt-tolerant policy: StringColumn::kMissingCode is the max
/// uint32, so the legacy sentinel is just the far end of the same rule).
class StringDictionary {
 public:
  StringDictionary() = default;

  /// Heap backend. Entries must already be sorted ascending.
  explicit StringDictionary(std::vector<std::string> entries)
      : owned_(std::move(entries)) {}

  /// Mapped backend: `offsets` holds count+1 byte offsets into `pool`
  /// (entry i is pool[offsets[i], offsets[i+1])); both point into `segment`.
  StringDictionary(const char* pool, const uint32_t* offsets, uint32_t count,
                   MappedSegment segment)
      : pool_(pool),
        offsets_(offsets),
        view_count_(count),
        segment_(std::move(segment)) {}

  uint32_t size() const {
    return pool_ != nullptr ? view_count_
                            : static_cast<uint32_t>(owned_.size());
  }
  bool empty() const { return size() == 0; }

  std::string_view operator[](uint32_t i) const {
    if (pool_ != nullptr) {
      return {pool_ + offsets_[i], offsets_[i + 1] - offsets_[i]};
    }
    return owned_[i];
  }

  /// First code whose entry is >= s (dictionaries are sorted, so code order
  /// equals alphabetical order). Returns size() when all entries are smaller.
  uint32_t LowerBound(std::string_view s) const {
    uint32_t lo = 0;
    uint32_t hi = size();
    while (lo < hi) {
      uint32_t mid = lo + (hi - lo) / 2;
      if ((*this)[mid] < s) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  bool mapped() const { return segment_.valid(); }
  const MappedSegment& segment() const { return segment_; }

  size_t MemoryBytes() const {
    size_t bytes = 0;
    for (const auto& s : owned_) bytes += s.size() + sizeof(std::string);
    return bytes;
  }
  size_t MappedBytes() const { return mapped() ? segment_.bytes : 0; }

 private:
  std::vector<std::string> owned_;
  const char* pool_ = nullptr;
  const uint32_t* offsets_ = nullptr;
  uint32_t view_count_ = 0;
  MappedSegment segment_;
};

}  // namespace hillview

#endif  // HILLVIEW_STORAGE_COLUMN_STORAGE_H_
