#include "storage/membership.h"

#include <algorithm>

namespace hillview {

const std::vector<uint64_t>& IMembershipSet::bitmap_words() const {
  static const std::vector<uint64_t> kEmpty;
  return kEmpty;
}

const std::vector<uint32_t>& IMembershipSet::sparse_rows() const {
  static const std::vector<uint32_t> kEmpty;
  return kEmpty;
}

DenseMembership::DenseMembership(std::vector<uint64_t> words, uint32_t universe)
    : words_(std::move(words)), universe_(universe) {
  uint64_t count = 0;
  for (uint64_t w : words_) count += __builtin_popcountll(w);
  count_ = static_cast<uint32_t>(count);
}

SparseMembership::SparseMembership(std::vector<uint32_t> rows,
                                   uint32_t universe)
    : rows_(std::move(rows)), universe_(universe) {}

bool SparseMembership::Contains(uint32_t row) const {
  return std::binary_search(rows_.begin(), rows_.end(), row);
}

MembershipPtr FilterMembership(const IMembershipSet& base,
                               const std::function<bool(uint32_t)>& pred) {
  uint32_t universe = base.universe_size();
  std::vector<uint32_t> hits;
  ForEachRow(base, [&](uint32_t row) {
    if (pred(row)) hits.push_back(row);
  });
  double density =
      universe == 0 ? 0.0 : static_cast<double>(hits.size()) / universe;
  if (density < kSparseDensityCutoff) {
    return std::make_shared<SparseMembership>(std::move(hits), universe);
  }
  std::vector<uint64_t> words((universe + 63) / 64, 0);
  for (uint32_t row : hits) words[row >> 6] |= (1ULL << (row & 63));
  return std::make_shared<DenseMembership>(std::move(words), universe);
}

}  // namespace hillview
