#ifndef HILLVIEW_STORAGE_MEMBERSHIP_H_
#define HILLVIEW_STORAGE_MEMBERSHIP_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "storage/bit_gather.h"
#include "util/random.h"

namespace hillview {

/// Identifies which rows of a partition belong to a (possibly filtered) table
/// (§5.6). Derived tables share column data and differ only in this set.
///
/// Representations: a full set (no filtering), a dense bitmap, or a sparse
/// sorted row list — chosen by density, as in the paper ("Dense tables that
/// contain most rows store a bitmap, while sparse tables store a hashset").
class IMembershipSet {
 public:
  enum class Kind { kFull, kDense, kSparse };

  virtual ~IMembershipSet() = default;

  virtual Kind kind() const = 0;
  /// Number of rows in the underlying partition (the columns' length).
  virtual uint32_t universe_size() const = 0;
  /// Number of member rows.
  virtual uint32_t size() const = 0;
  virtual bool Contains(uint32_t row) const = 0;
  virtual size_t MemoryBytes() const = 0;

  // Representation accessors for devirtualized hot loops; each is only valid
  // for the corresponding kind.
  virtual const std::vector<uint64_t>& bitmap_words() const;
  virtual const std::vector<uint32_t>& sparse_rows() const;
};

using MembershipPtr = std::shared_ptr<const IMembershipSet>;

/// All rows [0, n) are members.
class FullMembership final : public IMembershipSet {
 public:
  explicit FullMembership(uint32_t n) : n_(n) {}
  Kind kind() const override { return Kind::kFull; }
  uint32_t universe_size() const override { return n_; }
  uint32_t size() const override { return n_; }
  bool Contains(uint32_t row) const override { return row < n_; }
  size_t MemoryBytes() const override { return sizeof(*this); }

 private:
  uint32_t n_;
};

/// Bitmap membership for dense filters.
class DenseMembership final : public IMembershipSet {
 public:
  DenseMembership(std::vector<uint64_t> words, uint32_t universe);

  Kind kind() const override { return Kind::kDense; }
  uint32_t universe_size() const override { return universe_; }
  uint32_t size() const override { return count_; }
  bool Contains(uint32_t row) const override {
    if ((row >> 6) >= words_.size()) return false;
    return (words_[row >> 6] >> (row & 63)) & 1;
  }
  size_t MemoryBytes() const override {
    return words_.size() * sizeof(uint64_t);
  }
  const std::vector<uint64_t>& bitmap_words() const override { return words_; }

 private:
  std::vector<uint64_t> words_;
  uint32_t universe_;
  uint32_t count_;
};

/// Sorted row-id list for sparse filters.
class SparseMembership final : public IMembershipSet {
 public:
  /// `rows` must be sorted ascending and duplicate-free.
  SparseMembership(std::vector<uint32_t> rows, uint32_t universe);

  Kind kind() const override { return Kind::kSparse; }
  uint32_t universe_size() const override { return universe_; }
  uint32_t size() const override { return static_cast<uint32_t>(rows_.size()); }
  bool Contains(uint32_t row) const override;
  size_t MemoryBytes() const override {
    return rows_.size() * sizeof(uint32_t);
  }
  const std::vector<uint32_t>& sparse_rows() const override { return rows_; }

 private:
  std::vector<uint32_t> rows_;
  uint32_t universe_;
};

/// Builds the best representation for the rows matching `pred` within `base`.
/// Density below kSparseDensityCutoff selects the sparse representation.
MembershipPtr FilterMembership(const IMembershipSet& base,
                               const std::function<bool(uint32_t)>& pred);

inline constexpr double kSparseDensityCutoff = 1.0 / 32.0;

/// Calls `fn(row)` for every member row in increasing order. Dispatches once
/// on the representation so the per-row loop is branch-predictable.
template <typename Fn>
void ForEachRow(const IMembershipSet& m, Fn&& fn) {
  switch (m.kind()) {
    case IMembershipSet::Kind::kFull: {
      uint32_t n = m.size();
      for (uint32_t r = 0; r < n; ++r) fn(r);
      return;
    }
    case IMembershipSet::Kind::kDense: {
      const auto& words = m.bitmap_words();
      for (size_t w = 0; w < words.size(); ++w) {
        uint64_t bits = words[w];
        uint32_t base = static_cast<uint32_t>(w << 6);
        if (bits == ~0ULL) {
          for (uint32_t i = 0; i < 64; ++i) fn(base + i);
          continue;
        }
        // Partially-set word: the gather expansion keeps the per-row loop
        // free of the serial ctz dependency (the strided-bitmap fast path).
        ForEachSetBit(bits, base, fn);
      }
      return;
    }
    case IMembershipSet::Kind::kSparse: {
      for (uint32_t r : m.sparse_rows()) fn(r);
      return;
    }
  }
}

/// Samples each member row independently with probability `rate` and calls
/// `fn(row)` for the sampled rows, in increasing row order. Runs in expected
/// time proportional to the number of samples (plus bitmap skips), matching
/// §5.6's requirement that sampling "does not require reading each row".
///
/// Dense bitmaps are sampled by geometric skips over the universe followed by
/// a membership test; a universe row that is a member is kept, so members are
/// sampled at exactly `rate` ("for dense tables we walk randomly the bitmap
/// in increasing index order").
template <typename Fn>
void SampleRows(const IMembershipSet& m, double rate, uint64_t seed, Fn&& fn) {
  if (rate <= 0.0) return;
  Random rng(seed);
  if (rate >= 1.0) {
    ForEachRow(m, fn);
    return;
  }
  GeometricSkipper skipper(&rng, rate);
  switch (m.kind()) {
    case IMembershipSet::Kind::kFull: {
      uint64_t n = m.size();
      uint64_t r = skipper.Next();
      while (r < n) {
        fn(static_cast<uint32_t>(r));
        r += 1 + skipper.Next();
      }
      return;
    }
    case IMembershipSet::Kind::kDense: {
      uint64_t n = m.universe_size();
      uint64_t r = skipper.Next();
      while (r < n) {
        auto row = static_cast<uint32_t>(r);
        if (m.Contains(row)) fn(row);
        r += 1 + skipper.Next();
      }
      return;
    }
    case IMembershipSet::Kind::kSparse: {
      const auto& rows = m.sparse_rows();
      uint64_t n = rows.size();
      uint64_t i = skipper.Next();
      while (i < n) {
        fn(rows[i]);
        i += 1 + skipper.Next();
      }
      return;
    }
  }
}

}  // namespace hillview

#endif  // HILLVIEW_STORAGE_MEMBERSHIP_H_
