#include "storage/sort_key_cache.h"

#include <iterator>
#include <utility>

namespace hillview {

SortKeyCache::KeysPtr SortKeyCache::Get(SortKeyPlan& plan) {
  if (!plan.valid()) return nullptr;
  const std::string key = plan.CacheKey();
  MutexLock lock(mutex_);
  return LookupLocked(key, plan);
}

SortKeyCache::KeysPtr SortKeyCache::LookupLocked(const std::string& key,
                                                 SortKeyPlan& plan,
                                                 bool count_miss) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    if (count_miss) ++misses_;
    AdoptEncodingsLocked(key, plan);
    return nullptr;
  }
  // Validate liveness: every column the entry was built from must still be
  // the exact object the querying plan bound. An expired weak_ptr means the
  // column died and the address may have been recycled; drop the entry.
  const auto& plan_columns = plan.key_columns();
  bool live = it->second.columns.size() == plan_columns.size();
  for (size_t i = 0; live && i < plan_columns.size(); ++i) {
    auto locked = it->second.columns[i].lock();
    live = locked != nullptr && locked.get() == plan_columns[i].get();
  }
  if (!live) {
    bytes_used_ -= it->second.bytes;
    lru_.erase(it->second.lru_position);
    entries_.erase(it);
    ++evictions_;
    if (count_miss) ++misses_;
    // Dead columns also invalidate the side-cached snapshot (same key, same
    // liveness rule) — no adoption attempt.
    encoding_entries_.erase(key);
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_position);
  ++hits_;
  plan.AdoptEncodings(it->second.encodings);
  return it->second.keys;
}

void SortKeyCache::Put(const SortKeyPlan& plan, KeysPtr keys,
                       uint64_t generation) {
  if (!plan.valid() || !plan.encodings_ready() || keys == nullptr) return;
  const size_t bytes = keys->size() * sizeof(uint64_t);
  const std::string key = plan.CacheKey();
  std::vector<std::weak_ptr<const IColumn>> columns(
      plan.key_columns().begin(), plan.key_columns().end());
  MutexLock lock(mutex_);
  if (generation != generation_) return;  // raced a Clear(): state is stale
  // The encodings are worth keeping even when the keys are not cacheable:
  // later scans of the same view then skip the packed min/max pre-passes.
  RecordEncodingsLocked(key, plan);
  if (bytes > max_bytes_) return;  // would evict the whole cache for one view
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    bytes_used_ -= it->second.bytes;
    it->second.keys = std::move(keys);
    it->second.encodings = plan.encodings();
    it->second.columns = std::move(columns);
    it->second.bytes = bytes;
    bytes_used_ += bytes;
    lru_.splice(lru_.begin(), lru_, it->second.lru_position);
    EvictOverBudgetLocked();
    return;
  }
  lru_.push_front(key);
  entries_[key] = Entry{std::move(keys), plan.encodings(), std::move(columns),
                        bytes, lru_.begin()};
  bytes_used_ += bytes;
  DropDeadEntriesLocked();
  EvictOverBudgetLocked();
}

void SortKeyCache::DropDeadEntriesLocked() {
  // Entries whose source columns died can never be served again (their
  // pointer-derived key cannot match a live plan, and the liveness check
  // would reject them) — e.g. keys built by a scan that raced an eviction
  // and finished against the pre-eviction table. Sweeping them on insert
  // keeps dead state from squatting on the byte budget. Entry counts are
  // per-(columns, order) view — dozens, not thousands — so the sweep is
  // trivial next to the key build that preceded the Put.
  for (auto it = entries_.begin(); it != entries_.end();) {
    bool live = true;
    for (const auto& column : it->second.columns) {
      if (column.expired()) {
        live = false;
        break;
      }
    }
    if (live) {
      ++it;
      continue;
    }
    bytes_used_ -= it->second.bytes;
    lru_.erase(it->second.lru_position);
    it = entries_.erase(it);
    ++evictions_;
  }
}

void SortKeyCache::Put(const SortKeyPlan& plan, KeysPtr keys) {
  Put(plan, std::move(keys), generation());
}

void SortKeyCache::RecordEncodingsLocked(const std::string& key,
                                         const SortKeyPlan& plan) {
  if (encoding_entries_.size() >= kMaxEncodingEntries &&
      encoding_entries_.find(key) == encoding_entries_.end()) {
    for (auto it = encoding_entries_.begin();
         it != encoding_entries_.end();) {
      bool dead = false;
      for (const auto& column : it->second.columns) {
        if (column.expired()) {
          dead = true;
          break;
        }
      }
      it = dead ? encoding_entries_.erase(it) : std::next(it);
    }
    // Still full after the sweep: drop an arbitrary live entry. Snapshots
    // cost one O(n) pre-pass to rebuild, so recency bookkeeping is not
    // worth carrying for a cap this size.
    if (encoding_entries_.size() >= kMaxEncodingEntries) {
      encoding_entries_.erase(encoding_entries_.begin());
    }
  }
  encoding_entries_[key] =
      EncodingEntry{plan.encodings(),
                    std::vector<std::weak_ptr<const IColumn>>(
                        plan.key_columns().begin(), plan.key_columns().end())};
}

bool SortKeyCache::AdoptEncodingsLocked(const std::string& key,
                                        SortKeyPlan& plan) {
  auto it = encoding_entries_.find(key);
  if (it == encoding_entries_.end()) return false;
  const auto& plan_columns = plan.key_columns();
  bool live = it->second.columns.size() == plan_columns.size();
  for (size_t i = 0; live && i < plan_columns.size(); ++i) {
    auto locked = it->second.columns[i].lock();
    live = locked != nullptr && locked.get() == plan_columns[i].get();
  }
  if (!live) {
    encoding_entries_.erase(it);
    return false;
  }
  plan.AdoptEncodings(it->second.encodings);
  ++encoding_hits_;
  return true;
}

SortKeyCache::KeysPtr SortKeyCache::GetOrBuild(SortKeyPlan& plan,
                                               bool build_allowed) {
  if (!plan.valid()) return nullptr;
  const std::string key = plan.CacheKey();
  bool first_lookup = true;
  // Each round holds the lock for lookup / parking / builder election, then
  // releases it for the build itself — structured as one scoped lock per
  // round so the analysis can verify the handoff (the pre-annotation code
  // wove a single unique_lock through all three phases).
  while (true) {
    std::shared_ptr<InFlightBuild> build;
    uint64_t generation = 0;
    std::function<void()> hook;
    {
      MutexLock lock(mutex_);
      // Retry rounds (after a failed in-flight build) are the same logical
      // call — they must not inflate the miss counter a second time.
      KeysPtr cached = LookupLocked(key, plan, first_lookup);
      first_lookup = false;
      if (cached != nullptr) return cached;
      auto it = in_flight_.find(key);
      if (it != in_flight_.end()) {
        // Someone is already paying for this exact build. Callers that would
        // have built anyway park until it lands; callers whose density gate
        // said "don't build" fall back to the virtual path immediately — for
        // them (a low-rate sample over a huge partition) the cheap comparator
        // sort finishes long before an O(universe) key pass would, so parking
        // would be a latency regression, not a saving.
        if (!build_allowed) return nullptr;
        // The result is adopted from the in-flight slot, not the cache, so
        // waiters are served even when the vector was too large to cache or
        // a Clear() raced the insert.
        std::shared_ptr<InFlightBuild> in_flight = it->second;
        ++waiters_;
        while (!in_flight->done) build_done_.Wait(mutex_);
        --waiters_;
        if (in_flight->keys != nullptr) {
          plan.AdoptEncodings(in_flight->encodings);
          ++hits_;
          ++coalesced_builds_;
          return in_flight->keys;
        }
        // The build unwound without producing keys; loop and possibly become
        // the next builder.
        continue;
      }
      if (!build_allowed) return nullptr;
      build = std::make_shared<InFlightBuild>();
      in_flight_[key] = build;
      generation = generation_;
      hook = in_flight_hook_;
    }
    // This thread is the elected builder; the key pass runs unlocked.
    KeysPtr keys;
    try {
      if (hook) hook();
      keys = plan.BuildKeys();
      Put(plan, keys, generation);  // generation-checked vs Clear() races
    } catch (...) {
      // Never strand the in-flight marker: waiters would park forever and
      // every later scroll of this view would park behind them.
      MutexLock lock(mutex_);
      build->done = true;
      in_flight_.erase(key);
      build_done_.NotifyAll();
      throw;
    }
    MutexLock lock(mutex_);
    build->done = true;
    build->keys = keys;
    build->encodings = plan.encodings();
    in_flight_.erase(key);
    build_done_.NotifyAll();
    return keys;
  }
}

void SortKeyCache::SetInFlightHookForTest(std::function<void()> hook) {
  MutexLock lock(mutex_);
  in_flight_hook_ = std::move(hook);
}

void SortKeyCache::EvictOverBudgetLocked() {
  while (bytes_used_ > max_bytes_ && !lru_.empty()) {
    auto it = entries_.find(lru_.back());
    bytes_used_ -= it->second.bytes;
    entries_.erase(it);
    lru_.pop_back();
    ++evictions_;
  }
}

void SortKeyCache::Clear() {
  MutexLock lock(mutex_);
  entries_.clear();
  lru_.clear();
  encoding_entries_.clear();
  bytes_used_ = 0;
  ++generation_;
}

uint64_t SortKeyCache::generation() const {
  MutexLock lock(mutex_);
  return generation_;
}

SortKeyCache::Stats SortKeyCache::Snapshot() const {
  MutexLock lock(mutex_);
  Stats stats;
  stats.entries = entries_.size();
  stats.bytes_used = bytes_used_;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.evictions = evictions_;
  stats.coalesced_builds = coalesced_builds_;
  stats.waiters = waiters_;
  stats.encoding_hits = encoding_hits_;
  return stats;
}

}  // namespace hillview
