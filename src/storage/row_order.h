#ifndef HILLVIEW_STORAGE_ROW_ORDER_H_
#define HILLVIEW_STORAGE_ROW_ORDER_H_

#include <string>
#include <vector>

#include "storage/table.h"

namespace hillview {

/// One column of a sort order (§3.3: "Sort by a set of columns").
struct ColumnSortOrientation {
  std::string column;
  bool ascending = true;
};

/// A lexicographic sort order over several columns. Rows are totally ordered
/// by appending the physical row id as the final tiebreaker, which makes
/// next-items pagination deterministic across runs and replays.
class RecordOrder {
 public:
  RecordOrder() = default;
  explicit RecordOrder(std::vector<ColumnSortOrientation> orientations)
      : orientations_(std::move(orientations)) {}

  const std::vector<ColumnSortOrientation>& orientations() const {
    return orientations_;
  }

  std::vector<std::string> ColumnNames() const {
    std::vector<std::string> names;
    names.reserve(orientations_.size());
    for (const auto& o : orientations_) names.push_back(o.column);
    return names;
  }

  bool empty() const { return orientations_.empty(); }

 private:
  std::vector<ColumnSortOrientation> orientations_;
};

/// Compares rows of one table under a RecordOrder. Binds the column pointers
/// once so the per-comparison work is just virtual CompareRows calls.
class RowComparator {
 public:
  RowComparator(const Table& table, const RecordOrder& order);

  /// Three-way comparison of two member rows (no tiebreaker).
  int Compare(uint32_t a, uint32_t b) const;

  /// Strict weak ordering with the row-id tiebreaker.
  bool Less(uint32_t a, uint32_t b) const {
    int c = Compare(a, b);
    if (c != 0) return c < 0;
    return a < b;
  }

 private:
  std::vector<const IColumn*> columns_;
  std::vector<bool> ascending_;
};

/// Compares a table row against a materialized key (cell values in the sort
/// order's column sequence). Used by next-items to resume after row R, whose
/// cells arrive from the client as values, not row ids.
int CompareRowToKey(const Table& table, const RecordOrder& order, uint32_t row,
                    const std::vector<Value>& key);

}  // namespace hillview

#endif  // HILLVIEW_STORAGE_ROW_ORDER_H_
