#include "storage/value.h"

#include <cstdio>

namespace hillview {

const char* DataKindName(DataKind kind) {
  switch (kind) {
    case DataKind::kInt:
      return "Int";
    case DataKind::kDouble:
      return "Double";
    case DataKind::kDate:
      return "Date";
    case DataKind::kString:
      return "String";
    case DataKind::kCategory:
      return "Category";
  }
  return "Unknown";
}

namespace {

// Orders the variant alternatives for cross-type comparison: numbers first,
// then strings, then missing (missing-last).
int TypeRank(const Value& v) {
  if (std::holds_alternative<std::monostate>(v)) return 2;
  if (std::holds_alternative<std::string>(v)) return 1;
  return 0;  // int64 or double: numeric
}

double AsDouble(const Value& v) {
  if (const auto* i = std::get_if<int64_t>(&v)) return static_cast<double>(*i);
  return std::get<double>(v);
}

}  // namespace

int CompareValues(const Value& a, const Value& b) {
  int ra = TypeRank(a), rb = TypeRank(b);
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (ra) {
    case 0: {
      // Numeric: compare exactly when both are int64 to avoid precision loss.
      const auto* ia = std::get_if<int64_t>(&a);
      const auto* ib = std::get_if<int64_t>(&b);
      if (ia != nullptr && ib != nullptr) {
        if (*ia != *ib) return *ia < *ib ? -1 : 1;
        return 0;
      }
      double da = AsDouble(a), db = AsDouble(b);
      if (da != db) return da < db ? -1 : 1;
      return 0;
    }
    case 1: {
      const std::string& sa = std::get<std::string>(a);
      const std::string& sb = std::get<std::string>(b);
      int c = sa.compare(sb);
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    default:
      return 0;  // both missing
  }
}

std::string ValueToString(const Value& v) {
  if (std::holds_alternative<std::monostate>(v)) return "";
  if (const auto* i = std::get_if<int64_t>(&v)) return std::to_string(*i);
  if (const auto* d = std::get_if<double>(&v)) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", *d);
    return buf;
  }
  return std::get<std::string>(v);
}

}  // namespace hillview
