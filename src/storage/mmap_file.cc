#include "storage/mmap_file.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <vector>

#include "storage/membership.h"

#if !defined(_WIN32)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace hillview {

#if !defined(_WIN32)

namespace {

uint64_t PageSize() {
  static const uint64_t kPage = static_cast<uint64_t>(sysconf(_SC_PAGESIZE));
  return kPage;
}

}  // namespace

Result<std::shared_ptr<MappedFile>> MappedFile::Open(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);  // NOLINT(cppcoreguidelines-pro-type-vararg)
  if (fd < 0) {
    return Status::IoError("cannot open '" + path + "': " +
                           std::strerror(errno));
  }
  struct stat st = {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IoError("cannot stat '" + path + "': " +
                           std::strerror(errno));
  }
  auto size = static_cast<uint64_t>(st.st_size);
  if (size == 0) {
    // mmap(len=0) is EINVAL; an empty file still gets a (useless but valid)
    // MappedFile so callers can report a format error instead of a map error.
    ::close(fd);
    return std::shared_ptr<MappedFile>(new MappedFile(path, nullptr, 0));
  }
  void* base = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping keeps its own reference to the file
  if (base == MAP_FAILED) {
    return Status::IoError("cannot mmap '" + path + "': " +
                           std::strerror(errno));
  }
  return std::shared_ptr<MappedFile>(
      new MappedFile(path, static_cast<const uint8_t*>(base), size));
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
}

void MappedFile::Advise(uint64_t offset, uint64_t bytes, Advice advice) const {
  if (data_ == nullptr || bytes == 0 || offset >= size_) return;
  bytes = std::min(bytes, size_ - offset);
  // madvise wants a page-aligned start; round the range outward.
  const uint64_t page = PageSize();
  uint64_t begin = offset & ~(page - 1);
  uint64_t end = std::min<uint64_t>(size_, (offset + bytes + page - 1) & ~(page - 1));
  int native = MADV_NORMAL;
  switch (advice) {
    case Advice::kNormal:
      native = MADV_NORMAL;
      break;
    case Advice::kSequential:
      native = MADV_SEQUENTIAL;
      break;
    case Advice::kRandom:
      native = MADV_RANDOM;
      break;
    case Advice::kWillNeed:
      native = MADV_WILLNEED;
      break;
    case Advice::kDontNeed:
      native = MADV_DONTNEED;
      break;
  }
  int rc = ::madvise(const_cast<uint8_t*>(data_) + begin,
                     static_cast<size_t>(end - begin), native);
  MutexLock lock(mutex_);
  if (rc != 0) {
    ++advise_failures_;
    return;
  }
  switch (advice) {
    case Advice::kSequential:
      ++sequential_advises_;
      break;
    case Advice::kWillNeed:
      ++willneed_advises_;
      willneed_bytes_ += end - begin;
      break;
    default:
      break;
  }
}

MappedFile::Stats MappedFile::Snapshot() const {
  Stats stats;
  stats.mapped_bytes = size_;
  if (data_ != nullptr) {
    // mincore gives one byte per page; walk the mapping in bounded chunks so
    // the scratch vector stays small even for very large files.
    const uint64_t page = PageSize();
    constexpr size_t kChunkPages = 1 << 16;  // 256 MiB of 4K pages per call
    std::vector<unsigned char> resident(kChunkPages);
    uint64_t pages = (size_ + page - 1) / page;
    for (uint64_t first = 0; first < pages; first += kChunkPages) {
      size_t count = static_cast<size_t>(
          std::min<uint64_t>(kChunkPages, pages - first));
#if defined(__linux__)
      using MincoreVec = unsigned char*;
#else
      using MincoreVec = char*;  // BSD/macOS prototype takes char*
#endif
      if (::mincore(const_cast<uint8_t*>(data_) + first * page,
                    static_cast<size_t>(count) * page,
                    reinterpret_cast<MincoreVec>(resident.data())) != 0) {
        break;
      }
      for (size_t i = 0; i < count; ++i) {
        if (resident[i] & 1) stats.resident_bytes += page;
      }
    }
  }
  MutexLock lock(mutex_);
  stats.sequential_advises = sequential_advises_;
  stats.willneed_advises = willneed_advises_;
  stats.willneed_bytes = willneed_bytes_;
  stats.advise_failures = advise_failures_;
  return stats;
}

void AdviseForScan(const MappedSegment& segment, const IMembershipSet& members,
                   size_t element_bytes) {
  if (!segment.valid() || segment.bytes == 0 || element_bytes == 0) return;
  const MappedFile& file = *segment.file;
  switch (members.kind()) {
    case IMembershipSet::Kind::kFull:
    case IMembershipSet::Kind::kDense:
      // Dense bitmaps still touch most pages in row order; sequential
      // readahead covers both.
      file.Advise(segment.offset, segment.bytes, MappedFile::Advice::kSequential);
      return;
    case IMembershipSet::Kind::kSparse: {
      const std::vector<uint32_t>& rows = members.sparse_rows();
      if (rows.empty()) return;
      const uint64_t page = PageSize();
      // Coalesce the sorted member rows into page-granular ranges and batch
      // them as WILLNEED. If the scan is so scattered it would need more
      // madvise calls than kMaxSparseAdviseRanges, one spanning WILLNEED is
      // cheaper than the syscall storm.
      uint64_t run_begin = 0;
      uint64_t run_end = 0;  // exclusive, page aligned, file offsets
      size_t ranges = 0;
      bool open = false;
      for (uint32_t row : rows) {
        uint64_t byte = segment.offset +
                        static_cast<uint64_t>(row) * element_bytes;
        uint64_t lo = byte & ~(page - 1);
        uint64_t hi = (byte + element_bytes + page - 1) & ~(page - 1);
        if (open && lo <= run_end) {
          run_end = std::max(run_end, hi);
          continue;
        }
        if (open) {
          file.Advise(run_begin, run_end - run_begin,
                      MappedFile::Advice::kWillNeed);
          if (++ranges >= kMaxSparseAdviseRanges) {
            uint64_t span_end = segment.offset + segment.bytes;
            file.Advise(lo, span_end > lo ? span_end - lo : 0,
                        MappedFile::Advice::kWillNeed);
            return;
          }
        }
        run_begin = lo;
        run_end = hi;
        open = true;
      }
      if (open) {
        file.Advise(run_begin, run_end - run_begin,
                    MappedFile::Advice::kWillNeed);
      }
      return;
    }
  }
}

#else  // _WIN32: no mmap; the heap backend remains the only storage backend.

Result<std::shared_ptr<MappedFile>> MappedFile::Open(const std::string& path) {
  return Status::FailedPrecondition("mmap storage backend unsupported on this platform ('" +
                                    path + "')");
}

MappedFile::~MappedFile() = default;

void MappedFile::Advise(uint64_t, uint64_t, Advice) const {}

MappedFile::Stats MappedFile::Snapshot() const {
  Stats stats;
  stats.mapped_bytes = size_;
  return stats;
}

void AdviseForScan(const MappedSegment&, const IMembershipSet&, size_t) {}

#endif

}  // namespace hillview
