#ifndef HILLVIEW_STORAGE_SORT_KEY_H_
#define HILLVIEW_STORAGE_SORT_KEY_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "storage/row_order.h"
#include "storage/table.h"

namespace hillview {

/// Typed sort-key extraction: turns the *first* column of a RecordOrder into
/// fixed-width normalized keys so order-based sketches (next-items top-K,
/// quantile sampling) compare rows with one integer comparison instead of a
/// virtual RowComparator::Less per comparison.
///
/// The encoding is order-preserving per physical layout:
///
///   int32   (v ^ 0x80000000) << 32          (sign-bias, shifted to 64 bits)
///   int64   v ^ 0x8000000000000000          (sign-bias; INT64_MAX saturates)
///   double  IEEE-754 total-order trick: negative values complement all
///           bits, positive values set the sign bit (NaN is missing)
///   codes   the dictionary code (dictionaries are sorted, so code order is
///           alphabetical order)
///
/// Missing values encode as UINT64_MAX, matching IColumn::CompareRows'
/// missing-last contract; a descending orientation complements every key,
/// which reverses the order and therefore places missing first — exactly what
/// `ascending ? c : -c` does in RowComparator.
///
/// Key comparison is a *refinement gate*, not the full order: key(a) < key(b)
/// implies row a precedes row b on the first order column; equal keys mean
/// "tied on the first column" and the comparison falls back to the virtual
/// path for the remaining order columns (and, for the rare saturated int64
/// encoding, the first column itself). Single-column orders over exactly
/// encodable layouts never take the fallback.
class SortKeyPlan {
 public:
  /// Materializes keys for every universe row of `table` under `order`.
  /// `valid()` is false when the first effective order column is absent or
  /// has no raw layout; callers then use the virtual RowComparator path.
  SortKeyPlan(const Table& table, const RecordOrder& order);

  bool valid() const { return valid_; }
  const std::vector<uint64_t>& keys() const { return keys_; }

  /// True when equal keys imply equal first-column values (everything except
  /// the saturated int64 edge), i.e. the tie-break may skip the first column.
  bool exact() const { return exact_; }

  /// True when key order (plus row-id tiebreak) is the complete record
  /// order: a single effective order column with an exact encoding.
  bool TotalOrder() const { return tie_order_.empty(); }

  /// Encodes a materialized start-key cell (the first effective order
  /// column's value) into the key space, such that
  ///   keys()[r] <  *enc  =>  row r precedes the start key,
  ///   keys()[r] >  *enc  =>  row r follows the start key,
  /// and equality requires a full CompareRowToKey. Returns nullopt when the
  /// value does not embed exactly (callers fall back to per-row compares).
  std::optional<uint64_t> EncodeStartCell(const Value& v) const;

  /// Index into the order's orientations of the first effective column
  /// (orientations naming unknown columns are skipped, as in RowComparator).
  size_t first_column_index() const { return first_index_; }

  /// The orientations a key tie must still compare through the virtual path:
  /// the columns after the first for exact encodings, or the whole effective
  /// order when the first column's encoding saturated. Empty means key order
  /// (plus row id) is the complete record order.
  const std::vector<ColumnSortOrientation>& tie_order() const {
    return tie_order_;
  }

 private:
  bool valid_ = false;
  bool exact_ = true;
  bool ascending_ = true;
  DataKind kind_ = DataKind::kDouble;
  const IColumn* column_ = nullptr;  // first effective order column
  size_t first_index_ = 0;
  std::vector<uint64_t> keys_;
  std::vector<ColumnSortOrientation> tail_;
  std::vector<ColumnSortOrientation> tie_order_;
};

/// Row comparator over a SortKeyPlan: one integer comparison on the normal
/// keys, then the virtual tie-break order only on key ties. Mirrors
/// RowComparator's Compare/Less contract over the full record order.
class KeyComparator {
 public:
  KeyComparator(const Table& table, const SortKeyPlan& plan)
      : keys_(plan.keys().data()),
        has_tie_(!plan.tie_order().empty()),
        tie_(table, RecordOrder(plan.tie_order())) {}

  /// Three-way comparison (no row-id tiebreaker), identical in result to
  /// RowComparator::Compare over the full order.
  int Compare(uint32_t a, uint32_t b) const {
    uint64_t ka = keys_[a], kb = keys_[b];
    if (ka != kb) return ka < kb ? -1 : 1;
    return has_tie_ ? tie_.Compare(a, b) : 0;
  }

  /// Strict weak ordering with the row-id tiebreaker.
  bool Less(uint32_t a, uint32_t b) const {
    int c = Compare(a, b);
    if (c != 0) return c < 0;
    return a < b;
  }

  uint64_t Key(uint32_t row) const { return keys_[row]; }

 private:
  const uint64_t* keys_;
  bool has_tie_;
  RowComparator tie_;
};

}  // namespace hillview

#endif  // HILLVIEW_STORAGE_SORT_KEY_H_
