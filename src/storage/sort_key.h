#ifndef HILLVIEW_STORAGE_SORT_KEY_H_
#define HILLVIEW_STORAGE_SORT_KEY_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "storage/row_order.h"
#include "storage/table.h"

namespace hillview {

/// Typed sort-key extraction: turns the leading column(s) of a RecordOrder
/// into fixed-width normalized keys so order-based sketches (next-items
/// top-K, quantile sampling) compare rows with one integer comparison
/// instead of a virtual RowComparator::Less per comparison.
///
/// Two key shapes exist, selected by the plan:
///
/// **Single 64-bit keys** (the default) encode the first effective order
/// column, order-preserving per physical layout:
///
///   int32   (v ^ 0x80000000) << 32          (sign-bias, shifted to 64 bits)
///   int64   v ^ 0x8000000000000000          (sign-bias; INT64_MAX saturates)
///   double  IEEE-754 total-order trick: negative values complement all
///           bits, positive values set the sign bit (NaN is missing)
///   codes   the dictionary code (dictionaries are sorted, so code order is
///           alphabetical order)
///
/// **Packed 32+32 keys** cover the first *two* effective order columns when
/// both have a narrow layout (int32, date/int64, dictionary codes): each
/// column maps through a monotone per-column transform
/// `(v - min) >> shift` into 32 bits (min/shift derived from the column's
/// value range in a pre-pass), the first column in the high half and the
/// second in the low half, so multi-column ties resolve with the same single
/// integer comparison. The transform is *exact* (injective on present
/// values) when shift == 0; an inexact component simply widens the tie set —
/// equal keys fall back to the virtual comparison. The first component must
/// be exact for packing (a lossy high half would let the low half override
/// the true first-column order); a range too wide for 32 bits there falls
/// back to the single-key shape.
///
/// Missing values encode as the all-ones component/key, matching
/// IColumn::CompareRows' missing-last contract; a descending orientation
/// complements the column's component, which reverses its order and places
/// missing first — exactly what `ascending ? c : -c` does in RowComparator.
///
/// Key comparison is a *refinement gate*, not the full order: key(a) < key(b)
/// implies row a precedes row b on the encoded column prefix; equal keys mean
/// "tied on the prefix" and the comparison falls back to the virtual path for
/// the remaining order columns (plus any inexactly-encoded prefix columns).
///
/// Construction is split from materialization so a worker-resident
/// SortKeyCache can reuse the (expensive) key column across scans. The
/// deferred constructor only binds columns (cheap layout checks — enough
/// for CacheKey); `FinalizeEncodings()` runs the O(n) read-only pre-passes
/// that fix the shape (packed vs single, min/shift transforms, exactness);
/// `BuildKeys()` (which finalizes first) materializes the key vector; and
/// on a cache hit `AdoptEncodings()` + `AdoptKeys()` restore both from the
/// cache entry, skipping every O(n) pass.
class SortKeyPlan {
 public:
  using KeysPtr = std::shared_ptr<const std::vector<uint64_t>>;

  /// Deterministic snapshot of the data-derived encoding decisions, cached
  /// next to the key vector so a hit restores the full plan without
  /// re-reading the columns. Same CacheKey (same column objects, directions,
  /// candidate shape) always yields the same snapshot.
  struct EncodingSnapshot {
    bool packed = false;
    int64_t first_min = 0;
    int64_t second_min = 0;
    uint32_t first_shift = 0;
    uint32_t second_shift = 0;
    bool first_exact = true;
    bool second_exact = true;
  };

  /// Defers key materialization: the caller adopts cached keys or calls
  /// BuildKeys() explicitly (the SortKeyCache path).
  struct DeferKeysTag {};
  static constexpr DeferKeysTag kDeferKeys{};

  /// Plans, finalizes encodings, *and* materializes keys for every universe
  /// row of `table` under `order`. `valid()` is false when the first
  /// effective order column is absent or has no raw layout; callers then
  /// use the virtual RowComparator path.
  SortKeyPlan(const Table& table, const RecordOrder& order);

  /// Binds only (cheap; no O(n) passes): enough for CacheKey lookups.
  /// keys() is unusable until AdoptKeys()/BuildKeys(), and the shape
  /// accessors (packed/exact/TotalOrder/tie_order/EncodeStartKey) until
  /// FinalizeEncodings()/AdoptEncodings().
  SortKeyPlan(const Table& table, const RecordOrder& order, DeferKeysTag);

  bool valid() const { return valid_; }

  /// The materialized key column; requires has_keys().
  const std::vector<uint64_t>& keys() const { return *keys_; }
  bool has_keys() const { return keys_ != nullptr; }

  /// Fixes the encoding decisions (packed vs single, min/shift transforms,
  /// exactness, tie order) without materializing keys, via O(n) read-only
  /// pre-passes — for callers that want the shape alone. BuildKeys() fixes
  /// them as a side effect of the key pass instead (fused, one scan), so
  /// most callers never call this. Idempotent; deterministic for a given
  /// CacheKey, so both routes reach identical decisions.
  void FinalizeEncodings();
  bool encodings_ready() const { return encodings_ready_; }

  /// The finalized decisions, for caching; requires encodings_ready().
  EncodingSnapshot encodings() const;

  /// Restores previously finalized decisions (the cache-hit path, skipping
  /// the pre-passes). The snapshot must come from a plan with the same
  /// CacheKey, which makes it byte-identical to what FinalizeEncodings()
  /// would derive.
  void AdoptEncodings(const EncodingSnapshot& snapshot);

  /// Materializes the key column (O(universe)), finalizing encodings along
  /// the way when not already done. Pure function of the plan: identical
  /// plans over the same data build identical keys, which is what makes the
  /// vector safely cacheable.
  KeysPtr BuildKeys();

  /// Binds a key vector previously produced by BuildKeys() on an identical
  /// plan (same CacheKey) — the SortKeyCache hit path.
  void AdoptKeys(KeysPtr keys) { keys_ = std::move(keys); }

  /// True when the plan packs two columns into one 32+32 key.
  bool packed() const { return packed_; }

  /// True when equal keys imply equal values on every encoded column
  /// (no saturated/shifted component), i.e. the tie-break may skip the
  /// encoded prefix.
  bool exact() const { return exact_; }

  /// True when key order (plus row-id tiebreak) is the complete record
  /// order: every effective order column is encoded exactly.
  bool TotalOrder() const { return tie_order_.empty(); }

  /// Start-key band: the key range that cannot be classified by the key
  /// alone. keys()[r] < below implies row r strictly precedes the start key
  /// in the full record order; keys()[r] > above implies row r strictly
  /// follows it; keys in [below, above] need a full CompareRowToKey. Exact
  /// single-column encodings collapse the band to a point (below == above).
  struct StartKeyBand {
    uint64_t below;
    uint64_t above;
  };

  /// Encodes a materialized start key (cell values indexed like the order's
  /// orientations, as produced by Table::GetRow over the order columns) into
  /// a key-space band. Returns nullopt when the leading cell does not embed
  /// in the key space at all (callers fall back to per-row compares).
  std::optional<StartKeyBand> EncodeStartKey(
      const std::vector<Value>& cells) const;

  /// Single-column point encoding (non-packed plans only), kept for tests
  /// and callers that need the raw threshold:
  ///   keys()[r] <  *enc  =>  row r precedes the start key,
  ///   keys()[r] >  *enc  =>  row r follows the start key,
  /// and equality requires a full CompareRowToKey. Returns nullopt when the
  /// value does not embed exactly.
  std::optional<uint64_t> EncodeStartCell(const Value& v) const;

  /// Index into the order's orientations of the first effective column
  /// (orientations naming unknown columns are skipped, as in RowComparator).
  size_t first_column_index() const { return first_index_; }

  /// The orientations a key tie must still compare through the virtual path:
  /// the columns after the encoded prefix, preceded by any prefix column
  /// whose encoding is inexact. Empty means key order (plus row id) is the
  /// complete record order.
  const std::vector<ColumnSortOrientation>& tie_order() const {
    return tie_order_;
  }

  /// Identity of this plan for the worker-resident SortKeyCache: the encoded
  /// column objects (pointer identity — column data is immutable, so the
  /// object *is* the layout fingerprint) plus the order prefix and shape.
  /// Combined with key_columns() liveness checks this is collision-free: a
  /// recycled allocation cannot match while the original column is alive.
  std::string CacheKey() const;

  /// The columns the keys are derived from (1 or 2); the cache validates
  /// these are still alive before serving an entry.
  const std::vector<ColumnPtr>& key_columns() const { return key_columns_; }

  /// One encoded column: its binding plus the 32-bit packing transform
  /// (unused by the single-key shape). Public only so the key-building
  /// helpers in sort_key.cc can take it; not part of the caller API.
  struct Component {
    ColumnPtr column;
    DataKind kind = DataKind::kDouble;
    bool ascending = true;
    size_t orientation_index = 0;
    int64_t min = 0;     // packed transform: enc = (v - min) >> shift
    uint32_t shift = 0;  // 0 == exact (injective on present values)
    bool exact = true;
  };

 private:
  void Plan(const Table& table, const RecordOrder& order);
  void FinalizeShape();
  void DeriveTieOrder();
  /// Returns true when an INT64_MAX date saturated (the encoding is then
  /// inexact; the cold-build path folds this into first_.exact).
  bool BuildSingleKeys(std::vector<uint64_t>& keys) const;
  void BuildPackedKeys(std::vector<uint64_t>& keys) const;
  /// 32-bit packed encoding of one start cell for component `c`; second ==
  /// true when equal components imply equal values (drives band width).
  std::optional<std::pair<uint32_t, bool>> EncodePackedCell(
      const Component& c, const Value& v) const;

  bool valid_ = false;
  bool candidate_packed_ = false;  // both leading columns narrow (stage 1)
  bool encodings_ready_ = false;
  bool packed_ = false;
  bool exact_ = true;
  size_t first_index_ = 0;
  uint32_t universe_ = 0;
  Component first_;
  Component second_;  // bound only when candidate_packed_
  ColumnSortOrientation first_orient_;
  ColumnSortOrientation second_orient_;
  std::vector<ColumnPtr> key_columns_;
  std::vector<ColumnSortOrientation> rest_;  // effective columns after first
  std::vector<ColumnSortOrientation> tie_order_;
  KeysPtr keys_;
};

/// Row comparator over a SortKeyPlan: one integer comparison on the normal
/// keys, then the virtual tie-break order only on key ties. Mirrors
/// RowComparator's Compare/Less contract over the full record order. The
/// plan must have materialized (or adopted) keys.
class KeyComparator {
 public:
  KeyComparator(const Table& table, const SortKeyPlan& plan)
      : keys_(plan.keys().data()),
        has_tie_(!plan.tie_order().empty()),
        tie_(table, RecordOrder(plan.tie_order())) {}

  /// Three-way comparison (no row-id tiebreaker), identical in result to
  /// RowComparator::Compare over the full order.
  int Compare(uint32_t a, uint32_t b) const {
    uint64_t ka = keys_[a], kb = keys_[b];
    if (ka != kb) return ka < kb ? -1 : 1;
    return has_tie_ ? tie_.Compare(a, b) : 0;
  }

  /// Strict weak ordering with the row-id tiebreaker.
  bool Less(uint32_t a, uint32_t b) const {
    int c = Compare(a, b);
    if (c != 0) return c < 0;
    return a < b;
  }

  uint64_t Key(uint32_t row) const { return keys_[row]; }

 private:
  const uint64_t* keys_;
  bool has_tie_;
  RowComparator tie_;
};

/// Member/sample density gate shared by every keyed scan path (next-items,
/// quantile): materializing keys costs O(universe), so a cold build only
/// pays off when the scan touches at least 1 in 2^kKeyedScanDensityShift
/// universe rows. Cached (already materialized) keys skip this gate — reuse
/// is free regardless of density. Kept in one place so the cached-key path
/// and the inline path cannot drift.
inline constexpr uint32_t kKeyedScanDensityShift = 4;  // >= 1/16 of universe

inline bool KeyedScanProfitable(uint64_t scan_rows, uint64_t universe) {
  return scan_rows >= (universe >> kKeyedScanDensityShift);
}

}  // namespace hillview

#endif  // HILLVIEW_STORAGE_SORT_KEY_H_
