#include "storage/table.h"

#include <cassert>

namespace hillview {

TablePtr Table::Create(Schema schema, std::vector<ColumnPtr> columns) {
  uint32_t n = columns.empty() ? 0 : columns[0]->size();
  return Create(std::move(schema), std::move(columns),
                std::make_shared<FullMembership>(n));
}

TablePtr Table::Create(Schema schema, std::vector<ColumnPtr> columns,
                       MembershipPtr members) {
  assert(static_cast<int>(columns.size()) == schema.num_columns());
  for (const auto& col : columns) {
    assert(col->size() == members->universe_size());
    (void)col;
  }
  return TablePtr(
      new Table(std::move(schema), std::move(columns), std::move(members)));
}

Result<ColumnPtr> Table::GetColumn(const std::string& name) const {
  int i = schema_.IndexOf(name);
  if (i < 0) return Status::NotFound("no column named '" + name + "'");
  return columns_[i];
}

ColumnPtr Table::GetColumnOrNull(const std::string& name) const {
  int i = schema_.IndexOf(name);
  return i < 0 ? nullptr : columns_[i];
}

TablePtr Table::Filter(const std::function<bool(uint32_t)>& pred) const {
  MembershipPtr filtered = FilterMembership(*members_, pred);
  return TablePtr(new Table(schema_, columns_, std::move(filtered)));
}

TablePtr Table::WithMembership(MembershipPtr members) const {
  assert(members->universe_size() == universe_size());
  return TablePtr(new Table(schema_, columns_, std::move(members)));
}

TablePtr Table::WithColumn(const ColumnDescription& desc,
                           ColumnPtr column) const {
  assert(column->size() == universe_size());
  Schema schema = schema_.Append(desc);
  std::vector<ColumnPtr> columns = columns_;
  columns.push_back(std::move(column));
  return TablePtr(new Table(std::move(schema), std::move(columns), members_));
}

TablePtr Table::Project(const std::vector<std::string>& names) const {
  Schema schema = schema_.Project(names);
  std::vector<ColumnPtr> columns;
  columns.reserve(schema.num_columns());
  for (const auto& desc : schema.columns()) {
    columns.push_back(columns_[schema_.IndexOf(desc.name)]);
  }
  return TablePtr(new Table(std::move(schema), std::move(columns), members_));
}

std::vector<Value> Table::GetRow(uint32_t row,
                                 const std::vector<std::string>& names) const {
  std::vector<Value> out;
  out.reserve(names.size());
  for (const auto& name : names) {
    int i = schema_.IndexOf(name);
    out.push_back(i < 0 ? Value(std::monostate{}) : columns_[i]->GetValue(row));
  }
  return out;
}

size_t Table::MemoryBytes() const {
  size_t bytes = members_->MemoryBytes();
  for (const auto& col : columns_) bytes += col->MemoryBytes();
  return bytes;
}

size_t Table::MappedBytes() const {
  size_t bytes = 0;
  for (const auto& col : columns_) bytes += col->MappedBytes();
  return bytes;
}

std::vector<uint32_t> PartitionRowCounts(uint64_t total_rows,
                                         uint32_t rows_per_partition) {
  std::vector<uint32_t> counts;
  if (rows_per_partition == 0) rows_per_partition = 1;
  uint64_t remaining = total_rows;
  while (remaining > 0) {
    uint32_t take = static_cast<uint32_t>(
        remaining < rows_per_partition ? remaining : rows_per_partition);
    counts.push_back(take);
    remaining -= take;
  }
  return counts;
}

}  // namespace hillview
