#ifndef HILLVIEW_STORAGE_BIT_GATHER_H_
#define HILLVIEW_STORAGE_BIT_GATHER_H_

#include <cstdint>

#if defined(__BMI2__)
#include <immintrin.h>
#endif

namespace hillview {

/// Word-compress gather: expands the set bits of a 64-bit membership word
/// into a dense batch of row indices, so the typed scan loops can iterate a
/// small index array instead of chasing bits one `ctz` at a time.
///
/// The ctz walk (`bits &= bits - 1`) is a serial dependency chain — each
/// iteration waits on the previous one — which is why strided dense bitmaps
/// (partially-set words, no fully-set blocks) scan slower than run-structured
/// ones. Expansion breaks the chain: positions are derived per 8-bit chunk
/// with no cross-iteration dependency, then consumed by a tight linear loop
/// the compiler can pipeline.
///
/// Two implementations are chosen at compile time:
///   - BMI2 (`-mbmi2` / `-march=native`): pdep spreads the chunk's bits over
///     byte lanes and pext compacts the matching position bytes — two
///     instructions per 8 rows.
///   - portable: a 256-entry table of precomputed packed positions per byte
///     (2 KB, built at compile time), one load per 8 rows.
/// Both produce positions in ascending order.

namespace bit_gather_internal {

/// Packed bit positions per byte value: entry b holds the positions of the
/// set bits of b, one byte each, lowest first (same layout pext produces).
struct ByteIndexTable {
  uint64_t packed[256];
  uint8_t count[256];

  constexpr ByteIndexTable() : packed(), count() {
    for (int b = 0; b < 256; ++b) {
      uint64_t p = 0;
      int n = 0;
      for (int bit = 0; bit < 8; ++bit) {
        if ((b >> bit) & 1) {
          p |= static_cast<uint64_t>(bit) << (8 * n);
          ++n;
        }
      }
      packed[b] = p;
      count[b] = static_cast<uint8_t>(n);
    }
  }
};

inline constexpr ByteIndexTable kByteIndexTable{};

}  // namespace bit_gather_internal

/// Minimum set-bit count at which expansion beats the ctz walk; below it the
/// per-word setup cost is not amortized. Callers with fewer bits should keep
/// the ctz loop.
inline constexpr int kBitGatherMinBits = 8;

/// Calls `fn(base + bit)` for every set bit of `word`, ascending, choosing
/// between the gather expansion (words at or above kBitGatherMinBits set
/// bits) and the plain ctz walk (sparse words, where expansion setup is not
/// amortized). The one iteration idiom shared by ScanDense, ForEachRow, and
/// the typed filter loops.
template <typename Fn>
inline void ForEachSetBit(uint64_t word, uint32_t base, Fn&& fn);

/// Writes the row indices `base + bit` for every set bit of `word` into
/// `out` (ascending). `out` must have room for 64 entries. Returns the
/// number of indices written (== popcount(word)).
inline int ExpandBitIndices(uint64_t word, uint32_t base, uint32_t* out) {
  int n = 0;
  for (int chunk = 0; word != 0; ++chunk, word >>= 8) {
    const uint32_t byte = static_cast<uint32_t>(word & 0xFF);
    if (byte == 0) continue;
#if defined(__BMI2__)
    const uint64_t lanes = _pdep_u64(byte, 0x0101010101010101ULL) * 0xFFULL;
    uint64_t packed = _pext_u64(0x0706050403020100ULL, lanes);
    const int count = __builtin_popcount(byte);
#else
    uint64_t packed = bit_gather_internal::kByteIndexTable.packed[byte];
    const int count =
        bit_gather_internal::kByteIndexTable.count[byte];
#endif
    const uint32_t chunk_base = base + static_cast<uint32_t>(chunk) * 8;
    for (int i = 0; i < count; ++i) {
      out[n + i] = chunk_base + static_cast<uint32_t>(packed & 0xFF);
      packed >>= 8;
    }
    n += count;
  }
  return n;
}

template <typename Fn>
inline void ForEachSetBit(uint64_t word, uint32_t base, Fn&& fn) {
  if (__builtin_popcountll(word) >= kBitGatherMinBits) {
    uint32_t idx[64];
    int count = ExpandBitIndices(word, base, idx);
    for (int i = 0; i < count; ++i) fn(idx[i]);
    return;
  }
  while (word != 0) {
    int bit = __builtin_ctzll(word);
    fn(base + static_cast<uint32_t>(bit));
    word &= word - 1;
  }
}

}  // namespace hillview

#endif  // HILLVIEW_STORAGE_BIT_GATHER_H_
