#include "baseline/row_engine.h"

#include <algorithm>
#include <cmath>
#include <future>
#include <set>

namespace hillview {
namespace baseline {

uint64_t WireSize(const Value& v) {
  if (std::holds_alternative<std::monostate>(v)) return 1;
  if (std::holds_alternative<int64_t>(v)) return 9;
  if (std::holds_alternative<double>(v)) return 9;
  return 5 + std::get<std::string>(v).size();
}

namespace {

uint64_t WireSizeRow(const std::vector<Value>& row) {
  uint64_t bytes = 4;
  for (const auto& v : row) bytes += WireSize(v);
  return bytes;
}

// Rounds a numeric value down to a multiple of `granularity` (no-op for
// strings/missing or granularity 0).
Value RoundValue(const Value& v, double granularity) {
  if (granularity <= 0) return v;
  double d;
  if (const auto* i = std::get_if<int64_t>(&v)) {
    d = static_cast<double>(*i);
  } else if (const auto* dd = std::get_if<double>(&v)) {
    d = *dd;
  } else {
    return v;
  }
  return std::floor(d / granularity) * granularity;
}

// Lexicographic comparison under a record order, with missing-last
// semantics, on materialized rows.
struct RowLess {
  const std::vector<int>* column_indexes;
  const std::vector<bool>* ascending;

  bool operator()(const std::vector<Value>& a,
                  const std::vector<Value>& b) const {
    for (size_t i = 0; i < column_indexes->size(); ++i) {
      int idx = (*column_indexes)[i];
      if (idx < 0) continue;
      int c = CompareValues(a[idx], b[idx]);
      if (c != 0) return (*ascending)[i] ? c < 0 : c > 0;
    }
    return false;
  }
};

}  // namespace

RowEngine::RowEngine(std::vector<TablePtr> partitions, int num_threads)
    : pool_(num_threads) {
  if (!partitions.empty()) schema_ = partitions[0]->schema();
  partitions_.resize(partitions.size());
  // Ingest in parallel (pre-load phase, not timed by benchmarks).
  for (size_t p = 0; p < partitions.size(); ++p) {
    TablePtr table = partitions[p];
    Partition* out = &partitions_[p];
    pool_.Submit([table, out] {
      out->rows.reserve(table->num_rows());
      int ncols = table->num_columns();
      ForEachRow(*table->members(), [&](uint32_t row) {
        std::vector<Value> cells;
        cells.reserve(ncols);
        for (int c = 0; c < ncols; ++c) {
          cells.push_back(table->column(c)->GetValue(row));
        }
        out->rows.push_back(std::move(cells));
      });
    });
  }
  pool_.Wait();
  for (const auto& p : partitions_) num_rows_ += p.rows.size();
}

RowEngine::~RowEngine() = default;

size_t RowEngine::MemoryBytes() const {
  size_t bytes = 0;
  for (const auto& p : partitions_) {
    for (const auto& row : p.rows) {
      bytes += sizeof(row) + row.capacity() * sizeof(Value);
      for (const auto& v : row) {
        if (const auto* s = std::get_if<std::string>(&v)) bytes += s->size();
      }
    }
  }
  return bytes;
}

int RowEngine::ColumnIndex(const std::string& name) const {
  return schema_.IndexOf(name);
}

std::vector<std::vector<Value>> RowEngine::SortTopK(const RecordOrder& order,
                                                    int k,
                                                    uint64_t* master_bytes) {
  std::vector<int> idx;
  std::vector<bool> asc;
  for (const auto& o : order.orientations()) {
    idx.push_back(schema_.IndexOf(o.column));
    asc.push_back(o.ascending);
  }
  RowLess less{&idx, &asc};

  // Each partition fully sorts its rows (the general-purpose plan), then
  // ships its first k *complete* rows to the master.
  std::vector<std::vector<std::vector<Value>>> tops(partitions_.size());
  for (size_t p = 0; p < partitions_.size(); ++p) {
    const Partition* part = &partitions_[p];
    auto* out = &tops[p];
    pool_.Submit([part, out, less, k] {
      std::vector<std::vector<Value>> sorted = part->rows;
      std::sort(sorted.begin(), sorted.end(), less);
      if (static_cast<int>(sorted.size()) > k) sorted.resize(k);
      *out = std::move(sorted);
    });
  }
  pool_.Wait();

  std::vector<std::vector<Value>> merged;
  for (auto& top : tops) {
    if (master_bytes != nullptr) {
      for (const auto& row : top) *master_bytes += WireSizeRow(row);
    }
    merged.insert(merged.end(), std::make_move_iterator(top.begin()),
                  std::make_move_iterator(top.end()));
  }
  std::sort(merged.begin(), merged.end(), less);
  if (static_cast<int>(merged.size()) > k) merged.resize(k);
  return merged;
}

RowEngine::GroupCounts RowEngine::GroupByCount(const std::string& column,
                                               uint64_t* master_bytes,
                                               double granularity) {
  int idx = schema_.IndexOf(column);
  std::vector<GroupCounts> partials(partitions_.size());
  for (size_t p = 0; p < partitions_.size(); ++p) {
    const Partition* part = &partitions_[p];
    GroupCounts* out = &partials[p];
    pool_.Submit([part, out, idx, granularity] {
      if (idx < 0) return;
      for (const auto& row : part->rows) {
        ++(*out)[RoundValue(row[idx], granularity)];
      }
    });
  }
  pool_.Wait();

  GroupCounts merged;
  for (const auto& partial : partials) {
    for (const auto& [value, count] : partial) {
      if (master_bytes != nullptr) *master_bytes += WireSize(value) + 8;
      merged[value] += count;
    }
  }
  return merged;
}

RowEngine::GroupCounts2D RowEngine::GroupByCount2D(const std::string& x_column,
                                                   const std::string& y_column,
                                                   uint64_t* master_bytes,
                                                   double x_granularity,
                                                   double y_granularity) {
  int xi = schema_.IndexOf(x_column);
  int yi = schema_.IndexOf(y_column);
  std::vector<GroupCounts2D> partials(partitions_.size());
  for (size_t p = 0; p < partitions_.size(); ++p) {
    const Partition* part = &partitions_[p];
    GroupCounts2D* out = &partials[p];
    pool_.Submit([part, out, xi, yi, x_granularity, y_granularity] {
      if (xi < 0 || yi < 0) return;
      for (const auto& row : part->rows) {
        ++(*out)[{RoundValue(row[xi], x_granularity),
                  RoundValue(row[yi], y_granularity)}];
      }
    });
  }
  pool_.Wait();

  GroupCounts2D merged;
  for (const auto& partial : partials) {
    for (const auto& [key, count] : partial) {
      if (master_bytes != nullptr) {
        *master_bytes += WireSize(key.first) + WireSize(key.second) + 8;
      }
      merged[key] += count;
    }
  }
  return merged;
}

std::vector<Value> RowEngine::Quantile(const RecordOrder& order, double q,
                                       uint64_t* master_bytes) {
  std::vector<int> idx;
  std::vector<bool> asc;
  for (const auto& o : order.orientations()) {
    idx.push_back(schema_.IndexOf(o.column));
    asc.push_back(o.ascending);
  }
  // General-purpose exact plan: every partition ships its *entire sorted key
  // column* to the master, which merges and indexes. (This is what a naive
  // orderBy + collect does; it is the workload where the paper's baseline
  // exhausts memory first.)
  std::vector<std::vector<std::vector<Value>>> keys(partitions_.size());
  for (size_t p = 0; p < partitions_.size(); ++p) {
    const Partition* part = &partitions_[p];
    auto* out = &keys[p];
    const auto* idxp = &idx;
    pool_.Submit([part, out, idxp] {
      out->reserve(part->rows.size());
      for (const auto& row : part->rows) {
        std::vector<Value> key;
        key.reserve(idxp->size());
        for (int i : *idxp) {
          key.push_back(i >= 0 ? row[i] : Value(std::monostate{}));
        }
        out->push_back(std::move(key));
      }
    });
  }
  pool_.Wait();

  std::vector<std::vector<Value>> all;
  all.reserve(num_rows_);
  for (auto& part_keys : keys) {
    if (master_bytes != nullptr) {
      for (const auto& key : part_keys) *master_bytes += WireSizeRow(key);
    }
    all.insert(all.end(), std::make_move_iterator(part_keys.begin()),
               std::make_move_iterator(part_keys.end()));
  }
  if (all.empty()) return {};
  std::vector<int> key_idx(idx.size());
  for (size_t i = 0; i < idx.size(); ++i) key_idx[i] = static_cast<int>(i);
  RowLess key_less{&key_idx, &asc};
  std::sort(all.begin(), all.end(), key_less);
  size_t rank = static_cast<size_t>(q * (all.size() - 1) + 0.5);
  return all[rank];
}

int64_t RowEngine::DistinctCount(const std::string& column,
                                 uint64_t* master_bytes) {
  int idx = schema_.IndexOf(column);
  using ValueSet = std::set<Value, ValueLess>;
  std::vector<ValueSet> partials(partitions_.size());
  for (size_t p = 0; p < partitions_.size(); ++p) {
    const Partition* part = &partitions_[p];
    ValueSet* out = &partials[p];
    pool_.Submit([part, out, idx] {
      if (idx < 0) return;
      for (const auto& row : part->rows) out->insert(row[idx]);
    });
  }
  pool_.Wait();

  ValueSet merged;
  for (const auto& partial : partials) {
    for (const auto& v : partial) {
      if (master_bytes != nullptr) *master_bytes += WireSize(v);
      merged.insert(v);
    }
  }
  return static_cast<int64_t>(merged.size());
}

std::pair<double, double> RowEngine::MinMax(const std::string& column,
                                            uint64_t* master_bytes) {
  int idx = schema_.IndexOf(column);
  std::vector<std::pair<double, double>> partials(
      partitions_.size(), {0, 0});
  std::vector<uint8_t> has_value(partitions_.size(), 0);
  for (size_t p = 0; p < partitions_.size(); ++p) {
    const Partition* part = &partitions_[p];
    auto* out = &partials[p];
    uint8_t* has = &has_value[p];
    pool_.Submit([part, out, has, idx] {
      if (idx < 0) return;
      bool first = true;
      for (const auto& row : part->rows) {
        const Value& v = row[idx];
        double d;
        if (const auto* i = std::get_if<int64_t>(&v)) {
          d = static_cast<double>(*i);
        } else if (const auto* dd = std::get_if<double>(&v)) {
          d = *dd;
        } else {
          continue;
        }
        if (first) {
          *out = {d, d};
          first = false;
        } else {
          out->first = std::min(out->first, d);
          out->second = std::max(out->second, d);
        }
      }
      *has = first ? 0 : 1;
    });
  }
  pool_.Wait();

  std::pair<double, double> merged{0, 0};
  bool first = true;
  for (size_t p = 0; p < partials.size(); ++p) {
    if (!has_value[p]) continue;
    if (master_bytes != nullptr) *master_bytes += 16;
    if (first) {
      merged = partials[p];
      first = false;
    } else {
      merged.first = std::min(merged.first, partials[p].first);
      merged.second = std::max(merged.second, partials[p].second);
    }
  }
  return merged;
}

std::unique_ptr<RowEngine> RowEngine::Filter(
    const std::function<bool(const std::vector<Value>&)>& pred) {
  auto filtered = std::unique_ptr<RowEngine>(
      new RowEngine(std::vector<TablePtr>{}, pool_.num_threads()));
  filtered->schema_ = schema_;
  filtered->partitions_.resize(partitions_.size());
  for (size_t p = 0; p < partitions_.size(); ++p) {
    const Partition* in = &partitions_[p];
    Partition* out = &filtered->partitions_[p];
    filtered->pool_.Submit([in, out, &pred] {
      for (const auto& row : in->rows) {
        if (pred(row)) out->rows.push_back(row);
      }
    });
  }
  filtered->pool_.Wait();
  for (const auto& p : filtered->partitions_) {
    filtered->num_rows_ += p.rows.size();
  }
  return filtered;
}

}  // namespace baseline
}  // namespace hillview
