#ifndef HILLVIEW_BASELINE_INDEXED_DB_H_
#define HILLVIEW_BASELINE_INDEXED_DB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/table.h"

namespace hillview {
namespace baseline {

/// Single-node in-memory database baseline for the single-thread vizketch
/// microbenchmark (§7.2.1). The paper measures a commercial in-memory DB an
/// order of magnitude slower than the streaming vizketch and attributes the
/// gap to general-purpose machinery: "data structures must support indexes,
/// transactions, integrity constraints, logging, queries of many types".
///
/// This model reproduces those costs structurally rather than by a fudge
/// factor:
///  - rows live as heap tuples with an MVCC header (xmin/xmax) checked per
///    row against the reading transaction's snapshot;
///  - numeric queries scan through a secondary B-tree-style index whose
///    entries point at heap tuples (pointer chase per row, no sequential
///    locality);
///  - values are fetched through a generic accessor that re-validates the
///    tuple (integrity constraint check) before converting.
class IndexedDb {
 public:
  /// Ingests a column into the database: builds heap tuples and the ordered
  /// secondary index (this is the "ETL + indexing" cost Hillview avoids;
  /// excluded from query timing like the paper's pre-loading).
  IndexedDb(const Table& table, const std::string& column);

  uint64_t num_rows() const { return heap_.size(); }

  /// SELECT bucket(v), COUNT(*) GROUP BY bucket(v) via an index scan with
  /// per-tuple visibility and constraint checks.
  std::vector<int64_t> HistogramQuery(double min, double max,
                                      int buckets) const;

  /// Same query via a heap scan (sequential but still tuple-at-a-time with
  /// MVCC checks) — the plan a DB picks when the predicate is unselective.
  std::vector<int64_t> HistogramQuerySeqScan(double min, double max,
                                             int buckets) const;

 private:
  struct Tuple {
    uint64_t xmin;    // creating transaction
    uint64_t xmax;    // deleting transaction (0 = live)
    uint32_t flags;   // null bitmap + constraint bits
    double value;     // the indexed column (single-column table model)
  };

  bool Visible(const Tuple& t) const {
    // Snapshot visibility: created before our snapshot, not yet deleted.
    return t.xmin <= snapshot_xid_ && (t.xmax == 0 || t.xmax > snapshot_xid_);
  }

  std::vector<Tuple> heap_;
  /// Secondary index: (key, heap offset), sorted by key. Entries are
  /// shuffled relative to heap order, so index scans pay a pointer chase.
  std::vector<std::pair<double, uint32_t>> index_;
  uint64_t snapshot_xid_ = 0;
};

}  // namespace baseline
}  // namespace hillview

#endif  // HILLVIEW_BASELINE_INDEXED_DB_H_
