#ifndef HILLVIEW_BASELINE_ROW_ENGINE_H_
#define HILLVIEW_BASELINE_ROW_ENGINE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "storage/row_order.h"
#include "storage/table.h"
#include "util/thread_pool.h"

namespace hillview {
namespace baseline {

/// General-purpose analytics engine baseline: the stand-in for the paper's
/// Spark back-end (§7.1). It reproduces the two properties the paper
/// attributes to the "visualization front-end + general-purpose engine"
/// architecture:
///
///  1. Row-at-a-time processing over boxed values (no columnar scan
///     specialization, no sampling driven by display accuracy).
///  2. No visualization-driven result truncation: queries return *exact,
///     full-cardinality* results to the master — a group-by for a histogram
///     ships every distinct value, not B buckets — so the bytes received by
///     the master are data-dependent, not display-dependent (Fig 5 bottom).
///
/// Like the paper's baseline it is given every fairness advantage we can:
/// data pre-loaded in memory and all cores used via a thread pool.
class RowEngine {
 public:
  struct ValueLess {
    bool operator()(const Value& a, const Value& b) const {
      return CompareValues(a, b) < 0;
    }
  };
  using GroupCounts = std::map<Value, int64_t, ValueLess>;
  using GroupCounts2D = std::map<std::pair<Value, Value>, int64_t>;

  /// Ingests columnar partitions into the engine's row-major format (the
  /// equivalent of Spark's pre-loading into RDDs; excluded from query
  /// timing, like the paper excludes load time).
  RowEngine(std::vector<TablePtr> partitions, int num_threads);

  ~RowEngine();

  uint64_t num_rows() const { return num_rows_; }
  size_t MemoryBytes() const;

  /// Full sort of all rows by `order`, returning the first k rows. Unlike
  /// the vizketch, every partition fully sorts its rows (O(n log n)), and
  /// shipped results carry whole rows.
  std::vector<std::vector<Value>> SortTopK(const RecordOrder& order, int k,
                                           uint64_t* master_bytes);

  /// Exact group-by count on one column; ships all distinct groups.
  /// `granularity` > 0 rounds numeric values down to multiples of it (the
  /// generic binning a SQL user writes as GROUP BY floor(x/g)*g).
  GroupCounts GroupByCount(const std::string& column, uint64_t* master_bytes,
                           double granularity = 0);

  /// Exact group-by count on a pair of columns (heat map / stacked
  /// histogram query shape).
  GroupCounts2D GroupByCount2D(const std::string& x_column,
                               const std::string& y_column,
                               uint64_t* master_bytes,
                               double x_granularity = 0,
                               double y_granularity = 0);

  /// Exact quantile by full sort.
  std::vector<Value> Quantile(const RecordOrder& order, double q,
                              uint64_t* master_bytes);

  /// Exact distinct count; partitions ship their distinct sets.
  int64_t DistinctCount(const std::string& column, uint64_t* master_bytes);

  /// Exact min/max of a numeric column.
  std::pair<double, double> MinMax(const std::string& column,
                                   uint64_t* master_bytes);

  /// New engine over rows satisfying `pred` (generic filter; materializes
  /// the filtered rows like a general-purpose engine would).
  std::unique_ptr<RowEngine> Filter(
      const std::function<bool(const std::vector<Value>&)>& pred);

  int ColumnIndex(const std::string& name) const;

 private:
  struct Partition {
    std::vector<std::vector<Value>> rows;
  };

  Schema schema_;
  std::vector<Partition> partitions_;
  uint64_t num_rows_ = 0;
  ThreadPool pool_;
};

/// Serialized size of a value in a shipped result (wire-size model shared
/// with the Hillview side's ByteWriter format).
uint64_t WireSize(const Value& v);

}  // namespace baseline
}  // namespace hillview

#endif  // HILLVIEW_BASELINE_ROW_ENGINE_H_
