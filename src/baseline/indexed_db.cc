#include "baseline/indexed_db.h"

#include <algorithm>

#include "util/random.h"

namespace hillview {
namespace baseline {

IndexedDb::IndexedDb(const Table& table, const std::string& column) {
  ColumnPtr col = table.GetColumnOrNull(column);
  if (col == nullptr) return;
  heap_.reserve(table.num_rows());
  Random rng(0xDB);
  uint64_t xid = 1;
  ForEachRow(*table.members(), [&](uint32_t row) {
    Tuple t;
    // Interleaved transaction ids, as produced by concurrent loads; a small
    // fraction of tuples are dead versions (updated rows), which real scans
    // must skip.
    t.xmin = xid++;
    t.xmax = rng.NextBernoulli(0.02) ? xid : 0;
    t.flags = col->IsMissing(row) ? 1u : 0u;
    t.value = col->IsMissing(row) ? 0.0 : col->GetDouble(row);
    heap_.push_back(t);
  });
  snapshot_xid_ = xid;

  index_.reserve(heap_.size());
  for (uint32_t i = 0; i < heap_.size(); ++i) {
    index_.emplace_back(heap_[i].value, i);
  }
  std::sort(index_.begin(), index_.end());
}

std::vector<int64_t> IndexedDb::HistogramQuery(double min, double max,
                                               int buckets) const {
  std::vector<int64_t> counts(buckets, 0);
  double scale = buckets / (max - min);
  // Index range scan over [min, max]: each entry dereferences its heap
  // tuple (random access), checks visibility and the null constraint, then
  // buckets the key.
  auto lo = std::lower_bound(index_.begin(), index_.end(),
                             std::make_pair(min, uint32_t{0}));
  for (auto it = lo; it != index_.end() && it->first <= max; ++it) {
    const Tuple& t = heap_[it->second];
    if (!Visible(t)) continue;
    if (t.flags & 1u) continue;  // NULL fails the histogram predicate
    int idx = static_cast<int>((t.value - min) * scale);
    if (idx >= buckets) idx = buckets - 1;
    if (idx < 0) idx = 0;
    ++counts[idx];
  }
  return counts;
}

std::vector<int64_t> IndexedDb::HistogramQuerySeqScan(double min, double max,
                                                      int buckets) const {
  std::vector<int64_t> counts(buckets, 0);
  double scale = buckets / (max - min);
  for (const Tuple& t : heap_) {
    if (!Visible(t)) continue;
    if (t.flags & 1u) continue;
    if (t.value < min || t.value > max) continue;
    int idx = static_cast<int>((t.value - min) * scale);
    if (idx >= buckets) idx = buckets - 1;
    ++counts[idx];
  }
  return counts;
}

}  // namespace baseline
}  // namespace hillview
