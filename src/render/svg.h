#ifndef HILLVIEW_RENDER_SVG_H_
#define HILLVIEW_RENDER_SVG_H_

#include <string>

#include "render/chart.h"

namespace hillview {

/// SVG export of rendered charts (the original system renders with SVG in
/// the browser, §6; §2 suggests outputting "Hillview visualizations as data
/// files or images that are processed by subsequent tools in the pipeline").
/// The geometry in the SVG matches the pixel-level rendering exactly, so the
/// accuracy guarantees stated in pixels apply to the exported image.
std::string HistogramToSvg(const HistogramPlot& plot, int bar_width_px = 4);

std::string CdfToSvg(const CdfPlot& plot);

std::string StackedHistogramToSvg(const StackedHistogramPlot& plot,
                                  int bar_width_px = 4);

std::string HeatMapToSvg(const HeatMapPlot& plot, int bin_size_px = 3);

/// Writes any SVG string to a file.
Status WriteSvgFile(const std::string& svg, const std::string& path);

}  // namespace hillview

#endif  // HILLVIEW_RENDER_SVG_H_
