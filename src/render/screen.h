#ifndef HILLVIEW_RENDER_SCREEN_H_
#define HILLVIEW_RENDER_SCREEN_H_

#include <algorithm>

namespace hillview {

/// Target display geometry for one chart. Every vizketch parameter — bucket
/// counts, sample sizes, color resolution — derives from this (§4.2: "A
/// vizketch method targets a specific visualization with a given display
/// dimension").
struct ScreenResolution {
  int width = 600;   // H: horizontal pixels
  int height = 400;  // V: vertical pixels
};

/// Chart-geometry constants mirroring the paper's choices.
struct ChartDefaults {
  /// Maximum histogram bars: "there are at most 50 buckets ... when the
  /// screen width is 200 pixels" — 4 px/bar; the UI caps at ~100 (§1).
  static constexpr int kMaxHistogramBuckets = 100;
  static constexpr int kPixelsPerBar = 4;

  /// Heat map bins consume b×b pixels, b = 3 (§B.1).
  static constexpr int kHeatMapPixelsPerBin = 3;

  /// Discernible colors in the density scale, c ≈ 20 (§4.3).
  static constexpr int kDistinctColors = 20;

  /// Stacked-histogram color limit: "By is limited to ≈20" (§B.1).
  static constexpr int kMaxStackColors = 20;

  /// String charts use at most 50 buckets (§B.1).
  static constexpr int kMaxStringBuckets = 50;

  /// Default rows per tabular-view page.
  static constexpr int kTableRows = 20;
};

/// Histogram bucket count for a screen: one bar per kPixelsPerBar pixels,
/// capped (§4.2: "compute only what you can display").
inline int HistogramBucketCount(const ScreenResolution& screen) {
  return std::max(1, std::min(ChartDefaults::kMaxHistogramBuckets,
                              screen.width / ChartDefaults::kPixelsPerBar));
}

/// Heat map bin counts: Bx = H/b, By = V/b (§4.3).
inline int HeatMapBucketsX(const ScreenResolution& screen) {
  return std::max(1, screen.width / ChartDefaults::kHeatMapPixelsPerBin);
}
inline int HeatMapBucketsY(const ScreenResolution& screen) {
  return std::max(1, screen.height / ChartDefaults::kHeatMapPixelsPerBin);
}

}  // namespace hillview

#endif  // HILLVIEW_RENDER_SCREEN_H_
