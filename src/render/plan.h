#ifndef HILLVIEW_RENDER_PLAN_H_
#define HILLVIEW_RENDER_PLAN_H_

#include <algorithm>
#include <string>

#include "render/screen.h"
#include "sketch/buckets.h"
#include "sketch/range_moments.h"
#include "sketch/sample_size.h"
#include "sketch/string_quantiles.h"

namespace hillview {

/// Planning helpers for the two-phase execution model (§5.3): phase 1 runs
/// Range/BottomK sketches ("data-wide parameters"); these functions turn
/// those results plus the display geometry into phase-2 vizketch parameters.

/// A rendering-ready summary together with how much of the data produced it.
/// `coverage` is the minimum partition coverage across every query the view
/// ran (both preparation sketches and the vizketch): 1.0 means the full
/// deployment answered; less means some workers were down and the merge
/// completed degraded over the survivors (§5.7). The UI renders `partial`
/// views with a staleness indicator instead of silently presenting a partial
/// result as truth.
template <typename R>
struct Rendered {
  R value{};
  double coverage = 1.0;
  bool partial = false;  // coverage < 1.0
};

/// Numeric buckets covering a column's observed range. Degenerate ranges
/// (all values equal) widen by one unit so a single bucket still renders.
inline NumericBuckets PlanNumericBuckets(const RangeResult& range,
                                         int bucket_count) {
  double lo = range.min;
  double hi = range.max;
  if (range.present_count == 0) {
    lo = 0;
    hi = 1;
  } else if (lo == hi) {
    hi = lo + 1;
  }
  if (range.is_integral) {
    // One bucket per integer at most: a 1..7 day-of-week column gets 7
    // buckets, not one per 4 pixels.
    double span = hi - lo + 1;
    if (span < bucket_count) bucket_count = static_cast<int>(span);
  }
  return NumericBuckets(lo, hi, bucket_count);
}

/// String buckets from a bottom-k distinct sample, capped at the paper's 50
/// string buckets.
inline StringBuckets PlanStringBuckets(const BottomKResult& bottomk,
                                       const RangeResult& range,
                                       int bucket_count) {
  int count = std::min(bucket_count, ChartDefaults::kMaxStringBuckets);
  return StringBucketsFromBottomK(bottomk, count, range.max_string);
}

/// Parameters for a phase-2 histogram: bucket geometry plus sampling rate.
struct HistogramPlan {
  Buckets buckets;
  double sample_rate = 1.0;
  uint64_t sample_size = 0;
};

/// Plans a numeric histogram for a screen: bucket count from pixels, sample
/// size from the accuracy theorem, rate from the global row count. `exact`
/// forces a streaming (rate 1) computation.
inline HistogramPlan PlanHistogram(const RangeResult& range,
                                   const ScreenResolution& screen,
                                   bool exact = false,
                                   double delta = kDefaultDelta) {
  HistogramPlan plan{Buckets(NumericBuckets(0, 1, 1)), 1.0, 0};
  int buckets = HistogramBucketCount(screen);
  plan.buckets = Buckets(PlanNumericBuckets(range, buckets));
  if (!exact) {
    plan.sample_size = HistogramSampleSize(screen.height, buckets, delta);
    plan.sample_rate = SampleRateForSize(
        plan.sample_size, static_cast<uint64_t>(range.TotalRows()));
  }
  return plan;
}

/// Plans a CDF: one bucket per horizontal pixel, sample size O(V² log 1/δ).
inline HistogramPlan PlanCdf(const RangeResult& range,
                             const ScreenResolution& screen,
                             bool exact = false,
                             double delta = kDefaultDelta) {
  HistogramPlan plan{Buckets(NumericBuckets(0, 1, 1)), 1.0, 0};
  plan.buckets = Buckets(PlanNumericBuckets(range, std::max(1, screen.width)));
  if (!exact) {
    plan.sample_size = CdfSampleSize(screen.height, delta);
    plan.sample_rate = SampleRateForSize(
        plan.sample_size, static_cast<uint64_t>(range.TotalRows()));
  }
  return plan;
}

/// Plans a heat map: Bx×By bins at 3 px each, c colors; the sampled variant
/// is valid only for linear color maps (§B.1).
struct HeatMapPlan {
  int x_bins = 0;
  int y_bins = 0;
  double sample_rate = 1.0;
  uint64_t sample_size = 0;
};

inline HeatMapPlan PlanHeatMap(uint64_t total_rows,
                               const ScreenResolution& screen,
                               bool exact = false,
                               double delta = kDefaultDelta) {
  HeatMapPlan plan;
  plan.x_bins = HeatMapBucketsX(screen);
  plan.y_bins = HeatMapBucketsY(screen);
  if (!exact) {
    plan.sample_size = HeatMapSampleSize(plan.x_bins, plan.y_bins,
                                         ChartDefaults::kDistinctColors,
                                         delta);
    plan.sample_rate = SampleRateForSize(plan.sample_size, total_rows);
  }
  return plan;
}

}  // namespace hillview

#endif  // HILLVIEW_RENDER_PLAN_H_
