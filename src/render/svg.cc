#include "render/svg.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace hillview {

namespace {

std::string SvgHeader(int width, int height) {
  std::ostringstream out;
  out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width
      << "\" height=\"" << height << "\" viewBox=\"0 0 " << width << " "
      << height << "\">\n";
  return out.str();
}

void Rect(std::ostringstream& out, double x, double y, double w, double h,
          const std::string& fill) {
  if (h <= 0 || w <= 0) return;
  out << "  <rect x=\"" << x << "\" y=\"" << y << "\" width=\"" << w
      << "\" height=\"" << h << "\" fill=\"" << fill << "\"/>\n";
}

/// Color for stacked-histogram segment `i` of `n` (a simple qualitative
/// wheel; the paper limits colors to ~20, §B.1).
std::string SegmentColor(int i) {
  static const char* kPalette[] = {
      "#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
      "#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
      "#86bcb6", "#d37295", "#fabfd2", "#b6992d", "#499894",
      "#e15759", "#79706e", "#d7b5a6", "#a0cbe8", "#ffbe7d"};
  return kPalette[i % 20];
}

/// Sequential shade for heat map density d in [0, colors): light to dark.
std::string DensityColor(int shade, int colors) {
  if (shade <= 0) return "#ffffff";
  int level = 255 - (shade * 220) / std::max(1, colors - 1);
  char buf[8];
  std::snprintf(buf, sizeof(buf), "#%02xB0%02x", level, level);
  return buf;
}

}  // namespace

std::string HistogramToSvg(const HistogramPlot& plot, int bar_width_px) {
  int width = static_cast<int>(plot.bar_heights.size()) * bar_width_px;
  std::ostringstream out;
  out << SvgHeader(width, plot.height);
  for (size_t b = 0; b < plot.bar_heights.size(); ++b) {
    int h = plot.bar_heights[b];
    Rect(out, static_cast<double>(b) * bar_width_px, plot.height - h,
         bar_width_px - 0.5, h, "#4e79a7");
  }
  out << "</svg>\n";
  return out.str();
}

std::string CdfToSvg(const CdfPlot& plot) {
  int width = static_cast<int>(plot.pixel_y.size());
  std::ostringstream out;
  out << SvgHeader(width, plot.height);
  out << "  <polyline fill=\"none\" stroke=\"#e15759\" stroke-width=\"1\" "
         "points=\"";
  for (int x = 0; x < width; ++x) {
    out << x << "," << (plot.height - plot.pixel_y[x]) << " ";
  }
  out << "\"/>\n</svg>\n";
  return out.str();
}

std::string StackedHistogramToSvg(const StackedHistogramPlot& plot,
                                  int bar_width_px) {
  int width = static_cast<int>(plot.segment_heights.size()) * bar_width_px;
  std::ostringstream out;
  out << SvgHeader(width, plot.height);
  for (size_t x = 0; x < plot.segment_heights.size(); ++x) {
    double y = plot.height;
    for (size_t seg = 0; seg < plot.segment_heights[x].size(); ++seg) {
      int h = plot.segment_heights[x][seg];
      y -= h;
      Rect(out, static_cast<double>(x) * bar_width_px, y, bar_width_px - 0.5,
           h, SegmentColor(static_cast<int>(seg)));
    }
  }
  out << "</svg>\n";
  return out.str();
}

std::string HeatMapToSvg(const HeatMapPlot& plot, int bin_size_px) {
  int width = plot.x_bins * bin_size_px;
  int height = plot.y_bins * bin_size_px;
  std::ostringstream out;
  out << SvgHeader(width, height);
  for (int x = 0; x < plot.x_bins; ++x) {
    for (int y = 0; y < plot.y_bins; ++y) {
      int shade = plot.ColorAt(x, y);
      if (shade == 0) continue;  // background stays white
      Rect(out, static_cast<double>(x) * bin_size_px,
           static_cast<double>(plot.y_bins - 1 - y) * bin_size_px,
           bin_size_px, bin_size_px, DensityColor(shade, plot.colors));
    }
  }
  out << "</svg>\n";
  return out.str();
}

Status WriteSvgFile(const std::string& svg, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot create '" + path + "'");
  out << svg;
  out.flush();
  if (!out) return Status::IoError("write failed for '" + path + "'");
  return Status::OK();
}

}  // namespace hillview
