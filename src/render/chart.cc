#include "render/chart.h"

#include <algorithm>
#include <cmath>

namespace hillview {

HistogramPlot RenderHistogram(const HistogramResult& result,
                              const ScreenResolution& screen) {
  HistogramPlot plot;
  plot.height = screen.height;
  plot.bar_heights.assign(result.counts.size(), 0);
  double max_count = 0;
  for (size_t b = 0; b < result.counts.size(); ++b) {
    max_count = std::max(max_count,
                         result.EstimatedCount(static_cast<int>(b)));
  }
  plot.max_estimated_count = max_count;
  if (max_count <= 0) return plot;
  for (size_t b = 0; b < result.counts.size(); ++b) {
    double scaled = result.EstimatedCount(static_cast<int>(b)) / max_count *
                    screen.height;
    // Snap to the nearest pixel — the quantization the accuracy guarantee is
    // stated against (Fig 3a).
    plot.bar_heights[b] = static_cast<int>(std::lround(scaled));
  }
  return plot;
}

CdfPlot RenderCdf(const HistogramResult& result,
                  const ScreenResolution& screen) {
  CdfPlot plot;
  plot.height = screen.height;
  plot.pixel_y.assign(result.counts.size(), 0);
  double total = 0;
  for (int64_t c : result.counts) total += static_cast<double>(c);
  if (total <= 0) return plot;
  double cumulative = 0;
  for (size_t h = 0; h < result.counts.size(); ++h) {
    cumulative += static_cast<double>(result.counts[h]);
    double fraction = cumulative / total;
    plot.pixel_y[h] = static_cast<int>(std::lround(fraction * screen.height));
  }
  return plot;
}

StackedHistogramPlot RenderStackedHistogram(const Histogram2DResult& result,
                                            const ScreenResolution& screen,
                                            bool normalized) {
  StackedHistogramPlot plot;
  plot.height = screen.height;
  plot.normalized = normalized;
  plot.segment_heights.assign(result.x_buckets,
                              std::vector<int>(result.y_buckets, 0));
  plot.bar_heights.assign(result.x_buckets, 0);

  double max_count = 0;
  for (int x = 0; x < result.x_buckets; ++x) {
    max_count = std::max(
        max_count, static_cast<double>(result.x_counts[x]) /
                       result.sample_rate);
  }
  plot.max_estimated_count = max_count;
  if (max_count <= 0) return plot;

  for (int x = 0; x < result.x_buckets; ++x) {
    double bar_total = static_cast<double>(result.x_counts[x]);
    if (bar_total <= 0) continue;
    double bar_scale;
    if (normalized) {
      bar_scale = screen.height / bar_total;  // every bar fills the height
    } else {
      bar_scale = screen.height / (max_count * result.sample_rate);
    }
    plot.bar_heights[x] = static_cast<int>(std::lround(bar_total * bar_scale));
    for (int y = 0; y < result.y_buckets; ++y) {
      double segment = static_cast<double>(result.Count(x, y));
      plot.segment_heights[x][y] =
          static_cast<int>(std::lround(segment * bar_scale));
    }
  }
  return plot;
}

HeatMapPlot RenderHeatMap(const Histogram2DResult& result, int colors,
                          bool log_scale) {
  HeatMapPlot plot;
  plot.x_bins = result.x_buckets;
  plot.y_bins = result.y_buckets;
  plot.colors = colors;
  plot.log_scale = log_scale;
  plot.color.assign(result.xy.size(), 0);

  double max_density = 0;
  for (int64_t c : result.xy) {
    max_density = std::max(max_density,
                           static_cast<double>(c) / result.sample_rate);
  }
  plot.max_density = max_density;
  if (max_density <= 0) return plot;

  for (size_t i = 0; i < result.xy.size(); ++i) {
    double density = static_cast<double>(result.xy[i]) / result.sample_rate;
    if (density <= 0) continue;  // color 0 = background
    double fraction;
    if (log_scale) {
      fraction = std::log1p(density) / std::log1p(max_density);
    } else {
      fraction = density / max_density;
    }
    // Colors 1..colors-1 encode density; nearest-shade quantization is the
    // "one color shade" guarantee's rounding step.
    int shade = 1 + static_cast<int>(std::lround(fraction * (colors - 2)));
    plot.color[i] = std::min(shade, colors - 1);
  }
  return plot;
}

TrellisPlot RenderTrellis(const TrellisResult& result, int colors) {
  TrellisPlot plot;
  plot.plots.reserve(result.groups.size());
  for (const auto& group : result.groups) {
    plot.plots.push_back(RenderHeatMap(group, colors));
  }
  return plot;
}

std::string AsciiHistogram(const HistogramPlot& plot, int rows) {
  std::string out;
  if (plot.bar_heights.empty() || rows <= 0) return out;
  for (int r = rows; r >= 1; --r) {
    double cutoff = static_cast<double>(r) / rows * plot.height;
    for (int h : plot.bar_heights) {
      out += (h >= cutoff) ? '#' : ' ';
    }
    out += '\n';
  }
  out += std::string(plot.bar_heights.size(), '-');
  out += '\n';
  return out;
}

std::string AsciiCdf(const CdfPlot& plot, int rows) {
  std::string out;
  if (plot.pixel_y.empty() || rows <= 0) return out;
  for (int r = rows; r >= 1; --r) {
    double cutoff = static_cast<double>(r) / rows * plot.height;
    double prev_cutoff = static_cast<double>(r - 1) / rows * plot.height;
    for (int y : plot.pixel_y) {
      out += (y >= prev_cutoff && y < cutoff) ? '*'
             : (y >= cutoff)                  ? ' '
                                              : ' ';
    }
    out += '\n';
  }
  return out;
}

std::string AsciiHeatMap(const HeatMapPlot& plot) {
  static const char kShades[] = " .:-=+*#%@";
  std::string out;
  for (int y = plot.y_bins - 1; y >= 0; --y) {
    for (int x = 0; x < plot.x_bins; ++x) {
      int shade = plot.ColorAt(x, y);
      int idx = shade * (static_cast<int>(sizeof(kShades)) - 2) /
                std::max(1, plot.colors - 1);
      out += kShades[std::min<int>(idx, sizeof(kShades) - 2)];
    }
    out += '\n';
  }
  return out;
}

}  // namespace hillview
