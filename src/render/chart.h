#ifndef HILLVIEW_RENDER_CHART_H_
#define HILLVIEW_RENDER_CHART_H_

#include <string>
#include <vector>

#include "render/screen.h"
#include "sketch/histogram.h"
#include "sketch/histogram2d.h"

namespace hillview {

/// A rendered histogram: per-bar pixel heights. The tallest bar is scaled to
/// the full height V (§4.3: "we should scale the bars so that the largest
/// one has V pixels"); each bar is within 1 pixel of the ideal rendering
/// with high probability (Fig 3a).
struct HistogramPlot {
  std::vector<int> bar_heights;  // pixels, one per bucket
  double max_estimated_count = 0;  // count the full height V represents
  int height = 0;                  // V
  /// Count represented by one pixel (max_estimated_count / V).
  double CountPerPixel() const {
    return height > 0 ? max_estimated_count / height : 0;
  }
};

HistogramPlot RenderHistogram(const HistogramResult& result,
                              const ScreenResolution& screen);

/// A rendered CDF: for each horizontal pixel, the cumulative fraction
/// quantized to a pixel row in [0, V] (Fig 13a).
struct CdfPlot {
  std::vector<int> pixel_y;  // one entry per horizontal pixel
  int height = 0;
};

/// Renders a CDF from a histogram summary whose buckets are one per
/// horizontal pixel (§B.1: the cdf vizketch "has H bins").
CdfPlot RenderCdf(const HistogramResult& result,
                  const ScreenResolution& screen);

/// A rendered stacked histogram: each bar is subdivided into colored
/// segments, in pixels (Fig 13c). When `normalized`, every bar is scaled to
/// the full height (the paper's normalized stacked histogram, which requires
/// an exact — unsampled — summary).
struct StackedHistogramPlot {
  /// segment_heights[x][y] = pixel height of color segment y in bar x.
  std::vector<std::vector<int>> segment_heights;
  std::vector<int> bar_heights;  // total bar pixels per x
  double max_estimated_count = 0;
  int height = 0;
  bool normalized = false;
};

StackedHistogramPlot RenderStackedHistogram(const Histogram2DResult& result,
                                            const ScreenResolution& screen,
                                            bool normalized);

/// A rendered heat map: a color index in [0, colors) per bin, 0 = empty
/// (Fig 13d). The color of a bin is within one shade of the ideal rendering
/// with high probability. Log-scale color maps require an exact summary.
struct HeatMapPlot {
  int x_bins = 0;
  int y_bins = 0;
  std::vector<int> color;  // x_bins * y_bins, row-major
  int colors = ChartDefaults::kDistinctColors;
  double max_density = 0;  // estimated count of the densest bin
  bool log_scale = false;

  int ColorAt(int x, int y) const { return color[x * y_bins + y]; }
};

HeatMapPlot RenderHeatMap(const Histogram2DResult& result,
                          int colors = ChartDefaults::kDistinctColors,
                          bool log_scale = false);

/// A trellis of heat maps (Fig 2): one plot per group, each rendered at the
/// proportionally smaller per-plot resolution.
struct TrellisPlot {
  std::vector<HeatMapPlot> plots;
};

TrellisPlot RenderTrellis(const TrellisResult& result,
                          int colors = ChartDefaults::kDistinctColors);

/// ASCII renderings for terminal demos and examples.
std::string AsciiHistogram(const HistogramPlot& plot, int rows = 12);
std::string AsciiCdf(const CdfPlot& plot, int rows = 12);
std::string AsciiHeatMap(const HeatMapPlot& plot);

}  // namespace hillview

#endif  // HILLVIEW_RENDER_CHART_H_
