// Fault-tolerance demo (§5.7–5.8): derived views survive a worker crash via
// the root's redo log. The demo builds a filtered view, kills a worker,
// re-runs the query, and prints the log that made recovery possible.
//
//   ./examples/fault_tolerance_demo

#include <cstdio>

#include "cluster/root.h"
#include "spreadsheet/spreadsheet.h"
#include "workload/flights.h"

using namespace hillview;

int main() {
  std::vector<cluster::WorkerPtr> workers;
  for (int w = 0; w < 3; ++w) {
    workers.push_back(
        std::make_shared<cluster::Worker>("w" + std::to_string(w), 2));
  }
  cluster::SimulatedNetwork network;
  cluster::Cluster deployment(workers, &network);
  auto session = deployment.OpenSession();
  cluster::RootSession& root = *session;
  if (!root.LoadDataSet("flights",
                        workload::FlightsLoaders(120000, 20000, 3))
           .ok()) {
    return 1;
  }
  Spreadsheet sheet(&root, "flights", {400, 200});

  // Build a chain of derived soft state: filter, then a derived column.
  auto delayed = sheet.FilterRange("DepDelay", 15, 1e9);
  if (!delayed.ok()) return 1;
  auto with_ratio = delayed.value().WithColumn(
      "DelayRatio", DataKind::kDouble, {"DepDelay", "ArrDelay"},
      [](const std::vector<Value>& in) -> Value {
        const auto* dep = std::get_if<double>(&in[0]);
        const auto* arr = std::get_if<double>(&in[1]);
        if (dep == nullptr || arr == nullptr || *dep == 0) {
          return std::monostate{};
        }
        return *arr / *dep;
      });
  if (!with_ratio.ok()) return 1;

  auto before = with_ratio.value().ColumnRange("DelayRatio");
  std::printf("before crash: mean DelayRatio = %.3f over %lld rows\n",
              before.value().Mean(),
              (long long)before.value().present_count);

  // Crash a worker: all its partitions and derived datasets vanish.
  std::printf("\n*** killing worker 1 (drops %s state) ***\n\n",
              workers[1]->name().c_str());
  root.RestartWorker(1);

  // The same query heals transparently: the root notices the missing soft
  // state (Unavailable), replays its redo log, and retries. The sampled
  // seeds in the log make randomized vizketches reproducible.
  root.cache().Clear();  // force recomputation rather than a cache hit
  auto after = with_ratio.value().ColumnRange("DelayRatio");
  if (!after.ok()) {
    std::printf("recovery failed: %s\n", after.status().ToString().c_str());
    return 1;
  }
  std::printf("after recovery: mean DelayRatio = %.3f over %lld rows\n",
              after.value().Mean(), (long long)after.value().present_count);
  std::printf("results identical: %s\n",
              before.value().present_count == after.value().present_count
                  ? "yes"
                  : "NO (bug!)");

  std::printf("\nredo log (the only persistent structure, §5.7):\n%s",
              root.redo_log().ToText().c_str());
  return 0;
}
