// Log explorer: the motivating scenario of §3.1 — a datacenter's server logs
// ("50 servers logging 100 columns..."), browsed with text search, filtering
// and trellis-style grouping. Demonstrates the string-oriented vizketches:
// find-text, string histograms, heavy hitters, and progressive results with
// cancellation.
//
//   ./examples/log_explorer [rows]

#include <algorithm>
#include <cstdio>

#include "cluster/root.h"
#include "render/chart.h"
#include "spreadsheet/spreadsheet.h"
#include "workload/logs.h"

using namespace hillview;

int main(int argc, char** argv) {
  uint64_t rows = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 400000;

  std::vector<cluster::WorkerPtr> workers;
  for (int w = 0; w < 4; ++w) {
    workers.push_back(
        std::make_shared<cluster::Worker>("w" + std::to_string(w), 2));
  }
  cluster::SimulatedNetwork network;
  cluster::Cluster deployment(workers, &network);
  auto session = deployment.OpenSession();
  cluster::RootSession& root = *session;
  workload::LogsOptions log_options;
  if (!root.LoadDataSet("logs",
                        workload::LogsLoaders(rows, 50000, 7, log_options))
           .ok()) {
    return 1;
  }
  ScreenResolution screen{72, 14};
  Spreadsheet sheet(&root, "logs", screen);

  std::printf("browsing %llu log rows from %d servers\n\n",
              (unsigned long long)rows, log_options.num_servers);

  // 1. Which severity levels occur? (string histogram, one bar per level)
  auto levels = sheet.Histogram("Level", /*exact=*/true);
  if (levels.ok()) {
    auto labels = sheet.DistinctStrings("Level");
    std::printf("events by level:\n");
    std::vector<std::string> names;
    for (const auto& [h, v] : labels.value().items) names.push_back(v);
    std::sort(names.begin(), names.end());
    for (size_t b = 0; b < levels.value().counts.size(); ++b) {
      std::printf("  %-6s %10lld\n",
                  b < names.size() ? names[b].c_str() : "?",
                  (long long)levels.value().counts[b]);
    }
  }

  // 2. Free-form text search (§3.3: "Search free-form text (e.g., server
  //    Gandalf)").
  StringFilter gandalf;
  gandalf.text = "gandalf";
  RecordOrder by_time({{"Timestamp", true}});
  auto found = sheet.FindText(by_time, {"Server"}, gandalf, std::nullopt);
  if (found.ok()) {
    std::printf("\nsearch 'gandalf' in Server: %lld matching rows\n",
                (long long)found.value().match_count);
  }

  // 3. Drill into errors on one component: filter + filter + heavy hitters.
  auto errors = sheet.FilterEquals("Level", "ERROR");
  if (errors.ok()) {
    auto count = errors.value().RowCount();
    std::printf("\nERROR rows: %lld; busiest servers:\n",
                (long long)count.value_or(0));
    auto hh = errors.value().HeavyHitters("Server", 60);
    if (hh.ok()) {
      for (size_t i = 0; i < hh.value().size() && i < 8; ++i) {
        const auto& item = hh.value()[i];
        std::printf("  %-14s %8lld\n", ValueToString(item.value).c_str(),
                    (long long)item.count);
      }
    }
  }

  // 4. Latency distribution, rendered progressively: subscribe to partial
  //    results like the browser does, then show the final chart.
  auto stream = sheet.HistogramStream("LatencyMs");
  if (stream.ok()) {
    int partials = 0;
    stream.value()->Subscribe(
        [&partials](const PartialResult<HistogramResult>& p) {
          ++partials;
          std::printf("  partial #%d at progress %.0f%%\n", partials,
                      p.progress * 100);
        });
    auto last = stream.value()->BlockingLast();
    if (last.has_value()) {
      std::printf("latency histogram (converged after %d updates):\n%s",
                  partials,
                  AsciiHistogram(RenderHistogram(last->value, screen), 7)
                      .c_str());
    }
  }

  // 5. Cancellation: start a scan and cancel it immediately (§5.3).
  auto token = std::make_shared<CancellationToken>();
  auto cancelled = sheet.HistogramStream("MemoryMb", token);
  if (cancelled.ok()) {
    token->Cancel();
    cancelled.value()->BlockingLast();
    std::printf("\nsecond scan cancelled: final status = %s\n",
                cancelled.value()->final_status().ToString().c_str());
  }

  std::printf("\nroot received %.1f KB total\n",
              network.bytes_received_by_root() / 1024.0);
  return 0;
}
