// Flights explorer: the paper's own demo scenario (§7) — browse an airline
// on-time performance dataset with charts, filtering (zoom-in), heavy
// hitters, and derived columns, on a multi-worker deployment.
//
//   ./examples/flights_explorer [rows] [workers] [mmap-dir]
//
// With a third argument, partitions are first spilled to HVCF files in that
// directory and served through the mmap storage backend (zero-copy scans out
// of the page cache) instead of being regenerated in memory.
//
// Walks an analyst session: overview histogram -> zoom into the delayed
// flights -> which airlines dominate -> how delays correlate -> derive a
// speed column. Every chart is a vizketch; every view is display-sized.

#include <cstdio>

#include "cluster/root.h"
#include "render/chart.h"
#include "spreadsheet/spreadsheet.h"
#include "workload/flights.h"

using namespace hillview;

int main(int argc, char** argv) {
  uint64_t rows = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 400000;
  int num_workers = argc > 2 ? std::atoi(argv[2]) : 4;

  std::printf("spinning up %d workers with %llu flight rows...\n",
              num_workers, (unsigned long long)rows);
  std::vector<cluster::WorkerPtr> workers;
  for (int w = 0; w < num_workers; ++w) {
    workers.push_back(
        std::make_shared<cluster::Worker>("w" + std::to_string(w), 2));
  }
  cluster::SimulatedNetwork network;
  cluster::Cluster deployment(workers, &network);
  auto session = deployment.OpenSession();
  cluster::RootSession& root = *session;
  std::vector<LocalDataSet::Loader> loaders;
  if (argc > 3) {
    std::printf("spilling partitions to %s and serving them via mmap...\n",
                argv[3]);
    auto file_loaders = workload::FlightsFileLoaders(
        argv[3], rows, 50000, 42, StorageBackend::kMmap);
    if (!file_loaders.ok()) {
      std::fprintf(stderr, "%s\n", file_loaders.status().ToString().c_str());
      return 1;
    }
    loaders = file_loaders.Take();
  } else {
    loaders = workload::FlightsLoaders(rows, 50000, 42);
  }
  if (!root.LoadDataSet("flights", std::move(loaders)).ok()) {
    return 1;
  }
  ScreenResolution screen{72, 16};
  Spreadsheet sheet(&root, "flights", screen);

  // 1. Overview first (Shneiderman's mantra): departure delay distribution.
  auto hist = sheet.Histogram("DepDelay");
  if (!hist.ok()) return 1;
  std::printf("\ndeparture delay histogram (sampled, rate %.4f):\n%s",
              hist.value().sample_rate,
              AsciiHistogram(RenderHistogram(hist.value(), screen), 8).c_str());

  // 2. Zoom and filter: the delayed tail only.
  auto delayed = sheet.FilterRange("DepDelay", 30, 1e9);
  if (!delayed.ok()) return 1;
  auto delayed_rows = delayed.value().RowCount();
  std::printf("\nflights delayed >30 min: %lld\n",
              (long long)delayed_rows.value_or(0));

  // 3. Details on demand: who dominates the delayed tail?
  auto hh = delayed.value().HeavyHitters("Airline", 10);
  if (hh.ok()) {
    std::printf("airlines among delayed flights:\n");
    for (const auto& item : hh.value()) {
      std::printf("  %-4s %8lld\n",
                  ValueToString(item.value).c_str(), (long long)item.count);
    }
  }

  // 4. Correlation: departure vs arrival delay heat map.
  auto heat = sheet.HeatMap("DepDelay", "ArrDelay");
  if (heat.ok()) {
    HeatMapPlot plot = RenderHeatMap(heat.value());
    std::printf("\ndep vs arr delay heat map (%dx%d bins):\n%s",
                plot.x_bins, plot.y_bins, AsciiHeatMap(plot).c_str());
  }

  // 5. User-defined map: derive ground speed and summarize it.
  auto derived = sheet.WithColumn(
      "SpeedMph", DataKind::kDouble, {"Distance", "AirTime"},
      [](const std::vector<Value>& in) -> Value {
        const auto* d = std::get_if<double>(&in[0]);
        const auto* t = std::get_if<double>(&in[1]);
        if (d == nullptr || t == nullptr || *t <= 0) return std::monostate{};
        return *d / (*t / 60.0);
      });
  if (derived.ok()) {
    auto speed = derived.value().ColumnRange("SpeedMph");
    if (speed.ok()) {
      std::printf("\nderived SpeedMph: mean %.0f mph (stddev %.0f) over %lld"
                  " flights\n",
                  speed.value().Mean(), std::sqrt(speed.value().Variance()),
                  (long long)speed.value().present_count);
    }
  }

  // 6. Tabular view: the longest flights.
  auto page = sheet.TableView(RecordOrder({{"Distance", false}}),
                              {"Airline", "Origin", "Dest"}, std::nullopt, 5);
  if (page.ok()) {
    std::printf("\nlongest flights:\n");
    for (const auto& row : page.value().rows) {
      std::printf("  %6s mi  %s  %s->%s\n",
                  ValueToString(row.values[0]).c_str(),
                  ValueToString(row.values[1]).c_str(),
                  ValueToString(row.values[2]).c_str(),
                  ValueToString(row.values[3]).c_str());
    }
  }

  std::printf("\ntotals: root received %.1f KB over %llu messages for this "
              "whole session\n",
              network.bytes_received_by_root() / 1024.0,
              (unsigned long long)network.messages_up());
  return 0;
}
