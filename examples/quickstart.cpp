// Quickstart: load a CSV, stand up a single-machine Hillview deployment, and
// render a histogram, a CDF and a table view in the terminal.
//
// This walks the same path a real deployment takes — partition the data,
// register it with a root session, and let two-phase vizketch execution
// produce display-sized summaries — just with one in-process "worker".
//
//   ./examples/quickstart [csv-file]
//
// Without an argument a small demo CSV is generated on the fly.

#include <cstdio>
#include <fstream>

#include "cluster/root.h"
#include "render/chart.h"
#include "spreadsheet/spreadsheet.h"
#include "storage/csv.h"

using namespace hillview;

namespace {

// Writes a tiny demo CSV so the example is runnable with no inputs.
std::string WriteDemoCsv() {
  std::string path = "/tmp/hillview_quickstart_demo.csv";
  std::ofstream out(path);
  out << "city,population,area_km2\n";
  const char* rows[] = {
      "Springfield,167000,110", "Shelbyville,94000,85",
      "Ogdenville,31000,40",    "North Haverbrook,12000,22",
      "Capital City,845000,310", "Brockway,52000,61",
      "Monorail Falls,8000,18",  "East Springfield,44000,52",
  };
  for (const char* row : rows) out << row << "\n";
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path = argc > 1 ? argv[1] : WriteDemoCsv();
  std::printf("loading %s ...\n", path.c_str());

  // 1. A deployment: one worker with two threads behind a shared Cluster
  //    (workers, health, cache, scheduler), and one tenant session that owns
  //    the redo log and render generations.
  auto worker = std::make_shared<cluster::Worker>("worker0", 2);
  cluster::SimulatedNetwork network;
  cluster::Cluster deployment({worker}, &network);
  auto session = deployment.OpenSession();
  cluster::RootSession& root = *session;

  // 2. Register the CSV as a (re-loadable) dataset. The loader runs lazily;
  //    if the worker ever drops its state, the file is simply re-read.
  Status s = root.LoadDataSet(
      "csv", {[path]() -> Result<TablePtr> { return ReadCsv(path); }});
  if (!s.ok()) {
    std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // 3. A spreadsheet over the dataset, targeting a small terminal "screen".
  Spreadsheet sheet(&root, "csv", ScreenResolution{60, 16});

  auto rows = sheet.RowCount();
  if (!rows.ok()) {
    std::fprintf(stderr, "%s\n", rows.status().ToString().c_str());
    return 1;
  }
  std::printf("rows: %lld\n\n", static_cast<long long>(rows.value()));

  // 4. Histogram of the first numeric column.
  std::string numeric_column;
  auto table = worker->GetDataSet("csv");
  // (Schema discovery: in a real deployment the UI gets the schema from a
  // metadata call; here we peek at the first partition.)
  auto hist_col = sheet.ColumnRange("population");
  numeric_column = hist_col.ok() && hist_col.value().present_count > 0
                       ? "population"
                       : "";
  if (!numeric_column.empty()) {
    auto hist = sheet.Histogram(numeric_column, /*exact=*/true);
    if (hist.ok()) {
      HistogramPlot plot =
          RenderHistogram(hist.value(), ScreenResolution{60, 16});
      std::printf("histogram of %s (max bucket = %.0f rows):\n%s\n",
                  numeric_column.c_str(), plot.max_estimated_count,
                  AsciiHistogram(plot, 8).c_str());
    }
    auto cdf = sheet.Cdf(numeric_column, /*exact=*/true);
    if (cdf.ok()) {
      CdfPlot plot = RenderCdf(cdf.value(), ScreenResolution{60, 16});
      std::printf("cdf of %s:\n%s\n", numeric_column.c_str(),
                  AsciiCdf(plot, 8).c_str());
    }
  }

  // 5. A table view: first rows sorted by the numeric column, descending.
  RecordOrder order({{numeric_column.empty() ? "city" : numeric_column,
                      false}});
  auto page = sheet.TableView(order, {"city"}, std::nullopt, 5);
  if (page.ok()) {
    std::printf("top rows by %s:\n", order.orientations()[0].column.c_str());
    for (const auto& row : page.value().rows) {
      std::printf("  %-24s", ValueToString(row.values.back()).c_str());
      std::printf(" %12s", ValueToString(row.values[0]).c_str());
      if (row.count > 1) std::printf("  (x%lld)", (long long)row.count);
      std::printf("\n");
    }
  }

  std::printf("\nroot received %llu bytes over the (simulated) network\n",
              (unsigned long long)network.bytes_received_by_root());
  return 0;
}
