// Tests for the storage-backend seam (storage/columnar_file.h v2 +
// storage/mmap_file.h): heap and mmap backends must be interchangeable under
// every scan — same values, same null masks, same dictionaries, byte-identical
// sketch summaries — and a mapped open must validate file structure up front,
// rejecting truncated or corrupted files instead of serving garbage.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "sketch/heavy_hitters.h"
#include "sketch/histogram.h"
#include "storage/columnar_file.h"
#include "storage/membership.h"
#include "util/serialize.h"

namespace hillview {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// A table exercising every column kind, with missing values placed on and
// around 64-row null-word boundaries.
TablePtr BoundaryTable(uint32_t rows = 130) {
  ColumnBuilder ints(DataKind::kInt);
  ColumnBuilder doubles(DataKind::kDouble);
  ColumnBuilder strings(DataKind::kString);
  ColumnBuilder dates(DataKind::kDate);
  auto missing_here = [](uint32_t r) {
    return r == 0 || r == 63 || r == 64 || r == 127 || r == 128 || r == 129;
  };
  for (uint32_t r = 0; r < rows; ++r) {
    if (missing_here(r)) {
      ints.AppendMissing();
      doubles.AppendMissing();
      strings.AppendMissing();
      dates.AppendMissing();
    } else {
      ints.AppendInt(static_cast<int32_t>(r) - 40);
      doubles.AppendDouble(r * 0.25);
      strings.AppendString("key" + std::to_string(r % 7));
      dates.AppendDate(1000000LL * r);
    }
  }
  return Table::Create(Schema({{"i", DataKind::kInt},
                               {"d", DataKind::kDouble},
                               {"s", DataKind::kString},
                               {"t", DataKind::kDate}}),
                       {ints.Finish(), doubles.Finish(), strings.Finish(),
                        dates.Finish()});
}

void ExpectSameRows(const Table& a, const Table& b) {
  ASSERT_EQ(a.num_rows(), b.num_rows());
  ASSERT_EQ(a.num_columns(), b.num_columns());
  std::vector<std::string> names;
  for (const auto& desc : a.schema().columns()) names.push_back(desc.name);
  for (uint32_t r = 0; r < a.num_rows(); ++r) {
    ASSERT_EQ(a.GetRow(r, names), b.GetRow(r, names)) << "row " << r;
  }
}

TEST(ColumnarStorage, HeapAndMmapRoundTripsAgree) {
  TablePtr t = BoundaryTable();
  std::string path = TempPath("hv_seam_roundtrip.hvcf");
  ASSERT_TRUE(WriteTableFile(*t, path).ok());

  auto heap = OpenTableFile(path, StorageBackend::kHeap);
  auto mmap = OpenTableFile(path, StorageBackend::kMmap);
  ASSERT_TRUE(heap.ok());
  ASSERT_TRUE(mmap.ok());
  ExpectSameRows(*t, *heap.value());
  ExpectSameRows(*t, *mmap.value());

  // The seam is observable in the accounting: the mapped table serves its
  // payloads from the file, the heap table owns them.
  EXPECT_EQ(heap.value()->MappedBytes(), 0u);
  EXPECT_GT(mmap.value()->MappedBytes(), 0u);
  EXPECT_LT(mmap.value()->MemoryBytes(), heap.value()->MemoryBytes());
  std::remove(path.c_str());
}

TEST(ColumnarStorage, NullMaskWordBoundaries) {
  TablePtr t = BoundaryTable();
  std::string path = TempPath("hv_seam_nulls.hvcf");
  ASSERT_TRUE(WriteTableFile(*t, path).ok());
  for (StorageBackend backend :
       {StorageBackend::kHeap, StorageBackend::kMmap}) {
    auto back = OpenTableFile(path, backend);
    ASSERT_TRUE(back.ok());
    for (int c = 0; c < back.value()->num_columns(); ++c) {
      const IColumn& col = *back.value()->column(c);
      for (uint32_t r = 0; r < back.value()->num_rows(); ++r) {
        EXPECT_EQ(col.IsMissing(r), t->column(c)->IsMissing(r))
            << "col " << c << " row " << r;
      }
    }
  }
  std::remove(path.c_str());
}

TEST(ColumnarStorage, EmptyAndAllMissingColumns) {
  // Zero rows: every segment is empty, the dictionary has one offset entry.
  {
    ColumnBuilder n(DataKind::kDouble);
    ColumnBuilder s(DataKind::kString);
    TablePtr t = Table::Create(
        Schema({{"n", DataKind::kDouble}, {"s", DataKind::kString}}),
        {n.Finish(), s.Finish()});
    std::string path = TempPath("hv_seam_empty.hvcf");
    ASSERT_TRUE(WriteTableFile(*t, path).ok());
    for (StorageBackend backend :
         {StorageBackend::kHeap, StorageBackend::kMmap}) {
      auto back = OpenTableFile(path, backend);
      ASSERT_TRUE(back.ok());
      EXPECT_EQ(back.value()->num_rows(), 0u);
      EXPECT_EQ(back.value()->column(1)->Dictionary().size(), 0u);
    }
    std::remove(path.c_str());
  }
  // All rows missing: the string dictionary is empty but the null mask and
  // the kMissingCode sentinel round-trip through both backends.
  {
    ColumnBuilder n(DataKind::kDouble);
    ColumnBuilder s(DataKind::kCategory);
    for (int r = 0; r < 70; ++r) {
      n.AppendMissing();
      s.AppendMissing();
    }
    TablePtr t = Table::Create(
        Schema({{"n", DataKind::kDouble}, {"s", DataKind::kCategory}}),
        {n.Finish(), s.Finish()});
    std::string path = TempPath("hv_seam_allmissing.hvcf");
    ASSERT_TRUE(WriteTableFile(*t, path).ok());
    for (StorageBackend backend :
         {StorageBackend::kHeap, StorageBackend::kMmap}) {
      auto back = OpenTableFile(path, backend);
      ASSERT_TRUE(back.ok());
      for (int c = 0; c < 2; ++c) {
        for (uint32_t r = 0; r < 70; ++r) {
          EXPECT_TRUE(back.value()->column(c)->IsMissing(r));
        }
      }
      EXPECT_EQ(back.value()->column(1)->Dictionary().size(), 0u);
    }
    std::remove(path.c_str());
  }
}

TEST(ColumnarStorage, DictionaryOrderPreservedAcrossMmap) {
  ColumnBuilder b(DataKind::kString);
  const char* words[] = {"pear", "apple", "mango", "apple", "fig",
                         "pear", "kiwi",  "fig",   "apple"};
  for (const char* w : words) b.AppendString(w);
  TablePtr t =
      Table::Create(Schema({{"s", DataKind::kString}}), {b.Finish()});
  std::string path = TempPath("hv_seam_dict.hvcf");
  ASSERT_TRUE(WriteTableFile(*t, path).ok());

  auto mapped = MapTableFile(path);
  ASSERT_TRUE(mapped.ok());
  const IColumn& col = *mapped.value().table->column(0);
  const StringDictionary& dict = col.Dictionary();
  ASSERT_TRUE(dict.mapped());
  ASSERT_EQ(dict.size(), 5u);
  // Sorted ascending, binary-searchable, and codes keep alphabetical order.
  for (uint32_t i = 1; i < dict.size(); ++i) {
    EXPECT_LT(dict[i - 1], dict[i]);
  }
  EXPECT_EQ(dict.LowerBound("apple"), 0u);
  EXPECT_EQ(dict[dict.LowerBound("mango")], "mango");
  EXPECT_EQ(dict.LowerBound("zebra"), dict.size());
  for (size_t r = 0; r < std::size(words); ++r) {
    EXPECT_EQ(col.GetString(static_cast<uint32_t>(r)), words[r]);
  }
  // CompareRows runs on codes: "apple" row < "pear" row.
  EXPECT_LT(col.CompareRows(1, 0), 0);
  std::remove(path.c_str());
}

TEST(ColumnarStorage, RejectsTruncatedAndCorruptFiles) {
  TablePtr t = BoundaryTable();
  std::string path = TempPath("hv_seam_corrupt.hvcf");
  ASSERT_TRUE(WriteTableFile(*t, path).ok());
  const std::string good = ReadFileBytes(path);
  ASSERT_GT(good.size(), 64u);

  auto expect_rejected = [&](const std::string& what) {
    EXPECT_FALSE(ReadTableFile(path).ok()) << what;
    EXPECT_FALSE(MapTableFile(path).ok()) << what;
  };

  // Truncation anywhere: the header records the exact file size.
  for (size_t cut : {good.size() - 1, good.size() / 2, size_t{40}}) {
    WriteFileBytes(path, good.substr(0, cut));
    expect_rejected("truncated to " + std::to_string(cut));
  }
  // Wrong magic / version.
  std::string bad = good;
  bad[0] = 'X';
  WriteFileBytes(path, bad);
  expect_rejected("bad magic");
  bad = good;
  bad[4] = static_cast<char>(0x7F);
  WriteFileBytes(path, bad);
  expect_rejected("bad version");
  // Unsorted dictionary: swap the pool bytes of the first two entries
  // ("key0key1..." becomes "key1key0..." with unchanged offsets).
  bad = good;
  size_t pool = bad.find("key0key1");
  ASSERT_NE(pool, std::string::npos);
  bad.replace(pool, 8, "key1key0");
  WriteFileBytes(path, bad);
  expect_rejected("unsorted dictionary");
  // Sanity: the pristine bytes still open, so the rejections above were
  // caused by the corruption, not the rewrite plumbing.
  WriteFileBytes(path, good);
  ASSERT_TRUE(ReadTableFile(path).ok());
  ASSERT_TRUE(MapTableFile(path).ok());

  std::remove(path.c_str());
}

TEST(ColumnarStorage, NullCountMismatchRejected) {
  // One double column, 70 rows, rows 0 and 65 missing: null words live in
  // the second 64-byte-aligned segment after the values. Flip a mask bit so
  // the popcount no longer matches the directory's null_count.
  ColumnBuilder b(DataKind::kDouble);
  for (int r = 0; r < 70; ++r) {
    if (r == 0 || r == 65) {
      b.AppendMissing();
    } else {
      b.AppendDouble(r);
    }
  }
  TablePtr t =
      Table::Create(Schema({{"x", DataKind::kDouble}}), {b.Finish()});
  std::string path = TempPath("hv_seam_nullcount.hvcf");
  ASSERT_TRUE(WriteTableFile(*t, path).ok());
  std::string bytes = ReadFileBytes(path);
  // Layout: header (64-byte-aligned values at 64, 70*8 = 560 bytes), null
  // words at AlignUp(64+560) = 640. Set an extra missing bit (row 1).
  const size_t null_offset = 640;
  ASSERT_LT(null_offset, bytes.size());
  bytes[null_offset] = static_cast<char>(bytes[null_offset] | 0x02);
  WriteFileBytes(path, bytes);
  EXPECT_FALSE(ReadTableFile(path).ok());
  EXPECT_FALSE(MapTableFile(path).ok());
  std::remove(path.c_str());
}

TEST(ColumnarStorage, SketchSummariesByteIdenticalAcrossBackends) {
  TablePtr t = BoundaryTable(500);
  std::string path = TempPath("hv_seam_sketch.hvcf");
  ASSERT_TRUE(WriteTableFile(*t, path).ok());
  auto summarize = [&](StorageBackend backend) {
    auto table = OpenTableFile(path, backend);
    EXPECT_TRUE(table.ok());
    StreamingHistogramSketch hist("d", NumericBuckets(0, 130, 16));
    MisraGriesSketch hitters("s", 4);
    ByteWriter w;
    hist.Summarize(*table.value(), 3).Serialize(&w);
    hitters.Summarize(*table.value(), 3).Serialize(&w);
    return w.bytes();
  };
  EXPECT_EQ(summarize(StorageBackend::kHeap),
            summarize(StorageBackend::kMmap));
  std::remove(path.c_str());
}

TEST(ColumnarStorage, PrepareScanIssuesAdviseByMembershipKind) {
  TablePtr t = BoundaryTable(1000);
  std::string path = TempPath("hv_seam_advise.hvcf");
  ASSERT_TRUE(WriteTableFile(*t, path).ok());
  auto mapped = MapTableFile(path);
  ASSERT_TRUE(mapped.ok());
  const auto& mapping = mapped.value().mapping;
  const IColumn& col = *mapped.value().table->column(0);

  MappedFile::Stats before = mapped.value().mapping->Snapshot();
  EXPECT_GT(before.mapped_bytes, 0u);

  // Full membership: one MADV_SEQUENTIAL on the column's data segment.
  col.PrepareScan(FullMembership(1000));
  MappedFile::Stats after_full = mapping->Snapshot();
  EXPECT_EQ(after_full.sequential_advises, before.sequential_advises + 1);

  // Sparse membership: batched MADV_WILLNEED over the touched page ranges.
  std::vector<uint32_t> rows = {3, 700, 990};
  col.PrepareScan(SparseMembership(rows, 1000));
  MappedFile::Stats after_sparse = mapping->Snapshot();
  EXPECT_GT(after_sparse.willneed_advises, after_full.willneed_advises);
  EXPECT_GT(after_sparse.willneed_bytes, 0u);
  EXPECT_EQ(after_sparse.advise_failures, 0);
  std::remove(path.c_str());
}

TEST(ColumnarStorage, MappedColumnSubsetAndMissingColumn) {
  TablePtr t = BoundaryTable();
  std::string path = TempPath("hv_seam_subset.hvcf");
  ASSERT_TRUE(WriteTableFile(*t, path).ok());
  MapOptions options;
  options.columns = {"s", "i"};
  auto subset = MapTableFile(path, options);
  ASSERT_TRUE(subset.ok());
  EXPECT_EQ(subset.value().table->num_columns(), 2);
  EXPECT_NE(subset.value().table->GetColumnOrNull("s"), nullptr);
  EXPECT_EQ(subset.value().table->GetColumnOrNull("d"), nullptr);
  options.columns = {"no_such_column"};
  EXPECT_FALSE(MapTableFile(path, options).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hillview
