#ifndef HILLVIEW_TESTS_TEST_UTIL_H_
#define HILLVIEW_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "cluster/root.h"
#include "core/dataset.h"
#include "storage/table.h"
#include "util/random.h"

namespace hillview {
namespace testing {

/// Builds a single-column double table named `name`.
inline TablePtr MakeDoubleTable(const std::string& name,
                                const std::vector<double>& values) {
  ColumnBuilder builder(DataKind::kDouble);
  for (double v : values) builder.AppendDouble(v);
  return Table::Create(Schema({{name, DataKind::kDouble}}),
                       {builder.Finish()});
}

inline TablePtr MakeIntTable(const std::string& name,
                             const std::vector<int32_t>& values) {
  ColumnBuilder builder(DataKind::kInt);
  for (int32_t v : values) builder.AppendInt(v);
  return Table::Create(Schema({{name, DataKind::kInt}}), {builder.Finish()});
}

inline TablePtr MakeStringTable(const std::string& name,
                                const std::vector<std::string>& values) {
  ColumnBuilder builder(DataKind::kString);
  for (const auto& v : values) builder.AppendString(v);
  return Table::Create(Schema({{name, DataKind::kString}}),
                       {builder.Finish()});
}

/// Uniform random doubles in [lo, hi), deterministic.
inline std::vector<double> UniformDoubles(size_t n, double lo, double hi,
                                          uint64_t seed) {
  Random rng(seed);
  std::vector<double> out(n);
  for (auto& v : out) v = lo + rng.NextDouble() * (hi - lo);
  return out;
}

/// Splits `values` into `parts` contiguous chunks (for mergeability tests).
inline std::vector<std::vector<double>> SplitValues(
    const std::vector<double>& values, int parts) {
  std::vector<std::vector<double>> out(parts);
  for (size_t i = 0; i < values.size(); ++i) {
    out[i % parts].push_back(values[i]);
  }
  return out;
}

/// An in-process cluster for tests: `workers` workers × `threads` threads,
/// with the dataset "data" pre-loaded from the given partition tables.
/// `root_options` tunes the session's fault policy (deadlines, retry
/// budgets, breaker); `worker_aggregation` configures each worker's internal
/// fan-out (chaos tests set progressive=false for deterministic per-channel
/// message counts).
struct TestCluster {
  std::vector<cluster::WorkerPtr> workers;
  cluster::SimulatedNetwork network;
  // Declaration order matters: sessions (and their queries) must die before
  // the Cluster, whose destructor drains the worker pools.
  std::unique_ptr<cluster::Cluster> cluster;
  std::shared_ptr<cluster::RootSession> root;

  static std::unique_ptr<TestCluster> Create(
      const std::vector<TablePtr>& partitions, int num_workers = 2,
      int threads_per_worker = 2,
      cluster::RootSession::Options root_options = {},
      ParallelDataSet::Options worker_aggregation = {}) {
    auto tc = std::make_unique<TestCluster>();
    for (int w = 0; w < num_workers; ++w) {
      tc->workers.push_back(std::make_shared<cluster::Worker>(
          "worker" + std::to_string(w), threads_per_worker,
          worker_aggregation));
    }
    tc->cluster = std::make_unique<cluster::Cluster>(
        tc->workers, &tc->network, root_options);
    tc->root = tc->cluster->OpenSession();
    std::vector<LocalDataSet::Loader> loaders;
    for (const auto& table : partitions) {
      loaders.push_back([table]() -> Result<TablePtr> { return table; });
    }
    Status s = tc->root->LoadDataSet("data", loaders);
    if (!s.ok()) return nullptr;
    return tc;
  }
};

}  // namespace testing
}  // namespace hillview

#endif  // HILLVIEW_TESTS_TEST_UTIL_H_
