#include <gtest/gtest.h>

#include <map>

#include "sketch/find_text.h"
#include "sketch/heavy_hitters.h"
#include "sketch/next_items.h"
#include "sketch/sample_size.h"
#include "test_util.h"

namespace hillview {
namespace {

using testing::MakeIntTable;
using testing::MakeStringTable;

// --- Next items ---------------------------------------------------------------

TEST(NextItems, FirstPageFromStart) {
  TablePtr t = MakeIntTable("n", {5, 3, 9, 1, 7});
  NextItemsSketch sketch(RecordOrder({{"n", true}}), {}, std::nullopt, 3);
  NextItemsResult r = sketch.Summarize(*t, 0);
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0].values[0], Value(int64_t{1}));
  EXPECT_EQ(r.rows[1].values[0], Value(int64_t{3}));
  EXPECT_EQ(r.rows[2].values[0], Value(int64_t{5}));
  EXPECT_EQ(r.rows_before, 0);
}

TEST(NextItems, StartKeyIsExclusive) {
  TablePtr t = MakeIntTable("n", {5, 3, 9, 1, 7});
  NextItemsSketch sketch(RecordOrder({{"n", true}}), {},
                         std::vector<Value>{Value(int64_t{5})}, 3);
  NextItemsResult r = sketch.Summarize(*t, 0);
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0].values[0], Value(int64_t{7}));
  EXPECT_EQ(r.rows[1].values[0], Value(int64_t{9}));
  EXPECT_EQ(r.rows_before, 3);  // 1, 3, 5
}

TEST(NextItems, AggregatesDuplicatesWithCounts) {
  TablePtr t = MakeIntTable("n", {2, 2, 2, 1, 3, 1});
  NextItemsSketch sketch(RecordOrder({{"n", true}}), {}, std::nullopt, 2);
  NextItemsResult r = sketch.Summarize(*t, 0);
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0].values[0], Value(int64_t{1}));
  EXPECT_EQ(r.rows[0].count, 2);
  EXPECT_EQ(r.rows[1].values[0], Value(int64_t{2}));
  EXPECT_EQ(r.rows[1].count, 3);
}

TEST(NextItems, DescendingOrder) {
  TablePtr t = MakeIntTable("n", {5, 3, 9});
  NextItemsSketch sketch(RecordOrder({{"n", false}}), {}, std::nullopt, 2);
  NextItemsResult r = sketch.Summarize(*t, 0);
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0].values[0], Value(int64_t{9}));
  EXPECT_EQ(r.rows[1].values[0], Value(int64_t{5}));
}

TEST(NextItems, DisplayColumnsAreCarried) {
  ColumnBuilder n(DataKind::kInt), s(DataKind::kString);
  n.AppendInt(2);
  n.AppendInt(1);
  s.AppendString("two");
  s.AppendString("one");
  TablePtr t =
      Table::Create(Schema({{"n", DataKind::kInt}, {"s", DataKind::kString}}),
                    {n.Finish(), s.Finish()});
  NextItemsSketch sketch(RecordOrder({{"n", true}}), {"s"}, std::nullopt, 1);
  NextItemsResult r = sketch.Summarize(*t, 0);
  ASSERT_EQ(r.rows.size(), 1u);
  ASSERT_EQ(r.rows[0].values.size(), 2u);
  EXPECT_EQ(r.rows[0].values[1], Value(std::string("one")));
}

TEST(NextItems, MergeMatchesWholeDataset) {
  std::vector<int32_t> all;
  Random rng(3);
  for (int i = 0; i < 2000; ++i) {
    all.push_back(static_cast<int32_t>(rng.NextUint64(50)));
  }
  NextItemsSketch sketch(RecordOrder({{"n", true}}), {}, std::nullopt, 10);
  NextItemsResult whole = sketch.Summarize(*MakeIntTable("n", all), 0);

  NextItemsResult merged = sketch.Zero();
  for (int part = 0; part < 4; ++part) {
    std::vector<int32_t> chunk;
    for (size_t i = part; i < all.size(); i += 4) chunk.push_back(all[i]);
    merged =
        sketch.Merge(merged, sketch.Summarize(*MakeIntTable("n", chunk), 0));
  }
  ASSERT_EQ(merged.rows.size(), whole.rows.size());
  for (size_t i = 0; i < whole.rows.size(); ++i) {
    EXPECT_EQ(merged.rows[i].values, whole.rows[i].values);
    EXPECT_EQ(merged.rows[i].count, whole.rows[i].count);
  }
}

TEST(NextItems, MissingValuesSortLast) {
  ColumnBuilder b(DataKind::kInt);
  b.AppendMissing();
  b.AppendInt(1);
  b.AppendInt(2);
  TablePtr t = Table::Create(Schema({{"n", DataKind::kInt}}), {b.Finish()});
  NextItemsSketch sketch(RecordOrder({{"n", true}}), {}, std::nullopt, 3);
  NextItemsResult r = sketch.Summarize(*t, 0);
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[2].values[0], Value(std::monostate{}));
}

// --- Find text -----------------------------------------------------------------

TEST(FindText, SubstringCaseInsensitiveByDefault) {
  TablePtr t = MakeStringTable("s", {"Gandalf", "frodo", "GANDALF the grey"});
  StringFilter filter;
  filter.text = "gandalf";
  FindTextSketch sketch(RecordOrder({{"s", true}}), {"s"}, filter,
                        std::nullopt);
  FindResult r = sketch.Summarize(*t, 0);
  EXPECT_EQ(r.match_count, 2);
  ASSERT_TRUE(r.first_match.has_value());
  EXPECT_EQ((*r.first_match)[0], Value(std::string("GANDALF the grey")));
}

TEST(FindText, CaseSensitiveExact) {
  TablePtr t = MakeStringTable("s", {"abc", "ABC", "abcd"});
  StringFilter filter;
  filter.text = "abc";
  filter.mode = StringFilter::Mode::kExact;
  filter.case_sensitive = true;
  FindTextSketch sketch(RecordOrder({{"s", true}}), {"s"}, filter,
                        std::nullopt);
  FindResult r = sketch.Summarize(*t, 0);
  EXPECT_EQ(r.match_count, 1);
}

TEST(FindText, Regex) {
  TablePtr t = MakeStringTable("s", {"flight-123", "flight-9", "train-55"});
  StringFilter filter;
  filter.text = "^flight-[0-9]{3}$";
  filter.mode = StringFilter::Mode::kRegex;
  FindTextSketch sketch(RecordOrder({{"s", true}}), {"s"}, filter,
                        std::nullopt);
  EXPECT_EQ(sketch.Summarize(*t, 0).match_count, 1);
}

TEST(FindText, NextAfterStartKey) {
  TablePtr t = MakeStringTable("s", {"apple", "apricot", "banana", "avocado"});
  StringFilter filter;
  filter.text = "a";  // substring: everything with an 'a'
  FindTextSketch sketch(RecordOrder({{"s", true}}), {"s"}, filter,
                        std::vector<Value>{Value(std::string("apple"))});
  FindResult r = sketch.Summarize(*t, 0);
  EXPECT_EQ(r.match_count, 4);
  EXPECT_EQ(r.matches_before, 1);  // "apple" itself
  ASSERT_TRUE(r.first_match.has_value());
  EXPECT_EQ((*r.first_match)[0], Value(std::string("apricot")));
}

TEST(FindText, MergePicksEarliestMatch) {
  StringFilter filter;
  filter.text = "x";
  FindTextSketch sketch(RecordOrder({{"s", true}}), {"s"}, filter,
                        std::nullopt);
  auto r1 = sketch.Summarize(*MakeStringTable("s", {"xylophone"}), 0);
  auto r2 = sketch.Summarize(*MakeStringTable("s", {"axe", "box"}), 0);
  FindResult merged = sketch.Merge(r1, r2);
  EXPECT_EQ(merged.match_count, 3);
  EXPECT_EQ((*merged.first_match)[0], Value(std::string("axe")));
}

// --- Heavy hitters ---------------------------------------------------------------

std::vector<std::string> SkewedStrings(int n, uint64_t seed) {
  // "heavy" appears 30%, "medium" 10%, the rest are near-unique.
  Random rng(seed);
  std::vector<std::string> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) {
    double u = rng.NextDouble();
    if (u < 0.30) {
      out.push_back("heavy");
    } else if (u < 0.40) {
      out.push_back("medium");
    } else {
      out.push_back("rare-" + std::to_string(rng.NextUint64(100000)));
    }
  }
  return out;
}

TEST(MisraGries, FindsHeavyElements) {
  auto values = SkewedStrings(50000, 41);
  MisraGriesSketch sketch("s", 10);
  HeavyHittersResult r = sketch.Summarize(*MakeStringTable("s", values), 0);
  auto selected = r.Select(1.0 / 20);
  ASSERT_GE(selected.size(), 2u);
  EXPECT_EQ(selected[0].value, Value(std::string("heavy")));
  EXPECT_EQ(selected[1].value, Value(std::string("medium")));
}

TEST(MisraGries, UndercountBound) {
  // MG guarantee: true_count - N/(K+1) <= count <= true_count.
  auto values = SkewedStrings(20000, 42);
  std::map<std::string, int64_t> truth;
  for (const auto& v : values) ++truth[v];
  const int k = 20;
  MisraGriesSketch sketch("s", k);
  HeavyHittersResult r = sketch.Summarize(*MakeStringTable("s", values), 0);
  for (const auto& item : r.items) {
    int64_t true_count = truth[std::get<std::string>(item.value)];
    EXPECT_LE(item.count, true_count);
    EXPECT_GE(item.count, true_count - static_cast<int64_t>(values.size()) / k);
  }
}

TEST(MisraGries, MergePreservesHeavyElements) {
  auto a = SkewedStrings(20000, 43);
  auto b = SkewedStrings(20000, 44);
  MisraGriesSketch sketch("s", 10);
  auto ra = sketch.Summarize(*MakeStringTable("s", a), 0);
  auto rb = sketch.Summarize(*MakeStringTable("s", b), 0);
  auto merged = sketch.Merge(ra, rb);
  EXPECT_LE(merged.items.size(), 10u);
  auto selected = merged.Select(1.0 / 20);
  ASSERT_FALSE(selected.empty());
  EXPECT_EQ(selected[0].value, Value(std::string("heavy")));
}

TEST(SampledHeavyHitters, Theorem4Guarantees) {
  const int k = 10;
  const double delta = 0.01;
  auto values = SkewedStrings(200000, 45);
  uint64_t n = HeavyHittersSampleSize(k, delta);
  double rate = SampleRateForSize(n, values.size());
  SampledHeavyHittersSketch sketch("s", k, rate);
  HeavyHittersResult r = sketch.Summarize(*MakeStringTable("s", values), 99);
  auto selected = r.Select(3.0 / (4 * k));
  // All elements above 1/K must be found ("heavy" 30%, "medium" 10%).
  std::set<std::string> names;
  for (const auto& item : selected) {
    names.insert(std::get<std::string>(item.value));
  }
  EXPECT_TRUE(names.count("heavy"));
  EXPECT_TRUE(names.count("medium"));
  // Nothing below 1/(4K) = 2.5% may appear; every "rare-*" is ~0.001%.
  for (const auto& name : names) {
    EXPECT_TRUE(name == "heavy" || name == "medium") << name;
  }
}

TEST(SampledHeavyHitters, MergeAddsSampleCounts) {
  SampledHeavyHittersSketch sketch("s", 5, 0.5);
  auto a = sketch.Summarize(*MakeStringTable("s", {"x", "x", "y"}), 1);
  auto b = sketch.Summarize(*MakeStringTable("s", {"x", "z"}), 2);
  auto merged = sketch.Merge(a, b);
  EXPECT_EQ(merged.rows_counted, a.rows_counted + b.rows_counted);
}

TEST(HeavyHittersResult, SelectSortsByCount) {
  HeavyHittersResult r;
  r.max_size = 3;
  r.rows_counted = 100;
  r.items = {{Value(std::string("b")), 30},
             {Value(std::string("a")), 50},
             {Value(std::string("c")), 5}};
  auto selected = r.Select(0.1);
  ASSERT_EQ(selected.size(), 2u);
  EXPECT_EQ(selected[0].value, Value(std::string("a")));
  EXPECT_EQ(selected[1].value, Value(std::string("b")));
}

}  // namespace
}  // namespace hillview
