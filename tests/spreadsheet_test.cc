#include <gtest/gtest.h>

#include <filesystem>

#include "spreadsheet/spreadsheet.h"
#include "storage/columnar_file.h"
#include "test_util.h"
#include "workload/flights.h"

namespace hillview {
namespace {

using workload::FlightsLoaders;

/// Shared fixture: a 4-worker cluster with 80k synthetic flight rows.
class SpreadsheetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workers_ = new std::vector<cluster::WorkerPtr>();
    for (int w = 0; w < 4; ++w) {
      workers_->push_back(std::make_shared<cluster::Worker>(
          "w" + std::to_string(w), 2));
    }
    network_ = new cluster::SimulatedNetwork();
    cluster_ = new cluster::Cluster(*workers_, network_);
    session_holder_ = cluster_->OpenSession();
    session_ = session_holder_.get();
    auto loaders = FlightsLoaders(80000, 10000, /*seed=*/2024);
    ASSERT_TRUE(session_->LoadDataSet("flights", loaders).ok());
    sheet_ = new Spreadsheet(session_, "flights", {400, 200});
  }

  static void TearDownTestSuite() {
    delete sheet_;
    session_ = nullptr;
    session_holder_.reset();
    delete cluster_;  // drains worker pools before the network/workers die
    delete network_;
    delete workers_;
    sheet_ = nullptr;
  }

  static std::vector<cluster::WorkerPtr>* workers_;
  static cluster::SimulatedNetwork* network_;
  static cluster::Cluster* cluster_;
  static std::shared_ptr<cluster::RootSession> session_holder_;
  static cluster::RootSession* session_;
  static Spreadsheet* sheet_;
};

std::vector<cluster::WorkerPtr>* SpreadsheetTest::workers_ = nullptr;
cluster::SimulatedNetwork* SpreadsheetTest::network_ = nullptr;
cluster::Cluster* SpreadsheetTest::cluster_ = nullptr;
std::shared_ptr<cluster::RootSession> SpreadsheetTest::session_holder_;
cluster::RootSession* SpreadsheetTest::session_ = nullptr;
Spreadsheet* SpreadsheetTest::sheet_ = nullptr;

TEST_F(SpreadsheetTest, RowCountAndRange) {
  auto rows = sheet_->RowCount();
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value(), 80000);

  auto range = sheet_->ColumnRange("Distance");
  ASSERT_TRUE(range.ok());
  EXPECT_GT(range.value().max, range.value().min);
  EXPECT_GT(range.value().present_count, 0);
}

TEST_F(SpreadsheetTest, NumericHistogramExactVsSampledShape) {
  auto exact = sheet_->Histogram("DepDelay", /*exact=*/true);
  ASSERT_TRUE(exact.ok());
  auto sampled = sheet_->Histogram("DepDelay");
  ASSERT_TRUE(sampled.ok());
  ASSERT_EQ(exact.value().counts.size(), sampled.value().counts.size());
  // Same total mass after scaling, within sampling noise.
  EXPECT_NEAR(sampled.value().TotalCount() / sampled.value().sample_rate,
              static_cast<double>(exact.value().TotalCount()),
              0.05 * exact.value().TotalCount());
  // Cancelled flights have missing DepDelay.
  EXPECT_GT(exact.value().missing, 0);
}

TEST_F(SpreadsheetTest, StringHistogramBucketsPerAirline) {
  auto hist = sheet_->Histogram("Airline", /*exact=*/true);
  ASSERT_TRUE(hist.ok());
  // 18 airlines -> one bucket per distinct value.
  EXPECT_EQ(hist.value().counts.size(), 18u);
  EXPECT_EQ(hist.value().TotalCount(), 80000);
}

TEST_F(SpreadsheetTest, CdfIsMonotoneInCounts) {
  auto cdf = sheet_->Cdf("Distance", /*exact=*/true);
  ASSERT_TRUE(cdf.ok());
  EXPECT_EQ(cdf.value().counts.size(), 400u);  // one per horizontal pixel
  EXPECT_EQ(cdf.value().TotalCount(), 80000);
}

TEST_F(SpreadsheetTest, StackedHistogramAndHeatMap) {
  auto stacked = sheet_->StackedHistogram("DayOfWeek", "Airline", true);
  ASSERT_TRUE(stacked.ok());
  EXPECT_EQ(stacked.value().x_buckets, 7);
  int64_t total = 0;
  for (int64_t c : stacked.value().x_counts) total += c;
  EXPECT_EQ(total, 80000);

  auto heat = sheet_->HeatMap("DepDelay", "ArrDelay");
  ASSERT_TRUE(heat.ok());
  EXPECT_GT(heat.value().x_buckets, 10);
  EXPECT_GT(heat.value().y_buckets, 10);
}

TEST_F(SpreadsheetTest, TrellisGroupsByAirline) {
  auto trellis = sheet_->TrellisHeatMaps("Airline", "DepDelay", "ArrDelay", 4);
  ASSERT_TRUE(trellis.ok());
  EXPECT_EQ(trellis.value().groups.size(), 4u);
}

TEST_F(SpreadsheetTest, TableViewPagination) {
  RecordOrder order({{"Distance", true}});
  auto page1 = sheet_->TableView(order, {"Airline"}, std::nullopt, 10);
  ASSERT_TRUE(page1.ok());
  ASSERT_EQ(page1.value().rows.size(), 10u);
  // Rows sorted ascending by Distance.
  for (size_t i = 1; i < page1.value().rows.size(); ++i) {
    EXPECT_LE(std::get<double>(page1.value().rows[i - 1].values[0]),
              std::get<double>(page1.value().rows[i].values[0]));
  }
  // Page 2 starts strictly after page 1's last row.
  std::vector<Value> last = {page1.value().rows.back().values[0]};
  auto page2 = sheet_->TableView(order, {"Airline"}, last, 10);
  ASSERT_TRUE(page2.ok());
  EXPECT_GT(std::get<double>(page2.value().rows[0].values[0]),
            std::get<double>(page1.value().rows.front().values[0]));
}

TEST_F(SpreadsheetTest, ScrollToMedian) {
  RecordOrder order({{"Distance", true}});
  auto page = sheet_->ScrollTo(order, {}, 0.5, 5);
  ASSERT_TRUE(page.ok());
  ASSERT_FALSE(page.value().rows.empty());
  auto range = sheet_->ColumnRange("Distance");
  double mid = std::get<double>(page.value().rows[0].values[0]);
  // The median of the skewed Distance distribution is strictly inside the
  // range, not at the ends.
  EXPECT_GT(mid, range.value().min);
  EXPECT_LT(mid, range.value().max);
}

TEST_F(SpreadsheetTest, FindTextFindsAirline) {
  RecordOrder order({{"Airline", true}});
  StringFilter filter;
  filter.text = "UA";
  filter.mode = StringFilter::Mode::kExact;
  auto found = sheet_->FindText(order, {"Airline"}, filter, std::nullopt);
  ASSERT_TRUE(found.ok());
  EXPECT_GT(found.value().match_count, 0);
  ASSERT_TRUE(found.value().first_match.has_value());
  EXPECT_EQ((*found.value().first_match)[0], Value(std::string("UA")));
}

TEST_F(SpreadsheetTest, HeavyHittersBothVariantsAgreeOnTop) {
  auto mg = sheet_->HeavyHitters("Airline", 10, /*sampled=*/false);
  auto sampled = sheet_->HeavyHitters("Airline", 10, /*sampled=*/true);
  ASSERT_TRUE(mg.ok());
  ASSERT_TRUE(sampled.ok());
  ASSERT_FALSE(mg.value().empty());
  ASSERT_FALSE(sampled.value().empty());
  // The Zipf-skewed airline distribution has a clear top element.
  EXPECT_EQ(mg.value()[0].value, sampled.value()[0].value);
}

TEST_F(SpreadsheetTest, DistinctCountApproximatesTruth) {
  auto distinct = sheet_->DistinctCount("Airline");
  ASSERT_TRUE(distinct.ok());
  EXPECT_NEAR(distinct.value(), 18, 2);
}

TEST_F(SpreadsheetTest, CorrelationDepArrDelay) {
  auto corr = sheet_->Correlation({"DepDelay", "ArrDelay"}, false);
  ASSERT_TRUE(corr.ok());
  auto matrix = corr.value().CorrelationMatrix();
  // ArrDelay = DepDelay + noise: strong positive correlation.
  EXPECT_GT(matrix[1], 0.5);
}

TEST_F(SpreadsheetTest, FilterEqualsNarrowsRows) {
  auto filtered = sheet_->FilterEquals("Airline", "AA");
  ASSERT_TRUE(filtered.ok());
  auto rows = filtered.value().RowCount();
  ASSERT_TRUE(rows.ok());
  EXPECT_GT(rows.value(), 0);
  EXPECT_LT(rows.value(), 80000);

  auto hist = filtered.value().Histogram("Airline", true);
  ASSERT_TRUE(hist.ok());
  EXPECT_EQ(hist.value().TotalCount(), rows.value());
}

TEST_F(SpreadsheetTest, FilterRangeIsZoomIn) {
  auto range = sheet_->ColumnRange("Distance");
  ASSERT_TRUE(range.ok());
  double lo = range.value().min;
  double hi = (range.value().min + range.value().max) / 4;
  auto zoomed = sheet_->FilterRange("Distance", lo, hi);
  ASSERT_TRUE(zoomed.ok());
  auto zoom_range = zoomed.value().ColumnRange("Distance");
  ASSERT_TRUE(zoom_range.ok());
  EXPECT_GE(zoom_range.value().min, lo);
  EXPECT_LE(zoom_range.value().max, hi);
}

TEST_F(SpreadsheetTest, FilterMatchesRegexNarrowsRows) {
  StringFilter filter;
  filter.text = "^A";  // airlines starting with A
  filter.mode = StringFilter::Mode::kRegex;
  filter.case_sensitive = true;
  auto filtered = sheet_->FilterMatches("Airline", filter);
  ASSERT_TRUE(filtered.ok()) << filtered.status().ToString();
  auto rows = filtered.value().RowCount();
  ASSERT_TRUE(rows.ok());
  EXPECT_GT(rows.value(), 0);
  EXPECT_LT(rows.value(), 80000);

  // Cross-check the typed filter path against FilterEquals: an exact-match
  // filter must keep exactly the rows the equality filter keeps.
  StringFilter exact;
  exact.text = "AA";
  exact.mode = StringFilter::Mode::kExact;
  exact.case_sensitive = true;
  auto via_match = sheet_->FilterMatches("Airline", exact);
  auto via_equals = sheet_->FilterEquals("Airline", "AA");
  ASSERT_TRUE(via_match.ok());
  ASSERT_TRUE(via_equals.ok());
  EXPECT_EQ(via_match.value().RowCount().value_or(-1),
            via_equals.value().RowCount().value_or(-2));
}

TEST_F(SpreadsheetTest, InvalidRegexSurfacesInvalidArgument) {
  StringFilter bad;
  bad.text = "[unclosed";
  bad.mode = StringFilter::Mode::kRegex;

  // Regression: this used to throw std::regex_error out of the sketch /
  // table-map instead of returning a Status.
  RecordOrder order({{"Airline", true}});
  auto found = sheet_->FindText(order, {"Airline"}, bad, std::nullopt);
  ASSERT_FALSE(found.ok());
  EXPECT_EQ(found.status().code(), StatusCode::kInvalidArgument);

  auto filtered = sheet_->FilterMatches("Airline", bad);
  ASSERT_FALSE(filtered.ok());
  EXPECT_EQ(filtered.status().code(), StatusCode::kInvalidArgument);

  // Valid filters on the same surfaces still work afterwards.
  StringFilter good;
  good.text = "UA";
  good.mode = StringFilter::Mode::kExact;
  EXPECT_TRUE(sheet_->FindText(order, {"Airline"}, good, std::nullopt).ok());
}

TEST_F(SpreadsheetTest, WithColumnComputesRatio) {
  auto derived = sheet_->WithColumn(
      "SpeedMph", DataKind::kDouble, {"Distance", "AirTime"},
      [](const std::vector<Value>& in) -> Value {
        const auto* dist = std::get_if<double>(&in[0]);
        const auto* time = std::get_if<double>(&in[1]);
        if (dist == nullptr || time == nullptr || *time <= 0) {
          return std::monostate{};
        }
        return *dist / (*time / 60.0);
      });
  ASSERT_TRUE(derived.ok());
  auto range = derived.value().ColumnRange("SpeedMph");
  ASSERT_TRUE(range.ok());
  EXPECT_GT(range.value().present_count, 0);
  EXPECT_GT(range.value().Mean(), 100);  // planes are fast
  EXPECT_LT(range.value().Mean(), 1500);
}

TEST_F(SpreadsheetTest, SaveAsRoundTrip) {
  std::string dir = ::testing::TempDir() + "/hv_saveas";
  std::filesystem::create_directories(dir);
  auto filtered = sheet_->FilterEquals("Airline", "DL");
  ASSERT_TRUE(filtered.ok());
  auto saved = filtered.value().SaveAs(dir, "dl");
  ASSERT_TRUE(saved.ok());
  EXPECT_TRUE(saved.value().ok());
  EXPECT_EQ(saved.value().partitions_written, 8);  // 80k/10k partitions

  int64_t reloaded_rows = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    auto t = ReadTableFile(entry.path().string());
    ASSERT_TRUE(t.ok());
    reloaded_rows += t.value()->num_rows();
  }
  auto rows = filtered.value().RowCount();
  EXPECT_EQ(reloaded_rows, rows.value());
  std::filesystem::remove_all(dir);
}

TEST_F(SpreadsheetTest, ProgressiveHistogramStream) {
  auto stream = sheet_->HistogramStream("ArrDelay");
  ASSERT_TRUE(stream.ok());
  auto last = stream.value()->BlockingLast();
  ASSERT_TRUE(stream.value()->final_status().ok());
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->progress, 1.0);
  EXPECT_GT(last->value.TotalCount(), 0);
}

TEST_F(SpreadsheetTest, HistogramViewReportsFullCoverageWhenHealthy) {
  auto view = sheet_->HistogramView("Distance");
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_GT(view.value().value.TotalCount(), 0);
  // Healthy cluster: every partition answered, the view is not partial.
  EXPECT_EQ(view.value().coverage, 1.0);
  EXPECT_FALSE(view.value().partial);
  // The per-query stats surface through the facade too.
  EXPECT_EQ(sheet_->last_query_stats().coverage, 1.0);
  EXPECT_FALSE(sheet_->last_query_stats().degraded);
  // TakeViewCoverage resets the fold.
  EXPECT_EQ(sheet_->TakeViewCoverage(), 1.0);
}

TEST_F(SpreadsheetTest, LastQueryStatsSeesSharedCacheHit) {
  // ColumnRange is deterministic and cacheable; the first call above (or
  // here) populates the shared cache, the second is served from it.
  ASSERT_TRUE(sheet_->ColumnRange("DepDelay").ok());
  ASSERT_TRUE(sheet_->ColumnRange("DepDelay").ok());
  EXPECT_TRUE(sheet_->last_query_stats().from_cache);
  EXPECT_EQ(sheet_->last_query_stats().coverage, 1.0);
}

TEST_F(SpreadsheetTest, SurvivesWorkerRestart) {
  session_->RestartWorker(2);
  // A sampled histogram is never served from the computation cache, so this
  // forces the Unavailable -> redo-log replay -> retry path.
  auto hist = sheet_->Histogram("Distance");
  ASSERT_TRUE(hist.ok()) << hist.status().ToString();
  EXPECT_GT(hist.value().TotalCount(), 0);
  EXPECT_EQ(workers_->at(2)->restart_count(), 1);
}

}  // namespace
}  // namespace hillview
