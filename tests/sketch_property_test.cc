// Randomized property suite: every sketch must *distribute* — summarizing
// one partition must equal merging summaries of any shard split, in any
// merge order, across a serialize → deserialize round trip (the §4.1
// contract: Summarize(D1 ⊎ D2) == Merge(Summarize(D1), Summarize(D2)), with
// Zero() as identity and commutative Merge). These are the invariants the
// whole cluster rests on: partials arrive from workers in arbitrary order
// and cross a (simulated) wire before merging.
//
// Each case draws a random mixed-kind table (nulls, NaN, ±inf, duplicate
// and tie-heavy values), a random shard split, and a randomized sketch
// configuration (orders, directions, start keys, bucket geometry). Failures
// shrink the row set greedily and report the minimal failing case with its
// seed, so reproduction is one seed away.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <functional>
#include <limits>
#include <numeric>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "sketch/find_text.h"
#include "sketch/heavy_hitters.h"
#include "sketch/morsel.h"
#include "sketch/histogram.h"
#include "sketch/histogram2d.h"
#include "sketch/hyperloglog.h"
#include "sketch/next_items.h"
#include "sketch/pca.h"
#include "sketch/quantile.h"
#include "sketch/range_moments.h"
#include "sketch/string_quantiles.h"
#include "storage/membership.h"
#include "storage/table.h"
#include "test_util.h"
#include "util/random.h"
#include "util/serialize.h"
#include "util/thread_pool.h"

namespace hillview {
namespace {

// ---------------------------------------------------------------------------
// Random data: five columns covering every DataKind, with missing values,
// NaN/±inf doubles, and deliberately tie-heavy distributions.

struct TestData {
  std::vector<std::optional<int32_t>> i;
  std::vector<std::optional<double>> d;
  std::vector<std::optional<int64_t>> t;
  std::vector<std::optional<std::string>> s;
  std::vector<std::optional<std::string>> c;

  size_t n() const { return i.size(); }
};

TestData MakeData(size_t n, Random& rng) {
  TestData data;
  data.i.reserve(n);
  data.d.reserve(n);
  data.t.reserve(n);
  data.s.reserve(n);
  data.c.reserve(n);
  for (size_t r = 0; r < n; ++r) {
    data.i.push_back(rng.NextUint64(10) == 0
                         ? std::nullopt
                         : std::optional<int32_t>(static_cast<int32_t>(
                               rng.NextUint64(101)) - 50));
    // Doubles: ~8% missing, ~6% NaN (missing under the central policy),
    // ~2% ±inf, and integer-rounded values ~40% of the time to force ties.
    uint64_t roll = rng.NextUint64(100);
    if (roll < 8) {
      data.d.push_back(std::nullopt);
    } else if (roll < 14) {
      data.d.push_back(std::numeric_limits<double>::quiet_NaN());
    } else if (roll < 16) {
      data.d.push_back(roll % 2 == 0
                           ? std::numeric_limits<double>::infinity()
                           : -std::numeric_limits<double>::infinity());
    } else {
      double v = (rng.NextDouble() - 0.5) * 200.0;
      if (roll < 56) v = std::floor(v);
      if (v == 0.0) v = 0.0;  // never materialize -0.0 in source data
      data.d.push_back(v);
    }
    data.t.push_back(rng.NextUint64(10) == 0
                         ? std::nullopt
                         : std::optional<int64_t>(
                               1'500'000'000'000LL +
                               static_cast<int64_t>(rng.NextUint64(1000)) *
                                   86'400'000LL));
    data.s.push_back(rng.NextUint64(8) == 0
                         ? std::nullopt
                         : std::optional<std::string>(
                               "w" + std::to_string(rng.NextUint64(30))));
    data.c.push_back(
        rng.NextUint64(20) == 0
            ? std::nullopt
            : std::optional<std::string>(
                  std::string(1, static_cast<char>('A' + rng.NextUint64(8)))));
  }
  return data;
}

TablePtr BuildTable(const TestData& data, const std::vector<uint32_t>& rows) {
  ColumnBuilder bi(DataKind::kInt);
  ColumnBuilder bd(DataKind::kDouble);
  ColumnBuilder bt(DataKind::kDate);
  ColumnBuilder bs(DataKind::kString);
  ColumnBuilder bc(DataKind::kCategory);
  for (uint32_t r : rows) {
    if (data.i[r]) bi.AppendInt(*data.i[r]); else bi.AppendMissing();
    if (data.d[r]) bd.AppendDouble(*data.d[r]); else bd.AppendMissing();
    if (data.t[r]) bt.AppendDate(*data.t[r]); else bt.AppendMissing();
    if (data.s[r]) bs.AppendString(*data.s[r]); else bs.AppendMissing();
    if (data.c[r]) bc.AppendString(*data.c[r]); else bc.AppendMissing();
  }
  return Table::Create(Schema({{"i", DataKind::kInt},
                               {"d", DataKind::kDouble},
                               {"t", DataKind::kDate},
                               {"s", DataKind::kString},
                               {"c", DataKind::kCategory}}),
                       {bi.Finish(), bd.Finish(), bt.Finish(), bs.Finish(),
                        bc.Finish()});
}

// ---------------------------------------------------------------------------
// Equality helpers. Exact for counting summaries; floating-point sums
// (moments, correlation accumulators) tolerate re-association error.

bool ApproxEq(double a, double b) {
  if (a == b) return true;  // also covers ±inf, which the tolerance cannot
  // ±inf data legitimately drives accumulators to NaN (inf + -inf); two NaN
  // accumulators are the same summary.
  if (std::isnan(a) && std::isnan(b)) return true;
  return std::abs(a - b) <= 1e-9 * (1.0 + std::abs(a) + std::abs(b));
}

#define EQ_FIELD(f)                                             \
  do {                                                          \
    if (!(a.f == b.f)) {                                        \
      *why = #f " differs";                                     \
      return false;                                             \
    }                                                           \
  } while (false)

#define EQ_APPROX_VEC(f)                                        \
  do {                                                          \
    if (a.f.size() != b.f.size()) {                             \
      *why = #f " size differs";                                \
      return false;                                             \
    }                                                           \
    for (size_t z = 0; z < a.f.size(); ++z) {                   \
      if (!ApproxEq(a.f[z], b.f[z])) {                          \
        *why = #f " differs at " + std::to_string(z);           \
        return false;                                           \
      }                                                         \
    }                                                           \
  } while (false)

bool EqHistogram(const HistogramResult& a, const HistogramResult& b,
                 std::string* why) {
  EQ_FIELD(counts);
  EQ_FIELD(missing);
  EQ_FIELD(out_of_range);
  EQ_FIELD(rows_scanned);
  EQ_FIELD(sample_rate);
  return true;
}

bool EqHistogram2D(const Histogram2DResult& a, const Histogram2DResult& b,
                   std::string* why) {
  EQ_FIELD(x_buckets);
  EQ_FIELD(y_buckets);
  EQ_FIELD(xy);
  EQ_FIELD(x_counts);
  EQ_FIELD(missing_x);
  EQ_FIELD(missing_y);
  EQ_FIELD(out_of_range);
  EQ_FIELD(rows_scanned);
  EQ_FIELD(sample_rate);
  return true;
}

bool EqTrellis(const TrellisResult& a, const TrellisResult& b,
               std::string* why) {
  EQ_FIELD(missing_w);
  EQ_FIELD(out_of_range_w);
  if (a.groups.size() != b.groups.size()) {
    *why = "groups size differs";
    return false;
  }
  for (size_t g = 0; g < a.groups.size(); ++g) {
    if (!EqHistogram2D(a.groups[g], b.groups[g], why)) {
      *why = "group " + std::to_string(g) + ": " + *why;
      return false;
    }
  }
  return true;
}

bool EqHeavyHitters(const HeavyHittersResult& a, const HeavyHittersResult& b,
                    std::string* why) {
  EQ_FIELD(rows_counted);
  EQ_FIELD(missing);
  EQ_FIELD(sample_rate);
  EQ_FIELD(max_size);
  // Item order is representation detail; compare as value -> count maps
  // (distinct values render to distinct strings for our test data).
  auto as_map = [](const HeavyHittersResult& r) {
    std::vector<std::pair<std::string, int64_t>> m;
    for (const auto& item : r.items) {
      m.emplace_back(ValueToString(item.value), item.count);
    }
    std::sort(m.begin(), m.end());
    return m;
  };
  if (as_map(a) != as_map(b)) {
    *why = "items differ";
    return false;
  }
  return true;
}

bool EqHll(const HllResult& a, const HllResult& b, std::string* why) {
  EQ_FIELD(registers);
  EQ_FIELD(missing);
  return true;
}

bool EqKeyLists(const std::vector<std::vector<Value>>& a,
                const std::vector<std::vector<Value>>& b, std::string* why) {
  if (a.size() != b.size()) {
    *why = "key count differs (" + std::to_string(a.size()) + " vs " +
           std::to_string(b.size()) + ")";
    return false;
  }
  for (size_t z = 0; z < a.size(); ++z) {
    if (a[z] != b[z]) {
      *why = "key " + std::to_string(z) + " differs";
      return false;
    }
  }
  return true;
}

bool EqQuantile(const QuantileResult& a, const QuantileResult& b,
                std::string* why) {
  EQ_FIELD(rate);
  EQ_FIELD(max_size);
  EQ_FIELD(weights);
  return EqKeyLists(a.keys, b.keys, why);
}

bool EqBottomK(const BottomKResult& a, const BottomKResult& b,
               std::string* why) {
  EQ_FIELD(items);
  EQ_FIELD(k);
  EQ_FIELD(complete);
  return true;
}

bool EqRange(const RangeResult& a, const RangeResult& b, std::string* why) {
  EQ_FIELD(present_count);
  EQ_FIELD(missing_count);
  EQ_FIELD(is_string);
  EQ_FIELD(is_integral);
  EQ_FIELD(min_string);
  EQ_FIELD(max_string);
  if (a.present_count > 0 && !a.is_string) {
    if (!(a.min == b.min) || !(a.max == b.max)) {
      *why = "min/max differ";
      return false;
    }
  }
  EQ_APPROX_VEC(moments);
  return true;
}

/// Next-items invariance covers the key (sort-order) cells and the duplicate
/// counts. Display cells of a duplicate group come from *some* member of the
/// group — the whole scan keeps the globally first row, a merge keeps the
/// left partial's representative — so they are intentionally excluded (see
/// the RowSnapshot contract in sketch/next_items.h).
bool EqNextItemsKeyed(const NextItemsResult& a, const NextItemsResult& b,
                      int num_key_columns, std::string* why) {
  if (a.rows_before != b.rows_before) {
    *why = "rows_before differs";
    return false;
  }
  if (a.rows.size() != b.rows.size()) {
    *why = "row count differs (" + std::to_string(a.rows.size()) + " vs " +
           std::to_string(b.rows.size()) + ")";
    return false;
  }
  for (size_t z = 0; z < a.rows.size(); ++z) {
    const auto& va = a.rows[z].values;
    const auto& vb = b.rows[z].values;
    size_t keys = std::min<size_t>(num_key_columns, va.size());
    if (va.size() != vb.size() ||
        !std::equal(va.begin(), va.begin() + keys, vb.begin())) {
      *why = "row " + std::to_string(z) + " key values differ";
      return false;
    }
    if (a.rows[z].count != b.rows[z].count) {
      *why = "row " + std::to_string(z) + " count differs (" +
             std::to_string(a.rows[z].count) + " vs " +
             std::to_string(b.rows[z].count) + ")";
      return false;
    }
  }
  return true;
}

bool EqFind(const FindResult& a, const FindResult& b, std::string* why) {
  EQ_FIELD(match_count);
  EQ_FIELD(matches_before);
  EQ_FIELD(first_match);
  return true;
}

bool EqCorrelation(const CorrelationResult& a, const CorrelationResult& b,
                   std::string* why) {
  EQ_FIELD(m);
  EQ_FIELD(count);
  EQ_FIELD(skipped);
  EQ_APPROX_VEC(sums);
  EQ_APPROX_VEC(products);
  return true;
}

#undef EQ_FIELD
#undef EQ_APPROX_VEC

// ---------------------------------------------------------------------------
// The harness: whole ≡ in-order merge ≡ shuffled/right-associated merge ≡
// wire round-tripped merge, for one (data, split, sketch) case.

template <typename R, typename EqFn>
std::optional<std::string> CheckOnce(const Sketch<R>& sketch,
                                     const TestData& data,
                                     const std::vector<uint32_t>& active,
                                     const std::vector<int>& label, int k,
                                     uint64_t seed, const EqFn& eq) {
  TablePtr whole = BuildTable(data, active);
  R whole_sum = sketch.Summarize(*whole, MixSeed(seed, 0xA11));

  std::vector<R> partials;
  partials.reserve(k);
  for (int p = 0; p < k; ++p) {
    std::vector<uint32_t> rows;
    for (uint32_t r : active) {
      if (label[r] == p) rows.push_back(r);
    }
    partials.push_back(
        sketch.Summarize(*BuildTable(data, rows), MixSeed(seed, p)));
  }

  std::string why;
  R merged = sketch.Zero();
  for (const auto& p : partials) merged = sketch.Merge(merged, p);
  if (!eq(whole_sum, merged, &why)) {
    return "whole != in-order merge: " + why;
  }

  // Shuffled AND right-folded with swapped operands: exercises
  // commutativity and a different association than the in-order fold.
  std::vector<int> perm(k);
  std::iota(perm.begin(), perm.end(), 0);
  Random shuffle_rng(MixSeed(seed, 0x5F0));
  for (int z = k - 1; z > 0; --z) {
    std::swap(perm[z], perm[shuffle_rng.NextUint64(z + 1)]);
  }
  R shuffled = sketch.Zero();
  for (int idx : perm) shuffled = sketch.Merge(partials[idx], shuffled);
  if (!eq(whole_sum, shuffled, &why)) {
    return "whole != shuffled merge: " + why;
  }

  // Wire round trip: each partial must survive Serialize → Deserialize
  // exactly (this is what workers actually send).
  R wire = sketch.Zero();
  for (const auto& p : partials) {
    ByteWriter w;
    p.Serialize(&w);
    std::vector<uint8_t> bytes = w.Take();
    ByteReader r(bytes);
    R decoded;
    Status st = R::Deserialize(&r, &decoded);
    if (!st.ok()) return "deserialize failed: " + st.ToString();
    if (!r.AtEnd()) return "deserialize left trailing bytes";
    wire = sketch.Merge(wire, decoded);
  }
  if (!eq(whole_sum, wire, &why)) {
    return "whole != wire-round-trip merge: " + why;
  }
  return std::nullopt;
}

/// Greedy half-removal shrink: keeps the original split labels of the
/// surviving rows, so the shrunk case is a genuine sub-case of the failure.
template <typename Fails>
std::vector<uint32_t> Shrink(std::vector<uint32_t> active,
                             const Fails& fails) {
  bool progress = true;
  while (progress && active.size() > 1) {
    progress = false;
    size_t half = active.size() / 2;
    std::vector<uint32_t> first(active.begin(), active.begin() + half);
    std::vector<uint32_t> second(active.begin() + half, active.end());
    if (fails(second)) {
      active = std::move(second);
      progress = true;
    } else if (fails(first)) {
      active = std::move(first);
      progress = true;
    }
  }
  return active;
}

template <typename R, typename EqFn>
void RunProperty(
    const char* name, int cases,
    const std::function<SketchPtr<R>(const TestData&, const TablePtr&,
                                     Random&)>& make_sketch,
    const EqFn& eq) {
  const uint64_t name_hash = HashBytes(name, std::strlen(name), 0x9E37);
  for (int c = 0; c < cases; ++c) {
    const uint64_t seed = MixSeed(name_hash, static_cast<uint64_t>(c));
    Random rng(seed);
    const size_t n = 40 + rng.NextUint64(360);
    TestData data = MakeData(n, rng);
    const int k = 1 + static_cast<int>(rng.NextUint64(5));
    std::vector<int> label(n);
    for (auto& l : label) l = static_cast<int>(rng.NextUint64(k));
    std::vector<uint32_t> active(n);
    std::iota(active.begin(), active.end(), 0);

    TablePtr whole = BuildTable(data, active);
    SketchPtr<R> sketch = make_sketch(data, whole, rng);

    auto msg = CheckOnce(*sketch, data, active, label, k, seed, eq);
    if (!msg.has_value()) continue;

    auto fails = [&](const std::vector<uint32_t>& rows) {
      return CheckOnce(*sketch, data, rows, label, k, seed, eq).has_value();
    };
    std::vector<uint32_t> minimal = Shrink(active, fails);
    auto min_msg = CheckOnce(*sketch, data, minimal, label, k, seed, eq);
    std::ostringstream rows_str;
    for (size_t z = 0; z < minimal.size() && z < 16; ++z) {
      rows_str << (z ? "," : "") << minimal[z];
    }
    FAIL() << name << " case " << c << " (seed 0x" << std::hex << seed
           << std::dec << ", n=" << n << ", splits=" << k << "): "
           << *msg << "\n  shrunk to " << minimal.size()
           << " rows [" << rows_str.str() << "]: "
           << (min_msg.has_value() ? *min_msg : *msg);
  }
}

// ---------------------------------------------------------------------------
// Random sketch configuration helpers.

/// Buckets for the category column "c" (values "A".."H") by *string
/// boundaries*, the way the spreadsheet's bucket planner does it. Bucketing
/// a string column by dictionary code would not distribute: codes are
/// partition-local (each shard builds its own dictionary).
Buckets CategoryBuckets(int num_buckets, Random& rng) {
  int stride = std::max<int>(1, 8 / num_buckets);
  std::vector<std::string> bounds;
  char first = static_cast<char>('A' + rng.NextUint64(2));
  for (int z = 0; z < num_buckets; ++z) {
    char b = static_cast<char>(first + stride * z);
    if (b > 'H') break;
    bounds.push_back(std::string(1, b));
  }
  return Buckets(StringBuckets(std::move(bounds), "H", /*has_max=*/true));
}

RecordOrder RandomOrder(Random& rng) {
  static const char* kCols[] = {"i", "d", "t", "s", "c"};
  int num = 1 + static_cast<int>(rng.NextUint64(2));
  std::vector<ColumnSortOrientation> orientations;
  uint64_t first = rng.NextUint64(5);
  orientations.push_back({kCols[first], rng.NextUint64(2) == 0});
  if (num == 2) {
    uint64_t second = (first + 1 + rng.NextUint64(4)) % 5;
    orientations.push_back({kCols[second], rng.NextUint64(2) == 0});
  }
  return RecordOrder(std::move(orientations));
}

std::optional<std::vector<Value>> MaybeStartKey(const RecordOrder& order,
                                                const TablePtr& whole,
                                                Random& rng) {
  if (rng.NextUint64(2) == 0) return std::nullopt;
  uint32_t row = static_cast<uint32_t>(rng.NextUint64(whole->num_rows()));
  return whole->GetRow(row, order.ColumnNames());
}

// ---------------------------------------------------------------------------
// One TEST per sketch family, ≥100 randomized (sketch, split, seed) cases
// each.

constexpr int kCases = 100;

TEST(SketchProperty, StreamingHistogramDistributes) {
  RunProperty<HistogramResult>(
      "streaming-histogram", kCases,
      [](const TestData&, const TablePtr&, Random& rng) {
        double lo = -120.0 + rng.NextDouble() * 60.0;
        double hi = lo + 20.0 + rng.NextDouble() * 180.0;
        int buckets = 1 + static_cast<int>(rng.NextUint64(9));
        return std::make_shared<StreamingHistogramSketch>(
            "d", Buckets(NumericBuckets(lo, hi, buckets)));
      },
      EqHistogram);
}

TEST(SketchProperty, SampledHistogramAtFullRateDistributes) {
  RunProperty<HistogramResult>(
      "sampled-histogram", kCases,
      [](const TestData&, const TablePtr&, Random& rng) {
        int buckets = 1 + static_cast<int>(rng.NextUint64(9));
        return std::make_shared<SampledHistogramSketch>(
            "i", Buckets(NumericBuckets(-55, 55, buckets)), /*rate=*/1.0);
      },
      EqHistogram);
}

TEST(SketchProperty, Histogram2DDistributes) {
  RunProperty<Histogram2DResult>(
      "histogram2d", kCases,
      [](const TestData&, const TablePtr&, Random& rng) {
        int xb = 1 + static_cast<int>(rng.NextUint64(7));
        int yb = 1 + static_cast<int>(rng.NextUint64(4));
        return std::make_shared<Histogram2DSketch>(
            "i", Buckets(NumericBuckets(-55, 55, xb)), "c",
            CategoryBuckets(yb, rng));
      },
      EqHistogram2D);
}

TEST(SketchProperty, TrellisDistributes) {
  RunProperty<TrellisResult>(
      "trellis", kCases,
      [](const TestData&, const TablePtr&, Random& rng) {
        int wb = 1 + static_cast<int>(rng.NextUint64(4));
        return std::make_shared<TrellisSketch>(
            "c", CategoryBuckets(wb, rng), "i",
            Buckets(NumericBuckets(-55, 55, 5)), "d",
            Buckets(NumericBuckets(-110, 110, 4)));
      },
      EqTrellis);
}

TEST(SketchProperty, MisraGriesDistributesInExactRegime) {
  // With K well above the distinct-value count Misra-Gries never evicts, so
  // counts are exact and split invariance must hold exactly.
  RunProperty<HeavyHittersResult>(
      "misra-gries", kCases,
      [](const TestData&, const TablePtr&, Random&) {
        return std::make_shared<MisraGriesSketch>("c", 32);
      },
      EqHeavyHitters);
}

TEST(SketchProperty, SampledHeavyHittersAtFullRateDistributes) {
  RunProperty<HeavyHittersResult>(
      "sampled-heavy-hitters", kCases,
      [](const TestData&, const TablePtr&, Random&) {
        return std::make_shared<SampledHeavyHittersSketch>("c", 16,
                                                           /*rate=*/1.0);
      },
      EqHeavyHitters);
}

TEST(SketchProperty, HyperLogLogDistributes) {
  RunProperty<HllResult>(
      "hyperloglog", kCases,
      [](const TestData&, const TablePtr&, Random& rng) {
        int precision = 6 + static_cast<int>(rng.NextUint64(5));
        return std::make_shared<HyperLogLogSketch>("s", precision);
      },
      EqHll);
}

TEST(SketchProperty, QuantileDistributes) {
  RunProperty<QuantileResult>(
      "quantile", kCases,
      [](const TestData&, const TablePtr&, Random& rng) {
        return std::make_shared<QuantileSketch>(RandomOrder(rng),
                                                /*rate=*/1.0,
                                                /*max_size=*/1 << 20);
      },
      EqQuantile);
}

// ---------------------------------------------------------------------------
// Statistical two-sample bounds for sampled / compacting quantile summaries.
// Exact equality only holds while nothing randomizes; once rate < 1 (the
// whole-table reference samples under a different seed than the partials)
// and the KLL budget forces compaction (randomized parities, merge-tree
// dependent), the right contract is distributional: the weighted empirical
// CDFs must agree within a KS-style two-sample bound plus each summary's own
// compaction error ledger.

/// Fraction of `r`'s total weight strictly below `key` (ranked by the
/// production CompareQuantileKeys, so the oracle cannot drift from the
/// order the sketch actually sorts by).
double WeightedFractionBelow(const QuantileResult& r, const RecordOrder& order,
                             const std::vector<Value>& key) {
  uint64_t below = 0, total = 0;
  for (size_t i = 0; i < r.keys.size(); ++i) {
    total += r.weights[i];
    if (CompareQuantileKeys(order, r.keys[i], key) < 0) below += r.weights[i];
  }
  return total == 0 ? 0.0 : static_cast<double>(below) / total;
}

/// Max rank distance between the two weighted empirical CDFs, evaluated at
/// every retained key of either summary (where the sup is attained).
double QuantileRankDistance(const QuantileResult& a, const QuantileResult& b,
                            const RecordOrder& order) {
  double d = 0;
  for (const auto& key : a.keys) {
    d = std::max(d, std::abs(WeightedFractionBelow(a, order, key) -
                             WeightedFractionBelow(b, order, key)));
  }
  for (const auto& key : b.keys) {
    d = std::max(d, std::abs(WeightedFractionBelow(a, order, key) -
                             WeightedFractionBelow(b, order, key)));
  }
  return d;
}

/// The acceptance threshold: a two-sample KS term over the effective sample
/// sizes (total weights), both summaries' compaction error bounds, and a
/// granularity term (a weight-w item quantizes the CDF in steps of w/W).
double QuantileRankBound(const QuantileResult& a, const QuantileResult& b) {
  auto granularity = [](const QuantileResult& r) {
    uint64_t max_w = 0;
    for (uint64_t w : r.weights) max_w = std::max(max_w, w);
    uint64_t total = r.TotalWeight();
    return total == 0 ? 0.0 : static_cast<double>(max_w) / total;
  };
  double wa = std::max<uint64_t>(1, a.TotalWeight());
  double wb = std::max<uint64_t>(1, b.TotalWeight());
  double ks = 3.0 * std::sqrt(0.5 * (1.0 / wa + 1.0 / wb));
  return ks + a.RankErrorBound() + b.RankErrorBound() + granularity(a) +
         granularity(b);
}

bool QuantileWithinRankBound(const QuantileResult& a, const QuantileResult& b,
                             const RecordOrder& order, std::string* why) {
  double d = QuantileRankDistance(a, b, order);
  double bound = QuantileRankBound(a, b);
  if (d <= bound) return true;
  *why = "rank distance " + std::to_string(d) + " exceeds bound " +
         std::to_string(bound);
  return false;
}

TEST(SketchPropertyStatistical, SampledQuantileMergesWithinRankBound) {
  constexpr int kStatCases = 20;
  const uint64_t name_hash = HashBytes("stat-quantile", 13, 0x9E37);
  for (int c = 0; c < kStatCases; ++c) {
    const uint64_t seed = MixSeed(name_hash, static_cast<uint64_t>(c));
    Random rng(seed);
    const size_t n = 2500 + rng.NextUint64(2500);
    TestData data = MakeData(n, rng);
    const int k = 2 + static_cast<int>(rng.NextUint64(4));
    std::vector<int> label(n);
    for (auto& l : label) l = static_cast<int>(rng.NextUint64(k));
    std::vector<uint32_t> active(n);
    std::iota(active.begin(), active.end(), 0);
    TablePtr whole = BuildTable(data, active);

    RecordOrder order = RandomOrder(rng);
    const double rate = 0.25 + 0.5 * rng.NextDouble();
    const int budget = 128 + static_cast<int>(rng.NextUint64(128));
    QuantileSketch sketch(order, rate, budget);

    QuantileResult whole_sum = sketch.Summarize(*whole, MixSeed(seed, 0xA11));
    std::vector<QuantileResult> partials;
    uint64_t partial_weight = 0;
    for (int p = 0; p < k; ++p) {
      std::vector<uint32_t> rows;
      for (uint32_t r : active) {
        if (label[r] == p) rows.push_back(r);
      }
      partials.push_back(
          sketch.Summarize(*BuildTable(data, rows), MixSeed(seed, p)));
      partial_weight += partials.back().TotalWeight();
    }

    QuantileResult merged = sketch.Zero();
    for (const auto& p : partials) merged = sketch.Merge(merged, p);
    // Compaction redistributes weight but never loses it (equal rates, so
    // no subsample fires): the merge-tree shape cannot shrink the sample.
    ASSERT_EQ(merged.TotalWeight(), partial_weight) << "case " << c;
    ASSERT_LE(merged.keys.size(), static_cast<size_t>(budget)) << "case " << c;

    std::vector<int> perm(k);
    std::iota(perm.begin(), perm.end(), 0);
    Random shuffle_rng(MixSeed(seed, 0x5F0));
    for (int z = k - 1; z > 0; --z) {
      std::swap(perm[z], perm[shuffle_rng.NextUint64(z + 1)]);
    }
    QuantileResult shuffled = sketch.Zero();
    for (int idx : perm) shuffled = sketch.Merge(partials[idx], shuffled);

    // The wire fold replays the in-order merge tree; seeds and error
    // ledgers round-trip, so the compaction coins are identical and the
    // result must be *exactly* the in-order merge — this is what lets the
    // redo log heal a crashed tree deterministically.
    QuantileResult wire = sketch.Zero();
    for (const auto& p : partials) {
      ByteWriter w;
      p.Serialize(&w);
      std::vector<uint8_t> bytes = w.Take();
      ByteReader r(bytes);
      QuantileResult decoded;
      ASSERT_TRUE(QuantileResult::Deserialize(&r, &decoded).ok())
          << "case " << c;
      ASSERT_TRUE(r.AtEnd()) << "case " << c;
      wire = sketch.Merge(wire, decoded);
    }
    std::string why;
    ASSERT_TRUE(EqQuantile(merged, wire, &why))
        << "case " << c << " (seed 0x" << std::hex << seed << std::dec
        << "): wire round trip broke merge determinism: " << why;

    // Associativity in distribution: a different merge tree over the SAME
    // partials differs only by compaction randomness, so the tight bound
    // (no sampling term between them beyond the ledgers) must hold; the
    // whole-table reference adds its independent sampling noise on top.
    ASSERT_TRUE(QuantileWithinRankBound(merged, shuffled, order, &why))
        << "case " << c << " (seed 0x" << std::hex << seed << std::dec
        << ", n=" << n << ", k=" << k << ", rate=" << rate
        << ", budget=" << budget << "): in-order vs shuffled: " << why;
    ASSERT_TRUE(QuantileWithinRankBound(whole_sum, merged, order, &why))
        << "case " << c << " (seed 0x" << std::hex << seed << std::dec
        << ", n=" << n << ", k=" << k << ", rate=" << rate
        << ", budget=" << budget << "): whole vs merged: " << why;
    ASSERT_TRUE(QuantileWithinRankBound(whole_sum, shuffled, order, &why))
        << "case " << c << " (seed 0x" << std::hex << seed << std::dec
        << ", n=" << n << ", k=" << k << ", rate=" << rate
        << ", budget=" << budget << "): whole vs shuffled: " << why;
  }
}

TEST(SketchProperty, BottomKStringsDistributes) {
  RunProperty<BottomKResult>(
      "bottomk-strings", kCases,
      [](const TestData&, const TablePtr&, Random& rng) {
        // k small enough that truncation (and the complete flag) engage.
        int k = 4 + static_cast<int>(rng.NextUint64(24));
        return std::make_shared<BottomKStringsSketch>("s", k);
      },
      EqBottomK);
}

TEST(SketchProperty, RangeMomentsDistributes) {
  RunProperty<RangeResult>(
      "range-moments", kCases,
      [](const TestData&, const TablePtr&, Random& rng) {
        static const char* kCols[] = {"d", "i", "s"};
        int moments = 1 + static_cast<int>(rng.NextUint64(4));
        return std::make_shared<RangeSketch>(kCols[rng.NextUint64(3)],
                                             moments);
      },
      EqRange);
}

TEST(SketchProperty, NextItemsDistributes) {
  // The factory records each case's key-column count for the equality
  // check (display cells of merged duplicate groups are representative-
  // dependent and excluded — see EqNextItemsKeyed).
  auto key_columns = std::make_shared<int>(0);
  RunProperty<NextItemsResult>(
      "next-items", kCases,
      [key_columns](const TestData&, const TablePtr& whole, Random& rng) {
        RecordOrder order = RandomOrder(rng);
        *key_columns = static_cast<int>(order.orientations().size());
        auto start = MaybeStartKey(order, whole, rng);
        int k = 1 + static_cast<int>(rng.NextUint64(15));
        return std::make_shared<NextItemsSketch>(
            order, std::vector<std::string>{"c"}, std::move(start), k);
      },
      [key_columns](const NextItemsResult& a, const NextItemsResult& b,
                    std::string* why) {
        return EqNextItemsKeyed(a, b, *key_columns, why);
      });
}

TEST(SketchProperty, FindTextDistributes) {
  RunProperty<FindResult>(
      "find-text", kCases,
      [](const TestData&, const TablePtr& whole, Random& rng) {
        RecordOrder order = RandomOrder(rng);
        StringFilter filter;
        switch (rng.NextUint64(3)) {
          case 0:
            filter.mode = StringFilter::Mode::kSubstring;
            filter.text = "w" + std::to_string(rng.NextUint64(3));
            break;
          case 1:
            filter.mode = StringFilter::Mode::kExact;
            filter.text = "w" + std::to_string(rng.NextUint64(30));
            break;
          default:
            filter.mode = StringFilter::Mode::kRegex;
            filter.text = "^w[0-" + std::to_string(1 + rng.NextUint64(8)) +
                          "]$";
            break;
        }
        filter.case_sensitive = rng.NextUint64(2) == 0;
        auto start = MaybeStartKey(order, whole, rng);
        return std::make_shared<FindTextSketch>(
            order, std::vector<std::string>{"s", "c"}, filter,
            std::move(start));
      },
      EqFind);
}

TEST(SketchProperty, CorrelationDistributes) {
  RunProperty<CorrelationResult>(
      "correlation", kCases,
      [](const TestData&, const TablePtr&, Random&) {
        return std::make_shared<CorrelationSketch>(
            std::vector<std::string>{"i", "d"}, /*rate=*/1.0);
      },
      EqCorrelation);
}

// ---------------------------------------------------------------------------
// Cluster-path properties: the distribution law must hold end to end through
// the simulated cluster — random worker counts and partition splits, a
// worker restart landing mid-stream (i.e. between the workers' sort-key
// cache fill and its reuse), and redo-log healing must all reproduce the
// 1-partition result. Deterministic sketch families compare exactly;
// sampled/compacting ones pass a statistical `eq` (the KS-style rank bound
// above) and scale `rows_base`/`rows_spread` up so the bound is meaningful.

template <typename R, typename EqFn>
void RunClusterProperty(
    const char* name, int cases,
    const std::function<SketchPtr<R>(const TestData&, const TablePtr&,
                                     Random&)>& make_sketch,
    const EqFn& eq, size_t rows_base = 60, size_t rows_spread = 240) {
  const uint64_t name_hash = HashBytes(name, std::strlen(name), 0xC1A5);
  for (int c = 0; c < cases; ++c) {
    const uint64_t seed = MixSeed(name_hash, static_cast<uint64_t>(c));
    Random rng(seed);
    const size_t n = rows_base + rng.NextUint64(rows_spread);
    TestData data = MakeData(n, rng);
    const int parts = 1 + static_cast<int>(rng.NextUint64(6));
    std::vector<int> label(n);
    for (auto& l : label) l = static_cast<int>(rng.NextUint64(parts));
    std::vector<uint32_t> active(n);
    std::iota(active.begin(), active.end(), 0);
    TablePtr whole = BuildTable(data, active);

    std::vector<TablePtr> partitions;
    for (int p = 0; p < parts; ++p) {
      std::vector<uint32_t> rows;
      for (uint32_t r : active) {
        if (label[r] == p) rows.push_back(r);
      }
      partitions.push_back(BuildTable(data, rows));
    }
    const int workers = 1 + static_cast<int>(rng.NextUint64(4));
    const int threads = 1 + static_cast<int>(rng.NextUint64(2));
    auto tc = testing::TestCluster::Create(partitions, workers, threads);
    ASSERT_NE(tc, nullptr);

    SketchPtr<R> sketch = make_sketch(data, whole, rng);
    R expected = sketch->Summarize(*whole, MixSeed(seed, 0xA11));
    std::string why;

    auto first = tc->root->RunSketch<R>("data", sketch);
    if (!first.ok() || !eq(expected, first.value(), &why)) {
      FAIL() << name << " case " << c << " (seed 0x" << std::hex << seed
             << std::dec << ", n=" << n << ", parts=" << parts
             << ", workers=" << workers << "): cluster != whole: "
             << (first.ok() ? why : first.status().ToString());
    }

    // Crash a worker from inside the partial-result stream: the restart
    // lands between the sort-key cache fill (first run) and its intended
    // reuse, dropping that worker's datasets and key cache mid-merge. The
    // stream may complete or fail with Unavailable; either way the healing
    // path must reproduce the reference afterwards.
    const int victim = static_cast<int>(rng.NextUint64(workers));
    auto stream = tc->root->RunSketchStream<R>("data", sketch);
    std::atomic<bool> restarted{false};
    stream->Subscribe([&](const PartialResult<R>&) {
      if (!restarted.exchange(true)) tc->root->RestartWorker(victim);
    });
    (void)stream->BlockingLast();
    EXPECT_TRUE(restarted.load());
    EXPECT_GE(tc->workers[victim]->restart_count(), 1);

    auto healed = tc->root->RunSketch<R>("data", sketch);
    if (!healed.ok() || !eq(expected, healed.value(), &why)) {
      FAIL() << name << " case " << c << " (seed 0x" << std::hex << seed
             << std::dec << ", n=" << n << ", parts=" << parts
             << ", workers=" << workers
             << "): post-restart cluster != whole: "
             << (healed.ok() ? why : healed.status().ToString());
    }
  }
}

constexpr int kClusterCases = 12;

TEST(SketchPropertyCluster, NextItemsMatchesSinglePartitionAcrossRestarts) {
  auto key_columns = std::make_shared<int>(0);
  RunClusterProperty<NextItemsResult>(
      "cluster-next-items", kClusterCases,
      [key_columns](const TestData&, const TablePtr& whole, Random& rng) {
        RecordOrder order = RandomOrder(rng);
        *key_columns = static_cast<int>(order.orientations().size());
        auto start = MaybeStartKey(order, whole, rng);
        int k = 1 + static_cast<int>(rng.NextUint64(15));
        return std::make_shared<NextItemsSketch>(
            order, std::vector<std::string>{"c"}, std::move(start), k);
      },
      [key_columns](const NextItemsResult& a, const NextItemsResult& b,
                    std::string* why) {
        return EqNextItemsKeyed(a, b, *key_columns, why);
      });
}

TEST(SketchPropertyCluster, QuantileMatchesSinglePartitionAcrossRestarts) {
  RunClusterProperty<QuantileResult>(
      "cluster-quantile", kClusterCases,
      [](const TestData&, const TablePtr&, Random& rng) {
        return std::make_shared<QuantileSketch>(RandomOrder(rng),
                                                /*rate=*/1.0,
                                                /*max_size=*/1 << 20);
      },
      EqQuantile);
}

TEST(SketchPropertyCluster, SampledQuantileHealsWithinRankBound) {
  // The crash/redo-heal path for a *compacting, sampled* quantile summary:
  // cluster partials sample under engine-mixed seeds and the merge tree over
  // the wire is whatever order partials arrive in, so the reference
  // comparison is the statistical rank bound, not exact equality. The
  // restart mid-stream then exercises redo-log healing with randomized
  // compaction in play.
  auto order_holder = std::make_shared<RecordOrder>();
  RunClusterProperty<QuantileResult>(
      "cluster-quantile-sampled", 6,
      [order_holder](const TestData&, const TablePtr&, Random& rng) {
        *order_holder = RandomOrder(rng);
        return std::make_shared<QuantileSketch>(*order_holder, /*rate=*/0.5,
                                                /*max_size=*/160);
      },
      [order_holder](const QuantileResult& a, const QuantileResult& b,
                     std::string* why) {
        return QuantileWithinRankBound(a, b, *order_holder, why);
      },
      /*rows_base=*/2400, /*rows_spread=*/1600);
}

TEST(SketchPropertyCluster, HistogramMatchesSinglePartitionAcrossRestarts) {
  RunClusterProperty<HistogramResult>(
      "cluster-histogram", kClusterCases,
      [](const TestData&, const TablePtr&, Random& rng) {
        double lo = -120.0 + rng.NextDouble() * 60.0;
        double hi = lo + 20.0 + rng.NextDouble() * 180.0;
        int buckets = 1 + static_cast<int>(rng.NextUint64(9));
        return std::make_shared<StreamingHistogramSketch>(
            "d", Buckets(NumericBuckets(lo, hi, buckets)));
      },
      EqHistogram);
}

// ---------------------------------------------------------------------------
// Morsel byte-identity (sketch/morsel.h): for every sketch family that
// declares MorselMergeExact(), fanning one partition across a pool in
// cache-sized morsels must produce a summary whose *serialized bytes* equal
// the single-thread Summarize — not just semantically equal. Cache keys and
// the redo log assume summaries are a pure function of (sketch, table,
// seed); intra-worker parallelism must be invisible to both.

template <typename R>
std::vector<uint8_t> SummaryBytes(const R& summary) {
  ByteWriter w;
  summary.Serialize(&w);
  return w.Take();
}

/// Restores the production morsel threshold even when an assertion bails
/// out of the test early.
struct MorselRowsGuard {
  explicit MorselRowsGuard(uint32_t rows) { SetMorselMinRowsForTest(rows); }
  ~MorselRowsGuard() { SetMorselMinRowsForTest(0); }
};

template <typename R>
void RunMorselByteIdentity(
    const char* name, int cases, bool expect_exact,
    const std::function<SketchPtr<R>(const TestData&, const TablePtr&,
                                     Random&)>& make_sketch) {
  const uint64_t name_hash = HashBytes(name, std::strlen(name), 0x30D5);
  // 64-row morsels against a few-hundred-row table: dozens of morsels, so a
  // broken decomposition or merge order cannot hide. The pool is wider than
  // the morsel count is deep to encourage genuinely interleaved execution.
  MorselRowsGuard guard(/*rows=*/64);
  ThreadPool pool(4);
  SketchContext fanned;
  fanned.aux_pool = [&pool]() { return &pool; };
  for (int c = 0; c < cases; ++c) {
    const uint64_t seed = MixSeed(name_hash, static_cast<uint64_t>(c));
    Random rng(seed);
    const size_t n = 256 + rng.NextUint64(1024);
    TestData data = MakeData(n, rng);
    std::vector<uint32_t> active(n);
    std::iota(active.begin(), active.end(), 0);
    TablePtr whole = BuildTable(data, active);
    SketchPtr<R> sketch = make_sketch(data, whole, rng);
    ASSERT_EQ(sketch->MorselMergeExact(), expect_exact) << name;

    // Full membership: the common leaf shape.
    std::vector<uint8_t> serial =
        SummaryBytes(sketch->Summarize(*whole, seed, {}));
    std::vector<uint8_t> morsel =
        SummaryBytes(SummarizeWithMorsels(*sketch, *whole, seed, fanned));
    ASSERT_EQ(serial, morsel)
        << name << " case " << c << " (seed 0x" << std::hex << seed
        << std::dec << ", n=" << n << "): full-membership morsel summary "
        << "is not byte-identical to single-thread";

    // A filtered leaf: SliceMembership must slice sparse and dense
    // representations identically to the serial scan over the same rows.
    std::vector<uint32_t> kept;
    for (uint32_t r = 0; r < n; ++r) {
      if (rng.NextUint64(3) != 0) kept.push_back(r);
    }
    TablePtr filtered = whole->WithMembership(std::make_shared<SparseMembership>(
        kept, static_cast<uint32_t>(n)));
    std::vector<uint8_t> serial_f =
        SummaryBytes(sketch->Summarize(*filtered, seed, {}));
    std::vector<uint8_t> morsel_f =
        SummaryBytes(SummarizeWithMorsels(*sketch, *filtered, seed, fanned));
    ASSERT_EQ(serial_f, morsel_f)
        << name << " case " << c << " (seed 0x" << std::hex << seed
        << std::dec << ", n=" << n << ", kept=" << kept.size()
        << "): filtered-membership morsel summary differs";
  }
}

constexpr int kMorselCases = 40;

TEST(SketchMorsel, StreamingHistogramByteIdentical) {
  RunMorselByteIdentity<HistogramResult>(
      "morsel-streaming-histogram", kMorselCases, /*expect_exact=*/true,
      [](const TestData&, const TablePtr&, Random& rng) {
        double lo = -120.0 + rng.NextDouble() * 60.0;
        double hi = lo + 20.0 + rng.NextDouble() * 180.0;
        int buckets = 1 + static_cast<int>(rng.NextUint64(9));
        return std::make_shared<StreamingHistogramSketch>(
            "d", Buckets(NumericBuckets(lo, hi, buckets)));
      });
}

TEST(SketchMorsel, SampledHistogramAtFullRateByteIdentical) {
  RunMorselByteIdentity<HistogramResult>(
      "morsel-sampled-histogram", kMorselCases, /*expect_exact=*/true,
      [](const TestData&, const TablePtr&, Random& rng) {
        int buckets = 1 + static_cast<int>(rng.NextUint64(9));
        return std::make_shared<SampledHistogramSketch>(
            "i", Buckets(NumericBuckets(-55, 55, buckets)), /*rate=*/1.0);
      });
}

TEST(SketchMorsel, Histogram2DByteIdentical) {
  RunMorselByteIdentity<Histogram2DResult>(
      "morsel-histogram2d", kMorselCases, /*expect_exact=*/true,
      [](const TestData&, const TablePtr&, Random& rng) {
        int xb = 1 + static_cast<int>(rng.NextUint64(7));
        int yb = 1 + static_cast<int>(rng.NextUint64(4));
        return std::make_shared<Histogram2DSketch>(
            "i", Buckets(NumericBuckets(-55, 55, xb)), "c",
            CategoryBuckets(yb, rng));
      });
}

TEST(SketchMorsel, TrellisByteIdentical) {
  RunMorselByteIdentity<TrellisResult>(
      "morsel-trellis", kMorselCases, /*expect_exact=*/true,
      [](const TestData&, const TablePtr&, Random& rng) {
        int wb = 1 + static_cast<int>(rng.NextUint64(4));
        return std::make_shared<TrellisSketch>(
            "c", CategoryBuckets(wb, rng), "i",
            Buckets(NumericBuckets(-55, 55, 5)), "d",
            Buckets(NumericBuckets(-110, 110, 4)));
      });
}

TEST(SketchMorsel, HyperLogLogByteIdentical) {
  RunMorselByteIdentity<HllResult>(
      "morsel-hyperloglog", kMorselCases, /*expect_exact=*/true,
      [](const TestData&, const TablePtr&, Random& rng) {
        int precision = 6 + static_cast<int>(rng.NextUint64(5));
        return std::make_shared<HyperLogLogSketch>("s", precision);
      });
}

// Sketches that do NOT declare exact morsel merging must fall straight
// through to the plain summarize — same bytes because it IS the same call.
TEST(SketchMorsel, NonExactSketchFallsThrough) {
  RunMorselByteIdentity<QuantileResult>(
      "morsel-quantile-fallthrough", /*cases=*/10, /*expect_exact=*/false,
      [](const TestData&, const TablePtr&, Random& rng) {
        return std::make_shared<QuantileSketch>(RandomOrder(rng),
                                                /*rate=*/1.0,
                                                /*max_size=*/1 << 20);
      });
}

// Sampled sketches below full rate must not fan out: per-morsel sampling
// draws a different row subset than a single whole-partition pass.
TEST(SketchMorsel, SampledBelowFullRateIsNotExact) {
  EXPECT_FALSE(SampledHistogramSketch("i", Buckets(NumericBuckets(-55, 55, 4)),
                                      /*rate=*/0.5)
                   .MorselMergeExact());
  EXPECT_TRUE(SampledHistogramSketch("i", Buckets(NumericBuckets(-55, 55, 4)),
                                     /*rate=*/1.0)
                  .MorselMergeExact());
}

// PlanMorselRanges / SliceMembership unit coverage: 64-aligned ranges that
// tile the universe exactly, and slices that agree with the base set.
TEST(SketchMorsel, PlanMorselRangesTilesUniverse) {
  auto ranges = PlanMorselRanges(/*universe_size=*/1000, /*morsel_rows=*/256);
  ASSERT_EQ(ranges.size(), 4u);
  uint32_t expect_begin = 0;
  for (const auto& r : ranges) {
    EXPECT_EQ(r.first, expect_begin);
    EXPECT_EQ(r.first % 64, 0u);
    EXPECT_LT(r.first, r.second);
    expect_begin = r.second;
  }
  EXPECT_EQ(ranges.back().second, 1000u);
  EXPECT_TRUE(PlanMorselRanges(0, 256).empty());
}

TEST(SketchMorsel, SliceMembershipMatchesBaseAcrossRepresentations) {
  const uint32_t universe = 517;  // deliberately not a multiple of 64
  Random rng(0x511CEu);
  std::vector<uint32_t> sparse_rows;
  std::vector<uint64_t> dense_words((universe + 63) / 64, 0);
  for (uint32_t r = 0; r < universe; ++r) {
    if (rng.NextUint64(3) == 0) sparse_rows.push_back(r);
    if (rng.NextUint64(2) == 0) dense_words[r >> 6] |= 1ULL << (r & 63);
  }
  std::vector<MembershipPtr> bases = {
      std::make_shared<FullMembership>(universe),
      std::make_shared<DenseMembership>(dense_words, universe),
      std::make_shared<SparseMembership>(sparse_rows, universe)};
  for (const auto& base : bases) {
    for (auto [begin, end] : {std::pair<uint32_t, uint32_t>{0, 64},
                              {64, 512}, {448, universe}, {0, universe},
                              {192, 192}}) {
      MembershipPtr slice = SliceMembership(*base, begin, end);
      ASSERT_NE(slice, nullptr);
      EXPECT_EQ(slice->universe_size(), universe);
      std::vector<uint32_t> expect, got;
      ForEachRow(*base, [&](uint32_t r) {
        if (r >= begin && r < end) expect.push_back(r);
      });
      ForEachRow(*slice, [&](uint32_t r) { got.push_back(r); });
      EXPECT_EQ(got, expect) << "slice [" << begin << "," << end << ")";
    }
  }
}

}  // namespace
}  // namespace hillview
