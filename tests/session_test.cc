// Multi-tenant serving suite: N RootSessions sharing one Cluster — the
// shared-cache single-flight protocol, generation-tagged render
// cancellation, admission control, DRR fairness accounting, and the
// degraded-result cache guard, all raced across real threads. Labeled both
// `tier1` (the regression gate) and `concurrency` (the TSan lane): sessions
// racing on the shared cache and scheduler are exactly the interleavings
// TSan should watch.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/fault_injection.h"
#include "cluster/root.h"
#include "cluster/scheduler.h"
#include "cluster/worker_health.h"
#include "reactive/observable.h"
#include "sketch/histogram.h"
#include "test_util.h"
#include "util/stopwatch.h"

namespace hillview {
namespace {

using cluster::Cluster;
using cluster::Direction;
using cluster::FaultInjector;
using cluster::FaultPlan;
using cluster::QueryScheduler;
using cluster::RootSession;
using cluster::ScriptedFault;
using cluster::SimulatedNetwork;
using cluster::Worker;
using cluster::WorkerHealth;
using testing::MakeDoubleTable;
using testing::SplitValues;
using testing::UniformDoubles;

constexpr int kWorkers = 2;
constexpr int kPartitions = 4;

/// A shared deployment plus `num_sessions` tenant handles. The dataset is
/// loaded once (dataset ids are cluster-global); every session queries it.
struct MultiTenant {
  std::vector<cluster::WorkerPtr> workers;
  SimulatedNetwork network;
  std::unique_ptr<Cluster> cluster;
  std::vector<std::shared_ptr<RootSession>> sessions;

  static std::unique_ptr<MultiTenant> Create(
      const std::vector<TablePtr>& partitions, int num_sessions,
      RootSession::Options options = {},
      SimulatedNetwork::Model net_model = {}) {
    auto mt = std::make_unique<MultiTenant>();
    mt->network.set_model(net_model);
    ParallelDataSet::Options worker_aggregation;
    worker_aggregation.progressive = false;  // deterministic message counts
    for (int w = 0; w < kWorkers; ++w) {
      mt->workers.push_back(std::make_shared<Worker>(
          "worker" + std::to_string(w), 2, worker_aggregation));
    }
    mt->cluster =
        std::make_unique<Cluster>(mt->workers, &mt->network, options);
    for (int s = 0; s < num_sessions; ++s) {
      mt->sessions.push_back(mt->cluster->OpenSession());
    }
    std::vector<LocalDataSet::Loader> loaders;
    for (const auto& table : partitions) {
      loaders.push_back([table]() -> Result<TablePtr> { return table; });
    }
    if (!mt->sessions[0]->LoadDataSet("data", loaders).ok()) return nullptr;
    return mt;
  }
};

/// Chaos-style options: deadlines on (muted workers settle as
/// kDeadlineExceeded through the simulation, not the wall clock), zero
/// backoff, non-progressive root aggregation.
RootSession::Options FaultOptions() {
  RootSession::Options options;
  options.aggregation.aggregation_window_ms = 0;
  options.rpc.deadline_ms = 5000;
  options.rpc.max_retries = 4;
  options.rpc.backoff_base_ms = 0.0;
  options.rpc.backoff_cap_ms = 0.0;
  return options;
}

std::vector<TablePtr> Partitions(std::vector<double>* all_values) {
  auto values = UniformDoubles(8000, 0, 100, 777);
  if (all_values != nullptr) *all_values = values;
  std::vector<TablePtr> partitions;
  for (const auto& chunk : SplitValues(values, kPartitions)) {
    partitions.push_back(MakeDoubleTable("x", chunk));
  }
  return partitions;
}

SketchPtr<HistogramResult> TestSketch() {
  return std::make_shared<StreamingHistogramSketch>(
      "x", Buckets(NumericBuckets(0, 100, 16)));
}

std::vector<uint8_t> SummaryBytes(const HistogramResult& r) {
  return AnySketch::Wrap<HistogramResult>(TestSketch())
      .Serialize(AnySummary::Wrap<HistogramResult>(r));
}

TEST(Session, ClusterHandsOutDistinctSessionIds) {
  auto mt = MultiTenant::Create(Partitions(nullptr), /*num_sessions=*/3);
  ASSERT_NE(mt, nullptr);
  EXPECT_EQ(mt->sessions[0]->session_id(), 0);
  EXPECT_EQ(mt->sessions[1]->session_id(), 1);
  EXPECT_EQ(mt->sessions[2]->session_id(), 2);
  EXPECT_EQ(mt->cluster->sessions_opened(), 3);
  // All sessions share the cluster substrate.
  EXPECT_EQ(&mt->sessions[0]->cache(), &mt->sessions[1]->cache());
  EXPECT_EQ(&mt->sessions[0]->health(), &mt->sessions[2]->health());
}

// N sessions race the SAME cacheable query: single-flight must elect exactly
// one owner (one miss, one computation); everyone else adopts its result —
// as a coalesced in-flight hit or a plain cache hit, depending on arrival
// time — and every session sees byte-identical output.
TEST(Session, IdenticalQueriesAreSingleFlightedAcrossSessions) {
  constexpr int kSessions = 4;
  std::vector<double> all_values;
  SimulatedNetwork::Model model;
  model.latency_ms = 2.0;  // widen the in-flight window so waiters coalesce
  auto mt = MultiTenant::Create(Partitions(&all_values), kSessions, {},
                                model);
  ASSERT_NE(mt, nullptr);

  std::vector<Result<HistogramResult>> results(
      kSessions, Result<HistogramResult>(Status::OK()));
  std::vector<RootSession::QueryStats> stats(kSessions);
  std::vector<std::thread> threads;
  for (int s = 0; s < kSessions; ++s) {
    threads.emplace_back([&, s]() {
      results[s] = mt->sessions[s]->RunSketch<HistogramResult>(
          "data", TestSketch(), /*seed=*/0, /*cacheable=*/true, &stats[s]);
    });
  }
  for (auto& t : threads) t.join();

  HistogramResult reference = TestSketch()->Summarize(
      *MakeDoubleTable("x", all_values), 0);
  int served_without_computing = 0;
  for (int s = 0; s < kSessions; ++s) {
    ASSERT_TRUE(results[s].ok()) << results[s].status().ToString();
    EXPECT_EQ(SummaryBytes(results[s].value()), SummaryBytes(reference));
    if (stats[s].from_cache) ++served_without_computing;
  }
  // Exactly one session computed; the other three were served shared state.
  EXPECT_EQ(served_without_computing, kSessions - 1);
  auto cache = mt->cluster->shared_cache().Snapshot();
  EXPECT_EQ(cache.misses, 1);
  EXPECT_EQ(cache.hits + cache.coalesced_hits, kSessions - 1);
  EXPECT_EQ(cache.entries, 1u);
}

// Sessions issuing DISTINCT queries concurrently never cross results: each
// gets its own answer, and the shared cache holds one entry per key.
TEST(Session, DistinctQueriesAcrossSessionsStayIsolated) {
  constexpr int kSessions = 3;
  std::vector<double> all_values;
  auto mt = MultiTenant::Create(Partitions(&all_values), kSessions);
  ASSERT_NE(mt, nullptr);

  auto sketch_for = [](int s) {
    return std::make_shared<StreamingHistogramSketch>(
        "x", Buckets(NumericBuckets(0, 100, 8 + 4 * s)));
  };
  std::vector<Result<HistogramResult>> results(
      kSessions, Result<HistogramResult>(Status::OK()));
  std::vector<std::thread> threads;
  for (int s = 0; s < kSessions; ++s) {
    threads.emplace_back([&, s]() {
      results[s] = mt->sessions[s]->RunSketch<HistogramResult>(
          "data", sketch_for(s), /*seed=*/0, /*cacheable=*/true);
    });
  }
  for (auto& t : threads) t.join();

  TablePtr whole = MakeDoubleTable("x", all_values);
  for (int s = 0; s < kSessions; ++s) {
    ASSERT_TRUE(results[s].ok()) << results[s].status().ToString();
    HistogramResult reference = sketch_for(s)->Summarize(*whole, 0);
    ASSERT_EQ(results[s].value().counts.size(), reference.counts.size());
    EXPECT_EQ(results[s].value().counts, reference.counts);
  }
  EXPECT_EQ(mt->cluster->shared_cache().Snapshot().entries,
            static_cast<size_t>(kSessions));
}

// The render-cancellation contract end to end: a scroll that supersedes an
// in-flight render settles that render Status::Cancelled quickly, without
// poisoning the shared cache or the health stats; the winning generation
// then computes a result byte-identical to a solo run (and, because the
// cancelled owner released its single-flight empty, the winner re-elects
// and publishes normally).
TEST(Session, SupersededRenderIsCancelledWithoutPoisoningSharedState) {
  std::vector<double> all_values;
  SimulatedNetwork::Model model;
  model.latency_ms = 20.0;  // per message: the render is in flight for ~80ms
  auto mt = MultiTenant::Create(Partitions(&all_values), /*num_sessions=*/1,
                                {}, model);
  ASSERT_NE(mt, nullptr);
  RootSession& session = *mt->sessions[0];

  CancellationTokenPtr gen1 = session.BeginRender("histogram-view");
  EXPECT_EQ(session.render_generation("histogram-view"), 1);

  Result<HistogramResult> loser = Status::OK();
  RootSession::QueryStats loser_stats;
  std::thread render([&]() {
    loser = session.RunSketch<HistogramResult>(
        "data", TestSketch(), /*seed=*/0, /*cacheable=*/true, &loser_stats,
        gen1);
  });
  // Let the render get in flight, then scroll: the new generation supersedes.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  Stopwatch settle;
  CancellationTokenPtr gen2 = session.BeginRender("histogram-view");
  render.join();
  EXPECT_EQ(session.render_generation("histogram-view"), 2);
  EXPECT_TRUE(gen1->IsCancelled());
  EXPECT_FALSE(gen2->IsCancelled());

  ASSERT_FALSE(loser.ok());
  EXPECT_EQ(loser.status().code(), StatusCode::kCancelled);
  // Settling must not wait out the slow render's full network schedule.
  EXPECT_LT(settle.ElapsedMillis(), 5000.0);
  // A cancelled query poisons nothing: no cached partial, no health marks.
  EXPECT_EQ(mt->cluster->shared_cache().Snapshot().entries, 0u);
  auto health = mt->cluster->health().Snapshot();
  EXPECT_EQ(health.failures, 0);
  EXPECT_EQ(health.trips, 0);

  // The winning generation computes the full result and may publish it.
  RootSession::QueryStats winner_stats;
  auto winner = session.RunSketch<HistogramResult>(
      "data", TestSketch(), /*seed=*/0, /*cacheable=*/true, &winner_stats,
      gen2);
  ASSERT_TRUE(winner.ok()) << winner.status().ToString();
  EXPECT_FALSE(winner_stats.from_cache);  // the loser cached nothing
  HistogramResult reference = TestSketch()->Summarize(
      *MakeDoubleTable("x", all_values), 0);
  EXPECT_EQ(SummaryBytes(winner.value()), SummaryBytes(reference));
  EXPECT_EQ(mt->cluster->shared_cache().Snapshot().entries, 1u);
}

// A token that is already cancelled short-circuits before any work — on both
// the cacheable path (checked before the single-flight) and the uncached
// path (checked at scheduler admission).
TEST(Session, AlreadyCancelledTokenShortCircuits) {
  auto mt = MultiTenant::Create(Partitions(nullptr), /*num_sessions=*/1);
  ASSERT_NE(mt, nullptr);
  RootSession& session = *mt->sessions[0];
  CancellationTokenPtr stale = session.BeginRender("view");
  (void)session.BeginRender("view");  // supersede immediately

  auto cached = session.RunSketch<HistogramResult>(
      "data", TestSketch(), /*seed=*/0, /*cacheable=*/true, nullptr, stale);
  ASSERT_FALSE(cached.ok());
  EXPECT_EQ(cached.status().code(), StatusCode::kCancelled);

  auto uncached = session.RunSketch<HistogramResult>(
      "data", TestSketch(), /*seed=*/0, /*cacheable=*/false, nullptr, stale);
  ASSERT_FALSE(uncached.ok());
  EXPECT_EQ(uncached.status().code(), StatusCode::kCancelled);
  // Neither run touched the workers or the cache.
  EXPECT_EQ(mt->cluster->shared_cache().Snapshot().entries, 0u);
  EXPECT_GE(mt->cluster->scheduler().Snapshot().cancelled_in_queue, 1);
}

// Admission control at the scheduler, deterministically gated: a session
// over its in-flight budget is shed, and once the dispatch pool is
// saturated with a full queue, other sessions are shed too — both with
// Unavailable, both WITHOUT running the query.
TEST(Session, AdmissionControlShedsWhenSaturated) {
  QueryScheduler::Options options;
  options.dispatch_concurrency = 1;
  options.max_in_flight_per_session = 1;
  options.max_queued_total = 0;
  QueryScheduler scheduler(options, /*health=*/nullptr);

  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  std::thread occupant([&]() {
    Status s = scheduler.Execute(/*session_id=*/0, nullptr, [&]() {
      started.store(true);
      while (!release.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      return Status::OK();
    });
    EXPECT_TRUE(s.ok());
  });
  while (!started.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Same session again: over its in-flight budget.
  bool ran = true;
  Status own_budget = scheduler.Execute(
      0, nullptr, []() { return Status::OK(); }, &ran);
  EXPECT_EQ(own_budget.code(), StatusCode::kUnavailable);
  EXPECT_FALSE(ran);

  // Another session: the pool is saturated and the queue is full.
  ran = true;
  Status queue_full = scheduler.Execute(
      1, nullptr, []() { return Status::OK(); }, &ran);
  EXPECT_EQ(queue_full.code(), StatusCode::kUnavailable);
  EXPECT_FALSE(ran);

  release.store(true);
  occupant.join();
  auto stats = scheduler.Snapshot();
  EXPECT_EQ(stats.submitted, 3);
  EXPECT_EQ(stats.completed, 1);
  EXPECT_EQ(stats.shed_session_budget, 1);
  EXPECT_EQ(stats.shed_queue_full, 1);
  EXPECT_EQ(stats.max_running, 1);
}

// When every worker breaker is open the cluster cannot answer at all:
// queueing would only turn overload into latency, so arrivals shed.
TEST(Session, AdmissionControlShedsWhenEveryBreakerIsOpen) {
  WorkerHealth::Options health_options;
  health_options.failure_threshold = 1;
  WorkerHealth health(/*num_workers=*/2, health_options);
  health.RecordFailure(0);
  health.RecordFailure(1);
  ASSERT_EQ(health.num_open(), 2);

  QueryScheduler scheduler({}, &health);
  bool ran = true;
  Status s = scheduler.Execute(
      0, nullptr, []() { return Status::OK(); }, &ran);
  EXPECT_EQ(s.code(), StatusCode::kUnavailable);
  EXPECT_FALSE(ran);
  EXPECT_EQ(scheduler.Snapshot().shed_unhealthy, 1);
}

// DRR cost accounting: a session starts at one quantum, converges toward
// what its queries actually move (EWMA), and is clamped so one outlier can
// neither zero out nor blow up its estimate.
TEST(Session, SchedulerCostEstimateConvergesAndClamps) {
  QueryScheduler::Options options;
  options.quantum_bytes = 1000;
  QueryScheduler scheduler(options, nullptr);
  // Sessions materialize on first Execute.
  (void)scheduler.Execute(7, nullptr, []() { return Status::OK(); });
  EXPECT_EQ(scheduler.CostEstimate(7), 1000);

  for (int i = 0; i < 64; ++i) scheduler.ChargeCost(7, 1 << 30);
  EXPECT_EQ(scheduler.CostEstimate(7), 64 * 1000);  // clamped at 64 quanta

  for (int i = 0; i < 256; ++i) scheduler.ChargeCost(7, 0);
  EXPECT_GE(scheduler.CostEstimate(7), 1);  // floored, never free
  EXPECT_LE(scheduler.CostEstimate(7), 4);
}

// The per-session network tally: two tenants running the same workload move
// the same bytes (the scheduler's bandwidth-fairness measure reads exactly
// this), and the tally is attributed per session id.
TEST(Session, PerSessionTrafficIsAttributedAndFair) {
  auto mt = MultiTenant::Create(Partitions(nullptr), /*num_sessions=*/2);
  ASSERT_NE(mt, nullptr);
  for (int s = 0; s < 2; ++s) {
    auto result = mt->sessions[s]->RunSketch<HistogramResult>(
        "data", TestSketch(), /*seed=*/0, /*cacheable=*/false);
    ASSERT_TRUE(result.ok());
  }
  auto traffic = mt->network.AllSessionTraffic();
  ASSERT_EQ(traffic.size(), 2u);
  auto a = mt->network.SessionSnapshot(0);
  auto b = mt->network.SessionSnapshot(1);
  EXPECT_GT(a.bytes_up, 0u);
  EXPECT_GT(a.bytes_down, 0u);
  // Identical workloads, non-progressive aggregation: byte-for-byte fair.
  EXPECT_EQ(a.bytes_up, b.bytes_up);
  EXPECT_EQ(a.messages_up, b.messages_up);
}

// The shared-health contract under faults: session A burns the retry budget
// against a muted worker and trips its breaker; session B then sees the SAME
// breaker verdict — it degrades immediately (no retry burn of its own) with
// identical coverage. And the degraded-result guard holds across tenants:
// A's partial result is never served to B from the shared cache.
TEST(Session, BreakerVerdictAndDegradedGuardAreSharedAcrossSessions) {
  std::vector<double> all_values;
  auto mt = MultiTenant::Create(Partitions(&all_values), /*num_sessions=*/2,
                                FaultOptions());
  ASSERT_NE(mt, nullptr);
  constexpr int kDead = 1;
  FaultPlan plan;
  plan.schedule.push_back(ScriptedFault::Mute(kDead, Direction::kUp, 0,
                                              ScriptedFault::kForever));
  mt->network.InstallFaultInjector(std::make_shared<FaultInjector>(plan));

  RootSession::QueryStats a_stats;
  auto a = mt->sessions[0]->RunSketch<HistogramResult>(
      "data", TestSketch(), /*seed=*/0, /*cacheable=*/true, &a_stats);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_TRUE(a_stats.degraded);
  EXPECT_EQ(a_stats.coverage, 0.5);  // worker 1 held partitions 1 and 3
  EXPECT_GE(mt->cluster->health().Snapshot().trips, 1);

  // Session B: the shared breaker is already open, so B degrades on its
  // FIRST attempt — no transport retries — and is NOT served A's partial
  // result from the shared cache.
  RootSession::QueryStats b_stats;
  auto b = mt->sessions[1]->RunSketch<HistogramResult>(
      "data", TestSketch(), /*seed=*/0, /*cacheable=*/true, &b_stats);
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_TRUE(b_stats.degraded);
  EXPECT_FALSE(b_stats.from_cache);
  EXPECT_EQ(b_stats.coverage, a_stats.coverage);
  EXPECT_EQ(b_stats.transport_retries, 0);
  EXPECT_EQ(mt->cluster->shared_cache().Snapshot().entries, 0u);
  EXPECT_EQ(SummaryBytes(a.value()), SummaryBytes(b.value()));
}

// BlockingLastFor with a cancellation token settles promptly when the token
// flips mid-wait — the reactive-layer primitive under every render
// cancellation — and immediately when the token was already flipped.
TEST(Session, BlockingLastForSettlesOnCancellation) {
  Stream<int> stream;
  stream.OnNext(7);
  auto token = std::make_shared<CancellationToken>();
  std::thread canceller([&]() {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    token->Cancel();
  });
  bool timed_out = false;
  bool cancelled = false;
  Stopwatch watch;
  auto last = stream.BlockingLastFor(/*timeout_ms=*/60000.0, &timed_out,
                                     token, &cancelled);
  canceller.join();
  EXPECT_LT(watch.ElapsedMillis(), 30000.0);  // nowhere near the timeout
  EXPECT_TRUE(cancelled);
  EXPECT_FALSE(timed_out);
  ASSERT_TRUE(last.has_value());  // the last partial is still handed back
  EXPECT_EQ(*last, 7);

  // Already-cancelled: returns without waiting at all.
  bool cancelled2 = false;
  auto again = stream.BlockingLastFor(/*timeout_ms=*/60000.0, &timed_out,
                                      token, &cancelled2);
  EXPECT_TRUE(cancelled2);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(*again, 7);
}

}  // namespace
}  // namespace hillview
