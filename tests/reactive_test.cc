#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "reactive/observable.h"

namespace hillview {
namespace {

TEST(CancellationTokenTest, StartsLive) {
  CancellationToken token;
  EXPECT_FALSE(token.IsCancelled());
  token.Cancel();
  EXPECT_TRUE(token.IsCancelled());
  token.Cancel();  // idempotent
  EXPECT_TRUE(token.IsCancelled());
}

TEST(StreamTest, BuffersUntilSubscribe) {
  Stream<int> stream;
  stream.OnNext(1);
  stream.OnNext(2);
  std::vector<int> seen;
  stream.Subscribe([&](int v) { seen.push_back(v); });
  EXPECT_EQ(seen, (std::vector<int>{1, 2}));
  stream.OnNext(3);
  EXPECT_EQ(seen, (std::vector<int>{1, 2, 3}));
}

TEST(StreamTest, CompletionDeliversStatus) {
  Stream<int> stream;
  Status seen_status = Status::Internal("never set");
  stream.Subscribe([](int) {}, [&](const Status& s) { seen_status = s; });
  stream.OnComplete(Status::Cancelled("stop"));
  EXPECT_EQ(seen_status.code(), StatusCode::kCancelled);
  EXPECT_TRUE(stream.IsDone());
}

TEST(StreamTest, CompletionBeforeSubscribeIsReplayed) {
  Stream<int> stream;
  stream.OnNext(9);
  stream.OnComplete(Status::OK());
  std::vector<int> seen;
  bool done = false;
  stream.Subscribe([&](int v) { seen.push_back(v); },
                   [&](const Status&) { done = true; });
  EXPECT_EQ(seen, std::vector<int>{9});
  EXPECT_TRUE(done);
}

TEST(StreamTest, EventsAfterCompletionAreDropped) {
  Stream<int> stream;
  stream.OnComplete(Status::OK());
  stream.OnNext(42);
  EXPECT_FALSE(stream.BlockingLast().has_value());
}

TEST(StreamTest, OnCompleteIsOnce) {
  Stream<int> stream;
  stream.OnComplete(Status::OK());
  stream.OnComplete(Status::Internal("second"));
  EXPECT_TRUE(stream.final_status().ok());
}

TEST(StreamTest, BlockingLastWaitsForProducerThread) {
  Stream<int> stream;
  std::thread producer([&stream] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    stream.OnNext(1);
    stream.OnNext(7);
    stream.OnComplete(Status::OK());
  });
  auto last = stream.BlockingLast();
  producer.join();
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(*last, 7);
}

TEST(StreamTest, BlockingCollectGathersAll) {
  Stream<int> stream;
  stream.OnNext(1);
  stream.OnNext(2);
  stream.OnNext(3);
  stream.OnComplete(Status::OK());
  EXPECT_EQ(stream.BlockingCollect(), (std::vector<int>{1, 2, 3}));
}

TEST(StreamTest, ConcurrentProducersAreOrderedPerSubscriber) {
  // Delivery happens under the stream lock, so the subscriber never sees
  // interleaved partial writes and observes every event exactly once.
  Stream<int> stream;
  std::atomic<int> sum{0};
  std::atomic<int> count{0};
  stream.Subscribe([&](int v) {
    sum.fetch_add(v);
    count.fetch_add(1);
  });
  constexpr int kThreads = 4, kPerThread = 1000;
  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&stream] {
      for (int i = 0; i < kPerThread; ++i) stream.OnNext(1);
    });
  }
  for (auto& t : producers) t.join();
  stream.OnComplete(Status::OK());
  EXPECT_EQ(count.load(), kThreads * kPerThread);
  EXPECT_EQ(sum.load(), kThreads * kPerThread);
}

TEST(StreamTest, PartialResultProgressSemantics) {
  Stream<PartialResult<int>> stream;
  stream.OnNext({0.5, 10});
  stream.OnNext({1.0, 20});
  stream.OnComplete(Status::OK());
  auto last = stream.BlockingLast();
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->progress, 1.0);
  EXPECT_EQ(last->value, 20);
}

}  // namespace
}  // namespace hillview
