#include <gtest/gtest.h>

#include "baseline/row_engine.h"
#include "test_util.h"
#include "workload/flights.h"
#include "workload/operations.h"
#include "workload/questions.h"

namespace hillview {
namespace {

using workload::AnswerQuestion;
using workload::kNumOperations;
using workload::kNumQuestions;
using workload::RunBaselineOperation;
using workload::RunHillviewOperation;

/// Small shared deployment for the operation/question scripts.
class OperationsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    workers_ = new std::vector<cluster::WorkerPtr>();
    for (int w = 0; w < 2; ++w) {
      workers_->push_back(std::make_shared<cluster::Worker>(
          "w" + std::to_string(w), 2));
    }
    network_ = new cluster::SimulatedNetwork();
    cluster_ = new cluster::Cluster(*workers_, network_);
    session_holder_ = cluster_->OpenSession();
    session_ = session_holder_.get();
    ASSERT_TRUE(session_
                    ->LoadDataSet("flights",
                                  workload::FlightsLoaders(40000, 10000, 99))
                    .ok());
    sheet_ = new Spreadsheet(session_, "flights", {400, 200});

    std::vector<TablePtr> partitions;
    for (int p = 0; p < 4; ++p) {
      partitions.push_back(workload::GenerateFlights(10000, MixSeed(99, p)));
    }
    engine_ = new baseline::RowEngine(partitions, 4);
  }

  static void TearDownTestSuite() {
    delete sheet_;
    session_ = nullptr;
    session_holder_.reset();
    delete cluster_;  // drains worker pools before the network/workers die
    delete network_;
    delete workers_;
    delete engine_;
  }

  static std::vector<cluster::WorkerPtr>* workers_;
  static cluster::SimulatedNetwork* network_;
  static cluster::Cluster* cluster_;
  static std::shared_ptr<cluster::RootSession> session_holder_;
  static cluster::RootSession* session_;
  static Spreadsheet* sheet_;
  static baseline::RowEngine* engine_;
};

std::vector<cluster::WorkerPtr>* OperationsTest::workers_ = nullptr;
cluster::SimulatedNetwork* OperationsTest::network_ = nullptr;
cluster::Cluster* OperationsTest::cluster_ = nullptr;
std::shared_ptr<cluster::RootSession> OperationsTest::session_holder_;
cluster::RootSession* OperationsTest::session_ = nullptr;
Spreadsheet* OperationsTest::sheet_ = nullptr;
baseline::RowEngine* OperationsTest::engine_ = nullptr;

TEST_F(OperationsTest, NamesAndDescriptionsCoverAllOps) {
  for (int op = 1; op <= kNumOperations; ++op) {
    EXPECT_STRNE(workload::OperationName(op), "?");
    EXPECT_STRNE(workload::OperationDescription(op), "?");
  }
  EXPECT_STREQ(workload::OperationName(0), "?");
  EXPECT_STREQ(workload::OperationName(12), "?");
}

TEST_F(OperationsTest, AllHillviewOperationsSucceed) {
  for (int op = 1; op <= kNumOperations; ++op) {
    auto m = RunHillviewOperation(sheet_, op);
    EXPECT_TRUE(m.ok) << "O" << op << ": " << m.error;
    EXPECT_GT(m.seconds, 0) << "O" << op;
    EXPECT_GT(m.root_bytes, 0u) << "O" << op;
    EXPECT_LE(m.first_partial_seconds, m.seconds + 1e-9) << "O" << op;
  }
}

TEST_F(OperationsTest, AllBaselineOperationsSucceed) {
  for (int op = 1; op <= kNumOperations; ++op) {
    auto m = RunBaselineOperation(engine_, op);
    EXPECT_TRUE(m.ok) << "O" << op << ": " << m.error;
    EXPECT_GT(m.root_bytes, 0u) << "O" << op;
  }
}

TEST_F(OperationsTest, HillviewRootBytesAreDisplaySizedForSorts) {
  // O1: a 20-row table page; summaries must be a few KB regardless of data.
  auto m = RunHillviewOperation(sheet_, 1);
  ASSERT_TRUE(m.ok);
  EXPECT_LT(m.root_bytes, 64 * 1024u);
}

class QuestionSweep : public OperationsTest,
                      public ::testing::WithParamInterface<int> {};

TEST_P(QuestionSweep, ScriptRunsAndCountsActions) {
  int q = GetParam();
  auto outcome = AnswerQuestion(sheet_, q);
  EXPECT_TRUE(outcome.ok) << "Q" << q << ": " << outcome.error;
  EXPECT_GT(outcome.actions, 0) << "Q" << q;
  EXPECT_LE(outcome.actions, 8) << "Q" << q;  // paper range: 1..6
  EXPECT_FALSE(outcome.answer.empty());
  if (q == 20) {
    // The paper's unanswerable question must stay unanswerable.
    EXPECT_FALSE(outcome.answered);
  }
}

INSTANTIATE_TEST_SUITE_P(AllQuestions, QuestionSweep,
                         ::testing::Range(1, kNumQuestions + 1));

TEST_F(OperationsTest, QuestionTextsAreStable) {
  EXPECT_NE(std::string(workload::QuestionText(1)).find("UA or AA"),
            std::string::npos);
  EXPECT_NE(std::string(workload::QuestionText(20)).find("never landed"),
            std::string::npos);
}

}  // namespace
}  // namespace hillview
