#include <gtest/gtest.h>

#include <atomic>

#include "core/computation_cache.h"
#include "core/dataset.h"
#include "core/redo_log.h"
#include "sketch/histogram.h"
#include "sketch/range_moments.h"
#include "test_util.h"

namespace hillview {
namespace {

using testing::MakeDoubleTable;
using testing::SplitValues;
using testing::UniformDoubles;

std::shared_ptr<ParallelDataSet> MakeParallel(
    const std::vector<std::vector<double>>& chunks, ThreadPool* pool,
    ParallelDataSet::Options options = {}) {
  std::vector<DataSetPtr> children;
  for (size_t i = 0; i < chunks.size(); ++i) {
    children.push_back(LocalDataSet::FromTable(
        "part" + std::to_string(i), MakeDoubleTable("x", chunks[i])));
  }
  return std::make_shared<ParallelDataSet>("test", std::move(children), pool,
                                           options);
}

TEST(LocalDataSet, LoaderRunsOnceAndCaches) {
  std::atomic<int> loads{0};
  auto ds = LocalDataSet::FromLoader("d", [&loads]() -> Result<TablePtr> {
    loads.fetch_add(1);
    return MakeDoubleTable("x", {1, 2, 3});
  });
  EXPECT_FALSE(ds->IsMaterialized());
  ASSERT_TRUE(ds->GetTable().ok());
  ASSERT_TRUE(ds->GetTable().ok());
  EXPECT_EQ(loads.load(), 1);
  EXPECT_TRUE(ds->IsMaterialized());
}

TEST(LocalDataSet, EvictionForcesReload) {
  std::atomic<int> loads{0};
  auto ds = LocalDataSet::FromLoader("d", [&loads]() -> Result<TablePtr> {
    loads.fetch_add(1);
    return MakeDoubleTable("x", {1});
  });
  ASSERT_TRUE(ds->GetTable().ok());
  ds->Evict();
  EXPECT_FALSE(ds->IsMaterialized());
  ASSERT_TRUE(ds->GetTable().ok());
  EXPECT_EQ(loads.load(), 2);
  EXPECT_EQ(ds->load_count(), 2);
}

TEST(LocalDataSet, LoaderErrorPropagates) {
  auto ds = LocalDataSet::FromLoader(
      "d", []() -> Result<TablePtr> { return Status::IoError("gone"); });
  auto sketch = std::make_shared<CountSketch>();
  auto result = SketchAndWait<CountResult>(*ds, sketch);
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST(LocalDataSet, SketchProducesSingleFinalResult) {
  auto ds = LocalDataSet::FromTable("d", MakeDoubleTable("x", {1, 2, 3}));
  auto result = SketchAndWait<CountResult>(*ds, std::make_shared<CountSketch>());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows, 3);
}

TEST(LocalDataSet, MapIsLazyAndReconstructible) {
  std::atomic<int> maps{0};
  auto base = LocalDataSet::FromTable("d", MakeDoubleTable("x", {1, 2, 3, 4}));
  auto derived = base->Map(
      [&maps](const TablePtr& t) -> Result<TablePtr> {
        maps.fetch_add(1);
        return t->Filter([&](uint32_t r) {
          return t->column(0)->GetDouble(r) > 2;
        });
      },
      "gt2");
  EXPECT_EQ(maps.load(), 0);  // not yet materialized
  auto result =
      SketchAndWait<CountResult>(*derived, std::make_shared<CountSketch>());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows, 2);
  EXPECT_EQ(maps.load(), 1);

  derived->Evict();
  result = SketchAndWait<CountResult>(*derived, std::make_shared<CountSketch>());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows, 2);
  EXPECT_EQ(maps.load(), 2);  // recomputed after eviction (§5.7)
}

TEST(ParallelDataSet, SketchEqualsSequentialMerge) {
  auto values = UniformDoubles(20000, 0, 100, 71);
  auto chunks = SplitValues(values, 8);
  ThreadPool pool(4);
  auto parallel = MakeParallel(chunks, &pool);

  auto sketch = std::make_shared<StreamingHistogramSketch>(
      "x", Buckets(NumericBuckets(0, 100, 20)));
  auto result = SketchAndWait<HistogramResult>(*parallel, sketch);
  ASSERT_TRUE(result.ok());

  HistogramResult expected =
      sketch->Summarize(*MakeDoubleTable("x", values), 0);
  EXPECT_EQ(result.value().counts, expected.counts);
}

TEST(ParallelDataSet, EmptyChildrenYieldZero) {
  ThreadPool pool(2);
  ParallelDataSet empty("empty", {}, &pool);
  auto result = SketchAndWait<CountResult>(
      empty, std::make_shared<CountSketch>());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows, 0);
}

TEST(ParallelDataSet, ProgressIsMonotoneAndReachesOne) {
  auto values = UniformDoubles(50000, 0, 1, 72);
  auto chunks = SplitValues(values, 16);
  ThreadPool pool(2);
  ParallelDataSet::Options options;
  options.aggregation_window_ms = 0;  // emit every update
  auto parallel = MakeParallel(chunks, &pool, options);

  auto stream = RunTypedSketch<CountResult>(
      *parallel, std::make_shared<CountSketch>());
  std::vector<double> progress;
  std::mutex m;
  stream->Subscribe([&](const PartialResult<CountResult>& p) {
    std::lock_guard<std::mutex> lock(m);
    progress.push_back(p.progress);
  });
  auto last = stream->BlockingLast();
  ASSERT_TRUE(stream->final_status().ok());
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->progress, 1.0);
  EXPECT_EQ(last->value.rows, 50000);
  ASSERT_GE(progress.size(), 2u);  // partial results were emitted
  for (size_t i = 1; i < progress.size(); ++i) {
    EXPECT_GE(progress[i], progress[i - 1]);
  }
}

TEST(ParallelDataSet, AggregationWindowBatchesEmissions) {
  auto values = UniformDoubles(10000, 0, 1, 73);
  auto chunks = SplitValues(values, 32);
  ThreadPool pool(2);
  ParallelDataSet::Options options;
  options.aggregation_window_ms = 10000;  // effectively: only first + final
  auto parallel = MakeParallel(chunks, &pool, options);

  auto stream =
      RunTypedSketch<CountResult>(*parallel, std::make_shared<CountSketch>());
  std::atomic<int> emissions{0};
  stream->Subscribe(
      [&](const PartialResult<CountResult>&) { emissions.fetch_add(1); });
  stream->BlockingLast();
  EXPECT_LE(emissions.load(), 3);
}

TEST(ParallelDataSet, NonProgressiveEmitsOnlyFinal) {
  auto values = UniformDoubles(10000, 0, 1, 74);
  auto chunks = SplitValues(values, 16);
  ThreadPool pool(4);
  ParallelDataSet::Options options;
  options.progressive = false;
  auto parallel = MakeParallel(chunks, &pool, options);
  auto stream =
      RunTypedSketch<CountResult>(*parallel, std::make_shared<CountSketch>());
  std::atomic<int> emissions{0};
  stream->Subscribe(
      [&](const PartialResult<CountResult>&) { emissions.fetch_add(1); });
  auto last = stream->BlockingLast();
  EXPECT_EQ(emissions.load(), 1);
  EXPECT_EQ(last->value.rows, 10000);
}

TEST(ParallelDataSet, CancellationStopsQueuedWork) {
  auto values = UniformDoubles(100000, 0, 1, 75);
  auto chunks = SplitValues(values, 64);
  ThreadPool pool(1);  // force deep queuing
  auto parallel = MakeParallel(chunks, &pool);

  SketchOptions options;
  options.cancellation = std::make_shared<CancellationToken>();
  options.cancellation->Cancel();  // cancel before anything runs
  auto stream = parallel->RunSketch(
      AnySketch::Wrap<CountResult>(std::make_shared<CountSketch>()), options);
  stream->BlockingLast();
  EXPECT_EQ(stream->final_status().code(), StatusCode::kCancelled);
}

TEST(ParallelDataSet, NestedTreeComputesCorrectly) {
  // Two-level tree: root -> 2 aggregation nodes -> 4 leaves each.
  auto values = UniformDoubles(8000, 0, 1, 76);
  auto chunks = SplitValues(values, 8);
  ThreadPool pool(4);
  std::vector<DataSetPtr> mid;
  for (int g = 0; g < 2; ++g) {
    std::vector<DataSetPtr> leaves;
    for (int i = 0; i < 4; ++i) {
      leaves.push_back(LocalDataSet::FromTable(
          "leaf", MakeDoubleTable("x", chunks[g * 4 + i])));
    }
    mid.push_back(std::make_shared<ParallelDataSet>(
        "agg" + std::to_string(g), std::move(leaves), &pool));
  }
  ParallelDataSet root("root", std::move(mid), nullptr);
  auto result =
      SketchAndWait<CountResult>(root, std::make_shared<CountSketch>());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows, 8000);
  EXPECT_EQ(root.NumPartitions(), 8);
}

TEST(ParallelDataSet, MapAppliesToAllPartitions) {
  auto chunks = SplitValues(UniformDoubles(1000, 0, 1, 77), 4);
  ThreadPool pool(2);
  auto parallel = MakeParallel(chunks, &pool);
  auto derived = parallel->Map(
      [](const TablePtr& t) -> Result<TablePtr> {
        return t->Filter([t](uint32_t r) {
          return t->column(0)->GetDouble(r) < 0.5;
        });
      },
      "lt-half");
  auto result =
      SketchAndWait<CountResult>(*derived, std::make_shared<CountSketch>());
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result.value().rows, 500, 80);
  EXPECT_EQ(derived->id(), "test/lt-half");
}

TEST(ParallelDataSet, DeterministicSeedsAcrossRuns) {
  // Sampled sketches get per-partition seeds derived from the root seed, so
  // two runs with the same seed produce identical summaries.
  auto chunks = SplitValues(UniformDoubles(40000, 0, 1, 78), 8);
  ThreadPool pool(4);
  auto parallel = MakeParallel(chunks, &pool);
  auto sketch = std::make_shared<SampledHistogramSketch>(
      "x", Buckets(NumericBuckets(0, 1, 10)), 0.1);
  SketchOptions options;
  options.seed = 42;
  auto r1 = SketchAndWait<HistogramResult>(*parallel, sketch, options);
  auto r2 = SketchAndWait<HistogramResult>(*parallel, sketch, options);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1.value().counts, r2.value().counts);
  options.seed = 43;
  auto r3 = SketchAndWait<HistogramResult>(*parallel, sketch, options);
  EXPECT_NE(r1.value().counts, r3.value().counts);
}

TEST(ComputationCache, HitMissAndLru) {
  ComputationCache cache(2);
  EXPECT_FALSE(cache.Get("a").has_value());
  cache.Put("a", AnySummary::Wrap<int>(1));
  cache.Put("b", AnySummary::Wrap<int>(2));
  EXPECT_TRUE(cache.Get("a").has_value());  // refresh "a"
  cache.Put("c", AnySummary::Wrap<int>(3));  // evicts "b"
  EXPECT_TRUE(cache.Get("a").has_value());
  EXPECT_FALSE(cache.Get("b").has_value());
  EXPECT_TRUE(cache.Get("c").has_value());
  EXPECT_EQ(cache.Snapshot().entries, 2u);
  EXPECT_GT(cache.Snapshot().hits, 0);
  EXPECT_GT(cache.Snapshot().misses, 0);
}

TEST(ComputationCache, TypedRoundTrip) {
  ComputationCache cache;
  HistogramResult r;
  r.counts = {1, 2, 3};
  cache.Put(ComputationCache::Key("ds", "hist", /*seed=*/1),
            AnySummary::Wrap<HistogramResult>(r));
  auto hit = cache.Get(ComputationCache::Key("ds", "hist", /*seed=*/1));
  EXPECT_FALSE(cache.Get(ComputationCache::Key("ds", "hist", /*seed=*/2)));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->As<HistogramResult>().counts, r.counts);
}

TEST(RedoLog, AppendsAndReplays) {
  RedoLog log;
  std::atomic<int> replays{0};
  log.Append("load", "data", 0, [&replays] {
    replays.fetch_add(1);
    return Status::OK();
  });
  log.Append("sketch", "data#hist", 42);  // no replayer
  EXPECT_EQ(log.Size(), 2);
  ASSERT_TRUE(log.ReplayAll().ok());
  EXPECT_EQ(replays.load(), 1);
  auto entries = log.Entries();
  EXPECT_EQ(entries[1].seed, 42u);
  EXPECT_NE(log.ToText().find("data#hist"), std::string::npos);
}

TEST(RedoLog, ReplayStopsOnFailure) {
  RedoLog log;
  std::atomic<int> runs{0};
  log.Append("a", "", 0, [&runs] {
    runs.fetch_add(1);
    return Status::IoError("boom");
  });
  log.Append("b", "", 0, [&runs] {
    runs.fetch_add(1);
    return Status::OK();
  });
  EXPECT_FALSE(log.ReplayAll().ok());
  EXPECT_EQ(runs.load(), 1);
}

TEST(AnySketchTest, SerializeDeserializeRoundTrip) {
  auto sketch = std::make_shared<StreamingHistogramSketch>(
      "x", Buckets(NumericBuckets(0, 1, 5)));
  AnySketch erased = AnySketch::Wrap<HistogramResult>(sketch);
  TablePtr t = MakeDoubleTable("x", {0.1, 0.2, 0.9});
  AnySummary summary = erased.Summarize(*t, 0);
  std::vector<uint8_t> bytes = erased.Serialize(summary);
  auto back = erased.Deserialize(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().As<HistogramResult>().counts,
            summary.As<HistogramResult>().counts);
}

TEST(AnySketchTest, DeserializeRejectsTruncated) {
  auto sketch = std::make_shared<StreamingHistogramSketch>(
      "x", Buckets(NumericBuckets(0, 1, 5)));
  AnySketch erased = AnySketch::Wrap<HistogramResult>(sketch);
  TablePtr t = MakeDoubleTable("x", {0.5});
  std::vector<uint8_t> bytes = erased.Serialize(erased.Summarize(*t, 0));
  bytes.resize(bytes.size() / 2);
  EXPECT_FALSE(erased.Deserialize(bytes).ok());
}

}  // namespace
}  // namespace hillview
