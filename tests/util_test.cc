#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>

#include "util/random.h"
#include "util/serialize.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace hillview {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status s = Status::IoError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIoError);
  EXPECT_EQ(s.message(), "disk on fire");
  EXPECT_EQ(s.ToString(), "IoError: disk on fire");
}

TEST(Status, AllCodesHaveNames) {
  for (int c = 0; c <= static_cast<int>(StatusCode::kInternal); ++c) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(c)), "Unknown");
  }
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(Result, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

Result<int> Doubler(Result<int> in) {
  HV_ASSIGN_OR_RETURN(int v, in);
  return v * 2;
}

TEST(Result, AssignOrReturnMacro) {
  EXPECT_EQ(Doubler(21).value(), 42);
  EXPECT_FALSE(Doubler(Status::Internal("x")).ok());
}

TEST(Random, Deterministic) {
  Random a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(Random, DifferentSeedsDiffer) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Random, BoundedIsInRange) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextUint64(10), 10u);
  }
}

TEST(Random, BoundedIsRoughlyUniform) {
  Random rng(11);
  std::vector<int> counts(8, 0);
  const int kTrials = 80000;
  for (int i = 0; i < kTrials; ++i) ++counts[rng.NextUint64(8)];
  for (int c : counts) {
    EXPECT_NEAR(c, kTrials / 8, kTrials / 8 * 0.1);
  }
}

TEST(Random, DoubleInUnitInterval) {
  Random rng(13);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Random, GeometricSkipMeanMatchesRate) {
  // Bernoulli(p) sampling via geometric skips: the expected gap between
  // samples is 1/p, so skip mean should be 1/p - 1.
  Random rng(17);
  const double p = 0.01;
  const int kTrials = 20000;
  double total = 0;
  for (int i = 0; i < kTrials; ++i) {
    total += static_cast<double>(rng.NextGeometricSkip(p));
  }
  double mean = total / kTrials;
  EXPECT_NEAR(mean, 1.0 / p - 1.0, 5.0);
}

TEST(Random, GeometricSkipEdgeRates) {
  Random rng(19);
  EXPECT_EQ(rng.NextGeometricSkip(1.0), 0u);
  EXPECT_EQ(rng.NextGeometricSkip(1.5), 0u);
  EXPECT_EQ(rng.NextGeometricSkip(0.0), ~0ULL);
}

TEST(Random, MixSeedSpreads) {
  std::set<uint64_t> seen;
  for (uint64_t i = 0; i < 1000; ++i) seen.insert(MixSeed(42, i));
  EXPECT_EQ(seen.size(), 1000u);
}

TEST(Random, HashBytesStable) {
  std::string s = "hello world";
  EXPECT_EQ(HashBytes(s.data(), s.size()), HashBytes(s.data(), s.size()));
  EXPECT_NE(HashBytes(s.data(), s.size()), HashBytes(s.data(), s.size(), 1));
}

TEST(Serialize, RoundTripScalars) {
  ByteWriter w;
  w.WriteU8(200);
  w.WriteU32(123456);
  w.WriteU64(1ULL << 40);
  w.WriteI32(-7);
  w.WriteI64(-(1LL << 40));
  w.WriteDouble(3.25);
  w.WriteBool(true);
  w.WriteString("spreadsheet");

  ByteReader r(w.bytes());
  uint8_t u8;
  uint32_t u32;
  uint64_t u64;
  int32_t i32;
  int64_t i64;
  double d;
  bool b;
  std::string s;
  ASSERT_TRUE(r.ReadU8(&u8).ok());
  ASSERT_TRUE(r.ReadU32(&u32).ok());
  ASSERT_TRUE(r.ReadU64(&u64).ok());
  ASSERT_TRUE(r.ReadI32(&i32).ok());
  ASSERT_TRUE(r.ReadI64(&i64).ok());
  ASSERT_TRUE(r.ReadDouble(&d).ok());
  ASSERT_TRUE(r.ReadBool(&b).ok());
  ASSERT_TRUE(r.ReadString(&s).ok());
  EXPECT_EQ(u8, 200);
  EXPECT_EQ(u32, 123456u);
  EXPECT_EQ(u64, 1ULL << 40);
  EXPECT_EQ(i32, -7);
  EXPECT_EQ(i64, -(1LL << 40));
  EXPECT_EQ(d, 3.25);
  EXPECT_TRUE(b);
  EXPECT_EQ(s, "spreadsheet");
  EXPECT_TRUE(r.AtEnd());
}

TEST(Serialize, RoundTripPodVector) {
  ByteWriter w;
  std::vector<int64_t> v = {1, -2, 3000000000LL};
  w.WritePodVector(v);
  ByteReader r(w.bytes());
  std::vector<int64_t> out;
  ASSERT_TRUE(r.ReadPodVector(&out).ok());
  EXPECT_EQ(out, v);
}

TEST(Serialize, TruncationDetected) {
  ByteWriter w;
  w.WriteU64(99);
  ByteReader r(w.bytes().data(), 3);  // cut short
  uint64_t v;
  EXPECT_EQ(r.ReadU64(&v).code(), StatusCode::kOutOfRange);
}

TEST(Serialize, TruncatedStringDetected) {
  ByteWriter w;
  w.WriteString("abcdef");
  ByteReader r(w.bytes().data(), 6);
  std::string s;
  EXPECT_FALSE(r.ReadString(&s).ok());
}

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
  pool.Submit([&count] { count.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, ParallelismIsReal) {
  // Two tasks that each wait for the other can only finish with >= 2
  // threads actually running concurrently.
  ThreadPool pool(2);
  std::atomic<int> arrived{0};
  auto rendezvous = [&arrived] {
    arrived.fetch_add(1);
    while (arrived.load() < 2) std::this_thread::yield();
  };
  pool.Submit(rendezvous);
  pool.Submit(rendezvous);
  pool.Wait();
  EXPECT_EQ(arrived.load(), 2);
}

TEST(ThreadPool, HighPriorityJumpsQueue) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::mutex m;
  // Block the single worker so subsequent submissions queue up.
  std::atomic<bool> release{false};
  pool.Submit([&release] {
    while (!release.load()) std::this_thread::yield();
  });
  pool.Submit([&] {
    std::lock_guard<std::mutex> lock(m);
    order.push_back(1);
  });
  pool.SubmitHighPriority([&] {
    std::lock_guard<std::mutex> lock(m);
    order.push_back(2);
  });
  release.store(true);
  pool.Wait();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 2);  // high priority ran first
  EXPECT_EQ(order[1], 1);
}

TEST(ThreadPool, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  pool.Submit([] {});
  pool.Shutdown();
  pool.Shutdown();
}

}  // namespace
}  // namespace hillview
