#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <numeric>

#include "sketch/histogram.h"
#include "sketch/histogram2d.h"
#include "sketch/sample_size.h"
#include "test_util.h"
#include "util/serialize.h"

namespace hillview {
namespace {

using testing::MakeDoubleTable;
using testing::MakeStringTable;
using testing::SplitValues;
using testing::UniformDoubles;

TEST(StreamingHistogram, ExactCounts) {
  TablePtr t = MakeDoubleTable("x", {0.5, 1.5, 1.6, 2.5, 3.9, 4.0});
  StreamingHistogramSketch sketch("x", Buckets(NumericBuckets(0, 4, 4)));
  HistogramResult r = sketch.Summarize(*t, 0);
  ASSERT_EQ(r.counts.size(), 4u);
  EXPECT_EQ(r.counts[0], 1);  // 0.5
  EXPECT_EQ(r.counts[1], 2);  // 1.5, 1.6
  EXPECT_EQ(r.counts[2], 1);  // 2.5
  EXPECT_EQ(r.counts[3], 2);  // 3.9 and 4.0 (max lands in last bucket)
  EXPECT_EQ(r.missing, 0);
  EXPECT_EQ(r.out_of_range, 0);
}

TEST(StreamingHistogram, MissingAndOutOfRange) {
  ColumnBuilder b(DataKind::kDouble);
  b.AppendDouble(-1.0);   // below range
  b.AppendDouble(10.0);   // above range
  b.AppendMissing();
  b.AppendDouble(0.5);
  TablePtr t =
      Table::Create(Schema({{"x", DataKind::kDouble}}), {b.Finish()});
  StreamingHistogramSketch sketch("x", Buckets(NumericBuckets(0, 1, 2)));
  HistogramResult r = sketch.Summarize(*t, 0);
  EXPECT_EQ(r.missing, 1);
  EXPECT_EQ(r.out_of_range, 2);
  EXPECT_EQ(r.TotalCount(), 1);
}

// Regression: NaN used to drive an unchecked static_cast<int> bucket index
// (out-of-bounds write); the scan layer now counts NaN as missing, and ±inf
// as out-of-range, for streaming and sampled histograms alike.
TEST(StreamingHistogram, NaNCountsAsMissingInfAsOutOfRange) {
  ColumnBuilder b(DataKind::kDouble);
  b.AppendDouble(std::nan(""));
  b.AppendDouble(std::numeric_limits<double>::quiet_NaN());
  b.AppendDouble(std::numeric_limits<double>::infinity());
  b.AppendDouble(-std::numeric_limits<double>::infinity());
  b.AppendDouble(0.5);
  b.AppendMissing();
  TablePtr t = Table::Create(Schema({{"x", DataKind::kDouble}}), {b.Finish()});
  StreamingHistogramSketch sketch("x", Buckets(NumericBuckets(0, 1, 4)));
  HistogramResult r = sketch.Summarize(*t, 0);
  EXPECT_EQ(r.missing, 3);       // two NaNs + one explicit missing
  EXPECT_EQ(r.out_of_range, 2);  // ±inf
  EXPECT_EQ(r.TotalCount(), 1);
  EXPECT_EQ(r.rows_scanned, 6);
}

TEST(SampledHistogram, NaNCountsAsMissing) {
  // Every row is NaN except a single in-range value: at rate ~1 the sampled
  // path must visit NaNs without writing out of bounds.
  ColumnBuilder b(DataKind::kDouble);
  for (int i = 0; i < 1000; ++i) b.AppendDouble(std::nan(""));
  b.AppendDouble(0.25);
  TablePtr t = Table::Create(Schema({{"x", DataKind::kDouble}}), {b.Finish()});
  SampledHistogramSketch sketch("x", Buckets(NumericBuckets(0, 1, 8)), 0.9);
  HistogramResult r = sketch.Summarize(*t, 3);
  EXPECT_EQ(r.out_of_range, 0);
  EXPECT_GT(r.missing, 700);
  EXPECT_EQ(r.TotalCount() + r.missing, r.rows_scanned);
}

TEST(StreamingHistogram, NaNCountsAsMissingOnFilteredTables) {
  // Dense- and sparse-membership scans share the central NaN policy.
  ColumnBuilder b(DataKind::kDouble);
  for (int i = 0; i < 256; ++i) {
    b.AppendDouble(i % 5 == 0 ? std::nan("") : 0.5);
  }
  TablePtr t = Table::Create(Schema({{"x", DataKind::kDouble}}), {b.Finish()});
  StreamingHistogramSketch sketch("x", Buckets(NumericBuckets(0, 1, 4)));

  TablePtr dense = t->Filter([](uint32_t r) { return r % 2 == 0; });
  ASSERT_EQ(dense->members()->kind(), IMembershipSet::Kind::kDense);
  HistogramResult rd = sketch.Summarize(*dense, 0);
  EXPECT_EQ(rd.missing, 26);  // rows ≡ 0 (mod 10): 0,10,...,250
  EXPECT_EQ(rd.TotalCount(), 102);

  TablePtr sparse = t->Filter([](uint32_t r) { return r % 37 == 0; });
  ASSERT_EQ(sparse->members()->kind(), IMembershipSet::Kind::kSparse);
  HistogramResult rs = sketch.Summarize(*sparse, 0);
  EXPECT_EQ(rs.missing, 2);  // rows 0 and 185 are NaN
  EXPECT_EQ(rs.TotalCount(), 5);
}

TEST(StreamingHistogram, UnknownColumnYieldsZeroCounts) {
  TablePtr t = MakeDoubleTable("x", {1.0});
  StreamingHistogramSketch sketch("nope", Buckets(NumericBuckets(0, 1, 2)));
  HistogramResult r = sketch.Summarize(*t, 0);
  EXPECT_EQ(r.TotalCount(), 0);
}

TEST(StreamingHistogram, RespectsFilteredMembership) {
  TablePtr t = MakeDoubleTable("x", {0.1, 0.2, 0.3, 0.4, 0.5});
  TablePtr f = t->Filter([](uint32_t r) { return r % 2 == 0; });
  StreamingHistogramSketch sketch("x", Buckets(NumericBuckets(0, 1, 1)));
  EXPECT_EQ(sketch.Summarize(*f, 0).TotalCount(), 3);
}

TEST(StreamingHistogram, StringBuckets) {
  TablePtr t = MakeStringTable(
      "s", {"apple", "banana", "cherry", "avocado", "fig", "grape"});
  StringBuckets buckets({"a", "c", "f"});  // [a,c) [c,f) [f,∞)
  StreamingHistogramSketch sketch("s", Buckets(buckets));
  HistogramResult r = sketch.Summarize(*t, 0);
  ASSERT_EQ(r.counts.size(), 3u);
  EXPECT_EQ(r.counts[0], 3);  // apple, avocado, banana
  EXPECT_EQ(r.counts[1], 1);  // cherry
  EXPECT_EQ(r.counts[2], 2);  // fig, grape
}

// --- Mergeability: summarize(D1 ⊎ D2) == merge(summarize(D1), summarize(D2))

class HistogramMergeTest : public ::testing::TestWithParam<int> {};

TEST_P(HistogramMergeTest, StreamingMergeMatchesWholeDataset) {
  int parts = GetParam();
  auto values = UniformDoubles(5000, 0, 100, /*seed=*/99);
  StreamingHistogramSketch sketch("x", Buckets(NumericBuckets(0, 100, 37)));

  HistogramResult whole = sketch.Summarize(*MakeDoubleTable("x", values), 0);
  HistogramResult merged = sketch.Zero();
  for (const auto& chunk : SplitValues(values, parts)) {
    merged = sketch.Merge(merged, sketch.Summarize(*MakeDoubleTable("x", chunk), 0));
  }
  EXPECT_EQ(whole.counts, merged.counts);
  EXPECT_EQ(whole.TotalCount(), merged.TotalCount());
}

INSTANTIATE_TEST_SUITE_P(PartitionCounts, HistogramMergeTest,
                         ::testing::Values(1, 2, 3, 7, 16, 64));

TEST(HistogramMerge, ZeroIsIdentityBothSides) {
  auto values = UniformDoubles(100, 0, 1, 5);
  StreamingHistogramSketch sketch("x", Buckets(NumericBuckets(0, 1, 10)));
  HistogramResult r = sketch.Summarize(*MakeDoubleTable("x", values), 0);
  EXPECT_EQ(sketch.Merge(sketch.Zero(), r).counts, r.counts);
  EXPECT_EQ(sketch.Merge(r, sketch.Zero()).counts, r.counts);
}

TEST(HistogramMerge, Associative) {
  auto values = UniformDoubles(3000, 0, 10, 6);
  auto chunks = SplitValues(values, 3);
  StreamingHistogramSketch sketch("x", Buckets(NumericBuckets(0, 10, 8)));
  auto s0 = sketch.Summarize(*MakeDoubleTable("x", chunks[0]), 0);
  auto s1 = sketch.Summarize(*MakeDoubleTable("x", chunks[1]), 0);
  auto s2 = sketch.Summarize(*MakeDoubleTable("x", chunks[2]), 0);
  auto left = sketch.Merge(sketch.Merge(s0, s1), s2);
  auto right = sketch.Merge(s0, sketch.Merge(s1, s2));
  EXPECT_EQ(left.counts, right.counts);
}

// --- Sampled histogram ------------------------------------------------------

TEST(SampledHistogram, RespectsSampleRate) {
  auto values = UniformDoubles(100000, 0, 1, 7);
  SampledHistogramSketch sketch("x", Buckets(NumericBuckets(0, 1, 10)), 0.05);
  HistogramResult r = sketch.Summarize(*MakeDoubleTable("x", values), 1);
  EXPECT_NEAR(r.TotalCount(), 5000, 500);
  EXPECT_EQ(r.sample_rate, 0.05);
}

TEST(SampledHistogram, DeterministicInSeed) {
  auto values = UniformDoubles(20000, 0, 1, 8);
  TablePtr t = MakeDoubleTable("x", values);
  SampledHistogramSketch sketch("x", Buckets(NumericBuckets(0, 1, 16)), 0.1);
  EXPECT_EQ(sketch.Summarize(*t, 5).counts, sketch.Summarize(*t, 5).counts);
  EXPECT_NE(sketch.Summarize(*t, 5).counts, sketch.Summarize(*t, 6).counts);
}

TEST(SampledHistogram, EstimatesMatchExactWithinTheoremBound) {
  // Theorem 3 shape check: with n = HistogramSampleSize(V, B) samples the
  // per-bucket estimate is within a pixel's worth of the truth.
  const int kV = 200, kB = 25;
  auto values = UniformDoubles(400000, 0, 1, 9);
  TablePtr t = MakeDoubleTable("x", values);
  Buckets buckets(NumericBuckets(0, 1, kB));

  StreamingHistogramSketch exact("x", buckets);
  HistogramResult truth = exact.Summarize(*t, 0);

  uint64_t n = HistogramSampleSize(kV, kB);
  double rate = SampleRateForSize(n, values.size());
  SampledHistogramSketch sampled("x", buckets, rate);
  HistogramResult approx = sampled.Summarize(*t, 12345);

  double max_count = 0;
  for (int b = 0; b < kB; ++b) {
    max_count = std::max(max_count, truth.EstimatedCount(b));
  }
  // 1 pixel of the tallest bar at V pixels.
  double pixel = max_count / kV;
  for (int b = 0; b < kB; ++b) {
    EXPECT_NEAR(approx.EstimatedCount(b), truth.EstimatedCount(b),
                2.5 * pixel)
        << "bucket " << b;
  }
}

TEST(SampledHistogram, RateOneEqualsStreaming) {
  auto values = UniformDoubles(5000, 0, 1, 10);
  TablePtr t = MakeDoubleTable("x", values);
  Buckets buckets(NumericBuckets(0, 1, 13));
  SampledHistogramSketch sampled("x", buckets, 1.0);
  StreamingHistogramSketch streaming("x", buckets);
  EXPECT_EQ(sampled.Summarize(*t, 3).counts, streaming.Summarize(*t, 0).counts);
}

TEST(HistogramResult, SerializationRoundTrip) {
  auto values = UniformDoubles(1000, 0, 1, 11);
  StreamingHistogramSketch sketch("x", Buckets(NumericBuckets(0, 1, 9)));
  HistogramResult r = sketch.Summarize(*MakeDoubleTable("x", values), 0);
  r.missing = 3;
  ByteWriter w;
  r.Serialize(&w);
  ByteReader reader(w.bytes());
  HistogramResult back;
  ASSERT_TRUE(HistogramResult::Deserialize(&reader, &back).ok());
  EXPECT_EQ(back.counts, r.counts);
  EXPECT_EQ(back.missing, 3);
  EXPECT_EQ(back.sample_rate, r.sample_rate);
}

TEST(HistogramResult, SummarySizeIndependentOfData) {
  // The vizketch promise: summary size depends on the display, not on n.
  StreamingHistogramSketch sketch("x", Buckets(NumericBuckets(0, 1, 50)));
  for (size_t n : {100u, 10000u, 100000u}) {
    auto values = UniformDoubles(n, 0, 1, n);
    HistogramResult r = sketch.Summarize(*MakeDoubleTable("x", values), 0);
    ByteWriter w;
    r.Serialize(&w);
    EXPECT_EQ(w.size(), 50 * 8 + 4 + 3 * 8 + 8);  // counts + header fields
  }
}

// --- NumericBuckets edge cases ----------------------------------------------

TEST(NumericBuckets, BoundaryAssignment) {
  NumericBuckets b(0, 10, 5);
  EXPECT_EQ(b.IndexOf(0), 0);
  EXPECT_EQ(b.IndexOf(1.999), 0);
  EXPECT_EQ(b.IndexOf(2.0), 1);
  EXPECT_EQ(b.IndexOf(10.0), 4);   // max is inclusive in the last bucket
  EXPECT_EQ(b.IndexOf(10.001), -1);
  EXPECT_EQ(b.IndexOf(-0.001), -1);
}

TEST(NumericBuckets, Boundaries) {
  NumericBuckets b(10, 20, 4);
  EXPECT_DOUBLE_EQ(b.LowBoundary(0), 10);
  EXPECT_DOUBLE_EQ(b.HighBoundary(3), 20);
  EXPECT_DOUBLE_EQ(b.LowBoundary(2), 15);
}

TEST(StringBucketsTest, IndexOf) {
  StringBuckets b({"a", "h", "q"});
  EXPECT_EQ(b.IndexOf("apple"), 0);
  EXPECT_EQ(b.IndexOf("hat"), 1);
  EXPECT_EQ(b.IndexOf("zebra"), 2);
  EXPECT_EQ(b.IndexOf("A"), -1);  // before the first boundary
}

TEST(StringBucketsTest, MaxInclusiveCapsRange) {
  StringBuckets b({"a", "h"}, "mango", true);
  EXPECT_EQ(b.IndexOf("mango"), 1);
  EXPECT_EQ(b.IndexOf("n"), -1);
}

}  // namespace
}  // namespace hillview
