// Chaos suite: drives seeded fault plans (drops, corruption, duplication,
// worker mutes) through the simulated cluster and checks the end-to-end
// robustness contract — every query either heals to a byte-identical result
// or completes degraded with a coverage fraction exactly matching the
// surviving partition set. Labeled `chaos` (not tier1) so the chaos CI lane
// can crank iteration counts via HILLVIEW_CHAOS_ITERS while default builds
// stay fast.
//
// Determinism discipline: workers run with progressive=false aggregation, so
// exactly one summary crosses the wire per worker per attempt and the
// per-channel message counts — hence the counter-indexed fault schedule —
// are reproducible. No test sleeps or reads the wall clock; dropped and late
// messages settle through the simulation's own deadline machinery.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "cluster/fault_injection.h"
#include "cluster/root.h"
#include "cluster/worker_health.h"
#include "sketch/histogram.h"
#include "sketch/range_moments.h"
#include "test_util.h"

namespace hillview {
namespace {

using cluster::Direction;
using cluster::FaultAction;
using cluster::FaultInjector;
using cluster::FaultPlan;
using cluster::FaultVerdict;
using cluster::RootSession;
using cluster::ScriptedFault;
using cluster::WorkerHealth;
using testing::MakeDoubleTable;
using testing::SplitValues;
using testing::TestCluster;
using testing::UniformDoubles;

/// Iteration multiplier: 1 by default (fast local runs), raised by the chaos
/// CI lane (HILLVIEW_CHAOS_ITERS) to sweep more seeded schedules.
int ChaosIters() {
  const char* env = std::getenv("HILLVIEW_CHAOS_ITERS");
  if (env == nullptr) return 1;
  int iters = std::atoi(env);
  return iters < 1 ? 1 : iters;
}

constexpr int kWorkers = 4;
constexpr int kPartitions = 8;

/// Root options for chaos runs: deadlines on (so lost messages become
/// kDeadlineExceeded), zero backoff (faults settle through the simulation,
/// not the wall clock), generous per-RPC retry budget.
RootSession::Options ChaosOptions() {
  RootSession::Options options;
  options.aggregation.aggregation_window_ms = 0;
  options.rpc.deadline_ms = 5000;
  options.rpc.max_retries = 8;
  options.rpc.backoff_base_ms = 0.0;
  options.rpc.backoff_cap_ms = 0.0;
  return options;
}

/// A chaos cluster: kWorkers workers over `partitions`, workers aggregating
/// with progressive=false (one up-message per worker per attempt — the
/// deterministic-message-count configuration).
std::unique_ptr<TestCluster> MakeChaosCluster(
    const std::vector<TablePtr>& partitions,
    RootSession::Options options = ChaosOptions()) {
  ParallelDataSet::Options worker_aggregation;
  worker_aggregation.progressive = false;
  return TestCluster::Create(partitions, kWorkers, /*threads_per_worker=*/2,
                             options, worker_aggregation);
}

/// The fixed chaos dataset: kPartitions partitions of uniform doubles.
/// Partition p lives on worker p % kWorkers (the root's round-robin).
std::vector<TablePtr> ChaosPartitions(std::vector<double>* all_values) {
  auto values = UniformDoubles(16000, 0, 100, 4242);
  if (all_values != nullptr) *all_values = values;
  std::vector<TablePtr> partitions;
  for (const auto& chunk : SplitValues(values, kPartitions)) {
    partitions.push_back(MakeDoubleTable("x", chunk));
  }
  return partitions;
}

SketchPtr<HistogramResult> ChaosSketch() {
  return std::make_shared<StreamingHistogramSketch>(
      "x", Buckets(NumericBuckets(0, 100, 32)));
}

/// Serialized bytes of a histogram summary — the "byte-identical" oracle.
std::vector<uint8_t> SummaryBytes(const HistogramResult& r) {
  return AnySketch::Wrap<HistogramResult>(ChaosSketch())
      .Serialize(AnySummary::Wrap<HistogramResult>(r));
}

/// The fault-free reference: a single-machine summarize over `values`
/// (histogram merge is additive, so this equals any merge order).
HistogramResult Reference(const std::vector<double>& values) {
  return ChaosSketch()->Summarize(*MakeDoubleTable("x", values), 0);
}

/// Values surviving the loss of `dead_worker` (partitions p % kWorkers ==
/// dead_worker removed), in partition round-robin layout.
std::vector<double> SurvivingValues(const std::vector<double>& all,
                                    int dead_worker) {
  auto chunks = SplitValues(all, kPartitions);
  std::vector<double> out;
  for (int p = 0; p < kPartitions; ++p) {
    if (p % kWorkers == dead_worker) continue;
    out.insert(out.end(), chunks[p].begin(), chunks[p].end());
  }
  return out;
}

// Two injectors built from the same plan must return the very same verdict
// sequence per channel, regardless of how the channels interleave — the
// verdict is a pure function of (seed, worker, direction, channel index).
TEST(Chaos, FaultPlanVerdictsAreDeterministic) {
  FaultPlan plan;
  plan.seed = 99;
  plan.up.drop = 0.3;
  plan.up.corrupt = 0.2;
  plan.up.duplicate = 0.2;
  plan.up.latency_spike = 0.25;
  plan.up.latency_spike_ms = 3.0;
  plan.down.drop = 0.15;
  plan.schedule.push_back(ScriptedFault::DropNth(1, Direction::kUp, 2));

  FaultInjector a(plan);
  FaultInjector b(plan);
  // `a` judges worker-major, `b` index-major: per-channel sequences must
  // still agree element-for-element.
  std::vector<std::vector<FaultVerdict>> verdicts_a(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    for (int i = 0; i < 32; ++i) {
      verdicts_a[w].push_back(a.Judge(w, Direction::kUp));
    }
  }
  for (int i = 0; i < 32; ++i) {
    for (int w = 0; w < kWorkers; ++w) {
      const FaultVerdict got = b.Judge(w, Direction::kUp);
      const FaultVerdict want = verdicts_a[w][static_cast<size_t>(i)];
      EXPECT_EQ(static_cast<int>(got.action), static_cast<int>(want.action))
          << "worker " << w << " index " << i;
      EXPECT_EQ(got.extra_latency_ms, want.extra_latency_ms);
      EXPECT_EQ(got.corrupt_seed, want.corrupt_seed);
    }
  }
  EXPECT_EQ(a.ChannelCount(0, Direction::kUp), 32u);
  EXPECT_EQ(a.ChannelCount(0, Direction::kDown), 0u);
  EXPECT_EQ(a.Snapshot().judged, b.Snapshot().judged);
  EXPECT_EQ(a.Snapshot().dropped, b.Snapshot().dropped);
  EXPECT_EQ(a.Snapshot().corrupted, b.Snapshot().corrupted);
  EXPECT_EQ(a.Snapshot().duplicated, b.Snapshot().duplicated);
  EXPECT_EQ(a.Snapshot().latency_spikes, b.Snapshot().latency_spikes);
  EXPECT_GE(a.Snapshot().scripted_hits, 1u);
}

// Dropping the first summary coming up from one worker forces exactly one
// per-RPC retry; the retried sketch is pure, so the query result is
// byte-identical to the fault-free run and the query level sees no fault.
TEST(Chaos, ScriptedDropOfNthUpMessageHealsViaRpcRetry) {
  std::vector<double> all_values;
  auto tc = MakeChaosCluster(ChaosPartitions(&all_values));
  ASSERT_NE(tc, nullptr);
  FaultPlan plan;
  plan.schedule.push_back(ScriptedFault::DropNth(1, Direction::kUp, 0));
  auto injector = std::make_shared<FaultInjector>(plan);
  tc->network.InstallFaultInjector(injector);

  RootSession::QueryStats stats;
  auto result = tc->root->RunSketch<HistogramResult>(
      "data", ChaosSketch(), /*seed=*/0, /*cacheable=*/false, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(SummaryBytes(result.value()), SummaryBytes(Reference(all_values)));
  EXPECT_EQ(stats.coverage, 1.0);
  EXPECT_FALSE(stats.degraded);
  // Healed below the query level: the RPC retried, the query did not.
  EXPECT_EQ(stats.transport_retries, 0);
  EXPECT_EQ(stats.replay_heals, 0);
  EXPECT_EQ(injector->Snapshot().dropped, 1u);
  // The retry succeeded, so the worker's breaker recorded a success and
  // never tripped.
  EXPECT_EQ(tc->root->health().Snapshot().trips, 0);
  EXPECT_EQ(tc->root->health().state(1), WorkerHealth::State::kClosed);
}

// A dropped request (down direction) settles through the simulation — the
// worker stays silent, the attempt completes kDeadlineExceeded immediately,
// and the retry delivers. No wall-clock deadline wait is involved.
TEST(Chaos, ScriptedDropOfRequestHealsViaRpcRetry) {
  std::vector<double> all_values;
  auto tc = MakeChaosCluster(ChaosPartitions(&all_values));
  ASSERT_NE(tc, nullptr);
  FaultPlan plan;
  plan.schedule.push_back(ScriptedFault::DropNth(2, Direction::kDown, 0));
  auto injector = std::make_shared<FaultInjector>(plan);
  tc->network.InstallFaultInjector(injector);

  auto result = tc->root->RunSketch<HistogramResult>("data", ChaosSketch());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(SummaryBytes(result.value()), SummaryBytes(Reference(all_values)));
  EXPECT_EQ(injector->Snapshot().dropped, 1u);
}

// A corrupted summary frame fails its checksum at the machine boundary: it
// is dropped there, counted on the worker, and the silence heals as a
// deadline miss — the query still returns the exact fault-free bytes.
TEST(Chaos, CorruptedSummaryIsDroppedCountedAndHealed) {
  std::vector<double> all_values;
  auto tc = MakeChaosCluster(ChaosPartitions(&all_values));
  ASSERT_NE(tc, nullptr);
  FaultPlan plan;
  plan.schedule.push_back(ScriptedFault::CorruptNth(1, Direction::kUp, 0));
  auto injector = std::make_shared<FaultInjector>(plan);
  tc->network.InstallFaultInjector(injector);

  EXPECT_EQ(tc->workers[1]->corrupt_messages_dropped(), 0);
  auto result = tc->root->RunSketch<HistogramResult>("data", ChaosSketch());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(SummaryBytes(result.value()), SummaryBytes(Reference(all_values)));
  EXPECT_EQ(injector->Snapshot().corrupted, 1u);
  EXPECT_EQ(tc->workers[1]->corrupt_messages_dropped(), 1);
  EXPECT_EQ(tc->workers[0]->corrupt_messages_dropped(), 0);
}

// Duplicate delivery is harmless by construction: the merger's per-child
// update is replacement, not addition, so a duplicated summary cannot be
// double-counted.
TEST(Chaos, DuplicatedSummaryMergesIdempotently) {
  std::vector<double> all_values;
  auto tc = MakeChaosCluster(ChaosPartitions(&all_values));
  ASSERT_NE(tc, nullptr);
  FaultPlan plan;
  plan.schedule.push_back(ScriptedFault{/*worker=*/3, Direction::kUp,
                                        /*begin=*/0, /*end=*/1,
                                        FaultAction::kDuplicate});
  auto injector = std::make_shared<FaultInjector>(plan);
  tc->network.InstallFaultInjector(injector);

  auto result = tc->root->RunSketch<HistogramResult>("data", ChaosSketch());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(SummaryBytes(result.value()), SummaryBytes(Reference(all_values)));
  EXPECT_EQ(injector->Snapshot().duplicated, 1u);
}

// A worker muted forever exhausts the per-RPC and query-level retry budgets,
// trips its circuit breaker, and the query completes degraded: the merge
// covers exactly the surviving partitions (6 of 8 → coverage 0.75, exact in
// floating point), the summary equals the survivors-only reference, and the
// degraded result is never admitted to the computation cache.
TEST(Chaos, MutedWorkerDegradesWithExactCoverageAndIsNeverCached) {
  constexpr int kDead = 2;
  std::vector<double> all_values;
  auto tc = MakeChaosCluster(ChaosPartitions(&all_values));
  ASSERT_NE(tc, nullptr);
  FaultPlan plan;
  plan.schedule.push_back(ScriptedFault::Mute(kDead, Direction::kUp, 0,
                                              ScriptedFault::kForever));
  tc->network.InstallFaultInjector(std::make_shared<FaultInjector>(plan));

  RootSession::QueryStats stats;
  auto degraded = tc->root->RunSketch<HistogramResult>(
      "data", ChaosSketch(), /*seed=*/0, /*cacheable=*/true, &stats);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_TRUE(stats.degraded);
  EXPECT_EQ(stats.coverage, 6.0 / 8.0);
  EXPECT_EQ(SummaryBytes(degraded.value()),
            SummaryBytes(Reference(SurvivingValues(all_values, kDead))));
  EXPECT_GE(tc->root->health().Snapshot().trips, 1);
  EXPECT_NE(tc->root->health().state(kDead), WorkerHealth::State::kClosed);
  // Degraded results are never cached: the cache stays empty and a repeat of
  // the same cacheable query recomputes (degraded again) instead of hitting.
  EXPECT_EQ(tc->root->cache().Snapshot().entries, 0u);
  RootSession::QueryStats again;
  auto repeat = tc->root->RunSketch<HistogramResult>(
      "data", ChaosSketch(), /*seed=*/0, /*cacheable=*/true, &again);
  ASSERT_TRUE(repeat.ok());
  EXPECT_FALSE(again.from_cache);
  EXPECT_TRUE(again.degraded);
  EXPECT_EQ(tc->root->cache().Snapshot().hits, 0);

  // Once the fault clears and the breaker closes (probed below in its own
  // test), a full-coverage repeat is allowed back into the cache — proving
  // no stale degraded entry ever shadowed it.
  tc->network.InstallFaultInjector(nullptr);
  RootSession::QueryStats healed_stats;
  Result<HistogramResult> healed = Status::OK();
  for (int i = 0; i < 4; ++i) {
    healed = tc->root->RunSketch<HistogramResult>(
        "data", ChaosSketch(), /*seed=*/0, /*cacheable=*/true, &healed_stats);
    ASSERT_TRUE(healed.ok());
    if (!healed_stats.degraded) break;  // breaker may fast-fail before probing
  }
  EXPECT_FALSE(healed_stats.degraded);
  EXPECT_EQ(healed_stats.coverage, 1.0);
  EXPECT_EQ(SummaryBytes(healed.value()), SummaryBytes(Reference(all_values)));
  EXPECT_EQ(tc->root->cache().Snapshot().entries, 1u);
}

// Recovery choreography, step by step: while the breaker is open the worker
// fast-fails (degraded coverage even though the network healed), then the
// half-open probe admits one RPC whose success closes the breaker and
// restores full coverage.
TEST(Chaos, RecoveredWorkerClosesBreakerViaHalfOpenProbe) {
  constexpr int kDead = 1;
  std::vector<double> all_values;
  RootSession::Options options = ChaosOptions();
  options.health.open_uses_before_probe = 3;
  auto tc = MakeChaosCluster(ChaosPartitions(&all_values), options);
  ASSERT_NE(tc, nullptr);
  FaultPlan plan;
  plan.schedule.push_back(ScriptedFault::Mute(kDead, Direction::kUp, 0,
                                              ScriptedFault::kForever));
  tc->network.InstallFaultInjector(std::make_shared<FaultInjector>(plan));

  // Query 1 (network faulty): trips the breaker, completes degraded. Its
  // final degraded pass consumed one open-use of the breaker.
  RootSession::QueryStats stats;
  auto q1 = tc->root->RunSketch<HistogramResult>(
      "data", ChaosSketch(), /*seed=*/0, /*cacheable=*/false, &stats);
  ASSERT_TRUE(q1.ok()) << q1.status().ToString();
  EXPECT_TRUE(stats.degraded);
  EXPECT_EQ(tc->root->health().Snapshot().trips, 1);
  EXPECT_EQ(tc->root->health().state(kDead), WorkerHealth::State::kOpen);

  // The fault clears — but the breaker remembers.
  tc->network.InstallFaultInjector(nullptr);

  // Query 2: still inside the open-use window, the worker fast-fails without
  // any RPC; the query stays degraded at the same exact coverage.
  auto q2 = tc->root->RunSketch<HistogramResult>(
      "data", ChaosSketch(), /*seed=*/0, /*cacheable=*/false, &stats);
  ASSERT_TRUE(q2.ok());
  EXPECT_TRUE(stats.degraded);
  EXPECT_EQ(stats.coverage, 6.0 / 8.0);
  EXPECT_EQ(SummaryBytes(q2.value()),
            SummaryBytes(Reference(SurvivingValues(all_values, kDead))));

  // Query 3: the open-use budget is spent, so the breaker goes half-open and
  // admits one probe RPC; it succeeds, the breaker closes, coverage is full
  // and the bytes match the fault-free reference.
  auto q3 = tc->root->RunSketch<HistogramResult>(
      "data", ChaosSketch(), /*seed=*/0, /*cacheable=*/false, &stats);
  ASSERT_TRUE(q3.ok());
  EXPECT_FALSE(stats.degraded);
  EXPECT_EQ(stats.coverage, 1.0);
  EXPECT_EQ(SummaryBytes(q3.value()), SummaryBytes(Reference(all_values)));
  EXPECT_EQ(tc->root->health().state(kDead), WorkerHealth::State::kClosed);
  EXPECT_EQ(tc->root->health().Snapshot().probes, 1);
  EXPECT_GE(tc->root->health().Snapshot().fast_fails, 2);
}

// The breaker state machine in isolation: closed → (threshold failures) →
// open → (open-use budget) → half-open → probe outcome decides.
TEST(Chaos, BreakerStateMachineTripsProbesAndRecovers) {
  WorkerHealth::Options options;
  options.failure_threshold = 2;
  options.open_uses_before_probe = 2;
  WorkerHealth health(/*num_workers=*/2, options);

  EXPECT_TRUE(health.AllowRequest(0));
  health.RecordFailure(0);
  EXPECT_TRUE(health.AllowRequest(0));
  health.RecordFailure(0);  // second consecutive failure: trips
  EXPECT_EQ(health.state(0), WorkerHealth::State::kOpen);
  EXPECT_EQ(health.Snapshot().trips, 1);
  EXPECT_TRUE(health.AnyOpen());
  EXPECT_EQ(health.num_open(), 1);

  // Open: fast-fail once, then the second use goes half-open as the probe.
  EXPECT_FALSE(health.AllowRequest(0));
  EXPECT_TRUE(health.AllowRequest(0));
  EXPECT_EQ(health.state(0), WorkerHealth::State::kHalfOpen);
  // While the probe is in flight everyone else fast-fails.
  EXPECT_FALSE(health.AllowRequest(0));

  // Probe fails: straight back to open, a fresh open-use window.
  health.RecordFailure(0);
  EXPECT_EQ(health.state(0), WorkerHealth::State::kOpen);
  EXPECT_FALSE(health.AllowRequest(0));
  EXPECT_TRUE(health.AllowRequest(0));  // next probe
  health.RecordSuccess(0);              // probe succeeds: closed
  EXPECT_EQ(health.state(0), WorkerHealth::State::kClosed);
  EXPECT_FALSE(health.AnyOpen());

  // The untouched worker never left closed.
  EXPECT_EQ(health.state(1), WorkerHealth::State::kClosed);
  EXPECT_EQ(health.Snapshot().probes, 2);

  health.Reset();
  EXPECT_EQ(health.Snapshot().trips, 0);
  EXPECT_EQ(health.Snapshot().probes, 0);
}

// The acceptance sweep: many seeded random fault schedules (probabilistic
// drops/corruption/duplication on both directions, sometimes one worker
// muted for good). Every query must either heal byte-identical to the
// fault-free reference, or — exactly when a worker was muted — complete
// degraded with coverage equal to the surviving partition fraction and the
// survivors-only bytes.
TEST(Chaos, RandomSchedulesHealOrDegradeExactly) {
  const int kSeeds = 50 * ChaosIters();
  std::vector<double> all_values;
  auto partitions = ChaosPartitions(&all_values);
  const std::vector<uint8_t> full_bytes = SummaryBytes(Reference(all_values));
  std::vector<std::vector<uint8_t>> survivor_bytes;
  for (int w = 0; w < kWorkers; ++w) {
    survivor_bytes.push_back(
        SummaryBytes(Reference(SurvivingValues(all_values, w))));
  }

  int muted_runs = 0;
  for (int seed = 0; seed < kSeeds; ++seed) {
    SCOPED_TRACE("chaos seed " + std::to_string(seed));
    Random rng(static_cast<uint64_t>(seed) * 7919 + 1);
    FaultPlan plan;
    plan.seed = static_cast<uint64_t>(seed);
    plan.up.drop = 0.20 * rng.NextDouble();
    plan.up.corrupt = 0.10 * rng.NextDouble();
    plan.up.duplicate = 0.20 * rng.NextDouble();
    plan.down.drop = 0.10 * rng.NextDouble();
    int victim = -1;
    if (rng.NextDouble() < 0.5) {
      victim = static_cast<int>(rng.NextUint64(kWorkers));
      plan.schedule.push_back(ScriptedFault::Mute(
          victim, Direction::kUp, 0, ScriptedFault::kForever));
      ++muted_runs;
    }

    auto tc = MakeChaosCluster(partitions);
    ASSERT_NE(tc, nullptr);
    tc->network.InstallFaultInjector(std::make_shared<FaultInjector>(plan));

    RootSession::QueryStats stats;
    auto result = tc->root->RunSketch<HistogramResult>(
        "data", ChaosSketch(), /*seed=*/0, /*cacheable=*/false, &stats);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    if (victim < 0) {
      EXPECT_FALSE(stats.degraded);
      EXPECT_EQ(stats.coverage, 1.0);
      EXPECT_EQ(SummaryBytes(result.value()), full_bytes);
    } else {
      EXPECT_TRUE(stats.degraded);
      EXPECT_EQ(stats.coverage, 6.0 / 8.0);
      EXPECT_EQ(SummaryBytes(result.value()),
                survivor_bytes[static_cast<size_t>(victim)]);
    }
  }
  // The 50/50 victim coin must have landed on both sides; otherwise the
  // sweep silently lost half its assertions.
  EXPECT_GT(muted_runs, 0);
  EXPECT_LT(muted_runs, kSeeds);
}

}  // namespace
}  // namespace hillview
