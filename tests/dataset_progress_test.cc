// Regression tests for RunTypedSketch progress forwarding: partial results
// whose summary is empty (progress-only ticks from an aggregation tree) must
// still reach typed subscribers, and the progress sequence observed by a
// subscriber is monotone and reaches 1.0.

#include <gtest/gtest.h>

#include <vector>

#include "core/dataset.h"
#include "sketch/range_moments.h"
#include "test_util.h"

namespace hillview {
namespace {

/// A dataset that replays a scripted sequence of type-erased partial
/// results, standing in for an execution tree that emits progress ticks
/// before any child summary has merged.
class ScriptedDataSet final : public IDataSet {
 public:
  explicit ScriptedDataSet(std::vector<PartialResult<AnySummary>> script)
      : script_(std::move(script)) {}

  const std::string& id() const override { return id_; }

  StreamPtr<PartialResult<AnySummary>> RunSketch(
      const AnySketch& sketch, const SketchOptions& options) override {
    (void)sketch;
    (void)options;
    auto stream = std::make_shared<Stream<PartialResult<AnySummary>>>();
    for (const auto& partial : script_) stream->OnNext(partial);
    stream->OnComplete(Status::OK());
    return stream;
  }

  DataSetPtr Map(TableMap map, const std::string& op_name) override {
    (void)map;
    (void)op_name;
    return nullptr;
  }

  int NumPartitions() const override { return 1; }
  void Evict() override {}

 private:
  std::string id_ = "scripted";
  std::vector<PartialResult<AnySummary>> script_;
};

TEST(RunTypedSketch, ForwardsProgressOnlyPartials) {
  // Two progress-only ticks (empty summary), then the final summary.
  std::vector<PartialResult<AnySummary>> script;
  script.push_back({0.25, AnySummary{}});
  script.push_back({0.5, AnySummary{}});
  script.push_back({1.0, AnySummary::Wrap<CountResult>(CountResult{42})});
  ScriptedDataSet ds(std::move(script));

  auto stream = RunTypedSketch<CountResult>(ds, std::make_shared<CountSketch>());
  std::vector<PartialResult<CountResult>> seen;
  stream->Subscribe([&](const PartialResult<CountResult>& p) {
    seen.push_back(p);
  });

  // Every tick is forwarded, including the ones with no summary.
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_DOUBLE_EQ(seen[0].progress, 0.25);
  EXPECT_DOUBLE_EQ(seen[1].progress, 0.5);
  EXPECT_DOUBLE_EQ(seen[2].progress, 1.0);
  // Ticks before any summary carry the zero summary; the last carries it.
  EXPECT_EQ(seen[0].value.rows, 0);
  EXPECT_EQ(seen[1].value.rows, 0);
  EXPECT_EQ(seen[2].value.rows, 42);
}

TEST(RunTypedSketch, EmptyTickAfterSummaryRepeatsLastSummary) {
  std::vector<PartialResult<AnySummary>> script;
  script.push_back({0.5, AnySummary::Wrap<CountResult>(CountResult{7})});
  script.push_back({0.75, AnySummary{}});  // progress tick, no new merge
  script.push_back({1.0, AnySummary::Wrap<CountResult>(CountResult{11})});
  ScriptedDataSet ds(std::move(script));

  auto stream = RunTypedSketch<CountResult>(ds, std::make_shared<CountSketch>());
  std::vector<PartialResult<CountResult>> seen;
  stream->Subscribe([&](const PartialResult<CountResult>& p) {
    seen.push_back(p);
  });

  ASSERT_EQ(seen.size(), 3u);
  EXPECT_DOUBLE_EQ(seen[1].progress, 0.75);
  EXPECT_EQ(seen[1].value.rows, 7);  // last summary is re-emitted
  EXPECT_EQ(seen[2].value.rows, 11);
}

TEST(SketchAndWait, NoSummaryStreamIsAnErrorNotZero) {
  // A stream that completes OK without ever carrying a summary must not be
  // mistaken for a real zero result.
  std::vector<PartialResult<AnySummary>> script;
  script.push_back({0.5, AnySummary{}});
  script.push_back({1.0, AnySummary{}});
  ScriptedDataSet ds(std::move(script));

  auto result = SketchAndWait<CountResult>(ds, std::make_shared<CountSketch>());
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST(SketchAndWait, TrailingProgressOnlyTickKeepsFinalSummary) {
  std::vector<PartialResult<AnySummary>> script;
  script.push_back({0.9, AnySummary::Wrap<CountResult>(CountResult{42})});
  script.push_back({1.0, AnySummary{}});  // progress tick after the summary
  ScriptedDataSet ds(std::move(script));

  auto result = SketchAndWait<CountResult>(ds, std::make_shared<CountSketch>());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows, 42);
}

TEST(RunTypedSketch, ProgressIsMonotoneAndReachesOne) {
  // A real execution tree: 8 partitions on a shared pool, progressive
  // emission with no aggregation window so every completion ticks.
  ThreadPool pool(4);
  std::vector<DataSetPtr> children;
  for (int i = 0; i < 8; ++i) {
    children.push_back(LocalDataSet::FromTable(
        "part" + std::to_string(i),
        testing::MakeDoubleTable("x", testing::UniformDoubles(100, 0, 1, i))));
  }
  ParallelDataSet::Options options;
  options.aggregation_window_ms = 0.0;
  options.progressive = true;
  ParallelDataSet parallel("root", std::move(children), &pool, options);

  auto stream =
      RunTypedSketch<CountResult>(parallel, std::make_shared<CountSketch>());
  std::vector<double> progress;
  stream->Subscribe([&](const PartialResult<CountResult>& p) {
    progress.push_back(p.progress);
  });
  auto last = stream->BlockingLast();
  ASSERT_TRUE(stream->final_status().ok());

  ASSERT_FALSE(progress.empty());
  for (size_t i = 1; i < progress.size(); ++i) {
    EXPECT_GE(progress[i], progress[i - 1]) << "tick " << i;
  }
  EXPECT_DOUBLE_EQ(progress.back(), 1.0);
  ASSERT_TRUE(last.has_value());
  EXPECT_EQ(last->value.rows, 800);
}

}  // namespace
}  // namespace hillview
