#include <gtest/gtest.h>

#include <cmath>

#include "sketch/histogram2d.h"
#include "test_util.h"
#include "util/serialize.h"

namespace hillview {
namespace {

using testing::UniformDoubles;

TablePtr MakeXyTable(const std::vector<double>& xs,
                     const std::vector<double>& ys) {
  ColumnBuilder bx(DataKind::kDouble), by(DataKind::kDouble);
  for (double v : xs) bx.AppendDouble(v);
  for (double v : ys) by.AppendDouble(v);
  return Table::Create(
      Schema({{"x", DataKind::kDouble}, {"y", DataKind::kDouble}}),
      {bx.Finish(), by.Finish()});
}

TEST(Histogram2D, ExactJointCounts) {
  TablePtr t = MakeXyTable({0.5, 0.5, 1.5, 1.5}, {0.5, 1.5, 0.5, 0.5});
  Histogram2DSketch sketch("x", Buckets(NumericBuckets(0, 2, 2)), "y",
                           Buckets(NumericBuckets(0, 2, 2)));
  Histogram2DResult r = sketch.Summarize(*t, 0);
  EXPECT_EQ(r.Count(0, 0), 1);
  EXPECT_EQ(r.Count(0, 1), 1);
  EXPECT_EQ(r.Count(1, 0), 2);
  EXPECT_EQ(r.Count(1, 1), 0);
  EXPECT_EQ(r.x_counts[0], 2);
  EXPECT_EQ(r.x_counts[1], 2);
}

TEST(Histogram2D, MissingYCountsInBarTotal) {
  ColumnBuilder bx(DataKind::kDouble), by(DataKind::kDouble);
  bx.AppendDouble(0.5);
  bx.AppendDouble(0.5);
  by.AppendDouble(0.5);
  by.AppendMissing();
  TablePtr t = Table::Create(
      Schema({{"x", DataKind::kDouble}, {"y", DataKind::kDouble}}),
      {bx.Finish(), by.Finish()});
  Histogram2DSketch sketch("x", Buckets(NumericBuckets(0, 1, 1)), "y",
                           Buckets(NumericBuckets(0, 1, 1)));
  Histogram2DResult r = sketch.Summarize(*t, 0);
  EXPECT_EQ(r.x_counts[0], 2);  // both rows have X
  EXPECT_EQ(r.Count(0, 0), 1);  // only one has Y
  EXPECT_EQ(r.missing_y, 1);
}

TEST(Histogram2D, MissingXIgnoresY) {
  ColumnBuilder bx(DataKind::kDouble), by(DataKind::kDouble);
  bx.AppendMissing();
  by.AppendDouble(0.5);
  TablePtr t = Table::Create(
      Schema({{"x", DataKind::kDouble}, {"y", DataKind::kDouble}}),
      {bx.Finish(), by.Finish()});
  Histogram2DSketch sketch("x", Buckets(NumericBuckets(0, 1, 1)), "y",
                           Buckets(NumericBuckets(0, 1, 1)));
  Histogram2DResult r = sketch.Summarize(*t, 0);
  EXPECT_EQ(r.missing_x, 1);
  EXPECT_EQ(r.x_counts[0], 0);
}

class Histogram2DMergeTest : public ::testing::TestWithParam<int> {};

TEST_P(Histogram2DMergeTest, MergeMatchesWholeDataset) {
  int parts = GetParam();
  auto xs = UniformDoubles(4000, 0, 10, 51);
  auto ys = UniformDoubles(4000, -5, 5, 52);
  Histogram2DSketch sketch("x", Buckets(NumericBuckets(0, 10, 7)), "y",
                           Buckets(NumericBuckets(-5, 5, 5)));
  Histogram2DResult whole = sketch.Summarize(*MakeXyTable(xs, ys), 0);
  Histogram2DResult merged = sketch.Zero();
  for (int p = 0; p < parts; ++p) {
    std::vector<double> cx, cy;
    for (size_t i = p; i < xs.size(); i += parts) {
      cx.push_back(xs[i]);
      cy.push_back(ys[i]);
    }
    merged = sketch.Merge(merged, sketch.Summarize(*MakeXyTable(cx, cy), 0));
  }
  EXPECT_EQ(merged.xy, whole.xy);
  EXPECT_EQ(merged.x_counts, whole.x_counts);
}

INSTANTIATE_TEST_SUITE_P(PartitionCounts, Histogram2DMergeTest,
                         ::testing::Values(2, 5, 13));

TEST(Histogram2D, SampledApproximatesExact) {
  auto xs = UniformDoubles(200000, 0, 1, 53);
  auto ys = UniformDoubles(200000, 0, 1, 54);
  TablePtr t = MakeXyTable(xs, ys);
  Buckets bx(NumericBuckets(0, 1, 10)), by(NumericBuckets(0, 1, 10));
  Histogram2DResult exact = Histogram2DSketch("x", bx, "y", by).Summarize(*t, 0);
  Histogram2DResult approx =
      Histogram2DSketch("x", bx, "y", by, 0.1).Summarize(*t, 7);
  for (int x = 0; x < 10; ++x) {
    for (int y = 0; y < 10; ++y) {
      // Binomial sampling noise: sd of the estimate is sqrt(count/rate);
      // allow 4.5 sd for the max over 100 cells.
      double sd = std::sqrt(exact.Count(x, y) / 0.1);
      EXPECT_NEAR(approx.EstimatedCount(x, y),
                  static_cast<double>(exact.Count(x, y)), 4.5 * sd + 20);
    }
  }
}

TEST(Histogram2D, SerializationRoundTrip) {
  auto xs = UniformDoubles(500, 0, 1, 55);
  auto ys = UniformDoubles(500, 0, 1, 56);
  Histogram2DSketch sketch("x", Buckets(NumericBuckets(0, 1, 4)), "y",
                           Buckets(NumericBuckets(0, 1, 3)));
  Histogram2DResult r = sketch.Summarize(*MakeXyTable(xs, ys), 0);
  ByteWriter w;
  r.Serialize(&w);
  ByteReader reader(w.bytes());
  Histogram2DResult back;
  ASSERT_TRUE(Histogram2DResult::Deserialize(&reader, &back).ok());
  EXPECT_EQ(back.xy, r.xy);
  EXPECT_EQ(back.x_counts, r.x_counts);
  EXPECT_EQ(back.x_buckets, 4);
  EXPECT_EQ(back.y_buckets, 3);
}

TablePtr MakeWxyTable(const std::vector<double>& ws,
                      const std::vector<double>& xs,
                      const std::vector<double>& ys) {
  ColumnBuilder bw(DataKind::kDouble), bx(DataKind::kDouble),
      by(DataKind::kDouble);
  for (double v : ws) bw.AppendDouble(v);
  for (double v : xs) bx.AppendDouble(v);
  for (double v : ys) by.AppendDouble(v);
  return Table::Create(Schema({{"w", DataKind::kDouble},
                               {"x", DataKind::kDouble},
                               {"y", DataKind::kDouble}}),
                       {bw.Finish(), bx.Finish(), by.Finish()});
}

TEST(Trellis, GroupsByW) {
  TablePtr t = MakeWxyTable({0.5, 0.5, 1.5}, {0.1, 0.9, 0.1}, {0.1, 0.1, 0.9});
  TrellisSketch sketch("w", Buckets(NumericBuckets(0, 2, 2)), "x",
                       Buckets(NumericBuckets(0, 1, 2)), "y",
                       Buckets(NumericBuckets(0, 1, 2)));
  TrellisResult r = sketch.Summarize(*t, 0);
  ASSERT_EQ(r.groups.size(), 2u);
  EXPECT_EQ(r.groups[0].Count(0, 0), 1);
  EXPECT_EQ(r.groups[0].Count(1, 0), 1);
  EXPECT_EQ(r.groups[1].Count(0, 1), 1);
}

TEST(Trellis, MergeMatchesWhole) {
  auto ws = UniformDoubles(3000, 0, 4, 57);
  auto xs = UniformDoubles(3000, 0, 1, 58);
  auto ys = UniformDoubles(3000, 0, 1, 59);
  TrellisSketch sketch("w", Buckets(NumericBuckets(0, 4, 4)), "x",
                       Buckets(NumericBuckets(0, 1, 3)), "y",
                       Buckets(NumericBuckets(0, 1, 3)));
  TrellisResult whole = sketch.Summarize(*MakeWxyTable(ws, xs, ys), 0);
  TrellisResult merged = sketch.Zero();
  for (int p = 0; p < 3; ++p) {
    std::vector<double> cw, cx, cy;
    for (size_t i = p; i < ws.size(); i += 3) {
      cw.push_back(ws[i]);
      cx.push_back(xs[i]);
      cy.push_back(ys[i]);
    }
    merged =
        sketch.Merge(merged, sketch.Summarize(*MakeWxyTable(cw, cx, cy), 0));
  }
  ASSERT_EQ(merged.groups.size(), whole.groups.size());
  for (size_t g = 0; g < whole.groups.size(); ++g) {
    EXPECT_EQ(merged.groups[g].xy, whole.groups[g].xy);
  }
}

TEST(Trellis, SerializationRoundTrip) {
  auto ws = UniformDoubles(200, 0, 2, 60);
  auto xs = UniformDoubles(200, 0, 1, 61);
  auto ys = UniformDoubles(200, 0, 1, 62);
  TrellisSketch sketch("w", Buckets(NumericBuckets(0, 2, 2)), "x",
                       Buckets(NumericBuckets(0, 1, 2)), "y",
                       Buckets(NumericBuckets(0, 1, 2)));
  TrellisResult r = sketch.Summarize(*MakeWxyTable(ws, xs, ys), 0);
  ByteWriter w;
  r.Serialize(&w);
  ByteReader reader(w.bytes());
  TrellisResult back;
  ASSERT_TRUE(TrellisResult::Deserialize(&reader, &back).ok());
  ASSERT_EQ(back.groups.size(), r.groups.size());
  EXPECT_EQ(back.groups[0].xy, r.groups[0].xy);
  EXPECT_EQ(back.groups[1].xy, r.groups[1].xy);
}

}  // namespace
}  // namespace hillview
