#include <gtest/gtest.h>

#include "cluster/root.h"
#include "sketch/find_text.h"
#include "sketch/histogram.h"
#include "sketch/next_items.h"
#include "sketch/range_moments.h"
#include "test_util.h"
#include "util/stopwatch.h"

namespace hillview {
namespace {

using cluster::RootSession;
using cluster::SimulatedNetwork;
using cluster::Worker;
using testing::MakeDoubleTable;
using testing::MakeStringTable;
using testing::SplitValues;
using testing::TestCluster;
using testing::UniformDoubles;

TEST(Cluster, SketchMatchesSingleMachineResult) {
  auto values = UniformDoubles(20000, 0, 100, 81);
  std::vector<TablePtr> partitions;
  for (const auto& chunk : SplitValues(values, 8)) {
    partitions.push_back(MakeDoubleTable("x", chunk));
  }
  auto tc = TestCluster::Create(partitions, /*workers=*/3, /*threads=*/2);
  ASSERT_NE(tc, nullptr);

  auto sketch = std::make_shared<StreamingHistogramSketch>(
      "x", Buckets(NumericBuckets(0, 100, 16)));
  auto result = tc->root->RunSketch<HistogramResult>("data", sketch);
  ASSERT_TRUE(result.ok());

  HistogramResult expected =
      sketch->Summarize(*MakeDoubleTable("x", values), 0);
  EXPECT_EQ(result.value().counts, expected.counts);
}

TEST(Cluster, RootReceivesSmallSummaries) {
  auto values = UniformDoubles(100000, 0, 1, 82);
  std::vector<TablePtr> partitions;
  for (const auto& chunk : SplitValues(values, 8)) {
    partitions.push_back(MakeDoubleTable("x", chunk));
  }
  auto tc = TestCluster::Create(partitions, 4, 2);
  auto sketch = std::make_shared<StreamingHistogramSketch>(
      "x", Buckets(NumericBuckets(0, 1, 50)));
  ASSERT_TRUE(tc->root->RunSketch<HistogramResult>("data", sketch).ok());
  uint64_t up = tc->network.bytes_received_by_root();
  EXPECT_GT(up, 0u);
  // 50-bucket histogram ≈ 440B/summary; even with per-worker partials the
  // total stays orders of magnitude below the 800 KB raw column.
  EXPECT_LT(up, 100000u);
  EXPECT_GT(tc->network.messages_up(), 0u);
  EXPECT_GT(tc->network.bytes_sent_by_root(), 0u);
}

TEST(Cluster, MapThenSketch) {
  auto values = UniformDoubles(10000, 0, 1, 83);
  std::vector<TablePtr> partitions;
  for (const auto& chunk : SplitValues(values, 4)) {
    partitions.push_back(MakeDoubleTable("x", chunk));
  }
  auto tc = TestCluster::Create(partitions, 2, 2);
  auto derived = tc->root->MapDataSet(
      "data",
      [](const TablePtr& t) -> Result<TablePtr> {
        return t->Filter(
            [t](uint32_t r) { return t->column(0)->GetDouble(r) < 0.25; });
      },
      "q1");
  ASSERT_TRUE(derived.ok());
  auto count = tc->root->RunSketch<CountResult>(
      derived.value(), std::make_shared<CountSketch>());
  ASSERT_TRUE(count.ok());
  EXPECT_NEAR(count.value().rows, 2500, 300);
}

TEST(Cluster, UnknownDatasetIsUnavailable) {
  auto tc = TestCluster::Create({MakeDoubleTable("x", {1.0})}, 1, 1);
  auto result = tc->root->RunSketch<CountResult>(
      "nope", std::make_shared<CountSketch>());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
}

TEST(Cluster, WorkerRestartHealsViaRedoLogReplay) {
  auto values = UniformDoubles(10000, 0, 1, 84);
  std::vector<TablePtr> partitions;
  for (const auto& chunk : SplitValues(values, 6)) {
    partitions.push_back(MakeDoubleTable("x", chunk));
  }
  auto tc = TestCluster::Create(partitions, 3, 2);

  // Create a derived dataset, then crash one worker.
  auto derived = tc->root->MapDataSet(
      "data",
      [](const TablePtr& t) -> Result<TablePtr> {
        return t->Filter(
            [t](uint32_t r) { return t->column(0)->GetDouble(r) >= 0.5; });
      },
      "upper");
  ASSERT_TRUE(derived.ok());
  auto before = tc->root->RunSketch<CountResult>(
      derived.value(), std::make_shared<CountSketch>());
  ASSERT_TRUE(before.ok());

  tc->root->RestartWorker(1);
  EXPECT_EQ(tc->workers[1]->restart_count(), 1);

  // The query heals transparently: RunSketch replays the redo log (load +
  // map) and retries.
  auto after = tc->root->RunSketch<CountResult>(
      derived.value(), std::make_shared<CountSketch>());
  ASSERT_TRUE(after.ok()) << after.status().ToString();
  EXPECT_EQ(after.value().rows, before.value().rows);
  EXPECT_GE(tc->root->redo_log().Size(), 2);
}

TEST(Cluster, DroppedMapFailureIsRecordedOnWorkerAndHeals) {
  auto values = UniformDoubles(8000, 0, 1, 93);
  std::vector<TablePtr> partitions;
  for (const auto& chunk : SplitValues(values, 4)) {
    partitions.push_back(MakeDoubleTable("x", chunk));
  }
  auto tc = TestCluster::Create(partitions, 2, 2);

  // Crash worker 0 first: the next fire-and-forget remote map (the dataset
  // tree's Map edge) cannot find its parent there and drops an Unavailable
  // status. The drop must be recorded on the worker — the observable proof
  // that the "surface later, heal via replay" contract fired rather than
  // the failure being silently lost.
  tc->root->RestartWorker(0);
  EXPECT_EQ(tc->workers[0]->dropped_map_failures(), 0);

  DataSetPtr root_ds = tc->root->GetRootDataSet("data");
  DataSetPtr derived = root_ds->Map(
      [](const TablePtr& t) -> Result<TablePtr> {
        return t->Filter(
            [t](uint32_t r) { return t->column(0)->GetDouble(r) < 0.5; });
      },
      "lower");
  ASSERT_NE(derived, nullptr);
  EXPECT_GE(tc->workers[0]->dropped_map_failures(), 1);
  EXPECT_NE(tc->workers[0]->last_dropped_map_error().find("Unavailable"),
            std::string::npos)
      << tc->workers[0]->last_dropped_map_error();
  // The healthy worker saw no failure.
  EXPECT_EQ(tc->workers[1]->dropped_map_failures(), 0);

  // First use of the derived proxy surfaces the dropped failure.
  auto broken = SketchAndWait<CountResult>(*derived,
                                           std::make_shared<CountSketch>());
  ASSERT_FALSE(broken.ok());
  EXPECT_EQ(broken.status().code(), StatusCode::kUnavailable);

  // The root-session path heals the lost base data via redo-log replay.
  auto count = tc->root->RunSketch<CountResult>(
      "data", std::make_shared<CountSketch>());
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(count.value().rows, static_cast<int64_t>(values.size()));
}

// Satellite of the fault-injection PR: a repeated-crash ladder. A *different*
// worker is restarted between every retry attempt of one query, so each
// attempt fails on freshly lost soft state and each heal has to replay the
// redo log again. The query must still converge, with full coverage and a
// final summary byte-identical to the fault-free run — the §5.8 determinism
// contract under serial crashes, not just a single one.
TEST(Cluster, RepeatedCrashLadderHealsByteIdentical) {
  auto values = UniformDoubles(12000, 0, 100, 94);
  std::vector<TablePtr> partitions;
  for (const auto& chunk : SplitValues(values, 6)) {
    partitions.push_back(MakeDoubleTable("x", chunk));
  }
  RootSession::Options options;
  options.max_replay_retries = 8;  // the ladder burns five heals
  auto tc = TestCluster::Create(partitions, /*workers=*/3, /*threads=*/2,
                                options);
  ASSERT_NE(tc, nullptr);

  auto sketch = std::make_shared<StreamingHistogramSketch>(
      "x", Buckets(NumericBuckets(0, 100, 24)));
  auto bytes_of = [&](const HistogramResult& r) {
    return AnySketch::Wrap<HistogramResult>(sketch).Serialize(
        AnySummary::Wrap<HistogramResult>(r));
  };
  auto reference = tc->root->RunSketch<HistogramResult>("data", sketch);
  ASSERT_TRUE(reference.ok());

  // The hook fires after each heal, just before the next attempt: restarting
  // there re-damages the freshly replayed state, so the next attempt fails
  // again on a different machine. Four rungs, rotating across all workers.
  int restarts = 0;
  tc->root->set_retry_hook([&](int /*attempt*/, const Status&) {
    if (restarts < 4) {
      tc->root->RestartWorker((restarts + 1) % 3);
      ++restarts;
    }
  });
  tc->root->RestartWorker(0);  // the initial crash that starts the ladder

  RootSession::QueryStats stats;
  auto healed = tc->root->RunSketch<HistogramResult>(
      "data", sketch, /*seed=*/0, /*cacheable=*/false, &stats);
  ASSERT_TRUE(healed.ok()) << healed.status().ToString();
  EXPECT_EQ(restarts, 4);
  EXPECT_EQ(stats.replay_heals, 5);  // one per rung plus the final heal
  EXPECT_EQ(stats.transport_retries, 0);
  EXPECT_FALSE(stats.degraded);
  EXPECT_EQ(stats.coverage, 1.0);
  EXPECT_EQ(bytes_of(healed.value()), bytes_of(reference.value()));
  // Rotating crashes never produced the consecutive-failure run a breaker
  // trip requires: every worker healed before failing again.
  EXPECT_EQ(tc->root->health().Snapshot().trips, 0);
}

TEST(Cluster, FindTextParallelDictionaryAgreesWithInline) {
  // Each partition's dictionary exceeds the parallel-matching threshold
  // (4096 distinct strings), so on the cluster path MatchDictionary chunks
  // across the worker's aux pool — the result must equal the inline
  // (pool-less) single-table path bit for bit.
  constexpr int kDistinct = 6000;
  constexpr int kRowsPerPartition = 9000;
  std::vector<std::string> all_values;
  std::vector<TablePtr> partitions;
  for (int p = 0; p < 2; ++p) {
    std::vector<std::string> values;
    for (int r = 0; r < kRowsPerPartition; ++r) {
      values.push_back("v" + std::to_string((r * 7 + p) % kDistinct));
    }
    all_values.insert(all_values.end(), values.begin(), values.end());
    partitions.push_back(MakeStringTable("s", values));
  }
  auto tc = TestCluster::Create(partitions, /*workers=*/2, /*threads=*/2);
  ASSERT_NE(tc, nullptr);

  StringFilter filter;
  filter.text = "v12";
  filter.mode = StringFilter::Mode::kSubstring;
  filter.case_sensitive = true;
  auto sketch = std::make_shared<FindTextSketch>(
      RecordOrder({{"s", true}}), std::vector<std::string>{"s"}, filter,
      std::nullopt);
  auto clustered = tc->root->RunSketch<FindResult>("data", sketch);
  ASSERT_TRUE(clustered.ok()) << clustered.status().ToString();

  FindResult inline_result =
      sketch->Summarize(*MakeStringTable("s", all_values), 0);
  EXPECT_EQ(clustered.value().match_count, inline_result.match_count);
  EXPECT_GT(clustered.value().match_count, 0);
  ASSERT_TRUE(clustered.value().first_match.has_value());
  EXPECT_EQ(*clustered.value().first_match, *inline_result.first_match);
}

TEST(Cluster, SampledSketchIsDeterministicAcrossRestart) {
  // §5.8: replays must be deterministic, including randomized vizketches —
  // the seed comes from the log, the per-partition seed from tree position.
  auto values = UniformDoubles(40000, 0, 1, 85);
  std::vector<TablePtr> partitions;
  for (const auto& chunk : SplitValues(values, 8)) {
    partitions.push_back(MakeDoubleTable("x", chunk));
  }
  auto tc = TestCluster::Create(partitions, 2, 2);
  auto sketch = std::make_shared<SampledHistogramSketch>(
      "x", Buckets(NumericBuckets(0, 1, 10)), 0.05);
  auto r1 = tc->root->RunSketch<HistogramResult>("data", sketch, /*seed=*/7);
  ASSERT_TRUE(r1.ok());

  tc->root->RestartWorker(0);
  auto r2 = tc->root->RunSketch<HistogramResult>("data", sketch, /*seed=*/7);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1.value().counts, r2.value().counts);
}

TEST(Cluster, ComputationCacheServesRepeatedQueries) {
  auto values = UniformDoubles(5000, 0, 10, 86);
  std::vector<TablePtr> partitions;
  for (const auto& chunk : SplitValues(values, 4)) {
    partitions.push_back(MakeDoubleTable("x", chunk));
  }
  auto tc = TestCluster::Create(partitions, 2, 2);
  auto sketch = std::make_shared<RangeSketch>("x");
  auto r1 = tc->root->RunSketch<RangeResult>("data", sketch, 0, true);
  ASSERT_TRUE(r1.ok());
  uint64_t bytes_after_first = tc->network.bytes_received_by_root();
  auto r2 = tc->root->RunSketch<RangeResult>("data", sketch, 0, true);
  ASSERT_TRUE(r2.ok());
  // Second run is a cache hit: no new network traffic.
  EXPECT_EQ(tc->network.bytes_received_by_root(), bytes_after_first);
  EXPECT_EQ(tc->root->cache().Snapshot().hits, 1);
  EXPECT_DOUBLE_EQ(r2.value().min, r1.value().min);
}

// Regression: the cache key used to be dataset + sketch name only, but
// SampledHistogramSketch::name() omits the seed, so a cached summary computed
// under one seed could be served for a different seed. The seed is now part
// of the key: two seeds populate two entries, and only an exact
// (dataset, sketch, seed) repeat hits.
TEST(Cluster, CacheKeysRandomizedSketchesBySeed) {
  auto values = UniformDoubles(20000, 0, 1, 90);
  std::vector<TablePtr> partitions;
  for (const auto& chunk : SplitValues(values, 4)) {
    partitions.push_back(MakeDoubleTable("x", chunk));
  }
  auto tc = TestCluster::Create(partitions, 2, 2);
  auto sketch = std::make_shared<SampledHistogramSketch>(
      "x", Buckets(NumericBuckets(0, 1, 10)), 0.1);

  auto r7 = tc->root->RunSketch<HistogramResult>("data", sketch, /*seed=*/7,
                                                 /*cacheable=*/true);
  ASSERT_TRUE(r7.ok());
  auto r8 = tc->root->RunSketch<HistogramResult>("data", sketch, /*seed=*/8,
                                                 /*cacheable=*/true);
  ASSERT_TRUE(r8.ok());
  EXPECT_EQ(tc->root->cache().Snapshot().entries, 2u);
  EXPECT_EQ(tc->root->cache().Snapshot().hits, 0);

  // A repeat of seed 7 hits the cache and returns the seed-7 summary.
  auto again = tc->root->RunSketch<HistogramResult>("data", sketch, /*seed=*/7,
                                                    /*cacheable=*/true);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(tc->root->cache().Snapshot().hits, 1);
  EXPECT_EQ(again.value().counts, r7.value().counts);
}

TEST(ComputationCache, CountsEvictions) {
  ComputationCache cache(/*max_entries=*/2);
  cache.Put("a", AnySummary::Wrap<int>(1));
  cache.Put("b", AnySummary::Wrap<int>(2));
  EXPECT_EQ(cache.Snapshot().evictions, 0);
  cache.Put("c", AnySummary::Wrap<int>(3));
  EXPECT_EQ(cache.Snapshot().evictions, 1);
  EXPECT_FALSE(cache.Get("a").has_value());  // "a" was the LRU victim
  EXPECT_TRUE(cache.Get("c").has_value());
}

// Regression for the worker-resident sort-key cache (§5.4 soft state below
// the summary level): the first scroll of a sorted view pays one key build
// per partition, a second scroll of the same (table, order) — even at a
// different scroll position — is a pure cache hit, and the memory-manager
// eviction path (§5.8) resets it to a miss.
TEST(Cluster, SortKeyCacheServesRepeatedScrolls) {
  auto values = UniformDoubles(20000, 0, 100, 91);
  std::vector<TablePtr> partitions;
  for (const auto& chunk : SplitValues(values, 4)) {
    partitions.push_back(MakeDoubleTable("x", chunk));
  }
  auto tc = TestCluster::Create(partitions, /*workers=*/2, /*threads=*/2);
  ASSERT_NE(tc, nullptr);

  auto hits = [&] {
    int64_t h = 0;
    for (auto& w : tc->workers) h += w->key_cache()->Snapshot().hits;
    return h;
  };
  auto misses = [&] {
    int64_t m = 0;
    for (auto& w : tc->workers) m += w->key_cache()->Snapshot().misses;
    return m;
  };

  auto scroll_at = [](double start) {
    return std::make_shared<NextItemsSketch>(
        RecordOrder({{"x", true}}), std::vector<std::string>{},
        std::optional<std::vector<Value>>{{Value(start)}}, 20);
  };
  auto r1 = tc->root->RunSketch<NextItemsResult>("data", scroll_at(50.0));
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(static_cast<int>(r1.value().rows.size()), 20);
  EXPECT_EQ(hits(), 0);
  EXPECT_EQ(misses(), 4);  // one cold key build per partition

  // Second scroll of the same sorted view (different position): every
  // partition reuses its cached key column.
  auto r2 = tc->root->RunSketch<NextItemsResult>("data", scroll_at(75.0));
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(hits(), 4);
  EXPECT_EQ(misses(), 4);

  // Cache eviction drops the soft state; the next scroll is a miss again
  // and transparently rebuilds.
  for (auto& w : tc->workers) w->EvictCaches();
  for (auto& w : tc->workers) EXPECT_EQ(w->key_cache()->Snapshot().entries, 0u);
  auto r3 = tc->root->RunSketch<NextItemsResult>("data", scroll_at(50.0));
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(hits(), 4);
  EXPECT_EQ(misses(), 8);
  // Same view, same position: results identical before/after eviction.
  ASSERT_EQ(r3.value().rows.size(), r1.value().rows.size());
  for (size_t i = 0; i < r1.value().rows.size(); ++i) {
    EXPECT_EQ(r3.value().rows[i].values, r1.value().rows[i].values);
    EXPECT_EQ(r3.value().rows[i].count, r1.value().rows[i].count);
  }
  EXPECT_EQ(r3.value().rows_before, r1.value().rows_before);
}

TEST(Cluster, EvictionIsTransparent) {
  // Cache eviction (unlike a crash) keeps dataset structure; queries just
  // reload lazily without replay.
  auto values = UniformDoubles(4000, 0, 1, 87);
  std::vector<TablePtr> partitions;
  for (const auto& chunk : SplitValues(values, 4)) {
    partitions.push_back(MakeDoubleTable("x", chunk));
  }
  auto tc = TestCluster::Create(partitions, 2, 1);
  auto c1 = tc->root->RunSketch<CountResult>("data",
                                             std::make_shared<CountSketch>());
  ASSERT_TRUE(c1.ok());
  for (auto& w : tc->workers) w->EvictCaches();
  auto c2 = tc->root->RunSketch<CountResult>("data",
                                             std::make_shared<CountSketch>());
  ASSERT_TRUE(c2.ok());
  EXPECT_EQ(c1.value().rows, c2.value().rows);
}

TEST(Cluster, ProgressiveStreamDeliversPartials) {
  auto values = UniformDoubles(50000, 0, 1, 88);
  std::vector<TablePtr> partitions;
  for (const auto& chunk : SplitValues(values, 16)) {
    partitions.push_back(MakeDoubleTable("x", chunk));
  }
  // Zero aggregation window so every worker completion propagates.
  RootSession::Options options;
  options.aggregation.aggregation_window_ms = 0;
  std::vector<cluster::WorkerPtr> workers;
  for (int w = 0; w < 4; ++w) {
    workers.push_back(std::make_shared<Worker>("w" + std::to_string(w), 1));
  }
  SimulatedNetwork network;
  cluster::Cluster deployment(workers, &network, options);
  auto root_session = deployment.OpenSession();
  RootSession& root = *root_session;
  std::vector<LocalDataSet::Loader> loaders;
  for (const auto& t : partitions) {
    loaders.push_back([t]() -> Result<TablePtr> { return t; });
  }
  ASSERT_TRUE(root.LoadDataSet("data", loaders).ok());

  auto stream = root.RunSketchStream<CountResult>(
      "data", std::make_shared<CountSketch>());
  std::atomic<int> partials{0};
  stream->Subscribe(
      [&partials](const PartialResult<CountResult>&) { partials.fetch_add(1); });
  auto last = stream->BlockingLast();
  ASSERT_TRUE(stream->final_status().ok());
  EXPECT_EQ(last->value.rows, 50000);
  EXPECT_GE(partials.load(), 2);
}

TEST(Network, LatencyModelSlowsTransfers) {
  SimulatedNetwork::Model model;
  model.latency_ms = 5;
  SimulatedNetwork network(model);
  Stopwatch watch;
  network.SendUp(100);
  EXPECT_GE(watch.ElapsedMillis(), 4.0);
  EXPECT_EQ(network.bytes_received_by_root(), 100u);
}

}  // namespace
}  // namespace hillview
